(* Tests for the §7 litmus machinery: the capacity measurement (Fig. 6/7)
   and the Fig. 8/9 campaign. These are the paper's headline
   microarchitectural claims, so the tests pin them down:
   - the knee of the capacity curve sits at the documented capacity;
   - δ at/above the true bound never produces an incorrect execution;
   - δ below the bound does (violations are findable);
   - L = 0 with coalescing is unsafe at ANY δ (the Fig. 8b anomaly). *)

let checki = Alcotest.check Alcotest.int
let checkb = Alcotest.check Alcotest.bool

open Ws_litmus

(* ------------------------------------------------------------------ *)
(* Capacity (Fig. 6/7)                                                 *)
(* ------------------------------------------------------------------ *)

let sweep_of model =
  let c = model.Capacity.capacity in
  Capacity.sweep model
    ~stores_list:(List.init 25 (fun i -> c - 5 + i))
    ~iterations:500

let test_westmere_knee () =
  checki "knee at documented capacity 32" 32
    (Capacity.detect_capacity (sweep_of Capacity.westmere_model))

let test_haswell_knee () =
  checki "knee at documented capacity 42" 42
    (Capacity.detect_capacity (sweep_of Capacity.haswell_model))

let test_flat_below_knee () =
  let model = Capacity.westmere_model in
  let base = Capacity.cycles_per_iteration model ~stores:27 ~iterations:500 in
  let at_cap = Capacity.cycles_per_iteration model ~stores:32 ~iterations:500 in
  checkb "flat below capacity" true (at_cap -. base < 0.01 *. base)

let test_rising_beyond_knee () =
  let model = Capacity.westmere_model in
  let a = Capacity.cycles_per_iteration model ~stores:36 ~iterations:500 in
  let b = Capacity.cycles_per_iteration model ~stores:44 ~iterations:500 in
  let c = Capacity.cycles_per_iteration model ~stores:52 ~iterations:500 in
  checkb "monotonic beyond the knee" true (a < b && b < c);
  (* slope approximately drain_latency per extra store *)
  let slope = (c -. b) /. 8.0 in
  checkb "slope ~ drain latency" true
    (abs_float (slope -. float_of_int model.Capacity.drain_latency) < 1.0)

let test_egress_shifts_observable_bound () =
  (* without B, the pipeline stalls one store earlier *)
  let with_b = Capacity.westmere_model in
  let without_b = { with_b with Capacity.egress = false } in
  let at n model = Capacity.cycles_per_iteration model ~stores:n ~iterations:500 in
  checkb "egress buys one extra in-flight store" true
    (at 33 without_b > at 33 with_b)

let test_same_address_sequences_identical () =
  (* §7.3: capacity results are the same for same-address stores (coalescing
     happens at a later stage — in B, not in the buffer proper), which our
     pipeline model reflects by construction: it does not inspect
     addresses. This test documents the modelling decision. *)
  checkb "model is address-blind" true true

(* ------------------------------------------------------------------ *)
(* Litmus program (Fig. 9)                                             *)
(* ------------------------------------------------------------------ *)

let run_lit ~l ~delta ~coalesce ~seed =
  Litmus_program.run ~tasks:128 ~sb_capacity:8 ~coalesce ~l ~delta
    ~drain_weight:0.02 ~seed ()

let test_litmus_conservation () =
  (* taken + stolen + duplicates bookkeeping is self-consistent *)
  let o = run_lit ~l:1 ~delta:5 ~coalesce:false ~seed:3 in
  checkb "quiescent" true (o.Litmus_program.sched = Tso.Sched.Quiescent);
  checki "every task accounted" 128
    (o.Litmus_program.taken + o.Litmus_program.stolen
    - (o.Litmus_program.taken + o.Litmus_program.stolen - 128));
  checkb "correct" true (Litmus_program.correct o)

let test_safe_delta_always_correct () =
  (* bound = 8 + 1 (B); with l = 1, true alpha = ceil(9/2) = 5 *)
  for seed = 1 to 150 do
    let o = run_lit ~l:1 ~delta:5 ~coalesce:false ~seed in
    if not (Litmus_program.correct o) then
      Alcotest.failf "seed %d: safe delta produced an incorrect run" seed
  done

let test_safe_delta_correct_with_coalescing_l1 () =
  (* with l >= 1 the worker alternates addresses, so coalescing never
     applies and the bound holds *)
  for seed = 1 to 150 do
    let o = run_lit ~l:1 ~delta:5 ~coalesce:true ~seed in
    if not (Litmus_program.correct o) then
      Alcotest.failf "seed %d: coalescing must not affect l >= 1" seed
  done

let test_undersized_delta_violates () =
  let bad = ref 0 in
  for seed = 1 to 150 do
    let o = run_lit ~l:1 ~delta:4 ~coalesce:false ~seed in
    if not (Litmus_program.correct o) then incr bad
  done;
  checkb "undersized delta produces incorrect executions" true (!bad > 0)

let test_l0_coalescing_anomaly () =
  (* Fig. 8b: with only same-address (T) stores, coalescing in B makes the
     reordering unbounded — even delta = bound = 9 fails *)
  let bad = ref 0 in
  for seed = 1 to 200 do
    let o = run_lit ~l:0 ~delta:9 ~coalesce:true ~seed in
    if not (Litmus_program.correct o) then incr bad
  done;
  checkb "L=0 + coalescing violates any finite delta" true (!bad > 0)

let test_l0_without_coalescing_safe () =
  (* the software fix (an extra store, here modelled by disabling
     coalescing) restores the bound *)
  for seed = 1 to 150 do
    let o = run_lit ~l:0 ~delta:9 ~coalesce:false ~seed in
    if not (Litmus_program.correct o) then
      Alcotest.failf "seed %d: delta = bound must be safe without coalescing" seed
  done

let test_litmus_never_loses_tasks () =
  (* even unsafe runs only duplicate; the worker drains to EMPTY, so no
     task can be lost *)
  for seed = 1 to 100 do
    let o = run_lit ~l:1 ~delta:1 ~coalesce:true ~seed in
    checki "lost" 0 o.Litmus_program.lost
  done

(* ------------------------------------------------------------------ *)
(* Grid aggregation (Fig. 8)                                           *)
(* ------------------------------------------------------------------ *)

let test_alpha_groups_math () =
  let groups = Grid.alpha_groups ~s_assumed:32 ~max_l:32 in
  (* alpha for l: ceil(32/(l+1)); check the characteristic entries *)
  let find a = List.assoc a groups in
  Alcotest.(check (list int)) "alpha 32 is l=0" [ 0 ] (find 32);
  Alcotest.(check (list int)) "alpha 16 is l=1" [ 1 ] (find 16);
  Alcotest.(check (list int)) "alpha 11 is l=2" [ 2 ] (find 11);
  Alcotest.(check (list int)) "alpha 2 spans l=15..30" (List.init 16 (fun i -> 15 + i)) (find 2);
  (* groups partition 0..32 *)
  checki "partition size" 33
    (List.fold_left (fun acc (_, ls) -> acc + List.length ls) 0 groups);
  (* alphas strictly descending *)
  let alphas = List.map fst groups in
  checkb "descending" true (List.sort (fun a b -> compare b a) alphas = alphas)

let test_grid_cell_early_exit () =
  let c =
    Grid.run_cell ~tasks:96 ~runs_per_l:50 ~drain_weight:0.02 ~sb_capacity:8
      ~coalesce:false ~s_assumed:9 ~alpha:5 ~l_values:[ 1 ] ~delta:3 ~seed:1 ()
  in
  checkb "found a violation" true (c.Grid.incorrect > 0);
  checkb "stopped early" true (c.Grid.runs < 50)

let test_grid_safe_cell_runs_everything () =
  let c =
    Grid.run_cell ~tasks:96 ~runs_per_l:10 ~drain_weight:0.02 ~sb_capacity:8
      ~coalesce:false ~s_assumed:9 ~alpha:5 ~l_values:[ 1 ] ~delta:6 ~seed:1 ()
  in
  checki "no violations" 0 c.Grid.incorrect;
  checki "all runs executed" 10 c.Grid.runs

(* ------------------------------------------------------------------ *)
(* Fig. 8 soundness at small scale                                     *)
(* ------------------------------------------------------------------ *)

let test_fig8_expected_incorrect_model () =
  let t = { Ws_harness.Exp_fig8.s_assumed = 33; cells = [] } in
  let cell alpha delta l_values =
    { Grid.alpha; delta; l_values; runs = 0; incorrect = 0 }
  in
  (* l = 0 unsafe at any delta *)
  checkb "l=0 unsafe" true
    (Ws_harness.Exp_fig8.expected_incorrect t (cell 33 100 [ 0 ]));
  (* true bound is 33: delta below ceil(33/(l+1)) unsafe *)
  checkb "l=1 delta 16 unsafe" true
    (Ws_harness.Exp_fig8.expected_incorrect t (cell 16 16 [ 1 ]));
  checkb "l=1 delta 17 safe" false
    (Ws_harness.Exp_fig8.expected_incorrect t (cell 17 17 [ 1 ]));
  checkb "l=32 delta 1 safe" false
    (Ws_harness.Exp_fig8.expected_incorrect t (cell 1 1 [ 32 ]))

let test_fig8_small_campaign_soundness () =
  (* run a small campaign against an 8-entry machine and check the model's
     "safe" verdicts are never violated *)
  let cells =
    Grid.campaign ~tasks:96 ~runs_per_l:6 ~max_l:9 ~sb_capacity:8
      ~coalesce:true ~s_assumed:9 ~seed:33 ()
  in
  let bound = 9 in
  let ceil_div a b = (a + b - 1) / b in
  List.iter
    (fun (c : Grid.cell) ->
      let unsafe =
        List.exists
          (fun l -> l = 0 || c.Grid.delta < ceil_div bound (l + 1))
          c.Grid.l_values
      in
      if (not unsafe) && c.Grid.incorrect > 0 then
        Alcotest.failf "safe cell alpha=%d delta=%d violated!" c.Grid.alpha
          c.Grid.delta)
    cells

(* ------------------------------------------------------------------ *)
(* Classic x86-TSO litmus suite (machine validation)                    *)
(* ------------------------------------------------------------------ *)

let test_classic t () =
  let r = Classic.run t in
  if not r.Classic.ok then
    Alcotest.failf "%s: %s was %s%s" t.Classic.name
      (match t.Classic.verdict with
      | Classic.Allowed -> "allowed outcome"
      | Classic.Forbidden -> "forbidden outcome")
      (if r.Classic.observed then "observed" else "not observed")
      (if r.Classic.exhausted then "" else " (search not exhausted)")

let test_classic_exhaustive_coverage () =
  (* every verdict in the suite is decided by a fully-explored space *)
  List.iter
    (fun r ->
      if not r.Classic.exhausted then
        Alcotest.failf "%s: schedule space not exhausted" r.Classic.test.Classic.name)
    (Classic.run_all ())

let test_fingerprint_digest_differential () =
  (* Differential check of the incremental int fingerprint against the full
     MD5 digest: walk each classic litmus program down several deterministic
     schedules, snapshotting both hashes at every reached state. The two
     must induce the same equivalence classes — a digest collision with
     distinct fingerprints means the fingerprint reads state the digest
     doesn't (a determinism bug), and the converse would be an int-hash
     collision (astronomically unlikely on this few thousand states). *)
  let by_fp : (int, string) Hashtbl.t = Hashtbl.create 1024 in
  let by_digest : (string, int) Hashtbl.t = Hashtbl.create 1024 in
  let snap name m =
    let fp = Tso.Machine.fingerprint m in
    let dg = Tso.Machine.fingerprint_digest m in
    (match Hashtbl.find_opt by_fp fp with
    | Some dg' when dg' <> dg ->
        Alcotest.failf "%s: fingerprint collision across distinct digests" name
    | Some _ -> ()
    | None -> Hashtbl.add by_fp fp dg);
    match Hashtbl.find_opt by_digest dg with
    | Some fp' when fp' <> fp ->
        Alcotest.failf "%s: same digest, different fingerprints" name
    | Some _ -> ()
    | None -> Hashtbl.add by_digest dg fp
  in
  List.iter
    (fun (t : Classic.t) ->
      List.iter
        (fun stride ->
          let inst = t.Classic.mk () in
          let m = inst.Tso.Explore.machine in
          snap t.Classic.name m;
          let k = ref 0 in
          let steps = ref 0 in
          let continue = ref true in
          while !continue && !steps < 5_000 do
            match Tso.Explore.next_choices m with
            | [] -> continue := false
            | ts ->
                Tso.Machine.apply m (List.nth ts (!k mod List.length ts));
                k := !k + stride;
                incr steps;
                snap t.Classic.name m
          done)
        [ 1; 2; 3 ])
    Classic.all;
  if Hashtbl.length by_fp < 100 then
    Alcotest.fail "differential walk visited suspiciously few states"

let () =
  Alcotest.run "litmus"
    [
      ( "classic-x86-tso",
        Alcotest.test_case "all exhaustive" `Quick test_classic_exhaustive_coverage
        :: Alcotest.test_case "fingerprint = digest equivalence classes" `Quick
             test_fingerprint_digest_differential
        :: List.map
             (fun t ->
               Alcotest.test_case
                 (Printf.sprintf "%s (%s)" t.Classic.name
                    (match t.Classic.verdict with
                    | Classic.Allowed -> "allowed"
                    | Classic.Forbidden -> "forbidden"))
                 `Quick (test_classic t))
             Classic.all );
      ( "capacity",
        [
          Alcotest.test_case "westmere knee = 32" `Quick test_westmere_knee;
          Alcotest.test_case "haswell knee = 42" `Quick test_haswell_knee;
          Alcotest.test_case "flat below knee" `Quick test_flat_below_knee;
          Alcotest.test_case "rising beyond knee" `Quick test_rising_beyond_knee;
          Alcotest.test_case "egress extends pipeline by one" `Quick
            test_egress_shifts_observable_bound;
          Alcotest.test_case "same-address sequences (modeling note)" `Quick
            test_same_address_sequences_identical;
        ] );
      ( "litmus-program",
        [
          Alcotest.test_case "bookkeeping" `Quick test_litmus_conservation;
          Alcotest.test_case "safe delta always correct" `Slow
            test_safe_delta_always_correct;
          Alcotest.test_case "safe delta + coalescing, l>=1" `Slow
            test_safe_delta_correct_with_coalescing_l1;
          Alcotest.test_case "undersized delta violates" `Slow
            test_undersized_delta_violates;
          Alcotest.test_case "L=0 coalescing anomaly (Fig 8b)" `Slow
            test_l0_coalescing_anomaly;
          Alcotest.test_case "L=0 safe without coalescing" `Slow
            test_l0_without_coalescing_safe;
          Alcotest.test_case "tasks never lost" `Slow test_litmus_never_loses_tasks;
        ] );
      ( "grid",
        [
          Alcotest.test_case "alpha groups" `Quick test_alpha_groups_math;
          Alcotest.test_case "early exit on violation" `Quick
            test_grid_cell_early_exit;
          Alcotest.test_case "safe cell runs all" `Quick
            test_grid_safe_cell_runs_everything;
          Alcotest.test_case "expected-incorrect model" `Quick
            test_fig8_expected_incorrect_model;
          Alcotest.test_case "small campaign soundness" `Slow
            test_fig8_small_campaign_soundness;
        ] );
    ]
