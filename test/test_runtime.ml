(* Tests for the work-stealing runtime: DAG construction, the engine's
   execution/termination accounting, metrics, and determinism. *)

let checki = Alcotest.check Alcotest.int
let checkb = Alcotest.check Alcotest.bool

open Ws_runtime

(* ------------------------------------------------------------------ *)
(* DAG                                                                 *)
(* ------------------------------------------------------------------ *)

let test_dag_leaf () =
  let d = Dag.of_comp (Dag.Leaf 42) in
  checki "size" 1 (Dag.size d);
  checki "work" 42 (Dag.total_work d);
  checki "cp" 42 (Dag.critical_path d)

let test_dag_fork () =
  let d =
    Dag.of_comp
      (Dag.Fork { before = 10; children = [ Dag.Leaf 5; Dag.Leaf 7 ]; after = 3 })
  in
  checki "size: fork + join + 2 leaves" 4 (Dag.size d);
  checki "work" 25 (Dag.total_work d);
  (* critical path: fork -> leaf 7 -> join *)
  checki "cp" 20 (Dag.critical_path d)

let test_dag_seq () =
  let d = Dag.of_comp (Dag.Seq [ Dag.Leaf 5; Dag.Leaf 6; Dag.Leaf 7 ]) in
  checki "size" 3 (Dag.size d);
  checki "seq critical path = total" 18 (Dag.critical_path d);
  checki "work" 18 (Dag.total_work d)

let test_dag_empty_seq () =
  let d = Dag.of_comp (Dag.Seq []) in
  checki "empty seq has a single zero task" 1 (Dag.size d);
  checki "zero work" 0 (Dag.total_work d)

let test_dag_fib_structure () =
  (* fib 5 call tree: fib(n+1)=8 leaves, 7 internal forks -> 8 + 14 tasks *)
  let d = Dag.of_comp (Ws_workloads.Cilk_suite.fib ~spawn:1 ~join:1 ~leaf:1 5) in
  checki "task count" 22 (Dag.size d);
  (* critical path: depth-4 chain of forks and joins + leaf *)
  checkb "cp below total work" true (Dag.critical_path d < Dag.total_work d)

let test_dag_instantiate_runs_every_task_once () =
  let d =
    Dag.of_comp
      (Dag.Fork
         {
           before = 1;
           children = [ Dag.Leaf 1; Dag.Leaf 1; Dag.Leaf 1 ];
           after = 1;
         })
  in
  let wl = Dag.instantiate d ~name:"t" in
  let cfg = { Engine.default_config with workers = 2; seed = 5 } in
  let r = Engine.run_timed cfg wl in
  checkb "quiescent" true (r.Engine.outcome = Tso.Sched.Quiescent);
  checki "no duplicates" 0 r.Engine.duplicates;
  checki "no losses" 0 r.Engine.lost;
  checki "all 5 tasks ran" 5 (Metrics.total_tasks r.Engine.metrics)

(* Calling execute directly (host side) needs zero-work strands: Program
   effects are only legal inside a simulated thread. *)
let test_dag_double_execution_guard () =
  let d = Dag.of_comp (Dag.Leaf 0) in
  let wl = Dag.instantiate d ~name:"guard" in
  let ran = wl.Workload.execute ~worker:0 0 in
  checki "leaf spawns nothing" 0 (List.length ran);
  Alcotest.check_raises "second execution trips the guard"
    (Failure "DAG workload guard: task 0 executed twice") (fun () ->
      ignore (wl.Workload.execute ~worker:0 0))

let test_dag_dependency_order () =
  (* join must not run before both children completed *)
  let d =
    Dag.of_comp
      (Dag.Fork { before = 0; children = [ Dag.Leaf 0; Dag.Leaf 0 ]; after = 0 })
  in
  let wl = Dag.instantiate d ~name:"dep" in
  (* fork is task 0, join task 1, leaves 2 and 3 *)
  let spawned_by_fork = wl.Workload.execute ~worker:0 0 in
  checkb "fork enables only the leaves" true
    (List.sort compare spawned_by_fork = [ 2; 3 ]);
  let s1 = wl.Workload.execute ~worker:0 2 in
  checki "first leaf does not release the join" 0 (List.length s1);
  let s2 = wl.Workload.execute ~worker:0 3 in
  Alcotest.(check (list int)) "second leaf releases the join" [ 1 ] s2

(* ------------------------------------------------------------------ *)
(* Engine                                                              *)
(* ------------------------------------------------------------------ *)

let fib_dag = lazy (Dag.of_comp (Ws_workloads.Cilk_suite.fib 10))

let engine_cfg qname =
  {
    Engine.default_config with
    workers = 3;
    queue = Ws_core.Registry.find qname;
    delta = 3;
    sb_capacity = 6;
    seed = 11;
  }

let test_engine_runs_fib qname () =
  let wl = Dag.instantiate (Lazy.force fib_dag) ~name:"fib10" in
  let r = Engine.run_timed (engine_cfg qname) wl in
  checkb "quiescent" true (r.Engine.outcome = Tso.Sched.Quiescent);
  checki "lost" 0 r.Engine.lost;
  checki "duplicates" 0 r.Engine.duplicates

let test_engine_random_mode qname () =
  let wl = Workload.uniform ~name:"u" ~tasks:40 ~work:5 () in
  let r = Engine.run_random ~drain_weight:0.08 (engine_cfg qname) wl in
  checkb "quiescent" true (r.Engine.outcome = Tso.Sched.Quiescent);
  checki "lost" 0 r.Engine.lost

let test_engine_single_worker_no_steals () =
  let wl = Workload.uniform ~name:"u" ~tasks:20 ~work:5 () in
  let cfg = { (engine_cfg "the") with workers = 1 } in
  let r = Engine.run_timed cfg wl in
  checkb "quiescent" true (r.Engine.outcome = Tso.Sched.Quiescent);
  checki "no steal attempts with one worker" 0
    (Metrics.total_steals r.Engine.metrics);
  checki "all tasks on worker 0" 20
    r.Engine.metrics.Metrics.workers.(0).Metrics.tasks_run

let test_engine_determinism () =
  let run () =
    let wl = Dag.instantiate (Lazy.force fib_dag) ~name:"fib10" in
    let r = Engine.run_timed (engine_cfg "chase-lev") wl in
    match r.Engine.timing with Some t -> t.Tso.Timing.makespan | None -> -1
  in
  checki "same seed, same makespan" (run ()) (run ())

let test_engine_seed_changes_schedule () =
  let run seed =
    let wl = Dag.instantiate (Lazy.force fib_dag) ~name:"fib10" in
    let r = Engine.run_timed { (engine_cfg "chase-lev") with seed } wl in
    match r.Engine.timing with Some t -> t.Tso.Timing.makespan | None -> -1
  in
  (* different victim choices virtually always shift the makespan *)
  checkb "different seeds differ" true (run 1 <> run 2 || run 1 <> run 3)

let test_engine_metrics_consistency () =
  let wl = Dag.instantiate (Lazy.force fib_dag) ~name:"fib10" in
  let r = Engine.run_timed (engine_cfg "chase-lev") wl in
  let m = r.Engine.metrics in
  let executions =
    Hashtbl.fold (fun _ c acc -> acc + c) r.Engine.executions 0
  in
  checki "tasks_run equals total executions" executions (Metrics.total_tasks m);
  let stolen =
    Array.fold_left
      (fun acc w -> acc + w.Metrics.tasks_run_stolen)
      0 m.Metrics.workers
  in
  let steals = Metrics.total_steals m in
  checki "every successful steal was executed" steals stolen;
  checki "puts cover every task" (Dag.size (Lazy.force fib_dag))
    (Array.fold_left (fun acc w -> acc + w.Metrics.puts) 0 m.Metrics.workers)

let test_engine_parallel_speedup () =
  let mk () = Dag.instantiate (Dag.of_comp (Ws_workloads.Cilk_suite.fib 12)) ~name:"fib12" in
  let time workers =
    let r =
      Engine.run_timed { (engine_cfg "the") with workers } (mk ())
    in
    match r.Engine.timing with Some t -> t.Tso.Timing.makespan | None -> -1
  in
  let t1 = time 1 and t4 = time 4 in
  checkb "4 workers at least 2x faster than 1 on fib" true
    (float_of_int t1 /. float_of_int t4 > 2.0)

let test_engine_dynamic_workload_duplicates_tolerated () =
  (* idempotent queue + a workload that dedups via simulated CAS *)
  let g = Ws_workloads.Graph.torus ~width:10 ~height:10 in
  let checked = Ws_workloads.Graph_workloads.transitive_closure g ~src:0 () in
  let cfg = engine_cfg "idempotent-lifo" in
  let r = Engine.run_timed cfg checked.Ws_workloads.Graph_workloads.workload in
  checkb "quiescent" true (r.Engine.outcome = Tso.Sched.Quiescent);
  (match checked.Ws_workloads.Graph_workloads.verify () with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  checki "every node visited (tasks ran >= nodes)" 100
    (Hashtbl.length r.Engine.executions)

let test_workload_uniform () =
  let wl = Workload.uniform ~name:"u" ~tasks:7 ~work:3 () in
  checki "roots" 7 (List.length wl.Workload.roots);
  Alcotest.(check (option int)) "expected total" (Some 7) wl.Workload.expected_total



let test_workload_init_hook_runs () =
  let called = ref false in
  let wl =
    Workload.make ~name:"init-check" ~roots:[ 0 ]
      ~execute:(fun ~worker:_ _ -> [])
      ~init:(fun m ->
        called := true;
        ignore (Tso.Memory.alloc (Tso.Machine.memory m) ~name:"probe" ~init:0))
      ~expected_total:1 ()
  in
  let r = Engine.run_timed { Engine.default_config with workers = 1 } wl in
  checkb "init ran before the workers" true !called;
  checkb "quiescent" true (r.Engine.outcome = Tso.Sched.Quiescent)

let test_victim_round_robin () =
  let wl = Workload.uniform ~name:"u" ~tasks:60 ~work:20 () in
  let cfg =
    { (engine_cfg "chase-lev") with Engine.victim = Engine.Round_robin_victim }
  in
  let r = Engine.run_timed cfg wl in
  checkb "quiescent" true (r.Engine.outcome = Tso.Sched.Quiescent);
  checki "lost" 0 r.Engine.lost;
  checki "duplicates" 0 r.Engine.duplicates;
  (* deterministic regardless of RNG: same makespan twice *)
  let r2 = Engine.run_timed cfg (Workload.uniform ~name:"u" ~tasks:60 ~work:20 ()) in
  (match (r.Engine.timing, r2.Engine.timing) with
  | Some a, Some b -> checki "deterministic" a.Tso.Timing.makespan b.Tso.Timing.makespan
  | _ -> Alcotest.fail "timed runs expected")

(* qcheck: random fork/join computations run to completion with exactly-once
   execution, and the makespan respects the DAG's work/span bounds *)
let comp_gen =
  let open QCheck.Gen in
  sized_size (int_range 0 5) @@ fix (fun self n ->
      if n = 0 then map (fun w -> Dag.Leaf w) (int_range 0 40)
      else
        frequency
          [
            (1, map (fun w -> Dag.Leaf w) (int_range 0 40));
            ( 3,
              map3
                (fun before children after ->
                  Dag.Fork { before; children; after })
                (int_range 0 10)
                (list_size (int_range 1 3) (self (n - 1)))
                (int_range 0 10) );
            (1, map (fun cs -> Dag.Seq cs) (list_size (int_range 1 3) (self (n - 1))));
          ])

let random_dag_prop =
  QCheck.Test.make ~name:"random DAGs: exactly-once, span <= makespan" ~count:60
    (QCheck.make comp_gen)
    (fun comp ->
      let dag = Dag.of_comp comp in
      let wl = Dag.instantiate dag ~name:"random" in
      let cfg =
        { (engine_cfg "chase-lev") with workers = 3; seed = Dag.size dag }
      in
      let r = Engine.run_timed cfg wl in
      let makespan =
        match r.Engine.timing with Some t -> t.Tso.Timing.makespan | None -> -1
      in
      r.Engine.outcome = Tso.Sched.Quiescent
      && r.Engine.lost = 0
      && r.Engine.duplicates = 0
      && Hashtbl.length r.Engine.executions = Dag.size dag
      && makespan >= Dag.critical_path dag
      && makespan * cfg.Engine.workers >= Dag.total_work dag)

(* ------------------------------------------------------------------ *)
(* Open system                                                         *)
(* ------------------------------------------------------------------ *)

let open_cfg =
  {
    Open_system.default_config with
    Open_system.requests = 120;
    workers = 2;
    chain = 2;
    seed = 3;
  }

let test_open_system_block_completes_all () =
  let r = Open_system.run open_cfg in
  checkb "quiescent" true (r.Open_system.outcome = Tso.Sched.Quiescent);
  checki "injected all" 120 r.Open_system.injected;
  checki "no drops under Block" 0 r.Open_system.dropped;
  checki "completed = injected" r.Open_system.injected r.Open_system.completed;
  checkb "tail monotone" true
    (r.Open_system.p50 <= r.Open_system.p99
    && r.Open_system.p99 <= r.Open_system.p999);
  checkb "peak queue within capacity" true
    (r.Open_system.peak_queue <= open_cfg.Open_system.capacity)

let test_open_system_deterministic () =
  let key (r : Open_system.report) =
    ( r.Open_system.injected,
      r.Open_system.completed,
      r.Open_system.makespan,
      r.Open_system.steps,
      (r.Open_system.p50, r.Open_system.p99, r.Open_system.p999) )
  in
  checkb "byte-equal reports" true
    (key (Open_system.run open_cfg) = key (Open_system.run open_cfg));
  let other = { open_cfg with Open_system.seed = 4 } in
  checkb "a different seed is a different run" true
    (key (Open_system.run open_cfg) <> key (Open_system.run other))

let test_open_system_drop_under_overload () =
  (* tiny injector + arrivals far above service capacity: Drop must shed
     load, and every admitted request must still complete *)
  let cfg =
    {
      open_cfg with
      Open_system.capacity = 4;
      policy = Open_load.Drop;
      arrival = Open_load.Poisson { rate = 50.0 };
      service = Open_load.Fixed { ticks = 400 };
    }
  in
  let r = Open_system.run cfg in
  checkb "quiescent" true (r.Open_system.outcome = Tso.Sched.Quiescent);
  checkb "drops observed" true (r.Open_system.dropped > 0);
  checki "admitted + dropped = offered" cfg.Open_system.requests
    (r.Open_system.injected + r.Open_system.dropped);
  checki "admitted all complete" r.Open_system.injected
    r.Open_system.completed;
  checkb "peak bounded by capacity" true
    (r.Open_system.peak_queue <= cfg.Open_system.capacity)

let test_open_system_block_backpressure () =
  (* same overload under Block: nothing is lost, the injector stalls
     instead (visible as pause cycles) *)
  let cfg =
    {
      open_cfg with
      Open_system.capacity = 4;
      arrival = Open_load.Poisson { rate = 50.0 };
      service = Open_load.Fixed { ticks = 400 };
    }
  in
  let r = Open_system.run cfg in
  checki "no drops" 0 r.Open_system.dropped;
  checki "all complete" cfg.Open_system.requests r.Open_system.completed;
  checkb "injector visibly stalled" true (r.Open_system.block_spins > 0)

let test_open_system_stage_attribution () =
  (* qwait + dispatch + service partition each request's sojourn exactly,
     so the merged stage histograms must agree with the sojourn histogram
     in both count and total mass *)
  let r = Open_system.run open_cfg in
  let module H = Telemetry.Histogram in
  List.iter
    (fun (name, h) ->
      checki (name ^ " counts one sample per completion") r.Open_system.completed
        (H.total h))
    [
      ("sojourn", r.Open_system.sojourn);
      ("qwait", r.Open_system.qwait);
      ("dispatch", r.Open_system.dispatch);
      ("service", r.Open_system.service);
    ];
  checki "stage sums partition the sojourn sum"
    (H.sum r.Open_system.sojourn)
    (H.sum r.Open_system.qwait + H.sum r.Open_system.dispatch
   + H.sum r.Open_system.service);
  (* no stage observed a negative interval (a clock inversion would be
     counted apart by the histogram) *)
  List.iter
    (fun h -> checki "no negative stage samples" 0 (H.negative h))
    [ r.Open_system.qwait; r.Open_system.dispatch; r.Open_system.service ]

let test_open_system_windowed_deterministic () =
  (* the rotating-window series are part of the deterministic surface:
     byte-identical across runs, and their retained mass never exceeds the
     completed count (older windows may have been evicted) *)
  let module W = Telemetry.Windowed in
  let module H = Telemetry.Histogram in
  let render (w : W.t) = Telemetry.Json.to_string ~indent:true (W.to_json w) in
  let a = Open_system.run open_cfg and b = Open_system.run open_cfg in
  Alcotest.(check string)
    "sojourn windows byte-identical across runs"
    (render a.Open_system.sojourn_windows)
    (render b.Open_system.sojourn_windows);
  Alcotest.(check string)
    "qwait windows byte-identical across runs"
    (render a.Open_system.qwait_windows)
    (render b.Open_system.qwait_windows);
  let retained w =
    List.fold_left (fun acc (_, h) -> acc + H.total h) 0 (W.windows w)
  in
  checkb "windows retain at most the completed mass" true
    (retained a.Open_system.sojourn_windows <= a.Open_system.completed
    && retained a.Open_system.sojourn_windows > 0);
  (* a different worker count redistributes execution but must not change
     the merged window series (partition independence end-to-end) — with
     the same plan, the same requests complete; only scheduling shifts.
     Timing does shift with workers, so compare 2 workers against the same
     2-worker sim observed through more shards is not expressible here;
     instead pin that the per-run series agree with the whole-run
     histogram's totals per window. *)
  List.iter
    (fun (_, h) -> checki "window histograms carry no negatives" 0 (H.negative h))
    (W.windows a.Open_system.qwait_windows)

let test_open_system_sharded_counters () =
  (* the sink totals must not depend on the sharded plane's merge order:
     two identical runs produce byte-identical counter JSON *)
  let render () =
    let sink = Telemetry.Sink.create () in
    ignore (Open_system.run ~sink open_cfg);
    Telemetry.Json.to_string ~indent:true (Telemetry.Sink.to_json sink)
  in
  Alcotest.(check string) "counter JSON reproducible" (render ()) (render ())

let () =
  Alcotest.run "runtime"
    [
      ( "dag",
        [
          Alcotest.test_case "leaf" `Quick test_dag_leaf;
          Alcotest.test_case "fork" `Quick test_dag_fork;
          Alcotest.test_case "seq" `Quick test_dag_seq;
          Alcotest.test_case "empty seq" `Quick test_dag_empty_seq;
          Alcotest.test_case "fib structure" `Quick test_dag_fib_structure;
          Alcotest.test_case "instantiate: every task once" `Quick
            test_dag_instantiate_runs_every_task_once;
          Alcotest.test_case "double-execution guard" `Quick
            test_dag_double_execution_guard;
          Alcotest.test_case "dependency order" `Quick test_dag_dependency_order;
        ] );
      ( "engine",
        (* DAG workloads require exactly-once extraction, so the idempotent
           queues are exercised through CAS-deduplicating workloads instead
           (see "idempotent + dynamic workload" below and test_workloads) *)
        List.map
          (fun q ->
            Alcotest.test_case
              (Printf.sprintf "fib to quiescence [%s]" q)
              `Quick (test_engine_runs_fib q))
          [ "the"; "chase-lev"; "chase-lev-dyn"; "abp"; "ff-the"; "ff-cl"; "thep"; "thep-sep" ]
        @ List.map
            (fun q ->
              Alcotest.test_case
                (Printf.sprintf "random mode [%s]" q)
                `Slow (test_engine_random_mode q))
            Ws_core.Registry.names
        @ [
            Alcotest.test_case "single worker" `Quick
              test_engine_single_worker_no_steals;
            Alcotest.test_case "determinism" `Quick test_engine_determinism;
            Alcotest.test_case "seed sensitivity" `Quick
              test_engine_seed_changes_schedule;
            Alcotest.test_case "metrics consistency" `Quick
              test_engine_metrics_consistency;
            Alcotest.test_case "parallel speedup" `Quick
              test_engine_parallel_speedup;
            Alcotest.test_case "idempotent + dynamic workload" `Quick
              test_engine_dynamic_workload_duplicates_tolerated;
            Alcotest.test_case "uniform workload" `Quick test_workload_uniform;
            Alcotest.test_case "workload init hook" `Quick
              test_workload_init_hook_runs;
            Alcotest.test_case "round-robin victims" `Quick test_victim_round_robin;
            QCheck_alcotest.to_alcotest random_dag_prop;
          ] );
      ( "open-system",
        [
          Alcotest.test_case "block completes all" `Quick
            test_open_system_block_completes_all;
          Alcotest.test_case "deterministic under seed" `Quick
            test_open_system_deterministic;
          Alcotest.test_case "drop sheds under overload" `Quick
            test_open_system_drop_under_overload;
          Alcotest.test_case "block backpressure" `Quick
            test_open_system_block_backpressure;
          Alcotest.test_case "sharded counters reproducible" `Quick
            test_open_system_sharded_counters;
          Alcotest.test_case "stage attribution partitions sojourn" `Quick
            test_open_system_stage_attribution;
          Alcotest.test_case "windowed series deterministic" `Quick
            test_open_system_windowed_deterministic;
        ] );
    ]
