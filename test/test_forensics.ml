(* Counterexample forensics: ddmin schedule shrinking, reorder-witness
   extraction, and the wsrepro-forensics/v1 report.

   The scenario under test is the known delta-soundness violation: FF-THE
   with S = 2 and no client stores between takes needs delta = ceil(2/1) = 2,
   so delta = 1 lets the thief certify a stale tail and a task is extracted
   twice. The paired configuration delta = 2 is provably clean. *)

let check = Alcotest.check
let checki = check Alcotest.int
let checkb = check Alcotest.bool

let violating_spec =
  {
    Ws_harness.Scenarios.default_spec with
    sb_capacity = 2;
    delta = 1;
    client_stores = 0;
    preloaded = 3;
    steal_attempts = 1;
  }

let mk = Ws_harness.Scenarios.instance violating_spec

(* One exhaustive search, shared by every test (the explorer is
   deterministic, so the recorded failure is too). *)
let failure =
  lazy
    (let st =
       Ws_harness.Scenarios.explore_check violating_spec
         ~preemption_bound:(Some 3) ~memo:true ()
     in
     match Tso.Explore.failures_in_replay_order st with
     | (choices, msg) :: _ -> (choices, msg)
     | [] -> Alcotest.fail "expected a delta violation at S = delta + 1")

let test_delta_pairing () =
  (* the violation really is the delta argument's edge: the same scenario
     with delta = 2 explores clean *)
  let st =
    Ws_harness.Scenarios.explore_check
      { violating_spec with delta = 2 }
      ~preemption_bound:(Some 3) ~memo:true ()
  in
  checkb "delta=2 is sound at S=2" true
    (st.Tso.Explore.failures = [] && st.Tso.Explore.truncated = 0)

let test_shrink_minimizes () =
  let choices, msg = Lazy.force failure in
  match Forensics.Shrink.minimize ~mk ~choices ~message:msg () with
  | Error e -> Alcotest.fail e
  | Ok r ->
      checkb "strictly shorter" true
        (List.length r.Forensics.Shrink.choices < List.length choices);
      check Alcotest.string "verdict message preserved" msg
        r.Forensics.Shrink.message;
      checkb "original kept verbatim" true
        (r.Forensics.Shrink.original = choices);
      checkb "oracle was consulted" true (r.Forensics.Shrink.iterations > 1);
      checkb "minimized still reproduces" true
        (Forensics.Shrink.reproduces ~mk ~message:msg
           r.Forensics.Shrink.choices);
      (* 1-minimality: removing any single choice kills the repro *)
      let arr = Array.of_list r.Forensics.Shrink.choices in
      Array.iteri
        (fun i _ ->
          let shorter =
            List.filteri (fun j _ -> j <> i) r.Forensics.Shrink.choices
          in
          checkb
            (Printf.sprintf "dropping choice %d no longer reproduces" i)
            false
            (Forensics.Shrink.reproduces ~mk ~message:msg shorter))
        arr

let test_shrink_rejects_stale () =
  (* a choice sequence that does not replay to the message is a stale
     failure record: minimize must refuse rather than return garbage *)
  let choices, _ = Lazy.force failure in
  match
    Forensics.Shrink.minimize ~mk ~choices ~message:"some other verdict" ()
  with
  | Ok _ -> Alcotest.fail "minimize accepted a non-reproducing sequence"
  | Error _ -> ()

let test_witness_depth_exceeds_delta () =
  (* the delta argument, observed: a violation at S = delta + 1 must
     contain a load that committed with more than delta stores pending *)
  let choices, msg = Lazy.force failure in
  let r = Forensics.Witness.replay ~mk choices in
  (match r.Forensics.Witness.verdict with
  | Error m -> check Alcotest.string "replay reaches the verdict" msg m
  | Ok () -> Alcotest.fail "witness replay came back clean");
  checkb "at least one reorder witness" true
    (r.Forensics.Witness.witnesses <> []);
  checkb
    (Printf.sprintf "max depth %d exceeds delta %d"
       r.Forensics.Witness.max_depth violating_spec.delta)
    true
    (r.Forensics.Witness.max_depth > violating_spec.delta);
  List.iter
    (fun (w : Forensics.Witness.t) ->
      checki (w.Forensics.Witness.instr ^ ": depth = |pending|")
        (List.length w.Forensics.Witness.pending)
        w.Forensics.Witness.depth;
      checkb "depth bounded by the buffer capacity" true
        (w.Forensics.Witness.depth <= violating_spec.sb_capacity);
      checkb "witnesses are loads" true
        (String.length w.Forensics.Witness.instr >= 4
        && String.sub w.Forensics.Witness.instr 0 4 = "load"))
    r.Forensics.Witness.witnesses;
  checkb "timeline rendered" true (r.Forensics.Witness.timeline <> "");
  checkb "events recorded" true (r.Forensics.Witness.events <> [])

let build_report ?sink () =
  let choices, msg = Lazy.force failure in
  match
    Ws_harness.Runner.forensics_report violating_spec ?sink ~choices
      ~message:msg ()
  with
  | Error e -> Alcotest.fail e
  | Ok r -> r

let test_report_roundtrip () =
  let r = build_report () in
  let choices, msg = Lazy.force failure in
  checkb "minimized strictly shorter than original" true
    (List.length r.Forensics.Report.minimized < List.length choices);
  check Alcotest.string "message carried" msg r.Forensics.Report.message;
  checkb "report sees the witness depth" true
    (Forensics.Report.max_reorder_depth r > violating_spec.delta);
  checkb "summary is non-empty" true (Forensics.Report.summary r <> "");
  (* emit -> parse -> validate with the in-tree JSON layer only *)
  let s = Forensics.Report.to_string r in
  match Telemetry.Json.parse s with
  | Error e -> Alcotest.fail ("report does not re-parse: " ^ e)
  | Ok j -> (
      (match Telemetry.Json.member "schema" j with
      | Some (Telemetry.Json.Str tag) ->
          check Alcotest.string "schema tag" "wsrepro-forensics/v1" tag
      | _ -> Alcotest.fail "missing schema tag");
      match Forensics.Report.validate j with
      | Ok () -> ()
      | Error e -> Alcotest.fail ("emitted report fails validation: " ^ e))

let test_report_byte_stable () =
  (* two independent builds of the same failure render identical bytes *)
  let a = Forensics.Report.to_string (build_report ()) in
  let b = Forensics.Report.to_string (build_report ()) in
  checkb "byte-stable across builds" true (String.equal a b)

let test_validate_rejects () =
  let r = build_report () in
  let j = Forensics.Report.to_json r in
  let set k v = function
    | Telemetry.Json.Obj fields ->
        Telemetry.Json.Obj
          (List.map (fun (k', v') -> if k' = k then (k, v) else (k', v')) fields)
    | other -> other
  in
  let expect_error label doc =
    match Forensics.Report.validate doc with
    | Ok () -> Alcotest.fail (label ^ ": corrupted report passed validation")
    | Error _ -> ()
  in
  expect_error "wrong schema" (set "schema" (Telemetry.Json.Str "nope") j);
  expect_error "inconsistent max depth"
    (set "max_reorder_depth" (Telemetry.Json.Int 99) j);
  expect_error "empty timeline" (set "timeline" (Telemetry.Json.Str "") j);
  expect_error "schedule length mismatch"
    (set "minimized"
       (Telemetry.Json.Obj
          [
            ("length", Telemetry.Json.Int 3);
            ("choices", Telemetry.Json.List [ Telemetry.Json.Int 0 ]);
          ])
       j);
  expect_error "witnesses must be objects"
    (set "witnesses" (Telemetry.Json.List [ Telemetry.Json.Int 1 ]) j)

let test_sink_counters () =
  let sink = Telemetry.Sink.create () in
  let r = build_report ~sink () in
  checkb "shrink_iterations counted" true
    (sink.Telemetry.Sink.shrink_iterations > 0);
  checkb "witness_events counted" true
    (sink.Telemetry.Sink.witness_events > 0);
  checki "report bytes not yet counted" 0
    sink.Telemetry.Sink.forensics_report_bytes;
  let s = Forensics.Report.to_string ~sink r in
  checki "forensics_report_bytes = emitted length" (String.length s)
    sink.Telemetry.Sink.forensics_report_bytes

let () =
  Alcotest.run "forensics"
    [
      ( "shrink",
        [
          Alcotest.test_case "ddmin minimizes to 1-minimal" `Quick
            test_shrink_minimizes;
          Alcotest.test_case "rejects stale failures" `Quick
            test_shrink_rejects_stale;
        ] );
      ( "witness",
        [
          Alcotest.test_case "delta pairing: delta=2 is clean" `Quick
            test_delta_pairing;
          Alcotest.test_case "depth exceeds delta on the violation" `Quick
            test_witness_depth_exceeds_delta;
        ] );
      ( "report",
        [
          Alcotest.test_case "build/emit/parse/validate" `Quick
            test_report_roundtrip;
          Alcotest.test_case "byte-stable" `Quick test_report_byte_stable;
          Alcotest.test_case "validate rejects corruption" `Quick
            test_validate_rejects;
          Alcotest.test_case "telemetry counters" `Quick test_sink_counters;
        ] );
    ]
