(* Tests for the experiment harness: statistics, table rendering, machine
   configs, variants and the experiment drivers' qualitative claims (the
   paper's headline results, in miniature). *)

let checki = Alcotest.check Alcotest.int
let checkb = Alcotest.check Alcotest.bool
let checkf = Alcotest.check (Alcotest.float 1e-9)

open Ws_harness

(* ------------------------------------------------------------------ *)
(* Stats                                                               *)
(* ------------------------------------------------------------------ *)

let test_median () =
  checkf "odd" 2.0 (Stats.median [ 3.0; 1.0; 2.0 ]);
  checkf "even interpolates" 2.5 (Stats.median [ 1.0; 2.0; 3.0; 4.0 ]);
  checkf "single" 7.0 (Stats.median [ 7.0 ])

let test_percentile () =
  let xs = List.init 11 (fun i -> float_of_int i) in
  checkf "p0" 0.0 (Stats.percentile 0.0 xs);
  checkf "p100" 10.0 (Stats.percentile 100.0 xs);
  checkf "p50" 5.0 (Stats.percentile 50.0 xs);
  checkf "p10" 1.0 (Stats.percentile 10.0 xs)

let test_geomean () =
  checkf "geomean" 2.0 (Stats.geomean [ 1.0; 2.0; 4.0 ]);
  checkf "identity" 5.0 (Stats.geomean [ 5.0 ])

let test_mean () = checkf "mean" 2.0 (Stats.mean [ 1.0; 2.0; 3.0 ])

let test_empty_raises () =
  Alcotest.check_raises "median of empty"
    (Invalid_argument "Stats.percentile: empty") (fun () ->
      ignore (Stats.median []))

let test_summary () =
  let s = Stats.summarize (List.init 101 (fun i -> float_of_int i)) in
  checkf "median" 50.0 s.Stats.median;
  checkf "p10" 10.0 s.Stats.p10;
  checkf "p90" 90.0 s.Stats.p90

let stats_props =
  [
    QCheck.Test.make ~name:"median within min/max" ~count:200
      QCheck.(list_of_size Gen.(int_range 1 40) (float_bound_exclusive 1000.0))
      (fun xs ->
        let m = Stats.median xs in
        m >= List.fold_left min infinity xs
        && m <= List.fold_left max neg_infinity xs);
    QCheck.Test.make ~name:"geomean of equal values is that value" ~count:50
      QCheck.(pair (int_range 1 20) (float_range 0.1 100.0))
      (fun (n, x) ->
        abs_float (Stats.geomean (List.init n (fun _ -> x)) -. x) < 1e-6);
  ]

(* ------------------------------------------------------------------ *)
(* Tablefmt                                                            *)
(* ------------------------------------------------------------------ *)

let test_table_alignment () =
  let s = Tablefmt.render ~header:[ "a"; "bb" ] [ [ "xxx"; "y" ]; [ "z"; "wwww" ] ] in
  let lines = String.split_on_char '\n' s in
  (match lines with
  | header :: rule :: _ ->
      checkb "rule is dashes" true (String.for_all (fun c -> c = '-') rule);
      checkb "header fits rule" true (String.length header >= String.length rule - 2)
  | _ -> Alcotest.fail "structure");
  let contains needle =
    let ln = String.length needle and ls = String.length s in
    let rec go i = i + ln <= ls && (String.sub s i ln = needle || go (i + 1)) in
    go 0
  in
  checkb "contains all cells" true (List.for_all contains [ "xxx"; "wwww" ])

let test_pct () =
  Alcotest.(check string) "pct" "96.3%" (Tablefmt.pct 96.3);
  Alcotest.(check string) "f1" "1.5" (Tablefmt.f1 1.49999)

(* ------------------------------------------------------------------ *)
(* Machine configs and variants                                        *)
(* ------------------------------------------------------------------ *)

let test_machine_configs () =
  let w = Machine_config.westmere_ex in
  checki "westmere workers" 10 w.Machine_config.workers;
  checki "westmere bound" 33 w.Machine_config.reorder_bound;
  checki "westmere default delta = ceil(33/2)" 17 (Machine_config.default_delta w);
  let h = Machine_config.haswell in
  checki "haswell workers" 4 h.Machine_config.workers;
  checki "haswell bound" 43 h.Machine_config.reorder_bound;
  checki "haswell default delta" 22 (Machine_config.default_delta h);
  checki "delta for x=2" 11 (Machine_config.delta_for w ~client_stores:2);
  checkb "find round-trips" true
    (Machine_config.find "haswell" == Machine_config.haswell);
  let s = Machine_config.sparc_t2 in
  checki "sparc bound" 8 s.Machine_config.reorder_bound;
  checki "sparc default delta = 4 (usable FF-THE)" 4
    (Machine_config.default_delta s);
  checki "primary excludes sparc" 2 (List.length Machine_config.primary);
  checki "all includes sparc" 3 (List.length Machine_config.all)

let test_variants () =
  checki "five fig10 variants" 5 (List.length Variants.fig10);
  checki "four fig11 variants" 4 (List.length Variants.fig11);
  let thep_inf = List.nth Variants.fig10 2 in
  Alcotest.(check string)
    "delta rendering" "inf"
    (Variants.delta_to_string Machine_config.haswell thep_inf);
  (* every referenced queue exists in the registry *)
  List.iter
    (fun (v : Variants.t) -> ignore (Ws_core.Registry.find v.Variants.queue))
    (Variants.the_baseline :: Variants.the_no_fence :: Variants.fig10
   @ Variants.fig11)

(* ------------------------------------------------------------------ *)
(* Experiment drivers: the paper's headline claims in miniature        *)
(* ------------------------------------------------------------------ *)

let test_fig1_shape () =
  let rows = Exp_fig1.compute ~machine:Machine_config.haswell () in
  checki "seven benchmarks" 7 (List.length rows);
  List.iter
    (fun (r : Exp_fig1.row) ->
      checkb
        (Printf.sprintf "%s: removing the fence helps (%0.1f%%)" r.Exp_fig1.bench
           r.Exp_fig1.normalized)
        true
        (r.Exp_fig1.normalized < 100.0 && r.Exp_fig1.normalized > 50.0))
    rows;
  let get n = (List.find (fun (r : Exp_fig1.row) -> r.Exp_fig1.bench = n) rows).Exp_fig1.normalized in
  (* fine-grained benchmarks benefit more than coarse blocked ones *)
  checkb "Fib benefits more than Matmul" true (get "Fib" < get "Matmul");
  checkb "knapsack benefits more than Jacobi" true (get "knapsack" < get "Jacobi")

let test_sparc_ff_the_works_by_default () =
  (* small store buffer => default delta is 4 => FF-THE does not collapse,
     unlike on the x86 configs (the S-dependence the §4 formula predicts) *)
  let rows =
    Exp_fig10.compute Machine_config.sparc_t2 ~repeats:1 ~benches:[ "Integrate" ] ()
  in
  match rows with
  | [ row ] ->
      let v l = List.assoc l row.Exp_fig10.cells in
      checkb "FF-THE effective with the default delta" true (v "FF-THE" < 100.0)
  | _ -> Alcotest.fail "one row expected"

let test_fig10_mini () =
  (* one fence-heavy benchmark, quick settings: THEP must beat THE and
     FF-THE default delta must collapse to near-single-thread speed *)
  let rows =
    Exp_fig10.compute Machine_config.haswell ~repeats:1 ~benches:[ "Integrate" ] ()
  in
  match rows with
  | [ row ] ->
      let v l = List.assoc l row.Exp_fig10.cells in
      checkb "THEP faster than THE on Integrate" true (v "THEP" < 95.0);
      checkb "FF-THE default delta collapses" true (v "FF-THE" > 150.0);
      checkb "FF-THE delta=4 repairs it" true (v "FF-THE d=4" < 100.0)
  | _ -> Alcotest.fail "one row expected"

let test_fig11_mini () =
  let cases =
    [
      {
        Exp_fig11.label = "mini-torus";
        graph = Ws_workloads.Graph.torus ~width:20 ~height:12;
        workers = Some 2;
        node_work = 10;
        edge_work = 4;
      };
    ]
  in
  let rows = Exp_fig11.compute ~machine:Machine_config.haswell ~repeats:1 ~cases () in
  match rows with
  | [ row ] ->
      let v l = (List.assoc l row.Exp_fig11.cells).Exp_fig11.normalized in
      checkf "baseline is 100" 100.0 (v "Chase-Lev");
      checkb "FF-CL beats Chase-Lev" true (v "FF-CL" < 95.0);
      checkb "idempotent LIFO beats Chase-Lev" true (v "Idempotent LIFO" < 95.0);
      let s l = (List.assoc l row.Exp_fig11.cells).Exp_fig11.stolen_pct in
      checkb "stolen work is a tiny fraction" true (s "Chase-Lev" < 10.0)
  | _ -> Alcotest.fail "one row expected"

let test_table1_renders () =
  let s = Exp_table1.render () in
  List.iter
    (fun (b : Ws_workloads.Cilk_suite.bench) ->
      checkb
        (Printf.sprintf "mentions %s" b.Ws_workloads.Cilk_suite.name)
        true
        (let re = b.Ws_workloads.Cilk_suite.name in
         let len = String.length re in
         let rec search i =
           if i + len > String.length s then false
           else if String.sub s i len = re then true
           else search (i + 1)
         in
         search 0))
    Ws_workloads.Cilk_suite.all

let test_fig7_render () =
  let r = Exp_fig7.compute Machine_config.westmere_ex in
  checki "detected capacity" 32 r.Exp_fig7.detected;
  checkb "render mentions the knee" true
    (let s = Exp_fig7.render r in
     let rec search i =
       if i + 4 > String.length s then false
       else if String.sub s i 4 = "knee" then true
       else search (i + 1)
     in
     search 0)

(* ------------------------------------------------------------------ *)
(* Runner                                                              *)
(* ------------------------------------------------------------------ *)

let test_runner_config () =
  let cfg =
    Runner.config Machine_config.westmere_ex Variants.the_baseline ~seed:3 ()
  in
  checki "workers from machine" 10 cfg.Ws_runtime.Engine.workers;
  checki "sb capacity is the reorder bound" 33 cfg.Ws_runtime.Engine.sb_capacity;
  let cfg1 =
    Runner.config Machine_config.westmere_ex Variants.the_baseline ~workers:1
      ~seed:3 ()
  in
  checki "workers override" 1 cfg1.Ws_runtime.Engine.workers

let test_runner_rejects_incomplete_runs () =
  (* an impossible step budget must surface as an error, not silent data *)
  let dag = Ws_runtime.Dag.of_comp (Ws_workloads.Cilk_suite.fib 8) in
  let m = Machine_config.haswell in
  Alcotest.check_raises "budget error"
    (Failure "haswell/THE/tiny: run exceeded the step budget") (fun () ->
      let v = Variants.the_baseline in
      let cfg = Runner.config m v ~seed:1 () in
      ignore cfg;
      (* replicate run_dag with a tiny budget by calling the engine directly
         through a shrunken config *)
      let wl = Ws_runtime.Dag.instantiate dag ~name:"tiny" in
      let r =
        Ws_runtime.Engine.run_timed { cfg with Ws_runtime.Engine.max_steps = 10 } wl
      in
      match r.Ws_runtime.Engine.outcome with
      | Tso.Sched.Max_steps -> failwith "haswell/THE/tiny: run exceeded the step budget"
      | _ -> ())

(* ------------------------------------------------------------------ *)
(* Scenarios                                                           *)
(* ------------------------------------------------------------------ *)

let test_scenario_check_logic () =
  (* exercise the checker plumbing end to end on a correct queue *)
  let spec =
    { Scenarios.default_spec with queue = "thep"; preloaded = 3; puts = 2 }
  in
  match Scenarios.random_check spec ~seeds:[ 1; 2; 3; 4; 5 ] () with
  | Ok () -> ()
  | Error e -> Alcotest.fail e

let test_scenario_flags_bad_abort () =
  (* a queue whose steal returns Abort while may_abort = false must be
     flagged; simulate by running ff-the through a spec claiming otherwise
     is impossible, so instead check Abort accounting is exercised: ff-the
     with a tiny queue aborts and that is accepted *)
  let spec =
    {
      Scenarios.default_spec with
      queue = "ff-the";
      preloaded = 1;
      puts = 0;
      steal_attempts = 3;
      delta = 4;
    }
  in
  match Scenarios.random_check spec ~seeds:[ 7; 8; 9 ] () with
  | Ok () -> ()
  | Error e -> Alcotest.fail e


(* ------------------------------------------------------------------ *)
(* Delta static analysis (§4, "Determining delta")                     *)
(* ------------------------------------------------------------------ *)

open Ws_core.Delta_analysis

let test_delta_worker_loop () =
  (* the runtime's worker loop with one client store: x = 1, so on S = 33
     delta = ceil(33/2) = 17 — the paper's default *)
  let g = worker_loop_cfg ~client_stores:1 in
  Alcotest.(check (option int)) "x = 1" (Some 1) (min_stores_between_takes g);
  checki "delta on westmere" 17 (delta g ~bound:33);
  checki "delta on haswell" 22 (delta g ~bound:43);
  let g0 = worker_loop_cfg ~client_stores:0 in
  Alcotest.(check (option int)) "no client stores: x = 0" (Some 0)
    (min_stores_between_takes g0);
  checki "delta degenerates to the bound" 33 (delta g0 ~bound:33)

let test_delta_branchy_cfg () =
  (* two paths between takes: 5 stores or 0 stores; the analysis must be
     conservative and pick the lightest *)
  let g =
    cfg
      [
        { id = 0; stores = 0; calls_take = true; succs = [ 1; 2 ] };
        { id = 1; stores = 5; calls_take = false; succs = [ 0 ] };
        { id = 2; stores = 0; calls_take = false; succs = [ 0 ] };
      ]
  in
  Alcotest.(check (option int)) "lightest path wins" (Some 0)
    (min_stores_between_takes g)

let test_delta_loop_counts_stores () =
  (* take -> A(2 stores) -> B(3 stores) -> take *)
  let g =
    cfg
      [
        { id = 0; stores = 1; calls_take = true; succs = [ 1 ] };
        { id = 1; stores = 2; calls_take = false; succs = [ 2 ] };
        { id = 2; stores = 3; calls_take = false; succs = [ 0 ] };
      ]
  in
  (* leaving the take block carries its own stores too: 1 + 2 + 3 = 6 *)
  Alcotest.(check (option int)) "x sums block stores" (Some 6)
    (min_stores_between_takes g);
  checki "delta" 5 (delta g ~bound:33)

let test_delta_interior_take_cuts_path () =
  (* take0 -> heavy(10) -> take1 -> light(1) -> take0: the window between
     consecutive takes is min(10, 1) = 1, not 11 *)
  let g =
    cfg
      [
        { id = 0; stores = 0; calls_take = true; succs = [ 1 ] };
        { id = 1; stores = 10; calls_take = false; succs = [ 2 ] };
        { id = 2; stores = 0; calls_take = true; succs = [ 3 ] };
        { id = 3; stores = 1; calls_take = false; succs = [ 0 ] };
      ]
  in
  Alcotest.(check (option int)) "windows reset at takes" (Some 1)
    (min_stores_between_takes g)

let test_delta_single_take () =
  let g =
    cfg
      [
        { id = 0; stores = 0; calls_take = true; succs = [ 1 ] };
        { id = 1; stores = 4; calls_take = false; succs = [] };
      ]
  in
  Alcotest.(check (option int)) "take cannot reach a take" None
    (min_stores_between_takes g);
  checki "delta falls back to the bound" 9 (delta g ~bound:9)

let test_delta_validation () =
  Alcotest.check_raises "dangling successor"
    (Invalid_argument "Delta_analysis.cfg: block 0 has dangling successor 7")
    (fun () ->
      ignore (cfg [ { id = 0; stores = 0; calls_take = true; succs = [ 7 ] } ]))

(* the analysis agrees with the machine: a delta derived by the analysis is
   safe under adversarial schedules, via the litmus program whose worker CFG
   is take -> L stores -> take *)
let test_delta_analysis_matches_litmus () =
  let l = 2 in
  let g =
    cfg
      [
        { id = 0; stores = 1 (* the take's T store *); calls_take = true; succs = [ 1 ] };
        { id = 1; stores = l; calls_take = false; succs = [ 0 ] };
      ]
  in
  (* bound = 8 architectural + 1 egress *)
  let d = delta g ~bound:9 in
  checki "analysis gives ceil(9/(2+2))" 3 d;
  ignore d
  (* NOTE: the litmus x counts only the L pad stores between takes, and the
     take's own store is the +1 in ceil(S/(x+1)); encoding the T store as a
     block store makes the CFG x = L + 1, i.e. delta = ceil(S/(L+2)), which
     is NOT sound for the litmus. The sound encoding gives the take block 0
     stores: *)

let test_delta_analysis_sound_encoding () =
  let l = 2 in
  let g =
    cfg
      [
        { id = 0; stores = 0; calls_take = true; succs = [ 1 ] };
        { id = 1; stores = l; calls_take = false; succs = [ 0 ] };
      ]
  in
  let d = delta g ~bound:9 in
  checki "delta = ceil(9/(l+1))" 3 d;
  (* adversarial validation: this delta never produces an incorrect run *)
  for seed = 1 to 60 do
    let o =
      Ws_litmus.Litmus_program.run ~tasks:96 ~sb_capacity:8 ~coalesce:false ~l
        ~delta:d ~drain_weight:0.02 ~seed ()
    in
    if not (Ws_litmus.Litmus_program.correct o) then
      Alcotest.failf "seed %d: analysis-derived delta was unsound" seed
  done

(* ------------------------------------------------------------------ *)
(* Ablation driver                                                     *)
(* ------------------------------------------------------------------ *)

let test_ablation_delta_sweep () =
  let rows =
    Exp_ablation.delta_sweep ~machine:Machine_config.haswell ~bench:"Integrate"
      ~deltas:[ 4; 43 ] ()
  in
  match rows with
  | [ small; huge ] ->
      checkb "THEP is delta-insensitive" true
        (abs_float (small.Exp_ablation.thep_pct -. huge.Exp_ablation.thep_pct) < 10.0);
      checkb "FF-THE collapses at huge delta" true
        (huge.Exp_ablation.ff_the_pct > small.Exp_ablation.ff_the_pct +. 20.0);
      checkb "huge delta causes more aborts" true
        (huge.Exp_ablation.ff_the_aborts > small.Exp_ablation.ff_the_aborts)
  | _ -> Alcotest.fail "two rows expected"

let test_ablation_fence_sweep () =
  let rows =
    Exp_ablation.fence_sweep ~machine:Machine_config.haswell ~bench:"Integrate"
      ~costs:[ 0; 40 ] ()
  in
  match rows with
  | [ zero; forty ] ->
      checkb "THEP's advantage grows with fence cost" true
        (forty.Exp_ablation.thep_vs_the_pct < zero.Exp_ablation.thep_vs_the_pct);
      checkb "THE slows down with fence cost" true
        (forty.Exp_ablation.the_makespan > zero.Exp_ablation.the_makespan)
  | _ -> Alcotest.fail "two rows expected"

(* ------------------------------------------------------------------ *)
(* Domain-parallel figure regeneration                                 *)
(* ------------------------------------------------------------------ *)

let test_fig10_jobs_byte_identical () =
  (* the whole contract of --jobs: rendered output must not depend on it *)
  let render jobs =
    Exp_fig10.render Machine_config.haswell
      (Exp_fig10.compute Machine_config.haswell ~repeats:2
         ~benches:[ "Fib" ] ~jobs ())
  in
  let seq = render 1 in
  Alcotest.check Alcotest.string "jobs=3 output" seq (render 3);
  Alcotest.check Alcotest.string "jobs=8 (more domains than points)" seq
    (render 8)

let test_fig8_jobs_byte_identical () =
  let render jobs =
    let t =
      Exp_fig8.compute ~sb_capacity:8 ~runs_per_l:4 ~tasks:96 ~max_l:6
        ~seed:11 ~jobs ~s_assumed:9 ()
    in
    Exp_fig8.render t ^ Exp_fig8.render_grid t
  in
  Alcotest.check Alcotest.string "jobs=4 output" (render 1) (render 4)

let test_par_runner_semantics () =
  (* order preservation and first-error propagation in grid order *)
  let sq = Par_runner.map ~jobs:4 (fun x -> x * x) (List.init 100 Fun.id) in
  Alcotest.(check (list int)) "order preserved"
    (List.init 100 (fun i -> i * i))
    sq;
  Alcotest.(check (list int)) "jobs > items"
    [ 1; 2; 3 ]
    (Par_runner.map ~jobs:16 (fun x -> x) [ 1; 2; 3 ]);
  Alcotest.(check (list int)) "jobs=0 clamps to sequential"
    [ 4; 5 ]
    (Par_runner.map ~jobs:0 (fun x -> x) [ 4; 5 ]);
  match
    Par_runner.map ~jobs:4
      (fun x -> if x mod 7 = 3 then failwith (string_of_int x) else x)
      (List.init 40 Fun.id)
  with
  | _ -> Alcotest.fail "expected the worker's exception to propagate"
  | exception Failure msg ->
      (* 3 is the first failing item in grid order, even if a later failing
         item (10, 17, ...) finished first on another domain *)
      Alcotest.check Alcotest.string "first error in grid order" "3" msg

(* ------------------------------------------------------------------ *)
(* Open-system scenario DSL                                            *)
(* ------------------------------------------------------------------ *)

module J = Telemetry.Json
module OL = Ws_runtime.Open_load

(* a spec touching every optional field, including the bursty/bimodal arms *)
let fancy_spec =
  {
    Scenarios.sc_name = "fancy";
    sc_queue = "chase-lev";
    sc_workers = 4;
    sc_requests = 60;
    sc_chain = 2;
    sc_seed = 13;
    sc_capacity = 16;
    sc_policy = OL.Drop;
    sc_tick_ns = 25;
    sc_arrival =
      OL.Bursty
        { rate_lo = 0.5; rate_hi = 6.0; switch_lo = 0.1; switch_hi = 0.2 };
    sc_service = OL.Bimodal { short = 100; long = 1800; p_long = 0.05 };
    sc_slo =
      Some
        {
          Scenarios.slo_p99_sojourn = Some 4000;
          slo_max_drop_rate = Some 0.05;
          slo_qwait_p99 = Some 900;
          slo_dispatch_p99 = None;
          slo_service_p99 = Some 3500;
          slo_window = 4096;
          slo_window_slots = 8;
        };
  }

let test_open_spec_roundtrip () =
  List.iter
    (fun spec ->
      match Scenarios.open_spec_of_json (Scenarios.open_spec_json spec) with
      | Ok spec' ->
          checkb "emit -> parse is the identity" true (spec = spec')
      | Error e -> Alcotest.fail ("round-trip failed: " ^ e))
    [ Scenarios.default_open_spec; fancy_spec ]

let test_open_spec_byte_stable () =
  let emit spec = J.to_string ~indent:true (Scenarios.open_spec_json spec) in
  let once = emit fancy_spec in
  (* emit -> parse -> emit must reproduce the bytes (floats included) *)
  match J.parse once with
  | Error e -> Alcotest.fail e
  | Ok j -> (
      match Scenarios.open_spec_of_json j with
      | Error e -> Alcotest.fail e
      | Ok spec' -> Alcotest.(check string) "byte-stable" once (emit spec'))

let with_field extra spec =
  match Scenarios.open_spec_json spec with
  | J.Obj fields -> J.Obj (fields @ [ extra ])
  | _ -> Alcotest.fail "spec JSON is not an object"

let test_open_spec_rejects_unknown () =
  (* top-level typo *)
  checkb "unknown top-level field rejected" true
    (Result.is_error
       (Scenarios.open_spec_of_json
          (with_field ("wrokers", J.Int 3) Scenarios.default_open_spec)));
  (* nested typo inside the arrival object *)
  let nested =
    match Scenarios.open_spec_json Scenarios.default_open_spec with
    | J.Obj fields ->
        J.Obj
          (List.map
             (function
               | "arrival", J.Obj a ->
                   ("arrival", J.Obj (a @ [ ("rte", J.Float 2.0) ]))
               | kv -> kv)
             fields)
    | _ -> Alcotest.fail "spec JSON is not an object"
  in
  checkb "unknown nested field rejected" true
    (Result.is_error (Scenarios.open_spec_of_json nested))

let test_open_spec_validates () =
  let reject label j =
    checkb label true (Result.is_error (Scenarios.open_spec_of_json j))
  in
  reject "wrong schema id"
    (J.Obj [ ("schema", J.Str "wsrepro-scenario/v9") ]);
  let base =
    match Scenarios.open_spec_json Scenarios.default_open_spec with
    | J.Obj fields -> fields
    | _ -> Alcotest.fail "spec JSON is not an object"
  in
  let override k v =
    J.Obj (List.map (fun (k', v') -> if k' = k then (k, v) else (k', v')) base)
  in
  reject "unknown queue" (override "queue" (J.Str "no-such-queue"));
  reject "zero workers" (override "workers" (J.Int 0));
  reject "negative seed is fine but zero requests is not"
    (override "requests" (J.Int 0));
  reject "uniform lo > hi"
    (override "service"
       (J.Obj
          [ ("dist", J.Str "uniform"); ("lo", J.Int 9); ("hi", J.Int 3) ]));
  reject "probability out of range"
    (override "service"
       (J.Obj
          [
            ("dist", J.Str "bimodal");
            ("short", J.Int 10);
            ("long", J.Int 100);
            ("p_long", J.Float 1.5);
          ]));
  reject "bad policy" (override "policy" (J.Str "shed"))

let test_overload_report_validates () =
  let spec =
    {
      Scenarios.default_open_spec with
      Scenarios.sc_name = "mini";
      sc_workers = 2;
      sc_requests = 40;
      sc_chain = 2;
    }
  in
  let sink = Telemetry.Sink.create () in
  let points = Exp_overload.run ~factors:[ 1.0; 2.0 ] ~sink spec in
  let report = Exp_overload.report_json ~sink spec points in
  (match Exp_overload.validate report with
  | Ok () -> ()
  | Error e -> Alcotest.fail ("fresh report failed validation: " ^ e));
  (* corrupting a percentile ordering must fail *)
  let corrupt =
    match J.parse (J.to_string report) with
    | Ok j -> j
    | Error e -> Alcotest.fail e
  in
  let corrupt =
    match corrupt with
    | J.Obj fields ->
        J.Obj
          (List.map
             (function
               | "points", J.List (J.Obj p :: rest) ->
                   ( "points",
                     J.List
                       (J.Obj
                          (List.map
                             (function
                               | "sim", J.Obj sim ->
                                   ( "sim",
                                     J.Obj
                                       (List.map
                                          (function
                                            | "p50_ticks", _ ->
                                                ("p50_ticks", J.Int max_int)
                                            | kv -> kv)
                                          sim) )
                               | kv -> kv)
                             p)
                       :: rest) )
               | kv -> kv)
             fields)
    | _ -> Alcotest.fail "report is not an object"
  in
  checkb "non-monotone percentiles rejected" true
    (Result.is_error (Exp_overload.validate corrupt))

(* Native SLO verdicts over a synthetic replay result: deterministic check
   of the tick-to-ns budget conversion, the relative window indexing, and
   the pass/fail logic, without a wallclock run. *)
let test_native_verdicts () =
  let module H = Telemetry.Histogram in
  let module W = Telemetry.Windowed in
  let spec =
    { Scenarios.default_open_spec with Scenarios.sc_tick_ns = 100 }
  in
  let slo =
    {
      Scenarios.default_slo with
      Scenarios.slo_p99_sojourn = Some 10 (* 1000 ns after conversion *);
      slo_qwait_p99 = Some 5 (* 500 ns *);
      slo_max_drop_rate = Some 0.1;
    }
  in
  let h v =
    let h = H.create () in
    H.observe h v;
    h
  in
  let windows = W.create ~slots:4 ~width:(10 * 100) () in
  W.observe windows ~now:500 800 (* p99 800 <= 1000: ok *);
  W.observe windows ~now:1500 2000 (* p99 2000 > 1000: violation *);
  let r =
    {
      Exp_native.sn_injected = 9;
      sn_dropped = 1;
      sn_completed = 9;
      sn_elapsed = 0.001;
      sn_p50_ns = 800;
      sn_p99_ns = 2000;
      sn_p999_ns = 2000;
      sn_sojourn = h 800;
      sn_peak_injector = 1;
      sn_steals = 0;
      sn_injector_runs = 9;
      sn_parks = 0;
      sn_qwait = h 200 (* p99 255 <= 500: ok *);
      sn_dispatch = h 1;
      sn_service = h 1;
      sn_windows = windows;
    }
  in
  let vs = Exp_native.native_verdicts spec slo r in
  (* two window rows, the qwait stage row, the drop-rate row *)
  checki "row count" 4 (List.length vs);
  checkb "the late window fails the sojourn budget" false
    (Scenarios.verdicts_ok vs);
  (match vs with
  | w0 :: w1 :: q :: d :: [] ->
      checkb "first window ok" true w0.Scenarios.vd_ok;
      Alcotest.(check string)
        "window indices are relative" "0" w0.Scenarios.vd_window;
      Alcotest.(check string)
        "budget converted to ns" "1000" w0.Scenarios.vd_budget;
      checkb "second window violates" false w1.Scenarios.vd_ok;
      Alcotest.(check string) "relative index 1" "1" w1.Scenarios.vd_window;
      checkb "qwait within budget" true q.Scenarios.vd_ok;
      Alcotest.(check string)
        "qwait budget in ns" "500" q.Scenarios.vd_budget;
      checkb "drop rate 1/10 within 0.1" true d.Scenarios.vd_ok
  | _ -> Alcotest.fail "unexpected verdict shape")

(* The steal-delay stage only exists as a lineage join: the flight
   recorder's steal-forcing probe guarantees stolen tasks, and every
   stolen lineage must yield one non-negative spawn-to-run delay. *)
let test_steal_delay_join () =
  let module H = Telemetry.Histogram in
  let recorder = Exp_native.flight_probe ~domains:2 ~rounds:4 () in
  let h = Exp_native.steal_delay_of_flight recorder in
  checkb "every forced steal contributes a delay" true (H.total h >= 4);
  checki "no negative delays" 0 (H.negative h)

let () =
  Alcotest.run "harness"
    [
      ( "stats",
        [
          Alcotest.test_case "median" `Quick test_median;
          Alcotest.test_case "percentile" `Quick test_percentile;
          Alcotest.test_case "geomean" `Quick test_geomean;
          Alcotest.test_case "mean" `Quick test_mean;
          Alcotest.test_case "empty raises" `Quick test_empty_raises;
          Alcotest.test_case "summary" `Quick test_summary;
        ]
        @ List.map QCheck_alcotest.to_alcotest stats_props );
      ( "tablefmt",
        [
          Alcotest.test_case "alignment" `Quick test_table_alignment;
          Alcotest.test_case "formats" `Quick test_pct;
        ] );
      ( "config",
        [
          Alcotest.test_case "machines" `Quick test_machine_configs;
          Alcotest.test_case "variants" `Quick test_variants;
          Alcotest.test_case "runner config" `Quick test_runner_config;
          Alcotest.test_case "runner rejects incomplete" `Quick
            test_runner_rejects_incomplete_runs;
        ] );
      ( "experiments",
        [
          Alcotest.test_case "fig1 shape" `Slow test_fig1_shape;
          Alcotest.test_case "fig10 miniature" `Slow test_fig10_mini;
          Alcotest.test_case "sparc: default delta suffices" `Slow
            test_sparc_ff_the_works_by_default;
          Alcotest.test_case "fig11 miniature" `Slow test_fig11_mini;
          Alcotest.test_case "table1 renders" `Quick test_table1_renders;
          Alcotest.test_case "fig7 detection" `Quick test_fig7_render;
        ] );
      ( "par-runner",
        [
          Alcotest.test_case "map semantics" `Quick test_par_runner_semantics;
          Alcotest.test_case "fig10 --jobs byte-identical" `Slow
            test_fig10_jobs_byte_identical;
          Alcotest.test_case "fig8 --jobs byte-identical" `Slow
            test_fig8_jobs_byte_identical;
        ] );
      ( "scenarios",
        [
          Alcotest.test_case "check plumbing" `Quick test_scenario_check_logic;
          Alcotest.test_case "abort accounting" `Quick test_scenario_flags_bad_abort;
        ] );
      ( "open-spec-dsl",
        [
          Alcotest.test_case "round-trip" `Quick test_open_spec_roundtrip;
          Alcotest.test_case "byte-stable emit" `Quick
            test_open_spec_byte_stable;
          Alcotest.test_case "rejects unknown fields" `Quick
            test_open_spec_rejects_unknown;
          Alcotest.test_case "validates values" `Quick
            test_open_spec_validates;
          Alcotest.test_case "overload report validates" `Quick
            test_overload_report_validates;
        ] );
      ( "native-slo",
        [
          Alcotest.test_case "verdict conversion and judging" `Quick
            test_native_verdicts;
          Alcotest.test_case "steal-delay lineage join" `Quick
            test_steal_delay_join;
        ] );
      ( "delta-analysis",
        [
          Alcotest.test_case "worker loop" `Quick test_delta_worker_loop;
          Alcotest.test_case "branchy cfg" `Quick test_delta_branchy_cfg;
          Alcotest.test_case "loop store counting" `Quick test_delta_loop_counts_stores;
          Alcotest.test_case "interior takes cut windows" `Quick
            test_delta_interior_take_cuts_path;
          Alcotest.test_case "single take" `Quick test_delta_single_take;
          Alcotest.test_case "validation" `Quick test_delta_validation;
          Alcotest.test_case "encoding note" `Quick test_delta_analysis_matches_litmus;
          Alcotest.test_case "analysis-derived delta is sound" `Slow
            test_delta_analysis_sound_encoding;
        ] );
      ( "ablation",
        [
          Alcotest.test_case "delta sweep" `Slow test_ablation_delta_sweep;
          Alcotest.test_case "fence sweep" `Slow test_ablation_fence_sweep;
        ] );
    ]
