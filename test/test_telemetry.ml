(* Telemetry unit tests: histogram bucketing, sink merge/reset semantics,
   the strict JSON parser, and the Chrome-trace exporter (span nesting for a
   known two-thread interleaving, byte-stable output). *)

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool
let string = Alcotest.string

module H = Telemetry.Histogram
module S = Telemetry.Sink
module J = Telemetry.Json
module CT = Telemetry.Chrome_trace

(* --- histogram -------------------------------------------------------- *)

let test_bucket_of () =
  check int "0 -> bucket 0" 0 (H.bucket_of 0);
  check int "negative clamps to bucket 0" 0 (H.bucket_of (-7));
  check int "1 -> bucket 1" 1 (H.bucket_of 1);
  check int "2 -> bucket 2" 2 (H.bucket_of 2);
  check int "3 -> bucket 2" 2 (H.bucket_of 3);
  check int "4 -> bucket 3" 3 (H.bucket_of 4);
  check int "7 -> bucket 3" 3 (H.bucket_of 7);
  check int "8 -> bucket 4" 4 (H.bucket_of 8);
  (* bucket i >= 1 holds [2^(i-1), 2^i): check both edges for a few i *)
  for i = 1 to 20 do
    let lo = 1 lsl (i - 1) in
    check int (Printf.sprintf "lo edge of bucket %d" i) i (H.bucket_of lo);
    check int
      (Printf.sprintf "hi edge of bucket %d" i)
      i
      (H.bucket_of ((2 * lo) - 1))
  done

let test_histogram_observe () =
  let h = H.create () in
  List.iter (H.observe h) [ 0; 0; 1; 2; 3; 8; 1000 ];
  check int "total" 7 (H.total h);
  check int "sum" (0 + 0 + 1 + 2 + 3 + 8 + 1000) (H.sum h);
  check int "max" 1000 (H.max_value h);
  check int "bucket 0 count" 2 (H.count h 0);
  check int "bucket 1 count" 1 (H.count h 1);
  check int "bucket 2 count" 2 (H.count h 2);
  check int "bucket 4 count" 1 (H.count h (H.bucket_of 8));
  check bool "buckets are (lo, hi, count), lowest first"
    true
    (H.buckets h
    = [ (0, 0, 2); (1, 1, 1); (2, 3, 2); (8, 15, 1); (1024, 2047, 1) ]
      (* 1000 falls in [512, 1024) *)
    || H.buckets h
       = [ (0, 0, 2); (1, 1, 1); (2, 3, 2); (8, 15, 1); (512, 1023, 1) ])

let test_histogram_merge_reset () =
  let a = H.create () and b = H.create () in
  List.iter (H.observe a) [ 1; 5 ];
  List.iter (H.observe b) [ 0; 5; 900 ];
  H.merge ~into:a b;
  check int "merged total" 5 (H.total a);
  check int "merged sum" (1 + 5 + 0 + 5 + 900) (H.sum a);
  check int "merged max" 900 (H.max_value a);
  check int "src total unchanged" 3 (H.total b);
  check int "src sum unchanged" 905 (H.sum b);
  H.reset a;
  check int "reset total" 0 (H.total a);
  check int "reset sum" 0 (H.sum a);
  check int "reset max" 0 (H.max_value a);
  check bool "reset buckets empty" true (H.buckets a = [])

let test_histogram_negative () =
  (* negative observations used to be clamped into bucket 0, silently
     inflating the smallest bucket; now they are counted apart and leave
     every positive-domain statistic untouched *)
  let h = H.create () in
  List.iter (H.observe h) [ 5; -1; 7; -100 ];
  check int "negative counted" 2 (H.negative h);
  check int "total excludes negatives" 2 (H.total h);
  check int "sum excludes negatives" 12 (H.sum h);
  check int "bucket 0 not polluted" 0 (H.count h 0);
  let b = H.create () in
  H.observe b (-3);
  H.merge ~into:h b;
  check int "negative merges" 3 (H.negative h);
  H.reset h;
  check int "negative resets" 0 (H.negative h)

let test_histogram_saturating_sum () =
  let h = H.create () in
  H.observe h max_int;
  H.observe h max_int;
  check int "sum saturates instead of wrapping negative" max_int (H.sum h);
  check int "total still counts" 2 (H.total h);
  let b = H.create () in
  H.observe b max_int;
  H.merge ~into:h b;
  check int "merge saturates too" max_int (H.sum h)

let test_histogram_percentile () =
  let h = H.create () in
  check int "empty percentile" 0 (H.percentile h 0.5);
  (* 100 observations of 10, one of 1000: p50 sits in 10's bucket, p999
     in 1000's — and no percentile exceeds the observed max *)
  for _ = 1 to 100 do
    H.observe h 10
  done;
  H.observe h 1000;
  check int "p50 in the bulk bucket" (H.bucket_of 10)
    (H.bucket_of (H.percentile h 0.5));
  check int "p999 capped at the observed max" 1000 (H.percentile h 0.999);
  check bool "p0 clamps to first rank" true (H.percentile h 0.0 >= 10);
  H.observe h (-5);
  check int "negatives do not shift percentiles" 1000 (H.percentile h 0.999)

let test_histogram_percentile_edges () =
  (* empty: [percentile] answers 0 by definition, [percentile_opt] makes
     "no data" distinguishable from "all zeros" *)
  let h = H.create () in
  check int "empty percentile is 0" 0 (H.percentile h 0.99);
  check bool "empty percentile_opt is None" true (H.percentile_opt h 0.5 = None);
  H.observe h 0;
  check int "all-zeros percentile is also 0" 0 (H.percentile h 0.99);
  check bool "all-zeros percentile_opt is Some 0" true
    (H.percentile_opt h 0.99 = Some 0);
  (* a single observation is every percentile, capped at the value *)
  let one = H.create () in
  H.observe one 37;
  List.iter
    (fun q ->
      check int
        (Printf.sprintf "single observation at q=%.3f" q)
        37 (H.percentile one q))
    [ 0.0; 0.5; 0.99; 1.0 ];
  check bool "single observation percentile_opt" true
    (H.percentile_opt one 0.99 = Some 37)

(* --- sink ------------------------------------------------------------- *)

let filled_sink () =
  let s = S.create () in
  s.S.loads <- 10;
  s.S.stores <- 20;
  s.S.fences <- 3;
  s.S.fence_stall_cycles <- 120;
  s.S.steal_attempts <- 5;
  s.S.steal_aborts <- 2;
  s.S.tasks_run <- 64;
  s.S.shrink_iterations <- 7;
  s.S.witness_events <- 4;
  s.S.forensics_report_bytes <- 2048;
  H.observe (S.sb_occupancy s) 4;
  H.observe (S.egress_depth s) 1;
  s

let test_forensics_counters () =
  (* the forensics layer's counters ride the generic sink plumbing: they
     must be exported by [fields] (so sidecars pick them up) and obey the
     same merge/reset laws as every other scalar *)
  let s = filled_sink () in
  let field k = List.assoc k (S.fields s) in
  check int "shrink_iterations exported" 7 (field "shrink_iterations");
  check int "witness_events exported" 4 (field "witness_events");
  check int "forensics_report_bytes exported" 2048
    (field "forensics_report_bytes");
  S.merge ~into:s (filled_sink ());
  check int "shrink_iterations merges" 14 s.S.shrink_iterations;
  check int "witness_events merges" 8 s.S.witness_events;
  check int "forensics_report_bytes merges" 4096 s.S.forensics_report_bytes;
  S.reset s;
  check int "shrink_iterations resets" 0 s.S.shrink_iterations;
  check int "witness_events resets" 0 s.S.witness_events;
  check int "forensics_report_bytes resets" 0 s.S.forensics_report_bytes

let test_sink_merge () =
  let a = filled_sink () and b = filled_sink () in
  S.merge ~into:a b;
  check int "loads add" 20 a.S.loads;
  check int "stores add" 40 a.S.stores;
  check int "fence stall adds" 240 a.S.fence_stall_cycles;
  check int "steal aborts add" 4 a.S.steal_aborts;
  check int "histograms merge too" 2 (H.total (S.sb_occupancy a));
  (* src unchanged *)
  check int "src loads unchanged" 10 b.S.loads;
  check int "src histogram unchanged" 1 (H.total (S.sb_occupancy b));
  (* every scalar doubles: fields of a = 2 * fields of b *)
  List.iter2
    (fun (k, va) (k', vb) ->
      check string "field order stable" k k';
      check int (k ^ " doubled") (2 * vb) va)
    (S.fields a) (S.fields b)

let test_sink_reset () =
  let s = filled_sink () in
  S.reset s;
  List.iter (fun (k, v) -> check int (k ^ " zero after reset") 0 v) (S.fields s);
  check int "histogram cleared" 0 (H.total (S.sb_occupancy s));
  check int "egress histogram cleared" 0 (H.total (S.egress_depth s))

(* --- json ------------------------------------------------------------- *)

let test_json_roundtrip () =
  let v =
    J.Obj
      [
        ("schema", J.Str "test/v1");
        ("n", J.Int 42);
        ("x", J.Float 1.5);
        ("flag", J.Bool true);
        ("nothing", J.Null);
        ("list", J.List [ J.Int 1; J.Int 2; J.Str "a\"b\\c\n" ]);
        ("nested", J.Obj [ ("k", J.Int (-7)) ]);
      ]
  in
  (match J.parse (J.to_string v) with
  | Ok v' -> check bool "roundtrip" true (v = v')
  | Error e -> Alcotest.failf "roundtrip parse failed: %s" e);
  (match J.parse (J.to_string ~indent:false v) with
  | Ok v' -> check bool "compact roundtrip" true (v = v')
  | Error e -> Alcotest.failf "compact roundtrip failed: %s" e);
  check bool "member" true (J.member "n" v = Some (J.Int 42));
  check bool "member missing" true (J.member "zzz" v = None)

let test_json_rejects () =
  let bad =
    [
      "";
      "{";
      "[1, 2";
      "{\"a\": }";
      "{\"a\": 1,}";
      "tru";
      "\"unterminated";
      "{\"a\": 1} trailing";
      "nan";
    ]
  in
  List.iter
    (fun s ->
      match J.parse s with
      | Ok _ -> Alcotest.failf "parser accepted %S" s
      | Error _ -> ())
    bad

(* --- chrome trace ----------------------------------------------------- *)

(* A known 2-thread interleaving: two cores, each storing to its own flag
   then fencing and reading the other's — the classic SB shape, which gives
   the timing engine stores, drains, fence stalls and loads on both
   tracks. *)
let traced_run () =
  let m =
    Tso.Machine.create
      (Tso.Machine.abstract_config ~sb_capacity:2)
  in
  let mem = Tso.Machine.memory m in
  let x = Tso.Memory.alloc mem ~name:"x" ~init:0 in
  let y = Tso.Memory.alloc mem ~name:"y" ~init:0 in
  let r0 = ref (-1) and r1 = ref (-1) in
  let _ =
    Tso.Machine.spawn m ~name:"t0" (fun () ->
        Tso.Program.store x 1;
        Tso.Program.fence ();
        r0 := Tso.Program.load y)
  in
  let _ =
    Tso.Machine.spawn m ~name:"t1" (fun () ->
        Tso.Program.store y 1;
        Tso.Program.fence ();
        r1 := Tso.Program.load x)
  in
  let tracer = CT.create () in
  let report = Tso.Timing.run ~tracer m Tso.Timing.default_costs in
  (tracer, report)

type span = { ts : int; dur : int; tid : int }

let spans_of_json j =
  match J.member "traceEvents" j with
  | Some (J.List evs) ->
      List.filter_map
        (fun e ->
          let field k =
            match J.member k e with Some (J.Int i) -> Some i | _ -> None
          in
          match (J.member "ph" e, field "ts", field "tid") with
          | Some (J.Str "X"), Some ts, Some tid ->
              let dur = Option.value ~default:0 (field "dur") in
              Some { ts; dur; tid }
          | _ -> None)
        evs
  | _ -> Alcotest.fail "trace has no traceEvents list"

let test_trace_spans_nest () =
  let tracer, report = traced_run () in
  check bool "run quiesced" true (report.Tso.Timing.outcome = Tso.Sched.Quiescent);
  let j = CT.to_json tracer in
  let spans = spans_of_json j in
  check bool "spans recorded" true (List.length spans > 0);
  check bool "both threads have spans" true
    (List.exists (fun s -> s.tid = 0) spans
    && List.exists (fun s -> s.tid = 1) spans);
  (* Spans on one core's track must nest: for any two, either disjoint or
     one contains the other. The timing engine only emits sequential,
     adjacent spans per core, so we check the stronger property. *)
  List.iter
    (fun tid ->
      let mine =
        List.sort
          (fun a b -> compare (a.ts, a.dur) (b.ts, b.dur))
          (List.filter (fun s -> s.tid = tid) spans)
      in
      ignore
        (List.fold_left
           (fun prev_end s ->
             check bool
               (Printf.sprintf "tid %d span at %d starts after previous end"
                  tid s.ts)
               true (s.ts >= prev_end);
             s.ts + s.dur)
           0 mine))
    [ 0; 1 ];
  (* every async sb-store interval closes exactly once, same id *)
  match J.member "traceEvents" j with
  | Some (J.List evs) ->
      let ids ph =
        List.filter_map
          (fun e ->
            match (J.member "ph" e, J.member "id" e) with
            | Some (J.Str p), Some (J.Int id) when p = ph -> Some id
            | _ -> None)
          evs
      in
      let sort = List.sort compare in
      check bool "async begins pair with ends" true
        (sort (ids "b") = sort (ids "e"))
  | _ -> Alcotest.fail "trace has no traceEvents list"

let test_trace_deterministic () =
  let t1, _ = traced_run () in
  let t2, _ = traced_run () in
  check string "same run, same bytes" (CT.to_string t1) (CT.to_string t2);
  (match J.parse (CT.to_string t1) with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "trace is not valid JSON: %s" e);
  check int "nothing dropped" 0 (CT.dropped t1)

let test_trace_limit () =
  let t = CT.create ~limit:3 () in
  for i = 0 to 9 do
    CT.complete t ~name:"e" ~tid:0 ~ts:i ~dur:1 ()
  done;
  check int "capped at limit" 3 (CT.length t);
  check int "overflow counted" 7 (CT.dropped t);
  match J.parse (CT.to_string t) with
  | Ok j ->
      check bool "dropped recorded in document" true
        (match J.member "otherData" j with
        | Some od -> J.member "dropped" od = Some (J.Int 7)
        | None -> false)
  | Error e -> Alcotest.failf "capped trace invalid: %s" e

(* --- flight recorder -------------------------------------------------- *)

module FR = Telemetry.Flight_recorder
module OM = Telemetry.Openmetrics

let test_flight_wraparound () =
  let r = FR.create ~capacity:8 ~slots:1 () in
  check int "capacity is a power of two" 8 (FR.capacity r);
  for i = 1 to 13 do
    FR.record r ~slot:0 FR.Spawn ~task:i ~arg:(i - 1)
  done;
  check int "wrote is monotone, not capped" 13 (FR.wrote r ~slot:0);
  check
    Alcotest.(array int)
    "dropped is exact per ring" [| 5; 0 |] (FR.dropped r);
  let evs = FR.events_of_slot r 0 in
  check int "ring retains exactly capacity events" 8 (List.length evs);
  check
    Alcotest.(list int)
    "the 5 oldest were overwritten, order preserved"
    [ 6; 7; 8; 9; 10; 11; 12; 13 ]
    (List.map (fun (e : FR.event) -> e.task) evs);
  let rec mono = function
    | (a : FR.event) :: (b :: _ as tl) -> a.ts <= b.ts && mono tl
    | _ -> true
  in
  check bool "timestamps nondecreasing" true (mono evs)

let test_flight_capacity_rounding () =
  let r = FR.create ~capacity:5 ~slots:2 () in
  check int "5 rounds up to 8" 8 (FR.capacity r);
  check int "slots as requested" 2 (FR.slots r)

(* A hand-written two-slot schedule: slot 0 spawns and pops task 0, spawns
   task 1, which slot 1 steals and runs — the minimal recording with one
   stolen lineage. *)
let forced_steal_recorder () =
  let r = FR.create ~capacity:64 ~slots:2 () in
  FR.record r ~slot:0 FR.Spawn ~task:0 ~arg:(-1);
  FR.record r ~slot:0 FR.Run ~task:0 ~arg:FR.origin_pop;
  FR.record r ~slot:0 FR.Spawn ~task:1 ~arg:0;
  FR.record r ~slot:1 FR.Steal ~task:1 ~arg:0;
  FR.record r ~slot:1 FR.Run ~task:1 ~arg:0;
  r

let test_flight_lineage_reconstruct () =
  let r = forced_steal_recorder () in
  let lineages, unresolved = FR.reconstruct r in
  check int "no unresolved runs" 0 unresolved;
  check int "two tasks reconstructed" 2 (List.length lineages);
  let l0 = List.find (fun (l : FR.lineage) -> l.id = 0) lineages in
  check bool "task 0 was popped locally" true (l0.origin = FR.Pop);
  check int "task 0 has no stolen ancestry" 0 l0.steal_depth;
  let l1 = List.find (fun (l : FR.lineage) -> l.id = 1) lineages in
  check bool "task 1 stolen from slot 0" true (l1.origin = FR.Stolen 0);
  check int "thief ran it on slot 1" 1 l1.run_slot;
  check int "spawned on slot 0" 0 l1.spawn_slot;
  check int "parent is task 0" 0 l1.parent;
  check int "one stolen link on the ancestry path" 1 l1.steal_depth

let test_flight_report_validate_reject () =
  let r = forced_steal_recorder () in
  let s1 = FR.report_string r in
  check string "report is byte-stable" s1 (FR.report_string r);
  let doc =
    match J.parse s1 with
    | Ok j -> j
    | Error e -> Alcotest.failf "report is not valid JSON: %s" e
  in
  (match FR.validate doc with
  | Ok () -> ()
  | Error e -> Alcotest.failf "valid report rejected: %s" e);
  (* the same document under a drifted schema id must be rejected *)
  let drifted =
    match doc with
    | J.Obj fields ->
        J.Obj
          (List.map
             (function
               | "schema", _ -> ("schema", J.Str "wsrepro-flight/v0")
               | kv -> kv)
             fields)
    | _ -> Alcotest.fail "report did not parse as an object"
  in
  check bool "drifted schema rejected" true
    (Result.is_error (FR.validate drifted));
  check bool "structurally empty document rejected" true
    (Result.is_error (FR.validate (J.Obj [ ("schema", J.Str FR.schema_id) ])))

(* --- openmetrics ------------------------------------------------------ *)

let test_openmetrics_render () =
  let doc () =
    OM.render
      [
        OM.counter ~name:"ws_pool_tasks_run" ~help:"tasks executed"
          [
            OM.sample ~labels:[ ("slot", "0") ] 12.;
            OM.sample ~labels:[ ("slot", "1") ] 30.;
          ];
        OM.gauge ~name:"ws_pool_sleepers" ~help:"parked workers"
          [ OM.sample 2. ];
      ]
  in
  let s = doc () in
  check string "byte-stable across renders" s (doc ());
  check string "exact exposition format"
    "# TYPE ws_pool_tasks_run counter\n\
     # HELP ws_pool_tasks_run tasks executed\n\
     ws_pool_tasks_run_total{slot=\"0\"} 12\n\
     ws_pool_tasks_run_total{slot=\"1\"} 30\n\
     # TYPE ws_pool_sleepers gauge\n\
     # HELP ws_pool_sleepers parked workers\n\
     ws_pool_sleepers 2\n\
     # EOF\n"
    s

let test_openmetrics_histogram () =
  (* 3 zeros, one 5 ([4,8) bucket), one 20 ([16,32) bucket): cumulative
     _bucket counts at each occupied power-of-two bound, +Inf closes at
     the total, _count/_sum follow *)
  let h = H.create () in
  List.iter (H.observe h) [ 0; 0; 0; 5; 20 ];
  let doc () =
    OM.render
      [ OM.histogram ~name:"ws_stage_qwait_ns" ~help:"queue wait" h ]
  in
  let s = doc () in
  check string "byte-stable across renders" s (doc ());
  check string "exact histogram exposition"
    "# TYPE ws_stage_qwait_ns histogram\n\
     # HELP ws_stage_qwait_ns queue wait\n\
     ws_stage_qwait_ns_bucket{le=\"0\"} 3\n\
     ws_stage_qwait_ns_bucket{le=\"7\"} 4\n\
     ws_stage_qwait_ns_bucket{le=\"31\"} 5\n\
     ws_stage_qwait_ns_bucket{le=\"+Inf\"} 5\n\
     ws_stage_qwait_ns_count 5\n\
     ws_stage_qwait_ns_sum 25\n\
     # EOF\n"
    s;
  (* extra labels prefix le on bucket samples and ride _count/_sum too *)
  let labelled =
    OM.render
      [ OM.histogram ~name:"h" ~help:"x" ~labels:[ ("slot", "2") ] h ]
  in
  check bool "labels prefix le" true
    (let has needle =
       let rec go i =
         i + String.length needle <= String.length labelled
         && (String.sub labelled i (String.length needle) = needle || go (i + 1))
       in
       go 0
     in
     has "h_bucket{slot=\"2\",le=\"0\"} 3" && has "h_count{slot=\"2\"} 5")

(* --- sharded counter plane ------------------------------------------- *)

(* A deterministic op stream: op [i] bumps a scalar counter and observes
   into both histograms, with enough variety to touch every field class. *)
let apply_op (s : S.t) i =
  s.S.loads <- s.S.loads + 1;
  if i mod 2 = 0 then s.S.stores <- s.S.stores + 1;
  if i mod 3 = 0 then s.S.puts <- s.S.puts + 1;
  if i mod 5 = 0 then s.S.steals <- s.S.steals + 1;
  s.S.steps <- s.S.steps + i;
  H.observe (S.sb_occupancy s) (i mod 17);
  H.observe (S.egress_depth s) (i * 7 mod 64)

let test_shards_merge_equals_sequential () =
  (* one sink sees the whole stream; N shards see it partitioned *)
  let seq = S.create () in
  for i = 0 to 999 do
    apply_op seq i
  done;
  let shards = Telemetry.Shards.create ~n:3 in
  for i = 0 to 999 do
    apply_op (Telemetry.Shards.shard shards (i mod 7)) i
  done;
  let merged = S.create () in
  Telemetry.Shards.merge ~into:merged shards;
  check bool "scalar fields equal" true (S.fields merged = S.fields seq);
  check string "rendered JSON byte-identical (histograms included)"
    (J.to_string ~indent:true (S.to_json seq))
    (J.to_string ~indent:true (S.to_json merged))

let test_shards_drain_semantics () =
  let shards = Telemetry.Shards.create ~n:4 in
  for i = 0 to 99 do
    apply_op (Telemetry.Shards.shard shards i) i
  done;
  let root = S.create () in
  Telemetry.Shards.merge ~into:root shards;
  let once = J.to_string (S.to_json root) in
  (* merge drains the shards: a second merge must add nothing *)
  Telemetry.Shards.merge ~into:root shards;
  check string "second merge is a no-op" once (J.to_string (S.to_json root));
  Array.iter
    (fun sh -> check bool "shard reset" true (List.for_all (fun (_, v) -> v = 0) (S.fields sh)))
    (Telemetry.Shards.sinks shards);
  (* ...even into a different target: drained shards contribute zero *)
  let fresh = S.create () in
  Telemetry.Shards.merge ~into:fresh shards;
  check string "drained shards merge as empty into a fresh sink"
    (J.to_string (S.to_json (S.create ())))
    (J.to_string (S.to_json fresh))

let test_shards_wrap_and_clamp () =
  let shards = Telemetry.Shards.create ~n:2 in
  check int "length" 2 (Telemetry.Shards.length shards);
  (* out-of-range ids wrap rather than raise *)
  let s5 = Telemetry.Shards.shard shards 5 in
  s5.S.puts <- 3;
  check int "id 5 wraps to shard 1" 3
    (Telemetry.Shards.shard shards 1).S.puts;
  let clamped = Telemetry.Shards.create ~n:0 in
  check int "n <= 0 clamps to 1 shard" 1 (Telemetry.Shards.length clamped);
  (* a histogram observed through a wrapped id merges exactly once *)
  H.observe (S.sb_occupancy (Telemetry.Shards.shard shards 7)) 9;
  let root = S.create () in
  Telemetry.Shards.merge ~into:root shards;
  check int "wrapped-id histogram sample counted once" 1
    (H.total (S.sb_occupancy root))

(* --- windowed time series --------------------------------------------- *)

module W = Telemetry.Windowed

(* A deterministic stream of (now, value) observations spanning many
   windows: now advances monotonically, values vary per step. *)
let windowed_stream n = List.init n (fun i -> (i * 13, (i * 7 mod 97) + (i mod 3)))

let test_windowed_rotation () =
  let t = W.create ~slots:4 ~width:100 () in
  check int "latest of empty is -1" (-1) (W.latest t);
  check bool "empty has no windows" true (W.windows t = []);
  W.observe t ~now:10 1;
  W.observe t ~now:50 2;
  W.observe t ~now:150 3;
  check int "two windows live" 2 (List.length (W.windows t));
  check int "latest" 1 (W.latest t);
  (* window 4 maps to slot 0 and evicts window 0; window 1 survives *)
  W.observe t ~now:420 9;
  let ws = List.map fst (W.windows t) in
  check bool "window 0 evicted by window 4" true (ws = [ 1; 4 ]);
  check int "evicting slot starts fresh" 1
    (H.total (List.assoc 4 (W.windows t)));
  (* per-window percentiles: window 1 saw only 3 *)
  check bool "series q=0.5" true (W.series t ~q:0.5 = [ (1, 3); (4, 9) ]);
  (* negative now clamps to window 0 *)
  let n = W.create ~slots:2 ~width:10 () in
  W.observe n ~now:(-5) 7;
  check bool "negative now lands in window 0" true
    (List.map fst (W.windows n) = [ 0 ])

let test_windowed_partition_independence () =
  (* one ring sees the whole stream; k rings see it partitioned round-robin
     by an arbitrary key; merged bytes must match for every k *)
  let stream = windowed_stream 500 in
  let single = W.create ~slots:8 ~width:64 () in
  List.iter (fun (now, v) -> W.observe single ~now v) stream;
  let expect = J.to_string ~indent:true (W.to_json single) in
  List.iter
    (fun k ->
      let rings = Array.init k (fun _ -> W.create ~slots:8 ~width:64 ()) in
      List.iteri
        (fun i (now, v) -> W.observe rings.(i * 11 mod k) ~now v)
        stream;
      let merged = W.create ~slots:8 ~width:64 () in
      Array.iter (fun r -> W.merge ~into:merged r) rings;
      check string
        (Printf.sprintf "merged JSON byte-identical at %d shards" k)
        expect
        (J.to_string ~indent:true (W.to_json merged)))
    [ 1; 2; 4; 8 ];
  (* merge order cannot matter either: reversed shard order, same bytes *)
  let rings = Array.init 4 (fun _ -> W.create ~slots:8 ~width:64 ()) in
  List.iteri (fun i (now, v) -> W.observe rings.(i mod 4) ~now v) stream;
  let merged = W.create ~slots:8 ~width:64 () in
  for i = 3 downto 0 do
    W.merge ~into:merged rings.(i)
  done;
  check string "reverse merge order, same bytes" expect
    (J.to_string ~indent:true (W.to_json merged))

let test_windowed_drain_and_snapshot () =
  let src = W.create ~slots:4 ~width:50 () in
  List.iter (fun (now, v) -> W.observe src ~now v) (windowed_stream 40);
  let snap = W.snapshot src in
  check string "snapshot equals source"
    (J.to_string (W.to_json src))
    (J.to_string (W.to_json snap));
  (* snapshot does not drain: source still renders the same *)
  let before = J.to_string (W.to_json src) in
  let root = W.create ~slots:4 ~width:50 () in
  W.merge ~into:root src;
  check string "merge moved everything" before (J.to_string (W.to_json root));
  check bool "merge drained the source" true (W.windows src = []);
  W.merge ~into:root src;
  check string "second merge is a no-op" before (J.to_string (W.to_json root));
  (* snapshot is deep: mutating it leaves the (drained) source alone *)
  W.observe snap ~now:0 1;
  check bool "snapshot mutation invisible to source" true (W.windows src = [])

let test_windowed_stale_and_mismatch () =
  let t = W.create ~slots:2 ~width:10 () in
  W.observe t ~now:35 5;
  (* window 1 maps to slot 1; window 3 owns it now, so this is stale *)
  W.observe t ~now:15 7;
  check bool "stale sample dropped" true
    (List.map fst (W.windows t) = [ 3 ])
    ;
  check int "stale sample did not pollute" 1
    (H.total (List.assoc 3 (W.windows t)));
  (* a lagging shard merges its stale window away, a leading one evicts *)
  let lag = W.create ~slots:2 ~width:10 () in
  W.observe lag ~now:15 7;
  W.merge ~into:t lag;
  check bool "lagging shard's stale window dropped on merge" true
    (List.map fst (W.windows t) = [ 3 ]);
  Alcotest.check_raises "width mismatch rejected"
    (Invalid_argument "Windowed.merge: width/slots mismatch") (fun () ->
      W.merge ~into:t (W.create ~slots:2 ~width:20 ()));
  Alcotest.check_raises "slots mismatch rejected"
    (Invalid_argument "Windowed.merge: width/slots mismatch") (fun () ->
      W.merge ~into:t (W.create ~slots:4 ~width:10 ()));
  Alcotest.check_raises "zero width rejected"
    (Invalid_argument "Windowed.create: width must be positive") (fun () ->
      ignore (W.create ~width:0 ()))

let () =
  Alcotest.run "telemetry"
    [
      ( "histogram",
        [
          Alcotest.test_case "bucket_of" `Quick test_bucket_of;
          Alcotest.test_case "observe" `Quick test_histogram_observe;
          Alcotest.test_case "merge/reset" `Quick test_histogram_merge_reset;
          Alcotest.test_case "negative observations" `Quick
            test_histogram_negative;
          Alcotest.test_case "saturating sum" `Quick
            test_histogram_saturating_sum;
          Alcotest.test_case "percentile" `Quick test_histogram_percentile;
          Alcotest.test_case "percentile empty/single edges" `Quick
            test_histogram_percentile_edges;
        ] );
      ( "sink",
        [
          Alcotest.test_case "merge" `Quick test_sink_merge;
          Alcotest.test_case "reset" `Quick test_sink_reset;
          Alcotest.test_case "forensics counters" `Quick
            test_forensics_counters;
        ] );
      ( "json",
        [
          Alcotest.test_case "roundtrip" `Quick test_json_roundtrip;
          Alcotest.test_case "rejects malformed" `Quick test_json_rejects;
        ] );
      ( "chrome-trace",
        [
          Alcotest.test_case "spans nest" `Quick test_trace_spans_nest;
          Alcotest.test_case "deterministic" `Quick test_trace_deterministic;
          Alcotest.test_case "event limit" `Quick test_trace_limit;
        ] );
      ( "flight-recorder",
        [
          Alcotest.test_case "wraparound with exact dropped" `Quick
            test_flight_wraparound;
          Alcotest.test_case "capacity rounding" `Quick
            test_flight_capacity_rounding;
          Alcotest.test_case "lineage reconstruction" `Quick
            test_flight_lineage_reconstruct;
          Alcotest.test_case "report validate/reject" `Quick
            test_flight_report_validate_reject;
        ] );
      ( "openmetrics",
        [
          Alcotest.test_case "byte-stable exposition" `Quick
            test_openmetrics_render;
          Alcotest.test_case "histogram cumulative buckets" `Quick
            test_openmetrics_histogram;
        ] );
      ( "shards",
        [
          Alcotest.test_case "merge equals sequential sink" `Quick
            test_shards_merge_equals_sequential;
          Alcotest.test_case "merge drains" `Quick test_shards_drain_semantics;
          Alcotest.test_case "wrap and clamp" `Quick test_shards_wrap_and_clamp;
        ] );
      ( "windowed",
        [
          Alcotest.test_case "rotation and eviction" `Quick
            test_windowed_rotation;
          Alcotest.test_case "partition independence" `Quick
            test_windowed_partition_independence;
          Alcotest.test_case "drain and snapshot" `Quick
            test_windowed_drain_and_snapshot;
          Alcotest.test_case "stale drop and mismatch" `Quick
            test_windowed_stale_and_mismatch;
        ] );
    ]
