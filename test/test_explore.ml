(* Regression tests for the memoized + multicore exploration layer:
   - parallel search must return byte-identical statistics and failure
     traces to the sequential search (classic x86-TSO litmus suite);
   - memoized search must report the same verdicts while exploring fewer
     runs;
   - memoized exploration turns queue scenarios that blow the run budget
     into full proofs. *)

open Tso

let checkb = Alcotest.check Alcotest.bool

let pp_stats ppf (s : Explore.stats) =
  Format.fprintf ppf
    "{runs=%d; truncated=%d; deadlocks=%d; pruned=%d; memo_hits=%d; \
     failures=[%a]}"
    s.Explore.runs s.truncated s.deadlocks s.pruned s.memo_hits
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf "; ")
       (fun ppf (tr, msg) ->
         Format.fprintf ppf "([%s], %s)"
           (String.concat ";" (List.map string_of_int tr))
           msg))
    s.failures

let stats = Alcotest.testable pp_stats ( = )
let max_runs = 400_000

let test_parallel_byte_identical () =
  List.iter
    (fun (t : Ws_litmus.Classic.t) ->
      let seq = Explore.search ~max_runs ~mk:t.mk () in
      let par = Explore_par.search ~max_runs ~jobs:4 ~mk:t.mk () in
      Alcotest.check stats (t.name ^ ": jobs=4 equals sequential") seq par)
    Ws_litmus.Classic.all

let test_parallel_more_jobs_than_work () =
  (* a single-thread test whose whole space fits inside the frontier
     expansion: domains must cope with an empty/short task queue *)
  let t = Ws_litmus.Classic.find "store-forwarding" in
  let seq = Explore.search ~max_runs ~mk:t.mk () in
  let par = Explore_par.search ~max_runs ~jobs:8 ~mk:t.mk () in
  Alcotest.check stats "jobs=8 on a 5-run space" seq par

let test_memo_same_verdicts () =
  let reduced = ref false in
  List.iter
    (fun (t : Ws_litmus.Classic.t) ->
      let plain = Ws_litmus.Classic.run t in
      let memo = Ws_litmus.Classic.run ~memo:true t in
      checkb (t.name ^ ": verdict unchanged") plain.observed memo.observed;
      checkb (t.name ^ ": ok unchanged") plain.ok memo.ok;
      checkb
        (t.name ^ ": memo never explores more")
        true (memo.runs <= plain.runs);
      if memo.runs < plain.runs then reduced := true)
    Ws_litmus.Classic.all;
  checkb "memoization reduced runs on at least one litmus case" true !reduced

let test_memo_parallel_verdicts () =
  List.iter
    (fun (t : Ws_litmus.Classic.t) ->
      let seq = Ws_litmus.Classic.run ~memo:true t in
      let par = Ws_litmus.Classic.run ~memo:true ~jobs:4 t in
      checkb (t.name ^ ": memo+jobs verdict unchanged") seq.observed
        par.observed;
      checkb (t.name ^ ": memo+jobs ok unchanged") seq.ok par.ok)
    Ws_litmus.Classic.all

let test_scenario_memo_completes () =
  (* the default ff-the scenario blows the 200k-run budget unmemoized;
     memoization collapses it to a complete (exhaustive) proof *)
  let spec = Ws_harness.Scenarios.default_spec in
  let st, clean =
    Ws_harness.Runner.exhaustive_check spec ~preemption_bound:(Some 3)
      ~memo:true ()
  in
  checkb "no violation" true clean;
  checkb "memo hits reported" true (st.Explore.memo_hits > 0);
  checkb "well under the run budget" true (st.Explore.runs < 10_000);
  let par, par_clean =
    Ws_harness.Runner.exhaustive_check spec ~preemption_bound:(Some 3)
      ~memo:true ~jobs:4 ()
  in
  checkb "parallel memoized verdict agrees" true (par_clean = clean);
  checkb "parallel memoized also completes" true (par.Explore.runs < 10_000)

let () =
  Alcotest.run "explore"
    [
      ( "parallel",
        [
          Alcotest.test_case "classic suite byte-identical" `Quick
            test_parallel_byte_identical;
          Alcotest.test_case "more jobs than work" `Quick
            test_parallel_more_jobs_than_work;
        ] );
      ( "memo",
        [
          Alcotest.test_case "classic suite verdicts unchanged" `Quick
            test_memo_same_verdicts;
          Alcotest.test_case "memo + parallel verdicts unchanged" `Quick
            test_memo_parallel_verdicts;
          Alcotest.test_case "scenario proof under budget" `Quick
            test_scenario_memo_completes;
        ] );
    ]
