(* Regression tests for the memoized + multicore exploration layer:
   - parallel search must return byte-identical statistics and failure
     traces to the sequential search (classic x86-TSO litmus suite);
   - memoized search must report the same verdicts while exploring fewer
     runs;
   - memoized exploration turns queue scenarios that blow the run budget
     into full proofs. *)

open Tso

let checkb = Alcotest.check Alcotest.bool

let pp_stats ppf (s : Explore.stats) =
  Format.fprintf ppf
    "{runs=%d; truncated=%d; deadlocks=%d; pruned=%d; memo_hits=%d; \
     failures=[%a]}"
    s.Explore.runs s.truncated s.deadlocks s.pruned s.memo_hits
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf "; ")
       (fun ppf (tr, msg) ->
         Format.fprintf ppf "([%s], %s)"
           (String.concat ";" (List.map string_of_int tr))
           msg))
    s.failures

let stats = Alcotest.testable pp_stats ( = )
let max_runs = 400_000

let test_parallel_byte_identical () =
  List.iter
    (fun (t : Ws_litmus.Classic.t) ->
      let seq = Explore.search ~max_runs ~mk:t.mk () in
      let par = Explore_par.search ~max_runs ~jobs:4 ~mk:t.mk () in
      Alcotest.check stats (t.name ^ ": jobs=4 equals sequential") seq par)
    Ws_litmus.Classic.all

let test_parallel_more_jobs_than_work () =
  (* a single-thread test whose whole space fits inside the frontier
     expansion: domains must cope with an empty/short task queue *)
  let t = Ws_litmus.Classic.find "store-forwarding" in
  let seq = Explore.search ~max_runs ~mk:t.mk () in
  let par = Explore_par.search ~max_runs ~jobs:8 ~mk:t.mk () in
  Alcotest.check stats "jobs=8 on a 5-run space" seq par

let test_memo_same_verdicts () =
  let reduced = ref false in
  List.iter
    (fun (t : Ws_litmus.Classic.t) ->
      let plain = Ws_litmus.Classic.run t in
      let memo = Ws_litmus.Classic.run ~memo:true t in
      checkb (t.name ^ ": verdict unchanged") plain.observed memo.observed;
      checkb (t.name ^ ": ok unchanged") plain.ok memo.ok;
      checkb
        (t.name ^ ": memo never explores more")
        true (memo.runs <= plain.runs);
      if memo.runs < plain.runs then reduced := true)
    Ws_litmus.Classic.all;
  checkb "memoization reduced runs on at least one litmus case" true !reduced

let test_memo_parallel_verdicts () =
  List.iter
    (fun (t : Ws_litmus.Classic.t) ->
      let seq = Ws_litmus.Classic.run ~memo:true t in
      let par = Ws_litmus.Classic.run ~memo:true ~jobs:4 t in
      checkb (t.name ^ ": memo+jobs verdict unchanged") seq.observed
        par.observed;
      checkb (t.name ^ ": memo+jobs ok unchanged") seq.ok par.ok)
    Ws_litmus.Classic.all

let test_scenario_memo_completes () =
  (* the default ff-the scenario blows the 200k-run budget unmemoized;
     memoization collapses it to a complete (exhaustive) proof *)
  let spec = Ws_harness.Scenarios.default_spec in
  let st, clean =
    Ws_harness.Runner.exhaustive_check spec ~preemption_bound:(Some 3)
      ~memo:true ()
  in
  checkb "no violation" true clean;
  checkb "memo hits reported" true (st.Explore.memo_hits > 0);
  checkb "well under the run budget" true (st.Explore.runs < 10_000);
  let par, par_clean =
    Ws_harness.Runner.exhaustive_check spec ~preemption_bound:(Some 3)
      ~memo:true ~jobs:4 ()
  in
  checkb "parallel memoized verdict agrees" true (par_clean = clean);
  checkb "parallel memoized also completes" true (par.Explore.runs < 10_000)

(* --- sleep-set partial-order reduction -------------------------------- *)

let test_por_classic_differential () =
  (* POR must preserve every verdict and every recorded failure prefix
     while exploring (in aggregate, substantially) fewer runs; without a
     preemption bound, parallel POR is byte-identical to sequential *)
  let total_plain = ref 0 and total_por = ref 0 in
  List.iter
    (fun (t : Ws_litmus.Classic.t) ->
      let plain = Explore.search ~max_runs ~mk:t.mk () in
      let por = Explore.search ~max_runs ~por:true ~mk:t.mk () in
      checkb (t.name ^ ": verdict unchanged")
        (plain.Explore.failures <> [])
        (por.Explore.failures <> []);
      checkb (t.name ^ ": POR never explores more") true
        (por.Explore.runs <= plain.Explore.runs);
      checkb (t.name ^ ": POR still exhausts") true (por.Explore.truncated = 0);
      total_plain := !total_plain + plain.Explore.runs;
      total_por := !total_por + por.Explore.runs;
      List.iter
        (fun (choices, _) ->
          match Explore.replay_choices ~mk:t.mk choices with
          | Error _ -> () (* the reduced search's sighting reproduces *)
          | Ok () ->
              Alcotest.failf "%s: POR failure prefix did not replay" t.name)
        por.Explore.failures;
      let par = Explore_par.search ~max_runs ~por:true ~jobs:4 ~mk:t.mk () in
      Alcotest.check stats (t.name ^ ": POR jobs=4 equals sequential") por par)
    Ws_litmus.Classic.all;
  checkb "POR cuts the classic suite by at least 5x" true
    (!total_por * 5 <= !total_plain)

let test_por_capacity_sweep () =
  (* the same differential across store-buffer capacities of a queue
     scenario: capacity moves where the reordering lives, so the
     independence relation is exercised with short and long drain chains *)
  List.iter
    (fun sb_capacity ->
      let spec =
        {
          Ws_harness.Scenarios.default_spec with
          sb_capacity;
          preloaded = 2;
          steal_attempts = 1;
        }
      in
      let go ?(jobs = 1) por =
        Ws_harness.Runner.exhaustive_check spec ~max_runs:40_000
          ~preemption_bound:(Some 3) ~jobs ~por ()
      in
      let plain, plain_clean = go false in
      let por, por_clean = go true in
      checkb
        (Printf.sprintf "sb=%d: clean verdict agrees" sb_capacity)
        plain_clean por_clean;
      checkb
        (Printf.sprintf "sb=%d: POR never explores more" sb_capacity)
        true
        (por.Explore.runs <= plain.Explore.runs);
      let _, par_clean = go ~jobs:4 true in
      checkb
        (Printf.sprintf "sb=%d: parallel POR verdict agrees" sb_capacity)
        plain_clean par_clean)
    [ 1; 2; 3 ]

let test_por_delta_scenarios () =
  (* the §4 delta-soundness pair: POR must still sight the delta=1
     duplication (with a replayable prefix) and still prove delta=2 clean *)
  let spec delta =
    {
      Ws_harness.Scenarios.default_spec with
      queue = "ff-cl";
      sb_capacity = 2;
      delta;
      worker_fence = false;
      preloaded = 3;
      puts = 0;
      steal_attempts = 2;
      client_stores = 0;
    }
  in
  (* the unmemoized space is ~800k runs with the duplication deep in DFS
     order; memoization collapses it to ~100 runs and memoized failure
     prefixes stay replayable, so sight through the cache *)
  let sight por =
    fst
      (Ws_harness.Runner.exhaustive_check (spec 1) ~preemption_bound:(Some 3)
         ~memo:true ~por ())
  in
  let plain = sight false and por = sight true in
  checkb "delta=1: unreduced search sights the duplication" true
    (plain.Explore.failures <> []);
  checkb "delta=1: POR sights the duplication" true (por.Explore.failures <> []);
  (match por.Explore.failures with
  | (choices, _) :: _ -> (
      match
        Explore.replay_choices ~mk:(Ws_harness.Scenarios.instance (spec 1)) choices
      with
      | Error _ -> ()
      | Ok () -> Alcotest.fail "POR duplication prefix did not replay")
  | [] -> ());
  (* delta=2 is a proof, so it must exhaust: memoization makes that cheap,
     and POR must compose with it (the sleep set is part of the memo key) *)
  let prove ?(jobs = 1) por =
    Ws_harness.Runner.exhaustive_check (spec 2) ~preemption_bound:(Some 3)
      ~memo:true ~jobs ~por ()
  in
  let p, p_clean = prove false in
  let q, q_clean = prove true in
  checkb "delta=2: both memoized proofs are clean" true (p_clean && q_clean);
  checkb "delta=2: both proofs complete under budget" true
    (p.Explore.runs < 200_000 && q.Explore.runs < 200_000);
  let _, par_clean = prove ~jobs:4 true in
  checkb "delta=2: parallel POR+memo proof agrees" true par_clean

(* --- failure orientation ----------------------------------------------- *)

(* S = delta + 1 with no client stores between takes: delta = ceil(S/1) = 2,
   so delta = 1 is unsound and the search records real violations *)
let violating_spec =
  {
    Ws_harness.Scenarios.default_spec with
    sb_capacity = 2;
    delta = 1;
    client_stores = 0;
    preloaded = 3;
    steal_attempts = 1;
  }

let test_failures_replay_order () =
  (* the orientation contract: every recorded failure, consumed exactly as
     returned (root-first, first-sighted first), replays to its verdict *)
  let mk = Ws_harness.Scenarios.instance violating_spec in
  let exercise label st =
    let fs = Explore.failures_in_replay_order st in
    checkb (label ^ ": identity on stats.failures") true
      (fs = st.Explore.failures);
    checkb (label ^ ": violations recorded") true (fs <> []);
    List.iter
      (fun (choices, msg) ->
        match Explore.replay_choices ~mk choices with
        | Error m -> Alcotest.(check string) (label ^ ": replay verdict") msg m
        | Ok () -> Alcotest.fail (label ^ ": failure prefix replayed clean")
        | exception Invalid_argument e ->
            Alcotest.fail (label ^ ": failure prefix did not replay: " ^ e))
      fs
  in
  exercise "seq"
    (Explore.search ~max_runs ~preemption_bound:(Some 3) ~memo:true ~mk ());
  exercise "par jobs=4"
    (Explore_par.search ~max_runs ~preemption_bound:(Some 3) ~memo:true
       ~jobs:4 ~mk ())

(* --- snapshot-based sibling exploration -------------------------------- *)

let test_snapshot_replay_oracle () =
  (* replay-from-root is the differential oracle for the snapshot path:
     both must produce byte-identical statistics and failures *)
  List.iter
    (fun (t : Ws_litmus.Classic.t) ->
      let replay = Explore.search ~max_runs ~snapshots:false ~mk:t.mk () in
      let snap = Explore.search ~max_runs ~mk:t.mk () in
      Alcotest.check stats (t.name ^ ": snapshots equal replay") replay snap)
    Ws_litmus.Classic.all;
  (* and on a queue scenario with memo + POR + preemption bound stacked *)
  let go snapshots =
    fst
      (Ws_harness.Runner.exhaustive_check Ws_harness.Scenarios.default_spec
         ~preemption_bound:(Some 3) ~memo:true ~por:true ~snapshots ())
  in
  Alcotest.check stats "scenario: snapshots equal replay under memo+POR"
    (go false) (go true)

(* --- source-DPOR -------------------------------------------------------- *)

let test_dpor_classic_differential () =
  (* DPOR must preserve every verdict (and replayable failure prefixes)
     while never exploring more runs than the unreduced search, and in
     aggregate no more than sleep sets alone; snapshot-based sibling
     exploration must stay byte-identical to replay-from-root under it *)
  let total_por = ref 0 and total_dpor = ref 0 in
  List.iter
    (fun (t : Ws_litmus.Classic.t) ->
      let plain = Explore.search ~max_runs ~mk:t.mk () in
      let por = Explore.search ~max_runs ~por:true ~mk:t.mk () in
      let dpor = Explore.search ~max_runs ~dpor:true ~mk:t.mk () in
      checkb (t.name ^ ": verdict unchanged")
        (plain.Explore.failures <> [])
        (dpor.Explore.failures <> []);
      checkb (t.name ^ ": DPOR never explores more") true
        (dpor.Explore.runs <= plain.Explore.runs);
      checkb (t.name ^ ": DPOR still exhausts") true
        (dpor.Explore.truncated = 0);
      total_por := !total_por + por.Explore.runs;
      total_dpor := !total_dpor + dpor.Explore.runs;
      List.iter
        (fun (choices, _) ->
          match Explore.replay_choices ~mk:t.mk choices with
          | Error _ -> ()
          | Ok () ->
              Alcotest.failf "%s: DPOR failure prefix did not replay" t.name)
        dpor.Explore.failures;
      let replay =
        Explore.search ~max_runs ~dpor:true ~snapshots:false ~mk:t.mk ()
      in
      Alcotest.check stats (t.name ^ ": DPOR snapshots equal replay") replay
        dpor)
    Ws_litmus.Classic.all;
  checkb "DPOR does not fall behind sleep sets across the suite" true
    (!total_dpor <= !total_por)

let test_dpor_parallel_verdicts () =
  (* frontier split nodes enumerate all children (they give up their share
     of the reduction), so only the verdict/failure contract carries over *)
  List.iter
    (fun (t : Ws_litmus.Classic.t) ->
      let seq = Explore.search ~max_runs ~dpor:true ~mk:t.mk () in
      let par = Explore_par.search ~max_runs ~dpor:true ~jobs:4 ~mk:t.mk () in
      checkb (t.name ^ ": DPOR jobs=4 verdict agrees")
        (seq.Explore.failures <> [])
        (par.Explore.failures <> []);
      checkb (t.name ^ ": DPOR jobs=4 still exhausts") true
        (par.Explore.truncated = 0))
    Ws_litmus.Classic.all

let test_dpor_delta_scenarios () =
  (* the §4 delta-soundness pair under DPOR: the delta=1 duplication is
     still sighted (with a replayable prefix), delta=2 still proves clean *)
  let spec delta =
    {
      Ws_harness.Scenarios.default_spec with
      queue = "ff-cl";
      sb_capacity = 2;
      delta;
      worker_fence = false;
      preloaded = 3;
      puts = 0;
      steal_attempts = 2;
      client_stores = 0;
    }
  in
  let sighted =
    fst
      (Ws_harness.Runner.exhaustive_check (spec 1) ~preemption_bound:(Some 3)
         ~memo:true ~dpor:true ())
  in
  checkb "delta=1: DPOR sights the duplication" true
    (sighted.Explore.failures <> []);
  (match sighted.Explore.failures with
  | (choices, _) :: _ -> (
      match
        Explore.replay_choices
          ~mk:(Ws_harness.Scenarios.instance (spec 1))
          choices
      with
      | Error _ -> ()
      | Ok () -> Alcotest.fail "DPOR duplication prefix did not replay")
  | [] -> ());
  let proof, clean =
    Ws_harness.Runner.exhaustive_check (spec 2) ~preemption_bound:(Some 3)
      ~memo:true ~dpor:true ()
  in
  checkb "delta=2: DPOR+memo proof is clean" true clean;
  checkb "delta=2: DPOR+memo proof completes under budget" true
    (proof.Explore.runs < 200_000)

(* --- persistent memo store ---------------------------------------------- *)

let fresh_store_path name =
  let path =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "wsrepro-test-store-%d-%s" (Unix.getpid ()) name)
  in
  let rec rm p =
    if Sys.is_directory p then begin
      Array.iter (fun f -> rm (Filename.concat p f)) (Sys.readdir p);
      Sys.rmdir p
    end
    else Sys.remove p
  in
  if Sys.file_exists path then rm path;
  path

let open_store ?(config = "test") ?(preemption_bound = None) ?(por = false)
    ?(dpor = false) path =
  Memo_store.open_ ~path ~config ~max_depth:Explore.default_max_depth
    ~preemption_bound ~por ~dpor ()

let test_memo_store_roundtrip () =
  (* cold search populates and commits; a warm reopen prunes the whole
     reduced tree at the root and reports the stored failure set *)
  let t = Ws_litmus.Classic.find "SB" in
  let path = fresh_store_path "roundtrip" in
  let cold_store =
    match open_store ~dpor:true path with
    | Ok s -> s
    | Error e -> Alcotest.fail e
  in
  let cold =
    Explore.search ~max_runs ~dpor:true ~memo_store:cold_store ~mk:t.mk ()
  in
  checkb "cold search explores" true (cold.Explore.runs > 0);
  checkb "cold search sights SB" true (cold.Explore.failures <> []);
  checkb "commit flushed the write-back buffer" true
    (Memo_store.pending_entries cold_store = 0);
  let warm_store =
    match open_store ~dpor:true path with
    | Ok s -> s
    | Error e -> Alcotest.fail e
  in
  checkb "warm reopen loads the committed entries" true
    (Memo_store.loaded_entries warm_store > 0);
  let warm =
    Explore.search ~max_runs ~dpor:true ~memo_store:warm_store ~mk:t.mk ()
  in
  checkb "warm search prunes at the root" true (warm.Explore.runs = 0);
  checkb "warm lookup hit" true (Memo_store.hits warm_store > 0);
  checkb "stored failure set carries the verdict" true
    (warm.Explore.failures = cold.Explore.failures)

let contains ~needle hay =
  let n = String.length needle and h = String.length hay in
  let rec at i = i + n <= h && (String.sub hay i n = needle || at (i + 1)) in
  n = 0 || at 0

let test_memo_store_header_mismatch () =
  (* every pinned header field must reject a mismatched open *)
  let t = Ws_litmus.Classic.find "MP" in
  let path = fresh_store_path "mismatch" in
  (match open_store ~dpor:true path with
  | Ok s -> ignore (Explore.search ~max_runs ~dpor:true ~memo_store:s ~mk:t.mk ())
  | Error e -> Alcotest.fail e);
  let expect_error what = function
    | Ok _ -> Alcotest.failf "mismatched %s accepted" what
    | Error e ->
        checkb
          (Printf.sprintf "%s error mentions the field (%s)" what e)
          true
          (contains ~needle:what e)
  in
  expect_error "por" (open_store ~por:true path);
  expect_error "config" (open_store ~config:"other" ~dpor:true path);
  expect_error "preemption_bound"
    (open_store ~preemption_bound:(Some 2) ~dpor:true path);
  (* matching header still opens *)
  match open_store ~dpor:true path with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e

let test_memo_store_corruption () =
  let t = Ws_litmus.Classic.find "MP" in
  let path = fresh_store_path "corrupt" in
  (match open_store path with
  | Ok s -> ignore (Explore.search ~max_runs ~memo_store:s ~mk:t.mk ())
  | Error e -> Alcotest.fail e);
  let oc = open_out (Filename.concat path "shard-0.dat") in
  output_string oc "not a number\n";
  close_out oc;
  match open_store path with
  | Ok _ -> Alcotest.fail "corrupted shard accepted"
  | Error e ->
      checkb ("corruption diagnosed: " ^ e) true
        (contains ~needle:"malformed entry" e)

(* --- Knuth covered-mass estimate ---------------------------------------- *)

let test_covered_estimate () =
  (* a completed search reports exactly 1.0; an interrupted one reports the
     fraction it got through, and runs/covered estimates the total size *)
  let t = Ws_litmus.Classic.find "SB" in
  let full = Explore.search ~max_runs ~mk:t.mk () in
  Alcotest.(check (float 0.0))
    "complete search covers 1.0" 1.0 full.Explore.covered;
  let partial =
    Explore.search ~max_runs:(max 1 (full.Explore.runs / 2)) ~mk:t.mk ()
  in
  checkb "interrupted search covers a proper fraction" true
    (partial.Explore.covered > 0.0 && partial.Explore.covered < 1.0);
  let est = float_of_int partial.Explore.runs /. partial.Explore.covered in
  let actual = float_of_int full.Explore.runs in
  checkb "size estimate lands within 10x of the truth" true
    (est > actual /. 10.0 && est < actual *. 10.0);
  (* every disposal path must conserve mass: reduced, memoized, bounded and
     parallel searches that run to completion all still sum to 1.0 *)
  let dpor = Explore.search ~max_runs ~dpor:true ~mk:t.mk () in
  Alcotest.(check (float 0.0)) "DPOR covers 1.0" 1.0 dpor.Explore.covered;
  let memo = Explore.search ~max_runs ~memo:true ~mk:t.mk () in
  Alcotest.(check (float 0.0)) "memoized covers 1.0" 1.0 memo.Explore.covered;
  let bounded =
    Explore.search ~max_runs ~preemption_bound:(Some 2) ~mk:t.mk ()
  in
  Alcotest.(check (float 0.0)) "bounded covers 1.0" 1.0 bounded.Explore.covered;
  let par = Explore_par.search ~max_runs ~jobs:4 ~mk:t.mk () in
  Alcotest.(check (float 0.0)) "parallel covers 1.0" 1.0 par.Explore.covered

(* --- work-stealing frontier --------------------------------------------- *)

let test_frontier_accounting () =
  (* the frontier record must account for every run and every task, and the
     steal counters must be consistent *)
  let spec =
    {
      Ws_harness.Scenarios.default_spec with
      sb_capacity = 2;
      preloaded = 2;
      steal_attempts = 1;
    }
  in
  let st, fr, clean =
    Ws_harness.Runner.exhaustive_check_full spec ~preemption_bound:(Some 3)
      ~jobs:4 ()
  in
  checkb "scenario is clean" true clean;
  Alcotest.(check int) "four domains" 4 fr.Explore_par.fr_domains;
  Alcotest.(check int)
    "per-domain runs sum to the total" st.Explore.runs
    (Array.fold_left ( + ) 0 fr.Explore_par.fr_runs_per_domain);
  Alcotest.(check int)
    "per-domain tasks sum to the total" fr.Explore_par.fr_tasks
    (Array.fold_left ( + ) 0 fr.Explore_par.fr_tasks_per_domain);
  checkb "the root split happened" true (fr.Explore_par.fr_splits > 0);
  checkb "attempts bound steals" true
    (fr.Explore_par.fr_steals <= fr.Explore_par.fr_steal_attempts)

let test_frontier_trivial_when_sequential () =
  let spec = Ws_harness.Scenarios.default_spec in
  let st, fr, _ =
    Ws_harness.Runner.exhaustive_check_full spec ~preemption_bound:(Some 3)
      ~memo:true ~jobs:1 ()
  in
  Alcotest.(check int) "one domain" 1 fr.Explore_par.fr_domains;
  Alcotest.(check int) "one task" 1 fr.Explore_par.fr_tasks;
  Alcotest.(check int) "no splits" 0 fr.Explore_par.fr_splits;
  Alcotest.(check int) "no steals" 0 fr.Explore_par.fr_steals;
  Alcotest.(check int)
    "the single domain owns every run" st.Explore.runs
    fr.Explore_par.fr_runs_per_domain.(0)

let () =
  Alcotest.run "explore"
    [
      ( "parallel",
        [
          Alcotest.test_case "classic suite byte-identical" `Quick
            test_parallel_byte_identical;
          Alcotest.test_case "more jobs than work" `Quick
            test_parallel_more_jobs_than_work;
        ] );
      ( "memo",
        [
          Alcotest.test_case "classic suite verdicts unchanged" `Quick
            test_memo_same_verdicts;
          Alcotest.test_case "memo + parallel verdicts unchanged" `Quick
            test_memo_parallel_verdicts;
          Alcotest.test_case "scenario proof under budget" `Quick
            test_scenario_memo_completes;
        ] );
      ( "por",
        [
          Alcotest.test_case "classic suite differential" `Quick
            test_por_classic_differential;
          Alcotest.test_case "capacity sweep differential" `Quick
            test_por_capacity_sweep;
          Alcotest.test_case "delta scenarios differential" `Quick
            test_por_delta_scenarios;
        ] );
      ( "dpor",
        [
          Alcotest.test_case "classic suite differential" `Quick
            test_dpor_classic_differential;
          Alcotest.test_case "parallel verdicts unchanged" `Quick
            test_dpor_parallel_verdicts;
          Alcotest.test_case "delta scenarios differential" `Quick
            test_dpor_delta_scenarios;
        ] );
      ( "memo-store",
        [
          Alcotest.test_case "cold/warm roundtrip" `Quick
            test_memo_store_roundtrip;
          Alcotest.test_case "header mismatch rejected" `Quick
            test_memo_store_header_mismatch;
          Alcotest.test_case "corruption rejected" `Quick
            test_memo_store_corruption;
        ] );
      ( "covered",
        [
          Alcotest.test_case "estimate and conservation" `Quick
            test_covered_estimate;
        ] );
      ( "frontier",
        [
          Alcotest.test_case "parallel accounting" `Quick
            test_frontier_accounting;
          Alcotest.test_case "trivial when sequential" `Quick
            test_frontier_trivial_when_sequential;
        ] );
      ( "failures",
        [
          Alcotest.test_case "replay order contract" `Quick
            test_failures_replay_order;
        ] );
      ( "snapshots",
        [
          Alcotest.test_case "replay oracle" `Quick test_snapshot_replay_oracle;
        ] );
    ]
