(* Tests for the native (real OCaml 5 Atomic/Domain) deques and the
   work-stealing pool. Sequential semantics plus multi-domain stress with
   conservation checking. *)

let checki = Alcotest.check Alcotest.int

open Ws_native

(* ------------------------------------------------------------------ *)
(* Chase-Lev, sequential                                               *)
(* ------------------------------------------------------------------ *)

let test_cl_lifo_pop () =
  let q = Chase_lev.create () in
  List.iter (Chase_lev.push q) [ 1; 2; 3 ];
  let a = Chase_lev.pop q in
  let b = Chase_lev.pop q in
  let c = Chase_lev.pop q in
  let d = Chase_lev.pop q in
  Alcotest.(check (list (option int)))
    "pop LIFO"
    [ Some 3; Some 2; Some 1; None ]
    [ a; b; c; d ]

let test_cl_fifo_steal () =
  let q = Chase_lev.create () in
  List.iter (Chase_lev.push q) [ 1; 2; 3 ];
  let a = Chase_lev.steal q in
  let b = Chase_lev.steal q in
  let c = Chase_lev.steal q in
  let d = Chase_lev.steal q in
  Alcotest.(check (list (option int)))
    "steal FIFO"
    [ Some 1; Some 2; Some 3; None ]
    [ a; b; c; d ]

let test_cl_mixed_ends () =
  let q = Chase_lev.create () in
  List.iter (Chase_lev.push q) [ 1; 2; 3; 4 ];
  Alcotest.(check (option int)) "steal head" (Some 1) (Chase_lev.steal q);
  Alcotest.(check (option int)) "pop tail" (Some 4) (Chase_lev.pop q);
  Alcotest.(check (option int)) "steal next" (Some 2) (Chase_lev.steal q);
  Alcotest.(check (option int)) "pop last" (Some 3) (Chase_lev.pop q);
  Alcotest.(check (option int)) "empty pop" None (Chase_lev.pop q);
  Alcotest.(check (option int)) "empty steal" None (Chase_lev.steal q)

let test_cl_growth () =
  let q = Chase_lev.create ~capacity:4 () in
  let n = 10_000 in
  for i = 1 to n do
    Chase_lev.push q i
  done;
  checki "size" n (Chase_lev.size q);
  let sum = ref 0 in
  let rec drain () =
    match Chase_lev.pop q with
    | Some v ->
        sum := !sum + v;
        drain ()
    | None -> ()
  in
  drain ();
  checki "conserved across growth" (n * (n + 1) / 2) !sum

let test_cl_interleaved_sequential () =
  let q = Chase_lev.create ~capacity:4 () in
  let popped = ref 0 and pushed = ref 0 in
  for round = 1 to 50 do
    for i = 1 to 7 do
      Chase_lev.push q ((round * 100) + i);
      incr pushed
    done;
    for _ = 1 to 5 do
      match Chase_lev.pop q with Some _ -> incr popped | None -> ()
    done
  done;
  let rec drain () =
    match Chase_lev.pop q with Some _ -> incr popped; drain () | None -> ()
  in
  drain ();
  checki "nothing lost" !pushed !popped

(* ------------------------------------------------------------------ *)
(* Chase-Lev, concurrent stress                                        *)
(* ------------------------------------------------------------------ *)

let test_cl_concurrent_conservation () =
  (* owner pushes N and pops; two stealer domains compete; every element
     must be extracted exactly once *)
  let n = 20_000 in
  let q = Chase_lev.create () in
  let extracted = Array.make n 0 in
  let stop = Atomic.make false in
  let stealer () =
    while not (Atomic.get stop) do
      match Chase_lev.steal_retry q with
      | Some v -> extracted.(v) <- extracted.(v) + 1
      | None -> Domain.cpu_relax ()
    done
  in
  let d1 = Domain.spawn stealer in
  let d2 = Domain.spawn stealer in
  let owner_got = ref [] in
  for i = 0 to n - 1 do
    Chase_lev.push q i;
    if i mod 3 = 0 then
      match Chase_lev.pop q with
      | Some v -> owner_got := v :: !owner_got
      | None -> ()
  done;
  let rec drain () =
    match Chase_lev.pop q with
    | Some v ->
        owner_got := v :: !owner_got;
        drain ()
    | None -> if Chase_lev.size q > 0 then drain ()
  in
  drain ();
  (* wait for stealers to finish consuming anything they raced for *)
  Unix.sleepf 0.05;
  Atomic.set stop true;
  Domain.join d1;
  Domain.join d2;
  List.iter (fun v -> extracted.(v) <- extracted.(v) + 1) !owner_got;
  let dups = ref 0 and lost = ref 0 in
  Array.iter
    (fun c ->
      if c > 1 then incr dups;
      if c = 0 then incr lost)
    extracted;
  checki "no element extracted twice" 0 !dups;
  checki "no element lost" 0 !lost

(* ------------------------------------------------------------------ *)
(* THE queue (native)                                                  *)
(* ------------------------------------------------------------------ *)

let test_the_sequential () =
  let q = The_queue.create ~capacity:16 () in
  List.iter (The_queue.push q) [ 1; 2; 3 ];
  Alcotest.(check (option int)) "pop tail" (Some 3) (The_queue.pop q);
  Alcotest.(check (option int)) "steal head" (Some 1) (The_queue.steal q);
  Alcotest.(check (option int)) "pop" (Some 2) (The_queue.pop q);
  Alcotest.(check (option int)) "empty" None (The_queue.pop q);
  Alcotest.(check (option int)) "empty steal" None (The_queue.steal q)

let test_the_concurrent_conservation () =
  let n = 20_000 in
  let q = The_queue.create ~capacity:(1 lsl 15) () in
  let counts = Array.make n 0 in
  let stop = Atomic.make false in
  let stolen = ref [] in
  let stealer =
    Domain.spawn (fun () ->
        let acc = ref [] in
        while not (Atomic.get stop) do
          match The_queue.steal q with
          | Some v -> acc := v :: !acc
          | None -> Domain.cpu_relax ()
        done;
        !acc)
  in
  let mine = ref [] in
  for i = 0 to n - 1 do
    The_queue.push q i;
    if i land 1 = 0 then
      match The_queue.pop q with Some v -> mine := v :: !mine | None -> ()
  done;
  let rec drain () =
    match The_queue.pop q with
    | Some v ->
        mine := v :: !mine;
        drain ()
    | None -> if The_queue.size q > 0 then drain ()
  in
  drain ();
  Unix.sleepf 0.05;
  Atomic.set stop true;
  stolen := Domain.join stealer;
  List.iter (fun v -> counts.(v) <- counts.(v) + 1) !mine;
  List.iter (fun v -> counts.(v) <- counts.(v) + 1) !stolen;
  let dups = Array.fold_left (fun a c -> if c > 1 then a + 1 else a) 0 counts in
  let lost = Array.fold_left (fun a c -> if c = 0 then a + 1 else a) 0 counts in
  checki "no duplicates" 0 dups;
  checki "no losses" 0 lost

let test_the_steal_half () =
  let q = The_queue.create ~capacity:16 () in
  List.iter (The_queue.push q) [ 1; 2; 3; 4; 5; 6 ];
  Alcotest.(check (list int))
    "takes ceil(n/2), oldest first" [ 1; 2; 3 ] (The_queue.steal_half q);
  Alcotest.(check (list int)) "then half the rest" [ 4; 5 ] (The_queue.steal_half q);
  Alcotest.(check (list int)) "then the last" [ 6 ] (The_queue.steal_half q);
  Alcotest.(check (list int)) "then nothing" [] (The_queue.steal_half q);
  List.iter (The_queue.push q) [ 7; 8; 9; 10 ];
  Alcotest.(check (list int))
    "max_batch caps the bite" [ 7 ] (The_queue.steal_half ~max_batch:1 q);
  checki "rest still queued" 3 (The_queue.size q)

let test_the_steal_half_concurrent () =
  (* owner pushes and pops; one thief uses only steal_half; conservation *)
  let n = 20_000 in
  let q = The_queue.create ~capacity:(1 lsl 15) () in
  let counts = Array.make n 0 in
  let stop = Atomic.make false in
  let thief =
    Domain.spawn (fun () ->
        let acc = ref [] in
        while not (Atomic.get stop) do
          match The_queue.steal_half ~max_batch:8 q with
          | [] -> Domain.cpu_relax ()
          | batch -> acc := List.rev_append batch !acc
        done;
        !acc)
  in
  let mine = ref [] in
  for i = 0 to n - 1 do
    The_queue.push q i;
    if i land 1 = 0 then
      match The_queue.pop q with Some v -> mine := v :: !mine | None -> ()
  done;
  let rec drain () =
    match The_queue.pop q with
    | Some v ->
        mine := v :: !mine;
        drain ()
    | None -> if The_queue.size q > 0 then drain ()
  in
  drain ();
  Unix.sleepf 0.05;
  Atomic.set stop true;
  let stolen = Domain.join thief in
  List.iter (fun v -> counts.(v) <- counts.(v) + 1) !mine;
  List.iter (fun v -> counts.(v) <- counts.(v) + 1) stolen;
  let dups = Array.fold_left (fun a c -> if c > 1 then a + 1 else a) 0 counts in
  let lost = Array.fold_left (fun a c -> if c = 0 then a + 1 else a) 0 counts in
  checki "no duplicates" 0 dups;
  checki "no losses" 0 lost

(* ------------------------------------------------------------------ *)
(* Pool                                                                *)
(* ------------------------------------------------------------------ *)

let test_pool_fib () =
  let pool = Pool.create ~domains:3 () in
  checki "fib 20" 6765 (Pool.fib pool 20);
  checki "fib 25 (reuse)" 75025 (Pool.fib pool 25);
  Pool.shutdown pool

let test_pool_parallel_sum () =
  let pool = Pool.create ~domains:2 () in
  let acc = Atomic.make 0 in
  Pool.parallel_run pool
    (List.init 100 (fun i () -> ignore (Atomic.fetch_and_add acc (i + 1))));
  Pool.shutdown pool;
  checki "sum 1..100" 5050 (Atomic.get acc)

let test_pool_nested_spawn () =
  let pool = Pool.create ~domains:2 () in
  let acc = Atomic.make 0 in
  Pool.parallel_run pool
    [
      (fun () ->
        for _ = 1 to 10 do
          Pool.spawn pool (fun () ->
              Pool.spawn pool (fun () -> ignore (Atomic.fetch_and_add acc 1)))
        done);
    ];
  Pool.shutdown pool;
  checki "nested spawns all ran" 10 (Atomic.get acc)

exception Boom of int

(* Headline bug 1: a raising task used to kill its worker domain and leak
   the in_flight count, hanging parallel_run forever. Now the run must
   complete, re-raise the first failure at the join point, and leave the
   pool usable. *)
let test_pool_raising_tasks () =
  let pool = Pool.create ~domains:3 () in
  let ran = Atomic.make 0 in
  let tasks =
    List.init 500 (fun i () ->
        ignore (Atomic.fetch_and_add ran 1);
        (* ~10% of tasks raise, spread across all workers *)
        if i mod 10 = 3 then raise (Boom i))
  in
  (match Pool.parallel_run pool tasks with
  | () -> Alcotest.fail "expected parallel_run to re-raise a task failure"
  | exception Boom _ -> ());
  checki "every task ran despite the failures" 500 (Atomic.get ran);
  (* the pool survived: a clean run still works *)
  checki "pool reusable after failure" 75025 (Pool.fib pool 25);
  Pool.shutdown pool

let test_pool_nested_raise () =
  (* the failure can come from a nested spawn on a worker domain, not just
     a root task *)
  let pool = Pool.create ~domains:2 () in
  (match
     Pool.parallel_run pool
       [
         (fun () ->
           for i = 1 to 50 do
             Pool.spawn pool (fun () -> if i = 25 then raise (Boom i))
           done);
       ]
   with
  | () -> Alcotest.fail "expected the nested failure to surface"
  | exception Boom _ -> ());
  Pool.shutdown pool

(* Headline bug 2: spawn from a non-worker domain used to push onto deque 0
   concurrently with the coordinator — a Chase-Lev single-owner violation.
   Now external spawns go through the injector; hammer it from several
   domains at once (debug mode turns any ownership violation into a hard
   failure). *)
let test_pool_external_spawns () =
  let pool = Pool.create ~domains:3 ~debug:true () in
  let per_domain = 2_000 and spawners = 3 in
  let acc = Atomic.make 0 in
  let externals =
    List.init spawners (fun _ ->
        Domain.spawn (fun () ->
            for _ = 1 to per_domain do
              Pool.spawn pool (fun () -> ignore (Atomic.fetch_and_add acc 1))
            done))
  in
  List.iter Domain.join externals;
  (* shutdown drains everything still queued *)
  Pool.shutdown pool;
  checki "every external spawn executed" (per_domain * spawners)
    (Atomic.get acc)

let test_pool_shutdown_drains () =
  (* tasks spawned but never joined by a parallel_run must still run *)
  let pool = Pool.create ~domains:2 () in
  let acc = Atomic.make 0 in
  for _ = 1 to 1_000 do
    Pool.spawn pool (fun () -> ignore (Atomic.fetch_and_add acc 1))
  done;
  Pool.shutdown pool;
  checki "shutdown executed the queued tasks" 1_000 (Atomic.get acc);
  (* idempotent: a second shutdown is a no-op, and use-after-shutdown is
     an error rather than a hang *)
  Pool.shutdown pool;
  (match Pool.spawn pool (fun () -> ()) with
  | () -> Alcotest.fail "spawn after shutdown should raise"
  | exception Invalid_argument _ -> ())

let test_pool_the_backend_steal_half () =
  let pool =
    Pool.create ~domains:3 ~backend:Pool.The_deques ~steal_half:true ()
  in
  checki "fib on THE + steal-half" 6765 (Pool.fib pool 20);
  Pool.shutdown pool;
  match Pool.create ~domains:1 ~steal_half:true () with
  | _ -> Alcotest.fail "steal_half without THE backend should be rejected"
  | exception Invalid_argument _ -> ()

let test_pool_round_robin () =
  let pool = Pool.create ~domains:2 ~policy:Pool.Round_robin_victim () in
  checki "fib under round-robin victims" 6765 (Pool.fib pool 20);
  Pool.shutdown pool

let test_pool_stats_and_latency () =
  let pool = Pool.create ~domains:2 ~telemetry:true () in
  ignore (Pool.fib pool 18);
  let total = Pool.tasks_run pool in
  let stats = Pool.worker_stats pool in
  checki "stats length = workers + coordinator" (Pool.worker_count pool + 1)
    (Array.length stats);
  checki "per-slot counters sum to tasks_run" total
    (Array.fold_left (fun a st -> a + st.Pool.tasks_run) 0 stats);
  let h = Pool.latency pool in
  checki "latency histogram saw every task" total (Telemetry.Histogram.total h);
  Alcotest.(check bool)
    "p99 is a positive latency" true
    (Telemetry.Histogram.percentile h 0.99 > 0);
  let sink = Telemetry.Sink.create () in
  Pool.fold_into_sink pool sink;
  checki "sink tasks_run" total sink.Telemetry.Sink.tasks_run;
  Pool.shutdown pool

(* Forced-steal schedule on the live pool: each round the probe task spawns
   a child onto its own deque and spins (never popping) until the child
   flips a flag — the child can only arrive at an executor by a genuine
   steal, so the flight recording must reconstruct stolen lineage. *)
let test_pool_flight_lineage () =
  let module FR = Telemetry.Flight_recorder in
  let pool = Pool.create ~domains:2 ~flight:true () in
  Pool.parallel_run pool
    [
      (fun () ->
        for _ = 1 to 4 do
          let flag = Atomic.make false in
          Pool.spawn pool (fun () -> Atomic.set flag true);
          while not (Atomic.get flag) do
            Domain.cpu_relax ()
          done
        done);
    ];
  Pool.shutdown pool;
  let r =
    match Pool.flight pool with
    | Some r -> r
    | None -> Alcotest.fail "flight pool returned no recorder"
  in
  let lineages, unresolved = FR.reconstruct r in
  checki "every run resolved to its spawn" 0 unresolved;
  let stolen =
    List.filter
      (fun (l : FR.lineage) ->
        match l.origin with FR.Stolen _ -> true | _ -> false)
      lineages
  in
  Alcotest.(check bool)
    "the spinning owner forced at least one steal" true
    (List.length stolen >= 1);
  List.iter
    (fun (l : FR.lineage) ->
      match l.origin with
      | FR.Stolen victim ->
          Alcotest.(check bool)
            "thief is not its own victim" true (victim <> l.run_slot);
          checki "victim is the spawning slot" l.spawn_slot victim;
          Alcotest.(check bool)
            "stolen lineage has positive depth" true (l.steal_depth >= 1)
      | _ -> ())
    lineages;
  match FR.validate (FR.report r) with
  | Ok () -> ()
  | Error e -> Alcotest.failf "live-pool report failed validation: %s" e

(* Post-quiescence scrape: with no writers left, the stable-read protocol
   must return exact totals that agree with the pool's own accounting. *)
let test_pool_scrape () =
  let pool = Pool.create ~domains:2 ~telemetry:true () in
  ignore (Pool.fib pool 16);
  let snap = Pool.scrape pool in
  let total = Pool.tasks_run pool in
  checki "slot stats cover coordinator + workers"
    (Pool.worker_count pool + 1)
    (Array.length snap.Pool.slot_stats);
  checki "scrape totals agree with tasks_run" total
    (Array.fold_left
       (fun a st -> a + st.Pool.tasks_run)
       0 snap.Pool.slot_stats);
  checki "quiescent pool has nothing in flight" 0 snap.Pool.snap_in_flight;
  checki "quiescent pool has nothing pending" 0 snap.Pool.snap_pending;
  checki "quiescent pool has an empty injector" 0 snap.Pool.snap_injector;
  checki "per-slot latency histograms saw every task" total
    (Array.fold_left
       (fun a h -> a + Telemetry.Histogram.total h)
       0 snap.Pool.slot_latencies);
  Pool.shutdown pool

(* Stage attribution: every cell executed by a worker contributes exactly
   one observation to each of the three stage histograms (qwait, dispatch,
   service), the rotating sojourn ring carries the same mass, and no stage
   ever goes negative (the four stamps come from one monotonic clock). *)
let test_pool_stage_attribution () =
  let module H = Telemetry.Histogram in
  let module W = Telemetry.Windowed in
  let pool =
    Pool.create ~domains:1 ~attribution:true ~window_ns:1_000_000_000
      ~window_slots:4 ()
  in
  let ran = Atomic.make 0 in
  for _ = 1 to 50 do
    ignore (Pool.submit pool (fun () -> Atomic.incr ran))
  done;
  let deadline = Unix.gettimeofday () +. 5.0 in
  while Atomic.get ran < 50 && Unix.gettimeofday () < deadline do
    Domain.cpu_relax ()
  done;
  checki "all submissions ran" 50 (Atomic.get ran);
  let qw, dp, sv = Pool.stage_hists pool in
  checki "one qwait observation per cell" 50 (H.total qw);
  checki "one dispatch observation per cell" 50 (H.total dp);
  checki "one service observation per cell" 50 (H.total sv);
  checki "no negative qwait" 0 (H.negative qw);
  checki "no negative dispatch" 0 (H.negative dp);
  checki "no negative service" 0 (H.negative sv);
  let ring = Pool.windowed_sojourn pool in
  let mass =
    List.fold_left (fun a (_, h) -> a + H.total h) 0 (W.windows ring)
  in
  checki "windowed ring carries every completion" 50 mass;
  let snap = Pool.scrape pool in
  checki "scrape exports the stage plane" 50
    (Array.fold_left (fun a h -> a + H.total h) 0 snap.Pool.slot_qwait);
  checki "scrape exports the window ring" 50
    (List.fold_left
       (fun a (_, h) -> a + H.total h)
       0
       (W.windows snap.Pool.snap_windows));
  (* a plain pool keeps the whole plane empty — the off-path is free *)
  let plain = Pool.create ~domains:1 () in
  ignore (Pool.submit plain (fun () -> ()));
  Pool.shutdown plain;
  let pq, _, _ = Pool.stage_hists plain in
  checki "no attribution without the flag" 0 (H.total pq);
  Pool.shutdown pool

(* Bounded-injector backpressure: submit is the open-system front door and
   must honor [injector_capacity]; spawn-side admission is unconditional.
   One worker is parked on a gate so admissions sit in the injector. *)
let test_pool_submit_backpressure () =
  let pool = Pool.create ~domains:1 ~injector_capacity:1 () in
  let gate = Atomic.make false in
  let ran = Atomic.make 0 in
  let task () =
    while not (Atomic.get gate) do
      Domain.cpu_relax ()
    done;
    Atomic.incr ran
  in
  Alcotest.(check bool) "first submit admitted" true (Pool.submit pool task);
  (* wait for the worker to move it from the injector onto its deque *)
  let deadline = Unix.gettimeofday () +. 5.0 in
  while Pool.injector_depth pool > 0 && Unix.gettimeofday () < deadline do
    Domain.cpu_relax ()
  done;
  checki "injector drained to the busy worker" 0 (Pool.injector_depth pool);
  Alcotest.(check bool)
    "second admitted up to capacity" true
    (Pool.submit ~policy:Pool.Drop pool task);
  Alcotest.(check bool)
    "third refused at the full injector" false
    (Pool.submit ~policy:Pool.Drop pool (fun () -> Atomic.incr ran));
  checki "refusal counted" 1 (Pool.injector_drops pool);
  let snap = Pool.scrape pool in
  checki "scrape exports the drop counter" 1 snap.Pool.snap_injector_drops;
  Atomic.set gate true;
  let deadline = Unix.gettimeofday () +. 5.0 in
  while Atomic.get ran < 2 && Unix.gettimeofday () < deadline do
    Domain.cpu_relax ()
  done;
  checki "both admitted tasks ran, the refused one did not" 2
    (Atomic.get ran);
  Pool.shutdown pool

(* qcheck: random sequential op sequences vs a reference deque *)
let cl_matches_reference =
  QCheck.Test.make ~name:"native chase-lev matches reference deque (sequential)"
    ~count:200
    QCheck.(list (int_bound 2))
    (fun ops ->
      let q = Chase_lev.create ~capacity:4 () in
      let reference = ref ([] : int list) (* head first *) in
      List.for_all
        (fun op ->
          match op with
          | 0 ->
              let v = List.length !reference in
              Chase_lev.push q v;
              reference := !reference @ [ v ];
              true
          | 1 -> (
              let got = Chase_lev.pop q in
              match List.rev !reference with
              | [] -> got = None
              | last :: rev_init ->
                  reference := List.rev rev_init;
                  got = Some last)
          | _ -> (
              let got = Chase_lev.steal q in
              match !reference with
              | [] -> got = None
              | first :: rest ->
                  reference := rest;
                  got = Some first))
        ops)

let () =
  Alcotest.run "native"
    [
      ( "chase-lev",
        [
          Alcotest.test_case "pop LIFO" `Quick test_cl_lifo_pop;
          Alcotest.test_case "steal FIFO" `Quick test_cl_fifo_steal;
          Alcotest.test_case "mixed ends" `Quick test_cl_mixed_ends;
          Alcotest.test_case "buffer growth" `Quick test_cl_growth;
          Alcotest.test_case "interleaved sequential" `Quick
            test_cl_interleaved_sequential;
          Alcotest.test_case "concurrent conservation" `Slow
            test_cl_concurrent_conservation;
          QCheck_alcotest.to_alcotest cl_matches_reference;
        ] );
      ( "the-queue",
        [
          Alcotest.test_case "sequential" `Quick test_the_sequential;
          Alcotest.test_case "concurrent conservation" `Slow
            test_the_concurrent_conservation;
          Alcotest.test_case "steal-half sequential" `Quick
            test_the_steal_half;
          Alcotest.test_case "steal-half concurrent conservation" `Slow
            test_the_steal_half_concurrent;
        ] );
      ( "pool",
        [
          Alcotest.test_case "fib" `Slow test_pool_fib;
          Alcotest.test_case "parallel sum" `Quick test_pool_parallel_sum;
          Alcotest.test_case "nested spawn" `Quick test_pool_nested_spawn;
          Alcotest.test_case "raising tasks do not hang the run" `Slow
            test_pool_raising_tasks;
          Alcotest.test_case "nested raise surfaces" `Quick
            test_pool_nested_raise;
          Alcotest.test_case "external-domain spawn hammer" `Slow
            test_pool_external_spawns;
          Alcotest.test_case "shutdown drains and is idempotent" `Quick
            test_pool_shutdown_drains;
          Alcotest.test_case "THE backend with steal-half" `Slow
            test_pool_the_backend_steal_half;
          Alcotest.test_case "round-robin victims" `Quick
            test_pool_round_robin;
          Alcotest.test_case "stats and latency histogram" `Quick
            test_pool_stats_and_latency;
          Alcotest.test_case "flight recorder stolen lineage" `Quick
            test_pool_flight_lineage;
          Alcotest.test_case "live scrape is exact at quiescence" `Quick
            test_pool_scrape;
          Alcotest.test_case "stage attribution covers every cell" `Quick
            test_pool_stage_attribution;
          Alcotest.test_case "bounded injector backpressure" `Quick
            test_pool_submit_backpressure;
        ] );
    ]
