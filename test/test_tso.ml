(* Tests for the bounded-TSO substrate: memory, store buffers (both models),
   the abstract machine's transition semantics, schedulers, the explorer and
   the timing engine. *)

open Tso

let check = Alcotest.check
let checki = check Alcotest.int
let checkb = check Alcotest.bool

(* ------------------------------------------------------------------ *)
(* Memory                                                              *)
(* ------------------------------------------------------------------ *)

let test_memory_alloc () =
  let mem = Memory.create () in
  let a = Memory.alloc mem ~name:"x" ~init:7 in
  let b = Memory.alloc mem ~name:"y" ~init:0 in
  checki "x init" 7 (Memory.get mem a);
  checki "y init" 0 (Memory.get mem b);
  Memory.set mem b 42;
  checki "y set" 42 (Memory.get mem b);
  checki "size" 2 (Memory.size mem);
  check Alcotest.string "name x" "x" (Memory.name mem a);
  check Alcotest.string "name y" "y" (Memory.name mem b)

let test_memory_array () =
  let mem = Memory.create () in
  let base = Memory.alloc_array mem ~name:"t" ~len:5 ~init:(-1) in
  checki "size" 5 (Memory.size mem);
  for i = 0 to 4 do
    checki "init" (-1) (Memory.get mem (Addr.offset base i))
  done;
  Memory.set mem (Addr.offset base 3) 9;
  checki "set elem" 9 (Memory.get mem (Addr.offset base 3));
  check Alcotest.string "elem name" "t[3]" (Memory.name mem (Addr.offset base 3));
  check (Alcotest.array Alcotest.int) "snapshot"
    [| -1; -1; -1; 9; -1 |]
    (Memory.snapshot mem)

let test_memory_growth () =
  let mem = Memory.create () in
  let addrs = List.init 500 (fun i -> Memory.alloc mem ~name:(Printf.sprintf "c%d" i) ~init:i) in
  List.iteri (fun i a -> checki "grown cell" i (Memory.get mem a)) addrs

let test_memory_oob () =
  let mem = Memory.create () in
  let _ = Memory.alloc mem ~name:"x" ~init:0 in
  Alcotest.check_raises "oob" (Invalid_argument "Memory: address 5 out of bounds (size 1)")
    (fun () -> ignore (Memory.get mem (Addr.of_index 5)))

(* ------------------------------------------------------------------ *)
(* Store buffer                                                        *)
(* ------------------------------------------------------------------ *)

let mk_mem2 () =
  let mem = Memory.create () in
  let x = Memory.alloc mem ~name:"x" ~init:0 in
  let y = Memory.alloc mem ~name:"y" ~init:0 in
  (mem, x, y)

let test_sb_fifo () =
  let mem, x, y = mk_mem2 () in
  let sb = Store_buffer.create ~capacity:4 ~model:Store_buffer.Abstract in
  Store_buffer.push sb x 1;
  Store_buffer.push sb y 2;
  Store_buffer.push sb x 3;
  checki "entries" 3 (Store_buffer.entries sb);
  check (Alcotest.option Alcotest.int) "lookup newest x" (Some 3) (Store_buffer.lookup sb x);
  check (Alcotest.option Alcotest.int) "lookup y" (Some 2) (Store_buffer.lookup sb y);
  (match Store_buffer.drain sb mem with
  | Store_buffer.Wrote (a, v) ->
      checkb "first drain is oldest" true (Addr.equal a x);
      checki "oldest value" 1 v
  | _ -> Alcotest.fail "abstract drain must write memory");
  checki "memory x after drain" 1 (Memory.get mem x);
  check (Alcotest.option Alcotest.int) "x still forwarded from newer entry" (Some 3)
    (Store_buffer.lookup sb x)

let test_sb_capacity () =
  let _, x, _ = mk_mem2 () in
  let sb = Store_buffer.create ~capacity:2 ~model:Store_buffer.Abstract in
  Store_buffer.push sb x 1;
  Store_buffer.push sb x 2;
  checkb "full" true (Store_buffer.is_full sb);
  Alcotest.check_raises "push full" (Invalid_argument "Store_buffer.push: buffer full")
    (fun () -> Store_buffer.push sb x 3)

let test_sb_egress () =
  let mem, x, y = mk_mem2 () in
  let sb = Store_buffer.create ~capacity:2 ~model:(Store_buffer.Realistic { coalesce = false }) in
  Store_buffer.push sb x 1;
  Store_buffer.push sb y 2;
  (match Store_buffer.drain sb mem with
  | Store_buffer.Staged (a, 1) -> checkb "staged x" true (Addr.equal a x)
  | _ -> Alcotest.fail "realistic drain stages into B");
  checki "memory untouched while in B" 0 (Memory.get mem x);
  check (Alcotest.option Alcotest.int) "B still forwards" (Some 1) (Store_buffer.lookup sb x);
  (* without coalescing, B must flush before the next (different-address) drain *)
  checkb "cannot drain y over occupied B" false (Store_buffer.can_drain sb);
  let a, v = Store_buffer.flush_egress sb mem in
  checkb "flushed x" true (Addr.equal a x);
  checki "flushed value" 1 v;
  checki "memory x" 1 (Memory.get mem x);
  checkb "can drain y now" true (Store_buffer.can_drain sb)

let test_sb_coalescing () =
  let mem, x, _ = mk_mem2 () in
  let sb = Store_buffer.create ~capacity:3 ~model:(Store_buffer.Realistic { coalesce = true }) in
  Store_buffer.push sb x 1;
  Store_buffer.push sb x 2;
  Store_buffer.push sb x 3;
  ignore (Store_buffer.drain sb mem) (* x:=1 staged in B *);
  (match Store_buffer.drain sb mem with
  | Store_buffer.Coalesced (a, 2) -> checkb "coalesced same addr" true (Addr.equal a x)
  | _ -> Alcotest.fail "same-address drain must coalesce into B");
  ignore (Store_buffer.drain sb mem) (* x:=3 coalesces too *);
  checki "nothing reached memory yet" 0 (Memory.get mem x);
  let _, v = Store_buffer.flush_egress sb mem in
  checki "B holds newest coalesced value" 3 v;
  checki "memory sees only final value" 3 (Memory.get mem x);
  checkb "empty" true (Store_buffer.is_empty sb)

let test_sb_no_cross_address_coalescing () =
  let mem, x, y = mk_mem2 () in
  let sb = Store_buffer.create ~capacity:3 ~model:(Store_buffer.Realistic { coalesce = true }) in
  Store_buffer.push sb x 1;
  Store_buffer.push sb y 2;
  ignore (Store_buffer.drain sb mem);
  (* y may not coalesce over x: TSO would break (§7.3's A/B example) *)
  checkb "different address cannot drain into occupied B" false
    (Store_buffer.can_drain sb);
  ignore (Store_buffer.flush_egress sb mem);
  ignore (Store_buffer.drain sb mem);
  ignore (Store_buffer.flush_egress sb mem);
  checki "x" 1 (Memory.get mem x);
  checki "y" 2 (Memory.get mem y)

let test_sb_lookup_shadows_egress () =
  (* forwarding precedence: the newest entry of the buffer proper must
     shadow an older same-address store staged in B *)
  let mem, x, _ = mk_mem2 () in
  let sb =
    Store_buffer.create ~capacity:2
      ~model:(Store_buffer.Realistic { coalesce = false })
  in
  Store_buffer.push sb x 1;
  ignore (Store_buffer.drain sb mem) (* x:=1 staged into B *);
  check (Alcotest.option Alcotest.int) "B forwards when queue empty" (Some 1)
    (Store_buffer.lookup sb x);
  Store_buffer.push sb x 2;
  check (Alcotest.option Alcotest.int) "newest queue entry shadows B" (Some 2)
    (Store_buffer.lookup sb x);
  (match Store_buffer.egress_entry sb with
  | Some (a, 1) -> checkb "B holds the oldest store" true (Addr.equal a x)
  | _ -> Alcotest.fail "expected x:=1 in B");
  (match Store_buffer.buffered sb with
  | [ (a, 2) ] -> checkb "buffer proper holds the newest" true (Addr.equal a x)
  | _ -> Alcotest.fail "expected [x:=2] in the buffer proper");
  ignore (Store_buffer.flush_egress sb mem);
  checki "memory got B's value" 1 (Memory.get mem x);
  check (Alcotest.option Alcotest.int) "queue still forwards after flush"
    (Some 2) (Store_buffer.lookup sb x)

let test_sb_pso_lanes_stable () =
  let mem, x, y = mk_mem2 () in
  let sb = Store_buffer.create ~capacity:4 ~model:Store_buffer.Pso in
  Store_buffer.push sb y 1;
  Store_buffer.push sb x 2;
  Store_buffer.push sb y 3;
  let lanes = Store_buffer.drain_lanes sb in
  check (Alcotest.list Alcotest.int) "one sorted lane per pending address"
    [ Addr.to_index x; Addr.to_index y ]
    lanes;
  check (Alcotest.list Alcotest.int) "lanes are stable across calls" lanes
    (Store_buffer.drain_lanes sb);
  (match Store_buffer.drain_lane sb (Addr.to_index y) mem with
  | Store_buffer.Wrote (a, 1) -> checkb "oldest y first" true (Addr.equal a y)
  | _ -> Alcotest.fail "PSO drain writes memory directly");
  check (Alcotest.list Alcotest.int) "y still pending: lanes unchanged"
    [ Addr.to_index x; Addr.to_index y ]
    (Store_buffer.drain_lanes sb);
  (match Store_buffer.drain_lane sb (Addr.to_index y) mem with
  | Store_buffer.Wrote (_, 3) -> ()
  | _ -> Alcotest.fail "second y drain must write y:=3");
  check (Alcotest.list Alcotest.int) "y lane disappears once empty"
    [ Addr.to_index x ]
    (Store_buffer.drain_lanes sb)

(* qcheck: the abstract store buffer against a reference list model. *)
let sb_model_prop =
  QCheck.Test.make ~name:"store buffer matches reference model" ~count:300
    QCheck.(list (pair (int_bound 3) (int_bound 100)))
    (fun ops ->
      let mem = Memory.create () in
      let addrs = Array.init 4 (fun i -> Memory.alloc mem ~name:(Printf.sprintf "a%d" i) ~init:0) in
      let sb = Store_buffer.create ~capacity:8 ~model:Store_buffer.Abstract in
      (* reference: pending stores as a list (oldest first) + memory array *)
      let pending = ref [] in
      let refmem = Array.make 4 0 in
      List.iter
        (fun (ai, v) ->
          (* interleave pushes with occasional drains *)
          if Store_buffer.is_full sb || (v mod 5 = 0 && Store_buffer.can_drain sb)
          then begin
            (match Store_buffer.drain sb mem with
            | Store_buffer.Wrote _ -> ()
            | _ -> assert false);
            match !pending with
            | (i, w) :: rest ->
                refmem.(i) <- w;
                pending := rest
            | [] -> assert false
          end;
          Store_buffer.push sb addrs.(ai) v;
          pending := !pending @ [ (ai, v) ])
        ops;
      (* check forwarding for every address *)
      let ok_fwd =
        List.for_all
          (fun i ->
            let expected =
              List.fold_left
                (fun acc (j, v) -> if i = j then Some v else acc)
                None !pending
            in
            Store_buffer.lookup sb addrs.(i) = expected)
          [ 0; 1; 2; 3 ]
      in
      (* drain everything and compare final memory *)
      while Store_buffer.can_drain sb do
        ignore (Store_buffer.drain sb mem)
      done;
      List.iter (fun (i, v) -> refmem.(i) <- v) !pending;
      ok_fwd
      && List.for_all
           (fun i -> Memory.get mem addrs.(i) = refmem.(i))
           [ 0; 1; 2; 3 ])

(* ------------------------------------------------------------------ *)
(* Machine semantics                                                   *)
(* ------------------------------------------------------------------ *)

(* The SB litmus: Dekker's store buffering. r0 = r1 = 0 must be reachable
   under TSO and unreachable when both threads fence. *)
let sb_litmus_instance ~fences () =
  let m = Machine.create (Machine.abstract_config ~sb_capacity:2) in
  let mem = Machine.memory m in
  let x = Memory.alloc mem ~name:"x" ~init:0 in
  let y = Memory.alloc mem ~name:"y" ~init:0 in
  let r0 = ref (-1) and r1 = ref (-1) in
  let prog a b r () =
    Program.store a 1;
    if fences then Program.fence ();
    r := Program.load b
  in
  let _ = Machine.spawn m ~name:"t0" (prog x y r0) in
  let _ = Machine.spawn m ~name:"t1" (prog y x r1) in
  let check () =
    if !r0 = 0 && !r1 = 0 then Error "weak outcome" else Ok ()
  in
  { Explore.machine = m; check }

let test_sb_litmus_weak_outcome_reachable () =
  let st = Explore.search ~mk:(sb_litmus_instance ~fences:false) () in
  checkb "explorer finds the TSO-weak outcome" true (st.Explore.failures <> []);
  checki "no deadlocks" 0 st.Explore.deadlocks

let test_sb_litmus_fenced_is_sc () =
  let st = Explore.search ~mk:(sb_litmus_instance ~fences:true) () in
  checkb "fences forbid the weak outcome" true (st.Explore.failures = []);
  checkb "search completed" true (st.Explore.runs > 0 && st.Explore.truncated = 0)

let test_machine_enabledness () =
  let m = Machine.create (Machine.abstract_config ~sb_capacity:1) in
  let mem = Machine.memory m in
  let x = Memory.alloc mem ~name:"x" ~init:0 in
  let y = Memory.alloc mem ~name:"y" ~init:0 in
  let tid =
    Machine.spawn m ~name:"t" (fun () ->
        Program.store x 1;
        Program.store y 2;
        Program.fence ();
        ignore (Program.cas x ~expect:1 ~replace:5))
  in
  (* first store enabled *)
  checkb "step enabled" true (List.mem (Machine.Step tid) (Machine.enabled m));
  ignore (Machine.apply m (Machine.Step tid));
  (* buffer full (capacity 1): second store must wait for a drain *)
  checkb "store blocked" true (Machine.store_blocked m tid);
  check (Alcotest.list Alcotest.string) "only drain enabled"
    [ "drain" ]
    (List.map
       (function Machine.Drain _ -> "drain" | Machine.Step _ -> "step" | Machine.Flush _ -> "flush")
       (Machine.enabled m));
  ignore (Machine.apply m (Machine.Drain (tid, 0)));
  ignore (Machine.apply m (Machine.Step tid));
  (* fence must wait until y drains *)
  checkb "fence not enabled while buffered" true
    (not (List.mem (Machine.Step tid) (Machine.enabled m)));
  ignore (Machine.apply m (Machine.Drain (tid, 0)));
  ignore (Machine.apply m (Machine.Step tid)) (* fence *);
  ignore (Machine.apply m (Machine.Step tid)) (* cas, buffer empty *);
  checkb "done" true (Machine.thread_done m tid);
  checki "cas wrote memory directly" 5 (Memory.get mem x);
  checkb "quiescent" true (Machine.quiescent m)

let test_machine_forwarding () =
  let m = Machine.create (Machine.abstract_config ~sb_capacity:4) in
  let mem = Machine.memory m in
  let x = Memory.alloc mem ~name:"x" ~init:0 in
  let seen = ref (-1) in
  let tid =
    Machine.spawn m ~name:"t" (fun () ->
        Program.store x 33;
        seen := Program.load x)
  in
  ignore (Machine.apply m (Machine.Step tid));
  (* no drain yet: the load must be satisfied from the thread's own buffer *)
  ignore (Machine.apply m (Machine.Step tid));
  checki "store-to-load forwarding" 33 !seen;
  checki "memory not yet updated" 0 (Memory.get mem x)

let test_machine_events () =
  let m = Machine.create (Machine.abstract_config ~sb_capacity:2) in
  let mem = Machine.memory m in
  let x = Memory.alloc mem ~name:"x" ~init:0 in
  let events = ref [] in
  Machine.on_event m (fun e -> events := e :: !events);
  let tid = Machine.spawn m ~name:"t" (fun () -> Program.store x 1) in
  ignore (Machine.apply m (Machine.Step tid));
  ignore (Machine.apply m (Machine.Drain (tid, 0)));
  let kinds =
    List.rev_map
      (function
        | Machine.Ev_exec _ -> "exec"
        | Machine.Ev_drain _ -> "drain"
        | Machine.Ev_flush _ -> "flush"
        | Machine.Ev_done _ -> "done")
      !events
  in
  check (Alcotest.list Alcotest.string) "event stream" [ "exec"; "done"; "drain" ] kinds

let test_machine_event_order () =
  (* listeners fire in registration order, for every event *)
  let m = Machine.create (Machine.abstract_config ~sb_capacity:2) in
  let mem = Machine.memory m in
  let x = Memory.alloc mem ~name:"x" ~init:0 in
  let order = ref [] in
  Machine.on_event m (fun _ -> order := "first" :: !order);
  Machine.on_event m (fun _ -> order := "second" :: !order);
  let tid = Machine.spawn m ~name:"t" (fun () -> Program.store x 1) in
  ignore (Machine.apply m (Machine.Step tid)) (* Ev_exec then Ev_done *);
  check
    (Alcotest.list Alcotest.string)
    "registration order per event"
    [ "first"; "second"; "first"; "second" ]
    (List.rev !order);
  (* registration stays cheap and ordered as the listener set grows *)
  let hits = Array.make 64 (-1) in
  Array.iteri
    (fun i _ ->
      Machine.on_event m (fun _ -> if hits.(i) < 0 then hits.(i) <- i))
    hits;
  ignore (Machine.apply m (Machine.Drain (tid, 0)));
  checkb "all listeners fired" true (Array.for_all (fun v -> v >= 0) hits)

let test_fingerprint_covers_control_state () =
  (* a pure label step changes neither memory nor buffers, but it moves the
     program position, so the fingerprint must change *)
  let m = Machine.create (Machine.abstract_config ~sb_capacity:2) in
  let tid =
    Machine.spawn m ~name:"t" (fun () ->
        Program.label "a";
        Program.label "b")
  in
  let fp0 = Machine.fingerprint m in
  ignore (Machine.apply m (Machine.Step tid));
  let fp1 = Machine.fingerprint m in
  checkb "label step changes the fingerprint" true (fp0 <> fp1);
  ignore (Machine.apply m (Machine.Step tid));
  checkb "second label step changes it again" true (fp1 <> Machine.fingerprint m)

let test_fingerprint_distinguishes_egress () =
  (* a store staged in B and the same store still queued are different
     machine states (they enable different transitions) and must not share a
     fingerprint, even though the flattened pending-store list is equal *)
  let mk () =
    let m = Machine.create (Machine.realistic_config ~sb_capacity:2 ~coalesce:false) in
    let mem = Machine.memory m in
    let x = Memory.alloc mem ~name:"x" ~init:0 in
    let tid = Machine.spawn m ~name:"t" (fun () -> Program.store x 1) in
    ignore (Machine.apply m (Machine.Step tid));
    (m, tid)
  in
  let m_queued, _ = mk () in
  let m_staged, tid = mk () in
  check Alcotest.int "identical states share a fingerprint"
    (Machine.fingerprint m_queued)
    (Machine.fingerprint m_staged);
  ignore (Machine.apply m_staged (Machine.Drain (tid, 0))) (* stage into B *);
  checkb "queued vs staged-in-B differ" true
    (Machine.fingerprint m_queued <> Machine.fingerprint m_staged)

let test_machine_rmw_atomicity () =
  (* two threads fetch-add the same cell 50 times each; the result must be
     exactly 100 under every schedule tried *)
  List.iter
    (fun seed ->
      let m = Machine.create (Machine.abstract_config ~sb_capacity:4) in
      let mem = Machine.memory m in
      let x = Memory.alloc mem ~name:"x" ~init:0 in
      for t = 0 to 1 do
        ignore
          (Machine.spawn m ~name:(Printf.sprintf "t%d" t) (fun () ->
               for _ = 1 to 50 do
                 ignore (Program.fetch_add x 1)
               done))
      done;
      let rng = Random.State.make [| seed |] in
      (match Sched.run m (Sched.weighted rng ~drain_weight:0.3) with
      | Sched.Quiescent -> ()
      | _ -> Alcotest.fail "not quiescent");
      checki "fetch_add total" 100 (Memory.get mem x))
    [ 1; 2; 3; 4; 5 ]

(* ------------------------------------------------------------------ *)
(* Schedulers                                                          *)
(* ------------------------------------------------------------------ *)

let test_sched_replay_roundtrip () =
  let mk () =
    let m = Machine.create (Machine.abstract_config ~sb_capacity:2) in
    let mem = Machine.memory m in
    let x = Memory.alloc mem ~name:"x" ~init:0 in
    let y = Memory.alloc mem ~name:"y" ~init:0 in
    let r = ref 0 in
    let _ = Machine.spawn m ~name:"a" (fun () -> Program.store x 1; r := !r + Program.load y) in
    let _ = Machine.spawn m ~name:"b" (fun () -> Program.store y 1; r := !r + (10 * Program.load x)) in
    (m, r)
  in
  let m1, r1 = mk () in
  let recorded = ref [] in
  let rng = Random.State.make [| 77 |] in
  let policy = Sched.record (fun i -> recorded := i :: !recorded) (Sched.uniform rng) in
  (match Sched.run m1 policy with Sched.Quiescent -> () | _ -> Alcotest.fail "q");
  let m2, r2 = mk () in
  let fallback _ _ = Alcotest.fail "replay must cover the whole run" in
  (match Sched.run m2 (Sched.replay (List.rev !recorded) ~fallback) with
  | Sched.Quiescent -> ()
  | _ -> Alcotest.fail "q2");
  checki "replayed run reproduces outcome" !r1 !r2;
  check Alcotest.int "replayed run reproduces memory" (Machine.fingerprint m1)
    (Machine.fingerprint m2)

let test_sched_deadlock_detection () =
  (* a thread waiting forever on a CAS that can never succeed still
     terminates the scheduler via quiescence of others? No — build a real
     deadlock: impossible by construction (drains always enabled), so check
     instead that Max_steps fires on an infinite spin. *)
  let m = Machine.create (Machine.abstract_config ~sb_capacity:2) in
  let mem = Machine.memory m in
  let x = Memory.alloc mem ~name:"x" ~init:0 in
  let _ =
    Machine.spawn m ~name:"spinner" (fun () ->
        while Program.load x = 0 do
          Program.spin_pause ()
        done)
  in
  let rng = Random.State.make [| 1 |] in
  (match Sched.run ~max_steps:1000 m (Sched.uniform rng) with
  | Sched.Max_steps -> ()
  | _ -> Alcotest.fail "expected Max_steps")

(* ------------------------------------------------------------------ *)
(* Timing                                                              *)
(* ------------------------------------------------------------------ *)

let timing_machine body =
  let m = Machine.create (Machine.abstract_config ~sb_capacity:4) in
  let mem = Machine.memory m in
  let x = Memory.alloc mem ~name:"x" ~init:0 in
  let _ = Machine.spawn m ~name:"t" (body x) in
  m

let costs =
  {
    Timing.load_cost = 2;
    store_cost = 3;
    rmw_cost = 20;
    fence_cost = 10;
    drain_latency = 7;
    pause_cost = 1;
  }

let test_timing_work_only () =
  let m = timing_machine (fun _ () -> Program.work 100) in
  let r = Timing.run m costs in
  checki "work cycles" 100 r.Timing.makespan;
  checkb "quiescent" true (r.Timing.outcome = Sched.Quiescent)

let test_timing_fence_stall () =
  (* store (3) then fence: drain completes at 3 + 7 = 10; fence executes at
     10 and costs 10 -> finish 20 *)
  let m =
    timing_machine (fun x () ->
        Program.store x 1;
        Program.fence ())
  in
  let r = Timing.run m costs in
  checki "fence waits for drain" 20 r.Timing.makespan;
  checki "stall accounted" 7 r.Timing.threads.(0).Timing.fence_stall;
  checki "one fence" 1 r.Timing.threads.(0).Timing.fences

let test_timing_no_fence_no_stall () =
  let m =
    timing_machine (fun x () ->
        Program.store x 1;
        ignore (Program.load x))
  in
  let r = Timing.run m costs in
  (* store at 0 (cost 3), load at 3 (cost 2): finish 5; drain happens in
     background and does not delay the thread *)
  checki "no stall without fence" 5 r.Timing.makespan

let test_timing_deterministic () =
  let run () =
    let m = Machine.create (Machine.abstract_config ~sb_capacity:4) in
    let mem = Machine.memory m in
    let x = Memory.alloc mem ~name:"x" ~init:0 in
    for t = 0 to 2 do
      ignore
        (Machine.spawn m ~name:(Printf.sprintf "t%d" t) (fun () ->
             for i = 1 to 20 do
               Program.store x ((10 * t) + i);
               Program.work 5;
               ignore (Program.load x)
             done))
    done;
    let r = Timing.run m costs in
    (r.Timing.makespan, Machine.fingerprint m)
  in
  let a = run () and b = run () in
  checkb "timing is deterministic" true (a = b)

let test_timing_stats () =
  let m =
    timing_machine (fun x () ->
        Program.store x 1;
        Program.store x 2;
        ignore (Program.load x);
        ignore (Program.cas x ~expect:2 ~replace:3);
        Program.work 11)
  in
  let r = Timing.run m costs in
  let t = r.Timing.threads.(0) in
  checki "stores" 2 t.Timing.stores;
  checki "loads" 1 t.Timing.loads;
  checki "rmws" 1 t.Timing.rmws;
  checki "work" 11 t.Timing.work_cycles

let test_timing_domain_isolation () =
  (* two domains running [Timing.run] concurrently must not perturb each
     other's clocks — each run owns a private clock, with no module-global
     time left anywhere *)
  let mk extra =
    let m = Machine.create (Machine.abstract_config ~sb_capacity:4) in
    let mem = Machine.memory m in
    let x = Memory.alloc mem ~name:"x" ~init:0 in
    let y = Memory.alloc mem ~name:"y" ~init:0 in
    let _ =
      Machine.spawn m ~name:"a" (fun () ->
          Program.work (10_000 * extra);
          for i = 1 to 40 do
            Program.store x i;
            ignore (Program.load y)
          done)
    in
    let _ =
      Machine.spawn m ~name:"b" (fun () ->
          for i = 1 to 40 do
            Program.store y i;
            ignore (Program.load x);
            Program.fence ()
          done)
    in
    m
  in
  let seq0 = Timing.run (mk 0) costs in
  let seq9 = Timing.run (mk 9) costs in
  let d0 = Domain.spawn (fun () -> Timing.run (mk 0) costs) in
  let d9 = Domain.spawn (fun () -> Timing.run (mk 9) costs) in
  let par0 = Domain.join d0 and par9 = Domain.join d9 in
  checki "short run makespan unchanged" seq0.Timing.makespan
    par0.Timing.makespan;
  checki "long run makespan unchanged" seq9.Timing.makespan
    par9.Timing.makespan;
  checki "fence stalls unchanged" seq0.Timing.threads.(1).Timing.fence_stall
    par0.Timing.threads.(1).Timing.fence_stall;
  checkb "the two grids differ (test is not vacuous)" true
    (seq0.Timing.makespan <> seq9.Timing.makespan)

let test_timing_sharded_sink_byte_identical () =
  (* the sharded counter plane is invisible in the totals: a run whose
     threads accumulate into per-thread shards (merged at quiescence) must
     render the same sink JSON, byte for byte, as a run writing the plain
     sink directly — queue-op counters (Counted shim, shard-routed) and
     machine counters alike *)
  let build () =
    let m = Machine.create (Machine.abstract_config ~sb_capacity:4) in
    let params =
      {
        Ws_core.Queue_intf.capacity = 64;
        delta = 2;
        worker_fence = false;
        tag = "q";
      }
    in
    let q =
      Ws_core.Registry.create ~shard:0 (Ws_core.Registry.find "ff-the") m
        params
    in
    let _ =
      Machine.spawn m ~name:"owner" (fun () ->
          for i = 1 to 16 do
            Ws_core.Queue_intf.put q i
          done;
          let rec drain () =
            match Ws_core.Queue_intf.take q with
            | `Task _ -> drain ()
            | `Empty -> ()
          in
          drain ())
    in
    let _ =
      Machine.spawn m ~name:"thief" (fun () ->
          for _ = 1 to 8 do
            ignore (Ws_core.Queue_intf.steal q)
          done)
    in
    m
  in
  let plain = Telemetry.Sink.create () in
  let r1 = Timing.run ~sink:plain (build ()) costs in
  let merged = Telemetry.Sink.create () in
  let shards = Telemetry.Shards.create ~n:2 in
  let r2 = Timing.run ~sink:merged ~shards (build ()) costs in
  checki "same makespan" r1.Timing.makespan r2.Timing.makespan;
  Alcotest.(check string)
    "sink JSON byte-identical"
    (Telemetry.Json.to_string ~indent:true (Telemetry.Sink.to_json plain))
    (Telemetry.Json.to_string ~indent:true (Telemetry.Sink.to_json merged))

(* ------------------------------------------------------------------ *)
(* Explore                                                             *)
(* ------------------------------------------------------------------ *)

let test_explore_replay_failure () =
  let st = Explore.search ~mk:(sb_litmus_instance ~fences:false) () in
  match st.Explore.failures with
  | [] -> Alcotest.fail "expected a weak-outcome failure"
  | (choices, _) :: _ -> (
      match Explore.replay_choices ~mk:(sb_litmus_instance ~fences:false) choices with
      | Error _ -> () (* the failure reproduces *)
      | Ok () -> Alcotest.fail "replayed schedule did not reproduce the failure")

let test_explore_counts_preemptions () =
  (* TSO's store/load reordering comes from the memory subsystem, not from
     thread interleaving: even with a preemption bound of 0 (threads run
     serially), the weak outcome is reachable purely by delaying drains. *)
  let st =
    Explore.search ~preemption_bound:(Some 0)
      ~mk:(sb_litmus_instance ~fences:false) ()
  in
  checkb "weak outcome needs no preemptions" true (st.Explore.failures <> []);
  checkb "thread interleavings were pruned" true (st.Explore.pruned > 0);
  (* sequentially-consistent interleaving nondeterminism, by contrast, DOES
     need preemptions: with fences and bound 0 the space is tiny *)
  let fenced =
    Explore.search ~preemption_bound:(Some 0)
      ~mk:(sb_litmus_instance ~fences:true) ()
  in
  checkb "fenced + bound 0 has no failures" true (fenced.Explore.failures = [])

let test_explore_memo_equivalence () =
  (* the visited-state cache cuts runs without changing the verdict, and a
     memoized failure prefix still replays *)
  let plain = Explore.search ~mk:(sb_litmus_instance ~fences:false) () in
  let memo = Explore.search ~memo:true ~mk:(sb_litmus_instance ~fences:false) () in
  checkb "weak outcome still found" true (memo.Explore.failures <> []);
  checkb "memo explores fewer runs" true (memo.Explore.runs < plain.Explore.runs);
  checkb "memo hits reported" true (memo.Explore.memo_hits > 0);
  checki "plain search reports no memo hits" 0 plain.Explore.memo_hits;
  (match memo.Explore.failures with
  | (choices, _) :: _ -> (
      match Explore.replay_choices ~mk:(sb_litmus_instance ~fences:false) choices with
      | Error _ -> ()
      | Ok () -> Alcotest.fail "memoized failure prefix did not reproduce")
  | [] -> assert false);
  let memo_f = Explore.search ~memo:true ~mk:(sb_litmus_instance ~fences:true) () in
  checkb "no false positives under memoization" true (memo_f.Explore.failures = []);
  checkb "memoized fenced search still exhausts" true
    (memo_f.Explore.truncated = 0 && memo_f.Explore.runs > 0);
  (* dominance check: memoization stays exact under a preemption bound — a
     state first seen with little remaining budget must not mask a later
     visit with more *)
  let bounded =
    Explore.search ~preemption_bound:(Some 0) ~memo:true
      ~mk:(sb_litmus_instance ~fences:false) ()
  in
  checkb "weak outcome found at bound 0 with memo" true
    (bounded.Explore.failures <> [])

(* ------------------------------------------------------------------ *)
(* Transition footprints                                               *)
(* ------------------------------------------------------------------ *)

let test_footprint_independence () =
  let m = Machine.create (Machine.abstract_config ~sb_capacity:2) in
  let mem = Machine.memory m in
  let x = Memory.alloc mem ~name:"x" ~init:0 in
  let y = Memory.alloc mem ~name:"y" ~init:0 in
  let t0 = Machine.spawn m ~name:"t0" (fun () -> Program.store x 1) in
  let t1 =
    Machine.spawn m ~name:"t1" (fun () ->
        ignore (Program.load x);
        ignore (Program.load y))
  in
  let indep = Machine.independent in
  let f_store = Machine.footprint m (Machine.Step t0) in
  let f_load_x = Machine.footprint m (Machine.Step t1) in
  (* a store step only enters the issuing thread's buffer — no shared
     address — so it commutes with the other thread's load even of the
     same cell (TSO in one line: the reordering lives in the drain) *)
  checkb "buffered store || load of same cell" true (indep f_store f_load_x);
  checkb "independence is symmetric" true
    (indep f_load_x f_store = indep f_store f_load_x);
  (* transitions of the same thread never commute *)
  checkb "same thread is dependent" false (indep f_store f_store);
  ignore (Machine.apply m (Machine.Step t0)) (* x=1 now queued in t0's SB *);
  let f_drain = Machine.footprint m (Machine.Drain (t0, 0)) in
  let f_load_x = Machine.footprint m (Machine.Step t1) in
  (* the drain is the memory write of x: it must not commute with a load
     of x... *)
  checkb "drain x || load x" false (indep f_drain f_load_x);
  checkb "dependence is symmetric" false (indep f_load_x f_drain);
  checki "drain footprint writes x" (Addr.to_index x)
    (Machine.footprint_write f_drain);
  ignore (Machine.apply m (Machine.Step t1)) (* t1 consumed its load of x *);
  let f_load_y = Machine.footprint m (Machine.Step t1) in
  (* ...but it commutes with a load of a different cell *)
  checkb "drain x || load y" true (indep f_drain f_load_y)

let test_footprint_rmw_and_flush () =
  (* CAS reads and writes its cell, so two CASes on the same cell conflict
     write/write, and a drain of that cell conflicts with either *)
  let m = Machine.create (Machine.abstract_config ~sb_capacity:2) in
  let mem = Machine.memory m in
  let x = Memory.alloc mem ~name:"x" ~init:0 in
  let t0 = Machine.spawn m ~name:"t0" (fun () -> Program.store x 1) in
  let t1 =
    Machine.spawn m ~name:"t1" (fun () ->
        ignore (Program.cas x ~expect:0 ~replace:2))
  in
  let t2 =
    Machine.spawn m ~name:"t2" (fun () ->
        ignore (Program.cas x ~expect:0 ~replace:3))
  in
  let f_cas1 = Machine.footprint m (Machine.Step t1) in
  let f_cas2 = Machine.footprint m (Machine.Step t2) in
  checkb "cas x || cas x" false (Machine.independent f_cas1 f_cas2);
  checki "cas reads x" (Addr.to_index x) (Machine.footprint_read f_cas1);
  checki "cas writes x" (Addr.to_index x) (Machine.footprint_write f_cas1);
  ignore (Machine.apply m (Machine.Step t0));
  let f_drain = Machine.footprint m (Machine.Drain (t0, 0)) in
  checkb "drain x || cas x" false (Machine.independent f_drain f_cas1);
  (* realistic model: a drain stages into B, and the flush out of B carries
     the memory write — both claim the address *)
  let m2 = Machine.create (Machine.realistic_config ~sb_capacity:2 ~coalesce:false) in
  let mem2 = Machine.memory m2 in
  let a = Memory.alloc mem2 ~name:"a" ~init:0 in
  let b = Memory.alloc mem2 ~name:"b" ~init:0 in
  let u0 = Machine.spawn m2 ~name:"u0" (fun () -> Program.store a 1) in
  let u1 =
    Machine.spawn m2 ~name:"u1" (fun () ->
        ignore (Program.load a);
        ignore (Program.load b))
  in
  ignore (Machine.apply m2 (Machine.Step u0));
  let f_stage = Machine.footprint m2 (Machine.Drain (u0, 0)) in
  checki "staging drain claims the write" (Addr.to_index a)
    (Machine.footprint_write f_stage);
  ignore (Machine.apply m2 (Machine.Drain (u0, 0))) (* a=1 staged in B *);
  let f_flush = Machine.footprint m2 (Machine.Flush u0) in
  let f_load_a = Machine.footprint m2 (Machine.Step u1) in
  checkb "flush a || load a" false (Machine.independent f_flush f_load_a);
  ignore (Machine.apply m2 (Machine.Step u1));
  let f_load_b = Machine.footprint m2 (Machine.Step u1) in
  checkb "flush a || load b" true (Machine.independent f_flush f_load_b)

(* ------------------------------------------------------------------ *)
(* Snapshot / restore                                                  *)
(* ------------------------------------------------------------------ *)

(* A deterministic two-thread instance with enough variety to exercise the
   whole snapshot payload: buffered stores, a load response, a CAS. *)
let snap_mk () =
  let m = Machine.create (Machine.abstract_config ~sb_capacity:2) in
  let mem = Machine.memory m in
  let x = Memory.alloc mem ~name:"x" ~init:0 in
  let y = Memory.alloc mem ~name:"y" ~init:0 in
  let _ =
    Machine.spawn m ~name:"t0" (fun () ->
        Program.store x 1;
        let v = Program.load y in
        Program.store x (v + 2))
  in
  let _ =
    Machine.spawn m ~name:"t1" (fun () ->
        Program.store y 7;
        ignore (Program.cas x ~expect:0 ~replace:9))
  in
  Machine.set_record_responses m true;
  m

let rec drive m n =
  if n > 0 then
    match Machine.enabled m with
    | [] -> ()
    | tr :: _ ->
        ignore (Machine.apply m tr);
        drive m (n - 1)

let quiesce m = drive m max_int

let test_snapshot_restore_fingerprint () =
  let m1 = snap_mk () in
  drive m1 5;
  let fp = Machine.fingerprint m1 in
  let snap = Machine.snapshot_create () in
  Machine.snapshot m1 snap;
  (* the snapshot must share nothing with the source: driving the source
     on must not disturb what was captured *)
  quiesce m1;
  checkb "source moved past the captured state" true
    (Machine.fingerprint m1 <> fp);
  let m2 = snap_mk () in
  Machine.restore_into snap m2;
  checki "restored fingerprint equals the captured one" fp
    (Machine.fingerprint m2);
  checkb "restored machine keeps recording" true (Machine.record_responses m2);
  (* the restored continuations are live: the same deterministic schedule
     converges to the same final state as the source *)
  quiesce m2;
  checki "restored machine converges with the source" (Machine.fingerprint m1)
    (Machine.fingerprint m2);
  (* and the snapshot also shares nothing with machines it was restored
     into: a second restore lands on the captured state again *)
  let m3 = snap_mk () in
  Machine.restore_into snap m3;
  checki "second restore from the same snapshot" fp (Machine.fingerprint m3)

let test_snapshot_restore_listeners () =
  (* the machine.mli contract: listeners attached to the restore target
     survive the restore, but the fast-forward itself is silent — no event
     is emitted for the replayed prefix, and a Trace attached before the
     restore records only what runs afterwards *)
  let m1 = snap_mk () in
  drive m1 5;
  let snap = Machine.snapshot_create () in
  Machine.snapshot m1 snap;
  let m2 = snap_mk () in
  let trace = Trace.attach m2 in
  let events = ref 0 in
  Machine.on_event m2 (fun _ -> incr events);
  Machine.restore_into snap m2;
  checki "fast-forward emits no event" 0 !events;
  checkb "trace saw nothing during the restore" true
    (Trace.entries trace = []);
  (* the listeners were not detached: the first post-restore transition
     reaches both of them *)
  (match Machine.enabled m2 with
  | [] -> Alcotest.fail "restored machine should not be quiescent"
  | tr :: _ -> ignore (Machine.apply m2 tr));
  checkb "listener fires after the restore" true (!events > 0);
  checkb "trace records post-restore transitions" true
    (Trace.entries trace <> [])

let test_snapshot_preconditions () =
  (* recording must start before the first instruction *)
  let m = snap_mk () in
  drive m 1;
  (try
     Machine.set_record_responses m true;
     (* already recording: toggling on again is a no-op, so force the
        error path via a non-recording machine below *)
     ()
   with Invalid_argument _ -> Alcotest.fail "re-enabling while recording");
  let plain = Machine.create (Machine.abstract_config ~sb_capacity:2) in
  let mem = Machine.memory plain in
  let x = Memory.alloc mem ~name:"x" ~init:0 in
  let tid = Machine.spawn plain ~name:"t" (fun () -> Program.store x 1) in
  ignore (Machine.apply plain (Machine.Step tid));
  (try
     Machine.set_record_responses plain true;
     Alcotest.fail "enabling recording mid-run must raise"
   with Invalid_argument _ -> ());
  (* snapshotting a non-recording machine must raise *)
  let snap = Machine.snapshot_create () in
  (try
     Machine.snapshot plain snap;
     Alcotest.fail "snapshot of a non-recording machine must raise"
   with Invalid_argument _ -> ());
  (* restoring onto a driven machine must raise *)
  let src = snap_mk () in
  drive src 3;
  Machine.snapshot src snap;
  let used = snap_mk () in
  drive used 1;
  try
    Machine.restore_into snap used;
    Alcotest.fail "restore onto a driven machine must raise"
  with Invalid_argument _ -> ()

(* ------------------------------------------------------------------ *)
(* PSO (the §10 future-work model)                                     *)
(* ------------------------------------------------------------------ *)

(* The work-stealing publication idiom: store the task, then bump the tail.
   TSO orders the two stores for free; PSO does not, so a thief can observe
   the new tail before the task — unless a fence sits between the stores. *)
let publication_instance ~config ~fenced () =
  let m = Machine.create config in
  let mem = Machine.memory m in
  let task = Memory.alloc mem ~name:"task" ~init:(-1) in
  let tail = Memory.alloc mem ~name:"tail" ~init:0 in
  let seen = ref None in
  let _ =
    Machine.spawn m ~name:"worker" (fun () ->
        Program.store task 7;
        if fenced then Program.fence ();
        Program.store tail 1)
  in
  let _ =
    Machine.spawn m ~name:"thief" (fun () ->
        if Program.load tail = 1 then seen := Some (Program.load task))
  in
  let check () =
    match !seen with
    | Some v when v <> 7 -> Error (Printf.sprintf "stale task %d published" v)
    | _ -> Ok ()
  in
  { Explore.machine = m; check }

let test_pso_breaks_publication () =
  let st =
    Explore.search
      ~mk:(publication_instance ~config:(Machine.pso_config ~sb_capacity:4) ~fenced:false)
      ()
  in
  checkb "PSO reorders the publication stores" true (st.Explore.failures <> [])

let test_pso_fence_restores_publication () =
  let st =
    Explore.search
      ~mk:(publication_instance ~config:(Machine.pso_config ~sb_capacity:4) ~fenced:true)
      ()
  in
  checkb "a store-store fence fixes it" true (st.Explore.failures = []);
  checki "search exhausted" 0 st.Explore.truncated

let test_tso_orders_publication_for_free () =
  let st =
    Explore.search
      ~mk:
        (publication_instance ~config:(Machine.abstract_config ~sb_capacity:4)
           ~fenced:false)
      ()
  in
  checkb "TSO's FIFO buffer orders the stores without a fence" true
    (st.Explore.failures = [])

let test_pso_mp_allowed () =
  (* message passing, forbidden under TSO, becomes observable under PSO *)
  let mk config () =
    let m = Machine.create config in
    let mem = Machine.memory m in
    let data = Memory.alloc mem ~name:"data" ~init:0 in
    let flag = Memory.alloc mem ~name:"flag" ~init:0 in
    let f = ref (-1) and d = ref (-1) in
    let _ =
      Machine.spawn m ~name:"w" (fun () ->
          Program.store data 1;
          Program.store flag 1)
    in
    let _ =
      Machine.spawn m ~name:"r" (fun () ->
          f := Program.load flag;
          d := Program.load data)
    in
    let check () = if !f = 1 && !d = 0 then Error "mp observed" else Ok () in
    { Explore.machine = m; check }
  in
  let pso = Explore.search ~mk:(mk (Machine.pso_config ~sb_capacity:4)) () in
  checkb "MP observable under PSO" true (pso.Explore.failures <> []);
  let tso = Explore.search ~mk:(mk (Machine.abstract_config ~sb_capacity:4)) () in
  checkb "MP forbidden under TSO" true (tso.Explore.failures = [])

let test_pso_forwarding_still_works () =
  let m = Machine.create (Machine.pso_config ~sb_capacity:4) in
  let mem = Machine.memory m in
  let x = Memory.alloc mem ~name:"x" ~init:0 in
  let y = Memory.alloc mem ~name:"y" ~init:0 in
  let got = ref (-1) in
  let tid =
    Machine.spawn m ~name:"t" (fun () ->
        Program.store x 1;
        Program.store y 2;
        Program.store x 3;
        got := Program.load x)
  in
  for _ = 1 to 3 do
    ignore (Machine.apply m (Machine.Step tid))
  done;
  (* drain y's lane only: x's stores stay buffered and must still forward *)
  ignore (Machine.apply m (Machine.Drain (tid, Addr.to_index y)));
  ignore (Machine.apply m (Machine.Step tid));
  checki "newest same-address store forwards under PSO" 3 !got;
  checki "y drained out of order" 2 (Memory.get mem y);
  checki "x not yet in memory" 0 (Memory.get mem x)


(* ------------------------------------------------------------------ *)
(* Trace                                                               *)
(* ------------------------------------------------------------------ *)

let test_trace_records_and_renders () =
  let m = Machine.create (Machine.abstract_config ~sb_capacity:2) in
  let mem = Machine.memory m in
  let x = Memory.alloc mem ~name:"x" ~init:0 in
  let trace = Trace.attach m in
  let t0 = Machine.spawn m ~name:"alpha" (fun () -> Program.store x 5) in
  let t1 = Machine.spawn m ~name:"beta" (fun () -> ignore (Program.load x)) in
  ignore (Machine.apply m (Machine.Step t0));
  ignore (Machine.apply m (Machine.Step t1));
  ignore (Machine.apply m (Machine.Drain (t0, 0)));
  checki "three applies recorded (plus dones)" 5 (Trace.length trace);
  let s = Trace.render trace in
  let contains needle =
    let ln = String.length needle and ls = String.length s in
    let rec go i = i + ln <= ls && (String.sub s i ln = needle || go (i + 1)) in
    go 0
  in
  checkb "thread names in header" true (contains "alpha" && contains "beta");
  checkb "store rendered" true (contains "store x := 5");
  checkb "drain rendered" true (contains "~ drain x=5");
  Trace.clear trace;
  checki "cleared" 0 (Trace.length trace)

let test_trace_last_filter () =
  let m = Machine.create (Machine.abstract_config ~sb_capacity:4) in
  let mem = Machine.memory m in
  let x = Memory.alloc mem ~name:"x" ~init:0 in
  let trace = Trace.attach m in
  let tid =
    Machine.spawn m ~name:"t" (fun () ->
        for i = 1 to 4 do
          Program.store x i
        done)
  in
  for _ = 1 to 4 do
    ignore (Machine.apply m (Machine.Step tid))
  done;
  let full = Trace.render trace in
  let last2 = Trace.render ~last:2 trace in
  checkb "filtered is shorter" true (String.length last2 < String.length full)


(* ------------------------------------------------------------------ *)
(* Differential testing against the reference enumerator               *)
(* ------------------------------------------------------------------ *)

let op_gen ~cells =
  let open QCheck.Gen in
  frequency
    [
      (3, map (fun a -> Reference.Load a) (int_bound (cells - 1)));
      ( 4,
        map2 (fun a v -> Reference.Store (a, v)) (int_bound (cells - 1))
          (int_range 1 3) );
      (1, return Reference.Fence);
      ( 1,
        map3
          (fun a e r -> Reference.Cas (a, e, r))
          (int_bound (cells - 1))
          (int_bound 2) (int_range 1 3) );
    ]

let program_gen ~cells ~threads ~max_ops =
  QCheck.Gen.(
    array_size (return threads) (list_size (int_range 1 max_ops) (op_gen ~cells)))

let differential_prop =
  QCheck.Test.make
    ~name:"machine outcome set = independent reference enumerator" ~count:60
    (QCheck.make
       ~print:(fun p ->
         String.concat " || "
           (Array.to_list
              (Array.map
                 (fun ops ->
                   String.concat "; "
                     (List.map
                        (function
                          | Reference.Load a -> Printf.sprintf "r(%d)" a
                          | Reference.Store (a, v) -> Printf.sprintf "w(%d,%d)" a v
                          | Reference.Fence -> "fence"
                          | Reference.Cas (a, e, r) ->
                              Printf.sprintf "cas(%d,%d,%d)" a e r)
                        ops))
                 p)))
       (program_gen ~cells:2 ~threads:2 ~max_ops:3))
    (fun program ->
      let cells = 2 and sb_capacity = 2 in
      let reference = Reference.outcomes ~cells ~sb_capacity program in
      let machine = Reference.machine_outcomes ~cells ~sb_capacity program in
      Reference.Outcome_set.equal reference machine)

let test_differential_sb_example () =
  (* the SB litmus expressed through the differential harness: the weak
     outcome must be in both sets *)
  let program =
    [|
      [ Reference.Store (0, 1); Reference.Load 1 ];
      [ Reference.Store (1, 1); Reference.Load 0 ];
    |]
  in
  let outcomes = Reference.outcomes ~cells:2 ~sb_capacity:2 program in
  let weak = { Reference.reads = [ 0; 0 ]; memory = [ 1; 1 ] } in
  checkb "weak outcome enumerated" true
    (Reference.Outcome_set.mem weak outcomes);
  let machine = Reference.machine_outcomes ~cells:2 ~sb_capacity:2 program in
  checkb "sets agree" true (Reference.Outcome_set.equal outcomes machine);
  (* and with fences both implementations lose exactly the weak outcomes *)
  let fenced =
    [|
      [ Reference.Store (0, 1); Reference.Fence; Reference.Load 1 ];
      [ Reference.Store (1, 1); Reference.Fence; Reference.Load 0 ];
    |]
  in
  let f_ref = Reference.outcomes ~cells:2 ~sb_capacity:2 fenced in
  checkb "fences forbid the weak outcome" true
    (not (Reference.Outcome_set.mem weak f_ref));
  let f_m = Reference.machine_outcomes ~cells:2 ~sb_capacity:2 fenced in
  checkb "fenced sets agree" true (Reference.Outcome_set.equal f_ref f_m)

let test_differential_capacity_matters () =
  (* with capacity 1, a thread's second store forces its first to drain, so
     fewer weak behaviours survive; both implementations must agree anyway *)
  let program =
    [|
      [ Reference.Store (0, 1); Reference.Store (1, 1); Reference.Load 1 ];
      [ Reference.Store (1, 2); Reference.Load 0 ];
    |]
  in
  List.iter
    (fun sb_capacity ->
      let r = Reference.outcomes ~cells:2 ~sb_capacity program in
      let m = Reference.machine_outcomes ~cells:2 ~sb_capacity program in
      checkb
        (Printf.sprintf "agree at capacity %d" sb_capacity)
        true
        (Reference.Outcome_set.equal r m))
    [ 1; 2; 3 ]


(* ------------------------------------------------------------------ *)
(* API corners                                                         *)
(* ------------------------------------------------------------------ *)

let test_machine_introspection () =
  let m = Machine.create (Machine.abstract_config ~sb_capacity:3) in
  let mem = Machine.memory m in
  let x = Memory.alloc mem ~name:"x" ~init:0 in
  let tid =
    Machine.spawn m ~name:"alpha" (fun () ->
        Program.store x 1;
        Program.store x 2)
  in
  check Alcotest.string "thread name" "alpha" (Machine.thread_name m tid);
  checki "one thread" 1 (Machine.thread_count m);
  checki "nothing buffered yet" 0 (Machine.buffered_stores m tid);
  ignore (Machine.apply m (Machine.Step tid));
  ignore (Machine.apply m (Machine.Step tid));
  checki "two buffered stores" 2 (Machine.buffered_stores m tid);
  checkb "not quiescent with buffered stores" true (not (Machine.quiescent m));
  checkb "done but not quiescent" true (Machine.thread_done m tid);
  check (Alcotest.option Alcotest.string) "no pending request when done" None
    (Machine.pending_request m tid);
  let fp1 = Machine.fingerprint m in
  ignore (Machine.apply m (Machine.Drain (tid, 0)));
  checkb "fingerprint tracks drains" true (fp1 <> Machine.fingerprint m);
  ignore (Machine.apply m (Machine.Drain (tid, 0)));
  checkb "quiescent after drains" true (Machine.quiescent m);
  checki "final memory" 2 (Memory.get mem x)

let test_program_describe () =
  let open Program in
  check Alcotest.string "load" "load @3" (describe (Req_load (Addr.of_index 3)));
  check Alcotest.string "store" "store @1 := 9" (describe (Req_store (Addr.of_index 1, 9)));
  check Alcotest.string "cas" "cas @0 (1 -> 2)" (describe (Req_cas (Addr.of_index 0, 1, 2)));
  check Alcotest.string "fence" "fence" (describe Req_fence);
  check Alcotest.string "pause" "pause" (describe Req_pause)

let test_timing_max_steps_outcome () =
  let m = Machine.create (Machine.abstract_config ~sb_capacity:2) in
  let mem = Machine.memory m in
  let x = Memory.alloc mem ~name:"x" ~init:0 in
  let _ =
    Machine.spawn m ~name:"spinner" (fun () ->
        while Program.load x = 0 do
          Program.spin_pause ()
        done)
  in
  let r = Timing.run ~max_steps:500 m costs in
  checkb "max steps surfaces" true (r.Timing.outcome = Sched.Max_steps)

let test_weighted_zero_drain_bias () =
  (* drain_weight 0: drains only happen when they are the sole choice, so
     reordering is maximal, yet runs still terminate *)
  let m = Machine.create (Machine.abstract_config ~sb_capacity:2) in
  let mem = Machine.memory m in
  let x = Memory.alloc mem ~name:"x" ~init:0 in
  let _ =
    Machine.spawn m ~name:"t" (fun () ->
        for i = 1 to 10 do
          Program.store x i
        done)
  in
  let rng = Random.State.make [| 4 |] in
  (match Sched.run m (Sched.weighted rng ~drain_weight:0.0) with
  | Sched.Quiescent -> ()
  | _ -> Alcotest.fail "must still quiesce");
  checki "all stores landed" 10 (Memory.get mem x)

let test_round_robin_policy_covers () =
  (* round robin visits every enabled transition class over time *)
  let m = Machine.create (Machine.abstract_config ~sb_capacity:4) in
  let mem = Machine.memory m in
  let x = Memory.alloc mem ~name:"x" ~init:0 in
  for t = 0 to 1 do
    ignore
      (Machine.spawn m
         ~name:(Printf.sprintf "t%d" t)
         (fun () -> Program.store x ((10 * t) + 1)))
  done;
  match Sched.run m (Sched.round_robin ()) with
  | Sched.Quiescent -> ()
  | _ -> Alcotest.fail "round robin must finish"

let () =
  Alcotest.run "tso"
    [
      ( "memory",
        [
          Alcotest.test_case "alloc and rw" `Quick test_memory_alloc;
          Alcotest.test_case "arrays" `Quick test_memory_array;
          Alcotest.test_case "growth" `Quick test_memory_growth;
          Alcotest.test_case "out of bounds" `Quick test_memory_oob;
        ] );
      ( "store-buffer",
        [
          Alcotest.test_case "fifo drain + forwarding" `Quick test_sb_fifo;
          Alcotest.test_case "capacity" `Quick test_sb_capacity;
          Alcotest.test_case "egress B" `Quick test_sb_egress;
          Alcotest.test_case "same-address coalescing" `Quick test_sb_coalescing;
          Alcotest.test_case "no cross-address coalescing" `Quick
            test_sb_no_cross_address_coalescing;
          Alcotest.test_case "lookup: queue shadows egress" `Quick
            test_sb_lookup_shadows_egress;
          Alcotest.test_case "PSO drain lanes are stable" `Quick
            test_sb_pso_lanes_stable;
          QCheck_alcotest.to_alcotest sb_model_prop;
        ] );
      ( "machine",
        [
          Alcotest.test_case "SB litmus weak outcome reachable" `Quick
            test_sb_litmus_weak_outcome_reachable;
          Alcotest.test_case "SB litmus fenced = SC" `Quick
            test_sb_litmus_fenced_is_sc;
          Alcotest.test_case "enabledness rules" `Quick test_machine_enabledness;
          Alcotest.test_case "store-to-load forwarding" `Quick
            test_machine_forwarding;
          Alcotest.test_case "event stream" `Quick test_machine_events;
          Alcotest.test_case "listener order" `Quick test_machine_event_order;
          Alcotest.test_case "fingerprint covers control state" `Quick
            test_fingerprint_covers_control_state;
          Alcotest.test_case "fingerprint splits egress from queue" `Quick
            test_fingerprint_distinguishes_egress;
          Alcotest.test_case "rmw atomicity" `Quick test_machine_rmw_atomicity;
        ] );
      ( "sched",
        [
          Alcotest.test_case "record/replay round-trip" `Quick
            test_sched_replay_roundtrip;
          Alcotest.test_case "max-steps on livelock" `Quick
            test_sched_deadlock_detection;
        ] );
      ( "timing",
        [
          Alcotest.test_case "pure work" `Quick test_timing_work_only;
          Alcotest.test_case "fence stall" `Quick test_timing_fence_stall;
          Alcotest.test_case "no fence, no stall" `Quick
            test_timing_no_fence_no_stall;
          Alcotest.test_case "deterministic" `Quick test_timing_deterministic;
          Alcotest.test_case "instruction stats" `Quick test_timing_stats;
          Alcotest.test_case "concurrent domains are isolated" `Quick
            test_timing_domain_isolation;
          Alcotest.test_case "sharded sink byte-identical to plain" `Quick
            test_timing_sharded_sink_byte_identical;
        ] );
      ( "explore",
        [
          Alcotest.test_case "failure replay" `Quick test_explore_replay_failure;
          Alcotest.test_case "preemption bound" `Quick
            test_explore_counts_preemptions;
          Alcotest.test_case "memoization equivalence" `Quick
            test_explore_memo_equivalence;
        ] );
      ( "footprint",
        [
          Alcotest.test_case "independence of loads, stores, drains" `Quick
            test_footprint_independence;
          Alcotest.test_case "rmw and flush dependence" `Quick
            test_footprint_rmw_and_flush;
        ] );
      ( "snapshot",
        [
          Alcotest.test_case "restore reproduces the fingerprint" `Quick
            test_snapshot_restore_fingerprint;
          Alcotest.test_case "preconditions raise" `Quick
            test_snapshot_preconditions;
          Alcotest.test_case "listeners survive, fast-forward is silent"
            `Quick test_snapshot_restore_listeners;
        ] );
      ( "api-corners",
        [
          Alcotest.test_case "machine introspection" `Quick
            test_machine_introspection;
          Alcotest.test_case "request descriptions" `Quick test_program_describe;
          Alcotest.test_case "timing max-steps" `Quick test_timing_max_steps_outcome;
          Alcotest.test_case "zero drain bias" `Quick test_weighted_zero_drain_bias;
          Alcotest.test_case "round robin coverage" `Quick
            test_round_robin_policy_covers;
        ] );
      ( "differential",
        [
          QCheck_alcotest.to_alcotest differential_prop;
          Alcotest.test_case "SB through the harness" `Quick
            test_differential_sb_example;
          Alcotest.test_case "capacity sensitivity" `Quick
            test_differential_capacity_matters;
        ] );
      ( "trace",
        [
          Alcotest.test_case "records and renders" `Quick
            test_trace_records_and_renders;
          Alcotest.test_case "last filter" `Quick test_trace_last_filter;
        ] );
      ( "pso",
        [
          Alcotest.test_case "PSO breaks put-publication" `Quick
            test_pso_breaks_publication;
          Alcotest.test_case "store-store fence restores it" `Quick
            test_pso_fence_restores_publication;
          Alcotest.test_case "TSO orders it for free" `Quick
            test_tso_orders_publication_for_free;
          Alcotest.test_case "MP: PSO allowed, TSO forbidden" `Quick
            test_pso_mp_allowed;
          Alcotest.test_case "forwarding under PSO" `Quick
            test_pso_forwarding_still_works;
        ] );
    ]
