(* Model-checking the delta bound: exhaustively explore every bounded-TSO
   interleaving of a small FF-CL scenario and watch the safety argument of
   the paper's §4 become load-bearing.

   Run with:  dune exec examples/model_check_delta.exe

   On a TSO[2] machine where the worker does no client stores, up to 2
   take-stores can hide in its buffer, so delta = 1 is UNSOUND and delta = 2
   is sound. The explorer finds a duplicated task for delta = 1 and proves
   (within the bound) that delta = 2 has no such execution. *)

let explore ?(por = false) ~delta () =
  let spec =
    {
      Ws_harness.Scenarios.default_spec with
      queue = "ff-cl";
      sb_capacity = 2;
      delta;
      worker_fence = false;
      preloaded = 3;
      puts = 0;
      steal_attempts = 2;
      client_stores = 0;
    }
  in
  (* the violating schedule needs a single preemption (worker runs, then
     the thief), so a CHESS bound of 3 keeps the search exhaustive-within-
     bound AND small enough to finish *)
  Ws_harness.Scenarios.explore_check spec ~max_runs:2_000_000
    ~preemption_bound:(Some 3) ~por ()

let () =
  Printf.printf "machine: TSO[2]; worker does 0 stores between takes\n\n";
  let unsound = explore ~delta:1 () in
  Printf.printf "delta = 1: %d interleavings explored\n" unsound.Tso.Explore.runs;
  (match unsound.Tso.Explore.failures with
  | (choices, msg) :: _ ->
      Printf.printf "  VIOLATION found: %s\n" msg;
      Printf.printf "  replayable schedule (choice indices): [%s]\n"
        (String.concat "; " (List.map string_of_int choices))
  | [] -> print_endline "  unexpectedly found no violation");
  print_newline ();
  let sound = explore ~delta:2 () in
  Printf.printf "delta = 2: %d interleavings explored, %d violations\n"
    sound.Tso.Explore.runs
    (List.length sound.Tso.Explore.failures);
  if
    sound.Tso.Explore.failures = []
    && sound.Tso.Explore.truncated = 0
    && sound.Tso.Explore.runs < 2_000_000
  then
    print_endline
      "  verified: no task lost or duplicated under any schedule with <= 3 preemptions";
  print_newline ();
  (* the same proof, reduced: sleep-set POR skips interleavings that only
     commute independent transitions, so both verdicts are re-established
     from a fraction of the runs *)
  let unsound_por = explore ~por:true ~delta:1 () in
  let sound_por = explore ~por:true ~delta:2 () in
  Printf.printf
    "with sleep-set POR: delta = 1 finds the violation in %d runs (%s), and\n\
    \  delta = 2 is re-verified in %d runs (was %d, %.1fx fewer)\n"
    unsound_por.Tso.Explore.runs
    (if unsound_por.Tso.Explore.failures <> [] then "violation found"
     else "VIOLATION LOST")
    sound_por.Tso.Explore.runs sound.Tso.Explore.runs
    (float_of_int sound.Tso.Explore.runs
    /. float_of_int (max 1 sound_por.Tso.Explore.runs))
