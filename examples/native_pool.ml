(* The native (non-simulated) side of the library: a work-stealing pool of
   real OCaml 5 domains built on the Atomic-based deques.

   Run with:  dune exec examples/native_pool.exe

   (As DESIGN.md explains, OCaml atomics are always fully fenced, so this
   pool is the *fenced* baseline; the fence-free algorithms live on the
   simulated machine where fences are controllable. DESIGN.md §12 has the
   pool architecture: injector, parking, exception safety.) *)

let () =
  let pool = Ws_native.Pool.create ~domains:3 ~telemetry:true () in

  (* parallel naive fib on real domains *)
  let n = 30 in
  let t0 = Unix.gettimeofday () in
  let r = Ws_native.Pool.fib pool n in
  let dt = Unix.gettimeofday () -. t0 in
  Printf.printf "fib %d = %d (%.3fs on 3 workers + caller)\n" n r dt;

  (* parallel map via spawn *)
  let inputs = Array.init 64 (fun i -> i) in
  let outputs = Array.make 64 0 in
  Ws_native.Pool.parallel_run pool
    (List.init 64 (fun i () ->
         let rec slow_square x k = if k = 0 then x * x else slow_square x (k - 1) in
         outputs.(i) <- slow_square inputs.(i) 10_000));
  Printf.printf "parallel map ok: outputs.(7) = %d (expect 49)\n" outputs.(7);

  (* a raising task no longer hangs the pool: the run completes and the
     first failure is re-raised at the join point *)
  (match
     Ws_native.Pool.parallel_run pool
       (List.init 16 (fun i () -> if i = 9 then failwith "task 9 exploded"))
   with
  | () -> assert false
  | exception Failure msg ->
      Printf.printf "failure surfaced at parallel_run: %S\n" msg);

  (* spawning from a domain that is not a pool worker is safe: it goes
     through the injector queue, never another domain's deque *)
  let hits = Atomic.make 0 in
  let outsider =
    Domain.spawn (fun () ->
        for _ = 1 to 100 do
          Ws_native.Pool.spawn pool (fun () ->
              ignore (Atomic.fetch_and_add hits 1))
        done)
  in
  Domain.join outsider;
  (* shutdown drains any still-queued work before joining the workers *)
  let stats = Ws_native.Pool.worker_stats pool in
  Ws_native.Pool.shutdown pool;
  Printf.printf "external spawns ran: %d/100\n" (Atomic.get hits);
  Array.iteri
    (fun i st ->
      Printf.printf "  slot %d: ran=%d stolen=%d parks=%d\n" i
        st.Ws_native.Pool.tasks_run st.Ws_native.Pool.tasks_stolen
        st.Ws_native.Pool.parks)
    stats
