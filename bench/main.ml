(* Benchmark harness.

   Part 1 — Bechamel micro-benchmarks: one Test.make per table/figure, each
   measuring the per-operation cost that the corresponding experiment's
   behaviour hinges on (fenced vs fence-free take, steal paths, the litmus
   program, the capacity microbenchmark, simulator step throughput, and the
   native deque ops).

   Part 2 — the full figure/table regeneration (the same harness the
   [wsrepro all] CLI exposes): Table 1, Fig. 1, Fig. 7, Fig. 8, Fig. 10 on
   both machines, Fig. 11. This is the output recorded in EXPERIMENTS.md. *)

open Bechamel
open Toolkit

(* --- micro-benchmark helpers ---------------------------------------- *)

(* A single-worker machine that repeatedly takes from a preloaded queue;
   returns a thunk performing [puts+takes] of one batch. Building the
   machine is part of the thunk (continuations are single-shot), so these
   numbers compare variants rather than measure bare op latency. *)
let sim_machine ~queue ~worker_fence ~delta () =
  let m = Tso.Machine.create (Tso.Machine.abstract_config ~sb_capacity:8) in
  let params =
    { Ws_core.Queue_intf.capacity = 128; delta; worker_fence; tag = "q" }
  in
  let q = Ws_core.Registry.create (Ws_core.Registry.find queue) m params in
  let scratch =
    Tso.Memory.alloc (Tso.Machine.memory m) ~name:"scratch" ~init:0
  in
  let _ =
    Tso.Machine.spawn m ~name:"w" (fun () ->
        for i = 1 to 64 do
          Ws_core.Queue_intf.put q i
        done;
        let rec drain () =
          match Ws_core.Queue_intf.take q with
          | `Task t ->
              Tso.Program.store scratch t;
              drain ()
          | `Empty -> ()
        in
        drain ())
  in
  m

(* Run a machine to quiescence; a counting wrapper measures transitions
   without touching the scheduler's hot path (every policy invocation is
   exactly one applied transition). *)
let run_sim ?steps m =
  let policy = Tso.Sched.round_robin () in
  let policy =
    match steps with
    | None -> policy
    | Some c ->
        fun m buf ->
          incr c;
          policy m buf
  in
  match Tso.Sched.run m policy with
  | Tso.Sched.Quiescent -> ()
  | _ -> failwith "bench batch did not quiesce"

let sim_batch ~queue ~worker_fence ~delta () =
  run_sim (sim_machine ~queue ~worker_fence ~delta ())

let litmus_batch () =
  ignore
    (Ws_litmus.Litmus_program.run ~tasks:64 ~sb_capacity:8 ~coalesce:true ~l:1
       ~delta:5 ~drain_weight:0.05 ~seed:7 ())

let capacity_batch () =
  ignore
    (Ws_litmus.Capacity.cycles_per_iteration Ws_litmus.Capacity.westmere_model
       ~stores:36 ~iterations:100)

let fig10_batch () =
  let dag =
    Ws_runtime.Dag.of_comp (Ws_workloads.Cilk_suite.fib ~spawn:5 ~join:5 ~leaf:10 8)
  in
  let cfg =
    {
      Ws_runtime.Engine.default_config with
      workers = 2;
      queue = Ws_core.Registry.find "thep";
      delta = 4;
      sb_capacity = 8;
    }
  in
  let wl = Ws_runtime.Dag.instantiate dag ~name:"fib8" in
  ignore (Ws_runtime.Engine.run_timed cfg wl)

let fig11_graph =
  lazy (Ws_workloads.Graph.random_graph ~nodes:400 ~edges:1200 ~seed:3)

let fig11_batch () =
  let checked =
    Ws_workloads.Graph_workloads.transitive_closure (Lazy.force fig11_graph)
      ~src:0 ()
  in
  let cfg =
    {
      Ws_runtime.Engine.default_config with
      workers = 2;
      queue = Ws_core.Registry.find "ff-cl";
      delta = 4;
      sb_capacity = 8;
    }
  in
  ignore
    (Ws_runtime.Engine.run_timed cfg checked.Ws_workloads.Graph_workloads.workload)

let ablation_batch () =
  ignore
    (Ws_harness.Exp_ablation.fence_sweep ~bench:"Integrate" ~costs:[ 20 ] ())

let native_cl_batch () =
  let q = Ws_native.Chase_lev.create ~capacity:128 () in
  for i = 1 to 64 do
    Ws_native.Chase_lev.push q i
  done;
  for _ = 1 to 32 do
    ignore (Ws_native.Chase_lev.pop q)
  done;
  for _ = 1 to 32 do
    ignore (Ws_native.Chase_lev.steal q)
  done

let native_the_batch () =
  let q = Ws_native.The_queue.create ~capacity:128 () in
  for i = 1 to 64 do
    Ws_native.The_queue.push q i
  done;
  for _ = 1 to 32 do
    ignore (Ws_native.The_queue.pop q)
  done;
  for _ = 1 to 32 do
    ignore (Ws_native.The_queue.steal q)
  done

let tests =
  [
    (* Fig. 1: the fence is the whole story of the worker's take path *)
    Test.make ~name:"fig1/the-take-fenced(64ops)"
      (Staged.stage (sim_batch ~queue:"the" ~worker_fence:true ~delta:1));
    Test.make ~name:"fig1/the-take-fence-free(64ops)"
      (Staged.stage (sim_batch ~queue:"the" ~worker_fence:false ~delta:1));
    (* Fig. 10 algorithms on the simulated machine *)
    Test.make ~name:"fig10/ff-the(64ops)"
      (Staged.stage (sim_batch ~queue:"ff-the" ~worker_fence:false ~delta:4));
    Test.make ~name:"fig10/thep(64ops)"
      (Staged.stage (sim_batch ~queue:"thep" ~worker_fence:false ~delta:4));
    Test.make ~name:"fig10/fib8-2workers-thep" (Staged.stage fig10_batch);
    (* Fig. 11 *)
    Test.make ~name:"fig11/ff-cl(64ops)"
      (Staged.stage (sim_batch ~queue:"ff-cl" ~worker_fence:false ~delta:4));
    Test.make ~name:"fig11/idempotent-lifo(64ops)"
      (Staged.stage (sim_batch ~queue:"idempotent-lifo" ~worker_fence:false ~delta:1));
    Test.make ~name:"fig11/tc-400nodes-ff-cl" (Staged.stage fig11_batch);
    (* Fig. 8 / Fig. 9: one litmus run *)
    Test.make ~name:"fig8/litmus-run(64tasks)" (Staged.stage litmus_batch);
    (* Fig. 6 / Fig. 7: the capacity microbenchmark *)
    Test.make ~name:"fig7/capacity-point(100iters)" (Staged.stage capacity_batch);
    (* native artifact *)
    Test.make ~name:"native/chase-lev(64push+pop+steal)"
      (Staged.stage native_cl_batch);
    Test.make ~name:"native/the-queue(64push+pop+steal)"
      (Staged.stage native_the_batch);
    (* ablation: one fence-sweep point *)
    Test.make ~name:"ablation/fence-sweep-point" (Staged.stage ablation_batch);
  ]

let run_micro () =
  let ols =
    Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:None ()
  in
  let raw =
    List.map (fun test -> Benchmark.all cfg instances test) tests
  in
  Printf.printf "== Bechamel micro-benchmarks (ns per batch, OLS on run) ==\n";
  List.iter2
    (fun test tbl ->
      let results = Analyze.all ols Instance.monotonic_clock tbl in
      Hashtbl.iter
        (fun name ols_result ->
          let est =
            match Analyze.OLS.estimates ols_result with
            | Some (e :: _) -> Printf.sprintf "%12.1f ns" e
            | _ -> "        n/a"
          in
          let r2 =
            match Analyze.OLS.r_square ols_result with
            | Some r -> Printf.sprintf "r²=%.3f" r
            | None -> ""
          in
          Printf.printf "%-40s %s  %s\n%!" name est r2)
        results;
      ignore test)
    tests raw

(* --- full figure regeneration ---------------------------------------- *)

let run_figures () =
  print_newline ();
  Ws_harness.Exp_table1.run ();
  print_newline ();
  Ws_harness.Exp_fig1.run ();
  print_newline ();
  Ws_harness.Exp_fig7.run ();
  print_newline ();
  Ws_harness.Exp_fig8.run ();
  print_newline ();
  List.iter
    (fun m ->
      Ws_harness.Exp_fig10.run m ~repeats:3 ();
      print_newline ())
    Ws_harness.Machine_config.primary;
  Ws_harness.Exp_fig11.run ~repeats:3 ();
  print_newline ();
  Ws_harness.Exp_ablation.run ()

(* --- machine-readable benchmark (BENCH_simulator.json) ---------------- *)

(* Schema contract for the tracked perf baseline. The CI smoke job and the
   cram test validate this id and the exact field set, so numbers recorded
   in EXPERIMENTS.md stay comparable across commits; bump the version if a
   field changes meaning. *)
let bench_schema = "wsrepro-bench/v8"

let bench_fields =
  [
    "sim_batch_steps_per_sec";
    "sim_batch_steps_per_sec_telemetry";
    "sim_steps_per_sec_jobs4";
    "sim_steps_per_sec_jobs4_telemetry";
    "telemetry_overhead_pct";
    "registry_op_overhead_ns";
    "explorer_runs_per_sec";
    "explorer_por_runs_per_sec";
    "explorer_dpor_runs_per_sec";
    "por_reduction_factor";
    "dpor_reduction_factor";
    "frontier_steal_rate";
    "snapshot_restore_ns";
    "fig10_wall_s";
    "open_sim_p99_ticks";
    "fingerprint_probe_cells";
    "fingerprint_ns";
    "memo_lookup_ns";
    "memo_store_lookup_ns";
    "native_fib_tasks_per_sec";
    "native_graph_tasks_per_sec";
    "native_service_rps";
    "native_service_p99_ns";
    "flight_recorder_event_ns";
    "flight_overhead_pct";
    "stage_attribution_overhead_pct";
    "windowed_record_ns";
  ]

let wall f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

(* Simulator step throughput through [Sched.run]: the number the
   allocation-free enabled-set path is accountable for. With
   [~telemetry:true] a sink is attached to every machine, so the same loop
   measures the fully-instrumented stepping rate; the default (no sink)
   exercises the disabled guard that must stay free. *)
let measure_sim_steps ?(telemetry = false) ~batches () =
  let steps = ref 0 in
  let sink = if telemetry then Some (Telemetry.Sink.create ()) else None in
  let (), dt =
    wall (fun () ->
        for _ = 1 to batches do
          let m = sim_machine ~queue:"thep" ~worker_fence:false ~delta:4 () in
          (match sink with Some s -> Tso.Machine.set_sink m s | None -> ());
          run_sim ~steps m
        done)
  in
  float_of_int !steps /. dt

(* The same stepping probe fanned over domains through the sharded plane:
   each domain gets a private [Telemetry.Sink] shard (Par_runner.map_sharded)
   and attaches it to every machine it builds, so the accounting path never
   writes a counter another domain reads; shards are batch-merged at the
   join. The telemetry_overhead_pct the baseline records is the ratio of
   this rate to the same fan-out with no sink attached — the number the
   sharding work is accountable for: multi-domain instrumented stepping
   must cost no more than single-domain did. *)
let measure_sim_steps_jobs ?(telemetry = false) ~jobs ~batches () =
  let chunk = (batches + jobs - 1) / jobs in
  let items = List.init jobs (fun _ -> chunk) in
  let run_chunk sink_opt n =
    let steps = ref 0 in
    for _ = 1 to n do
      let m = sim_machine ~queue:"thep" ~worker_fence:false ~delta:4 () in
      (match sink_opt with Some s -> Tso.Machine.set_sink m s | None -> ());
      run_sim ~steps m
    done;
    !steps
  in
  let counts, dt =
    wall (fun () ->
        if telemetry then
          let into = Telemetry.Sink.create () in
          Ws_harness.Par_runner.map_sharded ~jobs ~into
            (fun shard n -> run_chunk (Some shard) n)
            items
        else Ws_harness.Par_runner.map ~jobs (fun n -> run_chunk None n) items)
  in
  float_of_int (List.fold_left ( + ) 0 counts) /. dt

(* Per-queue-op cost of the fully attached sharded plane: one batch is 64
   puts + 65 takes through Core.Registry's Counted shim (plus the machine
   transitions implementing them, whose per-event counters ride the same
   plane), so (attached - detached) / (batches * 129) amortizes the whole
   accounting path onto the ops that drive it. Attached means
   [Machine.set_sharded_sink] with a 1-shard ring — the exact hot path a
   per-worker shard pays, including the shard-routing table lookup. *)
let registry_ops_per_batch = 129

let measure_registry_op_overhead ~batches () =
  let run ~attach =
    let best = ref infinity in
    for _ = 1 to 3 do
      let (), dt =
        wall (fun () ->
            for _ = 1 to batches do
              let m = sim_machine ~queue:"thep" ~worker_fence:false ~delta:4 () in
              if attach then
                Tso.Machine.set_sharded_sink m
                  (Telemetry.Sink.create ())
                  (Telemetry.Shards.create ~n:1);
              run_sim m
            done)
      in
      if dt < !best then best := dt
    done;
    !best
  in
  ignore (run ~attach:false) (* warm up *);
  let dt_off = run ~attach:false in
  let dt_on = run ~attach:true in
  1e9 *. Float.max 0.0 (dt_on -. dt_off)
  /. float_of_int (batches * registry_ops_per_batch)

(* Open-system smoke: the default heavy-traffic scenario (3 ff-the
   workers, Poisson arrivals, exponential services in 3 stages) shrunk to
   200 requests. The timing engine is deterministic — pre-drawn plan,
   seeded victim choice, lexicographic tie-break — so the p99 sojourn is
   exact and reproducible: --check re-runs the probe live and requires the
   recorded value to match to the tick. Any drift is a behavioural change
   in the timing model, the queues, or the load generator, not noise. *)
let open_probe_config =
  {
    Ws_runtime.Open_system.default_config with
    requests = 200;
    seed = 42;
    max_steps = 50_000_000;
  }

let measure_open_probe () =
  let r = Ws_runtime.Open_system.run open_probe_config in
  (match r.Ws_runtime.Open_system.outcome with
  | Tso.Sched.Quiescent -> ()
  | _ -> failwith "open-system probe did not quiesce");
  if
    r.Ws_runtime.Open_system.completed
    <> r.Ws_runtime.Open_system.injected
  then failwith "open-system probe lost requests";
  float_of_int r.Ws_runtime.Open_system.p99

(* Explorer throughput on a small FF-THE scenario (complete runs/sec).
   With [por] the sleep-set reduction is on (and with [dpor] source-DPOR on
   top of it): the same verdict is reached from far fewer runs, so the rate
   divides completed runs (not skipped siblings) by the wall time — it
   answers "how fast does one verdict arrive", not "how fast does the
   machine step". *)
let explorer_spec =
  {
    Ws_harness.Scenarios.default_spec with
    queue = "ff-the";
    sb_capacity = 1;
    delta = 2;
    preloaded = 2;
    steal_attempts = 1;
  }

let measure_explorer ?(por = false) ?(dpor = false) ?(snapshots = true)
    ~max_runs () =
  let (st, _), dt =
    wall (fun () ->
        Ws_harness.Runner.exhaustive_check explorer_spec ~max_runs
          ~preemption_bound:(Some 3) ~jobs:1 ~memo:false ~por ~dpor ~snapshots
          ())
  in
  float_of_int st.Tso.Explore.runs /. dt

(* POR/DPOR reduction factors: completed runs of the reduced searches vs a
   run-capped plain search of the same scenario. The scenario is the
   minimal unbounded FF-THE instance (one preloaded task, one steal
   attempt, no client stores): the reduced searches exhaust it in a few
   hundred runs — deterministically, so the factors are exact and
   reproducible — while plain exploration exceeds any practical cap
   (store-buffer drain nondeterminism multiplies every step), so the plain
   baseline is the cap itself and both factors are lower bounds. *)
let reduction_spec =
  {
    Ws_harness.Scenarios.default_spec with
    queue = "ff-the";
    sb_capacity = 1;
    delta = 1;
    preloaded = 1;
    puts = 0;
    steal_attempts = 1;
    client_stores = 0;
  }

let measure_reduction ~max_runs () =
  let runs ~por ~dpor =
    let st, _ =
      Ws_harness.Runner.exhaustive_check reduction_spec ~max_runs
        ~preemption_bound:None ~por ~dpor ()
    in
    st.Tso.Explore.runs
  in
  let plain = runs ~por:false ~dpor:false in
  let por = runs ~por:true ~dpor:false in
  let dpor = runs ~por:false ~dpor:true in
  ( float_of_int plain /. float_of_int por,
    float_of_int plain /. float_of_int dpor )

(* Work-stealing frontier shape: steals per frontier task when the explorer
   scenario is fanned out over 4 domains. Scheduling-dependent (unlike the
   reduction factors), so the check gates positivity, not a value. *)
let measure_frontier ~max_runs () =
  let _, fr, _ =
    Ws_harness.Runner.exhaustive_check_full explorer_spec ~max_runs
      ~preemption_bound:(Some 3) ~jobs:4 ()
  in
  float_of_int fr.Tso.Explore_par.fr_steals
  /. float_of_int (max 1 fr.Tso.Explore_par.fr_tasks)

(* Incremental cost of [Machine.restore_into] — what one sibling branch
   pays on the explorer's snapshot path, beyond building the fresh
   instance both paths share (the replay path it replaced paid one
   [Machine.apply] per prefix step on top of the same instance build).
   Measured by subtracting a build-only loop from a build+restore loop. *)
let measure_snapshot_restore ~iters () =
  let mk =
    Tso.Explore.Internal.recording_mk
      (Ws_harness.Scenarios.instance Ws_harness.Scenarios.default_spec)
  in
  let inst = mk () in
  (match
     Tso.Sched.run ~max_steps:40 inst.Tso.Explore.machine
       (Tso.Sched.round_robin ())
   with
  | Tso.Sched.Max_steps -> ()
  | _ -> failwith "snapshot probe ran to completion; deepen the scenario");
  let snap = Tso.Machine.snapshot_create () in
  Tso.Machine.snapshot inst.Tso.Explore.machine snap;
  let (), dt_build =
    wall (fun () ->
        for _ = 1 to iters do
          ignore (Sys.opaque_identity (mk ()))
        done)
  in
  let (), dt_both =
    wall (fun () ->
        for _ = 1 to iters do
          let i = mk () in
          Tso.Machine.restore_into snap i.Tso.Explore.machine
        done)
  in
  1e9 *. Float.max 0.0 (dt_both -. dt_build) /. float_of_int iters

(* The fingerprint/memo probe machine, pinned: a single-worker THEP
   machine stopped exactly 200 round-robin steps into its run. Fingerprint
   cost is O(live memory cells), so the cell count IS the probe shape —
   it is recorded in the baseline as [fingerprint_probe_cells] and
   [--check] verifies the live probe builds a machine with exactly the
   recorded count before comparing ns numbers. (This is why the tracked
   ~550 ns differs from the "108 ns" in DESIGN.md §8's before/after table:
   that one-off fingerprinted a 2-thread SB litmus machine with far fewer
   live cells. Same code path, different pinned shape.) A scenario change
   that lets the machine quiesce before 200 steps would silently shrink
   the fingerprinted state, so quiescing early is a probe failure. *)
let fingerprint_probe_machine () =
  let m = sim_machine ~queue:"thep" ~worker_fence:false ~delta:4 () in
  (match Tso.Sched.run ~max_steps:200 m (Tso.Sched.round_robin ()) with
  | Tso.Sched.Max_steps -> ()
  | _ ->
      failwith
        "fingerprint probe shape changed: the probe machine quiesced before \
         200 steps");
  m

let fingerprint_probe_cells () =
  Tso.Memory.size (Tso.Machine.memory (fingerprint_probe_machine ()))

(* Cost of one [Machine.fingerprint] of a mid-run machine state — the memo
   key computation on the explorer's hot path. *)
let measure_fingerprint ~iters () =
  let m = fingerprint_probe_machine () in
  let acc = ref 0 in
  let (), dt =
    wall (fun () ->
        for _ = 1 to iters do
          acc := !acc lxor Tso.Machine.fingerprint m
        done)
  in
  Sys.opaque_identity !acc |> ignore;
  1e9 *. dt /. float_of_int iters

(* Fingerprint + Pareto-dominance probe against a populated memo table:
   what one memoized-explorer node pays before recursing. *)
let measure_memo_lookup ~iters () =
  let m = fingerprint_probe_machine () in
  let tbl : (int, (int * int) list) Hashtbl.t = Hashtbl.create 4096 in
  (* deterministic LCG fill — a realistic load factor without Random *)
  let x = ref 0x9E3779B9 in
  for _ = 1 to 4096 do
    x := (!x lxor (!x lsr 17)) * 0x2545F4914F6CDD1D land max_int;
    Hashtbl.replace tbl !x [ (8, 2) ]
  done;
  Hashtbl.replace tbl (Tso.Machine.fingerprint m) [ (8, 2) ];
  let hits = ref 0 in
  let (), dt =
    wall (fun () ->
        for _ = 1 to iters do
          let fp = Tso.Machine.fingerprint m in
          if Tso.Explore.Internal.memo_tbl_check tbl fp ~depth_rem:4 ~preempt_rem:1
          then incr hits
        done)
  in
  Sys.opaque_identity !hits |> ignore;
  1e9 *. dt /. float_of_int iters

(* Same probe shape against the persistent memo store's [seen] (atomic
   lookup counter + shard mutex + the shared Pareto check), so
   memo_store_lookup_ns - memo_lookup_ns isolates the synchronization
   cost one disk-backed-memo node pays over the in-memory table. The
   store is opened at a nonexistent path and never committed, so the
   probe touches no disk. *)
let measure_memo_store_lookup ~iters () =
  let m = fingerprint_probe_machine () in
  let store =
    let path =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "wsrepro-bench-memo-probe-%d" (Unix.getpid ()))
    in
    match
      Tso.Memo_store.open_ ~path ~config:"bench-probe"
        ~max_depth:Tso.Explore.default_max_depth ~preemption_bound:(Some 3)
        ~por:false ~dpor:false ()
    with
    | Ok s -> s
    | Error e -> failwith ("memo store probe: " ^ e)
  in
  let x = ref 0x9E3779B9 in
  for _ = 1 to 4096 do
    x := (!x lxor (!x lsr 17)) * 0x2545F4914F6CDD1D land max_int;
    ignore (Tso.Memo_store.seen store !x ~depth_rem:8 ~preempt_rem:2)
  done;
  ignore
    (Tso.Memo_store.seen store
       (Tso.Machine.fingerprint m)
       ~depth_rem:8 ~preempt_rem:2);
  let hits = ref 0 in
  let (), dt =
    wall (fun () ->
        for _ = 1 to iters do
          let fp = Tso.Machine.fingerprint m in
          if Tso.Memo_store.seen store fp ~depth_rem:4 ~preempt_rem:1 then
            incr hits
        done)
  in
  Sys.opaque_identity !hits |> ignore;
  1e9 *. dt /. float_of_int iters

(* Wall time of one Fig. 10 column (Fib on haswell), the end-to-end figure
   regeneration cost the hot-path work targets. *)
let measure_fig10 ~repeats () =
  let (), dt =
    wall (fun () ->
        ignore
          (Ws_harness.Exp_fig10.compute Ws_harness.Machine_config.haswell
             ~repeats ~benches:[ "Fib" ] ()))
  in
  dt

(* The native pool on real silicon: throughput of the two parity workloads
   (tasks/s) and the open-system service benchmark (achieved rps, p99
   sojourn ns). Absolute numbers are machine-dependent; the contract the
   check enforces is positivity and schema shape — the parity analysis
   lives in `wsrepro native` / EXPERIMENTS.md. *)
let measure_native ~smoke () =
  let domains = 3 in
  let fib_n, nodes, requests, rate, work =
    if smoke then (16, 400, 200, 2000., 500) else (24, 2000, 1000, 5000., 2000)
  in
  let fib =
    Ws_harness.Exp_native.native_fib ~domains ~n:fib_n ()
  in
  let graph =
    Ws_harness.Exp_native.native_graph ~domains ~nodes ~edges:(4 * nodes)
      ~seed:23 ()
  in
  let svc =
    Ws_harness.Exp_native.service ~domains ~rate ~requests ~chain:4 ~work
      ~seed:23 ()
  in
  ( fib.Ws_harness.Exp_native.tasks_per_sec,
    graph.Ws_harness.Exp_native.tasks_per_sec,
    svc.Ws_harness.Exp_native.throughput_rps,
    float_of_int svc.Ws_harness.Exp_native.p99_ns )

(* Hot-path cost of one flight-recorder event: four plain int stores plus
   one monotonic clock read, on the single-writer path every recorded pool
   transition pays. The ring is sized so the loop wraps many times — the
   drop-oldest overwrite is the same unconditional store, so wraparound is
   free and deliberately included. The ceiling the check enforces is what
   makes [--flight] cheap enough to leave on. *)
let measure_flight_event ~iters () =
  let r = Telemetry.Flight_recorder.create ~capacity:4096 ~slots:1 () in
  let (), dt =
    wall (fun () ->
        for i = 1 to iters do
          Telemetry.Flight_recorder.record r ~slot:0
            Telemetry.Flight_recorder.Spawn ~task:i ~arg:(i - 1)
        done)
  in
  Sys.opaque_identity (Telemetry.Flight_recorder.wrote r ~slot:0) |> ignore;
  1e9 *. dt /. float_of_int iters

(* End-to-end recorder tax: the service benchmark run twice — recorder off,
   then on — and the achieved-rps delta as a percentage of the off run.
   The service is an open system (throughput tracks the offered rate while
   the pool keeps up), so any sustained positive overhead here means the
   recorder ate real capacity; negative values are scheduler noise. *)
let measure_flight_overhead ~smoke () =
  let domains = 3 in
  let requests, rate, work =
    if smoke then (200, 2000., 500) else (1000, 5000., 2000)
  in
  let rps flight =
    (Ws_harness.Exp_native.service ~domains ~flight ~rate ~requests ~chain:4
       ~work ~seed:23 ())
      .Ws_harness.Exp_native.throughput_rps
  in
  let off = rps false in
  let on = rps true in
  100.0 *. (off -. on) /. off

(* End-to-end stage-attribution tax, same shape as the recorder probe: the
   service benchmark run attribution-off then attribution-on, achieved-rps
   delta as a percentage of the off run. On means every pool cell pays two
   extra monotonic clock reads plus three stage-histogram observations and
   one windowed sojourn record; the ceiling is what keeps per-stage
   latency cheap enough to leave on under production scrapes. *)
let measure_stage_overhead ~smoke () =
  let domains = 3 in
  let requests, rate, work =
    if smoke then (200, 2000., 500) else (1000, 5000., 2000)
  in
  let rps attribution =
    (Ws_harness.Exp_native.service ~domains ~attribution ~rate ~requests
       ~chain:4 ~work ~seed:23 ())
      .Ws_harness.Exp_native.throughput_rps
  in
  let off = rps false in
  let on = rps true in
  100.0 *. (off -. on) /. off

(* Hot-path cost of one windowed observation: a histogram bucket store
   plus the ring-slot claim check, on the single-writer path every
   attributed cell pays at completion. [now] advances so the 16-slot ring
   rotates many times — eviction resets the displaced histogram, and that
   amortized cost is deliberately included, exactly as wraparound is in
   the flight-event probe. *)
let measure_windowed_record ~iters () =
  let w = Telemetry.Windowed.create ~slots:16 ~width:1024 () in
  let (), dt =
    wall (fun () ->
        for i = 1 to iters do
          Telemetry.Windowed.observe w ~now:(i * 4) (i land 4095)
        done)
  in
  Sys.opaque_identity (Telemetry.Windowed.latest w) |> ignore;
  1e9 *. dt /. float_of_int iters

let run_json ~smoke ~out () =
  let batches, max_runs, fp_iters, snap_iters, repeats =
    if smoke then (20, 500, 2_000, 500, 1)
    else (2_000, 20_000, 200_000, 20_000, 3)
  in
  let disabled = measure_sim_steps ~batches () in
  let enabled = measure_sim_steps ~telemetry:true ~batches () in
  let j4_off = measure_sim_steps_jobs ~jobs:4 ~batches () in
  let j4_on = measure_sim_steps_jobs ~telemetry:true ~jobs:4 ~batches () in
  let native_fib, native_graph, native_rps, native_p99 =
    measure_native ~smoke ()
  in
  let por_factor, dpor_factor = measure_reduction ~max_runs () in
  let metrics =
    [
      ("sim_batch_steps_per_sec", disabled);
      ("sim_batch_steps_per_sec_telemetry", enabled);
      ("sim_steps_per_sec_jobs4", j4_off);
      ("sim_steps_per_sec_jobs4_telemetry", j4_on);
      ("telemetry_overhead_pct", 100.0 *. (j4_off -. j4_on) /. j4_off);
      ("registry_op_overhead_ns", measure_registry_op_overhead ~batches ());
      ("explorer_runs_per_sec", measure_explorer ~max_runs ());
      ("explorer_por_runs_per_sec", measure_explorer ~por:true ~max_runs ());
      ("explorer_dpor_runs_per_sec", measure_explorer ~dpor:true ~max_runs ());
      ("por_reduction_factor", por_factor);
      ("dpor_reduction_factor", dpor_factor);
      ("frontier_steal_rate", measure_frontier ~max_runs ());
      ("snapshot_restore_ns", measure_snapshot_restore ~iters:snap_iters ());
      ("fig10_wall_s", measure_fig10 ~repeats ());
      ("open_sim_p99_ticks", measure_open_probe ());
      ("fingerprint_probe_cells", float_of_int (fingerprint_probe_cells ()));
      ("fingerprint_ns", measure_fingerprint ~iters:fp_iters ());
      ("memo_lookup_ns", measure_memo_lookup ~iters:fp_iters ());
      ("memo_store_lookup_ns", measure_memo_store_lookup ~iters:fp_iters ());
      ("native_fib_tasks_per_sec", native_fib);
      ("native_graph_tasks_per_sec", native_graph);
      ("native_service_rps", native_rps);
      ("native_service_p99_ns", native_p99);
      ("flight_recorder_event_ns", measure_flight_event ~iters:fp_iters ());
      ("flight_overhead_pct", measure_flight_overhead ~smoke ());
      ("stage_attribution_overhead_pct", measure_stage_overhead ~smoke ());
      ("windowed_record_ns", measure_windowed_record ~iters:fp_iters ());
    ]
  in
  assert (List.map fst metrics = bench_fields);
  let buf = Buffer.create 256 in
  Buffer.add_string buf "{\n";
  Buffer.add_string buf (Printf.sprintf "  \"schema\": %S,\n" bench_schema);
  Buffer.add_string buf
    (Printf.sprintf "  \"mode\": %S,\n" (if smoke then "smoke" else "full"));
  Buffer.add_string buf "  \"metrics\": {\n";
  let n = List.length metrics in
  List.iteri
    (fun i (k, v) ->
      Buffer.add_string buf
        (Printf.sprintf "    %S: %.3f%s\n" k v (if i = n - 1 then "" else ",")))
    metrics;
  Buffer.add_string buf "  }\n}\n";
  match out with
  | None -> print_string (Buffer.contents buf)
  | Some path ->
      let oc = open_out path in
      output_string oc (Buffer.contents buf);
      close_out oc;
      Printf.printf "wrote %s\n" path

(* Validator for --check. The contracts, in print order:

   1. Schema: the file parses as JSON (the in-tree strict parser), carries
      the schema id, and has every required metric — the CI smoke job keys
      on this so drift fails the build.

   2. Pay-for-use: stepping with no sink attached must not regress more
      than 5% against the rate recorded in the file. The live probe takes
      the best of three short runs (downward noise hides a regression less
      than upward noise fakes one); the recorded baseline was a single
      long measurement on the same machine.

   3. The recorded telemetry_overhead_pct — now measured across 4 domains
      through the sharded plane — must stay under the single-domain budget
      it replaced (~3.1%): sharding exists precisely so that fanning the
      instrumented stepping out over domains costs no more than one domain
      paid, and more than that means a counter write started crossing
      domains again. The recorded registry_op_overhead_ns (the whole
      attached accounting path amortized per Counted queue op) must stay
      under an absolute ceiling for the same reason. Smoke-mode documents
      use much looser ceilings — their probes run for milliseconds, so the
      recorded ratios are mostly scheduler noise.

   4. The live snapshot-restore probe must stay within a generous factor
      of the recorded one. Restore skips the per-transition machinery the
      replay path pays; the only way to blow the factor is an algorithmic
      regression (e.g. the restore path quietly re-acquiring an O(depth)
      replay), which this catches even through CI machine-speed noise.

   5. The fingerprint probe shape must match exactly (live-cell count =
      recorded fingerprint_probe_cells) and the live fingerprint must stay
      within a factor of the recorded one — the pinned shape is what makes
      the ns series comparable across commits.

   6. The live memo-store lookup must stay within a factor of the recorded
      one (a blown factor means the shard path grew synchronization or the
      Pareto check regressed).

   7. The recorded reduction factors must satisfy dpor >= por >= 1 — run
      counts are deterministic, so this is exact, and a source-DPOR change
      that falls behind plain sleep sets on the probe scenario is a
      regression even if verdicts still agree.

   8. explorer_dpor_runs_per_sec and (in full mode) frontier_steal_rate
      must be positive, like the native metrics: a zero means the probe
      produced nothing.

   9. The open-system probe is deterministic (pre-drawn plan, seeded
      victim choice, lexicographic tie-break), so the live re-run must
      reproduce the recorded open_sim_p99_ticks exactly — a one-tick drift
      is a behavioural change in the timing model, the queues, or the load
      generator, never noise.

   10. fig10_wall_s must not regress: a live single-repeat Fig. 10 column
      must finish within a generous factor of the recorded wall time
      (sized for CI machine spread; it catches the order-of-magnitude
      regressions a serializing measurement plane would cause).

   11. The flight recorder must stay cheap enough to leave on: the recorded
      flight_recorder_event_ns must sit under an absolute ceiling (the
      single-writer record path is four int stores plus a clock read — in
      full mode anything over ~50 ns means a CAS, fence, or allocation
      crept in), a live re-measure must stay within a factor of the
      recorded value, and the recorded flight_overhead_pct (recorder-on vs
      recorder-off service rps) must stay under 10% in full mode. Smoke
      ceilings are loose — those probes run for microseconds. *)
let overhead_budget_pct = 5.0

(* recorded telemetry_overhead_pct ceiling (absolute, machine-independent):
   the jobs-4 sharded-plane measurement must hold the single-domain 3.1%
   line the pre-shard sink recorded *)
let telemetry_overhead_ceiling_pct ~smoke = if smoke then 100.0 else 3.1

(* recorded registry_op_overhead_ns ceiling (absolute): the attached
   accounting path amortized per Counted queue op *)
let registry_op_ceiling_ns ~smoke = if smoke then 10_000.0 else 400.0

(* live fig10 single-repeat wall time vs recorded: factor + slack sized
   for CI machine spread (the recorded full-mode number used 3 repeats) *)
let fig10_factor = 3.0
let fig10_slack_s = 1.0

(* live snapshot_restore_ns vs recorded: factor + absolute slack, sized for
   cross-machine noise and the subtraction-based probe *)
let snapshot_factor = 3.0
let snapshot_slack_ns = 2000.0

(* live fingerprint_ns / memo_store_lookup_ns vs recorded. The fingerprint
   ceiling only means something because the probe shape is pinned: the
   check first requires the live probe machine's live-cell count to equal
   the recorded fingerprint_probe_cells exactly (cell count is the shape —
   fingerprint cost is O(live cells)), then applies the factor. The
   memo-store slack absorbs mutex contention noise on loaded CI runners. *)
let fingerprint_factor = 3.0
let fingerprint_slack_ns = 300.0
let memo_store_factor = 3.0
let memo_store_slack_ns = 2000.0

(* recorded flight_recorder_event_ns ceiling (absolute) plus the live
   re-measure budget (factor + slack, like the other ns probes) *)
let flight_event_ceiling_ns ~smoke = if smoke then 500.0 else 50.0
let flight_event_factor = 3.0
let flight_event_slack_ns = 100.0

(* recorded flight_overhead_pct ceiling: recorder-on service throughput
   within 10% of recorder-off (full mode; smoke runs are all noise) *)
let flight_overhead_ceiling_pct ~smoke = if smoke then 75.0 else 10.0

(* recorded stage_attribution_overhead_pct ceiling: attribution-on service
   throughput within 5% of attribution-off (full mode; smoke is noise) *)
let stage_overhead_ceiling_pct ~smoke = if smoke then 75.0 else 5.0

(* recorded windowed_record_ns ceiling (absolute) plus the live re-measure
   budget — same shape as the flight-event gate; eviction amortized in *)
let windowed_record_ceiling_ns ~smoke = if smoke then 1000.0 else 150.0
let windowed_record_factor = 3.0
let windowed_record_slack_ns = 100.0

let run_check file =
  let doc =
    match Telemetry.Json.parse_file file with
    | Ok j -> j
    | Error e ->
        Printf.eprintf "%s: not valid JSON: %s\n" file e;
        exit 1
  in
  let str_field k =
    match Telemetry.Json.member k doc with
    | Some (Telemetry.Json.Str s) -> Some s
    | _ -> None
  in
  let schema_ok = str_field "schema" = Some bench_schema in
  let metric k =
    match Telemetry.Json.member "metrics" doc with
    | Some m -> (
        match Telemetry.Json.member k m with
        | Some (Telemetry.Json.Float f) -> Some f
        | Some (Telemetry.Json.Int i) -> Some (float_of_int i)
        | _ -> None)
    | None -> None
  in
  let missing = List.filter (fun f -> metric f = None) bench_fields in
  if (not schema_ok) || missing <> [] then begin
    if not schema_ok then
      Printf.eprintf "%s: missing or wrong schema id (want %s)\n" file
        bench_schema;
    List.iter (fun f -> Printf.eprintf "%s: missing metric %S\n" file f) missing;
    exit 1
  end;
  Printf.printf "%s: schema %s OK (%d metrics)\n" file bench_schema
    (List.length bench_fields);
  let recorded = Option.get (metric "sim_batch_steps_per_sec") in
  ignore (measure_sim_steps ~batches:5 ()) (* warm up *);
  let live =
    List.fold_left max 0.0
      (List.init 3 (fun _ -> measure_sim_steps ~batches:60 ()))
  in
  let delta_pct = 100.0 *. (recorded -. live) /. recorded in
  let ok = delta_pct <= overhead_budget_pct in
  Printf.printf
    "%s: telemetry-disabled stepping %.2f Msteps/s (recorded %.2f, delta \
     %+.1f%%) %s\n"
    file (live /. 1e6) (recorded /. 1e6) delta_pct
    (if ok then "OK" else "REGRESSED");
  let recorded_ovh = Option.get (metric "telemetry_overhead_pct") in
  let ceiling =
    telemetry_overhead_ceiling_pct ~smoke:(str_field "mode" = Some "smoke")
  in
  let ovh_ok = recorded_ovh <= ceiling in
  Printf.printf "%s: recorded telemetry overhead %.1f%% (ceiling %.1f%%) %s\n"
    file recorded_ovh ceiling
    (if ovh_ok then "OK" else "OVER BUDGET");
  let recorded_reg = Option.get (metric "registry_op_overhead_ns") in
  let reg_ceiling =
    registry_op_ceiling_ns ~smoke:(str_field "mode" = Some "smoke")
  in
  let reg_ok = recorded_reg <= reg_ceiling in
  Printf.printf
    "%s: recorded registry op overhead %.1f ns (ceiling %.0f) %s\n" file
    recorded_reg reg_ceiling
    (if reg_ok then "OK" else "OVER BUDGET");
  let recorded_snap = Option.get (metric "snapshot_restore_ns") in
  let live_snap =
    List.fold_left min infinity
      (List.init 3 (fun _ -> measure_snapshot_restore ~iters:300 ()))
  in
  let snap_budget = (recorded_snap *. snapshot_factor) +. snapshot_slack_ns in
  let snap_ok = live_snap <= snap_budget in
  Printf.printf
    "%s: snapshot restore %.0f ns (recorded %.0f, budget %.0f) %s\n" file
    live_snap recorded_snap snap_budget
    (if snap_ok then "OK" else "REGRESSED");
  let recorded_cells = Option.get (metric "fingerprint_probe_cells") in
  let live_cells = float_of_int (fingerprint_probe_cells ()) in
  let cells_ok = live_cells = recorded_cells in
  Printf.printf "%s: fingerprint probe shape %.0f live cells (recorded %.0f) %s\n"
    file live_cells recorded_cells
    (if cells_ok then "OK" else "SHAPE CHANGED");
  let recorded_fp = Option.get (metric "fingerprint_ns") in
  let live_fp =
    List.fold_left min infinity
      (List.init 3 (fun _ -> measure_fingerprint ~iters:2_000 ()))
  in
  let fp_budget = (recorded_fp *. fingerprint_factor) +. fingerprint_slack_ns in
  let fp_ok = live_fp <= fp_budget in
  Printf.printf "%s: fingerprint %.0f ns (recorded %.0f, budget %.0f) %s\n"
    file live_fp recorded_fp fp_budget
    (if fp_ok then "OK" else "REGRESSED");
  let recorded_ms = Option.get (metric "memo_store_lookup_ns") in
  let live_ms =
    List.fold_left min infinity
      (List.init 3 (fun _ -> measure_memo_store_lookup ~iters:2_000 ()))
  in
  let ms_budget = (recorded_ms *. memo_store_factor) +. memo_store_slack_ns in
  let ms_ok = live_ms <= ms_budget in
  Printf.printf
    "%s: memo-store lookup %.0f ns (recorded %.0f, budget %.0f) %s\n" file
    live_ms recorded_ms ms_budget
    (if ms_ok then "OK" else "REGRESSED");
  (* The reduction factors are ratios of deterministic run counts, so they
     are exact: sleep sets must reduce (>= 1) and source-DPOR must never
     fall behind sleep sets alone on the probe scenario. *)
  let por_factor = Option.get (metric "por_reduction_factor") in
  let dpor_factor = Option.get (metric "dpor_reduction_factor") in
  let red_ok = por_factor >= 1.0 && dpor_factor >= por_factor in
  Printf.printf
    "%s: reduction factors por %.1fx, dpor %.1fx (want dpor >= por >= 1) %s\n"
    file por_factor dpor_factor
    (if red_ok then "OK" else "REGRESSED");
  (* frontier_steal_rate is scheduling-dependent: a full-mode recording
     with zero steals means the frontier never distributed work; smoke
     recordings run for milliseconds and may legitimately see none. *)
  let steal_rate = Option.get (metric "frontier_steal_rate") in
  let dpor_rate = Option.get (metric "explorer_dpor_runs_per_sec") in
  let frontier_ok =
    dpor_rate > 0.0
    && if str_field "mode" = Some "smoke" then steal_rate >= 0.0
       else steal_rate > 0.0
  in
  Printf.printf "%s: dpor rate %.0f runs/s, frontier steal rate %.3f %s\n" file
    dpor_rate steal_rate
    (if frontier_ok then "OK" else "NOT POSITIVE");
  (* Native metrics are machine-dependent wallclock numbers; the recorded
     values must at least be live measurements (strictly positive — a zero
     means the probe silently produced nothing, e.g. a hung pool whose run
     was killed or a histogram that never saw an observation). *)
  let native_ok =
    List.for_all
      (fun f -> Option.get (metric f) > 0.0)
      [
        "native_fib_tasks_per_sec";
        "native_graph_tasks_per_sec";
        "native_service_rps";
        "native_service_p99_ns";
      ]
  in
  Printf.printf "%s: native metrics %s\n" file
    (if native_ok then "all positive OK" else "NOT POSITIVE");
  (* The open-system probe is deterministic, so the live re-run must
     reproduce the recorded p99 sojourn exactly. *)
  let recorded_open = Option.get (metric "open_sim_p99_ticks") in
  let live_open = measure_open_probe () in
  let open_ok = live_open = recorded_open in
  Printf.printf
    "%s: open-system probe p99 %.0f ticks (recorded %.0f, want exact) %s\n"
    file live_open recorded_open
    (if open_ok then "OK" else "DRIFTED");
  let recorded_f10 = Option.get (metric "fig10_wall_s") in
  let live_f10 = measure_fig10 ~repeats:1 () in
  let f10_budget = (recorded_f10 *. fig10_factor) +. fig10_slack_s in
  let f10_ok = live_f10 <= f10_budget in
  Printf.printf
    "%s: fig10 column %.2f s live (recorded %.2f, budget %.2f) %s\n" file
    live_f10 recorded_f10 f10_budget
    (if f10_ok then "OK" else "REGRESSED");
  let smoke = str_field "mode" = Some "smoke" in
  let recorded_fe = Option.get (metric "flight_recorder_event_ns") in
  let fe_ceiling = flight_event_ceiling_ns ~smoke in
  let live_fe =
    List.fold_left min infinity
      (List.init 3 (fun _ -> measure_flight_event ~iters:20_000 ()))
  in
  let fe_budget =
    (recorded_fe *. flight_event_factor) +. flight_event_slack_ns
  in
  let fe_ok = recorded_fe <= fe_ceiling && live_fe <= fe_budget in
  Printf.printf
    "%s: flight-recorder event %.1f ns live (recorded %.1f, ceiling %.0f, \
     budget %.0f) %s\n"
    file live_fe recorded_fe fe_ceiling fe_budget
    (if fe_ok then "OK" else "OVER BUDGET");
  let recorded_fo = Option.get (metric "flight_overhead_pct") in
  let fo_ceiling = flight_overhead_ceiling_pct ~smoke in
  let fo_ok = recorded_fo <= fo_ceiling in
  Printf.printf "%s: recorded flight overhead %.1f%% (ceiling %.0f%%) %s\n"
    file recorded_fo fo_ceiling
    (if fo_ok then "OK" else "OVER BUDGET");
  let recorded_so = Option.get (metric "stage_attribution_overhead_pct") in
  let so_ceiling = stage_overhead_ceiling_pct ~smoke in
  let so_ok = recorded_so <= so_ceiling in
  Printf.printf
    "%s: recorded stage-attribution overhead %.1f%% (ceiling %.0f%%) %s\n"
    file recorded_so so_ceiling
    (if so_ok then "OK" else "OVER BUDGET");
  let recorded_wr = Option.get (metric "windowed_record_ns") in
  let wr_ceiling = windowed_record_ceiling_ns ~smoke in
  let live_wr =
    List.fold_left min infinity
      (List.init 3 (fun _ -> measure_windowed_record ~iters:20_000 ()))
  in
  let wr_budget =
    (recorded_wr *. windowed_record_factor) +. windowed_record_slack_ns
  in
  let wr_ok = recorded_wr <= wr_ceiling && live_wr <= wr_budget in
  Printf.printf
    "%s: windowed record %.1f ns live (recorded %.1f, ceiling %.0f, budget \
     %.0f) %s\n"
    file live_wr recorded_wr wr_ceiling wr_budget
    (if wr_ok then "OK" else "OVER BUDGET");
  if
    not
      (ok && ovh_ok && reg_ok && snap_ok && cells_ok && fp_ok && ms_ok
     && red_ok && frontier_ok && native_ok && open_ok && f10_ok && fe_ok
     && fo_ok && so_ok && wr_ok)
  then exit 1

let usage () =
  print_string
    ("usage: bench [--micro | --figures]\n\
     \       bench --json [--smoke] [--out FILE]\n\
     \       bench --check FILE\n\n\
      Default: Bechamel micro-benchmarks, then the full figure/table\n\
      regeneration. --micro / --figures run only one half.\n\n\
      --json emits the " ^ bench_schema
   ^ " baseline document (--smoke: tiny\n\
      iteration counts — the shape is the contract, the numbers are\n\
      meaningless). --check validates a baseline file and gates the live\n\
      stepping rate, the recorded telemetry overhead (jobs-4 sharded\n\
      plane, <= 3.1%% full mode), the recorded per-op registry accounting\n\
      cost, the live snapshot-restore / fingerprint / memo-store-lookup /\n\
      flight-recorder costs, the fingerprint probe shape, the recorded\n\
      reduction factors (dpor >= por >= 1), the deterministic open-system\n\
      p99 (exact match on a live re-run), a live fig10 column against the\n\
      recorded wall time, the recorded flight-recorder overhead, the\n\
      recorded stage-attribution overhead (<= 5%% full mode), and the\n\
      windowed-record cost (absolute ceiling + live re-measure).\n\n\
      Probe shapes (numbers are only comparable for identical probes):\n\
     \  sim_steps_per_sec_jobs4[_telemetry]  the stepping probe fanned\n\
     \      over 4 domains via Par_runner; the telemetry variant gives\n\
     \      each domain a private sink shard (map_sharded) merged at the\n\
     \      join. telemetry_overhead_pct is the pair's ratio — the cost\n\
     \      of the fully-sharded measurement plane under parallel load.\n\
     \  registry_op_overhead_ns          (attached - detached) batch time\n\
     \      over 129 Counted queue ops per batch, with a 1-shard\n\
     \      set_sharded_sink attached: the whole accounting path\n\
     \      (shard routing included) amortized per queue op.\n\
     \  open_sim_p99_ticks               p99 sojourn of the default\n\
     \      open-system scenario at 200 requests (3 ff-the workers,\n\
     \      Poisson 2.0/ktick, exponential 400-tick services, seed 42).\n\
     \      Deterministic: --check re-runs it and requires equality.\n\
     \  fingerprint_ns / memo_lookup_ns / memo_store_lookup_ns\n\
     \      one Machine.fingerprint of a THEP worker machine stopped\n\
     \      exactly 200 steps into its run; the machine's live-cell count\n\
     \      is recorded as fingerprint_probe_cells and --check requires it\n\
     \      to match exactly (fingerprint cost is O(live cells) — the\n\
     \      pinned count is the probe shape; a 2-thread litmus machine\n\
     \      fingerprints ~5x faster, see EXPERIMENTS.md). memo_lookup adds\n\
     \      the in-memory Pareto table probe, memo_store_lookup the\n\
     \      persistent store's seen() (atomic counter + shard mutex +\n\
     \      the same Pareto check; no disk on the lookup path).\n\
     \  explorer_runs_per_sec            bounded FF-THE scenario, sb=1,\n\
     \      preemption bound 3, memo off, snapshot-based siblings.\n\
     \  explorer_por_runs_per_sec        same scenario with sleep-set POR:\n\
     \      completed runs per second, so fewer runs to the same verdict\n\
     \      lowers it even as the verdict arrives sooner.\n\
     \  explorer_dpor_runs_per_sec       same scenario with source-DPOR\n\
     \      (race-reversal backtracking on top of sleep sets).\n\
     \  por_reduction_factor /           plain runs / reduced runs on the\n\
     \  dpor_reduction_factor            minimal unbounded FF-THE scenario\n\
     \      (1 preloaded task, 1 steal attempt, no client stores). The\n\
     \      reduced searches exhaust it deterministically; plain cannot\n\
     \      (store-buffer drains), so plain is capped at the run budget\n\
     \      and both factors are lower bounds.\n\
     \  frontier_steal_rate              steals per frontier task, explorer\n\
     \      scenario fanned over 4 domains. Scheduling-dependent: gated\n\
     \      for positivity (full mode), not value.\n\
     \  snapshot_restore_ns              Machine.restore_into of a 40-step\n\
     \      default-scenario snapshot, minus the fresh-instance build both\n\
     \      explorer sibling paths share.\n\
     \  flight_recorder_event_ns         one single-writer ring record\n\
     \      (four int stores + one monotonic clock read) in a 1-slot\n\
     \      recorder; the ring wraps many times, so drop-oldest overwrite\n\
     \      is included. --check gates the recorded value under an\n\
     \      absolute ceiling (50 ns full mode) and re-measures live.\n\
     \  flight_overhead_pct              achieved service rps recorder-off\n\
     \      vs recorder-on, as %% of the off run; gated <= 10%% (full).\n\
     \  stage_attribution_overhead_pct   achieved service rps attribution-\n\
     \      off vs attribution-on (per-cell qwait/dispatch/service stamps\n\
     \      plus the windowed sojourn record), as %% of the off run;\n\
     \      gated <= 5%% (full).\n\
     \  windowed_record_ns               one Windowed.observe into a\n\
     \      16-slot ring with an advancing clock, so slot eviction (a\n\
     \      histogram reset) is amortized in; --check gates the recorded\n\
     \      value under an absolute ceiling and re-measures live.\n\
     \  native_*                         the OCaml 5 pool on real silicon,\n\
     \      3 worker domains: fib/graph task throughput and the Poisson\n\
     \      service benchmark (achieved rps, p99 sojourn). Wallclock — the\n\
     \      check gates positivity, not speed.\n")

let () =
  let argv = Sys.argv in
  let has f = Array.exists (String.equal f) argv in
  let value_of flag =
    let r = ref None in
    Array.iteri
      (fun i a -> if String.equal a flag && i + 1 < Array.length argv then r := Some argv.(i + 1))
      argv;
    !r
  in
  if has "--help" || has "-h" then usage ()
  else if has "--check" then
    match value_of "--check" with
    | Some f -> run_check f
    | None ->
        prerr_endline "usage: bench --check FILE";
        exit 2
  else if has "--json" then
    run_json ~smoke:(has "--smoke") ~out:(value_of "--out") ()
  else begin
    let micro_only = has "--micro" in
    let figures_only = has "--figures" in
    if not figures_only then run_micro ();
    if not micro_only then run_figures ()
  end
