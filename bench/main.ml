(* Benchmark harness.

   Part 1 — Bechamel micro-benchmarks: one Test.make per table/figure, each
   measuring the per-operation cost that the corresponding experiment's
   behaviour hinges on (fenced vs fence-free take, steal paths, the litmus
   program, the capacity microbenchmark, simulator step throughput, and the
   native deque ops).

   Part 2 — the full figure/table regeneration (the same harness the
   [wsrepro all] CLI exposes): Table 1, Fig. 1, Fig. 7, Fig. 8, Fig. 10 on
   both machines, Fig. 11. This is the output recorded in EXPERIMENTS.md. *)

open Bechamel
open Toolkit

(* --- micro-benchmark helpers ---------------------------------------- *)

(* A single-worker machine that repeatedly takes from a preloaded queue;
   returns a thunk performing [puts+takes] of one batch. Building the
   machine is part of the thunk (continuations are single-shot), so these
   numbers compare variants rather than measure bare op latency. *)
let sim_machine ~queue ~worker_fence ~delta () =
  let m = Tso.Machine.create (Tso.Machine.abstract_config ~sb_capacity:8) in
  let params =
    { Ws_core.Queue_intf.capacity = 128; delta; worker_fence; tag = "q" }
  in
  let q = Ws_core.Registry.create (Ws_core.Registry.find queue) m params in
  let scratch =
    Tso.Memory.alloc (Tso.Machine.memory m) ~name:"scratch" ~init:0
  in
  let _ =
    Tso.Machine.spawn m ~name:"w" (fun () ->
        for i = 1 to 64 do
          Ws_core.Queue_intf.put q i
        done;
        let rec drain () =
          match Ws_core.Queue_intf.take q with
          | `Task t ->
              Tso.Program.store scratch t;
              drain ()
          | `Empty -> ()
        in
        drain ())
  in
  m

(* Run a machine to quiescence; a counting wrapper measures transitions
   without touching the scheduler's hot path (every policy invocation is
   exactly one applied transition). *)
let run_sim ?steps m =
  let policy = Tso.Sched.round_robin () in
  let policy =
    match steps with
    | None -> policy
    | Some c ->
        fun m buf ->
          incr c;
          policy m buf
  in
  match Tso.Sched.run m policy with
  | Tso.Sched.Quiescent -> ()
  | _ -> failwith "bench batch did not quiesce"

let sim_batch ~queue ~worker_fence ~delta () =
  run_sim (sim_machine ~queue ~worker_fence ~delta ())

let litmus_batch () =
  ignore
    (Ws_litmus.Litmus_program.run ~tasks:64 ~sb_capacity:8 ~coalesce:true ~l:1
       ~delta:5 ~drain_weight:0.05 ~seed:7 ())

let capacity_batch () =
  ignore
    (Ws_litmus.Capacity.cycles_per_iteration Ws_litmus.Capacity.westmere_model
       ~stores:36 ~iterations:100)

let fig10_batch () =
  let dag =
    Ws_runtime.Dag.of_comp (Ws_workloads.Cilk_suite.fib ~spawn:5 ~join:5 ~leaf:10 8)
  in
  let cfg =
    {
      Ws_runtime.Engine.default_config with
      workers = 2;
      queue = Ws_core.Registry.find "thep";
      delta = 4;
      sb_capacity = 8;
    }
  in
  let wl = Ws_runtime.Dag.instantiate dag ~name:"fib8" in
  ignore (Ws_runtime.Engine.run_timed cfg wl)

let fig11_graph =
  lazy (Ws_workloads.Graph.random_graph ~nodes:400 ~edges:1200 ~seed:3)

let fig11_batch () =
  let checked =
    Ws_workloads.Graph_workloads.transitive_closure (Lazy.force fig11_graph)
      ~src:0 ()
  in
  let cfg =
    {
      Ws_runtime.Engine.default_config with
      workers = 2;
      queue = Ws_core.Registry.find "ff-cl";
      delta = 4;
      sb_capacity = 8;
    }
  in
  ignore
    (Ws_runtime.Engine.run_timed cfg checked.Ws_workloads.Graph_workloads.workload)

let ablation_batch () =
  ignore
    (Ws_harness.Exp_ablation.fence_sweep ~bench:"Integrate" ~costs:[ 20 ] ())

let native_cl_batch () =
  let q = Ws_native.Chase_lev.create ~capacity:128 () in
  for i = 1 to 64 do
    Ws_native.Chase_lev.push q i
  done;
  for _ = 1 to 32 do
    ignore (Ws_native.Chase_lev.pop q)
  done;
  for _ = 1 to 32 do
    ignore (Ws_native.Chase_lev.steal q)
  done

let native_the_batch () =
  let q = Ws_native.The_queue.create ~capacity:128 () in
  for i = 1 to 64 do
    Ws_native.The_queue.push q i
  done;
  for _ = 1 to 32 do
    ignore (Ws_native.The_queue.pop q)
  done;
  for _ = 1 to 32 do
    ignore (Ws_native.The_queue.steal q)
  done

let tests =
  [
    (* Fig. 1: the fence is the whole story of the worker's take path *)
    Test.make ~name:"fig1/the-take-fenced(64ops)"
      (Staged.stage (sim_batch ~queue:"the" ~worker_fence:true ~delta:1));
    Test.make ~name:"fig1/the-take-fence-free(64ops)"
      (Staged.stage (sim_batch ~queue:"the" ~worker_fence:false ~delta:1));
    (* Fig. 10 algorithms on the simulated machine *)
    Test.make ~name:"fig10/ff-the(64ops)"
      (Staged.stage (sim_batch ~queue:"ff-the" ~worker_fence:false ~delta:4));
    Test.make ~name:"fig10/thep(64ops)"
      (Staged.stage (sim_batch ~queue:"thep" ~worker_fence:false ~delta:4));
    Test.make ~name:"fig10/fib8-2workers-thep" (Staged.stage fig10_batch);
    (* Fig. 11 *)
    Test.make ~name:"fig11/ff-cl(64ops)"
      (Staged.stage (sim_batch ~queue:"ff-cl" ~worker_fence:false ~delta:4));
    Test.make ~name:"fig11/idempotent-lifo(64ops)"
      (Staged.stage (sim_batch ~queue:"idempotent-lifo" ~worker_fence:false ~delta:1));
    Test.make ~name:"fig11/tc-400nodes-ff-cl" (Staged.stage fig11_batch);
    (* Fig. 8 / Fig. 9: one litmus run *)
    Test.make ~name:"fig8/litmus-run(64tasks)" (Staged.stage litmus_batch);
    (* Fig. 6 / Fig. 7: the capacity microbenchmark *)
    Test.make ~name:"fig7/capacity-point(100iters)" (Staged.stage capacity_batch);
    (* native artifact *)
    Test.make ~name:"native/chase-lev(64push+pop+steal)"
      (Staged.stage native_cl_batch);
    Test.make ~name:"native/the-queue(64push+pop+steal)"
      (Staged.stage native_the_batch);
    (* ablation: one fence-sweep point *)
    Test.make ~name:"ablation/fence-sweep-point" (Staged.stage ablation_batch);
  ]

let run_micro () =
  let ols =
    Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:None ()
  in
  let raw =
    List.map (fun test -> Benchmark.all cfg instances test) tests
  in
  Printf.printf "== Bechamel micro-benchmarks (ns per batch, OLS on run) ==\n";
  List.iter2
    (fun test tbl ->
      let results = Analyze.all ols Instance.monotonic_clock tbl in
      Hashtbl.iter
        (fun name ols_result ->
          let est =
            match Analyze.OLS.estimates ols_result with
            | Some (e :: _) -> Printf.sprintf "%12.1f ns" e
            | _ -> "        n/a"
          in
          let r2 =
            match Analyze.OLS.r_square ols_result with
            | Some r -> Printf.sprintf "r²=%.3f" r
            | None -> ""
          in
          Printf.printf "%-40s %s  %s\n%!" name est r2)
        results;
      ignore test)
    tests raw

(* --- full figure regeneration ---------------------------------------- *)

let run_figures () =
  print_newline ();
  Ws_harness.Exp_table1.run ();
  print_newline ();
  Ws_harness.Exp_fig1.run ();
  print_newline ();
  Ws_harness.Exp_fig7.run ();
  print_newline ();
  Ws_harness.Exp_fig8.run ();
  print_newline ();
  List.iter
    (fun m ->
      Ws_harness.Exp_fig10.run m ~repeats:3 ();
      print_newline ())
    Ws_harness.Machine_config.primary;
  Ws_harness.Exp_fig11.run ~repeats:3 ();
  print_newline ();
  Ws_harness.Exp_ablation.run ()

(* --- machine-readable benchmark (BENCH_simulator.json) ---------------- *)

(* Schema contract for the tracked perf baseline. The CI smoke job and the
   cram test validate this id and the exact field set, so numbers recorded
   in EXPERIMENTS.md stay comparable across commits; bump the version if a
   field changes meaning. *)
let bench_schema = "wsrepro-bench/v4"

let bench_fields =
  [
    "sim_batch_steps_per_sec";
    "sim_batch_steps_per_sec_telemetry";
    "telemetry_overhead_pct";
    "explorer_runs_per_sec";
    "explorer_por_runs_per_sec";
    "snapshot_restore_ns";
    "fig10_wall_s";
    "fingerprint_ns";
    "memo_lookup_ns";
    "native_fib_tasks_per_sec";
    "native_graph_tasks_per_sec";
    "native_service_rps";
    "native_service_p99_ns";
  ]

let wall f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

(* Simulator step throughput through [Sched.run]: the number the
   allocation-free enabled-set path is accountable for. With
   [~telemetry:true] a sink is attached to every machine, so the same loop
   measures the fully-instrumented stepping rate; the default (no sink)
   exercises the disabled guard that must stay free. *)
let measure_sim_steps ?(telemetry = false) ~batches () =
  let steps = ref 0 in
  let sink = if telemetry then Some (Telemetry.Sink.create ()) else None in
  let (), dt =
    wall (fun () ->
        for _ = 1 to batches do
          let m = sim_machine ~queue:"thep" ~worker_fence:false ~delta:4 () in
          (match sink with Some s -> Tso.Machine.set_sink m s | None -> ());
          run_sim ~steps m
        done)
  in
  float_of_int !steps /. dt

(* Explorer throughput on a small FF-THE scenario (complete runs/sec).
   With [por] the sleep-set reduction is on: the same verdict is reached
   from far fewer runs, so the rate divides completed runs (not skipped
   siblings) by the wall time — it answers "how fast does one verdict
   arrive", not "how fast does the machine step". *)
let measure_explorer ?(por = false) ?(snapshots = true) ~max_runs () =
  let spec =
    {
      Ws_harness.Scenarios.default_spec with
      queue = "ff-the";
      sb_capacity = 1;
      delta = 2;
      preloaded = 2;
      steal_attempts = 1;
    }
  in
  let (st, _), dt =
    wall (fun () ->
        Ws_harness.Runner.exhaustive_check spec ~max_runs
          ~preemption_bound:(Some 3) ~jobs:1 ~memo:false ~por ~snapshots ())
  in
  float_of_int st.Tso.Explore.runs /. dt

(* Incremental cost of [Machine.restore_into] — what one sibling branch
   pays on the explorer's snapshot path, beyond building the fresh
   instance both paths share (the replay path it replaced paid one
   [Machine.apply] per prefix step on top of the same instance build).
   Measured by subtracting a build-only loop from a build+restore loop. *)
let measure_snapshot_restore ~iters () =
  let mk =
    Tso.Explore.Internal.recording_mk
      (Ws_harness.Scenarios.instance Ws_harness.Scenarios.default_spec)
  in
  let inst = mk () in
  (match
     Tso.Sched.run ~max_steps:40 inst.Tso.Explore.machine
       (Tso.Sched.round_robin ())
   with
  | Tso.Sched.Max_steps -> ()
  | _ -> failwith "snapshot probe ran to completion; deepen the scenario");
  let snap = Tso.Machine.snapshot_create () in
  Tso.Machine.snapshot inst.Tso.Explore.machine snap;
  let (), dt_build =
    wall (fun () ->
        for _ = 1 to iters do
          ignore (Sys.opaque_identity (mk ()))
        done)
  in
  let (), dt_both =
    wall (fun () ->
        for _ = 1 to iters do
          let i = mk () in
          Tso.Machine.restore_into snap i.Tso.Explore.machine
        done)
  in
  1e9 *. Float.max 0.0 (dt_both -. dt_build) /. float_of_int iters

(* Cost of one [Machine.fingerprint] of a mid-run machine state — the memo
   key computation on the explorer's hot path. *)
let measure_fingerprint ~iters () =
  let m = sim_machine ~queue:"thep" ~worker_fence:false ~delta:4 () in
  ignore (Tso.Sched.run ~max_steps:200 m (Tso.Sched.round_robin ()));
  let acc = ref 0 in
  let (), dt =
    wall (fun () ->
        for _ = 1 to iters do
          acc := !acc lxor Tso.Machine.fingerprint m
        done)
  in
  Sys.opaque_identity !acc |> ignore;
  1e9 *. dt /. float_of_int iters

(* Fingerprint + Pareto-dominance probe against a populated memo table:
   what one memoized-explorer node pays before recursing. *)
let measure_memo_lookup ~iters () =
  let m = sim_machine ~queue:"thep" ~worker_fence:false ~delta:4 () in
  ignore (Tso.Sched.run ~max_steps:200 m (Tso.Sched.round_robin ()));
  let tbl : (int, (int * int) list) Hashtbl.t = Hashtbl.create 4096 in
  (* deterministic LCG fill — a realistic load factor without Random *)
  let x = ref 0x9E3779B9 in
  for _ = 1 to 4096 do
    x := (!x lxor (!x lsr 17)) * 0x2545F4914F6CDD1D land max_int;
    Hashtbl.replace tbl !x [ (8, 2) ]
  done;
  Hashtbl.replace tbl (Tso.Machine.fingerprint m) [ (8, 2) ];
  let hits = ref 0 in
  let (), dt =
    wall (fun () ->
        for _ = 1 to iters do
          let fp = Tso.Machine.fingerprint m in
          if Tso.Explore.Internal.memo_tbl_check tbl fp ~depth_rem:4 ~preempt_rem:1
          then incr hits
        done)
  in
  Sys.opaque_identity !hits |> ignore;
  1e9 *. dt /. float_of_int iters

(* Wall time of one Fig. 10 column (Fib on haswell), the end-to-end figure
   regeneration cost the hot-path work targets. *)
let measure_fig10 ~repeats () =
  let (), dt =
    wall (fun () ->
        ignore
          (Ws_harness.Exp_fig10.compute Ws_harness.Machine_config.haswell
             ~repeats ~benches:[ "Fib" ] ()))
  in
  dt

(* The native pool on real silicon: throughput of the two parity workloads
   (tasks/s) and the open-system service benchmark (achieved rps, p99
   sojourn ns). Absolute numbers are machine-dependent; the contract the
   check enforces is positivity and schema shape — the parity analysis
   lives in `wsrepro native` / EXPERIMENTS.md. *)
let measure_native ~smoke () =
  let domains = 3 in
  let fib_n, nodes, requests, rate, work =
    if smoke then (16, 400, 200, 2000., 500) else (24, 2000, 1000, 5000., 2000)
  in
  let fib =
    Ws_harness.Exp_native.native_fib ~domains ~n:fib_n ()
  in
  let graph =
    Ws_harness.Exp_native.native_graph ~domains ~nodes ~edges:(4 * nodes)
      ~seed:23 ()
  in
  let svc =
    Ws_harness.Exp_native.service ~domains ~rate ~requests ~chain:4 ~work
      ~seed:23 ()
  in
  ( fib.Ws_harness.Exp_native.tasks_per_sec,
    graph.Ws_harness.Exp_native.tasks_per_sec,
    svc.Ws_harness.Exp_native.throughput_rps,
    float_of_int svc.Ws_harness.Exp_native.p99_ns )

let run_json ~smoke ~out () =
  let batches, max_runs, fp_iters, snap_iters, repeats =
    if smoke then (20, 500, 2_000, 500, 1)
    else (2_000, 20_000, 200_000, 20_000, 3)
  in
  let disabled = measure_sim_steps ~batches () in
  let enabled = measure_sim_steps ~telemetry:true ~batches () in
  let native_fib, native_graph, native_rps, native_p99 =
    measure_native ~smoke ()
  in
  let metrics =
    [
      ("sim_batch_steps_per_sec", disabled);
      ("sim_batch_steps_per_sec_telemetry", enabled);
      ("telemetry_overhead_pct", 100.0 *. (disabled -. enabled) /. disabled);
      ("explorer_runs_per_sec", measure_explorer ~max_runs ());
      ("explorer_por_runs_per_sec", measure_explorer ~por:true ~max_runs ());
      ("snapshot_restore_ns", measure_snapshot_restore ~iters:snap_iters ());
      ("fig10_wall_s", measure_fig10 ~repeats ());
      ("fingerprint_ns", measure_fingerprint ~iters:fp_iters ());
      ("memo_lookup_ns", measure_memo_lookup ~iters:fp_iters ());
      ("native_fib_tasks_per_sec", native_fib);
      ("native_graph_tasks_per_sec", native_graph);
      ("native_service_rps", native_rps);
      ("native_service_p99_ns", native_p99);
    ]
  in
  assert (List.map fst metrics = bench_fields);
  let buf = Buffer.create 256 in
  Buffer.add_string buf "{\n";
  Buffer.add_string buf (Printf.sprintf "  \"schema\": %S,\n" bench_schema);
  Buffer.add_string buf
    (Printf.sprintf "  \"mode\": %S,\n" (if smoke then "smoke" else "full"));
  Buffer.add_string buf "  \"metrics\": {\n";
  let n = List.length metrics in
  List.iteri
    (fun i (k, v) ->
      Buffer.add_string buf
        (Printf.sprintf "    %S: %.3f%s\n" k v (if i = n - 1 then "" else ",")))
    metrics;
  Buffer.add_string buf "  }\n}\n";
  match out with
  | None -> print_string (Buffer.contents buf)
  | Some path ->
      let oc = open_out path in
      output_string oc (Buffer.contents buf);
      close_out oc;
      Printf.printf "wrote %s\n" path

(* Validator for --check. Four contracts:

   1. Schema: the file parses as JSON (the in-tree strict parser), carries
      the schema id, and has every required metric — the CI smoke job keys
      on this so drift fails the build.

   2. Pay-for-use: stepping with no sink attached must not regress more
      than 5% against the rate recorded in the file. The live probe takes
      the best of three short runs (downward noise hides a regression less
      than upward noise fakes one); the recorded baseline was a single
      long measurement on the same machine.

   3. The recorded telemetry_overhead_pct must stay under an absolute
      ceiling: the sink-attached stepping rate paying more than ~30% over
      plain stepping means a counter crept onto a path it shouldn't be on.
      Smoke-mode documents use a much looser ceiling — their probes run
      for milliseconds, so the recorded ratio is mostly scheduler noise.

   4. The live snapshot-restore probe must stay within a generous factor
      of the recorded one. Restore skips the per-transition machinery the
      replay path pays; the only way to blow the factor is an algorithmic
      regression (e.g. the restore path quietly re-acquiring an O(depth)
      replay), which this catches even through CI machine-speed noise. *)
let overhead_budget_pct = 5.0

(* recorded telemetry_overhead_pct ceiling (absolute, machine-independent) *)
let telemetry_overhead_ceiling_pct ~smoke = if smoke then 100.0 else 30.0

(* live snapshot_restore_ns vs recorded: factor + absolute slack, sized for
   cross-machine noise and the subtraction-based probe *)
let snapshot_factor = 3.0
let snapshot_slack_ns = 2000.0

let run_check file =
  let doc =
    match Telemetry.Json.parse_file file with
    | Ok j -> j
    | Error e ->
        Printf.eprintf "%s: not valid JSON: %s\n" file e;
        exit 1
  in
  let str_field k =
    match Telemetry.Json.member k doc with
    | Some (Telemetry.Json.Str s) -> Some s
    | _ -> None
  in
  let schema_ok = str_field "schema" = Some bench_schema in
  let metric k =
    match Telemetry.Json.member "metrics" doc with
    | Some m -> (
        match Telemetry.Json.member k m with
        | Some (Telemetry.Json.Float f) -> Some f
        | Some (Telemetry.Json.Int i) -> Some (float_of_int i)
        | _ -> None)
    | None -> None
  in
  let missing = List.filter (fun f -> metric f = None) bench_fields in
  if (not schema_ok) || missing <> [] then begin
    if not schema_ok then
      Printf.eprintf "%s: missing or wrong schema id (want %s)\n" file
        bench_schema;
    List.iter (fun f -> Printf.eprintf "%s: missing metric %S\n" file f) missing;
    exit 1
  end;
  Printf.printf "%s: schema %s OK (%d metrics)\n" file bench_schema
    (List.length bench_fields);
  let recorded = Option.get (metric "sim_batch_steps_per_sec") in
  ignore (measure_sim_steps ~batches:5 ()) (* warm up *);
  let live =
    List.fold_left max 0.0
      (List.init 3 (fun _ -> measure_sim_steps ~batches:60 ()))
  in
  let delta_pct = 100.0 *. (recorded -. live) /. recorded in
  let ok = delta_pct <= overhead_budget_pct in
  Printf.printf
    "%s: telemetry-disabled stepping %.2f Msteps/s (recorded %.2f, delta \
     %+.1f%%) %s\n"
    file (live /. 1e6) (recorded /. 1e6) delta_pct
    (if ok then "OK" else "REGRESSED");
  let recorded_ovh = Option.get (metric "telemetry_overhead_pct") in
  let ceiling =
    telemetry_overhead_ceiling_pct ~smoke:(str_field "mode" = Some "smoke")
  in
  let ovh_ok = recorded_ovh <= ceiling in
  Printf.printf "%s: recorded telemetry overhead %.1f%% (ceiling %.0f%%) %s\n"
    file recorded_ovh ceiling
    (if ovh_ok then "OK" else "OVER BUDGET");
  let recorded_snap = Option.get (metric "snapshot_restore_ns") in
  let live_snap =
    List.fold_left min infinity
      (List.init 3 (fun _ -> measure_snapshot_restore ~iters:300 ()))
  in
  let snap_budget = (recorded_snap *. snapshot_factor) +. snapshot_slack_ns in
  let snap_ok = live_snap <= snap_budget in
  Printf.printf
    "%s: snapshot restore %.0f ns (recorded %.0f, budget %.0f) %s\n" file
    live_snap recorded_snap snap_budget
    (if snap_ok then "OK" else "REGRESSED");
  (* Native metrics are machine-dependent wallclock numbers; the recorded
     values must at least be live measurements (strictly positive — a zero
     means the probe silently produced nothing, e.g. a hung pool whose run
     was killed or a histogram that never saw an observation). *)
  let native_ok =
    List.for_all
      (fun f -> Option.get (metric f) > 0.0)
      [
        "native_fib_tasks_per_sec";
        "native_graph_tasks_per_sec";
        "native_service_rps";
        "native_service_p99_ns";
      ]
  in
  Printf.printf "%s: native metrics %s\n" file
    (if native_ok then "all positive OK" else "NOT POSITIVE");
  if not (ok && ovh_ok && snap_ok && native_ok) then exit 1

let usage () =
  print_string
    ("usage: bench [--micro | --figures]\n\
     \       bench --json [--smoke] [--out FILE]\n\
     \       bench --check FILE\n\n\
      Default: Bechamel micro-benchmarks, then the full figure/table\n\
      regeneration. --micro / --figures run only one half.\n\n\
      --json emits the " ^ bench_schema
   ^ " baseline document (--smoke: tiny\n\
      iteration counts — the shape is the contract, the numbers are\n\
      meaningless). --check validates a baseline file and gates the live\n\
      stepping rate, the recorded telemetry overhead, and the live\n\
      snapshot-restore cost.\n\n\
      Probe shapes (numbers are only comparable for identical probes):\n\
     \  fingerprint_ns / memo_lookup_ns  one Machine.fingerprint of a THEP\n\
     \      worker machine stopped 200 steps into its run (~137 live memory\n\
     \      cells; fingerprint cost is O(live cells), so a 2-thread litmus\n\
     \      machine fingerprints ~5x faster — see EXPERIMENTS.md).\n\
     \  explorer_runs_per_sec            bounded FF-THE scenario, sb=1,\n\
     \      preemption bound 3, memo off, snapshot-based siblings.\n\
     \  explorer_por_runs_per_sec        same scenario with sleep-set POR:\n\
     \      completed runs per second, so fewer runs to the same verdict\n\
     \      lowers it even as the verdict arrives sooner.\n\
     \  snapshot_restore_ns              Machine.restore_into of a 40-step\n\
     \      default-scenario snapshot, minus the fresh-instance build both\n\
     \      explorer sibling paths share.\n\
     \  native_*                         the OCaml 5 pool on real silicon,\n\
     \      3 worker domains: fib/graph task throughput and the Poisson\n\
     \      service benchmark (achieved rps, p99 sojourn). Wallclock — the\n\
     \      check gates positivity, not speed.\n")

let () =
  let argv = Sys.argv in
  let has f = Array.exists (String.equal f) argv in
  let value_of flag =
    let r = ref None in
    Array.iteri
      (fun i a -> if String.equal a flag && i + 1 < Array.length argv then r := Some argv.(i + 1))
      argv;
    !r
  in
  if has "--help" || has "-h" then usage ()
  else if has "--check" then
    match value_of "--check" with
    | Some f -> run_check f
    | None ->
        prerr_endline "usage: bench --check FILE";
        exit 2
  else if has "--json" then
    run_json ~smoke:(has "--smoke") ~out:(value_of "--out") ()
  else begin
    let micro_only = has "--micro" in
    let figures_only = has "--figures" in
    if not figures_only then run_micro ();
    if not micro_only then run_figures ()
  end
