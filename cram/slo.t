An `slo` block turns a scenario from a measurement into a gate: the
sweep prints a per-window verdict table and the exit status says whether
every budget held. The sim engine is deterministic, so both the verdict
table and the exit status are locked byte-for-byte here.

  $ cat > tight.json <<'EOF'
  > {
  >   "schema": "wsrepro-scenario/v1",
  >   "name": "slo-tight",
  >   "queue": "ff-the",
  >   "workers": 2,
  >   "requests": 120,
  >   "chain": 2,
  >   "seed": 5,
  >   "capacity": 32,
  >   "policy": "block",
  >   "tick_ns": 50,
  >   "arrival": { "process": "poisson", "rate": 1.0 },
  >   "service": { "dist": "exponential", "mean": 300 },
  >   "slo": {
  >     "p99_sojourn": 2000,
  >     "max_drop_rate": 0.010,
  >     "stage_budgets": { "qwait": 200, "service": 1800 },
  >     "window": 16384,
  >     "windows": 8
  >   }
  > }
  > EOF

The tight budgets are violated: the verdict table names every failing
window and stage, and the command exits nonzero — CI can gate on a
latency objective exactly like on a test:

  $ wsrepro scenario tight.json --out tight-report.json | sed -e 's/ *$//'
  == Heavy-traffic overload sweep: slo-tight (sim ticks) ==
  load  offered/ktick  sim p50  sim p99  sim p999  sim drop  peak q  nat p50us  nat p99us  nat p999us  nat drop
  -------------------------------------------------------------------------------------------------------------
  1x    1.0            2047     5022     5022      0         3       -          -          -           -
  2x    2.0            1023     3151     3151      0         6       -          -          -           -
  4x    4.0            1023     2675     2675      0         11      -          -          -           -
  == SLO verdicts: slo-tight (budgets in sim ticks) ==
  load  window  metric       actual  budget  verdict
  --------------------------------------------------
  1x    1       sojourn_p99  3915    2000    FAIL
  1x    2       sojourn_p99  3047    2000    FAIL
  1x    3       sojourn_p99  4569    2000    FAIL
  1x    4       sojourn_p99  5022    2000    FAIL
  1x    5       sojourn_p99  3691    2000    FAIL
  1x    6       sojourn_p99  2506    2000    FAIL
  1x    7       sojourn_p99  4908    2000    FAIL
  1x    8       sojourn_p99  1704    2000    ok
  1x    -       qwait_p99    4350    200     FAIL
  1x    -       service_p99  1023    1800    ok
  1x    -       drop_rate    0.0000  0.0100  ok
  2x    0       sojourn_p99  2293    2000    FAIL
  2x    1       sojourn_p99  2343    2000    FAIL
  2x    2       sojourn_p99  3151    2000    FAIL
  2x    3       sojourn_p99  2758    2000    FAIL
  2x    4       sojourn_p99  1381    2000    ok
  2x    -       qwait_p99    2176    200     FAIL
  2x    -       service_p99  1023    1800    ok
  2x    -       drop_rate    0.0000  0.0100  ok
  4x    0       sojourn_p99  1905    2000    ok
  4x    1       sojourn_p99  2675    2000    FAIL
  4x    2       sojourn_p99  1739    2000    ok
  4x    -       qwait_p99    1089    200     FAIL
  4x    -       service_p99  1023    1800    ok
  4x    -       drop_rate    0.0000  0.0100  ok
  SLO: FAIL (15 violations)
  overload report written to tight-report.json
  $ wsrepro scenario tight.json > /dev/null
  [1]

A loose variant of the same scenario (same seed, same load, generous
budgets) passes and exits zero:

  $ sed -e 's/"p99_sojourn": 2000/"p99_sojourn": 60000/' \
  >     -e 's/"qwait": 200/"qwait": 60000/' \
  >     -e 's/"service": 1800/"service": 60000/' \
  >     -e 's/"max_drop_rate": 0.010/"max_drop_rate": 0.050/' \
  >     tight.json > loose.json
  $ wsrepro scenario loose.json | tail -n 1
  SLO: PASS

The report carries the verdict (`slo_ok`) and still validates; the run
is deterministic, so a second sweep is byte-identical — including the
windowed series and the verdicts:

  $ wsrepro json-check tight-report.json
  tight-report.json: valid JSON (schema wsrepro-overload/v1)
  $ grep -c '"slo_ok": false' tight-report.json
  1
  $ wsrepro scenario tight.json --out tight-report2.json > /dev/null
  [1]
  $ cmp tight-report.json tight-report2.json

`--seed` re-draws the whole plan but stays deterministic: same seed,
same verdicts, byte for byte:

  $ wsrepro scenario tight.json --seed 99 --out seed99.json > seed99.txt
  [1]
  $ cp seed99.json seed99-first.json
  $ wsrepro scenario tight.json --seed 99 --out seed99.json > seed99b.txt
  [1]
  $ cmp seed99-first.json seed99.json
  $ cmp seed99.txt seed99b.txt

A scenario without an `slo` block never fails — there is nothing to
judge:

  $ cat > noslo.json <<'EOF'
  > {
  >   "schema": "wsrepro-scenario/v1",
  >   "name": "slo-tight",
  >   "queue": "ff-the",
  >   "workers": 2,
  >   "requests": 120,
  >   "chain": 2,
  >   "seed": 5,
  >   "capacity": 32,
  >   "policy": "block",
  >   "tick_ns": 50,
  >   "arrival": { "process": "poisson", "rate": 1.0 },
  >   "service": { "dist": "exponential", "mean": 300 }
  > }
  > EOF
  $ wsrepro scenario noslo.json > /dev/null && echo passed
  passed
