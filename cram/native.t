`wsrepro native` runs the fib/graph workloads on the real OCaml 5
work-stealing pool and cross-checks the shape against the simulator, then
drives the pool as an open system (Poisson arrivals through the injector).
Wallclock numbers and the ratio line are machine-dependent, so the test
pins the structure: both section headers, the parity table's column set
and workload rows, and the service line's fields.

  $ wsrepro native --smoke --domains 3 --seed 23 > out.txt
  $ grep -c '== Native vs simulated' out.txt
  1
  $ grep -c '== Native service benchmark' out.txt
  1
  $ grep -o 'workload\|sim tasks\|native ktasks/s' out.txt | sort -u
  native ktasks/s
  sim tasks
  workload
  $ grep -c '^fib(16)' out.txt
  1
  $ grep -c '^graph(400,1600)' out.txt
  1
  $ grep -c 'relative throughput shape' out.txt
  1

The graph row's native run is only reported after its visited set is
verified against a host BFS, and the sim rows come from checked runs, so
a parity table at all means both executions were correct. The service
section reports completion, latency percentiles from the telemetry
histogram, and the pool counters (every request enters through the
injector, so injector_runs equals the request count):

  $ grep 'requests=' out.txt | sed -E 's/[0-9][0-9.]*/N/g'
  requests=N completed=N offered=N/s achieved=N/s elapsed=Ns
  $ grep 'sojourn' out.txt | sed -E 's/[0-9][0-9.]*/N/g'
  sojourn pN=Nns pN=Nns pN=Nns
  $ grep 'pool:' out.txt | sed -E 's/[0-9][0-9.]*/N/g'
  pool: steals=N injector_runs=N parks=N

steal-half needs the THE backend — the pool rejects the combination up
front rather than corrupting a Chase-Lev deque:

  $ wsrepro native --smoke --steal-half 2>&1 | grep -o 'steal_half requires the THE backend'
  steal_half requires the THE backend

and with the THE backend the same smoke run goes through end to end:

  $ wsrepro native --smoke --domains 3 --backend the --steal-half --policy round-robin | grep -c 'relative throughput shape'
  1
