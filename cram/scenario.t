Scenario files are the data form of an open-system workload: arrival
process, service mix, backpressure policy, one seed. `wsrepro scenario`
sweeps one at 1x/2x/4x its offered load on the timing model and emits a
wsrepro-overload/v1 report. The sim side is fully deterministic — the
plan is pre-drawn from the seed and the timing engine breaks ties
lexicographically — so the table and the report are locked byte-for-byte
(native replay is wallclock and stays off here).

  $ cat > demo.json <<'EOF'
  > {
  >   "schema": "wsrepro-scenario/v1",
  >   "name": "cram-demo",
  >   "workers": 2,
  >   "requests": 120,
  >   "chain": 2,
  >   "seed": 5,
  >   "capacity": 32,
  >   "tick_ns": 50,
  >   "arrival": { "process": "poisson", "rate": 1.0 },
  >   "service": { "dist": "exponential", "mean": 300 }
  > }
  > EOF

  $ wsrepro scenario demo.json --out report.json | sed -e 's/ *$//'
  == Heavy-traffic overload sweep: cram-demo (sim ticks) ==
  load  offered/ktick  sim p50  sim p99  sim p999  sim drop  peak q  nat p50us  nat p99us  nat p999us  nat drop
  -------------------------------------------------------------------------------------------------------------
  1x    1.0            2047     5022     5022      0         3       -          -          -           -
  2x    2.0            1023     3151     3151      0         6       -          -          -           -
  4x    4.0            1023     2675     2675      0         11      -          -          -           -
  overload report written to report.json

The report passes the same strict validator CI runs, and a second sweep
of the same file produces byte-identical output — the reproducibility
contract a fixed seed buys:

  $ wsrepro json-check report.json
  report.json: valid JSON (schema wsrepro-overload/v1)
  $ wsrepro scenario demo.json --out report2.json > /dev/null
  $ cmp report.json report2.json

`--seed` overrides the file's seed (one flag drives every arrival gap and
service draw), so a different seed is a different — but equally
deterministic — run:

  $ wsrepro scenario demo.json --seed 99 --out report99.json > /dev/null
  $ cmp -s report.json report99.json
  [1]
  $ wsrepro scenario demo.json --seed 99 --out report99b.json > /dev/null
  $ cmp report99.json report99b.json

The DSL is strict: unknown fields are rejected (a typo must not silently
become a default), as is a wrong schema id:

  $ sed 's/"workers": 2,/"workers": 2, "wrokers": 3,/' demo.json > typo.json
  $ wsrepro scenario typo.json
  typo.json: scenario: unknown field "wrokers"
  [1]
  $ sed 's|wsrepro-scenario/v1|wsrepro-scenario/v9|' demo.json > v9.json
  $ wsrepro scenario v9.json
  v9.json: scenario: "schema" must be "wsrepro-scenario/v1" (got "wsrepro-scenario/v9")
  [1]
