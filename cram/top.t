`wsrepro top` draws its refreshing per-slot dashboard on stderr; stdout
must carry only the final service summary — so it stays pipeable even
while the dashboard animates. Wallclock numbers are machine-dependent,
so the test pins the structure of the summary and the cleanliness of
stdout, not the values.

  $ wsrepro top --requests 150 --rate 20000 --chain 2 --work 500 2>dash.txt > out.txt
  $ sed -E 's/[0-9][0-9.]*/N/g' out.txt | grep -v 'steal-delay'
  requests=N completed=N offered=N/s achieved=N/s elapsed=Ns
  sojourn pN=Nns pN=Nns pN=Nns
  pool: steals=N injector_runs=N parks=N
  stages: qwait pN=Nns dispatch pN=Nns service pN=Nns

(the steal-delay line is filtered: it only appears when the run's flight
recorder saw at least one steal, which a fast run on a small machine may
not produce)

No ANSI escape or carriage-return redraw bytes may leak onto stdout —
the dashboard lives entirely on stderr:

  $ LC_ALL=C grep -c '[[:cntrl:]]' out.txt
  0
  [1]

The dashboard itself carries the per-slot counter table, the pool
gauges, and the stage-attribution rows with the per-window p99
sparkline:

  $ tr '\r' '\n' < dash.txt | sed -e 's/\x1b\[[0-9]*[A-Za-z]//g' > flat.txt
  $ grep -c 'slot .*run .*stolen' flat.txt | head -1 > /dev/null && grep -m1 -o 'slot' flat.txt
  slot
  $ grep -m1 -o 'pending [0-9]* | in-flight' flat.txt | sed -E 's/[0-9]+/N/g'
  pending N | in-flight
  $ grep -m1 -o 'qwait' flat.txt
  qwait
  $ grep -m1 -o 'sojourn p99/window' flat.txt
  sojourn p99/window
