Sleep-set partial-order reduction skips interleavings that merely commute
independent transitions of ones already explored: once a subtree is done,
its root transition goes to sleep in later siblings until a dependent
transition (same thread, or overlapping memory footprint) wakes it. On the
classic x86-TSO litmus suite the verdicts are identical to the unreduced
search from a fraction of the runs — compare tso_litmus.t (3301 runs in
total) with the reduced suite (97):

  $ wsrepro tso-litmus --por
  == Classic x86-TSO litmus tests against the abstract machine ==
  SB                 allowed   observed          14 runs (exhaustive)  OK
  SB+fences          forbidden not observed       3 runs (exhaustive)  OK
  SB+rmw             forbidden not observed       3 runs (exhaustive)  OK
  MP                 forbidden not observed       6 runs (exhaustive)  OK
  LB                 forbidden not observed       3 runs (exhaustive)  OK
  n6                 allowed   observed          26 runs (exhaustive)  OK
  n5                 forbidden not observed      18 runs (exhaustive)  OK
  IRIW               forbidden not observed      15 runs (exhaustive)  OK
  store-forwarding   forbidden not observed       5 runs (exhaustive)  OK
  rmw-atomic         forbidden not observed       4 runs (exhaustive)  OK

Without a preemption bound, parallel POR explores exactly the same reduced
tree (the sleep sets travel with the frontier tasks):

  $ wsrepro tso-litmus --por > seq.out
  $ wsrepro tso-litmus --por --jobs 4 > par.out
  $ diff seq.out par.out

Snapshot-based sibling exploration is a per-node cost optimisation, not a
reduction: `--snapshots=false` reaches siblings by replaying the schedule
prefix from the root instead, and must produce the same bytes:

  $ wsrepro tso-litmus --por --snapshots=false > replay.out
  $ diff seq.out replay.out

POR composes with memoization — the sleep set is part of the memo key, so
prunes only fire against visits with the same reduction in force. The
memoized ff-the proof of explore_memo.t shrinks a little further, and the
output now reports the skipped siblings:

  $ wsrepro explore -q ff-the --memo --por
  ff-the: 171 complete runs, 0 truncated, 0 deadlocks, 164 pruned branches, 3494 memo hits (95.3% hit rate), 113 sleep-set skips, peak depth 52
  no safety violation found

The reduced search still catches real bugs, with a replayable prefix:

  $ wsrepro explore -q the --fence=false --memo --por --tasks=2 --steals=1 2>&1 | head -n 2
  the: 110 complete runs, 0 truncated, 0 deadlocks, 139 pruned branches, 2013 memo hits (94.8% hit rate), 128 sleep-set skips, peak depth 52
  VIOLATION: task 0 extracted 2 times

Parallel memoized statistics are schedule-dependent (whichever domain
reaches a state first records it), so only the verdict is stable:

  $ wsrepro explore -q ff-the --memo --por --jobs 2 | tail -n 1
  no safety violation found
