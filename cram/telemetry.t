Telemetry sidecars ride along a Fig. 10 run without touching its stdout:
`--metrics` writes the wsrepro-metrics/v1 perf-attribution document (per
(bench, variant): counters merged over the seeds plus derived rates) and
`--trace-json` records one timed run per variant as a Chrome trace-event
file. The tables must be byte-identical with and without the sidecars:

  $ wsrepro fig10 -r 1 Fib > plain.out
  $ wsrepro fig10 -r 1 Fib --metrics metrics.json --trace-json trace.json > sidecar.out
  $ diff plain.out sidecar.out

Both documents carry fixed schemas and validate with the in-tree strict
JSON parser (no external tooling needed):

  $ grep -o '"schema": "[^"]*"' metrics.json
  "schema": "wsrepro-metrics/v1"
  $ wsrepro json-check metrics.json
  metrics.json: valid JSON (schema wsrepro-metrics/v1)
  $ wsrepro json-check trace.json
  trace.json: valid JSON

The sidecar tells the fence-stall story behind the figure: every variant
ran the same workload, so the group list is one entry per variant with the
counters that separate them:

  $ grep -c '"fence_stall_cycles":' metrics.json
  6
  $ grep -o '"variant": "[^"]*"' metrics.json
  "variant": "THE"
  "variant": "FF-THE"
  "variant": "FF-THE d=4"
  "variant": "THEP d=inf"
  "variant": "THEP"
  "variant": "THEP d=4"

The simulation is deterministic, so the trace is byte-stable — rerunning
the same scenario emits the same file:

  $ wsrepro fig10 -r 1 Fib --trace-json trace2.json > /dev/null
  $ cmp trace.json trace2.json

json-check fails loudly on malformed input:

  $ head -c 100 trace.json > broken.json
  $ wsrepro json-check broken.json
  broken.json: INVALID: offset 100: expected ':'
  [1]

`--progress` paints a live status line on stderr only; stdout of the
explorer (and the figures) is unchanged by it:

  $ wsrepro explore -q ff-the --memo --progress > prog.out 2> prog.err
  $ wsrepro explore -q ff-the --memo > noprog.out
  $ diff prog.out noprog.out
