Unmemoized, the default fence-free THE scenario exhausts the 200k-run
budget without finishing (every truncated interleaving is a hole in the
proof). Memoization recognises interleavings that converge to the same
machine state — same memory, same store-buffer contents, same per-thread
position — and prunes the revisit, collapsing the search to a complete
exhaustive proof of the safety property:

  $ wsrepro explore -q ff-the --memo
  ff-the: 172 complete runs, 0 truncated, 0 deadlocks, 165 pruned branches, 3530 memo hits (95.4% hit rate), peak depth 52
  no safety violation found

The memoized search still catches real bugs: dropping the take-side fence
from the fenced THE queue surfaces the double-extraction violation, again
after a pruned (but sound) search:

  $ wsrepro explore -q the --fence=false --memo --tasks=2 --steals=1 2>&1 | head -n 2
  the: 111 complete runs, 0 truncated, 0 deadlocks, 136 pruned branches, 2051 memo hits (94.9% hit rate), peak depth 52
  VIOLATION: task 0 extracted 2 times
