The abstract machine passes the classic x86-TSO litmus suite, with every
verdict decided exhaustively:

  $ wsrepro tso-litmus
  == Classic x86-TSO litmus tests against the abstract machine ==
  SB                 allowed   observed          80 runs (exhaustive)  OK
  SB+fences          forbidden not observed      70 runs (exhaustive)  OK
  SB+rmw             forbidden not observed      70 runs (exhaustive)  OK
  MP                 forbidden not observed      30 runs (exhaustive)  OK
  LB                 forbidden not observed      20 runs (exhaustive)  OK
  n6                 allowed   observed         420 runs (exhaustive)  OK
  n5                 forbidden not observed      80 runs (exhaustive)  OK
  IRIW               forbidden not observed    2520 runs (exhaustive)  OK
  store-forwarding   forbidden not observed       5 runs (exhaustive)  OK
  rmw-atomic         forbidden not observed       6 runs (exhaustive)  OK

Parallel exploration is deterministic: fanning the search across domains
produces the byte-identical table (same run counts, same verdicts):

  $ wsrepro tso-litmus --jobs 4
  == Classic x86-TSO litmus tests against the abstract machine ==
  SB                 allowed   observed          80 runs (exhaustive)  OK
  SB+fences          forbidden not observed      70 runs (exhaustive)  OK
  SB+rmw             forbidden not observed      70 runs (exhaustive)  OK
  MP                 forbidden not observed      30 runs (exhaustive)  OK
  LB                 forbidden not observed      20 runs (exhaustive)  OK
  n6                 allowed   observed         420 runs (exhaustive)  OK
  n5                 forbidden not observed      80 runs (exhaustive)  OK
  IRIW               forbidden not observed    2520 runs (exhaustive)  OK
  store-forwarding   forbidden not observed       5 runs (exhaustive)  OK
  rmw-atomic         forbidden not observed       6 runs (exhaustive)  OK

Memoizing visited machine states prunes interleavings that converge to an
already-explored state; every verdict is unchanged but the searches shrink
(IRIW collapses from 2520 runs to 15):

  $ wsrepro tso-litmus --memo
  == Classic x86-TSO litmus tests against the abstract machine ==
  SB                 allowed   observed           4 runs (exhaustive)  OK
  SB+fences          forbidden not observed       3 runs (exhaustive)  OK
  SB+rmw             forbidden not observed       3 runs (exhaustive)  OK
  MP                 forbidden not observed       3 runs (exhaustive)  OK
  LB                 forbidden not observed       3 runs (exhaustive)  OK
  n6                 allowed   observed           5 runs (exhaustive)  OK
  n5                 forbidden not observed       4 runs (exhaustive)  OK
  IRIW               forbidden not observed      15 runs (exhaustive)  OK
  store-forwarding   forbidden not observed       1 runs (exhaustive)  OK
  rmw-atomic         forbidden not observed       4 runs (exhaustive)  OK
