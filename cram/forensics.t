Counterexample forensics. The scenario is the delta argument's edge: FF-THE
with S = 2 and no client stores between takes needs delta = ceil(S/1) = 2,
so delta = 1 lets the thief certify a stale tail and a task is extracted
twice. A violation makes `explore` exit nonzero; `--forensics` then
minimizes the failing schedule with ddmin, extracts the reorder witnesses
(the loads that committed with program-order-earlier stores still
buffered), and writes the wsrepro-forensics/v1 report:

  $ wsrepro explore -q ff-the --sb 2 -d 1 --client-stores 0 --tasks 3 --steals 1 --memo --forensics=report.json
  ff-the: 218 complete runs, 0 truncated, 0 deadlocks, 444 pruned branches, 6232 memo hits (96.6% hit rate), peak depth 51
  VIOLATION: task 0 extracted 2 times
  replayable choice prefix: [0; 0; 0; 0; 0; 0; 0; 0; 0; 0; 0; 0; 0; 0; 0; 0; 0; 1; 1; 1; 1; 1; 1; 1; 1; 1; 1; 1; 1; 1; 0; 0; 0; 0; 0; 0; 0; 0; 0; 0; 0; 0; 0; 0; 0; 0]
  
  forensics: minimized schedule 46 -> 39 choices (123 shrink replays)
  forensics: 6 reorder witness(es), max observed reorder depth 2
    step 18 worker: load q.H = 0 with 1 pending store(s): q.T:=1
    step 19 worker: load q.tasks[1] = 1 with 1 pending store(s): q.T:=1
    step 20 worker: load q.T = 1 with 1 pending store(s): q.T:=1
    step 22 worker: load q.H = 0 with 2 pending store(s): q.T:=1, q.T:=0
    step 23 worker: load q.tasks[0] = 0 with 2 pending store(s): q.T:=1, q.T:=0
    step 24 worker: load q.T = 0 with 2 pending store(s): q.T:=1, q.T:=0
  forensics report: report.json
  [1]

`--trace-failure` renders the minimized interleaving inline (the witness
steps 18-24 are the worker's takes racing its own buffered tail updates;
the thief's certify at step 30 reads the stale T the buffer still hides):

  $ wsrepro explore -q ff-the --sb 2 -d 1 --client-stores 0 --tasks 3 --steals 1 --memo --trace-failure 2>&1 | sed -n '/minimized interleaving:/,$p' | head -n 12
  minimized interleaving:
  step  worker                  thief1                  
  ------------------------------------------------------
     1  load q.T                                        
     2  store q.tasks[3] := 3                           
     3  ~ drain q.tasks[3]=3                            
     4  store q.T := 4                                  
     5  ~ drain q.T=4                                   
     6  load q.T                                        
     7  store q.T := 3                                  
     8  ~ drain q.T=3                                   
     9  load q.H                                        

The report passes the in-tree structural validator (json-check runs the
full wsrepro-forensics/v1 schema check, not just the parser):

  $ wsrepro json-check report.json
  report.json: valid JSON (schema wsrepro-forensics/v1)

Forensics is deterministic end to end: a second run of the same failing
scenario renders the report to identical bytes:

  $ wsrepro explore -q ff-the --sb 2 -d 1 --client-stores 0 --tasks 3 --steals 1 --memo --forensics=report2.json > /dev/null
  [1]
  $ cmp report.json report2.json

The paired configuration delta = 2 is sound at S = 2 — same machine, same
schedule universe, no violation, exit 0:

  $ wsrepro explore -q ff-the --sb 2 -d 2 --client-stores 0 --tasks 3 --steals 1 --memo
  ff-the: 271 complete runs, 0 truncated, 0 deadlocks, 483 pruned branches, 7967 memo hits (96.7% hit rate), peak depth 51
  no safety violation found
