Source-DPOR replaces sleep-set POR's blind sibling enumeration with
race-directed backtracking: as a run executes, the explorer tracks which
transitions raced (dependent footprints, not ordered by happens-before)
and plants backtrack points only where reversing an observed race could
reach a new trace. Sleep sets stay on (they are what makes the planted
points sufficient), so `--dpor` implies `--por`.

On the classic x86-TSO litmus suite the verdicts are identical to both
the unreduced suite (tso_litmus.t, 3301 runs) and the sleep-set suite
(explore_por.t, 97 runs), from slightly fewer runs again (91) — the
litmus programs are conflict-saturated, so sleep sets are already near
trace-optimal and the honest headline is the work per run, not the run
count: DPOR enumerates only planted siblings, so the suite's sleep-set
skip work collapses (9327 skips under --por on the minimal unbounded
FF-THE scenario become 1410, a 5.7x verdict-time win measured in
BENCH_simulator.json's dpor_reduction_factor probe):

  $ wsrepro tso-litmus --dpor
  == Classic x86-TSO litmus tests against the abstract machine ==
  SB                 allowed   observed          12 runs (exhaustive)  OK
  SB+fences          forbidden not observed       3 runs (exhaustive)  OK
  SB+rmw             forbidden not observed       3 runs (exhaustive)  OK
  MP                 forbidden not observed       6 runs (exhaustive)  OK
  LB                 forbidden not observed       3 runs (exhaustive)  OK
  n6                 allowed   observed          24 runs (exhaustive)  OK
  n5                 forbidden not observed      18 runs (exhaustive)  OK
  IRIW               forbidden not observed      13 runs (exhaustive)  OK
  store-forwarding   forbidden not observed       5 runs (exhaustive)  OK
  rmw-atomic         forbidden not observed       4 runs (exhaustive)  OK

The three searches must agree on every verdict — the unreduced suite is
the differential oracle:

  $ wsrepro tso-litmus --dpor > dpor.out
  $ wsrepro tso-litmus --por | awk '{print $1, $2, $3}' > por.verdicts
  $ wsrepro tso-litmus | awk '{print $1, $2, $3}' > plain.verdicts
  $ awk '{print $1, $2, $3}' dpor.out > dpor.verdicts
  $ diff plain.verdicts por.verdicts
  $ diff por.verdicts dpor.verdicts

Snapshot-based sibling exploration is byte-identical under DPOR (replay
from the root is the differential oracle for the snapshot path):

  $ wsrepro tso-litmus --dpor --snapshots=false > replay.out
  $ diff dpor.out replay.out

Parallel DPOR keeps the verdict and failure-set contract but not the run
counts: frontier split nodes enumerate all their children (the unreduced
sound baseline, which also covers any race against a task's prefix), so
each subtree's fresh DPOR state gives up the split nodes' share of the
reduction. Verdict columns are stable:

  $ wsrepro tso-litmus --dpor --jobs 4 | awk '{print $1, $2, $3}' > par.verdicts
  $ diff dpor.verdicts par.verdicts

DPOR composes with memoization the same way sleep sets do, with one more
conservatism: a memo hit hides which races the pruned subtree would have
observed, so the branch falls back to full sibling enumeration there:

  $ wsrepro explore -q ff-the --memo --dpor
  ff-the: 171 complete runs, 0 truncated, 0 deadlocks, 164 pruned branches, 3494 memo hits (95.3% hit rate), 64 sleep-set skips, peak depth 52
  no safety violation found

The persistent store (`--memo-file`) makes that cache survive the
process: a cold run populates one store per litmus test under the given
directory and commits on completed searches only. The cold run's own
convergent interleavings already hit the store:

  $ wsrepro tso-litmus --dpor --memo-file stores | tail -n 1
  memo store stores: 353 lookups, 44 hits (hit rate 0.125)

A warm rerun finds every root state already explored with full budget, so
each test's whole reduced tree prunes at the first lookup — same
verdicts, stored failure sets, hit rate 1:

  $ wsrepro tso-litmus --dpor --memo-file stores
  == Classic x86-TSO litmus tests against the abstract machine ==
  SB                 allowed   observed           0 runs (exhaustive)  OK
  SB+fences          forbidden not observed       0 runs (exhaustive)  OK
  SB+rmw             forbidden not observed       0 runs (exhaustive)  OK
  MP                 forbidden not observed       0 runs (exhaustive)  OK
  LB                 forbidden not observed       0 runs (exhaustive)  OK
  n6                 allowed   observed           0 runs (exhaustive)  OK
  n5                 forbidden not observed       0 runs (exhaustive)  OK
  IRIW               forbidden not observed       0 runs (exhaustive)  OK
  store-forwarding   forbidden not observed       0 runs (exhaustive)  OK
  rmw-atomic         forbidden not observed       0 runs (exhaustive)  OK
  memo store stores: 10 lookups, 10 hits (hit rate 1.000)

An entry is only valid for the configuration that wrote it, so the header
pins the test, bounds and reduction flags, and a mismatch is a clean
rejection, not a silently wrong proof:

  $ wsrepro tso-litmus --por --memo-file stores
  == Classic x86-TSO litmus tests against the abstract machine ==
  stores/SB: memo store was built with por = false; this run uses true
  [2]

Corruption is rejected the same way — a mangled entry shard and a
rewritten header are both diagnosed, never silently trusted:

  $ echo 'not a number' > stores/MP/shard-0.dat
  $ wsrepro tso-litmus --dpor --memo-file stores
  == Classic x86-TSO litmus tests against the abstract machine ==
  stores/MP/shard-0.dat: malformed entry not a number
  [2]

  $ echo '{"schema":"bogus"}' > stores/SB/header.json
  $ wsrepro tso-litmus --dpor --memo-file stores
  == Classic x86-TSO litmus tests against the abstract machine ==
  stores/SB: memo store has schema "bogus"; this build expects "wsrepro-memo/v1"
  [2]

`wsrepro explore` takes the same flags; its store additionally pins the
scenario spec and preemption bound, and the warm-hit counters surface in
the summary line:

  $ wsrepro explore -q ff-the --dpor --memo-file ff.store | tail -n 1
  no safety violation found
  $ wsrepro explore -q ff-the --dpor --memo-file ff.store | head -n 1
  ff-the: 0 complete runs, 0 truncated, 0 deadlocks, 0 pruned branches, 1 memo hits (100.0% hit rate), 0 sleep-set skips, memo store 1/1 warm hits, peak depth 0
  $ wsrepro explore -q ff-the --dpor --preemptions 2 --memo-file ff.store
  memo store: ff.store: memo store was built with preemption_bound = 3; this run uses 2
  [2]
