The bench harness has a machine-readable mode for tracking the simulator's
performance over time. `--json --smoke` runs each probe with tiny iteration
counts (the numbers are meaningless, the shape is the contract) and `--out`
writes the file the repo tracks as BENCH_simulator.json:

  $ wsbench --json --smoke --out bench.json
  wrote bench.json

The emitted document always carries the schema id and the full metric set,
with one fixed-format float per metric. v8 adds the stage-attribution
pair — the service-throughput tax of per-cell qwait/dispatch/service
stamps and the per-observation cost of the rotating-window ring — next to
v7's sharded-plane numbers and v6's flight-recorder and native-pool
silicon numbers:

  $ grep -o '"schema": "[^"]*"' bench.json
  "schema": "wsrepro-bench/v8"
  $ grep -c '"mode": "smoke"' bench.json
  1
  $ grep -o '"[a-z0-9_]*":' bench.json | grep -v schema | grep -v mode | grep -v metrics
  "sim_batch_steps_per_sec":
  "sim_batch_steps_per_sec_telemetry":
  "sim_steps_per_sec_jobs4":
  "sim_steps_per_sec_jobs4_telemetry":
  "telemetry_overhead_pct":
  "registry_op_overhead_ns":
  "explorer_runs_per_sec":
  "explorer_por_runs_per_sec":
  "explorer_dpor_runs_per_sec":
  "por_reduction_factor":
  "dpor_reduction_factor":
  "frontier_steal_rate":
  "snapshot_restore_ns":
  "fig10_wall_s":
  "open_sim_p99_ticks":
  "fingerprint_probe_cells":
  "fingerprint_ns":
  "memo_lookup_ns":
  "memo_store_lookup_ns":
  "native_fib_tasks_per_sec":
  "native_graph_tasks_per_sec":
  "native_service_rps":
  "native_service_p99_ns":
  "flight_recorder_event_ns":
  "flight_overhead_pct":
  "stage_attribution_overhead_pct":
  "windowed_record_ns":

The probe shapes behind each number are documented in `--help` (they are
what makes values comparable across commits):

  $ wsbench --help | grep -c 'Probe shapes'
  1

`--check` validates that contract (CI runs it against the tracked baseline
so schema drift fails the build) and then gates the live/recorded numbers:
the telemetry-disabled stepping rate against the recorded one (the no-sink
guard must stay free), the recorded jobs-4 telemetry overhead and per-op
registry accounting cost against absolute ceilings (the sharded plane must
keep multi-domain instrumentation at single-domain cost), the live
snapshot-restore cost against the recorded one (the snapshot path must not
quietly re-acquire an O(depth) replay), the recorded native metrics for
positivity (a zero means a probe silently produced nothing — e.g. a hung
pool or an unobserved histogram), the deterministic open-system p99 for
exact reproduction on a live re-run, and a live fig10 column against the
recorded wall time. v6's flight-recorder gates carry over: the recorded
per-event cost under an absolute ceiling plus a live re-measure, and the
recorded recorder-on service overhead under its ceiling. v8 adds the
stage-attribution overhead under its own ceiling (5% full mode) and the
windowed-record cost (absolute ceiling plus a live re-measure). The
numbers are machine-dependent, so normalize them:

  $ wsbench --check bench.json | sed -E 's/[+-]?[0-9][0-9.]*/N/g'
  bench.json: schema wsrepro-bench/vN OK (N metrics)
  bench.json: telemetry-disabled stepping N Msteps/s (recorded N, delta N%) OK
  bench.json: recorded telemetry overhead N% (ceiling N%) OK
  bench.json: recorded registry op overhead N ns (ceiling N) OK
  bench.json: snapshot restore N ns (recorded N, budget N) OK
  bench.json: fingerprint probe shape N live cells (recorded N) OK
  bench.json: fingerprint N ns (recorded N, budget N) OK
  bench.json: memo-store lookup N ns (recorded N, budget N) OK
  bench.json: reduction factors por Nx, dpor Nx (want dpor >= por >= N) OK
  bench.json: dpor rate N runs/s, frontier steal rate N OK
  bench.json: native metrics all positive OK
  bench.json: open-system probe pN N ticks (recorded N, want exact) OK
  bench.json: figN column N s live (recorded N, budget N) OK
  bench.json: flight-recorder event N ns live (recorded N, ceiling N, budget N) OK
  bench.json: recorded flight overhead N% (ceiling N%) OK
  bench.json: recorded stage-attribution overhead N% (ceiling N%) OK
  bench.json: windowed record N ns live (recorded N, ceiling N, budget N) OK

and fails loudly when a metric disappears or the schema id changes:

  $ sed -e 's/fingerprint_ns/fingerprnt_ns/' -e 's|wsrepro-bench/v8|wsrepro-bench/v0|' bench.json > drifted.json
  $ wsbench --check drifted.json
  drifted.json: missing or wrong schema id (want wsrepro-bench/v8)
  drifted.json: missing metric "fingerprint_ns"
  [1]
