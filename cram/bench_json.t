The bench harness has a machine-readable mode for tracking the simulator's
performance over time. `--json --smoke` runs each probe with tiny iteration
counts (the numbers are meaningless, the shape is the contract) and `--out`
writes the file the repo tracks as BENCH_simulator.json:

  $ wsbench --json --smoke --out bench.json
  wrote bench.json

The emitted document always carries the schema id and the full metric set,
with one fixed-format float per metric. v2 records the telemetry-enabled
stepping rate next to the plain one, plus their ratio as a percentage:

  $ grep -o '"schema": "[^"]*"' bench.json
  "schema": "wsrepro-bench/v2"
  $ grep -c '"mode": "smoke"' bench.json
  1
  $ grep -o '"[a-z0-9_]*":' bench.json | grep -v schema | grep -v mode | grep -v metrics
  "sim_batch_steps_per_sec":
  "sim_batch_steps_per_sec_telemetry":
  "telemetry_overhead_pct":
  "explorer_runs_per_sec":
  "fig10_wall_s":
  "fingerprint_ns":
  "memo_lookup_ns":

`--check` validates that contract (CI runs it against the tracked baseline
so schema drift fails the build) and then measures the live
telemetry-disabled stepping rate against the recorded one — if the
no-sink guard ever stops being free, the second line says REGRESSED and
the check exits 1. The numbers are machine-dependent, so normalize them:

  $ wsbench --check bench.json | sed -E 's/[+-]?[0-9][0-9.]*/N/g'
  bench.json: schema wsrepro-bench/vN OK (N metrics)
  bench.json: telemetry-disabled stepping N Msteps/s (recorded N, delta N%) OK

and fails loudly when a metric disappears or the schema id changes:

  $ sed -e 's/fingerprint_ns/fingerprnt_ns/' -e 's|wsrepro-bench/v2|wsrepro-bench/v0|' bench.json > drifted.json
  $ wsbench --check drifted.json
  drifted.json: missing or wrong schema id (want wsrepro-bench/v2)
  drifted.json: missing metric "fingerprint_ns"
  [1]
