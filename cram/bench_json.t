The bench harness has a machine-readable mode for tracking the simulator's
performance over time. `--json --smoke` runs each probe with tiny iteration
counts (the numbers are meaningless, the shape is the contract) and `--out`
writes the file the repo tracks as BENCH_simulator.json:

  $ wsbench --json --smoke --out bench.json
  wrote bench.json

The emitted document always carries the schema id and the full metric set,
with one fixed-format float per metric:

  $ grep -o '"schema": "[^"]*"' bench.json
  "schema": "wsrepro-bench/v1"
  $ grep -c '"mode": "smoke"' bench.json
  1
  $ grep -o '"[a-z0-9_]*":' bench.json | grep -v schema | grep -v mode | grep -v metrics
  "sim_batch_steps_per_sec":
  "explorer_runs_per_sec":
  "fig10_wall_s":
  "fingerprint_ns":
  "memo_lookup_ns":

`--check` validates that contract (CI runs it against the tracked baseline
so schema drift fails the build):

  $ wsbench --check bench.json
  bench.json: schema wsrepro-bench/v1 OK (5 metrics)

and fails loudly when a metric disappears or the schema id changes:

  $ sed -e 's/fingerprint_ns/fingerprnt_ns/' -e 's|wsrepro-bench/v1|wsrepro-bench/v0|' bench.json > drifted.json
  $ wsbench --check drifted.json
  drifted.json: missing or wrong schema id (want wsrepro-bench/v1)
  drifted.json: missing metric "fingerprint_ns"
  [1]
