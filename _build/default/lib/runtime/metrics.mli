(** Per-run scheduler metrics (Fig. 11b's "% of work completed by stealing"
    and general steal/abort accounting). *)

type worker = {
  mutable tasks_run : int;
  mutable tasks_run_stolen : int;  (** of which obtained by stealing *)
  mutable puts : int;
  mutable takes : int;
  mutable take_empties : int;
  mutable steal_attempts : int;
  mutable steals : int;
  mutable steal_empties : int;
  mutable steal_aborts : int;
}

type t = { workers : worker array }

val create : int -> t
val total_tasks : t -> int
val total_steals : t -> int
val total_aborts : t -> int
val stolen_task_pct : t -> float
(** Percentage of executed tasks that were obtained by stealing. *)

val pp : Format.formatter -> t -> unit
