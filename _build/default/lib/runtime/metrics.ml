type worker = {
  mutable tasks_run : int;
  mutable tasks_run_stolen : int;
  mutable puts : int;
  mutable takes : int;
  mutable take_empties : int;
  mutable steal_attempts : int;
  mutable steals : int;
  mutable steal_empties : int;
  mutable steal_aborts : int;
}

type t = { workers : worker array }

let create n =
  {
    workers =
      Array.init n (fun _ ->
          {
            tasks_run = 0;
            tasks_run_stolen = 0;
            puts = 0;
            takes = 0;
            take_empties = 0;
            steal_attempts = 0;
            steals = 0;
            steal_empties = 0;
            steal_aborts = 0;
          });
  }

let sum t f = Array.fold_left (fun acc w -> acc + f w) 0 t.workers
let total_tasks t = sum t (fun w -> w.tasks_run)
let total_steals t = sum t (fun w -> w.steals)
let total_aborts t = sum t (fun w -> w.steal_aborts)

let stolen_task_pct t =
  let total = total_tasks t in
  if total = 0 then 0.0
  else 100.0 *. float_of_int (sum t (fun w -> w.tasks_run_stolen)) /. float_of_int total

let pp ppf t =
  Format.fprintf ppf
    "@[tasks=%d stolen=%.2f%% steals=%d aborts=%d empties=%d@]" (total_tasks t)
    (stolen_task_pct t) (total_steals t) (total_aborts t)
    (sum t (fun w -> w.steal_empties))
