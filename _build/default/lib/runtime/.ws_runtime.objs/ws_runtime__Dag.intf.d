lib/runtime/dag.mli: Workload
