lib/runtime/engine.ml: Addr Array Hashtbl List Machine Memory Metrics Option Printf Program Random Sched Store_buffer Timing Tso Workload Ws_core
