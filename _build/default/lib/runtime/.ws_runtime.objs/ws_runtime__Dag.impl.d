lib/runtime/dag.ml: Array List Printf Queue Tso Workload
