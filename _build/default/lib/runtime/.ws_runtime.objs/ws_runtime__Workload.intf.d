lib/runtime/workload.mli: Tso
