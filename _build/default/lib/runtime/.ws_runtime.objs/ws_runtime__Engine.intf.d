lib/runtime/engine.mli: Hashtbl Metrics Tso Workload Ws_core
