lib/runtime/workload.ml: Fun List Tso
