(** Dynamic task workloads executed by the work-stealing runtime.

    Tasks are integer ids. A workload provides the root tasks and an
    [execute] callback; [execute] runs {e inside a simulated worker thread},
    so it may — and for realistic modelling should — perform {!Tso.Program}
    effects: [work] for its computational cost, and loads/stores/CAS for any
    shared state of its own (e.g. the visited flags of the graph
    algorithms). It returns the tasks it spawns, which the runtime puts on
    the executing worker's queue.

    [init] is called by the engine (host-side, before any thread runs) with
    the machine the workload will execute on; workloads that keep shared
    state in simulated memory allocate it there. *)

type t = {
  name : string;
  roots : int list;
  init : Tso.Machine.t -> unit;
  execute : worker:int -> int -> int list;
  expected_total : int option;
      (** total distinct tasks, when known, so the engine can check that
          none were lost *)
}

val make :
  name:string ->
  roots:int list ->
  execute:(worker:int -> int -> int list) ->
  ?init:(Tso.Machine.t -> unit) ->
  ?expected_total:int ->
  unit ->
  t

val uniform : name:string -> tasks:int -> work:int -> unit -> t
(** [tasks] independent root tasks of [work] cycles each: the paper's §5
    "W unit-length tasks" scenario, and a convenient stress shape. *)
