type comp =
  | Leaf of int
  | Fork of { before : int; children : comp list; after : int }
  | Seq of comp list

type t = {
  work : int array;  (* per-task cycles *)
  deps : int array;  (* incoming-edge count *)
  children : int list array;  (* tasks unblocked when this one completes *)
}

type builder = {
  mutable b_work : int list;  (* reversed *)
  mutable b_n : int;
  mutable b_edges : (int * int) list;
}

let add b work =
  let id = b.b_n in
  b.b_n <- id + 1;
  b.b_work <- work :: b.b_work;
  id

let edge b src dst = b.b_edges <- (src, dst) :: b.b_edges

(* Returns (entry, exit) task ids of the sub-computation. *)
let rec build b = function
  | Leaf w ->
      let id = add b w in
      (id, id)
  | Fork { before; children; after } ->
      let fork = add b before in
      let join = add b after in
      edge b fork join;
      List.iter
        (fun child ->
          let entry, exit_ = build b child in
          edge b fork entry;
          edge b exit_ join)
        children;
      (fork, join)
  | Seq comps -> (
      let ends = List.map (build b) comps in
      match ends with
      | [] ->
          let id = add b 0 in
          (id, id)
      | (entry0, exit0) :: rest ->
          let exit_ =
            List.fold_left
              (fun prev_exit (entry, exit_) ->
                edge b prev_exit entry;
                exit_)
              exit0 rest
          in
          (entry0, exit_))

let of_comp comp =
  let b = { b_work = []; b_n = 0; b_edges = [] } in
  let _ = build b comp in
  let n = b.b_n in
  let work = Array.of_list (List.rev b.b_work) in
  let deps = Array.make n 0 in
  let children = Array.make n [] in
  List.iter
    (fun (src, dst) ->
      deps.(dst) <- deps.(dst) + 1;
      children.(src) <- dst :: children.(src))
    b.b_edges;
  { work; deps; children }

let size t = Array.length t.work
let total_work t = Array.fold_left ( + ) 0 t.work

let critical_path t =
  let n = size t in
  let dist = Array.make n (-1) in
  (* tasks are numbered so that edges go from lower fork ids to higher join
     ids only within a fork; a generic topological pass is safer. *)
  let indeg = Array.copy t.deps in
  let q = Queue.create () in
  for i = 0 to n - 1 do
    if indeg.(i) = 0 then begin
      dist.(i) <- t.work.(i);
      Queue.push i q
    end
  done;
  let best = ref 0 in
  while not (Queue.is_empty q) do
    let i = Queue.pop q in
    best := max !best dist.(i);
    List.iter
      (fun j ->
        dist.(j) <- max dist.(j) (dist.(i) + t.work.(j));
        indeg.(j) <- indeg.(j) - 1;
        if indeg.(j) = 0 then Queue.push j q)
      t.children.(i)
  done;
  !best

let instantiate t ~name =
  let remaining = Array.copy t.deps in
  let n = size t in
  let roots = ref [] in
  for i = n - 1 downto 0 do
    if t.deps.(i) = 0 then roots := i :: !roots
  done;
  let executed = Array.make n false in
  let execute ~worker:_ id =
    if executed.(id) then
      failwith
        (Printf.sprintf "DAG workload %s: task %d executed twice" name id);
    executed.(id) <- true;
    Tso.Program.work t.work.(id);
    List.filter
      (fun j ->
        remaining.(j) <- remaining.(j) - 1;
        remaining.(j) = 0)
      t.children.(id)
  in
  Workload.make ~name ~roots:!roots ~execute ~expected_total:n ()
