type t = {
  name : string;
  roots : int list;
  init : Tso.Machine.t -> unit;
  execute : worker:int -> int -> int list;
  expected_total : int option;
}

let make ~name ~roots ~execute ?(init = fun _ -> ()) ?expected_total () =
  { name; roots; init; execute; expected_total }

let uniform ~name ~tasks ~work () =
  make ~name
    ~roots:(List.init tasks Fun.id)
    ~execute:(fun ~worker:_ _ ->
      Tso.Program.work work;
      [])
    ~expected_total:tasks ()
