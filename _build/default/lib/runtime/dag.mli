(** Fork–join task DAGs and their translation to runtime workloads.

    The Table-1 benchmarks are expressed as computation trees ({!comp}):
    a [Fork] does [before] cycles of work, spawns its children, and joins
    into [after] cycles of continuation work. The translation produces one
    task per strand plus one join task per fork, with dependency counting
    done host-side (exactly-once queues only — the DAG experiments all use
    the THE/Chase-Lev family). *)

type comp =
  | Leaf of int  (** [work] cycles *)
  | Fork of { before : int; children : comp list; after : int }
  | Seq of comp list
      (** sequential composition (iterative benchmarks: one sweep per
          element, each waiting for the previous) *)

type t
(** An immutable DAG; instantiate per run. *)

val of_comp : comp -> t
val size : t -> int
(** Number of tasks. *)

val total_work : t -> int
(** Sum of all task costs, i.e. the T{_1} of the computation. *)

val critical_path : t -> int
(** Longest weighted path, i.e. the T{_∞} of the computation. *)

val instantiate : t -> name:string -> Workload.t
(** Fresh dependence counters; the resulting workload is single-use. *)
