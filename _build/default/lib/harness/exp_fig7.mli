(** Figures 6 and 7: measuring the store buffer's capacity by timing
    sequences of stores of increasing length against a long-latency filler
    (§7.2). The knee of the cycles-per-iteration curve is the documented
    capacity: 32 on Westmere-EX, 42 on Haswell. *)

type result = {
  machine : Machine_config.t;
  points : (int * float) list;
  detected : int;
}

val compute : Machine_config.t -> result
val render : result -> string
val run : unit -> unit
(** Both machines. *)
