type row = {
  bench : string;
  baseline : float;
  cells : (string * float) list;
}

let compute machine ?(repeats = 3) ?benches () =
  let benches =
    match benches with
    | Some names -> List.map Ws_workloads.Cilk_suite.find names
    | None -> Ws_workloads.Cilk_suite.all
  in
  let seeds = List.init repeats (fun i -> 11 + (100 * i)) in
  List.map
    (fun (b : Ws_workloads.Cilk_suite.bench) ->
      let dag = Ws_workloads.Cilk_suite.dag b in
      let median_of variant =
        Stats.median (Runner.run_dag machine variant ~seeds dag ~name:b.name)
      in
      let baseline = median_of Variants.the_baseline in
      let cells =
        List.map
          (fun v -> (v.Variants.label, 100.0 *. median_of v /. baseline))
          Variants.fig10
      in
      { bench = b.name; baseline; cells })
    benches

let geomean_row rows =
  match rows with
  | [] -> []
  | first :: _ ->
      List.map
        (fun (label, _) ->
          ( label,
            Stats.geomean
              (List.map (fun r -> List.assoc label r.cells) rows) ))
        first.cells

let render machine rows =
  let labels = List.map (fun v -> v.Variants.label) Variants.fig10 in
  let header = "Benchmark" :: "THE (cyc)" :: labels in
  let body =
    List.map
      (fun r ->
        r.bench
        :: Printf.sprintf "%.0f" r.baseline
        :: List.map (fun l -> Tablefmt.pct (List.assoc l r.cells)) labels)
      rows
  in
  let geo =
    "Geo mean" :: ""
    :: List.map (fun (_, v) -> Tablefmt.pct v) (geomean_row rows)
  in
  Printf.sprintf "-- %s: %d workers, S = %d, default delta = %d --\n"
    machine.Machine_config.name machine.Machine_config.workers
    machine.Machine_config.reorder_bound
    (Machine_config.default_delta machine)
  ^ Tablefmt.render ~header (body @ [ geo ])

let run machine ?repeats ?benches () =
  Printf.printf
    "== Figure 10 (%s): CilkPlus suite, normalized to the THE baseline ==\n"
    machine.Machine_config.name;
  print_string (render machine (compute machine ?repeats ?benches ()))
