type row = {
  bench : string;
  fenced : float;
  fence_free : float;
  normalized : float;
}

let compute ?(machine = Machine_config.haswell) ?(seed = 1) () =
  List.map
    (fun name ->
      let b = Ws_workloads.Cilk_suite.find name in
      let dag = Ws_workloads.Cilk_suite.dag b in
      let one variant =
        List.hd
          (Runner.run_dag machine variant ~workers:1 ~seeds:[ seed ] dag ~name)
      in
      let fenced = one Variants.the_baseline in
      let fence_free = one Variants.the_no_fence in
      { bench = name; fenced; fence_free; normalized = 100.0 *. fence_free /. fenced })
    Ws_workloads.Cilk_suite.fig1_names

let render rows =
  let table =
    Tablefmt.render
      ~header:[ "Benchmark"; "fenced (cyc)"; "fence-free (cyc)"; "normalized" ]
      (List.map
         (fun r ->
           [
             r.bench;
             Printf.sprintf "%.0f" r.fenced;
             Printf.sprintf "%.0f" r.fence_free;
             Tablefmt.pct r.normalized;
           ])
         rows)
  in
  table
  ^ Printf.sprintf "geomean: %s\n"
      (Tablefmt.pct (Stats.geomean (List.map (fun r -> r.normalized) rows)))

let run ?machine () =
  print_endline "== Figure 1: single-threaded time without the take() fence ==";
  print_string (render (compute ?machine ()))
