(** Table 1: the benchmark applications, their paper inputs, our scaled
    inputs, and the resulting DAG statistics (task count, total work T1,
    critical path T-inf, average parallelism). *)

val render : unit -> string
val run : unit -> unit
