type result = {
  machine : Machine_config.t;
  points : (int * float) list;
  detected : int;
}

let stores_list (m : Machine_config.t) =
  let c = m.capacity_model.Ws_litmus.Capacity.capacity in
  [ c - 4; c - 2; c - 1; c; c + 1; c + 2; c + 4; c + 8; c + 12; c + 16; c + 20 ]

let compute machine =
  let points =
    Ws_litmus.Capacity.sweep machine.Machine_config.capacity_model
      ~stores_list:(stores_list machine) ~iterations:2000
  in
  { machine; points; detected = Ws_litmus.Capacity.detect_capacity points }

let render r =
  let rows =
    List.map
      (fun (n, c) ->
        [
          string_of_int n;
          Printf.sprintf "%.1f" c;
          (if n = r.detected then "<- knee (documented capacity)" else "");
        ])
      r.points
  in
  Printf.sprintf "-- %s (documented capacity %d, measured %d) --\n"
    r.machine.Machine_config.name
    r.machine.Machine_config.capacity_model.Ws_litmus.Capacity.capacity
    r.detected
  ^ Tablefmt.render ~header:[ "# stores"; "cycles/iter"; "" ] rows

let run () =
  print_endline
    "== Figure 7: store buffer capacity measurement (knee of the curve) ==";
  List.iter (fun m -> print_string (render (compute m))) Machine_config.all
