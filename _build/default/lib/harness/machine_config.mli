(** Simulated-CPU configurations standing in for the paper's two testbeds
    (§8 "Platform"). Worker counts match the paper's no-hyperthreading runs;
    reorder bounds are the paper's measured values (store buffer capacity
    plus the egress entry B). *)

type t = {
  name : string;
  workers : int;
  sb_capacity : int;  (** architectural store-buffer entries *)
  reorder_bound : int;  (** the measured S used to derive δ: capacity + 1 *)
  costs : Tso.Timing.cost_model;
  capacity_model : Ws_litmus.Capacity.model;
}

val westmere_ex : t
(** Xeon E7-4870: 10 workers, 32-entry buffer, S = 33. *)

val haswell : t
(** Core i7-4770: 4 workers, 42-entry buffer, S = 43. *)

val sparc_t2 : t
(** UltraSPARC T2-class machine: the other mainstream TSO architecture the
    paper's claim covers (§1, §7). 8 workers and a small 8-entry per-strand
    store buffer with no observable egress extension — so the default
    δ = ⌈S/2⌉ is just 4 and FF-THE is usable out of the box, unlike on the
    deep-buffered x86 parts. Not part of the paper's evaluation; included to
    exercise the S-dependence of the algorithms. *)

val primary : t list
(** The paper's two testbeds (Westmere-EX, Haswell) — what Fig. 10 loops
    over. *)

val all : t list
(** [primary] plus the SPARC configuration. *)

val find : string -> t

val default_delta : t -> int
(** δ = ⌈S/2⌉: the runtime performs one client store after each take (§8.1). *)

val delta_for : t -> client_stores:int -> int
(** δ = ⌈S/(x+1)⌉ for a client doing [x] stores between takes (§4). *)
