let render ~header rows =
  let all = header :: rows in
  let cols = List.fold_left (fun acc r -> max acc (List.length r)) 0 all in
  let width = Array.make cols 0 in
  List.iter
    (List.iteri (fun i cell -> width.(i) <- max width.(i) (String.length cell)))
    all;
  let buf = Buffer.create 1024 in
  let emit row =
    List.iteri
      (fun i cell ->
        if i > 0 then Buffer.add_string buf "  ";
        Buffer.add_string buf cell;
        Buffer.add_string buf (String.make (width.(i) - String.length cell) ' '))
      row;
    Buffer.add_char buf '\n'
  in
  emit header;
  Buffer.add_string buf
    (String.make
       (Array.fold_left ( + ) 0 width + (2 * (cols - 1)))
       '-');
  Buffer.add_char buf '\n';
  List.iter emit rows;
  Buffer.contents buf

let print ~header rows = print_string (render ~header rows)
let pct x = Printf.sprintf "%.1f%%" x
let f1 x = Printf.sprintf "%.1f" x
