(** The queue configurations evaluated in §8. *)

type t = {
  label : string;  (** as in the Fig. 10 legend *)
  queue : string;  (** registry name *)
  delta_of : Machine_config.t -> int;
  worker_fence : bool;
}

val the_baseline : t
(** Stock CilkPlus THE — the 100% line of Fig. 10. *)

val the_no_fence : t
(** THE with the take-fence removed, single-worker-safe only (Fig. 1). *)

val fig10 : t list
(** FF-THE, FF-THE δ=4, THEP δ=∞, THEP, THEP δ=4 — Fig. 10's bar order. *)

val fig11 : t list
(** Chase-Lev (baseline), idempotent double-ended FIFO, idempotent LIFO,
    FF-CL — Fig. 11's bar order. *)

val delta_to_string : Machine_config.t -> t -> string
