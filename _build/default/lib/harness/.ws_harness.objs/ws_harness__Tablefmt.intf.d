lib/harness/tablefmt.mli:
