lib/harness/exp_fig11.mli: Machine_config Ws_workloads
