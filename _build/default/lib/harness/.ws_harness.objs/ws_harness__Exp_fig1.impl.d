lib/harness/exp_fig1.ml: List Machine_config Printf Runner Stats Tablefmt Variants Ws_workloads
