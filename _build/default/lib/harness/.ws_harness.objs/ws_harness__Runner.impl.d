lib/harness/runner.ml: List Machine_config Option Printf Tso Variants Ws_core Ws_runtime Ws_workloads
