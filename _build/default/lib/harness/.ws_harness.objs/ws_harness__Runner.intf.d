lib/harness/runner.mli: Machine_config Variants Ws_runtime Ws_workloads
