lib/harness/exp_table1.ml: List Printf Tablefmt Ws_runtime Ws_workloads
