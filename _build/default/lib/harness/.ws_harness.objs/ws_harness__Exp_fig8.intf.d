lib/harness/exp_fig8.mli: Ws_litmus
