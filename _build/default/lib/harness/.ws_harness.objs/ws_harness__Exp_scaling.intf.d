lib/harness/exp_scaling.mli: Machine_config
