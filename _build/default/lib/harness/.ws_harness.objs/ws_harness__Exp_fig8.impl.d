lib/harness/exp_fig8.ml: Buffer List Printf Tablefmt Ws_litmus
