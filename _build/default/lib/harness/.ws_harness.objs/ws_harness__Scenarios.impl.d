lib/harness/scenarios.ml: Array Explore Fun List Machine Memory Printf Program Random Sched Store_buffer String Tso Ws_core
