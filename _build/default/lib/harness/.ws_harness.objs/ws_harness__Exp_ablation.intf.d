lib/harness/exp_ablation.mli: Machine_config
