lib/harness/scenarios.mli: Tso
