lib/harness/exp_fig10.ml: List Machine_config Printf Runner Stats Tablefmt Variants Ws_workloads
