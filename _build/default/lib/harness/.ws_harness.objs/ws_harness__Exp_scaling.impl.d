lib/harness/exp_scaling.ml: List Machine_config Printf Runner Tablefmt Variants Ws_workloads
