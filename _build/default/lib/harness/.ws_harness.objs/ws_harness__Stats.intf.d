lib/harness/stats.mli:
