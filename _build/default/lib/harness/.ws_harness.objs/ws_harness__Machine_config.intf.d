lib/harness/machine_config.mli: Tso Ws_litmus
