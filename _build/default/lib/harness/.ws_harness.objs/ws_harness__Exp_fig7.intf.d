lib/harness/exp_fig7.mli: Machine_config
