lib/harness/variants.mli: Machine_config
