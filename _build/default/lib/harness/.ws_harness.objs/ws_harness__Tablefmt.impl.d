lib/harness/tablefmt.ml: Array Buffer List Printf String
