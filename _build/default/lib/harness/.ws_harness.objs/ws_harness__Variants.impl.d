lib/harness/variants.ml: Machine_config
