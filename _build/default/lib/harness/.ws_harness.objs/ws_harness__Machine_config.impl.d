lib/harness/machine_config.ml: List String Tso Ws_litmus
