lib/harness/exp_ablation.ml: Array List Machine_config Printf Runner Tablefmt Tso Variants Ws_runtime Ws_workloads
