lib/harness/exp_fig1.mli: Machine_config
