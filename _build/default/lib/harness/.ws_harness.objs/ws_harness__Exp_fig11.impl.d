lib/harness/exp_fig11.ml: List Machine_config Printf Runner Stats Tablefmt Variants Ws_runtime Ws_workloads
