lib/harness/exp_fig7.ml: List Machine_config Printf Tablefmt Ws_litmus
