lib/harness/exp_fig10.mli: Machine_config
