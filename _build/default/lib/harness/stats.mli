(** Summary statistics used by the experiment harness (the paper reports
    medians with 10th/90th percentiles, and geometric means across the
    suite). *)

val median : float list -> float
val percentile : float -> float list -> float
(** [percentile p xs] with [p] in [0, 100], linear interpolation. *)

val geomean : float list -> float
val mean : float list -> float

type summary = { median : float; p10 : float; p90 : float }

val summarize : float list -> summary
