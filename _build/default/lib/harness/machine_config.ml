type t = {
  name : string;
  workers : int;
  sb_capacity : int;
  reorder_bound : int;
  costs : Tso.Timing.cost_model;
  capacity_model : Ws_litmus.Capacity.model;
}

(* Fence/RMW base costs and the drain latency set the share of take()
   overhead that the fence-free algorithms recover; these land the Fig. 1
   bands (see EXPERIMENTS.md for the calibration). *)
let base_costs =
  {
    Tso.Timing.load_cost = 1;
    store_cost = 1;
    rmw_cost = 22;
    fence_cost = 22;
    drain_latency = 6;
    pause_cost = 4;
  }

let westmere_ex =
  {
    name = "westmere-ex";
    workers = 10;
    sb_capacity = 32;
    reorder_bound = 33;
    costs = base_costs;
    capacity_model = Ws_litmus.Capacity.westmere_model;
  }

let haswell =
  {
    name = "haswell";
    workers = 4;
    sb_capacity = 42;
    reorder_bound = 43;
    costs = { base_costs with rmw_cost = 20; fence_cost = 20 };
    capacity_model = Ws_litmus.Capacity.haswell_model;
  }

let sparc_t2 =
  {
    name = "sparc-t2";
    workers = 8;
    sb_capacity = 8;
    reorder_bound = 8;
    (* in-order cores: memory ops relatively costlier than on the OoO x86s *)
    costs = { base_costs with rmw_cost = 28; fence_cost = 28; drain_latency = 8 };
    capacity_model =
      {
        Ws_litmus.Capacity.capacity = 8;
        drain_latency = 8;
        filler_latency = 110;
        egress = false;
      };
  }

let primary = [ westmere_ex; haswell ]
let all = primary @ [ sparc_t2 ]
let find name = List.find (fun m -> String.equal m.name name) all

let ceil_div a b = (a + b - 1) / b
let default_delta m = ceil_div m.reorder_bound 2
let delta_for m ~client_stores = ceil_div m.reorder_bound (client_stores + 1)
