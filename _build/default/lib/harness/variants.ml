type t = {
  label : string;
  queue : string;
  delta_of : Machine_config.t -> int;
  worker_fence : bool;
}

let the_baseline =
  { label = "THE"; queue = "the"; delta_of = (fun _ -> 1); worker_fence = true }

let the_no_fence =
  {
    label = "THE (no fence)";
    queue = "the";
    delta_of = (fun _ -> 1);
    worker_fence = false;
  }

let fig10 =
  [
    {
      label = "FF-THE";
      queue = "ff-the";
      delta_of = Machine_config.default_delta;
      worker_fence = false;
    };
    {
      label = "FF-THE d=4";
      queue = "ff-the";
      delta_of = (fun _ -> 4);
      worker_fence = false;
    };
    {
      label = "THEP d=inf";
      queue = "thep";
      delta_of = (fun _ -> max_int);
      worker_fence = false;
    };
    {
      label = "THEP";
      queue = "thep";
      delta_of = Machine_config.default_delta;
      worker_fence = false;
    };
    {
      label = "THEP d=4";
      queue = "thep";
      delta_of = (fun _ -> 4);
      worker_fence = false;
    };
  ]

let fig11 =
  [
    {
      label = "Chase-Lev";
      queue = "chase-lev";
      delta_of = (fun _ -> 1);
      worker_fence = true;
    };
    {
      label = "Idempotent d.e. FIFO";
      queue = "idempotent-fifo";
      delta_of = (fun _ -> 1);
      worker_fence = false;
    };
    {
      label = "Idempotent LIFO";
      queue = "idempotent-lifo";
      delta_of = (fun _ -> 1);
      worker_fence = false;
    };
    {
      label = "FF-CL";
      queue = "ff-cl";
      delta_of = Machine_config.default_delta;
      worker_fence = false;
    };
  ]

let delta_to_string machine v =
  let d = v.delta_of machine in
  if d = max_int then "inf" else string_of_int d
