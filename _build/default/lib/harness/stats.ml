let percentile p xs =
  match List.sort compare xs with
  | [] -> invalid_arg "Stats.percentile: empty"
  | sorted ->
      let a = Array.of_list sorted in
      let n = Array.length a in
      if n = 1 then a.(0)
      else begin
        let rank = p /. 100.0 *. float_of_int (n - 1) in
        let lo = int_of_float (Float.floor rank) in
        let hi = min (lo + 1) (n - 1) in
        let frac = rank -. float_of_int lo in
        a.(lo) +. (frac *. (a.(hi) -. a.(lo)))
      end

let median xs = percentile 50.0 xs

let geomean xs =
  match xs with
  | [] -> invalid_arg "Stats.geomean: empty"
  | _ ->
      let n = float_of_int (List.length xs) in
      exp (List.fold_left (fun acc x -> acc +. log x) 0.0 xs /. n)

let mean xs =
  match xs with
  | [] -> invalid_arg "Stats.mean: empty"
  | _ -> List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)

type summary = { median : float; p10 : float; p90 : float }

let summarize xs =
  { median = median xs; p10 = percentile 10.0 xs; p90 = percentile 90.0 xs }
