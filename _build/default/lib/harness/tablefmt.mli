(** Minimal aligned-ASCII-table rendering for the experiment outputs. *)

val render : header:string list -> string list list -> string
(** Right-pads every column to its widest cell; header separated by a
    dashed rule. *)

val print : header:string list -> string list list -> unit
val pct : float -> string
(** "96.3%" *)

val f1 : float -> string
(** one decimal *)
