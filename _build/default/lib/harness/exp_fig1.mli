(** Figure 1: single-threaded execution time of the CilkPlus benchmarks when
    the worker does not issue a memory fence on task removal, normalized to
    the fenced runtime (%). One worker, no thieves — removing the fence is
    safe, and the whole difference is the fence stall. *)

type row = {
  bench : string;
  fenced : float;  (** makespan, cycles *)
  fence_free : float;
  normalized : float;  (** fence_free / fenced * 100 *)
}

val compute : ?machine:Machine_config.t -> ?seed:int -> unit -> row list
(** Defaults: Haswell (as the paper's Fig. 1), the seven Fig. 1 benchmarks. *)

val render : row list -> string
val run : ?machine:Machine_config.t -> unit -> unit
