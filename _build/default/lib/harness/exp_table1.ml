let render () =
  let rows =
    List.map
      (fun (b : Ws_workloads.Cilk_suite.bench) ->
        let dag = Ws_workloads.Cilk_suite.dag b in
        let t1 = Ws_runtime.Dag.total_work dag in
        let tinf = Ws_runtime.Dag.critical_path dag in
        [
          b.name;
          b.description;
          b.paper_input;
          b.our_input;
          string_of_int (Ws_runtime.Dag.size dag);
          string_of_int t1;
          string_of_int tinf;
          Printf.sprintf "%.1f" (float_of_int t1 /. float_of_int tinf);
        ])
      Ws_workloads.Cilk_suite.all
  in
  Tablefmt.render
    ~header:
      [
        "Benchmark"; "Description"; "Paper input"; "Our input"; "Tasks";
        "T1 (cyc)"; "Tinf (cyc)"; "Parallelism";
      ]
    rows

let run () =
  print_endline "== Table 1: benchmark applications ==";
  print_string (render ())
