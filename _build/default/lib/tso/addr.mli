(** Symbolic addresses of shared-memory cells in the abstract TSO machine.

    An address is an index into a {!Memory.t}. Addresses are allocated (and
    given names, for tracing) through {!Memory.alloc} and
    {!Memory.alloc_array}; they are never forged from raw integers by
    clients. *)

type t = private int

val of_index : int -> t
(** [of_index i] is the address of cell [i]. Reserved for {!Memory}. *)

val to_index : t -> int
(** Index of the cell this address designates. *)

val offset : t -> int -> t
(** [offset a i] is the address [i] cells past [a] (array indexing). *)

val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit
