type t = int

let of_index i = i
let to_index a = a
let offset a i = a + i
let equal = Int.equal
let compare = Int.compare
let pp ppf a = Format.fprintf ppf "@%d" a
