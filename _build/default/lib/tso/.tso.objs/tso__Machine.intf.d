lib/tso/machine.mli: Addr Memory Store_buffer
