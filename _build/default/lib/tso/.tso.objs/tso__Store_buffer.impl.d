lib/tso/store_buffer.ml: Addr Format List Memory Option Queue
