lib/tso/explore.mli: Machine
