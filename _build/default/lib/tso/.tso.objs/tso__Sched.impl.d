lib/tso/sched.ml: List Machine Random
