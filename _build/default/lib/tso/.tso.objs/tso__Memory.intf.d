lib/tso/memory.mli: Addr Format
