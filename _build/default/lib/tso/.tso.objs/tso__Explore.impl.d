lib/tso/explore.ml: List Machine
