lib/tso/program.mli: Addr
