lib/tso/timing.mli: Machine Sched
