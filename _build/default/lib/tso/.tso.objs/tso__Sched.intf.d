lib/tso/sched.mli: Machine Random
