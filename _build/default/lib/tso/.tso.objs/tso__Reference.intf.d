lib/tso/reference.mli: Set
