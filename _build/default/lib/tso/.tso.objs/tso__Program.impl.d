lib/tso/program.ml: Addr Effect Format Printf
