lib/tso/trace.mli: Format Machine
