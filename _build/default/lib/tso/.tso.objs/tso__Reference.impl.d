lib/tso/reference.ml: Addr Array Explore List Machine Memory Printf Program Set
