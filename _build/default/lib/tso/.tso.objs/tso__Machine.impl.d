lib/tso/machine.ml: Addr Array Buffer Digest List Memory Program Store_buffer
