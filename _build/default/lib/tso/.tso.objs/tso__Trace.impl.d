lib/tso/trace.ml: Buffer Format List Machine Memory Printf Store_buffer String
