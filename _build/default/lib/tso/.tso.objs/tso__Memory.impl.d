lib/tso/memory.ml: Addr Array Format Printf
