lib/tso/addr.mli: Format
