lib/tso/store_buffer.mli: Addr Format Memory
