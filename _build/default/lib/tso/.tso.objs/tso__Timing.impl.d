lib/tso/timing.ml: Array Machine Queue Sched Store_buffer
