lib/tso/addr.ml: Format Int
