(** A second, independent implementation of bounded-TSO semantics, used to
    differentially test {!Machine}.

    Programs here are straight-line per-thread operation lists over a small
    array of cells. {!outcomes} enumerates — by plain recursive search over
    a purely functional state, sharing no code with the abstract machine —
    the {e complete} set of observable results (every load's value plus the
    final memory). The test suite generates random programs and checks that
    the machine's explorer observes exactly the same set: any divergence in
    either direction is a semantics bug in one of the two implementations. *)

type op =
  | Load of int  (** read cell i; the value read is part of the outcome *)
  | Store of int * int  (** write cell i *)
  | Fence
  | Cas of int * int * int  (** cell, expected, replacement; drains first *)

type program = op list array
(** one operation list per thread *)

type outcome = {
  reads : int list;  (** every Load's value, in (thread, program order) —
                         thread 0's loads first, then thread 1's, ... *)
  memory : int list;  (** final contents of the cells *)
}

val compare_outcome : outcome -> outcome -> int

module Outcome_set : Set.S with type elt = outcome

val outcomes : cells:int -> sb_capacity:int -> program -> Outcome_set.t
(** All results reachable under bounded TSO with the given store-buffer
    capacity. Exponential; intended for programs of a handful of ops. *)

val machine_outcomes :
  cells:int -> sb_capacity:int -> ?max_runs:int -> program -> Outcome_set.t
(** The same set, computed by driving {!Machine} with {!Explore} — the
    subject under test. *)
