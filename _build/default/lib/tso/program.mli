(** The instruction DSL in which thread programs are written.

    A thread program is an ordinary OCaml function that performs its shared
    memory accesses through the effects below. The machine resumes the
    program until it reaches its next instruction, at which point control
    returns to the scheduler, which decides when the instruction executes and
    interleaves it with store-buffer drains and other threads. Plain OCaml
    code between instructions runs atomically at resume time and is invisible
    to the memory model — use it for host-level bookkeeping (metrics, history
    recording), never to communicate between simulated threads. *)

val load : Addr.t -> int
(** Read a shared cell (store-buffer forwarding, then memory). *)

val store : Addr.t -> int -> unit
(** Write a shared cell through the store buffer. *)

val cas : Addr.t -> expect:int -> replace:int -> bool
(** Atomic compare-and-swap. As on x86, executing an atomic RMW drains the
    store buffer first; the machine makes the instruction runnable only when
    the issuing thread's buffer is empty. *)

val fetch_add : Addr.t -> int -> int
(** Atomic fetch-and-add, same buffer-drain semantics as {!cas}; returns the
    previous value. *)

val fence : unit -> unit
(** Full memory fence (MFENCE): runnable only once the issuing thread's store
    buffer has fully drained. This is the instruction whose removal the paper
    is about. *)

val work : int -> unit
(** Local computation costing the given number of cycles in timing mode; a
    no-op transition otherwise. Models client code between queue calls. *)

val label : string -> unit
(** Tracing marker; a no-op transition. *)

val spin_pause : unit -> unit
(** A PAUSE-like hint inside spin loops; a cheap no-op transition that gives
    the scheduler a preemption point. *)

(** {1 Machine-side representation} *)

(** The typed request a paused thread is waiting to execute. *)
type _ request =
  | Req_load : Addr.t -> int request
  | Req_store : Addr.t * int -> unit request
  | Req_cas : Addr.t * int * int -> bool request
  | Req_fetch_add : Addr.t * int -> int request
  | Req_fence : unit request
  | Req_work : int -> unit request
  | Req_label : string -> unit request
  | Req_pause : unit request

type status =
  | Done
  | Paused of paused

and paused = Paused_at : 'a request * ('a -> status) -> paused

val start : (unit -> unit) -> status
(** Run a thread program up to its first instruction (or completion). *)

val describe : 'a request -> string
(** Human-readable rendering of a request, for traces. *)

val describe_named : (Addr.t -> string) -> 'a request -> string
(** Like {!describe} but resolves addresses to their symbolic names. *)
