(** Bounded stateless model checking of machine programs.

    Explores the tree of scheduler choices by depth-first search. Because a
    thread program's continuation cannot be cloned, each branch is replayed
    from a fresh machine built by [mk] — standard stateless model checking.
    The search is bounded by depth, by a total-run budget, and optionally by
    a CHESS-style preemption bound (switching away from a thread whose next
    instruction is still enabled costs one preemption; drain and flush
    transitions are free, since TSO reordering lives in exactly those
    choices and must stay unrestricted).

    Used by the test suite to verify, over {e all} interleavings of small
    configurations, the safety properties of every queue algorithm: no task
    lost, no task duplicated (idempotent queues excepted), ABORT only when
    the bound permits it. *)

type instance = {
  machine : Machine.t;
  check : unit -> (unit, string) result;
      (** Invoked once the machine is quiescent; inspects host-level cells
          the thread programs filled in. *)
}

type stats = {
  runs : int;  (** complete (quiescent) runs checked *)
  truncated : int;  (** runs cut off by the depth bound *)
  deadlocks : int;
  pruned : int;  (** branches skipped by the preemption bound *)
  failures : (int list * string) list;
      (** failing runs: replayable choice sequence and message (at most
          [max_failures], newest last) *)
}

val search :
  ?max_depth:int ->
  ?max_runs:int ->
  ?preemption_bound:int option ->
  ?max_failures:int ->
  mk:(unit -> instance) ->
  unit ->
  stats
(** Defaults: [max_depth = 400], [max_runs = 200_000],
    [preemption_bound = None] (unbounded), [max_failures = 5]. *)

val replay_choices : mk:(unit -> instance) -> int list -> (unit, string) result
(** Re-run one recorded choice sequence (from {!stats.failures}) and return
    its check result; useful to shrink or debug a failure. *)

val next_choices : Machine.t -> Machine.transition list
(** The choice universe the explorer branches over at the machine's current
    state: enabled transitions after the no-op partial-order reduction.
    Recorded choice indices index into this list — use it to replay a
    failure step by step (e.g. with a {!Trace} attached). *)
