type _ Effect.t +=
  | E_load : Addr.t -> int Effect.t
  | E_store : Addr.t * int -> unit Effect.t
  | E_cas : Addr.t * int * int -> bool Effect.t
  | E_fetch_add : Addr.t * int -> int Effect.t
  | E_fence : unit Effect.t
  | E_work : int -> unit Effect.t
  | E_label : string -> unit Effect.t
  | E_pause : unit Effect.t

let load a = Effect.perform (E_load a)
let store a v = Effect.perform (E_store (a, v))
let cas a ~expect ~replace = Effect.perform (E_cas (a, expect, replace))
let fetch_add a d = Effect.perform (E_fetch_add (a, d))
let fence () = Effect.perform E_fence
let work n = if n > 0 then Effect.perform (E_work n)
let label s = Effect.perform (E_label s)
let spin_pause () = Effect.perform E_pause

type _ request =
  | Req_load : Addr.t -> int request
  | Req_store : Addr.t * int -> unit request
  | Req_cas : Addr.t * int * int -> bool request
  | Req_fetch_add : Addr.t * int -> int request
  | Req_fence : unit request
  | Req_work : int -> unit request
  | Req_label : string -> unit request
  | Req_pause : unit request

type status =
  | Done
  | Paused of paused

and paused = Paused_at : 'a request * ('a -> status) -> paused

let start body =
  let open Effect.Deep in
  match_with body ()
    {
      retc = (fun () -> Done);
      exnc = raise;
      effc =
        (fun (type a) (eff : a Effect.t) ->
          let pause (req : a request) =
            Some
              (fun (k : (a, status) continuation) ->
                Paused (Paused_at (req, fun v -> continue k v)))
          in
          match eff with
          | E_load a -> pause (Req_load a)
          | E_store (a, v) -> pause (Req_store (a, v))
          | E_cas (a, e, r) -> pause (Req_cas (a, e, r))
          | E_fetch_add (a, d) -> pause (Req_fetch_add (a, d))
          | E_fence -> pause Req_fence
          | E_work n -> pause (Req_work n)
          | E_label s -> pause (Req_label s)
          | E_pause -> pause Req_pause
          | _ -> None);
    }

let describe_named (type a) name (req : a request) =
  match req with
  | Req_load a -> Printf.sprintf "load %s" (name a)
  | Req_store (a, v) -> Printf.sprintf "store %s := %d" (name a) v
  | Req_cas (a, e, r) -> Printf.sprintf "cas %s (%d -> %d)" (name a) e r
  | Req_fetch_add (a, d) -> Printf.sprintf "faa %s += %d" (name a) d
  | Req_fence -> "fence"
  | Req_work n -> Printf.sprintf "work %d" n
  | Req_label s -> Printf.sprintf "label %S" s
  | Req_pause -> "pause"

let describe req =
  describe_named (fun a -> Format.asprintf "%a" Addr.pp a) req
