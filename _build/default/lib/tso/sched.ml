type outcome =
  | Quiescent
  | Max_steps
  | Deadlock

type policy = Machine.t -> Machine.transition list -> Machine.transition

let run ?(max_steps = 2_000_000) m policy =
  let rec loop budget =
    if budget <= 0 then Max_steps
    else
      match Machine.enabled m with
      | [] -> if Machine.quiescent m then Quiescent else Deadlock
      | ts ->
          let tr = policy m ts in
          ignore (Machine.apply m tr);
          loop (budget - 1)
  in
  loop max_steps

let round_robin () =
  let counter = ref 0 in
  fun _m ts ->
    let n = List.length ts in
    let i = !counter mod n in
    incr counter;
    List.nth ts i

let uniform rng _m ts = List.nth ts (Random.State.int rng (List.length ts))

let weighted rng ~drain_weight _m ts =
  let weight = function
    | Machine.Step _ -> 1.0
    | Machine.Drain _ | Machine.Flush _ -> drain_weight
  in
  let total = List.fold_left (fun acc tr -> acc +. weight tr) 0.0 ts in
  if total <= 0.0 then List.nth ts (Random.State.int rng (List.length ts))
  else begin
    let x = Random.State.float rng total in
    let rec pick acc = function
      | [] -> assert false
      | [ tr ] -> tr
      | tr :: rest ->
          let acc = acc +. weight tr in
          if x < acc then tr else pick acc rest
    in
    pick 0.0 ts
  end

let replay choices ~fallback =
  let remaining = ref choices in
  fun m ts ->
    match !remaining with
    | [] -> fallback m ts
    | i :: rest ->
        remaining := rest;
        let n = List.length ts in
        if i >= n then invalid_arg "Sched.replay: choice index out of range";
        List.nth ts i

let record report policy m ts =
  let tr = policy m ts in
  let rec index i = function
    | [] -> invalid_arg "Sched.record: policy returned a non-enabled transition"
    | t :: rest -> if t = tr then i else index (i + 1) rest
  in
  report (index 0 ts);
  tr
