type instance = {
  machine : Machine.t;
  check : unit -> (unit, string) result;
}

type stats = {
  runs : int;
  truncated : int;
  deadlocks : int;
  pruned : int;
  failures : (int list * string) list;
}

(* The unit performing a transition, for preemption accounting. Drains and
   flushes belong to the memory subsystem and never count as preemptions. *)
type unit_id = U_thread of int | U_memory

let unit_of = function
  | Machine.Step t -> U_thread t
  | Machine.Drain _ | Machine.Flush _ -> U_memory

exception Stop

(* Partial-order reduction for busy-wait loops: a pause/label step is a pure
   no-op that commutes with every other transition, so exploring it is only
   useful once nothing else can move. Without this, a spinlock's
   cas-fail/pause cycle revisits the same machine state forever. The reduced
   list is the choice universe for BOTH search and replay, so recorded
   indices stay meaningful. *)
let choices m =
  let ts = Machine.enabled m in
  let is_noop = function
    | Machine.Step t -> (
        match Machine.pending_class m t with
        | Some Machine.C_free -> true
        | _ -> false)
    | Machine.Drain _ | Machine.Flush _ -> false
  in
  match List.filter (fun t -> not (is_noop t)) ts with
  | [] -> ts
  | productive -> productive

let search ?(max_depth = 400) ?(max_runs = 200_000) ?(preemption_bound = None)
    ?(max_failures = 5) ~mk () =
  let runs = ref 0 in
  let truncated = ref 0 in
  let deadlocks = ref 0 in
  let pruned = ref 0 in
  let failures = ref [] in
  let fail prefix msg =
    if List.length !failures < max_failures then
      failures := !failures @ [ (List.rev prefix, msg) ]
  in
  let bump () =
    incr runs;
    if !runs >= max_runs then raise Stop
  in
  let replay_prefix prefix =
    let inst = mk () in
    List.iter
      (fun i ->
        match choices inst.machine with
        | [] -> assert false
        | ts -> ignore (Machine.apply inst.machine (List.nth ts i)))
      (List.rev prefix);
    inst
  in
  (* Continue a run in-place from the current machine state. [prefix] is the
     reversed choice list that reached this state; [last_unit]/[preemptions]
     summarise the prefix for the CHESS bound. Siblings of the choices made
     here are explored by replaying their prefix on a fresh instance. *)
  let rec extend inst prefix depth last_unit preemptions =
    let m = inst.machine in
    match choices m with
    | [] ->
        if Machine.quiescent m then begin
          (match inst.check () with Ok () -> () | Error msg -> fail prefix msg);
          bump ()
        end
        else begin
          incr deadlocks;
          fail prefix "deadlock";
          bump ()
        end
    | _ when depth >= max_depth ->
        incr truncated;
        bump ()
    | [ tr ] ->
        ignore (Machine.apply m tr);
        let last_unit =
          (* memory-subsystem transitions do not change whose turn it is *)
          match unit_of tr with U_memory -> last_unit | u -> Some u
        in
        extend inst (0 :: prefix) (depth + 1) last_unit preemptions
    | ts ->
        let cost_of tr =
          match (last_unit, unit_of tr) with
          | Some (U_thread a), U_thread b when a <> b ->
              if List.exists (fun t -> unit_of t = U_thread a) ts then 1 else 0
          | _ -> 0
        in
        let within cost =
          match preemption_bound with
          | None -> true
          | Some b -> preemptions + cost <= b
        in
        (* Child 0 is explored in-place (no replay); siblings replay. *)
        List.iteri
          (fun i tr ->
            let cost = cost_of tr in
            if not (within cost) then incr pruned
            else begin
              let prefix' = i :: prefix in
              let inst', resumed =
                if i = 0 then begin
                  ignore (Machine.apply m tr);
                  (inst, true)
                end
                else (replay_prefix prefix', false)
              in
              ignore resumed;
              let last_unit' =
                match unit_of tr with U_memory -> last_unit | u -> Some u
              in
              extend inst' prefix' (depth + 1) last_unit' (preemptions + cost)
            end)
          ts
  in
  (try extend (mk ()) [] 0 None 0 with Stop -> ());
  {
    runs = !runs;
    truncated = !truncated;
    deadlocks = !deadlocks;
    pruned = !pruned;
    failures = !failures;
  }

let next_choices = choices

let replay_choices ~mk steps =
  let inst = mk () in
  let m = inst.machine in
  List.iter
    (fun i ->
      match choices m with
      | [] -> invalid_arg "Explore.replay_choices: run ended early"
      | ts ->
          if i >= List.length ts then
            invalid_arg "Explore.replay_choices: bad choice index";
          ignore (Machine.apply m (List.nth ts i)))
    steps;
  (* Drive any forced suffix to quiescence. *)
  let rec finish () =
    match Machine.enabled m with
    | [] -> ()
    | tr :: _ ->
        ignore (Machine.apply m tr);
        finish ()
  in
  finish ();
  inst.check ()
