type op =
  | Load of int
  | Store of int * int
  | Fence
  | Cas of int * int * int

type program = op list array

type outcome = {
  reads : int list;
  memory : int list;
}

let compare_outcome = compare

module Outcome_set = Set.Make (struct
  type t = outcome

  let compare = compare_outcome
end)

(* Purely functional machine state: per-thread remaining ops, per-thread
   buffers (oldest first), per-thread reads (reversed), memory. *)
type state = {
  progs : op list array;
  bufs : (int * int) list array;
  reads : int list array;
  mem : int array;
}

let clone s =
  {
    progs = Array.copy s.progs;
    bufs = Array.copy s.bufs;
    reads = Array.copy s.reads;
    mem = Array.copy s.mem;
  }

let forwarded buf addr =
  (* newest matching entry; buffers are oldest-first *)
  List.fold_left
    (fun acc (a, v) -> if a = addr then Some v else acc)
    None buf

let outcomes ~cells ~sb_capacity program =
  let results = ref Outcome_set.empty in
  let rec explore s =
    let n = Array.length s.progs in
    let moved = ref false in
    (* thread steps *)
    for t = 0 to n - 1 do
      match s.progs.(t) with
      | [] -> ()
      | op :: rest -> (
          match op with
          | Load a ->
              moved := true;
              let v =
                match forwarded s.bufs.(t) a with
                | Some v -> v
                | None -> s.mem.(a)
              in
              let s' = clone s in
              s'.progs.(t) <- rest;
              s'.reads.(t) <- v :: s.reads.(t);
              explore s'
          | Store (a, v) ->
              if List.length s.bufs.(t) < sb_capacity then begin
                moved := true;
                let s' = clone s in
                s'.progs.(t) <- rest;
                s'.bufs.(t) <- s.bufs.(t) @ [ (a, v) ];
                explore s'
              end
          | Fence ->
              if s.bufs.(t) = [] then begin
                moved := true;
                let s' = clone s in
                s'.progs.(t) <- rest;
                explore s'
              end
          | Cas (a, expect, replace) ->
              if s.bufs.(t) = [] then begin
                moved := true;
                let s' = clone s in
                s'.progs.(t) <- rest;
                if s.mem.(a) = expect then s'.mem.(a) <- replace;
                explore s'
              end)
    done;
    (* drains *)
    for t = 0 to n - 1 do
      match s.bufs.(t) with
      | [] -> ()
      | (a, v) :: rest ->
          moved := true;
          let s' = clone s in
          s'.bufs.(t) <- rest;
          s'.mem.(a) <- v;
          explore s'
    done;
    if not !moved then begin
      (* quiescent iff all programs done and buffers empty — drains are
         always enabled when a buffer is non-empty, so not-moved implies
         buffers empty and every program either done or... a program can
         only be stuck on Store (full buffer: impossible here, buffer empty)
         or Fence/Cas (buffer empty: enabled). Hence all done. *)
      let reads =
        Array.to_list s.reads |> List.concat_map List.rev
      in
      let memory = Array.to_list s.mem in
      results := Outcome_set.add { reads; memory } !results
    end
  in
  explore
    {
      progs = Array.copy program;
      bufs = Array.map (fun _ -> []) program;
      reads = Array.map (fun _ -> []) program;
      mem = Array.make cells 0;
    };
  !results

let machine_outcomes ~cells ~sb_capacity ?(max_runs = 3_000_000) program =
  let results = ref Outcome_set.empty in
  let mk () =
    let m = Machine.create (Machine.abstract_config ~sb_capacity) in
    let mem = Machine.memory m in
    let base = Memory.alloc_array mem ~name:"c" ~len:cells ~init:0 in
    let cell i = Addr.offset base i in
    let n = Array.length program in
    let reads = Array.make n [] in
    for t = 0 to n - 1 do
      ignore
        (Machine.spawn m ~name:(Printf.sprintf "t%d" t) (fun () ->
             List.iter
               (fun op ->
                 match op with
                 | Load a -> reads.(t) <- Program.load (cell a) :: reads.(t)
                 | Store (a, v) -> Program.store (cell a) v
                 | Fence -> Program.fence ()
                 | Cas (a, e, r) ->
                     ignore (Program.cas (cell a) ~expect:e ~replace:r))
               program.(t)))
    done;
    let check () =
      let rlist = Array.to_list reads |> List.concat_map List.rev in
      let memory = List.init cells (fun i -> Memory.get mem (cell i)) in
      results := Outcome_set.add { reads = rlist; memory } !results;
      Ok ()
    in
    { Explore.machine = m; check }
  in
  let st = Explore.search ~max_runs ~mk () in
  if st.Explore.runs >= max_runs || st.Explore.truncated > 0 then
    invalid_arg "Reference.machine_outcomes: exploration did not exhaust";
  !results
