(** A minimal work-stealing thread pool over the native deques: each domain
    owns a {!Chase_lev} deque of thunks, pops locally, and steals from
    random victims when empty. Demonstrates the deques under real
    parallelism (and powers the native benchmarks and examples). *)

type t

val create : ?domains:int -> unit -> t
(** Default: [Domain.recommended_domain_count () - 1] worker domains plus
    the caller. *)

val parallel_run : t -> (unit -> unit) list -> unit
(** Execute the thunks to completion. Each thunk may {!spawn} more work.
    Returns when every spawned task has finished. Not reentrant. *)

val spawn : t -> (unit -> unit) -> unit
(** Enqueue a task on the calling worker's deque. Must be called from inside
    a task run by {!parallel_run} (or before it, for seeding). *)

val shutdown : t -> unit
(** Join the worker domains. The pool cannot be reused afterwards. *)

val fib : t -> int -> int
(** The inevitable demo: parallel naive Fibonacci on the pool (used by
    examples and the native bench). *)
