type task = unit -> unit

type t = {
  deques : task Chase_lev.t array;
  in_flight : int Atomic.t;
  stop : bool Atomic.t;
  domains : unit Domain.t list;
  worker_id : int option Domain.DLS.key;
}

let rec run_one pool me rng =
  match Chase_lev.pop pool.deques.(me) with
  | Some task ->
      task ();
      ignore (Atomic.fetch_and_add pool.in_flight (-1));
      true
  | None ->
      let n = Array.length pool.deques in
      if n <= 1 then false
      else begin
        let victim =
          let v = Random.State.int rng (n - 1) in
          if v >= me then v + 1 else v
        in
        match Chase_lev.steal pool.deques.(victim) with
        | Some task ->
            task ();
            ignore (Atomic.fetch_and_add pool.in_flight (-1));
            true
        | None -> false
      end

and worker_loop pool me =
  Domain.DLS.set pool.worker_id (Some me);
  let rng = Random.State.make [| 0x9e3779b9; me |] in
  while not (Atomic.get pool.stop) do
    if not (run_one pool me rng) then Domain.cpu_relax ()
  done

let create ?domains () =
  let n =
    match domains with
    | Some d -> max 1 d
    | None -> max 1 (Domain.recommended_domain_count () - 1)
  in
  let worker_id = Domain.DLS.new_key (fun () -> None) in
  let pool =
    {
      deques = Array.init (n + 1) (fun _ -> Chase_lev.create ());
      in_flight = Atomic.make 0;
      stop = Atomic.make false;
      domains = [];
      worker_id;
    }
  in
  let domains =
    List.init n (fun i ->
        Domain.spawn (fun () -> worker_loop pool (i + 1)))
  in
  { pool with domains }

let my_id pool = Option.value ~default:0 (Domain.DLS.get pool.worker_id)

let spawn pool task =
  ignore (Atomic.fetch_and_add pool.in_flight 1);
  Chase_lev.push pool.deques.(my_id pool) task

let parallel_run pool tasks =
  Domain.DLS.set pool.worker_id (Some 0);
  List.iter (fun t -> spawn pool t) tasks;
  let rng = Random.State.make [| 0xab1e |] in
  while Atomic.get pool.in_flight > 0 do
    if not (run_one pool 0 rng) then Domain.cpu_relax ()
  done

let shutdown pool =
  Atomic.set pool.stop true;
  List.iter Domain.join pool.domains

let fib pool n =
  let acc = Atomic.make 0 in
  let rec task n () =
    if n < 2 then ignore (Atomic.fetch_and_add acc n)
    else begin
      spawn pool (task (n - 1));
      spawn pool (task (n - 2))
    end
  in
  parallel_run pool [ task n ];
  Atomic.get acc
