lib/native_deque/pool.mli:
