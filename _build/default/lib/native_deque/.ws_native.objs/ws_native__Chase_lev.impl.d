lib/native_deque/chase_lev.ml: Array Atomic Domain
