lib/native_deque/pool.ml: Array Atomic Chase_lev Domain List Option Random
