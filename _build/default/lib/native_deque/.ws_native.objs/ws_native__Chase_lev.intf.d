lib/native_deque/chase_lev.mli:
