lib/native_deque/the_queue.mli:
