lib/native_deque/the_queue.ml: Array Atomic Mutex
