(** A real (non-simulated) THE queue (Cilk-5 / Fig. 2b) on OCaml 5 Atomics,
    with a per-queue mutex for the conflict path. Single owner for
    [push]/[pop]; [steal] from any domain. As with {!Chase_lev}, the
    worker-side fence is implicit in OCaml's SC atomics and cannot be
    removed — see DESIGN.md §1. *)

type 'a t

val create : ?capacity:int -> unit -> 'a t
(** Fixed capacity (rounded up to a power of two); [push] raises [Failure]
    on overflow. *)

val push : 'a t -> 'a -> unit
val pop : 'a t -> 'a option
val steal : 'a t -> 'a option
val size : 'a t -> int
