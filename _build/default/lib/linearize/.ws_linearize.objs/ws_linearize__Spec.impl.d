lib/linearize/spec.ml: Format List
