lib/linearize/history.ml: Format List Spec Tso Ws_core
