lib/linearize/checker.ml: Array History List Printf Set Spec
