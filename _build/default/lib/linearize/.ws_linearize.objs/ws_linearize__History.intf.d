lib/linearize/history.mli: Format Spec Tso Ws_core
