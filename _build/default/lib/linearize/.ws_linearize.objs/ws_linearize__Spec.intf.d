lib/linearize/spec.mli: Format
