lib/linearize/checker.mli: History Spec
