(** Sequential specifications of the work-stealing queue (§3.1 and §4).

    A specification maps a state and an operation to the set of legal
    (response, next state) pairs. The strict spec is deterministic; the
    relaxed spec additionally lets [steal] return [`Abort] leaving the state
    unchanged; the idempotent spec tracks a multiset-style state where an
    element may be handed out more than once (take-at-least-once). *)

type op = Put of int | Take | Steal

type response = R_ok | R_task of int | R_empty | R_abort

val pp_op : Format.formatter -> op -> unit
val pp_response : Format.formatter -> response -> unit

type state
(** The queue contents, head on the left. *)

val initial : state
val contents : state -> int list
val of_contents : int list -> state
val equal_state : state -> state -> bool
val compare_state : state -> state -> int

type kind = Strict | Relaxed | Idempotent

val apply : kind -> state -> op -> (response * state) list
(** All legal outcomes of the operation in the given state. Responses are
    exact: e.g. [Take] on [\[1;2\]] must answer [R_task 2] (tail). For
    [Idempotent], a [Steal]/[Take] may re-deliver a previously removed
    element; such outcomes are generated from the state's memory of
    handed-out elements. *)

val conforms : kind -> state -> op -> response -> state option
(** [conforms kind s op r] is [Some s'] when the recorded response [r] is a
    legal outcome, with [s'] the resulting state; [None] otherwise. *)
