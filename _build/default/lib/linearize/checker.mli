(** Wing–Gong linearizability checker.

    Searches for a permutation of the history that (a) respects real-time
    order — if operation A's response precedes operation B's invocation, A
    must come first — and (b) is accepted by the sequential specification
    with exactly the recorded responses. Exponential in the worst case;
    memoised on (set of linearised ops, spec state), fine for the small
    histories the tests generate.

    §3.3 of the paper predicts concrete outcomes: the baseline THE and
    Chase-Lev queues are {e not} linearizable under TSO (a buffered [put] can
    be missed by a concurrent [steal]), the fence-free variants have the same
    benign violations, and all of them become linearizable when a fence is
    placed after [put]. The test suite reproduces exactly this. *)

type verdict =
  | Linearizable of (int * Spec.op * Spec.response) list
      (** a witness linearisation: (entry id, op, response) in order *)
  | Not_linearizable
  | Too_large  (** search budget exceeded *)

val check :
  ?init:Spec.state -> ?max_states:int -> Spec.kind -> History.entry list -> verdict
(** Default budget: [max_states = 2_000_000] explored nodes. *)

val check_history : ?init:Spec.state -> ?max_states:int -> Spec.kind -> History.t -> verdict
