(** Concurrent histories of queue operations, recorded from simulator runs.

    Timestamps are the machine's transition counter: an operation's
    invocation stamp is taken when the (host-level) wrapper is entered and
    its response stamp when it returns, so two operations overlap iff their
    [\[inv, res\]] intervals intersect — real-time order in the sense of
    Herlihy & Wing. *)

type entry = {
  id : int;
  thread : string;
  op : Spec.op;
  response : Spec.response;
  inv : int;
  res : int;
}

type t

val create : unit -> t
val record : t -> Tso.Machine.t -> thread:string -> Spec.op -> (unit -> Spec.response) -> Spec.response
(** [record h m ~thread op f] stamps the invocation, runs [f] (which performs
    the simulated operation), stamps the response and logs the entry.
    Returns [f ()]'s result. The invocation stamp is anchored by a no-op
    [label] transition, so it reflects when the operation was actually
    scheduled rather than when the caller's program text reached it. *)

val entries : t -> entry list
(** In invocation order. *)

val length : t -> int
val pp : Format.formatter -> t -> unit

(** {1 Recording wrappers} *)

val put : t -> Tso.Machine.t -> thread:string -> Ws_core.Queue_intf.packed -> int -> unit
val take : t -> Tso.Machine.t -> thread:string -> Ws_core.Queue_intf.packed -> Ws_core.Queue_intf.take_result
val steal : t -> Tso.Machine.t -> thread:string -> Ws_core.Queue_intf.packed -> Ws_core.Queue_intf.steal_result
