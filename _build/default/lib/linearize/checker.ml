type verdict =
  | Linearizable of (int * Spec.op * Spec.response) list
  | Not_linearizable
  | Too_large

module Key = struct
  type t = string * Spec.state (* bitmask of linearised ops, spec state *)

  let compare = compare
end

module Seen = Set.Make (Key)

let check ?(init = Spec.initial) ?(max_states = 2_000_000) kind entries =
  let entries = Array.of_list entries in
  let n = Array.length entries in
  if n > 62 then invalid_arg "Checker.check: history too long (> 62 ops)";
  let explored = ref 0 in
  let seen = ref Seen.empty in
  let budget_hit = ref false in
  (* An op is ready to linearise next if every op whose response precedes its
     invocation has already been linearised. *)
  let must_precede j i =
    entries.(j).History.res < entries.(i).History.inv
  in
  let mask_key mask = Printf.sprintf "%x" mask in
  let rec go mask state acc =
    if !explored >= max_states then begin
      budget_hit := true;
      None
    end
    else begin
      incr explored;
      if mask = (1 lsl n) - 1 then Some (List.rev acc)
      else begin
        let key = (mask_key mask, state) in
        if Seen.mem key !seen then None
        else begin
          seen := Seen.add key !seen;
          let rec try_ops i =
            if i >= n then None
            else if mask land (1 lsl i) <> 0 then try_ops (i + 1)
            else begin
              let ready =
                let ok = ref true in
                for j = 0 to n - 1 do
                  if
                    !ok
                    && mask land (1 lsl j) = 0
                    && j <> i
                    && must_precede j i
                  then ok := false
                done;
                !ok
              in
              if not ready then try_ops (i + 1)
              else begin
                let e = entries.(i) in
                match Spec.conforms kind state e.History.op e.History.response with
                | None -> try_ops (i + 1)
                | Some state' -> (
                    match
                      go
                        (mask lor (1 lsl i))
                        state'
                        ((e.History.id, e.History.op, e.History.response) :: acc)
                    with
                    | Some _ as w -> w
                    | None -> try_ops (i + 1))
              end
            end
          in
          try_ops 0
        end
      end
    end
  in
  match go 0 init [] with
  | Some witness -> Linearizable witness
  | None -> if !budget_hit then Too_large else Not_linearizable

let check_history ?init ?max_states kind h =
  check ?init ?max_states kind (History.entries h)
