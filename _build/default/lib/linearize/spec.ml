type op = Put of int | Take | Steal

type response = R_ok | R_task of int | R_empty | R_abort

let pp_op ppf = function
  | Put v -> Format.fprintf ppf "put(%d)" v
  | Take -> Format.fprintf ppf "take()"
  | Steal -> Format.fprintf ppf "steal()"

let pp_response ppf = function
  | R_ok -> Format.fprintf ppf "ok"
  | R_task v -> Format.fprintf ppf "task %d" v
  | R_empty -> Format.fprintf ppf "EMPTY"
  | R_abort -> Format.fprintf ppf "ABORT"

(* [items] is the queue head-first; [handed_out] remembers elements already
   extracted, which the idempotent spec may re-deliver. *)
type state = { items : int list; handed_out : int list }

let initial = { items = []; handed_out = [] }
let contents s = s.items
let of_contents items = { items; handed_out = [] }
let equal_state a b = a.items = b.items && a.handed_out = b.handed_out
let compare_state = compare

type kind = Strict | Relaxed | Idempotent

let remember s v =
  if List.mem v s.handed_out then s else { s with handed_out = v :: s.handed_out }

let rec split_last = function
  | [] -> None
  | [ x ] -> Some ([], x)
  | x :: rest -> (
      match split_last rest with
      | Some (init, last) -> Some (x :: init, last)
      | None -> None)

let apply kind s op =
  match op with
  | Put v -> [ (R_ok, { s with items = s.items @ [ v ] }) ]
  | Take -> (
      let proper =
        match split_last s.items with
        | None -> [ (R_empty, s) ]
        | Some (init, last) ->
            [ (R_task last, remember { s with items = init } last) ]
      in
      match kind with
      | Strict | Relaxed -> proper
      | Idempotent ->
          proper
          @ List.map (fun v -> (R_task v, s)) s.handed_out)
  | Steal -> (
      let proper =
        match s.items with
        | [] -> [ (R_empty, s) ]
        | first :: rest ->
            [ (R_task first, remember { s with items = rest } first) ]
      in
      match kind with
      | Strict -> proper
      | Relaxed -> (R_abort, s) :: proper
      | Idempotent ->
          proper
          @ List.map (fun v -> (R_task v, s)) s.handed_out)

let conforms kind s op r =
  List.find_map
    (fun (r', s') -> if r = r' then Some s' else None)
    (apply kind s op)
