type entry = {
  id : int;
  thread : string;
  op : Spec.op;
  response : Spec.response;
  inv : int;
  res : int;
}

type t = { mutable entries : entry list; mutable next_id : int }

let create () = { entries = []; next_id = 0 }

let record t m ~thread op f =
  (* Thread programs run lazily (a body executes up to its next effect
     during the previous resume), so stamping at wrapper entry would
     back-date the invocation to the caller's previous instruction. The
     no-op label is a real transition: once it has been scheduled, the
     operation has genuinely begun. *)
  Tso.Program.label (Format.asprintf "inv %a" Spec.pp_op op);
  let inv = Tso.Machine.steps m in
  let response = f () in
  let res = Tso.Machine.steps m in
  let id = t.next_id in
  t.next_id <- id + 1;
  t.entries <- { id; thread; op; response; inv; res } :: t.entries;
  response

let entries t = List.rev t.entries
let length t = t.next_id

let pp ppf t =
  Format.fprintf ppf "@[<v>";
  List.iter
    (fun e ->
      Format.fprintf ppf "[%4d,%4d] %-8s %a -> %a@," e.inv e.res e.thread
        Spec.pp_op e.op Spec.pp_response e.response)
    (entries t);
  Format.fprintf ppf "@]"

let put t m ~thread q v =
  let r =
    record t m ~thread (Spec.Put v) (fun () ->
        Ws_core.Queue_intf.put q v;
        Spec.R_ok)
  in
  match r with Spec.R_ok -> () | _ -> assert false

let take t m ~thread q =
  let result = ref `Empty in
  let _ =
    record t m ~thread Spec.Take (fun () ->
        let r = Ws_core.Queue_intf.take q in
        result := r;
        match r with
        | `Task v -> Spec.R_task v
        | `Empty -> Spec.R_empty)
  in
  !result

let steal t m ~thread q =
  let result = ref `Empty in
  let _ =
    record t m ~thread Spec.Steal (fun () ->
        let r = Ws_core.Queue_intf.steal q in
        result := (r :> Ws_core.Queue_intf.steal_result);
        match r with
        | `Task v -> Spec.R_task v
        | `Empty -> Spec.R_empty
        | `Abort -> Spec.R_abort)
  in
  !result
