open Tso

type outcome = {
  taken : int;
  stolen : int;
  tasks : int;
  duplicated : int;
  lost : int;
  sched : Sched.outcome;
}

let correct o =
  o.sched = Sched.Quiescent
  && o.taken + o.stolen = o.tasks
  && o.duplicated = 0
  && o.lost = 0

let run ?(tasks = 512) ?(queue_capacity = 1024) ~sb_capacity ~coalesce ~l
    ~delta ~drain_weight ~seed () =
  let machine =
    Machine.create (Machine.realistic_config ~sb_capacity ~coalesce)
  in
  let params =
    {
      Ws_core.Queue_intf.capacity = queue_capacity;
      delta;
      worker_fence = false;
      tag = "q";
    }
  in
  let module Q = Ws_core.Ff_the in
  let q = Q.create machine params in
  Q.preload q (List.init tasks Fun.id);
  let removed = Array.make tasks 0 in
  let taken = ref 0 in
  let stolen = ref 0 in
  (* the worker's L stores between takes go to L distinct locations *)
  let mem = Machine.memory machine in
  let pads =
    Array.init (max l 1) (fun i ->
        Memory.alloc mem ~name:(Printf.sprintf "pad%d" i) ~init:0)
  in
  let _ =
    Machine.spawn machine ~name:"worker" (fun () ->
        let rec loop () =
          match Q.take q with
          | `Empty -> ()
          | `Task i ->
              removed.(i) <- removed.(i) + 1;
              incr taken;
              for j = 0 to l - 1 do
                Program.store pads.(j) !taken
              done;
              loop ()
        in
        loop ())
  in
  let _ =
    Machine.spawn machine ~name:"thief" (fun () ->
        let rec loop () =
          match Q.steal q with
          | `Abort -> ()
          | `Empty -> () (* unreachable: FF-THE subsumes EMPTY in ABORT *)
          | `Task i ->
              removed.(i) <- removed.(i) + 1;
              incr stolen;
              loop ()
        in
        loop ())
  in
  let rng = Random.State.make [| seed; sb_capacity; l; delta |] in
  let sched =
    Sched.run ~max_steps:2_000_000 machine (Sched.weighted rng ~drain_weight)
  in
  let duplicated = Array.fold_left (fun a c -> if c > 1 then a + 1 else a) 0 removed in
  let lost = Array.fold_left (fun a c -> if c = 0 then a + 1 else a) 0 removed in
  { taken = !taken; stolen = !stolen; tasks; duplicated; lost; sched }
