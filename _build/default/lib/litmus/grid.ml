type cell = {
  alpha : int;
  delta : int;
  l_values : int list;
  runs : int;
  incorrect : int;
}

let ceil_div a b = (a + b - 1) / b

let alpha_groups ~s_assumed ~max_l =
  let tbl = Hashtbl.create 16 in
  for l = 0 to max_l do
    let alpha = ceil_div s_assumed (l + 1) in
    Hashtbl.replace tbl alpha
      (l :: Option.value ~default:[] (Hashtbl.find_opt tbl alpha))
  done;
  Hashtbl.fold (fun alpha ls acc -> (alpha, List.rev ls) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> compare b a)

let run_cell ?(tasks = 256) ?(runs_per_l = 20) ?(drain_weight = 0.02)
    ?(stop_at_first = true) ~sb_capacity ~coalesce ~s_assumed:_ ~alpha
    ~l_values ~delta ~seed () =
  let runs = ref 0 in
  let incorrect = ref 0 in
  (try
     List.iter
       (fun l ->
         for r = 1 to runs_per_l do
           incr runs;
           let o =
             Litmus_program.run ~tasks ~sb_capacity ~coalesce ~l ~delta
               ~drain_weight
               ~seed:(seed + (1000 * l) + r)
               ()
           in
           if not (Litmus_program.correct o) then begin
             incr incorrect;
             if stop_at_first then raise Exit
           end
         done)
       l_values
   with Exit -> ());
  { alpha; delta; l_values; runs = !runs; incorrect = !incorrect }

let campaign ?tasks ?runs_per_l ?stop_at_first ?(max_l = 32)
    ?(delta_offsets = [ -1; 0; 1 ]) ~sb_capacity ~coalesce ~s_assumed ~seed ()
    =
  let groups = alpha_groups ~s_assumed ~max_l in
  List.concat_map
    (fun (alpha, l_values) ->
      List.filter_map
        (fun off ->
          let delta = alpha + off in
          if delta < 1 then None
          else
            Some
              (run_cell ?tasks ?runs_per_l ?stop_at_first ~sb_capacity
                 ~coalesce ~s_assumed ~alpha ~l_values ~delta ~seed ()))
        delta_offsets)
    groups
