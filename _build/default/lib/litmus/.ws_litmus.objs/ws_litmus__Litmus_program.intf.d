lib/litmus/litmus_program.mli: Tso
