lib/litmus/grid.mli:
