lib/litmus/litmus_program.ml: Array Fun List Machine Memory Printf Program Random Sched Tso Ws_core
