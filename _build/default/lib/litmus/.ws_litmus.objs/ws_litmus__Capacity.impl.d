lib/litmus/capacity.ml: List Queue
