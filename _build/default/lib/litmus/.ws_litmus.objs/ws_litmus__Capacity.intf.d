lib/litmus/capacity.mli:
