lib/litmus/grid.ml: Hashtbl List Litmus_program Option
