lib/litmus/classic.mli: Format Tso
