lib/litmus/classic.ml: Explore Format Hashtbl List Machine Memory Option Printf Program String Tso
