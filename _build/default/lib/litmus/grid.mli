(** The Fig. 8 litmus campaign: test whether the machine implements TSO[S]
    for an assumed bound S by hunting for incorrect executions of the Fig. 9
    program across (L, δ) pairs.

    For an assumed bound [s_assumed], each pair is summarised by
    α = ⌈s_assumed / (L+1)⌉, the maximum number of take-stores that could
    hide in the buffer {e if the assumption held}. Executions with δ ≥ α
    must then be correct; an incorrect one refutes TSO[s_assumed].

    Interpreting the campaign against the machine's real behaviour
    (architectural buffer [sb_capacity] plus the egress entry B, observable
    bound [sb_capacity + 1]):
    - assuming S = [sb_capacity] (Fig. 8a): cells with δ = α fail exactly
      when (L+1) divides S, because the true α is one larger there;
    - assuming S = [sb_capacity + 1] (Fig. 8b): all cells with δ ≥ α pass
      except L = 0, where same-address coalescing in B makes the reordering
      unbounded. *)

type cell = {
  alpha : int;  (** ⌈s_assumed/(L+1)⌉ *)
  delta : int;
  l_values : int list;  (** all L aggregated into this α *)
  runs : int;
  incorrect : int;
}

val alpha_groups : s_assumed:int -> max_l:int -> (int * int list) list
(** (α, all L in [0, max_l] with ⌈s_assumed/(L+1)⌉ = α), α descending. *)

val run_cell :
  ?tasks:int ->
  ?runs_per_l:int ->
  ?drain_weight:float ->
  ?stop_at_first:bool ->
  sb_capacity:int ->
  coalesce:bool ->
  s_assumed:int ->
  alpha:int ->
  l_values:int list ->
  delta:int ->
  seed:int ->
  unit ->
  cell

val campaign :
  ?tasks:int ->
  ?runs_per_l:int ->
  ?stop_at_first:bool ->
  ?max_l:int ->
  ?delta_offsets:int list ->
  sb_capacity:int ->
  coalesce:bool ->
  s_assumed:int ->
  seed:int ->
  unit ->
  cell list
(** The full grid: for every α group, each δ = α + offset (offsets default
    [\[-1; 0; 1\]], δ clamped to ≥ 1). *)
