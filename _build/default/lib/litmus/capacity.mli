(** Store-buffer capacity measurement (paper §7.2, Figs. 6 and 7).

    Models the micro-benchmark of Fig. 6 at the pipeline level: alternate a
    sequence of [stores] stores with a long-latency non-memory instruction
    sequence. Issue is in-order, one instruction per cycle; a store occupies
    a buffer entry from issue until the drain engine retires it to memory
    (one write per [drain_latency] cycles, starting only after the store
    retires — and in-order retirement means after the previous iteration's
    filler retires). While the sequence fits in the buffer, drains overlap
    the filler and an iteration costs ~[filler_latency] cycles; beyond
    capacity, issue stalls and the cost climbs — the knee of Fig. 7.

    With [egress = true] the post-retirement buffer B of §7.3 adds one
    observable entry, which is why the measured reordering bound is
    capacity + 1 (33 on Westmere-EX, 43 on Haswell). *)

type model = {
  capacity : int;  (** architectural store-buffer entries *)
  drain_latency : int;  (** cycles per write to the memory subsystem *)
  filler_latency : int;  (** latency of the non-memory instruction sequence *)
  egress : bool;  (** model the B buffer (frees an SB entry at drain start) *)
}

val westmere_model : model
(** 32 entries + B, as measured in Fig. 7. *)

val haswell_model : model
(** 42 entries + B. *)

val cycles_per_iteration : model -> stores:int -> iterations:int -> float
(** Average cost of one iteration of the Fig. 6 loop. *)

val sweep : model -> stores_list:int list -> iterations:int -> (int * float) list
(** The Fig. 7 curve: (sequence length, cycles/iteration). *)

val detect_capacity : (int * float) list -> int
(** The knee: the largest sequence length whose cost is within 0.5% of the
    baseline (shortest-sequence) cost — the documented capacity; the extra
    observable entry B only shows up in the §7.3 litmus campaign. *)
