(** The Fig. 9 litmus program: a worker and a thief concurrently drain an
    FF-THE queue preloaded with [tasks] items on a realistic bounded-TSO
    machine. The worker performs [l] stores to distinct locations between
    takes; the thief steals until its first ABORT. The run is correct iff
    every item was removed exactly once (taken + stolen = tasks and no
    duplicates).

    This is the engine behind the Fig. 8 campaign, and doubles as a general
    stress harness for the other queue algorithms in the tests. *)

type outcome = {
  taken : int;
  stolen : int;
  tasks : int;
  duplicated : int;  (** items removed more than once *)
  lost : int;  (** items never removed *)
  sched : Tso.Sched.outcome;
}

val correct : outcome -> bool
(** taken + stolen = tasks with no duplicates and no losses, and the run
    reached quiescence. *)

val run :
  ?tasks:int ->
  ?queue_capacity:int ->
  sb_capacity:int ->
  coalesce:bool ->
  l:int ->
  delta:int ->
  drain_weight:float ->
  seed:int ->
  unit ->
  outcome
(** One run. [sb_capacity] is the architectural buffer size (the machine
    adds the egress entry B, so the observable bound is [sb_capacity + 1]);
    [coalesce] enables same-address coalescing in B (the L = 0 anomaly).
    Default [tasks] = 512 as in the paper; schedules are adversarial
    weighted-random with the given [drain_weight]. *)
