type model = {
  capacity : int;
  drain_latency : int;
  filler_latency : int;
  egress : bool;
}

(* Drains hit the L1 at a couple of cycles per store, so a sub-capacity
   sequence drains entirely under the filler's shadow; the post-knee slope
   of Fig. 7 (~2.5 cycles per extra store) pins drain_latency. *)
let westmere_model =
  { capacity = 32; drain_latency = 3; filler_latency = 110; egress = true }

let haswell_model =
  { capacity = 42; drain_latency = 3; filler_latency = 140; egress = true }

(* In-order issue / in-order retire pipeline with a background drain engine.
   State carried across instructions:
   - [clock]: next issue cycle;
   - [retired]: retire time of the previous instruction (in-order);
   - [free_at]: queue of times at which currently-occupied SB entries free
     up. With the egress buffer an entry frees when its drain *starts*
     (the store moves to B); without it, when the write completes. *)
let cycles_per_iteration model ~stores ~iterations =
  if stores < 1 then invalid_arg "Capacity: stores must be >= 1";
  let free_at = Queue.create () in
  let clock = ref 0 (* in-order issue, one instruction per cycle *) in
  let retired = ref 0 (* in-order retirement frontier *) in
  let drain_done = ref 0 (* drain engine busy until here *) in
  let issue_store () =
    (* reclaim entries already freed, then stall issue if still full *)
    while
      (match Queue.peek_opt free_at with
      | Some t -> t <= !clock
      | None -> false)
      && Queue.length free_at > 0
    do
      ignore (Queue.pop free_at)
    done;
    if Queue.length free_at >= model.capacity then
      clock := max !clock (Queue.pop free_at);
    let issue = !clock in
    clock := issue + 1;
    (* retirement is in order but wide: a store retires with (not after) the
       frontier, so a burst of stores retires as soon as the previous filler
       has *)
    retired := max issue !retired;
    (* the drain engine writes one retired store per drain_latency cycles *)
    let start = max !retired !drain_done in
    let finish = start + model.drain_latency in
    drain_done := finish;
    Queue.push (if model.egress then start else finish) free_at
  in
  let issue_filler () =
    let issue = !clock in
    clock := issue + 1;
    retired := max issue !retired + model.filler_latency
  in
  let t0 = !clock in
  for _ = 1 to iterations do
    for _ = 1 to stores do
      issue_store ()
    done;
    issue_filler ()
  done;
  (* wait for the last filler to retire, as the cycle counter read in Fig. 6
     would *)
  clock := max !clock !retired;
  float_of_int (!clock - t0) /. float_of_int iterations

let sweep model ~stores_list ~iterations =
  List.map
    (fun stores -> (stores, cycles_per_iteration model ~stores ~iterations))
    stores_list

let detect_capacity points =
  match points with
  | [] -> invalid_arg "Capacity.detect_capacity: no points"
  | (_, base) :: _ ->
      List.fold_left
        (fun acc (n, c) -> if c <= base *. 1.005 then max acc n else acc)
        0 points
