(** THEP (paper Fig. 5): fence-free work stealing meeting the {e strict}
    specification via worker echoes. An uncertain thief publishes a
    heartbeat in the top bits of [H] and waits for the worker to echo it
    through [P]; TSO's store ordering then guarantees a fresh read of [T].
    Blocking: a lone thief on a nearly-empty queue waits for the worker
    (the §6 tightness violation). *)

include Queue_intf.S
