(** The Chase-Lev nonblocking work-stealing deque (SPAA 2005; paper
    Fig. 2c): the second fenced baseline. Thieves race on [H] with CAS; the
    worker needs the CAS only for the last task. *)

include Queue_intf.S
