(** Michael, Vechev and Saraswat's idempotent LIFO work-stealing queue
    (PPoPP 2009), the paper's §8.2 fence-free comparison point.

    A stack: both the owner and thieves remove from the top. The owner's
    operations are fence-free plain stores; thieves synchronise with a CAS on
    the packed anchor <tail, tag>. The price is relaxed semantics: a task can
    be extracted {e more than once} (never lost), so only clients that
    tolerate re-execution may use it. *)

open Tso

(* tail in the low bits, ABA tag above. *)
let lo_bits = 24

type t = {
  mem : Memory.t;
  anchor : Addr.t;
  tasks : Addr.t;
  capacity : int;
}

let name = "idempotent-lifo"
let may_abort = false
let may_duplicate = true
let worker_fence_free = true

let create m (p : Queue_intf.params) =
  let mem = Machine.memory m in
  {
    mem;
    anchor =
      Memory.alloc mem ~name:(p.tag ^ ".anchor")
        ~init:(Pack.pack2 ~lo_bits ~hi:0 ~lo:0);
    tasks =
      Memory.alloc_array mem ~name:(p.tag ^ ".tasks") ~len:p.capacity
        ~init:(-1);
    capacity = p.capacity;
  }

let task_addr q i =
  assert (i >= 0 && i < q.capacity);
  Addr.offset q.tasks i

let preload q items =
  let g, t = Pack.unpack2 ~lo_bits (Memory.get q.mem q.anchor) in
  if g <> 0 || t <> 0 then invalid_arg "preload: queue is not fresh";
  if List.length items > q.capacity then invalid_arg "preload: too many items";
  List.iteri (fun i v -> Memory.set q.mem (Addr.offset q.tasks i) v) items;
  Memory.set q.mem q.anchor
    (Pack.pack2 ~lo_bits ~hi:(List.length items) ~lo:(List.length items))

let put q task =
  let g, t = Pack.unpack2 ~lo_bits (Program.load q.anchor) in
  if t >= q.capacity then
    failwith "idempotent-lifo overflow: tasks array is too small";
  Program.store (task_addr q t) task;
  (* TSO orders the element store before the anchor publication; the tag
     bump forces conflicting thief CASes to fail (ABA). *)
  Program.store q.anchor (Pack.pack2 ~lo_bits ~hi:(g + 1) ~lo:(t + 1))

let take q : Queue_intf.take_result =
  let g, t = Pack.unpack2 ~lo_bits (Program.load q.anchor) in
  if t = 0 then `Empty
  else begin
    let task = Program.load (task_addr q (t - 1)) in
    Program.store q.anchor (Pack.pack2 ~lo_bits ~hi:g ~lo:(t - 1));
    `Task task
  end

let steal q : Queue_intf.steal_result =
  let rec loop () : Queue_intf.steal_result =
    let g, t = Pack.unpack2 ~lo_bits (Program.load q.anchor) in
    if t = 0 then `Empty
    else begin
      (* Read the task before the CAS: a successful CAS on a stale anchor
         may duplicate the owner's take, but never invents or loses a
         task. *)
      let task = Program.load (task_addr q (t - 1)) in
      let expect = Pack.pack2 ~lo_bits ~hi:g ~lo:t in
      let replace = Pack.pack2 ~lo_bits ~hi:g ~lo:(t - 1) in
      if Program.cas q.anchor ~expect ~replace then `Task task
      else begin
        Program.spin_pause ();
        loop ()
      end
    end
  in
  loop ()
