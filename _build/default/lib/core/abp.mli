(** The Arora–Blumofe–Plaxton non-blocking work-stealing deque (SPAA 1998)
    — reference \[9\] of the paper and the ancestor of both THE and
    Chase-Lev. Included as a third fenced baseline for completeness.

    The top index carries an ABA tag; thieves race on it with CAS and
    return [`Abort] when they {e lose a race} (contention abort — a
    different phenomenon from FF-THE's uncertainty abort, but the same
    relaxed specification). The worker's [take] issues the usual fence. *)

include Queue_intf.S
