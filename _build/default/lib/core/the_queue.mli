(** Cilk's THE work-stealing queue (Frigo et al. 1998; paper Fig. 2b): the
    fenced baseline. Worker-side [take] publishes the new tail, fences, then
    checks for a conflicting thief; conflicts are arbitrated under a
    per-queue lock with the worker winning. *)

include Queue_intf.S
