type block = {
  id : int;
  stores : int;
  calls_take : bool;
  succs : int list;
}

type cfg = { by_id : (int, block) Hashtbl.t; order : block list }

let cfg blocks =
  if blocks = [] then invalid_arg "Delta_analysis.cfg: empty";
  let by_id = Hashtbl.create 16 in
  List.iter
    (fun b ->
      if b.stores < 0 then invalid_arg "Delta_analysis.cfg: negative stores";
      if Hashtbl.mem by_id b.id then
        invalid_arg (Printf.sprintf "Delta_analysis.cfg: duplicate block %d" b.id);
      Hashtbl.add by_id b.id b)
    blocks;
  List.iter
    (fun b ->
      List.iter
        (fun s ->
          if not (Hashtbl.mem by_id s) then
            invalid_arg
              (Printf.sprintf "Delta_analysis.cfg: block %d has dangling successor %d"
                 b.id s))
        b.succs)
    blocks;
  { by_id; order = blocks }

let blocks t = t.order

(* Dijkstra from a source block's successors, edge weight = stores of the
   block the edge leaves. Distance to a node counts the stores of every
   block strictly between the source take and that node's entry. *)
let shortest_to_takes t (src : block) =
  let dist = Hashtbl.create 16 in
  let module Pq = Set.Make (struct
    type t = int * int (* distance, block id *)

    let compare = compare
  end) in
  let pq = ref Pq.empty in
  let relax id d =
    let better =
      match Hashtbl.find_opt dist id with None -> true | Some d' -> d < d'
    in
    if better then begin
      (match Hashtbl.find_opt dist id with
      | Some d' -> pq := Pq.remove (d', id) !pq
      | None -> ());
      Hashtbl.replace dist id d;
      pq := Pq.add (d, id) !pq
    end
  in
  (* Leaving the source block costs the stores the source performs after its
     take; the paper assigns the whole block's stores to its out-edges. *)
  List.iter (fun s -> relax s src.stores) src.succs;
  let best = ref None in
  let note id d =
    let b = Hashtbl.find t.by_id id in
    if b.calls_take then
      best := Some (match !best with None -> d | Some b' -> min b' d)
  in
  while not (Pq.is_empty !pq) do
    let ((d, id) as e) = Pq.min_elt !pq in
    pq := Pq.remove e !pq;
    note id d;
    let b = Hashtbl.find t.by_id id in
    if not b.calls_take then
      (* paths through another take() are cut: the later take restarts the
         window, so only take-free interior paths count *)
      List.iter (fun s -> relax s (d + b.stores)) b.succs
  done;
  !best

let min_stores_between_takes t =
  let takes = List.filter (fun b -> b.calls_take) t.order in
  List.fold_left
    (fun acc src ->
      match shortest_to_takes t src with
      | None -> acc
      | Some d -> Some (match acc with None -> d | Some a -> min a d))
    None takes

let ceil_div a b = (a + b - 1) / b

let delta t ~bound =
  if bound < 1 then invalid_arg "Delta_analysis.delta: bound must be >= 1";
  let x = Option.value ~default:0 (min_stores_between_takes t) in
  max 1 (ceil_div bound (x + 1))

let worker_loop_cfg ~client_stores =
  (* 0: take()            (the dequeue itself; its T-store is the +1 of x+1)
     1: client stores     (the CilkPlus field write(s) after a take)
     2: execute leaf      (no puts)
     3: execute + spawn   (>= 2 stores per put)
     4: loop back edge *)
  cfg
    [
      { id = 0; stores = 0; calls_take = true; succs = [ 1 ] };
      { id = 1; stores = client_stores; calls_take = false; succs = [ 2; 3 ] };
      { id = 2; stores = 0; calls_take = false; succs = [ 4 ] };
      { id = 3; stores = 2; calls_take = false; succs = [ 4 ] };
      { id = 4; stores = 0; calls_take = false; succs = [ 0 ] };
    ]
