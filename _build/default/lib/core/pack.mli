(** Bit-field packing of several non-negative fields into one memory cell.

    THEP keeps the thief's heartbeat counter in the top bits of [H] (§5), and
    the idempotent queues pack their anchor (head, size, tag). OCaml ints
    give us 62 usable bits, mirroring the paper's 64-bit words. *)

val pack2 : lo_bits:int -> hi:int -> lo:int -> int
(** [pack2 ~lo_bits ~hi ~lo] packs [hi] above [lo_bits] bits of [lo].
    @raise Invalid_argument if a field is negative or [lo] overflows. *)

val unpack2 : lo_bits:int -> int -> int * int
(** Inverse of {!pack2}: returns [(hi, lo)]. *)

val pack3 : lo_bits:int -> mid_bits:int -> hi:int -> mid:int -> lo:int -> int
val unpack3 : lo_bits:int -> mid_bits:int -> int -> int * int * int
(** [(hi, mid, lo)]. *)
