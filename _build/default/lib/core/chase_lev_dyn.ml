open Tso

type buffer = { base : Addr.t; size : int }

type t = {
  mem : Memory.t;
  h : Addr.t;
  t : Addr.t;
  buf_id : Addr.t;  (* shared publication of the active buffer *)
  mutable buffers : buffer array;  (* host-side id -> simulated array *)
  mutable grown : int;
  tag : string;
  fence : bool;
}

let name = "chase-lev-dyn"
let may_abort = false
let may_duplicate = false
let worker_fence_free = false

let alloc_buffer q size =
  let id = Array.length q.buffers in
  let base =
    Memory.alloc_array q.mem
      ~name:(Printf.sprintf "%s.buf%d" q.tag id)
      ~len:size ~init:(-1)
  in
  q.buffers <- Array.append q.buffers [| { base; size } |];
  id

let create m (p : Queue_intf.params) =
  let mem = Machine.memory m in
  let q =
    {
      mem;
      h = Memory.alloc mem ~name:(p.tag ^ ".H") ~init:0;
      t = Memory.alloc mem ~name:(p.tag ^ ".T") ~init:0;
      buf_id = Memory.alloc mem ~name:(p.tag ^ ".buf") ~init:0;
      buffers = [||];
      grown = 0;
      tag = p.tag;
      fence = p.worker_fence;
    }
  in
  (* start deliberately small so growth is exercised *)
  let id = alloc_buffer q (max 2 (min 8 p.capacity)) in
  assert (id = 0);
  q

let grows q = q.grown

let buffer q id = q.buffers.(id)

let elem_addr b i = Addr.offset b.base (((i mod b.size) + b.size) mod b.size)

let read_elem q ~buf i = Program.load (elem_addr (buffer q buf) i)

let preload q items =
  if Memory.get q.mem q.t <> 0 || Memory.get q.mem q.h <> 0 then
    invalid_arg "preload: queue is not fresh";
  let b = buffer q 0 in
  if List.length items > b.size then
    (* grow host-side before anything runs *)
    ignore (alloc_buffer q (2 * List.length items));
  let id = Array.length q.buffers - 1 in
  let b = buffer q id in
  Memory.set q.mem q.buf_id id;
  List.iteri (fun i v -> Memory.set q.mem (elem_addr b i) v) items;
  Memory.set q.mem q.t (List.length items)

(* Owner-side growth: copy the live window [h, t) into a buffer twice the
   size, then publish it. The copy reads through the old buffer and writes
   the new one with ordinary simulated accesses, so the machine sees every
   memory operation a real implementation would do. *)
let grow q ~old_id ~h ~t =
  let old_b = buffer q old_id in
  let new_id = alloc_buffer q (2 * old_b.size) in
  let new_b = buffer q new_id in
  for i = h to t - 1 do
    Program.store (elem_addr new_b i) (Program.load (elem_addr old_b i))
  done;
  Program.store q.buf_id new_id;
  q.grown <- q.grown + 1;
  new_id

let put q task =
  let t = Program.load q.t in
  let h = Program.load q.h in
  let buf = Program.load q.buf_id in
  let buf =
    if t - h >= (buffer q buf).size - 1 then grow q ~old_id:buf ~h ~t else buf
  in
  Program.store (elem_addr (buffer q buf) t) task;
  Program.store q.t (t + 1)

let take q : Queue_intf.take_result =
  let t = Program.load q.t - 1 in
  Program.store q.t t;
  if q.fence then Program.fence ();
  let h = Program.load q.h in
  if t > h then begin
    let buf = Program.load q.buf_id in
    `Task (read_elem q ~buf t)
  end
  else if t < h then begin
    Program.store q.t h;
    `Empty
  end
  else begin
    Program.store q.t (h + 1);
    if Program.cas q.h ~expect:h ~replace:(h + 1) then begin
      let buf = Program.load q.buf_id in
      `Task (read_elem q ~buf t)
    end
    else `Empty
  end

let steal q : Queue_intf.steal_result =
  let rec loop () : Queue_intf.steal_result =
    let h = Program.load q.h in
    let t = Program.load q.t in
    if h >= t then `Empty
    else begin
      let buf = Program.load q.buf_id in
      let task = read_elem q ~buf h in
      if Program.cas q.h ~expect:h ~replace:(h + 1) then `Task task
      else begin
        Program.spin_pause ();
        loop ()
      end
    end
  in
  loop ()
