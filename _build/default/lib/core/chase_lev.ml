(** The Chase-Lev nonblocking work-stealing deque (SPAA 2005), as given in
    Fig. 2c. Thieves race with a CAS on [H]; the worker only needs the CAS
    when removing the last task. *)

open Tso

type t = {
  c : Base.cells;
  fence : bool;
}

let name = "chase-lev"
let may_abort = false
let may_duplicate = false
let worker_fence_free = false

let create m (p : Queue_intf.params) = { c = Base.alloc m p; fence = p.worker_fence }

let preload q items = Base.preload q.c items

let put q task = Base.put q.c task

let take q : Queue_intf.take_result =
  let t = Program.load q.c.t - 1 in
  Program.store q.c.t t;
  if q.fence then Program.fence ();
  let h = Program.load q.c.h in
  if t > h then `Task (Base.read_task q.c t)
  else if t < h then begin
    (* Queue was empty, or a thief concurrently advanced H: fix T. *)
    Program.store q.c.t h;
    `Empty
  end
  else begin
    (* t = h: contend for the last task with a CAS after restoring T. *)
    Program.store q.c.t (h + 1);
    if Program.cas q.c.h ~expect:h ~replace:(h + 1) then
      `Task (Base.read_task q.c t)
    else `Empty
  end

let steal q : Queue_intf.steal_result =
  let rec loop () : Queue_intf.steal_result =
    let h = Program.load q.c.h in
    let t = Program.load q.c.t in
    if h >= t then `Empty
    else begin
      let task = Base.read_task q.c h in
      if Program.cas q.c.h ~expect:h ~replace:(h + 1) then `Task task
      else begin
        Program.spin_pause ();
        loop ()
      end
    end
  in
  loop ()
