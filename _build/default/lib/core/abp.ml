open Tso

(* top is packed <tag, t>; bot is a plain cell owned by the worker. Unlike
   THE/Chase-Lev, indices are bounded by the array (the deque resets bot to
   0 whenever it empties, bumping the tag to defeat ABA). *)
let lo_bits = 24

type t = {
  mem : Memory.t;
  top : Addr.t;  (* packed <tag, t> *)
  bot : Addr.t;
  tasks : Addr.t;
  capacity : int;
  fence : bool;
}

let name = "abp"
let may_abort = true
let may_duplicate = false
let worker_fence_free = false

let create m (p : Queue_intf.params) =
  let mem = Machine.memory m in
  {
    mem;
    top =
      Memory.alloc mem ~name:(p.tag ^ ".top")
        ~init:(Pack.pack2 ~lo_bits ~hi:0 ~lo:0);
    bot = Memory.alloc mem ~name:(p.tag ^ ".bot") ~init:0;
    tasks =
      Memory.alloc_array mem ~name:(p.tag ^ ".tasks") ~len:p.capacity
        ~init:(-1);
    capacity = p.capacity;
    fence = p.worker_fence;
  }

let task_addr q i =
  assert (i >= 0 && i < q.capacity);
  Addr.offset q.tasks i

let preload q items =
  let tag, t = Pack.unpack2 ~lo_bits (Memory.get q.mem q.top) in
  if tag <> 0 || t <> 0 || Memory.get q.mem q.bot <> 0 then
    invalid_arg "preload: queue is not fresh";
  if List.length items > q.capacity then invalid_arg "preload: too many items";
  List.iteri (fun i v -> Memory.set q.mem (Addr.offset q.tasks i) v) items;
  Memory.set q.mem q.bot (List.length items)

let put q task =
  let b = Program.load q.bot in
  if b >= q.capacity then
    failwith "abp queue overflow: tasks array is too small";
  Program.store (task_addr q b) task;
  Program.store q.bot (b + 1)

let take q : Queue_intf.take_result =
  let b = Program.load q.bot in
  if b = 0 then `Empty
  else begin
    let b = b - 1 in
    Program.store q.bot b;
    if q.fence then Program.fence ();
    let task = Program.load (task_addr q b) in
    let tag, t = Pack.unpack2 ~lo_bits (Program.load q.top) in
    if b > t then `Task task
    else begin
      (* queue looks empty or one element: reset bot and bump the tag *)
      Program.store q.bot 0;
      let reset = Pack.pack2 ~lo_bits ~hi:(tag + 1) ~lo:0 in
      if b = t then begin
        (* last element: race any thief with a CAS on top *)
        if
          Program.cas q.top
            ~expect:(Pack.pack2 ~lo_bits ~hi:tag ~lo:t)
            ~replace:reset
        then `Task task
        else begin
          Program.store q.top reset;
          `Empty
        end
      end
      else begin
        (* b < t: a thief already passed us *)
        Program.store q.top reset;
        `Empty
      end
    end
  end

let steal q : Queue_intf.steal_result =
  let tag, t = Pack.unpack2 ~lo_bits (Program.load q.top) in
  let b = Program.load q.bot in
  if b <= t then `Empty
  else begin
    let task = Program.load (task_addr q t) in
    if
      Program.cas q.top
        ~expect:(Pack.pack2 ~lo_bits ~hi:tag ~lo:t)
        ~replace:(Pack.pack2 ~lo_bits ~hi:tag ~lo:(t + 1))
    then `Task task
    else (* lost a race with the worker or another thief *) `Abort
  end
