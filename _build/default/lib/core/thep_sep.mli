(** THEP with the thief's heartbeat counter kept in a {e separate} shared
    variable instead of the top bits of [H] — the design alternative
    mentioned in §5 ("the counter can also be maintained in a separate
    variable, at the cost of an extra load in the take() path").

    Ordering is what makes it work: the thief stores [H] {e before} [S], so
    TSO's FIFO drain guarantees that a worker that loads [S] before [H] and
    sees the new counter also sees the new head. The ablation experiment
    compares its extra-load cost against stock THEP. *)

include Queue_intf.S
