open Tso

type t = Addr.t

let create m ~name = Memory.alloc (Machine.memory m) ~name ~init:0

let try_lock a = Program.cas a ~expect:0 ~replace:1

let lock a =
  while not (try_lock a) do
    Program.spin_pause ()
  done

let unlock a = Program.store a 0
