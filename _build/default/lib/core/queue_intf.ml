(** Common interface of the work-stealing task queues (paper §3.1).

    Tasks are non-negative integers (the runtime maps them to task records).
    All implementations run on the bounded-TSO abstract machine: their
    [put]/[take]/[steal] bodies must only be called from within a simulated
    thread program, because every shared access they make is a {!Tso.Program}
    effect. *)

type take_result = [ `Task of int | `Empty ]

type steal_result = [ `Task of int | `Empty | `Abort ]
(** [`Abort] is the relaxed-specification refusal of FF-THE / FF-CL (§4): the
    thief could not rule out a conflicting buffered [take] and backed off
    without modifying the queue. *)

type params = {
  capacity : int;  (** W, the size of the circular tasks array *)
  delta : int;
      (** δ: the max number of [take]-stores that can hide in the worker's
          store buffer (§4). [max_int] encodes δ = ∞. Ignored by the
          fenced baselines and the idempotent queues. *)
  worker_fence : bool;
      (** whether the worker's [take] issues its memory fence. [true] for
          the THE / Chase-Lev baselines; setting it [false] on those
          reproduces the (unsafe in general, single-thread-safe) Fig. 1
          experiment. Fence-free algorithms ignore it. *)
  tag : string;  (** prefix for this queue's cells in memory traces *)
}

let default_params =
  { capacity = 1024; delta = 1; worker_fence = true; tag = "q" }

module type S = sig
  type t

  val name : string

  val may_abort : bool
  (** [steal] can return [`Abort] (relaxed specification, §4). *)

  val may_duplicate : bool
  (** A task can be extracted more than once (idempotent queues only). *)

  val worker_fence_free : bool
  (** The worker's [take] path issues neither a fence nor an atomic RMW in
      the common case (given the params it was created with). *)

  val create : Tso.Machine.t -> params -> t

  val preload : t -> int list -> unit
  (** Host-level test scaffolding: populate a {e fresh} queue directly in
      memory, before any simulated thread runs (the litmus programs of §7.3
      start from "a queue initialized with 512 items"). Not a simulated
      operation. *)

  val put : t -> int -> unit
  val take : t -> take_result
  val steal : t -> steal_result
end

type packed = Packed : (module S with type t = 'a) * 'a -> packed

let put (Packed ((module Q), q)) task = Q.put q task
let take (Packed ((module Q), q)) = Q.take q
let steal (Packed ((module Q), q)) = Q.steal q
let name (Packed ((module Q), _)) = Q.name
