(** FF-CL (paper Fig. 4): Chase-Lev with the worker's fence deleted, thief
    guarded by the same [T - delta > h] bound (§4.1). Nonblocking, may
    [`Abort]. *)

include Queue_intf.S
