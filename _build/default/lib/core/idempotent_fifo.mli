(** Michael, Vechev & Saraswat's idempotent double-ended FIFO queue
    (PPoPP 2009): owner puts/takes at the tail, thieves steal from the head,
    anchor packed as <head, size, tag>. Fence-free owner; duplicates
    possible. *)

include Queue_intf.S
