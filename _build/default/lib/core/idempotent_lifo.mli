(** Michael, Vechev & Saraswat's idempotent LIFO work-stealing queue
    (PPoPP 2009), the paper's §8.2 comparison. Owner operations are
    fence-free plain stores; thieves CAS the packed <tail, tag> anchor. A
    task can be extracted more than once (never lost). *)

include Queue_intf.S
