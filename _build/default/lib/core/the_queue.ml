(** Cilk's THE work-stealing queue (Frigo et al. 1998), as given in Fig. 2b.
    The fenced baseline: the worker's [take] publishes its new tail and then
    issues a memory fence before checking for a conflicting thief; conflicts
    are arbitrated under a per-queue lock, worker wins. *)

open Tso

type t = {
  c : Base.cells;
  lock : Sync.t;
  fence : bool;
}

let name = "the"
let may_abort = false
let may_duplicate = false
let worker_fence_free = false

let create m (p : Queue_intf.params) =
  { c = Base.alloc m p; lock = Sync.create m ~name:(p.tag ^ ".lock"); fence = p.worker_fence }

let preload q items = Base.preload q.c items

let put q task = Base.put q.c task

let take q : Queue_intf.take_result =
  let t = Program.load q.c.t - 1 in
  Program.store q.c.t t;
  if q.fence then Program.fence ();
  let h = Program.load q.c.h in
  if t > h then `Task (Base.read_task q.c t)
  else if t < h then begin
    (* Possible conflict with a thief: arbitrate under the lock. *)
    Sync.lock q.lock;
    let h = Program.load q.c.h in
    if h >= t + 1 then begin
      (* The queue was empty (or the thief won the last task): restore T. *)
      Program.store q.c.t (t + 1);
      Sync.unlock q.lock;
      `Empty
    end
    else begin
      Sync.unlock q.lock;
      `Task (Base.read_task q.c t)
    end
  end
  else (* t = h: the thief (if any) will abort; the worker wins. *)
    `Task (Base.read_task q.c t)

let steal q : Queue_intf.steal_result =
  Sync.lock q.lock;
  let h = Program.load q.c.h in
  Program.store q.c.h (h + 1);
  Program.fence ();
  let t = Program.load q.c.t in
  let ret =
    if h + 1 <= t then `Task (Base.read_task q.c h)
    else begin
      (* Empty queue, or the increment crossed a worker's decrement: undo. *)
      Program.store q.c.h h;
      `Empty
    end
  in
  Sync.unlock q.lock;
  ret
