type impl = (module Queue_intf.S)

let all : impl list =
  [
    (module The_queue);
    (module Chase_lev);
    (module Chase_lev_dyn);
    (module Abp);
    (module Ff_the);
    (module Ff_cl);
    (module Thep);
    (module Thep_sep);
    (module Idempotent_lifo);
    (module Idempotent_fifo);
  ]

let names = List.map (fun (module Q : Queue_intf.S) -> Q.name) all

let find name =
  List.find (fun (module Q : Queue_intf.S) -> String.equal Q.name name) all

let create (module Q : Queue_intf.S) m params =
  Queue_intf.Packed ((module Q), Q.create m params)

let strict (module Q : Queue_intf.S) = (not Q.may_abort) && not Q.may_duplicate
