(** FF-THE (paper Fig. 3): THE with the worker's fence deleted. Thieves
    compensate by bounded-reordering reasoning — steal only when
    [T - delta > h]; otherwise return [`Abort] (relaxed specification,
    §4). *)

include Queue_intf.S
