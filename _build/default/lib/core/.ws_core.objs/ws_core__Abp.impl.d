lib/core/abp.ml: Addr List Machine Memory Pack Program Queue_intf Tso
