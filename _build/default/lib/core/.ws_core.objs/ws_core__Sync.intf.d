lib/core/sync.mli: Tso
