lib/core/idempotent_lifo.mli: Queue_intf
