lib/core/registry.ml: Abp Chase_lev Chase_lev_dyn Ff_cl Ff_the Idempotent_fifo Idempotent_lifo List Queue_intf String The_queue Thep Thep_sep
