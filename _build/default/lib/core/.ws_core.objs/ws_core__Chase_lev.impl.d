lib/core/chase_lev.ml: Base Program Queue_intf Tso
