lib/core/pack.mli:
