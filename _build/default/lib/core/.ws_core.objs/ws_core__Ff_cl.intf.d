lib/core/ff_cl.mli: Queue_intf
