lib/core/idempotent_lifo.ml: Addr List Machine Memory Pack Program Queue_intf Tso
