lib/core/delta_analysis.ml: Hashtbl List Option Printf Set
