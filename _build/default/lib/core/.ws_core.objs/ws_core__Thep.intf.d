lib/core/thep.mli: Queue_intf
