lib/core/the_queue.mli: Queue_intf
