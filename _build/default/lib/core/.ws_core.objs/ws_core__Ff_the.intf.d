lib/core/ff_the.mli: Queue_intf
