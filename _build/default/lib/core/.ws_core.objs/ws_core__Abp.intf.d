lib/core/abp.mli: Queue_intf
