lib/core/delta_analysis.mli:
