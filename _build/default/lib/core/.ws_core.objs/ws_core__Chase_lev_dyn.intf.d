lib/core/chase_lev_dyn.mli: Queue_intf
