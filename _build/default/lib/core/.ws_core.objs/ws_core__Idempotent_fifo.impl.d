lib/core/idempotent_fifo.ml: Addr List Machine Memory Pack Program Queue_intf Tso
