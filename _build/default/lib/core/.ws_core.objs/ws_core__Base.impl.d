lib/core/base.ml: Addr List Machine Memory Program Queue_intf Tso
