lib/core/the_queue.ml: Base Program Queue_intf Sync Tso
