lib/core/ff_the.ml: Base Program Queue_intf Sync Tso
