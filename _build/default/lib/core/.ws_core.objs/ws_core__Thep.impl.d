lib/core/thep.ml: Addr List Machine Memory Pack Program Queue_intf Sync Tso
