lib/core/chase_lev_dyn.ml: Addr Array List Machine Memory Printf Program Queue_intf Tso
