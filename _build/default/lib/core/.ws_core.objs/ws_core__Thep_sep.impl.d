lib/core/thep_sep.ml: Addr List Machine Memory Program Queue_intf Sync Tso
