lib/core/sync.ml: Addr Machine Memory Program Tso
