lib/core/idempotent_fifo.mli: Queue_intf
