lib/core/chase_lev.mli: Queue_intf
