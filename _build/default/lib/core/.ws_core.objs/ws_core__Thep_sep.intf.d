lib/core/thep_sep.mli: Queue_intf
