lib/core/ff_cl.ml: Base Program Queue_intf Tso
