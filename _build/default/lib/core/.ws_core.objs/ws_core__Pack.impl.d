lib/core/pack.ml: Printf
