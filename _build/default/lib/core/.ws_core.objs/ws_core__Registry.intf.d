lib/core/registry.mli: Queue_intf Tso
