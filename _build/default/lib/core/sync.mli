(** Spinlock in the instruction DSL, used by THE-family queues.

    Acquisition is a CAS loop (each attempt drains the acquirer's store
    buffer, as x86 locked operations do); release is a plain store, which is
    sufficient under TSO. *)

type t

val create : Tso.Machine.t -> name:string -> t
val lock : t -> unit
val unlock : t -> unit
val try_lock : t -> bool
