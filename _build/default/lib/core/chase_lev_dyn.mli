(** Chase-Lev with the {e dynamic circular array} of the original paper —
    the detail Fig. 2 elides ("we omit details of resizing the array").

    The active buffer is published through a shared cell holding a buffer
    id; growth allocates a double-size array, copies the live window with
    ordinary (simulated) loads and stores, and publishes the new id with a
    plain store — safe because only the owner writes the buffer cell and
    TSO orders the copy's stores before the publication, exactly like
    [put]'s task/tail pair. Thieves re-read the buffer id on every attempt. *)

include Queue_intf.S

val grows : t -> int
(** How many times this queue has grown (for tests). *)
