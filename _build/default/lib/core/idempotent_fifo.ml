(** Michael, Vechev and Saraswat's idempotent {e double-ended} FIFO queue
    (PPoPP 2009). The owner puts and takes at the tail; thieves steal from
    the head; the last task can be extracted concurrently by both. The
    packed anchor is <head, size, tag>. Owner operations are fence-free. *)

open Tso

let lo_bits = 20 (* head, wrapped mod capacity *)
let mid_bits = 20 (* size *)

type t = {
  mem : Memory.t;
  anchor : Addr.t;
  tasks : Addr.t;
  capacity : int;
}

let name = "idempotent-fifo"
let may_abort = false
let may_duplicate = true
let worker_fence_free = true

let create m (p : Queue_intf.params) =
  if p.capacity >= 1 lsl lo_bits then
    invalid_arg "idempotent-fifo: capacity too large for the packed anchor";
  let mem = Machine.memory m in
  {
    mem;
    anchor =
      Memory.alloc mem ~name:(p.tag ^ ".anchor")
        ~init:(Pack.pack3 ~lo_bits ~mid_bits ~hi:0 ~mid:0 ~lo:0);
    tasks =
      Memory.alloc_array mem ~name:(p.tag ^ ".tasks") ~len:p.capacity
        ~init:(-1);
    capacity = p.capacity;
  }

let task_addr q i = Addr.offset q.tasks (i mod q.capacity)

let preload q items =
  let g, s, h = Pack.unpack3 ~lo_bits ~mid_bits (Memory.get q.mem q.anchor) in
  if g <> 0 || s <> 0 || h <> 0 then invalid_arg "preload: queue is not fresh";
  if List.length items > q.capacity then invalid_arg "preload: too many items";
  List.iteri (fun i v -> Memory.set q.mem (Addr.offset q.tasks i) v) items;
  Memory.set q.mem q.anchor
    (Pack.pack3 ~lo_bits ~mid_bits ~hi:(List.length items)
       ~mid:(List.length items) ~lo:0)

let put q task =
  let g, s, h = Pack.unpack3 ~lo_bits ~mid_bits (Program.load q.anchor) in
  if s >= q.capacity then
    failwith "idempotent-fifo overflow: tasks array is too small";
  Program.store (task_addr q (h + s)) task;
  Program.store q.anchor
    (Pack.pack3 ~lo_bits ~mid_bits ~hi:(g + 1) ~mid:(s + 1) ~lo:h)

let take q : Queue_intf.take_result =
  let g, s, h = Pack.unpack3 ~lo_bits ~mid_bits (Program.load q.anchor) in
  if s = 0 then `Empty
  else begin
    let task = Program.load (task_addr q (h + s - 1)) in
    Program.store q.anchor
      (Pack.pack3 ~lo_bits ~mid_bits ~hi:g ~mid:(s - 1) ~lo:h);
    `Task task
  end

let steal q : Queue_intf.steal_result =
  let rec loop () : Queue_intf.steal_result =
    let g, s, h = Pack.unpack3 ~lo_bits ~mid_bits (Program.load q.anchor) in
    if s = 0 then `Empty
    else begin
      let task = Program.load (task_addr q h) in
      let expect = Pack.pack3 ~lo_bits ~mid_bits ~hi:g ~mid:s ~lo:h in
      let replace =
        Pack.pack3 ~lo_bits ~mid_bits ~hi:g ~mid:(s - 1)
          ~lo:((h + 1) mod q.capacity)
      in
      if Program.cas q.anchor ~expect ~replace then `Task task
      else begin
        Program.spin_pause ();
        loop ()
      end
    end
  in
  loop ()
