(** Deriving δ from client code (paper §4, "Determining δ").

    δ = ⌈S/(x+1)⌉ where [x] is a lower bound on the number of stores the
    client performs between consecutive [take()] calls. The paper obtains
    [x] by "a static analysis on the basic block control-flow graph of the
    program \[searching\] for a weighted shortest path from take() to
    itself, where we assign the number of stores performed in a basic block
    B as the weight of each edge going out of B."

    This module implements exactly that analysis on an explicit CFG. The
    runtime's worker loop is provided as a pre-built CFG ({!worker_loop_cfg})
    whose analysis justifies the default δ = ⌈S/2⌉ of §8.1. *)

type block = {
  id : int;
  stores : int;  (** stores performed in this basic block *)
  calls_take : bool;  (** the block contains a [take()] call *)
  succs : int list;  (** control-flow successors *)
}

type cfg

val cfg : block list -> cfg
(** @raise Invalid_argument on duplicate ids, dangling successors, negative
    store counts, or an empty block list. *)

val blocks : cfg -> block list

val min_stores_between_takes : cfg -> int option
(** The weight of the lightest control-flow path from one [take()] call back
    to a [take()] call — the [x] of §4. [None] when no take block can reach
    a take block (at most one take per execution: δ reasoning is then
    unnecessary, any steal of a task other than the single hidden one is
    safe only with x = 0). *)

val delta : cfg -> bound:int -> int
(** ⌈bound/(x+1)⌉ with [x = min_stores_between_takes] (0 when [None]):
    a sound δ for FF-THE / FF-CL / THEP thieves on a TSO\[bound\] machine,
    by the §4 argument. Always ≥ 1. *)

val worker_loop_cfg : client_stores:int -> cfg
(** The CFG of {!Ws_runtime}'s worker loop: take → client stores →
    execute (which may put spawned tasks, adding stores) → take. Its
    lightest cycle carries exactly [client_stores] stores (a leaf task that
    spawns nothing), matching CilkPlus's "writes a field of the dequeued
    task" and justifying δ = ⌈S/(client_stores+1)⌉. *)
