let check_field ~bits name v =
  if v < 0 then invalid_arg (Printf.sprintf "Pack: negative %s field" name);
  if bits < 62 && v lsr bits <> 0 then
    invalid_arg (Printf.sprintf "Pack: %s field overflows %d bits" name bits)

let pack2 ~lo_bits ~hi ~lo =
  check_field ~bits:lo_bits "lo" lo;
  check_field ~bits:(62 - lo_bits) "hi" hi;
  (hi lsl lo_bits) lor lo

let unpack2 ~lo_bits v =
  let mask = (1 lsl lo_bits) - 1 in
  (v lsr lo_bits, v land mask)

let pack3 ~lo_bits ~mid_bits ~hi ~mid ~lo =
  check_field ~bits:lo_bits "lo" lo;
  check_field ~bits:mid_bits "mid" mid;
  check_field ~bits:(62 - lo_bits - mid_bits) "hi" hi;
  (hi lsl (lo_bits + mid_bits)) lor (mid lsl lo_bits) lor lo

let unpack3 ~lo_bits ~mid_bits v =
  let lo = v land ((1 lsl lo_bits) - 1) in
  let mid = (v lsr lo_bits) land ((1 lsl mid_bits) - 1) in
  let hi = v lsr (lo_bits + mid_bits) in
  (hi, mid, lo)
