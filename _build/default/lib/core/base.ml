(** Cells and code shared by the THE / Chase-Lev family (Fig. 2a): head [H],
    tail [T], the circular [tasks] array, and the worker's [put]. *)

open Tso

type cells = {
  mem : Memory.t;
  h : Addr.t;
  t : Addr.t;
  tasks : Addr.t;
  capacity : int;
}

let alloc m (p : Queue_intf.params) =
  let mem = Machine.memory m in
  {
    mem;
    h = Memory.alloc mem ~name:(p.tag ^ ".H") ~init:0;
    t = Memory.alloc mem ~name:(p.tag ^ ".T") ~init:0;
    tasks =
      Memory.alloc_array mem ~name:(p.tag ^ ".tasks") ~len:p.capacity
        ~init:(-1);
    capacity = p.capacity;
  }

let task_addr c i =
  assert (i >= 0);
  Addr.offset c.tasks (i mod c.capacity)

let read_task c i = Program.load (task_addr c i)

(* Host-level overflow guard: [H] in memory can only lag the true head, so
   [t - H_mem] over-approximates the queue length. Not part of the protocol
   (the paper elides resizing); it turns an undersized array into a crash
   instead of silent corruption. *)
let check_room c t =
  let h_mem = Memory.get c.mem c.h in
  if t - h_mem >= c.capacity then
    failwith "work-stealing queue overflow: tasks array is too small"

(* Host-level preload of a fresh queue (test scaffolding). *)
let preload c items =
  if Memory.get c.mem c.t <> 0 || Memory.get c.mem c.h <> 0 then
    invalid_arg "preload: queue is not fresh";
  if List.length items > c.capacity then invalid_arg "preload: too many items";
  List.iteri (fun i v -> Memory.set c.mem (Addr.offset c.tasks i) v) items;
  Memory.set c.mem c.t (List.length items)

(* Fig. 2a put(): store the task, then publish it by bumping T. TSO keeps the
   two stores ordered. *)
let put c task =
  let t = Program.load c.t in
  check_room c t;
  Program.store (task_addr c t) task;
  Program.store c.t (t + 1)
