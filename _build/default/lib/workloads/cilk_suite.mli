(** The CilkPlus benchmark suite of Table 1, expressed as fork–join
    computation DAGs with per-strand cycle costs.

    Inputs are scaled down from the paper's (documented per benchmark in
    [paper_input] / [our_input]) so that a discrete-event simulation of a run
    completes in seconds. What the figures are sensitive to — the DAG shape
    and the ratio of scheduler overhead (fence, take, put) to strand work —
    is preserved by the cost model. DAG construction is deterministic, so
    every queue variant schedules the identical computation. *)

type bench = {
  name : string;
  description : string;
  paper_input : string;
  our_input : string;
  comp : unit -> Ws_runtime.Dag.comp;
}

val all : bench list
(** Fib, Jacobi, QuickSort, Matmul, Integrate, knapsack, cholesky, Heat,
    LUD, strassen, fft — the order of Fig. 10. *)

val fig1_names : string list
(** The seven benchmarks of Fig. 1. *)

val find : string -> bench
(** @raise Not_found on unknown names. *)

val dag : bench -> Ws_runtime.Dag.t
(** Build (and cache) the benchmark's DAG. *)

(** Individual computations, parameterised, for tests and examples. *)

val fib : ?spawn:int -> ?join:int -> ?leaf:int -> int -> Ws_runtime.Dag.comp
val integrate : depth:int -> Ws_runtime.Dag.comp
val quicksort : n:int -> cutoff:int -> Ws_runtime.Dag.comp
val matmul : n:int -> block:int -> Ws_runtime.Dag.comp
val strassen : n:int -> block:int -> Ws_runtime.Dag.comp
val knapsack : items:int -> Ws_runtime.Dag.comp
val jacobi : rows:int -> iters:int -> row_work:int -> Ws_runtime.Dag.comp
val heat : rows:int -> iters:int -> row_work:int -> Ws_runtime.Dag.comp
val cholesky : blocks:int -> Ws_runtime.Dag.comp
val lud : blocks:int -> Ws_runtime.Dag.comp
val fft : n:int -> cutoff:int -> Ws_runtime.Dag.comp
