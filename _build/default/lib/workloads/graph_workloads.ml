open Tso

type checked = {
  workload : Ws_runtime.Workload.t;
  verify : unit -> (unit, string) result;
}

(* Shared skeleton: [on_claim] is invoked (inside the simulated thread) when
   the executing worker wins the CAS on neighbour [v] of node [u]. *)
let visit_workload name (g : Graph.t) ~src ~node_work ~edge_work ~on_claim
    ~extra_init ~verify_extra =
  let visited = ref None in
  let machine_mem = ref None in
  let init m =
    let mem = Machine.memory m in
    machine_mem := Some mem;
    visited := Some (Memory.alloc_array mem ~name:"visited" ~len:g.Graph.nodes ~init:0);
    (* claim the source up front: it is the root task *)
    Memory.set mem (Addr.offset (Option.get !visited) src) 1;
    extra_init mem
  in
  let execute ~worker:_ u =
    let visited = Option.get !visited in
    Program.work node_work;
    let spawned = ref [] in
    Array.iter
      (fun v ->
        Program.work edge_work;
        (* test-and-test-and-set keeps RMW traffic realistic *)
        if Program.load (Addr.offset visited v) = 0 then
          if Program.cas (Addr.offset visited v) ~expect:0 ~replace:1 then begin
            on_claim ~u ~v;
            spawned := v :: !spawned
          end)
      g.Graph.adj.(u);
    !spawned
  in
  let verify () =
    let mem = Option.get !machine_mem in
    let visited = Option.get !visited in
    let reachable = Graph.reachable_from g src in
    let rec check v =
      if v >= g.Graph.nodes then Ok ()
      else
        let got = Memory.get mem (Addr.offset visited v) = 1 in
        if got <> reachable.(v) then
          Error
            (Printf.sprintf "%s: node %d %s" name v
               (if reachable.(v) then "reachable but not visited"
                else "visited but unreachable"))
        else check (v + 1)
    in
    match check 0 with Ok () -> verify_extra mem | Error _ as e -> e
  in
  let workload =
    Ws_runtime.Workload.make ~name ~roots:[ src ] ~execute ~init ()
  in
  { workload; verify }

let transitive_closure g ~src ?(node_work = 20) ?(edge_work = 6) () =
  visit_workload "transitive-closure" g ~src ~node_work ~edge_work
    ~on_claim:(fun ~u:_ ~v:_ -> ())
    ~extra_init:(fun _ -> ())
    ~verify_extra:(fun _ -> Ok ())

let spanning_tree g ~src ?(node_work = 20) ?(edge_work = 6) () =
  let parent = ref None in
  let extra_init mem =
    parent := Some (Memory.alloc_array mem ~name:"parent" ~len:g.Graph.nodes ~init:(-1))
  in
  let on_claim ~u ~v = Program.store (Addr.offset (Option.get !parent) v) u in
  let verify_extra mem =
    let parent_arr = Option.get !parent in
    let reachable = Graph.reachable_from g src in
    (* every reachable node except the source must have a parent whose chain
       reaches the source without cycles *)
    let rec climb v steps =
      if v = src then true
      else if steps > g.Graph.nodes then false
      else
        let p = Memory.get mem (Addr.offset parent_arr v) in
        p >= 0 && climb p (steps + 1)
    in
    let rec check v =
      if v >= g.Graph.nodes then Ok ()
      else if v <> src && reachable.(v) && not (climb v 0) then
        Error (Printf.sprintf "spanning-tree: node %d has a broken parent chain" v)
      else check (v + 1)
    in
    check 0
  in
  visit_workload "spanning-tree" g ~src ~node_work ~edge_work ~on_claim
    ~extra_init ~verify_extra
