type t = {
  nodes : int;
  adj : int array array;
}

let of_edge_list nodes edge_list =
  let deg = Array.make nodes 0 in
  List.iter
    (fun (u, v) ->
      deg.(u) <- deg.(u) + 1;
      deg.(v) <- deg.(v) + 1)
    edge_list;
  let adj = Array.init nodes (fun u -> Array.make deg.(u) 0) in
  let fill = Array.make nodes 0 in
  List.iter
    (fun (u, v) ->
      adj.(u).(fill.(u)) <- v;
      fill.(u) <- fill.(u) + 1;
      adj.(v).(fill.(v)) <- u;
      fill.(v) <- fill.(v) + 1)
    edge_list;
  { nodes; adj }

let dedup_pairs pairs =
  let module S = Set.Make (struct
    type t = int * int

    let compare = compare
  end) in
  let norm (u, v) = if u < v then (u, v) else (v, u) in
  S.elements
    (List.fold_left
       (fun s (u, v) -> if u = v then s else S.add (norm (u, v)) s)
       S.empty pairs)

let k_graph ~nodes ~k ~seed =
  if nodes mod 2 <> 0 then invalid_arg "Graph.k_graph: nodes must be even";
  let rng = Random.State.make [| seed; nodes; k |] in
  let pairs = ref [] in
  for _ = 1 to k do
    (* one random perfect matching *)
    let perm = Array.init nodes Fun.id in
    for i = nodes - 1 downto 1 do
      let j = Random.State.int rng (i + 1) in
      let tmp = perm.(i) in
      perm.(i) <- perm.(j);
      perm.(j) <- tmp
    done;
    let i = ref 0 in
    while !i + 1 < nodes do
      pairs := (perm.(!i), perm.(!i + 1)) :: !pairs;
      i := !i + 2
    done
  done;
  of_edge_list nodes (dedup_pairs !pairs)

let random_graph ~nodes ~edges ~seed =
  let rng = Random.State.make [| seed; nodes; edges |] in
  let pairs = ref [] in
  let made = ref 0 in
  (* draw with rejection of self-loops; duplicates are deduplicated at the
     end, so we overdraw slightly *)
  while !made < edges do
    let u = Random.State.int rng nodes and v = Random.State.int rng nodes in
    if u <> v then begin
      pairs := (u, v) :: !pairs;
      incr made
    end
  done;
  of_edge_list nodes (dedup_pairs !pairs)

let torus ~width ~height =
  let nodes = width * height in
  let id x y = (((y + height) mod height) * width) + ((x + width) mod width) in
  let pairs = ref [] in
  for y = 0 to height - 1 do
    for x = 0 to width - 1 do
      pairs := (id x y, id (x + 1) y) :: (id x y, id x (y + 1)) :: !pairs
    done
  done;
  of_edge_list nodes (dedup_pairs !pairs)

let edges t = Array.fold_left (fun acc a -> acc + Array.length a) 0 t.adj

let reachable_from t src =
  let seen = Array.make t.nodes false in
  let q = Queue.create () in
  seen.(src) <- true;
  Queue.push src q;
  while not (Queue.is_empty q) do
    let u = Queue.pop q in
    Array.iter
      (fun v ->
        if not seen.(v) then begin
          seen.(v) <- true;
          Queue.push v q
        end)
      t.adj.(u)
  done;
  seen

let degree_histogram t =
  let tbl = Hashtbl.create 16 in
  Array.iter
    (fun a ->
      let d = Array.length a in
      Hashtbl.replace tbl d (1 + Option.value ~default:0 (Hashtbl.find_opt tbl d)))
    t.adj;
  List.sort compare (Hashtbl.fold (fun d c acc -> (d, c) :: acc) tbl [])
