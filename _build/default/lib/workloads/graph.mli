(** Graph generators and reference algorithms for the §8.2 benchmarks.

    The paper's inputs: a K-regular graph, a random G(n,m) graph and a
    two-dimensional torus. Sizes are scaled down (documented in the
    experiment harness); the torus keeps the paper's 2400 nodes. *)

type t = {
  nodes : int;
  adj : int array array;  (** adjacency lists (undirected: both directions) *)
}

val k_graph : nodes:int -> k:int -> seed:int -> t
(** K-regular graph: each node is connected to [k] others (union of [k]
    random perfect matchings, deduplicated). *)

val random_graph : nodes:int -> edges:int -> seed:int -> t
(** G(n,m): [edges] undirected edges drawn uniformly. *)

val torus : width:int -> height:int -> t
(** 2-D torus (grid with wraparound); node [(x, y)] is [y * width + x]. *)

val edges : t -> int
(** Total directed edge count (sum of adjacency list lengths). *)

val reachable_from : t -> int -> bool array
(** Host-level BFS, the verification oracle for the simulated algorithms. *)

val degree_histogram : t -> (int * int) list
(** (degree, count), ascending — for tests. *)
