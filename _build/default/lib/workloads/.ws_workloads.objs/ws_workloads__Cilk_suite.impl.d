lib/workloads/cilk_suite.ml: Dag Hashtbl List Random String Ws_runtime
