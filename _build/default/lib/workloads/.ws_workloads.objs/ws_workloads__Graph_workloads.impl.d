lib/workloads/graph_workloads.ml: Addr Array Graph Machine Memory Option Printf Program Tso Ws_runtime
