lib/workloads/graph_workloads.mli: Graph Ws_runtime
