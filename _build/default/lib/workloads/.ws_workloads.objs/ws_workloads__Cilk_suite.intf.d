lib/workloads/cilk_suite.mli: Ws_runtime
