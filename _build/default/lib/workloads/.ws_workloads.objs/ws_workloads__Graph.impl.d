lib/workloads/graph.ml: Array Fun Hashtbl List Option Queue Random Set
