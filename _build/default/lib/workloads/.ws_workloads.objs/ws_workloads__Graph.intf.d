lib/workloads/graph.mli:
