(** The §8.2 graph benchmarks as runtime workloads: transitive closure
    (single-source reachability) and spanning tree, after Bader & Cong.

    Tasks are "visit node u". Visiting performs, {e in simulated memory}, a
    CAS on the neighbour's visited flag for every edge — the algorithms'
    internal synchronisation that makes duplicated task execution harmless,
    which is exactly why Michael et al.'s idempotent queues are applicable
    here. A duplicated "visit u" finds every neighbour already claimed (or
    claims it, validly) and spawns nothing twice: each node is spawned by
    the unique CAS winner. *)

type checked = {
  workload : Ws_runtime.Workload.t;
  verify : unit -> (unit, string) result;
      (** after the run: compares the simulated result against a host BFS
          (every reachable node visited; for spanning tree, parents form a
          valid tree rooted at the source) *)
}

val transitive_closure :
  Graph.t -> src:int -> ?node_work:int -> ?edge_work:int -> unit -> checked

val spanning_tree :
  Graph.t -> src:int -> ?node_work:int -> ?edge_work:int -> unit -> checked
