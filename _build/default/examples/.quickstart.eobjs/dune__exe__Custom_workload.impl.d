examples/custom_workload.ml: Addr List Machine Memory Option Printf Program Tso Ws_core Ws_runtime
