examples/native_pool.ml: Array List Printf Unix Ws_native
