examples/model_check_delta.ml: List Printf String Tso Ws_harness
