examples/quickstart.mli:
