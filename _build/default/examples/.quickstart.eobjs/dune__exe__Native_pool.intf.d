examples/native_pool.mli:
