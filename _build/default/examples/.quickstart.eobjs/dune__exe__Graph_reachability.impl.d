examples/graph_reachability.ml: List Printf Ws_harness Ws_runtime Ws_workloads
