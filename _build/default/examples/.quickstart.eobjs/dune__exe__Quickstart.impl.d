examples/quickstart.ml: Machine Memory Printf Program Random Sched Tso Ws_core
