examples/graph_reachability.mli:
