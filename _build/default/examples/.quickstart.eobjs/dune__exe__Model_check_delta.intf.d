examples/model_check_delta.mli:
