(* Graph reachability (the paper's §8.2 workload) through the work-stealing
   runtime: compare the fenced Chase-Lev baseline against fence-free FF-CL
   and the idempotent LIFO queue on a random graph.

   Run with:  dune exec examples/graph_reachability.exe

   Each "visit node" task CASes the visited flag of its neighbours in
   simulated memory, so duplicated task execution (idempotent queue) is
   harmless — every run is verified against a host-level BFS. *)

let () =
  let graph =
    Ws_workloads.Graph.random_graph ~nodes:4000 ~edges:12_000 ~seed:99
  in
  Printf.printf "random graph: %d nodes, %d directed edges\n"
    graph.Ws_workloads.Graph.nodes
    (Ws_workloads.Graph.edges graph);
  let machine = Ws_harness.Machine_config.haswell in
  let baseline = ref 0.0 in
  List.iter
    (fun (v : Ws_harness.Variants.t) ->
      let makespan, metrics =
        Ws_harness.Runner.run_checked machine v ~seed:7 (fun () ->
            Ws_workloads.Graph_workloads.transitive_closure graph ~src:0 ())
      in
      if !baseline = 0.0 then baseline := makespan;
      Printf.printf
        "%-22s makespan %8.0f cycles  (%.1f%% of Chase-Lev)  stolen tasks %.2f%%\n"
        v.Ws_harness.Variants.label makespan
        (100.0 *. makespan /. !baseline)
        (Ws_runtime.Metrics.stolen_task_pct metrics))
    Ws_harness.Variants.fig11;
  print_endline "all runs verified against a host-level BFS"
