(* The native (non-simulated) side of the library: a work-stealing pool of
   real OCaml 5 domains built on the Atomic-based Chase-Lev deque.

   Run with:  dune exec examples/native_pool.exe

   (As DESIGN.md explains, OCaml atomics are always fully fenced, so this
   pool is the *fenced* Chase-Lev baseline; the fence-free algorithms live
   on the simulated machine where fences are controllable.) *)

let () =
  let pool = Ws_native.Pool.create ~domains:3 () in

  (* parallel naive fib on real domains *)
  let n = 30 in
  let t0 = Unix.gettimeofday () in
  let r = Ws_native.Pool.fib pool n in
  let dt = Unix.gettimeofday () -. t0 in
  Printf.printf "fib %d = %d (%.3fs on 4 workers)\n" n r dt;

  (* parallel map via spawn *)
  let inputs = Array.init 64 (fun i -> i) in
  let outputs = Array.make 64 0 in
  Ws_native.Pool.parallel_run pool
    (List.init 64 (fun i () ->
         let rec slow_square x k = if k = 0 then x * x else slow_square x (k - 1) in
         outputs.(i) <- slow_square inputs.(i) 10_000));
  Printf.printf "parallel map ok: outputs.(7) = %d (expect 49)\n" outputs.(7);

  Ws_native.Pool.shutdown pool
