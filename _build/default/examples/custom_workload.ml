(* Writing your own workload: a dynamic pipeline with shared simulated
   state, run through the work-stealing runtime under two different queues.

   Run with:  dune exec examples/custom_workload.exe

   The workload is a bank of "pipelines": each stage does some work, CASes a
   progress counter in simulated memory, and spawns the next stage. Because
   tasks are created dynamically, there is no DAG to precompute — the
   runtime discovers the work as it executes, which is exactly the shape of
   the paper's graph benchmarks. *)

open Tso

let pipelines = 24
let stages = 16

(* task id = pipeline * stages + stage *)
let make_workload () =
  let progress = ref None in
  let init m =
    progress :=
      Some
        (Memory.alloc_array (Machine.memory m) ~name:"progress" ~len:pipelines
           ~init:0)
  in
  let execute ~worker:_ id =
    let pipeline = id / stages and stage = id mod stages in
    let progress = Option.get !progress in
    (* stage work, heavier toward the end of the pipeline *)
    Program.work (40 + (6 * stage));
    (* bump this pipeline's progress counter with a CAS loop, like real
       pipeline stages publishing completion *)
    let cell = Addr.offset progress pipeline in
    let rec bump () =
      let v = Program.load cell in
      if not (Program.cas cell ~expect:v ~replace:(v + 1)) then begin
        Program.spin_pause ();
        bump ()
      end
    in
    bump ();
    if stage + 1 < stages then [ id + 1 ] else []
  in
  let wl =
    Ws_runtime.Workload.make ~name:"pipelines"
      ~roots:(List.init pipelines (fun p -> p * stages))
      ~execute ~init
      ~expected_total:(pipelines * stages) ()
  in
  (wl, progress)

let () =
  List.iter
    (fun qname ->
      let wl, progress = make_workload () in
      let cfg =
        {
          Ws_runtime.Engine.default_config with
          workers = 4;
          queue = Ws_core.Registry.find qname;
          delta = 4;
          sb_capacity = 16;
          seed = 9;
        }
      in
      let r = Ws_runtime.Engine.run_timed cfg wl in
      (* verify through the simulated memory: every pipeline completed all
         of its stages *)
      ignore progress;
      let makespan =
        match r.Ws_runtime.Engine.timing with
        | Some t -> t.Tso.Timing.makespan
        | None -> assert false
      in
      Printf.printf
        "%-14s makespan %7d cycles, %d tasks, %.1f%% stolen, lost=%d dup=%d\n"
        qname makespan
        (Ws_runtime.Metrics.total_tasks r.Ws_runtime.Engine.metrics)
        (Ws_runtime.Metrics.stolen_task_pct r.Ws_runtime.Engine.metrics)
        r.Ws_runtime.Engine.lost r.Ws_runtime.Engine.duplicates)
    [ "chase-lev"; "ff-cl"; "thep" ];
  print_endline "every pipeline ran its stages in order (spawn chains)"
