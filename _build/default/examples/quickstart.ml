(* Quickstart: a worker and a thief share one FF-THE queue on a simulated
   bounded-TSO machine.

   Run with:  dune exec examples/quickstart.exe

   The worker takes tasks without ever issuing a memory fence; the thief
   compensates by reasoning about the store-buffer bound (delta) and refuses
   to steal (ABORT) when it cannot rule out a conflict hidden in the
   worker's buffer. *)

open Tso

let () =
  (* A TSO[4] machine: every load may be reordered with up to 4 earlier
     stores of the same thread. *)
  let machine = Machine.create (Machine.abstract_config ~sb_capacity:4) in

  (* An FF-THE queue with delta = 2: the worker does >= 1 client store
     between takes, so at most ceil(4/2) = 2 take-stores can hide in its
     buffer. *)
  let params =
    { Ws_core.Queue_intf.default_params with capacity = 64; delta = 2; tag = "q" }
  in
  let queue =
    Ws_core.Registry.create (Ws_core.Registry.find "ff-the") machine params
  in

  let scratch = Memory.alloc (Machine.memory machine) ~name:"scratch" ~init:0 in
  let log fmt = Printf.printf fmt in

  (* The worker: put 8 tasks, then drain its own queue. All shared-memory
     accesses inside put/take are effects handled by the machine. *)
  let _worker =
    Machine.spawn machine ~name:"worker" (fun () ->
        for i = 1 to 8 do
          Ws_core.Queue_intf.put queue i
        done;
        let rec drain () =
          match Ws_core.Queue_intf.take queue with
          | `Task t ->
              log "worker took task %d\n" t;
              (* the client store between takes (the x of the paper's §4) *)
              Program.store scratch t;
              drain ()
          | `Empty -> log "worker: queue empty, done\n"
        in
        drain ())
  in

  (* The thief: try to steal five times. *)
  let _thief =
    Machine.spawn machine ~name:"thief" (fun () ->
        for _ = 1 to 5 do
          match Ws_core.Queue_intf.steal queue with
          | `Task t -> log "thief stole task %d\n" t
          | `Abort -> log "thief: ABORT (possible conflict within delta)\n"
          | `Empty -> log "thief: empty\n"
        done)
  in

  (* Drive the machine with an adversarial random scheduler that likes to
     keep stores buffered. *)
  let rng = Random.State.make [| 2014 |] in
  match Sched.run machine (Sched.weighted rng ~drain_weight:0.1) with
  | Sched.Quiescent -> log "machine quiescent: all threads done, buffers drained\n"
  | Sched.Max_steps | Sched.Deadlock -> assert false
