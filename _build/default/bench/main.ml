(* Benchmark harness.

   Part 1 — Bechamel micro-benchmarks: one Test.make per table/figure, each
   measuring the per-operation cost that the corresponding experiment's
   behaviour hinges on (fenced vs fence-free take, steal paths, the litmus
   program, the capacity microbenchmark, simulator step throughput, and the
   native deque ops).

   Part 2 — the full figure/table regeneration (the same harness the
   [wsrepro all] CLI exposes): Table 1, Fig. 1, Fig. 7, Fig. 8, Fig. 10 on
   both machines, Fig. 11. This is the output recorded in EXPERIMENTS.md. *)

open Bechamel
open Toolkit

(* --- micro-benchmark helpers ---------------------------------------- *)

(* A single-worker machine that repeatedly takes from a preloaded queue;
   returns a thunk performing [puts+takes] of one batch. Building the
   machine is part of the thunk (continuations are single-shot), so these
   numbers compare variants rather than measure bare op latency. *)
let sim_batch ~queue ~worker_fence ~delta () =
  let m = Tso.Machine.create (Tso.Machine.abstract_config ~sb_capacity:8) in
  let params =
    { Ws_core.Queue_intf.capacity = 128; delta; worker_fence; tag = "q" }
  in
  let q = Ws_core.Registry.create (Ws_core.Registry.find queue) m params in
  let scratch =
    Tso.Memory.alloc (Tso.Machine.memory m) ~name:"scratch" ~init:0
  in
  let _ =
    Tso.Machine.spawn m ~name:"w" (fun () ->
        for i = 1 to 64 do
          Ws_core.Queue_intf.put q i
        done;
        let rec drain () =
          match Ws_core.Queue_intf.take q with
          | `Task t ->
              Tso.Program.store scratch t;
              drain ()
          | `Empty -> ()
        in
        drain ())
  in
  match Tso.Sched.run m (Tso.Sched.round_robin ()) with
  | Tso.Sched.Quiescent -> ()
  | _ -> failwith "bench batch did not quiesce"

let litmus_batch () =
  ignore
    (Ws_litmus.Litmus_program.run ~tasks:64 ~sb_capacity:8 ~coalesce:true ~l:1
       ~delta:5 ~drain_weight:0.05 ~seed:7 ())

let capacity_batch () =
  ignore
    (Ws_litmus.Capacity.cycles_per_iteration Ws_litmus.Capacity.westmere_model
       ~stores:36 ~iterations:100)

let fig10_batch () =
  let dag =
    Ws_runtime.Dag.of_comp (Ws_workloads.Cilk_suite.fib ~spawn:5 ~join:5 ~leaf:10 8)
  in
  let cfg =
    {
      Ws_runtime.Engine.default_config with
      workers = 2;
      queue = Ws_core.Registry.find "thep";
      delta = 4;
      sb_capacity = 8;
    }
  in
  let wl = Ws_runtime.Dag.instantiate dag ~name:"fib8" in
  ignore (Ws_runtime.Engine.run_timed cfg wl)

let fig11_graph =
  lazy (Ws_workloads.Graph.random_graph ~nodes:400 ~edges:1200 ~seed:3)

let fig11_batch () =
  let checked =
    Ws_workloads.Graph_workloads.transitive_closure (Lazy.force fig11_graph)
      ~src:0 ()
  in
  let cfg =
    {
      Ws_runtime.Engine.default_config with
      workers = 2;
      queue = Ws_core.Registry.find "ff-cl";
      delta = 4;
      sb_capacity = 8;
    }
  in
  ignore
    (Ws_runtime.Engine.run_timed cfg checked.Ws_workloads.Graph_workloads.workload)

let ablation_batch () =
  ignore
    (Ws_harness.Exp_ablation.fence_sweep ~bench:"Integrate" ~costs:[ 20 ] ())

let native_cl_batch () =
  let q = Ws_native.Chase_lev.create ~capacity:128 () in
  for i = 1 to 64 do
    Ws_native.Chase_lev.push q i
  done;
  for _ = 1 to 32 do
    ignore (Ws_native.Chase_lev.pop q)
  done;
  for _ = 1 to 32 do
    ignore (Ws_native.Chase_lev.steal q)
  done

let native_the_batch () =
  let q = Ws_native.The_queue.create ~capacity:128 () in
  for i = 1 to 64 do
    Ws_native.The_queue.push q i
  done;
  for _ = 1 to 32 do
    ignore (Ws_native.The_queue.pop q)
  done;
  for _ = 1 to 32 do
    ignore (Ws_native.The_queue.steal q)
  done

let tests =
  [
    (* Fig. 1: the fence is the whole story of the worker's take path *)
    Test.make ~name:"fig1/the-take-fenced(64ops)"
      (Staged.stage (sim_batch ~queue:"the" ~worker_fence:true ~delta:1));
    Test.make ~name:"fig1/the-take-fence-free(64ops)"
      (Staged.stage (sim_batch ~queue:"the" ~worker_fence:false ~delta:1));
    (* Fig. 10 algorithms on the simulated machine *)
    Test.make ~name:"fig10/ff-the(64ops)"
      (Staged.stage (sim_batch ~queue:"ff-the" ~worker_fence:false ~delta:4));
    Test.make ~name:"fig10/thep(64ops)"
      (Staged.stage (sim_batch ~queue:"thep" ~worker_fence:false ~delta:4));
    Test.make ~name:"fig10/fib8-2workers-thep" (Staged.stage fig10_batch);
    (* Fig. 11 *)
    Test.make ~name:"fig11/ff-cl(64ops)"
      (Staged.stage (sim_batch ~queue:"ff-cl" ~worker_fence:false ~delta:4));
    Test.make ~name:"fig11/idempotent-lifo(64ops)"
      (Staged.stage (sim_batch ~queue:"idempotent-lifo" ~worker_fence:false ~delta:1));
    Test.make ~name:"fig11/tc-400nodes-ff-cl" (Staged.stage fig11_batch);
    (* Fig. 8 / Fig. 9: one litmus run *)
    Test.make ~name:"fig8/litmus-run(64tasks)" (Staged.stage litmus_batch);
    (* Fig. 6 / Fig. 7: the capacity microbenchmark *)
    Test.make ~name:"fig7/capacity-point(100iters)" (Staged.stage capacity_batch);
    (* native artifact *)
    Test.make ~name:"native/chase-lev(64push+pop+steal)"
      (Staged.stage native_cl_batch);
    Test.make ~name:"native/the-queue(64push+pop+steal)"
      (Staged.stage native_the_batch);
    (* ablation: one fence-sweep point *)
    Test.make ~name:"ablation/fence-sweep-point" (Staged.stage ablation_batch);
  ]

let run_micro () =
  let ols =
    Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:None ()
  in
  let raw =
    List.map (fun test -> Benchmark.all cfg instances test) tests
  in
  Printf.printf "== Bechamel micro-benchmarks (ns per batch, OLS on run) ==\n";
  List.iter2
    (fun test tbl ->
      let results = Analyze.all ols Instance.monotonic_clock tbl in
      Hashtbl.iter
        (fun name ols_result ->
          let est =
            match Analyze.OLS.estimates ols_result with
            | Some (e :: _) -> Printf.sprintf "%12.1f ns" e
            | _ -> "        n/a"
          in
          let r2 =
            match Analyze.OLS.r_square ols_result with
            | Some r -> Printf.sprintf "r²=%.3f" r
            | None -> ""
          in
          Printf.printf "%-40s %s  %s\n%!" name est r2)
        results;
      ignore test)
    tests raw

(* --- full figure regeneration ---------------------------------------- *)

let run_figures () =
  print_newline ();
  Ws_harness.Exp_table1.run ();
  print_newline ();
  Ws_harness.Exp_fig1.run ();
  print_newline ();
  Ws_harness.Exp_fig7.run ();
  print_newline ();
  Ws_harness.Exp_fig8.run ();
  print_newline ();
  List.iter
    (fun m ->
      Ws_harness.Exp_fig10.run m ~repeats:3 ();
      print_newline ())
    Ws_harness.Machine_config.primary;
  Ws_harness.Exp_fig11.run ~repeats:3 ();
  print_newline ();
  Ws_harness.Exp_ablation.run ()

let () =
  let micro_only = Array.mem "--micro" Sys.argv in
  let figures_only = Array.mem "--figures" Sys.argv in
  if not figures_only then run_micro ();
  if not micro_only then run_figures ()
