  $ wsrepro litmus -l 1 --delta 5 --sb 8 --runs 25 --tasks 96
  $ wsrepro litmus -l 1 --delta 2 --sb 8 --runs 60 --tasks 96 --coalesce
