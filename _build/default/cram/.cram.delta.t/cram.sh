  $ wsrepro delta -m westmere-ex
  $ wsrepro delta -m haswell --client-stores 2
