  $ wsrepro fig7 | grep -E 'documented capacity'
