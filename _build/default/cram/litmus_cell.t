A single safe cell of the Fig. 9 litmus program: delta at the true bound
never produces an incorrect execution.

  $ wsrepro litmus -l 1 --delta 5 --sb 8 --runs 25 --tasks 96
  L=1 delta=5 sb=8(+B) coalesce=false: 0 incorrect out of 25 runs

And an unsafe delta is refuted (exit code 1):

  $ wsrepro litmus -l 1 --delta 2 --sb 8 --runs 60 --tasks 96 --coalesce
  L=1 delta=2 sb=8(+B) coalesce=true: 53 incorrect out of 60 runs
  [1]
