The §4 static analysis derives the paper's default deltas from the worker
loop's CFG:

  $ wsrepro delta -m westmere-ex
  machine westmere-ex: reorder bound S = 33
  worker-loop CFG: min stores between takes x = 1
  sound delta = ceil(S/(x+1)) = 17

  $ wsrepro delta -m haswell --client-stores 2
  machine haswell: reorder bound S = 43
  worker-loop CFG: min stores between takes x = 2
  sound delta = ceil(S/(x+1)) = 15
