The abstract machine passes the classic x86-TSO litmus suite, with every
verdict decided exhaustively:

  $ wsrepro tso-litmus
  == Classic x86-TSO litmus tests against the abstract machine ==
  SB                 allowed   observed          80 runs (exhaustive)  OK
  SB+fences          forbidden not observed      70 runs (exhaustive)  OK
  SB+rmw             forbidden not observed      70 runs (exhaustive)  OK
  MP                 forbidden not observed      30 runs (exhaustive)  OK
  LB                 forbidden not observed      20 runs (exhaustive)  OK
  n6                 allowed   observed         420 runs (exhaustive)  OK
  n5                 forbidden not observed      80 runs (exhaustive)  OK
  IRIW               forbidden not observed    2520 runs (exhaustive)  OK
  store-forwarding   forbidden not observed       5 runs (exhaustive)  OK
  rmw-atomic         forbidden not observed       6 runs (exhaustive)  OK
