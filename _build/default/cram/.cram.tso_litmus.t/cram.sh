  $ wsrepro tso-litmus
