The store-buffer capacity measurement puts the knee exactly at each
machine's documented capacity:

  $ wsrepro fig7 | grep -E 'documented capacity'
  -- westmere-ex (documented capacity 32, measured 32) --
  32        110.0        <- knee (documented capacity)
  -- haswell (documented capacity 42, measured 42) --
  42        140.0        <- knee (documented capacity)
  -- sparc-t2 (documented capacity 8, measured 8) --
  8         110.0        <- knee (documented capacity)
