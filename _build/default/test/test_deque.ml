(* Tests for the seven work-stealing queue algorithms: sequential semantics
   on the simulated machine, adversarial random concurrency, bounded
   exhaustive model checking — and, crucially, that deliberately broken
   variants (no fence / too-small delta) are caught. *)

open Tso

let checki = Alcotest.check Alcotest.int
let checkb = Alcotest.check Alcotest.bool

(* Run a single-threaded program on a fresh machine with the given queue and
   return the value computed by the program. Uses a round-robin scheduler:
   with one thread the schedule is irrelevant. *)
let solo ?(sb_capacity = 4) ?(delta = 1) ?(capacity = 64) qname body =
  let m = Machine.create (Machine.abstract_config ~sb_capacity) in
  let params =
    { Ws_core.Queue_intf.capacity; delta; worker_fence = true; tag = "q" }
  in
  let q = Ws_core.Registry.create (Ws_core.Registry.find qname) m params in
  let result = ref [] in
  let _ = Machine.spawn m ~name:"solo" (fun () -> result := body q) in
  (match Sched.run m (Sched.round_robin ()) with
  | Sched.Quiescent -> ()
  | _ -> Alcotest.fail "solo run did not quiesce");
  !result

let take_all q =
  let rec go acc =
    match Ws_core.Queue_intf.take q with
    | `Task t -> go (t :: acc)
    | `Empty -> List.rev acc
  in
  go []

let strict_queues =
  [ "the"; "chase-lev"; "chase-lev-dyn"; "abp"; "ff-the"; "ff-cl"; "thep"; "thep-sep" ]
let all_queues = Ws_core.Registry.names

(* both THEP flavours block a lone thief on a nearly-empty queue (§6) *)
let is_thep qname = qname = "thep" || qname = "thep-sep" 

(* ------------------------------------------------------------------ *)
(* Sequential semantics                                                *)
(* ------------------------------------------------------------------ *)

let test_lifo_take qname () =
  let got =
    solo qname (fun q ->
        List.iter (Ws_core.Queue_intf.put q) [ 1; 2; 3; 4; 5 ];
        take_all q)
  in
  Alcotest.(check (list int)) "take is LIFO from the tail" [ 5; 4; 3; 2; 1 ] got

let test_fifo_steal qname () =
  (* THEP is excluded here: a lone thief on a queue within delta of empty
     blocks for the worker's echo — the §6 tightness violation — which
     test_thep_solo_steal_blocks asserts separately. The idempotent LIFO is
     a stack: its thieves pop from the top. *)
  let budget = if is_thep qname then 4 else 1000 in
  let got =
    solo qname ~delta:1 (fun q ->
        List.iter (Ws_core.Queue_intf.put q) [ 1; 2; 3; 4; 5 ];
        let rec go acc budget =
          if budget = 0 then List.rev acc
          else
            match Ws_core.Queue_intf.steal q with
            | `Task t -> go (t :: acc) (budget - 1)
            | `Empty | `Abort -> List.rev acc
        in
        go [] budget)
  in
  let expected_order =
    if qname = "idempotent-lifo" then [ 5; 4; 3; 2; 1 ] else [ 1; 2; 3; 4; 5 ]
  in
  let rec is_prefix a b =
    match (a, b) with
    | [], _ -> true
    | x :: a', y :: b' -> x = y && is_prefix a' b'
    | _ :: _, [] -> false
  in
  checkb "steal order (FIFO head, or stack top for the LIFO queue)" true
    (is_prefix got expected_order);
  let (module Q : Ws_core.Queue_intf.S) = Ws_core.Registry.find qname in
  if (not Q.may_abort) && not (is_thep qname) then
    Alcotest.(check (list int)) "non-aborting queues drain fully" expected_order got

(* §6, "violating tightness by blocking": a THEP steal invoked when the
   queue holds <= delta tasks and no worker is running never returns. *)
let test_thep_solo_steal_blocks () =
  let m = Machine.create (Machine.abstract_config ~sb_capacity:4) in
  let params =
    { Ws_core.Queue_intf.capacity = 16; delta = 2; worker_fence = false; tag = "q" }
  in
  let module Q = Ws_core.Thep in
  let q = Q.create m params in
  Q.preload q [ 1 ];
  let returned = ref false in
  let _ =
    Machine.spawn m ~name:"lone-thief" (fun () ->
        ignore (Q.steal q);
        returned := true)
  in
  (match Sched.run ~max_steps:20_000 m (Sched.round_robin ()) with
  | Sched.Max_steps -> ()
  | Sched.Quiescent -> Alcotest.fail "lone THEP thief must block, not return"
  | Sched.Deadlock -> Alcotest.fail "deadlock");
  checkb "steal never returned" false !returned

let test_empty_results qname () =
  let takes =
    solo qname (fun q ->
        match Ws_core.Queue_intf.take q with `Empty -> [ 1 ] | `Task _ -> [])
  in
  checki "take on empty" 1 (List.length takes);
  let (module Q : Ws_core.Queue_intf.S) = Ws_core.Registry.find qname in
  let steals =
    solo qname (fun q ->
        match Ws_core.Queue_intf.steal q with
        | `Empty -> [ 1 ]
        | `Abort -> if Q.may_abort then [ 1 ] else []
        | `Task _ -> [])
  in
  checki "steal on empty" 1 (List.length steals)

let test_interleaved_put_take qname () =
  let got =
    solo qname (fun q ->
        Ws_core.Queue_intf.put q 1;
        Ws_core.Queue_intf.put q 2;
        let a = Ws_core.Queue_intf.take q in
        Ws_core.Queue_intf.put q 3;
        let b = Ws_core.Queue_intf.take q in
        let c = Ws_core.Queue_intf.take q in
        let d = Ws_core.Queue_intf.take q in
        List.filter_map
          (function `Task t -> Some t | `Empty -> None)
          [ a; b; c; d ])
  in
  Alcotest.(check (list int)) "mixed puts and takes" [ 2; 3; 1 ] got

let test_preload qname () =
  (* preload happens host-side before the machine runs *)
  let m = Machine.create (Machine.abstract_config ~sb_capacity:4) in
  let params = { Ws_core.Queue_intf.default_params with capacity = 32; tag = "q" } in
  let (module Q : Ws_core.Queue_intf.S) = Ws_core.Registry.find qname in
  let q = Q.create m params in
  Q.preload q [ 10; 20; 30 ];
  let out = ref [] in
  let _ =
    Machine.spawn m ~name:"w" (fun () ->
        let rec go () =
          match Q.take q with
          | `Task t ->
              out := t :: !out;
              go ()
          | `Empty -> ()
        in
        go ())
  in
  (match Sched.run m (Sched.round_robin ()) with
  | Sched.Quiescent -> ()
  | _ -> Alcotest.fail "preload run did not quiesce");
  Alcotest.(check (list int)) "preloaded items taken LIFO" [ 10; 20; 30 ] !out

let test_wraparound qname () =
  (* more puts than capacity, drained in between: exercises index wrapping *)
  let got =
    solo qname ~capacity:8 (fun q ->
        let total = ref 0 in
        for round = 0 to 9 do
          for i = 0 to 5 do
            Ws_core.Queue_intf.put q ((round * 10) + i)
          done;
          List.iter (fun t -> total := !total + t) (take_all q)
        done;
        [ !total ])
  in
  let expected = List.init 10 (fun r -> List.init 6 (fun i -> (r * 10) + i)) in
  let expected = List.fold_left ( + ) 0 (List.concat expected) in
  checki "all items preserved across wraparound" expected (List.hd got)

(* ------------------------------------------------------------------ *)
(* FF-specific behaviour                                               *)
(* ------------------------------------------------------------------ *)

let test_ff_abort_within_delta qname () =
  (* queue holds exactly delta+0 tasks: a thief must abort (it can never
     certify t - delta > h when t - h <= delta) *)
  let m = Machine.create (Machine.abstract_config ~sb_capacity:4) in
  let params =
    { Ws_core.Queue_intf.capacity = 32; delta = 3; worker_fence = false; tag = "q" }
  in
  let (module Q : Ws_core.Queue_intf.S) = Ws_core.Registry.find qname in
  let q = Q.create m params in
  Q.preload q [ 1; 2; 3 ];
  let r = ref `Empty in
  let _ = Machine.spawn m ~name:"thief" (fun () -> r := Q.steal q) in
  (match Sched.run m (Sched.round_robin ()) with
  | Sched.Quiescent -> ()
  | _ -> Alcotest.fail "no quiesce");
  checkb "thief aborts within delta" true (!r = `Abort)

let test_ff_steals_beyond_delta qname () =
  let m = Machine.create (Machine.abstract_config ~sb_capacity:4) in
  let params =
    { Ws_core.Queue_intf.capacity = 32; delta = 3; worker_fence = false; tag = "q" }
  in
  let (module Q : Ws_core.Queue_intf.S) = Ws_core.Registry.find qname in
  let q = Q.create m params in
  Q.preload q [ 1; 2; 3; 4; 5 ];
  let r = ref `Empty in
  let _ = Machine.spawn m ~name:"thief" (fun () -> r := Q.steal q) in
  (match Sched.run m (Sched.round_robin ()) with
  | Sched.Quiescent -> ()
  | _ -> Alcotest.fail "no quiesce");
  checkb "thief steals the head beyond delta" true (!r = `Task 1)

let test_thep_echo_resolves_uncertainty () =
  (* THEP with a huge delta: the thief is always uncertain, yet — unlike
     FF-THE — it can still steal, by waiting for the worker's echo. *)
  let m = Machine.create (Machine.abstract_config ~sb_capacity:4) in
  let params =
    { Ws_core.Queue_intf.capacity = 64; delta = max_int; worker_fence = false; tag = "q" }
  in
  let module Q = Ws_core.Thep in
  let q = Q.create m params in
  Q.preload q (List.init 16 Fun.id);
  let stolen = ref [] in
  let taken = ref [] in
  let _ =
    Machine.spawn m ~name:"worker" (fun () ->
        let rec go () =
          match Q.take q with
          | `Task t ->
              taken := t :: !taken;
              Program.work 5;
              go ()
          | `Empty -> ()
        in
        go ())
  in
  let _ =
    Machine.spawn m ~name:"thief" (fun () ->
        for _ = 1 to 4 do
          match Q.steal q with
          | `Task t -> stolen := t :: !stolen
          | `Empty | `Abort -> ()
        done)
  in
  let rng = Random.State.make [| 5 |] in
  (match Sched.run m (Sched.weighted rng ~drain_weight:0.15) with
  | Sched.Quiescent -> ()
  | _ -> Alcotest.fail "no quiesce");
  checki "all 16 tasks extracted exactly once" 16
    (List.length !stolen + List.length !taken);
  checkb "the echo let the thief steal despite delta = inf" true
    (List.length !stolen > 0)

(* ------------------------------------------------------------------ *)
(* Randomized adversarial concurrency                                  *)
(* ------------------------------------------------------------------ *)

let spec_for qname =
  {
    Ws_harness.Scenarios.default_spec with
    queue = qname;
    sb_capacity = 3;
    delta = 2;
    (* with 1 client store between takes, ceil(3/2) = 2 is a sound delta *)
    client_stores = 1;
    preloaded = 6;
    puts = 4;
    steal_attempts = 6;
    thieves = 2;
  }

let test_random_safety qname () =
  let seeds = List.init 120 (fun i -> (31 * i) + 1) in
  match Ws_harness.Scenarios.random_check (spec_for qname) ~seeds () with
  | Ok () -> ()
  | Error msg -> Alcotest.fail msg

let test_random_safety_realistic qname () =
  (* same but on the realistic (egress + coalescing) machine; client stores
     prevent same-address coalescing, and delta covers capacity+1:
     ceil(4/2) = 2 with sb_capacity 3 -> use delta 2 *)
  let spec =
    {
      (spec_for qname) with
      buffer_model = Store_buffer.Realistic { coalesce = true };
      sb_capacity = 3;
      delta = 2;
    }
  in
  let seeds = List.init 120 (fun i -> (17 * i) + 3) in
  match Ws_harness.Scenarios.random_check spec ~seeds () with
  | Ok () -> ()
  | Error msg -> Alcotest.fail msg

(* ------------------------------------------------------------------ *)
(* Bounded exhaustive model checking                                   *)
(* ------------------------------------------------------------------ *)

let explore_spec qname =
  {
    Ws_harness.Scenarios.default_spec with
    queue = qname;
    sb_capacity = 1;
    delta = 1;
    client_stores = 1;
    (* delta = ceil(1/2) = 1 is sound *)
    preloaded = 2;
    puts = 0;
    steal_attempts = 1;
  }

let test_explore_safety qname () =
  let st =
    Ws_harness.Scenarios.explore_check (explore_spec qname) ~max_runs:120_000
      ~preemption_bound:(Some 2) ()
  in
  (match st.Tso.Explore.failures with
  | [] -> ()
  | (_, msg) :: _ -> Alcotest.fail msg);
  checki "no deadlocks" 0 st.Tso.Explore.deadlocks;
  checki "no truncation" 0 st.Tso.Explore.truncated

(* ------------------------------------------------------------------ *)
(* Broken variants MUST fail                                           *)
(* ------------------------------------------------------------------ *)

let test_the_without_fence_fails () =
  let spec = { (explore_spec "the") with worker_fence = false } in
  let st =
    Ws_harness.Scenarios.explore_check spec ~max_runs:500_000
      ~preemption_bound:(Some 3) ()
  in
  checkb "explorer catches the missing THE fence" true
    (st.Tso.Explore.failures <> [])

let test_chase_lev_without_fence_fails () =
  let spec =
    {
      (explore_spec "chase-lev") with
      worker_fence = false;
      preloaded = 2;
      steal_attempts = 2;
      client_stores = 0;
    }
  in
  let st =
    Ws_harness.Scenarios.explore_check spec ~max_runs:500_000
      ~preemption_bound:(Some 3) ()
  in
  checkb "explorer catches the missing Chase-Lev fence" true
    (st.Tso.Explore.failures <> [])

let test_ff_cl_undersized_delta_fails () =
  (* TSO[2], no client stores: two takes can hide, delta = 1 is unsound *)
  let spec =
    {
      Ws_harness.Scenarios.default_spec with
      queue = "ff-cl";
      sb_capacity = 2;
      delta = 1;
      worker_fence = false;
      preloaded = 3;
      puts = 0;
      steal_attempts = 2;
      client_stores = 0;
    }
  in
  let st =
    Ws_harness.Scenarios.explore_check spec ~max_runs:1_000_000
      ~preemption_bound:(Some 3) ()
  in
  checkb "explorer catches the unsound delta" true (st.Tso.Explore.failures <> [])

let test_ff_the_undersized_delta_fails_random () =
  let spec =
    {
      Ws_harness.Scenarios.default_spec with
      queue = "ff-the";
      sb_capacity = 4;
      delta = 1;
      worker_fence = false;
      preloaded = 16;
      puts = 0;
      steal_attempts = 8;
      thieves = 1;
      client_stores = 0;
    }
  in
  let seeds = List.init 400 (fun i -> i + 1) in
  match Ws_harness.Scenarios.random_check spec ~seeds ~drain_weight:0.03 () with
  | Error _ -> () (* violation found, as it must be *)
  | Ok () -> Alcotest.fail "random testing missed the unsound delta"


(* ------------------------------------------------------------------ *)
(* Dynamic Chase-Lev growth and ABP specifics                          *)
(* ------------------------------------------------------------------ *)

let test_chase_lev_dyn_grows () =
  let m = Machine.create (Machine.abstract_config ~sb_capacity:4) in
  let params = { Ws_core.Queue_intf.default_params with capacity = 8; tag = "q" } in
  let q = Ws_core.Chase_lev_dyn.create m params in
  let out = ref [] in
  let _ =
    Machine.spawn m ~name:"w" (fun () ->
        for i = 1 to 50 do
          Ws_core.Chase_lev_dyn.put q i
        done;
        let rec drain () =
          match Ws_core.Chase_lev_dyn.take q with
          | `Task t ->
              out := t :: !out;
              drain ()
          | `Empty -> ()
        in
        drain ())
  in
  (match Sched.run m (Sched.round_robin ()) with
  | Sched.Quiescent -> ()
  | _ -> Alcotest.fail "no quiesce");
  checkb "grew at least twice (8 -> 16 -> 32 -> 64)" true
    (Ws_core.Chase_lev_dyn.grows q >= 2);
  Alcotest.(check (list int)) "all 50 tasks, LIFO" (List.init 50 (fun i -> i + 1))
    (List.rev !out |> List.rev)
    |> ignore;
  checki "all 50 extracted" 50 (List.length !out)

let test_chase_lev_dyn_growth_under_concurrency () =
  (* a thief keeps stealing while the owner grows the buffer repeatedly *)
  let spec =
    {
      Ws_harness.Scenarios.default_spec with
      queue = "chase-lev-dyn";
      sb_capacity = 3;
      preloaded = 4;
      puts = 20;
      steal_attempts = 12;
      thieves = 2;
    }
  in
  let seeds = List.init 150 (fun i -> (13 * i) + 1) in
  match Ws_harness.Scenarios.random_check spec ~seeds () with
  | Ok () -> ()
  | Error msg -> Alcotest.fail msg

let test_abp_abort_is_contention () =
  (* solo thief never aborts (no contention) ... *)
  let m = Machine.create (Machine.abstract_config ~sb_capacity:4) in
  let params = { Ws_core.Queue_intf.default_params with capacity = 32; tag = "q" } in
  let q = Ws_core.Abp.create m params in
  Ws_core.Abp.preload q [ 1; 2; 3 ];
  let results = ref [] in
  let _ =
    Machine.spawn m ~name:"thief" (fun () ->
        for _ = 1 to 4 do
          results := Ws_core.Abp.steal q :: !results
        done)
  in
  (match Sched.run m (Sched.round_robin ()) with
  | Sched.Quiescent -> ()
  | _ -> Alcotest.fail "no quiesce");
  checkb "no abort without contention" true
    (not (List.mem `Abort !results));
  (* ... and the tag defeats ABA across a reset *)
  checki "stole everything" 3
    (List.length (List.filter (function `Task _ -> true | _ -> false) !results))

let test_abp_tag_defeats_aba () =
  (* exhaustively: worker drains and refills (bumping the tag); no task may
     be extracted twice even though indices repeat *)
  let mk () =
    let m = Machine.create (Machine.abstract_config ~sb_capacity:2) in
    let params = { Ws_core.Queue_intf.default_params with capacity = 8; tag = "q" } in
    let q = Ws_core.Abp.create m params in
    let removed = Array.make 4 0 in
    let _ =
      Machine.spawn m ~name:"worker" (fun () ->
          Ws_core.Abp.put q 0;
          (match Ws_core.Abp.take q with
          | `Task i -> removed.(i) <- removed.(i) + 1
          | `Empty -> ());
          Ws_core.Abp.put q 1;
          match Ws_core.Abp.take q with
          | `Task i -> removed.(i) <- removed.(i) + 1
          | `Empty -> ())
    in
    let _ =
      Machine.spawn m ~name:"thief" (fun () ->
          for _ = 1 to 2 do
            match Ws_core.Abp.steal q with
            | `Task i -> removed.(i) <- removed.(i) + 1
            | `Empty | `Abort -> ()
          done)
    in
    let check () =
      let bad = ref None in
      Array.iteri
        (fun i c -> if c > 1 then bad := Some (Printf.sprintf "task %d x%d" i c))
        removed;
      match !bad with None -> Ok () | Some m -> Error m
    in
    { Tso.Explore.machine = m; check }
  in
  let st = Tso.Explore.search ~max_runs:400_000 ~mk () in
  (match st.Tso.Explore.failures with
  | [] -> ()
  | (_, msg) :: _ -> Alcotest.fail msg);
  checki "no truncation" 0 st.Tso.Explore.truncated

(* ------------------------------------------------------------------ *)
(* Pack                                                                *)
(* ------------------------------------------------------------------ *)

let pack2_roundtrip =
  QCheck.Test.make ~name:"pack2 round-trips" ~count:500
    QCheck.(pair (int_bound ((1 lsl 30) - 1)) (int_bound ((1 lsl 30) - 1)))
    (fun (hi, lo) ->
      let v = Ws_core.Pack.pack2 ~lo_bits:31 ~hi ~lo in
      Ws_core.Pack.unpack2 ~lo_bits:31 v = (hi, lo))

let pack3_roundtrip =
  QCheck.Test.make ~name:"pack3 round-trips" ~count:500
    QCheck.(
      triple (int_bound ((1 lsl 20) - 1)) (int_bound ((1 lsl 19) - 1))
        (int_bound ((1 lsl 19) - 1)))
    (fun (hi, mid, lo) ->
      let v = Ws_core.Pack.pack3 ~lo_bits:20 ~mid_bits:20 ~hi ~mid ~lo in
      Ws_core.Pack.unpack3 ~lo_bits:20 ~mid_bits:20 v = (hi, mid, lo))

let pack_rejects_negative () =
  Alcotest.check_raises "negative lo"
    (Invalid_argument "Pack: negative lo field") (fun () ->
      ignore (Ws_core.Pack.pack2 ~lo_bits:31 ~hi:0 ~lo:(-1)))

let pack_rejects_overflow () =
  Alcotest.check_raises "lo overflow"
    (Invalid_argument "Pack: lo field overflows 4 bits") (fun () ->
      ignore (Ws_core.Pack.pack2 ~lo_bits:4 ~hi:0 ~lo:16))

(* qcheck: single-threaded op sequences against the sequential spec.
   THEP only gets put/take sequences: its solo steal can legitimately block
   (see test_thep_solo_steal_blocks). *)
let seq_spec_prop qname =
  let max_op = if is_thep qname then 1 else 2 in
  QCheck.Test.make
    ~name:(Printf.sprintf "%s matches the sequential spec" qname)
    ~count:120
    QCheck.(list (int_bound max_op))
    (fun ops ->
      let (module Q : Ws_core.Queue_intf.S) = Ws_core.Registry.find qname in
      let results =
        solo qname ~capacity:256 (fun q ->
            List.mapi
              (fun i op ->
                match op with
                | 0 ->
                    Ws_core.Queue_intf.put q i;
                    `Put i
                | 1 -> `Take (Ws_core.Queue_intf.take q)
                | _ -> `Steal (Ws_core.Queue_intf.steal q))
              ops)
      in
      (* replay against the spec; a lone sequential thread must behave like
         the strict spec except that FF thieves may abort *)
      let rec go state = function
        | [] -> true
        | `Put i :: rest -> (
            match Ws_linearize.Spec.conforms Ws_linearize.Spec.Strict state
                    (Ws_linearize.Spec.Put i) Ws_linearize.Spec.R_ok with
            | Some s' -> go s' rest
            | None -> false)
        | `Take r :: rest -> (
            let resp =
              match r with
              | `Task t -> Ws_linearize.Spec.R_task t
              | `Empty -> Ws_linearize.Spec.R_empty
            in
            match Ws_linearize.Spec.conforms Ws_linearize.Spec.Strict state
                    Ws_linearize.Spec.Take resp with
            | Some s' -> go s' rest
            | None -> false)
        | `Steal r :: rest -> (
            let resp =
              match r with
              | `Task t -> Ws_linearize.Spec.R_task t
              | `Empty -> Ws_linearize.Spec.R_empty
              | `Abort -> Ws_linearize.Spec.R_abort
            in
            let kind =
              if Q.may_abort then Ws_linearize.Spec.Relaxed
              else Ws_linearize.Spec.Strict
            in
            match Ws_linearize.Spec.conforms kind state Ws_linearize.Spec.Steal
                    resp with
            | Some s' -> go s' rest
            | None -> false)
      in
      go Ws_linearize.Spec.initial results)

let () =
  let for_queues qs name speed f =
    List.map
      (fun q -> Alcotest.test_case (Printf.sprintf "%s [%s]" name q) speed (f q))
      qs
  in
  Alcotest.run "deque"
    [
      ( "sequential",
        for_queues all_queues "take LIFO" `Quick (fun q () -> test_lifo_take q ())
        @ for_queues all_queues "steal FIFO" `Quick (fun q () -> test_fifo_steal q ())
        @ for_queues all_queues "empty" `Quick (fun q () -> test_empty_results q ())
        @ for_queues strict_queues "interleaved" `Quick (fun q () ->
              test_interleaved_put_take q ())
        @ for_queues all_queues "preload" `Quick (fun q () -> test_preload q ())
        @ for_queues strict_queues "wraparound" `Quick (fun q () ->
              test_wraparound q ()) );
      ( "fence-free behaviour",
        for_queues [ "ff-the"; "ff-cl" ] "abort within delta" `Quick (fun q () ->
            test_ff_abort_within_delta q ())
        @ for_queues [ "ff-the"; "ff-cl" ] "steal beyond delta" `Quick (fun q () ->
              test_ff_steals_beyond_delta q ())
        @ [
            Alcotest.test_case "THEP echo resolves uncertainty" `Quick
              test_thep_echo_resolves_uncertainty;
            Alcotest.test_case "THEP lone thief blocks (§6 tightness)" `Quick
              test_thep_solo_steal_blocks;
          ] );
      ( "dynamic chase-lev & abp",
        [
          Alcotest.test_case "growth, sequential" `Quick test_chase_lev_dyn_grows;
          Alcotest.test_case "growth under concurrency" `Slow
            test_chase_lev_dyn_growth_under_concurrency;
          Alcotest.test_case "abp: abort means contention" `Quick
            test_abp_abort_is_contention;
          Alcotest.test_case "abp: tag defeats ABA (exhaustive)" `Slow
            test_abp_tag_defeats_aba;
        ] );
      ( "random adversarial",
        for_queues all_queues "safety (abstract)" `Slow (fun q () ->
            test_random_safety q ())
        @ for_queues all_queues "safety (realistic+coalescing)" `Slow (fun q () ->
              test_random_safety_realistic q ()) );
      ( "model checking",
        for_queues all_queues "exhaustive small-scope" `Slow (fun q () ->
            test_explore_safety q ())
        @ [
            Alcotest.test_case "THE without fence FAILS" `Slow
              test_the_without_fence_fails;
            Alcotest.test_case "Chase-Lev without fence FAILS" `Slow
              test_chase_lev_without_fence_fails;
            Alcotest.test_case "FF-CL undersized delta FAILS" `Slow
              test_ff_cl_undersized_delta_fails;
            Alcotest.test_case "FF-THE undersized delta FAILS (random)" `Slow
              test_ff_the_undersized_delta_fails_random;
          ] );
      ( "pack",
        [
          QCheck_alcotest.to_alcotest pack2_roundtrip;
          QCheck_alcotest.to_alcotest pack3_roundtrip;
          Alcotest.test_case "rejects negative" `Quick pack_rejects_negative;
          Alcotest.test_case "rejects overflow" `Quick pack_rejects_overflow;
        ] );
      ( "spec conformance",
        List.map (fun q -> QCheck_alcotest.to_alcotest (seq_spec_prop q))
          strict_queues );
    ]
