(* Tests for the Table-1 benchmark DAGs and the §8.2 graph workloads. *)

let checki = Alcotest.check Alcotest.int
let checkb = Alcotest.check Alcotest.bool

open Ws_workloads

(* ------------------------------------------------------------------ *)
(* Cilk suite                                                          *)
(* ------------------------------------------------------------------ *)

let test_suite_inventory () =
  checki "eleven benchmarks, as in Table 1" 11 (List.length Cilk_suite.all);
  Alcotest.(check (list string))
    "Fig. 1 subset"
    [ "Fib"; "Jacobi"; "QuickSort"; "Matmul"; "Integrate"; "knapsack"; "cholesky" ]
    Cilk_suite.fig1_names;
  List.iter
    (fun n -> ignore (Cilk_suite.find n))
    Cilk_suite.fig1_names

let test_every_bench_builds b () =
  let dag = Cilk_suite.dag b in
  checkb "has tasks" true (Ws_runtime.Dag.size dag > 1);
  checkb "has work" true (Ws_runtime.Dag.total_work dag > 0);
  let t1 = Ws_runtime.Dag.total_work dag in
  let tinf = Ws_runtime.Dag.critical_path dag in
  checkb "critical path <= total work" true (tinf <= t1);
  checkb "exposes parallelism (T1/Tinf > 2)" true
    (float_of_int t1 /. float_of_int tinf > 2.0)

let test_dag_determinism () =
  (* identical DAG across two builds: every variant must schedule the same
     computation *)
  let b = Cilk_suite.find "QuickSort" in
  let d1 = Ws_runtime.Dag.of_comp (b.Cilk_suite.comp ()) in
  let d2 = Ws_runtime.Dag.of_comp (b.Cilk_suite.comp ()) in
  checki "same size" (Ws_runtime.Dag.size d1) (Ws_runtime.Dag.size d2);
  checki "same work" (Ws_runtime.Dag.total_work d1) (Ws_runtime.Dag.total_work d2);
  checki "same critical path" (Ws_runtime.Dag.critical_path d1)
    (Ws_runtime.Dag.critical_path d2)

let test_fib_task_count () =
  (* fib n has fib(n+1) leaves and fib(n+1)-1 internal forks, each fork
     contributing a fork and a join task *)
  let rec fib = function 0 -> 0 | 1 -> 1 | n -> fib (n - 1) + fib (n - 2) in
  let n = 10 in
  let d = Ws_runtime.Dag.of_comp (Cilk_suite.fib n) in
  let leaves = fib (n + 1) in
  checki "task count" (leaves + (2 * (leaves - 1))) (Ws_runtime.Dag.size d)

let test_jacobi_is_iterative () =
  (* one sweep of r rows -> critical path ~ iters * (fork + row + join) *)
  let d = Ws_runtime.Dag.of_comp (Cilk_suite.jacobi ~rows:8 ~iters:4 ~row_work:10) in
  checki "tasks: 4 * (fork + join + 8 rows)" 40 (Ws_runtime.Dag.size d);
  checki "critical path = 4 sweeps" (4 * (6 + 10 + 8)) (Ws_runtime.Dag.critical_path d)

let test_lud_tail_is_narrow () =
  (* the last wavefront has a single diagonal task: LUD's shallow tail *)
  let d = Ws_runtime.Dag.of_comp (Cilk_suite.lud ~blocks:4) in
  checkb "built" true (Ws_runtime.Dag.size d > 10)

(* ------------------------------------------------------------------ *)
(* Graph generators                                                    *)
(* ------------------------------------------------------------------ *)

let test_torus_degrees () =
  let g = Graph.torus ~width:8 ~height:6 in
  checki "nodes" 48 g.Graph.nodes;
  Alcotest.(check (list (pair int int)))
    "every torus node has degree 4"
    [ (4, 48) ]
    (Graph.degree_histogram g);
  checki "directed edges" (48 * 4) (Graph.edges g)

let test_torus_fully_reachable () =
  let g = Graph.torus ~width:5 ~height:5 in
  let r = Graph.reachable_from g 0 in
  checki "torus is connected" 25
    (Array.fold_left (fun a b -> if b then a + 1 else a) 0 r)

let test_k_graph_shape () =
  let g = Graph.k_graph ~nodes:1000 ~k:3 ~seed:1 in
  checki "nodes" 1000 g.Graph.nodes;
  let max_deg =
    Array.fold_left (fun a l -> max a (Array.length l)) 0 g.Graph.adj
  in
  checkb "degree bounded by k" true (max_deg <= 3);
  (* matchings can collide, so the average degree is close to but possibly
     below k *)
  let avg = float_of_int (Graph.edges g) /. 1000.0 in
  checkb "average degree near k" true (avg > 2.0 && avg <= 3.0)

let test_random_graph_shape () =
  let g = Graph.random_graph ~nodes:500 ~edges:1500 ~seed:2 in
  checki "nodes" 500 g.Graph.nodes;
  let e = Graph.edges g / 2 in
  checkb "close to requested edge count (dedup may drop a few)" true
    (e > 1400 && e <= 1500)

let test_generators_deterministic () =
  let g1 = Graph.random_graph ~nodes:100 ~edges:300 ~seed:9 in
  let g2 = Graph.random_graph ~nodes:100 ~edges:300 ~seed:9 in
  checkb "same seed, same graph" true (g1.Graph.adj = g2.Graph.adj);
  let g3 = Graph.random_graph ~nodes:100 ~edges:300 ~seed:10 in
  checkb "different seed, different graph" true (g1.Graph.adj <> g3.Graph.adj)

let test_reachability_oracle () =
  (* two disconnected triangles *)
  let g =
    {
      Graph.nodes = 6;
      adj =
        [|
          [| 1; 2 |]; [| 0; 2 |]; [| 0; 1 |]; [| 4; 5 |]; [| 3; 5 |]; [| 3; 4 |];
        |];
    }
  in
  let r = Graph.reachable_from g 0 in
  Alcotest.(check (array bool))
    "only the first triangle"
    [| true; true; true; false; false; false |]
    r

(* ------------------------------------------------------------------ *)
(* Graph workloads through the engine                                  *)
(* ------------------------------------------------------------------ *)

let run_workload qname checked =
  let cfg =
    {
      Ws_runtime.Engine.default_config with
      workers = 3;
      queue = Ws_core.Registry.find qname;
      delta = 3;
      sb_capacity = 6;
      seed = 77;
    }
  in
  let r =
    Ws_runtime.Engine.run_timed cfg checked.Graph_workloads.workload
  in
  checkb "quiescent" true (r.Ws_runtime.Engine.outcome = Tso.Sched.Quiescent);
  match checked.Graph_workloads.verify () with
  | Ok () -> ()
  | Error e -> Alcotest.fail e

let test_tc_all_queues qname () =
  let g = Graph.random_graph ~nodes:300 ~edges:900 ~seed:3 in
  run_workload qname (Graph_workloads.transitive_closure g ~src:0 ())

let test_tc_disconnected () =
  (* visiting must stop at the component boundary; verify checks both
     directions (reachable => visited, unreachable => untouched) *)
  let g =
    {
      Graph.nodes = 6;
      adj =
        [|
          [| 1; 2 |]; [| 0; 2 |]; [| 0; 1 |]; [| 4; 5 |]; [| 3; 5 |]; [| 3; 4 |];
        |];
    }
  in
  run_workload "chase-lev" (Graph_workloads.transitive_closure g ~src:0 ())

let test_spanning_tree_all_queues qname () =
  let g = Graph.torus ~width:12 ~height:10 in
  run_workload qname (Graph_workloads.spanning_tree g ~src:5 ())

let test_spanning_tree_random_mode () =
  (* adversarial scheduling + idempotent queue: parents must still form a
     valid tree *)
  let g = Graph.torus ~width:6 ~height:6 in
  let checked = Graph_workloads.spanning_tree g ~src:0 () in
  let cfg =
    {
      Ws_runtime.Engine.default_config with
      workers = 2;
      queue = Ws_core.Registry.find "idempotent-fifo";
      sb_capacity = 4;
      seed = 5;
      max_steps = 5_000_000;
    }
  in
  let r =
    Ws_runtime.Engine.run_random ~drain_weight:0.1 cfg
      checked.Graph_workloads.workload
  in
  checkb "quiescent" true (r.Ws_runtime.Engine.outcome = Tso.Sched.Quiescent);
  match checked.Graph_workloads.verify () with
  | Ok () -> ()
  | Error e -> Alcotest.fail e

(* qcheck: TC visits exactly the reachable set on arbitrary random graphs *)
let tc_visits_reachable =
  QCheck.Test.make ~name:"transitive closure = host BFS on random graphs"
    ~count:25
    QCheck.(pair (int_range 10 120) (int_bound 1000))
    (fun (nodes, seed) ->
      let g = Graph.random_graph ~nodes ~edges:(2 * nodes) ~seed in
      let checked = Graph_workloads.transitive_closure g ~src:0 () in
      let cfg =
        {
          Ws_runtime.Engine.default_config with
          workers = 2;
          queue = Ws_core.Registry.find "ff-cl";
          delta = 2;
          sb_capacity = 4;
          seed;
        }
      in
      let r =
        Ws_runtime.Engine.run_timed cfg checked.Graph_workloads.workload
      in
      r.Ws_runtime.Engine.outcome = Tso.Sched.Quiescent
      && checked.Graph_workloads.verify () = Ok ())

let () =
  Alcotest.run "workloads"
    [
      ( "cilk-suite",
        [
          Alcotest.test_case "inventory" `Quick test_suite_inventory;
          Alcotest.test_case "dag determinism" `Quick test_dag_determinism;
          Alcotest.test_case "fib task count" `Quick test_fib_task_count;
          Alcotest.test_case "jacobi iterative shape" `Quick test_jacobi_is_iterative;
          Alcotest.test_case "lud builds" `Quick test_lud_tail_is_narrow;
        ]
        @ List.map
            (fun (b : Cilk_suite.bench) ->
              Alcotest.test_case
                (Printf.sprintf "builds [%s]" b.Cilk_suite.name)
                `Quick (test_every_bench_builds b))
            Cilk_suite.all );
      ( "graph-generators",
        [
          Alcotest.test_case "torus degrees" `Quick test_torus_degrees;
          Alcotest.test_case "torus connected" `Quick test_torus_fully_reachable;
          Alcotest.test_case "k-graph shape" `Quick test_k_graph_shape;
          Alcotest.test_case "random graph shape" `Quick test_random_graph_shape;
          Alcotest.test_case "determinism" `Quick test_generators_deterministic;
          Alcotest.test_case "reachability oracle" `Quick test_reachability_oracle;
        ] );
      ( "graph-workloads",
        [
          Alcotest.test_case "disconnected boundary" `Quick test_tc_disconnected;
          Alcotest.test_case "spanning tree adversarial + idempotent" `Slow
            test_spanning_tree_random_mode;
          QCheck_alcotest.to_alcotest tc_visits_reachable;
        ]
        @ List.map
            (fun q ->
              Alcotest.test_case
                (Printf.sprintf "transitive closure [%s]" q)
                `Quick (test_tc_all_queues q))
            Ws_core.Registry.names
        @ List.map
            (fun q ->
              Alcotest.test_case
                (Printf.sprintf "spanning tree [%s]" q)
                `Quick (test_spanning_tree_all_queues q))
            Ws_core.Registry.names );
    ]
