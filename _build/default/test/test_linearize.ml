(* Tests for the sequential specs and the Wing–Gong linearizability checker,
   including the paper's §3.3 result: put() buffering makes even the fenced
   baselines non-linearizable, a fence after put() restores linearizability,
   and the fence-free variants are linearizable w.r.t. the relaxed spec. *)

open Ws_linearize

let checkb = Alcotest.check Alcotest.bool

(* ------------------------------------------------------------------ *)
(* Spec                                                                *)
(* ------------------------------------------------------------------ *)

let test_spec_strict_transitions () =
  let s = Spec.of_contents [ 1; 2; 3 ] in
  (match Spec.apply Spec.Strict s Spec.Take with
  | [ (Spec.R_task 3, s') ] ->
      Alcotest.(check (list int)) "take from tail" [ 1; 2 ] (Spec.contents s')
  | _ -> Alcotest.fail "strict take must be deterministic");
  (match Spec.apply Spec.Strict s Spec.Steal with
  | [ (Spec.R_task 1, s') ] ->
      Alcotest.(check (list int)) "steal from head" [ 2; 3 ] (Spec.contents s')
  | _ -> Alcotest.fail "strict steal must be deterministic");
  match Spec.apply Spec.Strict Spec.initial Spec.Take with
  | [ (Spec.R_empty, _) ] -> ()
  | _ -> Alcotest.fail "take on empty"

let test_spec_relaxed_allows_abort () =
  let s = Spec.of_contents [ 7 ] in
  checkb "abort conforms, state unchanged" true
    (match Spec.conforms Spec.Relaxed s Spec.Steal Spec.R_abort with
    | Some s' -> Spec.contents s' = [ 7 ]
    | None -> false);
  checkb "strict spec rejects abort" true
    (Spec.conforms Spec.Strict s Spec.Steal Spec.R_abort = None)

let test_spec_idempotent_redelivery () =
  let s = Spec.of_contents [ 1; 2 ] in
  match Spec.conforms Spec.Idempotent s Spec.Steal (Spec.R_task 1) with
  | None -> Alcotest.fail "first steal"
  | Some s' -> (
      (* 1 was handed out; the idempotent spec may deliver it again *)
      match Spec.conforms Spec.Idempotent s' Spec.Take (Spec.R_task 1) with
      | Some s'' ->
          Alcotest.(check (list int)) "redelivery leaves queue" [ 2 ]
            (Spec.contents s'')
      | None -> Alcotest.fail "idempotent spec must allow re-delivery")

(* ------------------------------------------------------------------ *)
(* Checker on hand-written histories                                   *)
(* ------------------------------------------------------------------ *)

let entry id thread op response inv res =
  { History.id; thread; op; response; inv; res }

let test_checker_accepts_sequential () =
  let h =
    [
      entry 0 "w" (Spec.Put 1) Spec.R_ok 0 1;
      entry 1 "w" Spec.Take (Spec.R_task 1) 2 3;
      entry 2 "t" Spec.Steal Spec.R_empty 4 5;
    ]
  in
  match Checker.check Spec.Strict h with
  | Checker.Linearizable _ -> ()
  | _ -> Alcotest.fail "sequential history must linearize"

let test_checker_uses_overlap () =
  (* steal overlaps the put, so it may linearize before it and return
     EMPTY even though the put "started first" *)
  let h =
    [
      entry 0 "w" (Spec.Put 1) Spec.R_ok 0 10;
      entry 1 "t" Spec.Steal Spec.R_empty 5 6;
      entry 2 "w" Spec.Take (Spec.R_task 1) 11 12;
    ]
  in
  match Checker.check Spec.Strict h with
  | Checker.Linearizable _ -> ()
  | _ -> Alcotest.fail "overlapping steal may linearize first"

let test_checker_rejects_real_time_violation () =
  (* steal returns EMPTY strictly AFTER the put completed: no linearization
     order can explain it (nothing ever removed task 1 before the take) *)
  let h =
    [
      entry 0 "w" (Spec.Put 1) Spec.R_ok 0 1;
      entry 1 "t" Spec.Steal Spec.R_empty 2 3;
      entry 2 "w" Spec.Take (Spec.R_task 1) 4 5;
    ]
  in
  match Checker.check Spec.Strict h with
  | Checker.Not_linearizable -> ()
  | Checker.Linearizable _ -> Alcotest.fail "must reject: EMPTY after visible put"
  | Checker.Too_large -> Alcotest.fail "budget"

let test_checker_rejects_duplication () =
  let h =
    [
      entry 0 "w" (Spec.Put 1) Spec.R_ok 0 1;
      entry 1 "w" Spec.Take (Spec.R_task 1) 2 3;
      entry 2 "t" Spec.Steal (Spec.R_task 1) 2 4;
    ]
  in
  match Checker.check Spec.Strict h with
  | Checker.Not_linearizable -> ()
  | _ -> Alcotest.fail "must reject double removal"

let test_checker_order_sensitivity () =
  (* take must see the LIFO end: with [1;2] enqueued, take -> 1 is wrong *)
  let h =
    [
      entry 0 "w" (Spec.Put 1) Spec.R_ok 0 1;
      entry 1 "w" (Spec.Put 2) Spec.R_ok 2 3;
      entry 2 "w" Spec.Take (Spec.R_task 1) 4 5;
    ]
  in
  (match Checker.check Spec.Strict h with
  | Checker.Not_linearizable -> ()
  | _ -> Alcotest.fail "take must return the tail");
  let h_ok =
    [
      entry 0 "w" (Spec.Put 1) Spec.R_ok 0 1;
      entry 1 "w" (Spec.Put 2) Spec.R_ok 2 3;
      entry 2 "w" Spec.Take (Spec.R_task 2) 4 5;
    ]
  in
  match Checker.check Spec.Strict h_ok with
  | Checker.Linearizable _ -> ()
  | _ -> Alcotest.fail "tail take must pass"

(* ------------------------------------------------------------------ *)
(* Recorded histories from machine runs (§3.3)                         *)
(* ------------------------------------------------------------------ *)

open Tso

(* The §3.3 scenario: the worker's put is buffered; a concurrent steal
   misses it and returns EMPTY after the put completed. [fence_after_put]
   is the documented fix. *)
let section_3_3_machine ~fence_after_put qname =
  let m = Machine.create (Machine.abstract_config ~sb_capacity:4) in
  let params =
    { Ws_core.Queue_intf.capacity = 16; delta = 1; worker_fence = true; tag = "q" }
  in
  let q = Ws_core.Registry.create (Ws_core.Registry.find qname) m params in
  let h = History.create () in
  let _ =
    Machine.spawn m ~name:"worker" (fun () ->
        if fence_after_put then
          (* the §3.3 fix: the fence happens before put() completes, i.e.
             inside the recorded interval *)
          ignore
            (History.record h m ~thread:"worker" (Spec.Put 42) (fun () ->
                 Ws_core.Queue_intf.put q 42;
                 Program.fence ();
                 Spec.R_ok))
        else History.put h m ~thread:"worker" q 42)
  in
  let _ =
    Machine.spawn m ~name:"thief" (fun () ->
        ignore (History.steal h m ~thread:"thief" q))
  in
  (m, h)

(* Drive with an explicit schedule: worker puts (stores stay buffered),
   thief then steals to completion, drains last. *)
let run_completely m =
  (* thief first? No: worker's put must invoke first, then thief runs while
     the put's stores are buffered. Round-robin gets there; we just need the
     specific interleaving, so search for it: run each seed until we find
     the non-linearizable outcome. *)
  ignore m

let test_section_3_3_violation () =
  ignore run_completely;
  (* search seeds until the steal misses the buffered put *)
  let found = ref false in
  let seed = ref 0 in
  while (not !found) && !seed < 200 do
    incr seed;
    let m, h = section_3_3_machine ~fence_after_put:false "chase-lev" in
    let rng = Random.State.make [| !seed |] in
    (match Sched.run m (Sched.weighted rng ~drain_weight:0.02) with
    | Sched.Quiescent -> ()
    | _ -> Alcotest.fail "no quiesce");
    match Checker.check_history Spec.Strict h with
    | Checker.Not_linearizable -> found := true
    | _ -> ()
  done;
  checkb "found the §3.3 non-linearizable execution" true !found

let test_section_3_3_fix () =
  (* with a fence after put, every schedule must be linearizable *)
  for seed = 1 to 200 do
    let m, h = section_3_3_machine ~fence_after_put:true "chase-lev" in
    let rng = Random.State.make [| seed |] in
    (match Sched.run m (Sched.weighted rng ~drain_weight:0.02) with
    | Sched.Quiescent -> ()
    | _ -> Alcotest.fail "no quiesce");
    match Checker.check_history Spec.Strict h with
    | Checker.Linearizable _ -> ()
    | Checker.Not_linearizable ->
        Alcotest.failf "seed %d: fenced put still non-linearizable" seed
    | Checker.Too_large -> Alcotest.fail "budget"
  done

(* Random small runs of each queue: all recorded histories must linearize
   against the appropriate spec (with a fence after put, §3.3's fix, so the
   benign put-buffering violations disappear and what remains is the
   algorithm's real behaviour). *)
let kind_for (module Q : Ws_core.Queue_intf.S) =
  if Q.may_duplicate then Spec.Idempotent
  else if Q.may_abort then Spec.Relaxed
  else Spec.Strict

let test_random_histories_linearizable qname () =
  let (module Q : Ws_core.Queue_intf.S) = Ws_core.Registry.find qname in
  let kind = kind_for (module Q) in
  for seed = 1 to 60 do
    let m = Machine.create (Machine.abstract_config ~sb_capacity:2) in
    let params =
      { Ws_core.Queue_intf.capacity = 32; delta = 1; worker_fence = true; tag = "q" }
    in
    let q = Ws_core.Registry.create (Ws_core.Registry.find qname) m params in
    let h = History.create () in
    let scratch = Memory.alloc (Machine.memory m) ~name:"s" ~init:0 in
    let put_fenced i =
      ignore
        (History.record h m ~thread:"worker" (Spec.Put i) (fun () ->
             Ws_core.Queue_intf.put q i;
             Program.fence ();
             Spec.R_ok))
    in
    let _ =
      Machine.spawn m ~name:"worker" (fun () ->
          for i = 1 to 3 do
            put_fenced i
          done;
          for _ = 1 to 3 do
            ignore (History.take h m ~thread:"worker" q);
            Program.store scratch 1
          done)
    in
    let _ =
      Machine.spawn m ~name:"thief" (fun () ->
          for _ = 1 to 2 do
            ignore (History.steal h m ~thread:"thief" q)
          done)
    in
    let rng = Random.State.make [| seed * 3 |] in
    (match Sched.run m (Sched.weighted rng ~drain_weight:0.1) with
    | Sched.Quiescent -> ()
    | _ -> Alcotest.fail "no quiesce");
    match Checker.check_history kind h with
    | Checker.Linearizable _ -> ()
    | Checker.Not_linearizable ->
        Alcotest.failf "seed %d: %s history not linearizable:\n%s" seed qname
          (Format.asprintf "%a" History.pp h)
    | Checker.Too_large -> Alcotest.fail "checker budget exceeded"
  done

(* The delta reasoning feeds the relaxed spec: an FF-CL run with an unsound
   delta must produce a history even the relaxed spec rejects. *)
let test_unsound_delta_breaks_relaxed_linearizability () =
  let found = ref false in
  let seed = ref 0 in
  while (not !found) && !seed < 500 do
    incr seed;
    let m = Machine.create (Machine.abstract_config ~sb_capacity:2) in
    let params =
      { Ws_core.Queue_intf.capacity = 32; delta = 1; worker_fence = false; tag = "q" }
    in
    let (module Q : Ws_core.Queue_intf.S) = Ws_core.Registry.find "ff-cl" in
    let q = Q.create m params in
    Q.preload q [ 1; 2; 3 ];
    let h = History.create () in
    let packed = Ws_core.Queue_intf.Packed ((module Q), q) in
    let _ =
      Machine.spawn m ~name:"worker" (fun () ->
          (* no client stores: two takes can hide in TSO[2] *)
          for _ = 1 to 3 do
            ignore (History.take h m ~thread:"worker" packed)
          done)
    in
    let _ =
      Machine.spawn m ~name:"thief" (fun () ->
          for _ = 1 to 2 do
            ignore (History.steal h m ~thread:"thief" packed)
          done)
    in
    let rng = Random.State.make [| !seed * 7 |] in
    (match Sched.run m (Sched.weighted rng ~drain_weight:0.02) with
    | Sched.Quiescent -> ()
    | _ -> Alcotest.fail "no quiesce");
    match
      Checker.check ~init:(Spec.of_contents [ 1; 2; 3 ]) Spec.Relaxed
        (History.entries h)
    with
    | Checker.Not_linearizable -> found := true
    | _ -> ()
  done;
  checkb "unsound delta produced a non-linearizable history" true !found


(* ------------------------------------------------------------------ *)
(* Differential testing of the checker itself                          *)
(* ------------------------------------------------------------------ *)

(* a naive oracle: try every permutation of the history *)
let rec permutations = function
  | [] -> [ [] ]
  | l ->
      List.concat_map
        (fun x ->
          let rest = List.filter (fun y -> y != x) l in
          List.map (fun p -> x :: p) (permutations rest))
        l

let brute_force kind entries =
  let respects_real_time perm =
    (* in the permuted order, no operation may appear after one whose
       invocation follows its response in real time *)
    let rec ok = function
      | [] -> true
      | e :: rest ->
          List.for_all
            (fun later -> not (later.History.res < e.History.inv))
            rest
          && ok rest
    in
    ok perm
  in
  let replays perm =
    let rec go state = function
      | [] -> true
      | e :: rest -> (
          match Spec.conforms kind state e.History.op e.History.response with
          | Some s' -> go s' rest
          | None -> false)
    in
    go Spec.initial perm
  in
  List.exists (fun p -> respects_real_time p && replays p) (permutations entries)

let history_gen =
  let open QCheck.Gen in
  let op_result i =
    frequency
      [
        (3, return (Spec.Put i, Spec.R_ok));
        ( 3,
          map
            (fun v -> (Spec.Take, if v = 0 then Spec.R_empty else Spec.R_task v))
            (int_bound 3) );
        ( 3,
          map
            (fun v -> (Spec.Steal, if v = 0 then Spec.R_empty else Spec.R_task v))
            (int_bound 3) );
        (1, return (Spec.Steal, Spec.R_abort));
      ]
  in
  let entry i =
    map3
      (fun (op, response) inv len ->
        {
          History.id = i;
          thread = (if i mod 2 = 0 then "w" else "t");
          op;
          response;
          inv;
          res = inv + 1 + len;
        })
      (op_result i) (int_bound 8) (int_bound 4)
  in
  sized_size (int_range 1 5) (fun n ->
      flatten_l (List.init n entry))

let checker_vs_brute_force kind kind_name =
  QCheck.Test.make
    ~name:(Printf.sprintf "checker agrees with brute force (%s)" kind_name)
    ~count:300
    (QCheck.make history_gen)
    (fun entries ->
      let expected = brute_force kind entries in
      match Checker.check kind entries with
      | Checker.Linearizable _ -> expected
      | Checker.Not_linearizable -> not expected
      | Checker.Too_large -> true (* budget exhaustion is not a verdict *))

let () =
  Alcotest.run "linearize"
    [
      ( "spec",
        [
          Alcotest.test_case "strict transitions" `Quick test_spec_strict_transitions;
          Alcotest.test_case "relaxed allows abort" `Quick test_spec_relaxed_allows_abort;
          Alcotest.test_case "idempotent redelivery" `Quick test_spec_idempotent_redelivery;
        ] );
      ( "checker",
        [
          QCheck_alcotest.to_alcotest
            (checker_vs_brute_force Spec.Strict "strict");
          QCheck_alcotest.to_alcotest
            (checker_vs_brute_force Spec.Relaxed "relaxed");
          QCheck_alcotest.to_alcotest
            (checker_vs_brute_force Spec.Idempotent "idempotent");
          Alcotest.test_case "accepts sequential" `Quick test_checker_accepts_sequential;
          Alcotest.test_case "uses overlap" `Quick test_checker_uses_overlap;
          Alcotest.test_case "rejects real-time violation" `Quick
            test_checker_rejects_real_time_violation;
          Alcotest.test_case "rejects duplication" `Quick test_checker_rejects_duplication;
          Alcotest.test_case "take/steal end sensitivity" `Quick
            test_checker_order_sensitivity;
        ] );
      ( "recorded histories",
        [
          Alcotest.test_case "§3.3 violation exists (Chase-Lev)" `Quick
            test_section_3_3_violation;
          Alcotest.test_case "§3.3 fix: fence after put" `Slow test_section_3_3_fix;
          Alcotest.test_case "§4: unsound delta breaks even the relaxed spec" `Slow
            test_unsound_delta_breaks_relaxed_linearizability;
        ]
        @ List.map
            (fun q ->
              Alcotest.test_case
                (Printf.sprintf "random histories linearizable [%s]" q)
                `Slow
                (test_random_histories_linearizable q))
            Ws_core.Registry.names );
    ]
