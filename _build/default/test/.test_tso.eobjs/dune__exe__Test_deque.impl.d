test/test_deque.ml: Alcotest Array Fun List Machine Printf Program QCheck QCheck_alcotest Random Sched Store_buffer Tso Ws_core Ws_harness Ws_linearize
