test/test_native.ml: Alcotest Array Atomic Chase_lev Domain List Pool QCheck QCheck_alcotest The_queue Unix Ws_native
