test/test_runtime.ml: Alcotest Array Dag Engine Hashtbl Lazy List Metrics Printf QCheck QCheck_alcotest Tso Workload Ws_core Ws_runtime Ws_workloads
