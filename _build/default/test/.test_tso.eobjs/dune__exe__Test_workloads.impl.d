test/test_workloads.ml: Alcotest Array Cilk_suite Graph Graph_workloads List Printf QCheck QCheck_alcotest Tso Ws_core Ws_runtime Ws_workloads
