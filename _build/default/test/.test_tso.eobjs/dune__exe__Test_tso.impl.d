test/test_tso.ml: Addr Alcotest Array Explore List Machine Memory Printf Program QCheck QCheck_alcotest Random Reference Sched Store_buffer String Timing Trace Tso
