test/test_litmus.ml: Alcotest Capacity Classic Grid List Litmus_program Printf Tso Ws_harness Ws_litmus
