test/test_linearize.ml: Alcotest Checker Format History List Machine Memory Printf Program QCheck QCheck_alcotest Random Sched Spec Tso Ws_core Ws_linearize
