test/test_deque.mli:
