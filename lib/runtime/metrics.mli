(** Per-run scheduler metrics (Fig. 11b's "% of work completed by stealing"
    and general steal/abort accounting). *)

type worker = {
  mutable tasks_run : int;
  mutable tasks_run_stolen : int;  (** of which obtained by stealing *)
  mutable puts : int;
  mutable takes : int;
  mutable take_empties : int;
  mutable steal_attempts : int;
  mutable steals : int;
  mutable steal_empties : int;
  mutable steal_aborts : int;
}

type t = { workers : worker array }

val create : int -> t
val total_tasks : t -> int
val total_steals : t -> int
val total_aborts : t -> int
val total_steal_attempts : t -> int

val stolen_task_pct : t -> float
(** Percentage of executed tasks that were obtained by stealing. *)

val steal_abort_rate : t -> float
(** Percentage of steal attempts that returned [`Abort] (the relaxed
    specification's refusals), 0 when no steal was attempted. *)

val merge : into:t -> t -> unit
(** Accumulate another run's per-worker counters (worker-wise). Used to
    aggregate repeated runs of the same configuration (e.g. across seeds).
    @raise Invalid_argument if the worker counts differ. *)

val fold_into_sink : t -> Telemetry.Sink.t -> unit
(** Add the task-level aggregates ([tasks_run], [tasks_stolen]) to a
    telemetry sink. Queue-operation counts are {e not} copied: those are
    accounted by {!Ws_core.Registry}'s telemetry shim as the operations
    happen, and copying them again would double-count. *)

val pp : Format.formatter -> t -> unit
(** One-line summary: tasks, stolen %, steals/attempts, empties, aborts
    and the abort rate. *)
