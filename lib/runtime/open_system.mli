(** Open-system mode for the timing model: Poisson or bursty
    (Markov-modulated) arrivals feed a dedicated injector thread whose own
    deque is drained by worker steals — the simulated twin of the native
    pool's injector front door. The front-door deque is always the plain
    lock-based THE queue (like the native injector's mutex FIFO): a
    δ-relaxed queue can never hand its last item to a thief (ABORT
    subsumes EMPTY), which would strand the final arrival in a deque whose
    owner only puts. Each request runs as a chain of dependent stages on
    the worker deques (which do use [config.queue]); sojourn latency
    (arrival to last-stage completion, in ticks) is recorded through
    per-worker histogram shards and reported as p50/p99/p999.

    Fully deterministic: the load is a pre-drawn {!Open_load.plan}, worker
    victim choice uses the same seeded generator, and the timing engine
    breaks ties lexicographically — equal configs give byte-equal
    reports. *)

type config = {
  workers : int;
  queue : Ws_core.Registry.impl;
  queue_capacity : int;
  delta : int;
  worker_fence : bool;
  sb_capacity : int;
  costs : Tso.Timing.cost_model;
  seed : int;
  requests : int;
  chain : int;  (** dependent stages per request (>= 1) *)
  arrival : Open_load.arrival;
  service : Open_load.service;
  capacity : int;  (** injector backpressure bound (< queue_capacity) *)
  policy : Open_load.policy;
  idle_backoff : int;
  max_steps : int;
  window : int;  (** ticks per latency-attribution window (> 0) *)
  window_slots : int;  (** windows retained per rotating ring (> 0) *)
}

val default_config : config
(** 3 ff-the workers, Poisson 2.0/ktick, exponential 400-tick services in
    3 stages, capacity 64, Block. *)

type report = {
  injected : int;
  dropped : int;  (** arrivals refused at a full injector (Drop policy) *)
  completed : int;
  makespan : int;
  steps : int;
  outcome : Tso.Sched.outcome;
  p50 : int;  (** sojourn percentiles, ticks *)
  p99 : int;
  p999 : int;
  sojourn : Telemetry.Histogram.t;
  qwait : Telemetry.Histogram.t;
      (** arrival (post-gap, pre-backpressure-spin) -> inject, ticks *)
  dispatch : Telemetry.Histogram.t;  (** inject -> stage-0 dequeue, ticks *)
  service : Telemetry.Histogram.t;
      (** stage-0 dequeue -> final-stage completion, ticks. The three
          stages partition each completed request's sojourn exactly:
          qwait + dispatch + service = sojourn, request by request. *)
  sojourn_windows : Telemetry.Windowed.t;
      (** rotating-window sojourn series ([window] ticks wide,
          [window_slots] retained), keyed by completion tick *)
  qwait_windows : Telemetry.Windowed.t;
      (** queue-wait series keyed by {e arrival} tick, so a burst's extra
          waiting lands in the burst's own windows *)
  peak_queue : int;  (** max injector deque depth observed *)
  block_spins : int;  (** injector pause instructions while blocked *)
  offered_rate : float;  (** configured long-run arrivals per 1000 ticks *)
  achieved_rate : float;  (** completions per 1000 ticks of makespan *)
  metrics : Metrics.t;
}

val run : ?sink:Telemetry.Sink.t -> config -> report
(** Run to quiescence. With [sink], the sharded counter plane is attached
    (one shard per worker plus one for the injector) and batch-merged into
    [sink] at the end of the run, and task-level metrics are folded in. *)
