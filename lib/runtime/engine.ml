open Tso

type victim_policy =
  | Random_victim
  | Round_robin_victim

type config = {
  workers : int;
  queue : Ws_core.Registry.impl;
  queue_capacity : int;
  delta : int;
  worker_fence : bool;
  sb_capacity : int;
  costs : Timing.cost_model;
  seed : int;
  client_stores : int;
  idle_backoff : int;
  victim : victim_policy;
  max_steps : int;
}

let default_config =
  {
    workers = 4;
    queue = Ws_core.Registry.find "chase-lev";
    queue_capacity = 1 lsl 14;
    delta = 1;
    worker_fence = true;
    sb_capacity = 16;
    costs = Timing.default_costs;
    seed = 42;
    client_stores = 1;
    idle_backoff = 64;
    victim = Random_victim;
    max_steps = 50_000_000;
  }

type result = {
  outcome : Sched.outcome;
  timing : Timing.report option;
  metrics : Metrics.t;
  executions : (int, int) Hashtbl.t;
  duplicates : int;
  lost : int;
}

type shared = {
  cfg : config;
  wl : Workload.t;
  queues : Ws_core.Queue_intf.packed array;
  scratch : Addr.t array;  (* per-worker cell for the post-take client stores *)
  metrics : Metrics.t;
  executions : (int, int) Hashtbl.t;  (* completions per task id *)
  enqueued : (int, int) Hashtbl.t;  (* puts per task id *)
  mutable in_flight : int;  (* puts not yet matched by a completion *)
}

let bump tbl id =
  let c = 1 + Option.value ~default:0 (Hashtbl.find_opt tbl id) in
  Hashtbl.replace tbl id c;
  c

(* Termination accounting that tolerates duplicate extraction (idempotent
   queues): every put increments [in_flight]; a completion decrements it
   only while the task's completion count has not yet caught up with its put
   count, so a doubly-extracted entry cannot drive [in_flight] negative and
   end the run while real work remains. *)
let enqueue st w id =
  ignore (bump st.enqueued id);
  st.in_flight <- st.in_flight + 1;
  let m = st.metrics.Metrics.workers.(w) in
  m.Metrics.puts <- m.Metrics.puts + 1;
  Ws_core.Queue_intf.put st.queues.(w) id

let exec_task st w ~stolen id =
  let m = st.metrics.Metrics.workers.(w) in
  m.Metrics.tasks_run <- m.Metrics.tasks_run + 1;
  if stolen then m.Metrics.tasks_run_stolen <- m.Metrics.tasks_run_stolen + 1;
  (* The client store(s) CilkPlus does after removing a task (§4, §7.3). *)
  for i = 1 to st.cfg.client_stores do
    Program.store st.scratch.(w) (id + i)
  done;
  let spawned = st.wl.Workload.execute ~worker:w id in
  List.iter (fun t -> enqueue st w t) spawned;
  let done_count = bump st.executions id in
  let put_count = Option.value ~default:0 (Hashtbl.find_opt st.enqueued id) in
  if done_count <= put_count then st.in_flight <- st.in_flight - 1

let worker_body st w () =
  let cfg = st.cfg in
  let m = st.metrics.Metrics.workers.(w) in
  let rng = Random.State.make [| cfg.seed; w; 0x5eed |] in
  let rr = ref w in
  (* Roots were pre-counted at setup (so workers that start first do not see
     in_flight = 0 and exit); worker 0 only performs the puts. *)
  if w = 0 then
    List.iter
      (fun t ->
        m.Metrics.puts <- m.Metrics.puts + 1;
        Ws_core.Queue_intf.put st.queues.(0) t)
      st.wl.Workload.roots;
  let rec own_loop () =
    if st.in_flight > 0 then begin
      m.Metrics.takes <- m.Metrics.takes + 1;
      match Ws_core.Queue_intf.take st.queues.(w) with
      | `Task id ->
          exec_task st w ~stolen:false id;
          own_loop ()
      | `Empty ->
          m.Metrics.take_empties <- m.Metrics.take_empties + 1;
          hunt ()
    end
  and hunt () =
    if st.in_flight > 0 then
      if cfg.workers = 1 then begin
        (* No victims; wait for our own (already-extracted) work to finish —
           with one worker this only happens at termination. *)
        Program.spin_pause ();
        own_loop ()
      end
      else begin
        let victim =
          match cfg.victim with
          | Random_victim ->
              let v = Random.State.int rng (cfg.workers - 1) in
              if v >= w then v + 1 else v
          | Round_robin_victim ->
              rr := (!rr + 1) mod cfg.workers;
              if !rr = w then rr := (!rr + 1) mod cfg.workers;
              !rr
        in
        m.Metrics.steal_attempts <- m.Metrics.steal_attempts + 1;
        match Ws_core.Queue_intf.steal st.queues.(victim) with
        | `Task id ->
            m.Metrics.steals <- m.Metrics.steals + 1;
            exec_task st w ~stolen:true id;
            own_loop ()
        | `Empty ->
            m.Metrics.steal_empties <- m.Metrics.steal_empties + 1;
            Program.work cfg.idle_backoff;
            hunt ()
        | `Abort ->
            m.Metrics.steal_aborts <- m.Metrics.steal_aborts + 1;
            Program.work cfg.idle_backoff;
            hunt ()
      end
  in
  own_loop ()

let setup cfg wl ~buffer_model =
  let machine_cfg =
    { Machine.sb_capacity = cfg.sb_capacity; buffer_model }
  in
  let machine = Machine.create machine_cfg in
  let mem = Machine.memory machine in
  let queues =
    Array.init cfg.workers (fun w ->
        let params =
          {
            Ws_core.Queue_intf.capacity = cfg.queue_capacity;
            delta = cfg.delta;
            worker_fence = cfg.worker_fence;
            tag = Printf.sprintf "q%d" w;
          }
        in
        Ws_core.Registry.create ~shard:w cfg.queue machine params)
  in
  let scratch =
    Array.init cfg.workers (fun w ->
        Memory.alloc mem ~name:(Printf.sprintf "scratch%d" w) ~init:0)
  in
  wl.Workload.init machine;
  let st =
    {
      cfg;
      wl;
      queues;
      scratch;
      metrics = Metrics.create cfg.workers;
      executions = Hashtbl.create 1024;
      enqueued = Hashtbl.create 1024;
      in_flight = List.length wl.Workload.roots;
    }
  in
  List.iter (fun t -> ignore (bump st.enqueued t)) wl.Workload.roots;
  for w = 0 to cfg.workers - 1 do
    ignore
      (Machine.spawn machine
         ~name:(Printf.sprintf "worker%d" w)
         (worker_body st w))
  done;
  (machine, st)

let summarize st outcome timing =
  let duplicates =
    Hashtbl.fold (fun _ c acc -> if c > 1 then acc + 1 else acc) st.executions 0
  in
  let lost =
    match st.wl.Workload.expected_total with
    | None -> 0
    | Some n ->
        let missing = ref 0 in
        for id = 0 to n - 1 do
          if not (Hashtbl.mem st.executions id) then incr missing
        done;
        !missing
  in
  {
    outcome;
    timing;
    metrics = st.metrics;
    executions = st.executions;
    duplicates;
    lost;
  }

let run_timed ?sink ?tracer ?trace_pid cfg wl =
  let machine, st = setup cfg wl ~buffer_model:Store_buffer.Abstract in
  (* Per-worker shards (worker w = simulated thread w = queue w), merged by
     the timing engine at this run's quiescence point. *)
  let shards =
    match sink with
    | Some _ -> Some (Telemetry.Shards.create ~n:cfg.workers)
    | None -> None
  in
  let report =
    Timing.run ~max_steps:cfg.max_steps ?sink ?shards ?tracer ?trace_pid
      machine cfg.costs
  in
  (match sink with
  | None -> ()
  | Some s -> Metrics.fold_into_sink st.metrics s);
  summarize st report.Timing.outcome (Some report)

let run_random ?(drain_weight = 0.1) cfg wl =
  let machine, st = setup cfg wl ~buffer_model:Store_buffer.Abstract in
  let rng = Random.State.make [| cfg.seed; 0xca5e |] in
  let outcome =
    Sched.run ~max_steps:cfg.max_steps machine (Sched.weighted rng ~drain_weight)
  in
  summarize st outcome None
