type worker = {
  mutable tasks_run : int;
  mutable tasks_run_stolen : int;
  mutable puts : int;
  mutable takes : int;
  mutable take_empties : int;
  mutable steal_attempts : int;
  mutable steals : int;
  mutable steal_empties : int;
  mutable steal_aborts : int;
}

type t = { workers : worker array }

let create n =
  {
    workers =
      Array.init n (fun _ ->
          {
            tasks_run = 0;
            tasks_run_stolen = 0;
            puts = 0;
            takes = 0;
            take_empties = 0;
            steal_attempts = 0;
            steals = 0;
            steal_empties = 0;
            steal_aborts = 0;
          });
  }

let sum t f = Array.fold_left (fun acc w -> acc + f w) 0 t.workers
let total_tasks t = sum t (fun w -> w.tasks_run)
let total_steals t = sum t (fun w -> w.steals)
let total_aborts t = sum t (fun w -> w.steal_aborts)
let total_steal_attempts t = sum t (fun w -> w.steal_attempts)

let stolen_task_pct t =
  let total = total_tasks t in
  if total = 0 then 0.0
  else 100.0 *. float_of_int (sum t (fun w -> w.tasks_run_stolen)) /. float_of_int total

let steal_abort_rate t =
  let attempts = total_steal_attempts t in
  if attempts = 0 then 0.0
  else 100.0 *. float_of_int (total_aborts t) /. float_of_int attempts

let merge ~into t =
  if Array.length into.workers <> Array.length t.workers then
    invalid_arg "Metrics.merge: worker counts differ";
  Array.iteri
    (fun i w ->
      let d = into.workers.(i) in
      d.tasks_run <- d.tasks_run + w.tasks_run;
      d.tasks_run_stolen <- d.tasks_run_stolen + w.tasks_run_stolen;
      d.puts <- d.puts + w.puts;
      d.takes <- d.takes + w.takes;
      d.take_empties <- d.take_empties + w.take_empties;
      d.steal_attempts <- d.steal_attempts + w.steal_attempts;
      d.steals <- d.steals + w.steals;
      d.steal_empties <- d.steal_empties + w.steal_empties;
      d.steal_aborts <- d.steal_aborts + w.steal_aborts)
    t.workers

(* Only the task-level counters transfer: the queue-operation counters
   (puts/takes/steals/aborts) are already accounted by the registry's
   telemetry shim at the moment each operation completes — copying them
   here too would double-count. *)
let fold_into_sink t (s : Telemetry.Sink.t) =
  s.Telemetry.Sink.tasks_run <- s.Telemetry.Sink.tasks_run + total_tasks t;
  s.Telemetry.Sink.tasks_stolen <-
    s.Telemetry.Sink.tasks_stolen + sum t (fun w -> w.tasks_run_stolen)

let pp ppf t =
  Format.fprintf ppf
    "@[tasks=%d stolen=%.2f%% steals=%d/%d empties=%d aborts=%d \
     (abort-rate=%.2f%%)@]"
    (total_tasks t) (stolen_task_pct t) (total_steals t)
    (total_steal_attempts t)
    (sum t (fun w -> w.steal_empties))
    (total_aborts t) (steal_abort_rate t)
