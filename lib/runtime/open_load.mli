(** Open-system load generation: arrival processes and service-time
    distributions, pre-drawn into a {!plan} so the timing-model engine and
    the native pool replay {e the same} randomness for a given seed.

    All durations are in abstract "ticks" — simulator cycles on the timing
    model; the native runner maps ticks to wall time via the scenario's
    [tick_ns]. Rates are arrivals per 1000 ticks. The generator is a
    self-contained SplitMix64, so plans are stable across OCaml versions
    and platforms (they appear in byte-locked reports). *)

type arrival =
  | Poisson of { rate : float }
  | Bursty of {
      rate_lo : float;
      rate_hi : float;
      switch_lo : float;  (** P(calm→burst), evaluated at each arrival *)
      switch_hi : float;  (** P(burst→calm), evaluated at each arrival *)
    }
      (** Markov-modulated Poisson with two states: exponential gaps at
          [rate_lo] or [rate_hi], the state flipping after each arrival
          with the given probabilities. *)

type service =
  | Fixed of { ticks : int }
  | Uniform of { lo : int; hi : int }
  | Exponential of { mean : int }
  | Bimodal of { short : int; long : int; p_long : float }
      (** [long] ticks with probability [p_long], else [short] — the
          elephants-and-mice mix that dominates tail latency. *)

type policy = Drop | Block  (** injector backpressure when full *)

type plan = {
  gaps : int array;  (** inter-arrival gaps, ticks *)
  services : int array;  (** total service demand per request, ticks, >= 1 *)
}

type rng

val rng : int -> rng
val float : rng -> float
(** Uniform in [[0, 1)]. *)

val int : rng -> int -> int
(** Uniform in [[0, bound)]; [bound] must be positive. *)

val plan : seed:int -> requests:int -> arrival -> service -> plan
(** Draw every gap and service demand for [requests] arrivals. Pure in the
    seed: equal arguments give equal plans. *)

val mean_rate : arrival -> float
(** Long-run arrivals per 1000 ticks (stationary rate for {!Bursty}). *)

val mean_service : service -> float
(** Expected service demand in ticks. *)
