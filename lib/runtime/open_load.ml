(* Open-system load generation, shared by the timing-model engine and the
   native pool so a scenario's randomness is drawn exactly once per seed:
   both sides replay the same pre-drawn plan of inter-arrival gaps and
   service demands, which is what makes `--seed` reproduce a run (and lets
   a cram test lock the simulated output byte-for-byte).

   The generator is a self-contained SplitMix64 rather than Stdlib.Random:
   the draws are part of the experiment contract (they appear in locked
   reports), so they must not depend on the stdlib's generator evolving. *)

type arrival =
  | Poisson of { rate : float }  (* mean arrivals per 1000 ticks *)
  | Bursty of {
      rate_lo : float;  (* arrivals per 1000 ticks in the calm state *)
      rate_hi : float;  (* arrivals per 1000 ticks in the burst state *)
      switch_lo : float;  (* P(calm -> burst) evaluated at each arrival *)
      switch_hi : float;  (* P(burst -> calm) evaluated at each arrival *)
    }

type service =
  | Fixed of { ticks : int }
  | Uniform of { lo : int; hi : int }
  | Exponential of { mean : int }
  | Bimodal of { short : int; long : int; p_long : float }

type policy = Drop | Block

type plan = {
  gaps : int array;  (* inter-arrival gaps, ticks *)
  services : int array;  (* total service demand per request, ticks *)
}

(* --- SplitMix64 ----------------------------------------------------- *)

type rng = { mutable state : int64 }

let rng seed = { state = Int64.of_int seed }

let next r =
  let open Int64 in
  r.state <- add r.state 0x9e3779b97f4a7c15L;
  let z = r.state in
  let z = mul (logxor z (shift_right_logical z 30)) 0xbf58476d1ce4e5b9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94d049bb133111ebL in
  logxor z (shift_right_logical z 31)

(* Uniform in [0, 1): the top 53 bits, so the float is exact. *)
let float r =
  Int64.to_float (Int64.shift_right_logical (next r) 11) *. 0x1p-53

let int r bound =
  if bound <= 0 then invalid_arg "Open_load.int: bound must be positive";
  Int64.to_int (Int64.rem (Int64.shift_right_logical (next r) 1) (Int64.of_int bound))

(* --- draws ----------------------------------------------------------- *)

(* Exponential with the given mean, rounded to whole ticks. [1 - u] keeps
   the argument of log strictly positive. *)
let exp_draw r ~mean = int_of_float (-.mean *. log (1. -. float r))

let gap_draw r ~rate = exp_draw r ~mean:(1000. /. rate)

let service_draw r = function
  | Fixed { ticks } -> ticks
  | Uniform { lo; hi } -> if hi <= lo then lo else lo + int r (hi - lo + 1)
  | Exponential { mean } -> max 1 (exp_draw r ~mean:(float_of_int mean))
  | Bimodal { short; long; p_long } ->
      if float r < p_long then long else short

let mean_rate = function
  | Poisson { rate } -> rate
  | Bursty { rate_lo; rate_hi; switch_lo; switch_hi } ->
      (* Stationary split of the per-arrival two-state chain. *)
      let p = switch_lo +. switch_hi in
      if p <= 0. then rate_lo
      else ((switch_hi *. rate_lo) +. (switch_lo *. rate_hi)) /. p

let mean_service = function
  | Fixed { ticks } -> float_of_int ticks
  | Uniform { lo; hi } -> float_of_int (lo + hi) /. 2.
  | Exponential { mean } -> float_of_int mean
  | Bimodal { short; long; p_long } ->
      ((1. -. p_long) *. float_of_int short) +. (p_long *. float_of_int long)

let plan ~seed ~requests arrival service =
  if requests <= 0 then invalid_arg "Open_load.plan: requests must be positive";
  let r = rng seed in
  let gaps = Array.make requests 0 in
  let services = Array.make requests 0 in
  let burst = ref false in
  for i = 0 to requests - 1 do
    (match arrival with
    | Poisson { rate } -> gaps.(i) <- gap_draw r ~rate
    | Bursty { rate_lo; rate_hi; switch_lo; switch_hi } ->
        gaps.(i) <- gap_draw r ~rate:(if !burst then rate_hi else rate_lo);
        let u = float r in
        if !burst then (if u < switch_hi then burst := false)
        else if u < switch_lo then burst := true);
    services.(i) <- max 1 (service_draw r service)
  done;
  { gaps; services }
