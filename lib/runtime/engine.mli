(** The work-stealing runtime: P simulated workers, one queue each, executing
    a {!Workload.t} to quiescence (the CilkPlus-runtime stand-in of §8).

    Each worker drains its own queue with [take]; when empty it turns thief
    and steals from uniformly random victims. As in CilkPlus, the worker
    performs [client_stores] plain stores after every (successful) take —
    the x of §4 that makes δ = ⌈S/(x+1)⌉ valid and prevents same-address
    store coalescing (§7.3).

    Termination uses host-level completion counting: workers exit once every
    spawned task has completed at least once. Duplicate extractions (possible
    with the idempotent queues) are recorded and do not double-count. *)

type victim_policy =
  | Random_victim  (** uniformly random victim ≠ self (ABP's policy) *)
  | Round_robin_victim  (** cycle over the other workers *)

type config = {
  workers : int;
  queue : Ws_core.Registry.impl;
  queue_capacity : int;
  delta : int;  (** δ for the fence-free queues; [max_int] = ∞ *)
  worker_fence : bool;  (** fenced baselines only; see {!Ws_core.Queue_intf.params} *)
  sb_capacity : int;  (** S of the simulated machine *)
  costs : Tso.Timing.cost_model;
  seed : int;
  client_stores : int;  (** plain stores after each take (default 1) *)
  idle_backoff : int;  (** cycles a thief backs off after a failed attempt *)
  victim : victim_policy;
  max_steps : int;
}

val default_config : config
(** 4 workers, chase-lev queue, S = 16, δ = 1, default costs. *)

type result = {
  outcome : Tso.Sched.outcome;
  timing : Tso.Timing.report option;  (** present for timed runs *)
  metrics : Metrics.t;
  executions : (int, int) Hashtbl.t;  (** task id -> times executed *)
  duplicates : int;  (** tasks executed more than once *)
  lost : int;  (** expected tasks never executed (needs [expected_total]) *)
}

val run_timed :
  ?sink:Telemetry.Sink.t ->
  ?tracer:Telemetry.Chrome_trace.t ->
  ?trace_pid:int ->
  config ->
  Workload.t ->
  result
(** Deterministic discrete-event run under the timing model; this is what
    the performance figures use. [sink]/[tracer]/[trace_pid] are passed to
    {!Tso.Timing.run}; additionally, with a sink attached the run's
    {!Metrics} task aggregates are folded into it on completion. *)

val run_random : ?drain_weight:float -> config -> Workload.t -> result
(** Adversarially scheduled run on the abstract machine (drains delayed with
    [drain_weight], default 0.1); this is what the correctness tests use. *)
