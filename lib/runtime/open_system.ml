open Tso

(* Open-system mode for the timing model (the paper's benchmarks are
   closed fork/join DAGs; the heavy-traffic experiments need arrivals).

   Topology: W workers plus one dedicated injector thread, each a
   simulated core. The injector owns deque W and only ever [put]s into it
   — single-owner discipline intact — so workers absorb arrivals by
   {e stealing} from the injector's deque, exactly how the native pool's
   workers drain its submission queue. Inter-arrival gaps are modelled as
   [work] instructions on the injector's core, which the timing engine
   charges cycle-for-cycle, so a plan drawn by {!Open_load} reproduces the
   same arrival timeline on every run.

   Each request is a chain of [chain] dependent stages; non-final stages
   re-[put] onto the executing worker's own deque, so the closed-system
   put/take/steal hot paths stay exercised under open load.

   Backpressure: the injector tracks the depth of its deque host-side
   (puts minus successful steals — exact, because the simulator
   interleaves at instruction granularity on one host thread). At
   [capacity] it either drops the arrival (Drop) or spins until a worker
   makes room (Block), burning simulated pause cycles that show up in the
   makespan — an overloaded Block run is visibly slower, not silently
   lossy. *)

type config = {
  workers : int;
  queue : Ws_core.Registry.impl;
  queue_capacity : int;
  delta : int;
  worker_fence : bool;
  sb_capacity : int;
  costs : Timing.cost_model;
  seed : int;
  requests : int;
  chain : int;  (* dependent stages per request *)
  arrival : Open_load.arrival;
  service : Open_load.service;
  capacity : int;  (* injector backpressure bound *)
  policy : Open_load.policy;
  idle_backoff : int;
  max_steps : int;
  window : int;  (* ticks per latency-attribution window *)
  window_slots : int;  (* windows retained in each rotating ring *)
}

let default_config =
  {
    workers = 3;
    queue = Ws_core.Registry.find "ff-the";
    queue_capacity = 1 lsl 14;
    delta = 1;
    worker_fence = true;
    sb_capacity = 16;
    costs = Timing.default_costs;
    seed = 1;
    requests = 500;
    chain = 3;
    arrival = Open_load.Poisson { rate = 2.0 };
    service = Open_load.Exponential { mean = 400 };
    capacity = 64;
    policy = Open_load.Block;
    idle_backoff = 64;
    max_steps = 200_000_000;
    window = 8192;
    window_slots = 16;
  }

type report = {
  injected : int;
  dropped : int;
  completed : int;
  makespan : int;
  steps : int;
  outcome : Sched.outcome;
  p50 : int;  (* sojourn percentiles, ticks *)
  p99 : int;
  p999 : int;
  sojourn : Telemetry.Histogram.t;
  (* Stage attribution, in ticks. The three stages partition each
     completed request's sojourn exactly:
       qwait    = arrival (post-gap, pre-backpressure-spin) -> inject
       dispatch = inject -> stage-0 dequeue
       service  = stage-0 dequeue -> final-stage completion
     so qwait + dispatch + service = sojourn, request by request. *)
  qwait : Telemetry.Histogram.t;
  dispatch : Telemetry.Histogram.t;
  service : Telemetry.Histogram.t;
  (* Rotating-window series (width [cfg.window] ticks, last
     [cfg.window_slots] windows). Sojourn is keyed by completion tick;
     queue wait is keyed by the request's arrival tick, so a burst's
     extra waiting lands in the burst's own windows. *)
  sojourn_windows : Telemetry.Windowed.t;
  qwait_windows : Telemetry.Windowed.t;
  peak_queue : int;  (* max injector deque depth observed *)
  block_spins : int;  (* injector pause instructions while blocked *)
  offered_rate : float;  (* configured long-run arrivals per 1000 ticks *)
  achieved_rate : float;  (* completions per 1000 ticks of makespan *)
  metrics : Metrics.t;
}

let run ?sink cfg =
  if cfg.workers < 1 then invalid_arg "Open_system.run: workers must be >= 1";
  if cfg.chain < 1 then invalid_arg "Open_system.run: chain must be >= 1";
  if cfg.capacity < 1 then invalid_arg "Open_system.run: capacity must be >= 1";
  if cfg.capacity >= cfg.queue_capacity then
    invalid_arg "Open_system.run: capacity must be below queue_capacity";
  let plan =
    Open_load.plan ~seed:cfg.seed ~requests:cfg.requests cfg.arrival
      cfg.service
  in
  let machine =
    Machine.create
      { Machine.sb_capacity = cfg.sb_capacity;
        buffer_model = Store_buffer.Abstract }
  in
  let inj = cfg.workers (* thread/queue/shard index of the injector *) in
  let queues =
    Array.init (cfg.workers + 1) (fun w ->
        let params =
          {
            Ws_core.Queue_intf.capacity = cfg.queue_capacity;
            delta = cfg.delta;
            worker_fence = cfg.worker_fence;
            tag = (if w = inj then "inj" else Printf.sprintf "q%d" w);
          }
        in
        (* The front door is always the plain lock-based THE queue, like
           the native pool's mutex FIFO injector — NOT the scenario's
           worker queue. The δ-relaxed queues (ff-the, thep) can never
           certify the last item to a thief (ABORT subsumes EMPTY, §4),
           which is fine for worker deques (the owner's take drains them)
           but would strand the final arrival forever in a deque whose
           owner only ever puts. *)
        let impl = if w = inj then Ws_core.Registry.find "the" else cfg.queue in
        Ws_core.Registry.create ~shard:w impl machine params)
  in
  let clk = Timing.clock () in
  let metrics = Metrics.create cfg.workers in
  (* Sojourn latency through the sharded histogram plane: one histogram
     per worker, written only by its owner, merged at the quiescent end of
     the run. *)
  let sojourn_shards =
    Array.init cfg.workers (fun _ -> Telemetry.Histogram.create ())
  in
  (* Stage attribution rides the same discipline: per-worker histograms
     and rotating-window rings, single-writer during the run, merged at
     the quiescent end — so the merged series are independent of which
     worker executed which request (Windowed's claim rule). *)
  let hist_shards () =
    Array.init cfg.workers (fun _ -> Telemetry.Histogram.create ())
  in
  let window_shards () =
    Array.init cfg.workers (fun _ ->
        Telemetry.Windowed.create ~slots:cfg.window_slots ~width:cfg.window ())
  in
  let qwait_shards = hist_shards () in
  let dispatch_shards = hist_shards () in
  let service_shards = hist_shards () in
  let sojourn_w_shards = window_shards () in
  let qwait_w_shards = window_shards () in
  let arrive = Array.make cfg.requests 0 in
  let inject_t = Array.make cfg.requests 0 in
  let dequeue_t = Array.make cfg.requests 0 in
  let stage_ticks = Array.make (cfg.requests * cfg.chain) 0 in
  for i = 0 to cfg.requests - 1 do
    let s = plan.Open_load.services.(i) in
    let base = s / cfg.chain and rem = s mod cfg.chain in
    for k = 0 to cfg.chain - 1 do
      stage_ticks.((i * cfg.chain) + k) <- (base + if k < rem then 1 else 0)
    done
  done;
  let injected = ref 0 in
  let dropped = ref 0 in
  let completed = ref 0 in
  let in_flight = ref 0 in
  let in_queue = ref 0 in
  let peak_queue = ref 0 in
  let block_spins = ref 0 in
  let injector_done = ref false in
  let injector_body () =
    for i = 0 to cfg.requests - 1 do
      let gap = plan.Open_load.gaps.(i) in
      if gap > 0 then Program.work gap;
      (* Arrival is stamped before any backpressure spin, so queue wait
         (and hence sojourn) charges the time a Block policy makes the
         request wait at the front door. *)
      arrive.(i) <- Timing.now clk;
      (match cfg.policy with
      | Open_load.Block ->
          while !in_queue >= cfg.capacity do
            incr block_spins;
            Program.spin_pause ()
          done
      | Open_load.Drop -> ());
      if !in_queue >= cfg.capacity then incr dropped
      else begin
        incr injected;
        incr in_flight;
        incr in_queue;
        if !in_queue > !peak_queue then peak_queue := !in_queue;
        Ws_core.Queue_intf.put queues.(inj) (i * cfg.chain);
        inject_t.(i) <- Timing.now clk
      end
    done;
    injector_done := true
  in
  let exec_task w t =
    let m = metrics.Metrics.workers.(w) in
    m.Metrics.tasks_run <- m.Metrics.tasks_run + 1;
    let stage = t mod cfg.chain in
    let i = t / cfg.chain in
    if stage = 0 then begin
      (* Stage-0 dequeue closes the first two stages. The injector queue
         is FIFO, so successive stage-0 dequeues on one worker see
         non-decreasing arrival ticks — monotone enough for the
         arrival-keyed queue-wait ring. *)
      let now = Timing.now clk in
      dequeue_t.(i) <- now;
      let qw = inject_t.(i) - arrive.(i) in
      Telemetry.Histogram.observe qwait_shards.(w) qw;
      Telemetry.Windowed.observe qwait_w_shards.(w) ~now:arrive.(i) qw;
      Telemetry.Histogram.observe dispatch_shards.(w) (now - inject_t.(i))
    end;
    let ticks = stage_ticks.(t) in
    if ticks > 0 then Program.work ticks;
    if stage < cfg.chain - 1 then begin
      m.Metrics.puts <- m.Metrics.puts + 1;
      Ws_core.Queue_intf.put queues.(w) (t + 1)
    end
    else begin
      let now = Timing.now clk in
      let soj = now - arrive.(i) in
      Telemetry.Histogram.observe sojourn_shards.(w) soj;
      Telemetry.Histogram.observe service_shards.(w) (now - dequeue_t.(i));
      Telemetry.Windowed.observe sojourn_w_shards.(w) ~now soj;
      incr completed;
      decr in_flight
    end
  in
  let worker_body w () =
    let m = metrics.Metrics.workers.(w) in
    let rng = Open_load.rng (cfg.seed + ((w + 1) * 0x9e37)) in
    let live () = !in_flight > 0 || not !injector_done in
    let rec own_loop () =
      if live () then begin
        m.Metrics.takes <- m.Metrics.takes + 1;
        match Ws_core.Queue_intf.take queues.(w) with
        | `Task t ->
            exec_task w t;
            own_loop ()
        | `Empty ->
            m.Metrics.take_empties <- m.Metrics.take_empties + 1;
            hunt ()
      end
    and hunt () =
      if live () then begin
        (* Drain the front door first, like the native pool: arrivals wait
           in the injector's deque and only steals move them on. *)
        let victim =
          if !in_queue > 0 then inj
          else if cfg.workers = 1 then inj
          else begin
            let v = Open_load.int rng (cfg.workers - 1) in
            if v >= w then v + 1 else v
          end
        in
        m.Metrics.steal_attempts <- m.Metrics.steal_attempts + 1;
        match Ws_core.Queue_intf.steal queues.(victim) with
        | `Task t ->
            m.Metrics.steals <- m.Metrics.steals + 1;
            (* Draining the injector is the front-door path, not a steal
               between workers, so only worker-victim steals count as
               stolen task executions. *)
            if victim = inj then decr in_queue
            else m.Metrics.tasks_run_stolen <- m.Metrics.tasks_run_stolen + 1;
            exec_task w t;
            own_loop ()
        | `Empty ->
            m.Metrics.steal_empties <- m.Metrics.steal_empties + 1;
            Program.work cfg.idle_backoff;
            hunt ()
        | `Abort ->
            m.Metrics.steal_aborts <- m.Metrics.steal_aborts + 1;
            Program.work cfg.idle_backoff;
            hunt ()
      end
    in
    own_loop ()
  in
  for w = 0 to cfg.workers - 1 do
    ignore
      (Machine.spawn machine ~name:(Printf.sprintf "worker%d" w)
         (worker_body w))
  done;
  ignore (Machine.spawn machine ~name:"injector" injector_body);
  let shards =
    match sink with
    | Some _ -> Some (Telemetry.Shards.create ~n:(cfg.workers + 1))
    | None -> None
  in
  let timing =
    Timing.run ~max_steps:cfg.max_steps ~clock:clk ?sink ?shards machine
      cfg.costs
  in
  (match sink with
  | None -> ()
  | Some s -> Metrics.fold_into_sink metrics s);
  let merge_hists shards =
    let into = Telemetry.Histogram.create () in
    Array.iter (fun h -> Telemetry.Histogram.merge ~into h) shards;
    into
  in
  let merge_windows shards =
    let into =
      Telemetry.Windowed.create ~slots:cfg.window_slots ~width:cfg.window ()
    in
    Array.iter (fun w -> Telemetry.Windowed.merge ~into w) shards;
    into
  in
  let sojourn = merge_hists sojourn_shards in
  let makespan = timing.Timing.makespan in
  {
    injected = !injected;
    dropped = !dropped;
    completed = !completed;
    makespan;
    steps = timing.Timing.steps;
    outcome = timing.Timing.outcome;
    p50 = Telemetry.Histogram.percentile sojourn 0.5;
    p99 = Telemetry.Histogram.percentile sojourn 0.99;
    p999 = Telemetry.Histogram.percentile sojourn 0.999;
    sojourn;
    qwait = merge_hists qwait_shards;
    dispatch = merge_hists dispatch_shards;
    service = merge_hists service_shards;
    sojourn_windows = merge_windows sojourn_w_shards;
    qwait_windows = merge_windows qwait_w_shards;
    peak_queue = !peak_queue;
    block_spins = !block_spins;
    offered_rate = Open_load.mean_rate cfg.arrival;
    achieved_rate =
      (if makespan = 0 then 0.
       else 1000. *. float_of_int !completed /. float_of_int makespan);
    metrics;
  }
