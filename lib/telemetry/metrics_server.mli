(** Minimal HTTP/1.1 metrics endpoint on a plain [Unix] socket.

    A single listener thread serves [GET /] and [GET /metrics] by calling
    the [body] thunk per request (every scrape renders fresh data) and
    closes each connection after the response — no keep-alive, no
    dependencies beyond [unix] and [threads.posix]. Intended for the
    live-scrape path of [wsrepro native --serve-metrics]. *)

type t

val start : ?host:string -> port:int -> body:(unit -> string) -> unit -> t
(** Bind [host] (default loopback) at [port] and start serving. [port = 0]
    binds an ephemeral port; read it back with {!port}. Raises
    [Unix.Unix_error] if the bind fails. *)

val port : t -> int
(** The actually bound port. *)

val stop : t -> unit
(** Close the listener and join the serving thread. Idempotent. *)
