(* Power-of-two bucketed histogram over non-negative ints. Bucket 0 counts
   the value 0; bucket i (i >= 1) counts values in [2^(i-1), 2^i). 63
   buckets cover the whole non-negative int range, so [observe] never needs
   to grow or clamp.

   Negative samples are a caller bug (a cycle count or an occupancy can
   never be negative); they used to be silently clamped to bucket 0, which
   hid e.g. a clock going backwards under a pile of legitimate zeros. They
   are now counted apart in [negative] and excluded from every statistic,
   so a nonzero [negative] is an unmissable signal in any export. *)

let n_buckets = 63

type t = {
  counts : int array;
  mutable total : int;
  mutable sum : int;
  mutable max_value : int;
  mutable negative : int;
}

let create () =
  {
    counts = Array.make n_buckets 0;
    total = 0;
    sum = 0;
    max_value = 0;
    negative = 0;
  }

let bucket_of v =
  if v <= 0 then 0
  else begin
    let i = ref 0 in
    let v = ref v in
    while !v > 0 do
      incr i;
      v := !v lsr 1
    done;
    !i
  end

let bucket_lo i = if i = 0 then 0 else 1 lsl (i - 1)
let bucket_hi i = if i = 0 then 0 else (1 lsl i) - 1

(* Both operands are >= 0 here, so wraparound shows up as a negative
   result; pin the sum to max_int instead of letting it wrap. *)
let sat_add a b =
  let s = a + b in
  if s < 0 then max_int else s

let observe t v =
  if v < 0 then t.negative <- t.negative + 1
  else begin
    t.counts.(bucket_of v) <- t.counts.(bucket_of v) + 1;
    t.total <- t.total + 1;
    t.sum <- sat_add t.sum v;
    if v > t.max_value then t.max_value <- v
  end

let total t = t.total
let sum t = t.sum
let max_value t = t.max_value
let negative t = t.negative
let mean t = if t.total = 0 then 0.0 else float_of_int t.sum /. float_of_int t.total
let count t i = t.counts.(i)

let merge ~into src =
  for i = 0 to n_buckets - 1 do
    into.counts.(i) <- into.counts.(i) + src.counts.(i)
  done;
  into.total <- into.total + src.total;
  into.sum <- sat_add into.sum src.sum;
  if src.max_value > into.max_value then into.max_value <- src.max_value;
  into.negative <- into.negative + src.negative

let reset t =
  Array.fill t.counts 0 n_buckets 0;
  t.total <- 0;
  t.sum <- 0;
  t.max_value <- 0;
  t.negative <- 0

(* Upper bound of the bucket holding the q-quantile sample (so the answer
   is exact to within the 2x bucket width), capped at the observed max.
   q <= 0 returns the smallest bucket's bound, q >= 1 the max value. *)
let percentile t q =
  if t.total = 0 then 0
  else begin
    let rank =
      let r = int_of_float (ceil (q *. float_of_int t.total)) in
      if r < 1 then 1 else if r > t.total then t.total else r
    in
    let i = ref 0 and seen = ref 0 in
    while !seen < rank && !i < n_buckets do
      seen := !seen + t.counts.(!i);
      if !seen < rank then incr i
    done;
    min (bucket_hi !i) t.max_value
  end

(* [percentile] answers 0 on an empty histogram — indistinguishable from
   a histogram full of zeros. Callers that must tell "no data" apart from
   "all zeros" (SLO verdicts, sparkline rows) use the option form. *)
let percentile_opt t q = if t.total = 0 then None else Some (percentile t q)

(* Non-empty buckets as [(lo, hi, count)], lowest first. *)
let buckets t =
  let acc = ref [] in
  for i = n_buckets - 1 downto 0 do
    if t.counts.(i) > 0 then acc := (bucket_lo i, bucket_hi i, t.counts.(i)) :: !acc
  done;
  !acc

let to_json t =
  Json.Obj
    [
      ("total", Json.Int t.total);
      ("sum", Json.Int t.sum);
      ("max", Json.Int t.max_value);
      ("negative", Json.Int t.negative);
      ( "buckets",
        Json.List
          (List.map
             (fun (lo, hi, c) ->
               Json.Obj
                 [ ("lo", Json.Int lo); ("hi", Json.Int hi); ("count", Json.Int c) ])
             (buckets t)) );
    ]

let pp ppf t =
  Format.fprintf ppf "@[<h>total=%d mean=%.2f max=%d" t.total (mean t)
    t.max_value;
  if t.negative > 0 then Format.fprintf ppf " negative=%d" t.negative;
  Format.fprintf ppf " [";
  List.iteri
    (fun i (lo, hi, c) ->
      if i > 0 then Format.fprintf ppf " ";
      if lo = hi then Format.fprintf ppf "%d:%d" lo c
      else Format.fprintf ppf "%d-%d:%d" lo hi c)
    (buckets t);
  Format.fprintf ppf "]@]"
