(** The unified cross-layer counter sink.

    One sink is attached to (at most) one simulated machine and shared by
    every layer driving it: the machine counts instructions and transitions,
    the timing engine attributes stall cycles, the queue layer counts
    operations, outcomes and delta checks, and the runtime folds in
    task-level totals. A detached layer pays a single [if sink attached]
    branch per event (mirroring the machine's listener laziness), so
    telemetry is pay-for-use. Sinks are single-domain values: parallel
    drivers use one sink per domain and {!merge}. *)

type t = {
  mutable loads : int;
  mutable stores : int;
  mutable cas : int;
  mutable fetch_adds : int;
  mutable fences : int;
  mutable drains : int;
  mutable flushes : int;
  mutable coalesces : int;
  mutable steps : int;
  sb_occupancy : Histogram.t;
      (** buffer-proper entries, sampled after each store issue *)
  egress_depth : Histogram.t;
      (** egress-buffer B occupancy, sampled at each drain *)
  mutable fence_stall_cycles : int;
      (** cycles fences and RMWs spent waiting for the buffer to drain *)
  mutable drain_stall_cycles : int;
      (** cycles stores spent blocked on a full buffer *)
  mutable puts : int;
  mutable takes : int;
  mutable take_empties : int;
  mutable steal_attempts : int;
  mutable steals : int;
  mutable steal_empties : int;
  mutable steal_aborts : int;
  mutable delta_checks : int;
      (** [t - delta > h] certifications attempted by fence-free thieves *)
  mutable tasks_run : int;
  mutable tasks_stolen : int;
  mutable parks : int;
      (** worker park episodes (native pool sleepers protocol) *)
  mutable por_sleep_skips : int;
      (** transitions the explorer's sleep-set POR refused to explore *)
  mutable snapshot_restores : int;
      (** {!Machine.restore_into} calls (snapshot-based sibling exploration) *)
  mutable frontier_tasks : int;
      (** work-stealing frontier tasks processed by the parallel explorer *)
  mutable frontier_steals : int;
      (** successful steals between the explorer's frontier deques *)
  mutable frontier_steal_attempts : int;
      (** frontier steal probes, successful or not *)
  mutable shrink_iterations : int;
      (** oracle replays performed by the forensics ddmin shrinker *)
  mutable witness_events : int;
      (** reorder witnesses extracted from replayed failing schedules *)
  mutable forensics_report_bytes : int;
      (** total bytes of rendered forensics reports *)
}

val create : unit -> t
val reset : t -> unit

val merge : into:t -> t -> unit
(** Add [src]'s counts into [into]; [src] is unchanged. *)

val fields : t -> (string * int) list
(** Every scalar counter in canonical export order. *)

val sb_occupancy : t -> Histogram.t
val egress_depth : t -> Histogram.t

val to_json : t -> Json.value
(** Scalar counters plus both histograms. *)

val pp : Format.formatter -> t -> unit
(** Non-zero counters, one per line. *)
