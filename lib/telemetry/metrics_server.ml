(* Minimal HTTP/1.1 scrape endpoint on a plain Unix socket.

   One listener thread accepts loopback connections and serves GET / or
   GET /metrics by calling the [body] thunk at request time (so every
   scrape sees fresh counters); anything else is a 404. Requests are
   read with a single bounded [read] — a scrape request line fits in one
   segment and we never trust the peer for more — and every response
   closes the connection, so there is no keep-alive state to manage.

   [stop] closes the listening socket, which forces the blocked [accept]
   to fail; the thread checks the stop flag and exits, and [stop] joins
   it before returning. *)

type t = {
  sock : Unix.file_descr;
  port : int;
  mutable stopped : bool;
  mutable thread : Thread.t option;
}

let http_response ~status ~content_type body =
  Printf.sprintf
    "HTTP/1.1 %s\r\nContent-Type: %s\r\nContent-Length: %d\r\nConnection: \
     close\r\n\r\n%s"
    status content_type (String.length body) body

let handle_client fd body =
  let buf = Bytes.create 4096 in
  (match Unix.read fd buf 0 (Bytes.length buf) with
  | exception Unix.Unix_error _ -> ()
  | 0 -> ()
  | n ->
      let req = Bytes.sub_string buf 0 n in
      let path =
        match String.split_on_char ' ' req with
        | _meth :: path :: _ -> path
        | _ -> "/"
      in
      let resp =
        if path = "/" || path = "/metrics" then
          http_response ~status:"200 OK" ~content_type:Openmetrics.content_type
            (body ())
        else
          http_response ~status:"404 Not Found" ~content_type:"text/plain"
            "not found\n"
      in
      let rec write_all off len =
        if len > 0 then
          match Unix.write_substring fd resp off len with
          | exception Unix.Unix_error _ -> ()
          | w -> write_all (off + w) (len - w)
      in
      write_all 0 (String.length resp));
  try Unix.close fd with Unix.Unix_error _ -> ()

let rec accept_loop t body =
  match Unix.accept t.sock with
  | exception Unix.Unix_error _ -> if not t.stopped then accept_loop t body
  | client, _addr ->
      if t.stopped then (try Unix.close client with Unix.Unix_error _ -> ())
      else begin
        handle_client client body;
        accept_loop t body
      end

let start ?(host = "127.0.0.1") ~port ~body () =
  let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt sock Unix.SO_REUSEADDR true;
  let addr = Unix.ADDR_INET (Unix.inet_addr_of_string host, port) in
  (try Unix.bind sock addr
   with e ->
     Unix.close sock;
     raise e);
  Unix.listen sock 16;
  let port =
    match Unix.getsockname sock with
    | Unix.ADDR_INET (_, p) -> p
    | _ -> port
  in
  let t = { sock; port; stopped = false; thread = None } in
  t.thread <- Some (Thread.create (fun () -> accept_loop t body) ());
  t

let port t = t.port

let stop t =
  if not t.stopped then begin
    t.stopped <- true;
    (* Closing the listener does not wake a thread blocked in accept(2) on
       Linux; poke it with a throwaway loopback connection instead, then
       close once the thread has exited. *)
    (try
       let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
       (try Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, t.port))
        with Unix.Unix_error _ -> ());
       try Unix.close fd with Unix.Unix_error _ -> ()
     with Unix.Unix_error _ -> ());
    Option.iter Thread.join t.thread;
    (try Unix.close t.sock with Unix.Unix_error _ -> ())
  end
