(** Throttled live progress reporting on stderr.

    Callers sample as often as they like (e.g. once per completed explorer
    run or grid point); the reporter rewrites a single status line at most
    every [interval] seconds, so stdout — figure tables, cram transcripts —
    is untouched and the sampling hot path costs one [gettimeofday] per
    call that passes the throttle check. *)

type t

val create : ?interval:float -> ?out:out_channel -> label:string -> unit -> t
(** Defaults: [interval = 0.5] seconds, [out = stderr]. [label] prefixes
    every status line. *)

val sample : t -> count:int -> (rate:float -> string) -> unit
(** Maybe emit a status line. [count] is the monotone progress measure;
    [rate] passed to the formatter is [count] per second since creation. *)

val elapsed : t -> float

val redraw : t -> string list -> unit
(** Throttled multi-line block redraw (for dashboards like [wsrepro top]):
    rewrites the previously drawn block in place with ANSI cursor movement,
    clearing each line first so a shrinking block leaves no stale rows.
    Mixing {!sample} and {!redraw} on one reporter is unsupported. *)

val redraw_now : t -> string list -> unit
(** {!redraw} without the interval throttle (first paint, final frame). *)

val finish : ?detail:string -> t -> unit
(** Emit a final line ([detail]) if given, then terminate the status line
    with a newline — only if anything was ever emitted. *)
