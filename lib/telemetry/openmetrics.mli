(** OpenMetrics text exposition (Prometheus scrape format).

    The renderer is byte-stable: metric families render in caller order,
    samples in caller order, values in a fixed deterministic format.
    Counter families automatically get the spec-required [_total] suffix on
    their sample lines, and the document ends with the [# EOF] terminator. *)

type sample = { labels : (string * string) list; value : float; suffix : string }
type metric_type = Counter | Gauge | Histogram

type metric = {
  name : string;
  help : string;
  mtype : metric_type;
  samples : sample list;
}

val counter : name:string -> help:string -> sample list -> metric
val gauge : name:string -> help:string -> sample list -> metric

val histogram :
  name:string -> help:string -> ?labels:(string * string) list -> Histogram.t -> metric
(** Spec-compliant histogram exposition: cumulative [_bucket] samples with
    an [le] upper-bound label per occupied power-of-two bucket, a closing
    [le="+Inf"] bucket, then [_count] and [_sum]. [labels] (e.g. a worker
    slot) prefix [le] on every bucket sample. *)

val sample : ?labels:(string * string) list -> float -> sample
(** Plain sample (empty name suffix). *)

val render : metric list -> string
(** Full exposition document, [# EOF]-terminated. *)

val content_type : string
(** The HTTP [Content-Type] an OpenMetrics endpoint must serve. *)
