(** Chrome trace-event recorder: emits the JSON Array Format that
    [chrome://tracing] and Perfetto load directly.

    Timestamps and durations are simulated cycles (reported in the format's
    microsecond field). Events accumulate in memory in deterministic order —
    a trace of the same run renders to identical bytes. Recording stops at
    [limit] events (default 200k); overflow is counted in the document's
    [otherData.dropped] so a truncated trace is detectable. *)

type t

val create : ?limit:int -> unit -> t

val complete :
  t -> name:string -> ?cat:string -> ?pid:int -> tid:int -> ts:int -> dur:int ->
  unit -> unit
(** A span [ts, ts+dur) on thread [tid] (phase "X"). *)

val instant :
  t -> name:string -> ?cat:string -> ?pid:int -> tid:int -> ts:int -> unit -> unit

val async_begin :
  t -> name:string -> ?cat:string -> ?pid:int -> tid:int -> ts:int -> id:int ->
  unit -> unit
(** Open an async interval (phase "b"); close it with {!async_end} and the
    same [id]/[name]/[cat]. Used for store-buffer residency of stores. *)

val async_end :
  t -> name:string -> ?cat:string -> ?pid:int -> tid:int -> ts:int -> id:int ->
  unit -> unit

val counter :
  t -> name:string -> ?cat:string -> ?pid:int -> tid:int -> ts:int ->
  values:(string * int) list -> unit -> unit
(** A counter-track sample (phase "C"). *)

val flow_start :
  t -> name:string -> ?cat:string -> ?pid:int -> tid:int -> ts:int -> id:int ->
  unit -> unit
(** Open a flow arrow (phase "s"); terminate it with {!flow_finish} and the
    same [id]/[name]/[cat]. Used for victim-push → thief-run steal arrows. *)

val flow_finish :
  t -> name:string -> ?cat:string -> ?pid:int -> tid:int -> ts:int -> id:int ->
  unit -> unit
(** Arrow head (phase "f", binding point "e"). *)

val set_thread_name : t -> pid:int -> tid:int -> string -> unit
val set_process_name : t -> pid:int -> string -> unit

val length : t -> int
(** Events recorded (excluding metadata). *)

val dropped : t -> int
(** Events discarded after the limit was reached. *)

val to_json : t -> Json.value
val to_string : t -> string
val write : t -> string -> unit
