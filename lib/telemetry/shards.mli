(** Sharded counter plane: a fixed ring of {!Sink.t}s, one per
    worker/domain, with an explicit batched merge at quiescence points.

    Writers bump only their own shard, so the accounting path adds no
    synchronization (and no cross-domain cache traffic) that the measured
    algorithm does not have. {!Sink.merge} is field-wise addition and
    {!Histogram.merge} is bucket-wise addition, so the merged result is
    independent of how the op stream was partitioned: N shards merged into
    a root sink render byte-identically ({!Sink.to_json}) to a single sink
    that observed the whole stream.

    Consistency model of mid-run reads: a shard may be read (e.g. by a
    scraper) while its owner writes; each field is a single word written by
    one domain, so individual fields are never torn, but no cross-field or
    cross-shard consistency holds until a quiescent {!merge}. *)

type t

val create : n:int -> t
(** [n] shards ([n <= 0] is clamped to 1), all zeroed. *)

val length : t -> int

val shard : t -> int -> Sink.t
(** [shard t i] is shard [i mod length t] — out-of-range ids wrap rather
    than raise, so a caller sized for W workers can route any id. *)

val sinks : t -> Sink.t array
(** The underlying ring, for routing tables that index it directly. Do not
    resize; mutating the sinks is the whole point. *)

val merge : into:Sink.t -> t -> unit
(** Batched quiescence-point merge: fold every shard into [into], then
    reset the shards (drain semantics — merging twice adds nothing new).
    Call only while writers are quiescent ({!Par_runner} joins, engine run
    end, pool folds). *)

val reset : t -> unit
