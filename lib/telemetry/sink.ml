(* The cross-layer counter set. One sink is typically attached to one
   simulated machine (and threaded to the timing engine and the runtime
   driving it); layers write their own fields:

   - machine layer: instruction/transition counters, store-buffer occupancy;
   - timing layer: stall-cycle attribution;
   - queue layer (via Registry's counting wrapper and the fence-free
     algorithms' delta checks): operation and outcome counters;
   - runtime layer: task-level counters folded in from Metrics.

   Everything is a plain mutable int (or a Histogram), so the attached-sink
   hot path costs one or two increments per event and nothing allocates. *)

type t = {
  (* machine layer: executed instructions by class, applied transitions *)
  mutable loads : int;
  mutable stores : int;
  mutable cas : int;
  mutable fetch_adds : int;
  mutable fences : int;
  mutable drains : int;  (* drain transitions: a store left the buffer proper *)
  mutable flushes : int;  (* egress-buffer B writes to memory *)
  mutable coalesces : int;  (* drains that coalesced into B in place *)
  mutable steps : int;  (* all applied transitions *)
  sb_occupancy : Histogram.t;  (* buffer-proper entries, sampled per store *)
  egress_depth : Histogram.t;  (* B occupancy (0/1), sampled per drain *)
  (* timing layer *)
  mutable fence_stall_cycles : int;  (* cycles fences/RMWs waited on drains *)
  mutable drain_stall_cycles : int;  (* cycles stores waited on a full buffer *)
  (* queue layer *)
  mutable puts : int;
  mutable takes : int;
  mutable take_empties : int;
  mutable steal_attempts : int;
  mutable steals : int;
  mutable steal_empties : int;
  mutable steal_aborts : int;
  mutable delta_checks : int;  (* t - delta > h certifications attempted *)
  (* runtime layer *)
  mutable tasks_run : int;
  mutable tasks_stolen : int;
  mutable parks : int;  (* worker park episodes (native pool sleepers) *)
  (* explorer layer *)
  mutable por_sleep_skips : int;  (* transitions skipped by sleep-set POR *)
  mutable snapshot_restores : int;  (* Machine.restore_into calls *)
  mutable frontier_tasks : int;  (* frontier tasks processed (Explore_par) *)
  mutable frontier_steals : int;  (* successful frontier deque steals *)
  mutable frontier_steal_attempts : int;  (* frontier steal probes *)
  (* forensics layer *)
  mutable shrink_iterations : int;  (* ddmin oracle replays *)
  mutable witness_events : int;  (* reorder witnesses extracted *)
  mutable forensics_report_bytes : int;  (* bytes of emitted reports *)
}

let create () =
  {
    loads = 0;
    stores = 0;
    cas = 0;
    fetch_adds = 0;
    fences = 0;
    drains = 0;
    flushes = 0;
    coalesces = 0;
    steps = 0;
    sb_occupancy = Histogram.create ();
    egress_depth = Histogram.create ();
    fence_stall_cycles = 0;
    drain_stall_cycles = 0;
    puts = 0;
    takes = 0;
    take_empties = 0;
    steal_attempts = 0;
    steals = 0;
    steal_empties = 0;
    steal_aborts = 0;
    delta_checks = 0;
    tasks_run = 0;
    tasks_stolen = 0;
    parks = 0;
    por_sleep_skips = 0;
    snapshot_restores = 0;
    frontier_tasks = 0;
    frontier_steals = 0;
    frontier_steal_attempts = 0;
    shrink_iterations = 0;
    witness_events = 0;
    forensics_report_bytes = 0;
  }

let reset t =
  t.loads <- 0;
  t.stores <- 0;
  t.cas <- 0;
  t.fetch_adds <- 0;
  t.fences <- 0;
  t.drains <- 0;
  t.flushes <- 0;
  t.coalesces <- 0;
  t.steps <- 0;
  Histogram.reset t.sb_occupancy;
  Histogram.reset t.egress_depth;
  t.fence_stall_cycles <- 0;
  t.drain_stall_cycles <- 0;
  t.puts <- 0;
  t.takes <- 0;
  t.take_empties <- 0;
  t.steal_attempts <- 0;
  t.steals <- 0;
  t.steal_empties <- 0;
  t.steal_aborts <- 0;
  t.delta_checks <- 0;
  t.tasks_run <- 0;
  t.tasks_stolen <- 0;
  t.parks <- 0;
  t.por_sleep_skips <- 0;
  t.snapshot_restores <- 0;
  t.frontier_tasks <- 0;
  t.frontier_steals <- 0;
  t.frontier_steal_attempts <- 0;
  t.shrink_iterations <- 0;
  t.witness_events <- 0;
  t.forensics_report_bytes <- 0

let merge ~into src =
  into.loads <- into.loads + src.loads;
  into.stores <- into.stores + src.stores;
  into.cas <- into.cas + src.cas;
  into.fetch_adds <- into.fetch_adds + src.fetch_adds;
  into.fences <- into.fences + src.fences;
  into.drains <- into.drains + src.drains;
  into.flushes <- into.flushes + src.flushes;
  into.coalesces <- into.coalesces + src.coalesces;
  into.steps <- into.steps + src.steps;
  Histogram.merge ~into:into.sb_occupancy src.sb_occupancy;
  Histogram.merge ~into:into.egress_depth src.egress_depth;
  into.fence_stall_cycles <- into.fence_stall_cycles + src.fence_stall_cycles;
  into.drain_stall_cycles <- into.drain_stall_cycles + src.drain_stall_cycles;
  into.puts <- into.puts + src.puts;
  into.takes <- into.takes + src.takes;
  into.take_empties <- into.take_empties + src.take_empties;
  into.steal_attempts <- into.steal_attempts + src.steal_attempts;
  into.steals <- into.steals + src.steals;
  into.steal_empties <- into.steal_empties + src.steal_empties;
  into.steal_aborts <- into.steal_aborts + src.steal_aborts;
  into.delta_checks <- into.delta_checks + src.delta_checks;
  into.tasks_run <- into.tasks_run + src.tasks_run;
  into.tasks_stolen <- into.tasks_stolen + src.tasks_stolen;
  into.parks <- into.parks + src.parks;
  into.por_sleep_skips <- into.por_sleep_skips + src.por_sleep_skips;
  into.snapshot_restores <- into.snapshot_restores + src.snapshot_restores;
  into.frontier_tasks <- into.frontier_tasks + src.frontier_tasks;
  into.frontier_steals <- into.frontier_steals + src.frontier_steals;
  into.frontier_steal_attempts <-
    into.frontier_steal_attempts + src.frontier_steal_attempts;
  into.shrink_iterations <- into.shrink_iterations + src.shrink_iterations;
  into.witness_events <- into.witness_events + src.witness_events;
  into.forensics_report_bytes <-
    into.forensics_report_bytes + src.forensics_report_bytes

(* The canonical field order of every export; extend here and every
   consumer (JSON sidecars, pp, the metrics schema test) follows. *)
let fields t =
  [
    ("loads", t.loads);
    ("stores", t.stores);
    ("cas", t.cas);
    ("fetch_adds", t.fetch_adds);
    ("fences", t.fences);
    ("drains", t.drains);
    ("flushes", t.flushes);
    ("coalesces", t.coalesces);
    ("steps", t.steps);
    ("fence_stall_cycles", t.fence_stall_cycles);
    ("drain_stall_cycles", t.drain_stall_cycles);
    ("puts", t.puts);
    ("takes", t.takes);
    ("take_empties", t.take_empties);
    ("steal_attempts", t.steal_attempts);
    ("steals", t.steals);
    ("steal_empties", t.steal_empties);
    ("steal_aborts", t.steal_aborts);
    ("delta_checks", t.delta_checks);
    ("tasks_run", t.tasks_run);
    ("tasks_stolen", t.tasks_stolen);
    ("parks", t.parks);
    ("por_sleep_skips", t.por_sleep_skips);
    ("snapshot_restores", t.snapshot_restores);
    ("frontier_tasks", t.frontier_tasks);
    ("frontier_steals", t.frontier_steals);
    ("frontier_steal_attempts", t.frontier_steal_attempts);
    ("shrink_iterations", t.shrink_iterations);
    ("witness_events", t.witness_events);
    ("forensics_report_bytes", t.forensics_report_bytes);
  ]

let sb_occupancy t = t.sb_occupancy
let egress_depth t = t.egress_depth

let to_json t =
  Json.Obj
    (List.map (fun (k, v) -> (k, Json.Int v)) (fields t)
    @ [
        ("sb_occupancy", Histogram.to_json t.sb_occupancy);
        ("egress_depth", Histogram.to_json t.egress_depth);
      ])

let pp ppf t =
  Format.fprintf ppf "@[<v>";
  List.iter
    (fun (k, v) -> if v <> 0 then Format.fprintf ppf "%-20s %d@," k v)
    (fields t);
  if Histogram.total t.sb_occupancy > 0 then
    Format.fprintf ppf "%-20s %a@," "sb_occupancy" Histogram.pp t.sb_occupancy;
  Format.fprintf ppf "@]"
