(* Per-slot flight recorder for the native work-stealing pool.

   One fixed-capacity ring per pool slot, written only by the domain that
   owns that slot, so recording an event is four plain int stores plus a
   monotonic clock read — no CAS, no fence, no allocation. Wrapping
   overwrites the oldest events; [wrote] never resets, so the exact number
   of overwritten events is [max 0 (wrote - capacity)].

   Events are (kind, task, arg, timestamp) quadruples at stride 4 in a flat
   int array. The [arg] meaning depends on the kind (see the .mli): for Run
   events it encodes provenance (own pop / injector / victim slot), which is
   what the lineage reconstructor keys on.

   Injecting domains are outside the pool and own no slot, so they share one
   extra [external] ring guarded by a mutex — injection already takes the
   injector lock, so the cold path can afford a second one. *)

type kind = Spawn | Run | Steal | Steal_abort | Inject | Park | Unpark

let kind_to_int = function
  | Spawn -> 0
  | Run -> 1
  | Steal -> 2
  | Steal_abort -> 3
  | Inject -> 4
  | Park -> 5
  | Unpark -> 6

let kind_of_int = function
  | 0 -> Spawn
  | 1 -> Run
  | 2 -> Steal
  | 3 -> Steal_abort
  | 4 -> Inject
  | 5 -> Park
  | 6 -> Unpark
  | k -> invalid_arg (Printf.sprintf "Flight_recorder.kind_of_int %d" k)

let kind_name = function
  | Spawn -> "spawn"
  | Run -> "run"
  | Steal -> "steal"
  | Steal_abort -> "steal_abort"
  | Inject -> "inject"
  | Park -> "park"
  | Unpark -> "unpark"

let origin_pop = -1
let origin_inject = -2
let no_task = -1
let no_arg = -1

type ring = {
  mask : int;  (* capacity - 1; capacity is a power of two *)
  buf : int array;  (* capacity * 4 ints: kind, task, arg, ts *)
  mutable wrote : int;  (* events ever recorded, monotone *)
}

type t = {
  slots : int;
  capacity : int;
  rings : ring array;  (* rings.(slot): single-writer; rings.(slots): external *)
  ext_lock : Mutex.t;
  base_ns : int;  (* decoded timestamps are relative to creation *)
}

let next_pow2 n =
  let rec go p = if p >= n then p else go (p * 2) in
  go 1

let create ?(capacity = 16384) ~slots () =
  if slots < 1 then invalid_arg "Flight_recorder.create: slots < 1";
  if capacity < 1 then invalid_arg "Flight_recorder.create: capacity < 1";
  let capacity = next_pow2 capacity in
  let mk_ring () = { mask = capacity - 1; buf = Array.make (capacity * 4) 0; wrote = 0 } in
  {
    slots;
    capacity;
    rings = Array.init (slots + 1) (fun _ -> mk_ring ());
    ext_lock = Mutex.create ();
    base_ns = Clock.now_ns ();
  }

let slots t = t.slots
let capacity t = t.capacity

(* The hot path. The index arithmetic keeps [i] in [0, capacity*4), so the
   unsafe stores are in bounds by construction; using them keeps the probe
   under the 50 ns/event budget. *)
let[@inline] record_in ring ~kind ~task ~arg =
  let i = (ring.wrote land ring.mask) * 4 in
  let buf = ring.buf in
  Array.unsafe_set buf i (kind_to_int kind);
  Array.unsafe_set buf (i + 1) task;
  Array.unsafe_set buf (i + 2) arg;
  Array.unsafe_set buf (i + 3) (Clock.now_ns ());
  ring.wrote <- ring.wrote + 1

let[@inline] record t ~slot kind ~task ~arg =
  record_in (Array.unsafe_get t.rings slot) ~kind ~task ~arg

let record_external t kind ~task ~arg =
  Mutex.lock t.ext_lock;
  record_in t.rings.(t.slots) ~kind ~task ~arg;
  Mutex.unlock t.ext_lock

let wrote t ~slot = t.rings.(slot).wrote

let dropped t =
  Array.map (fun r -> max 0 (r.wrote - t.capacity)) t.rings

(* ------------------------------------------------------------------ *)
(* Decoding                                                            *)

type event = { slot : int; kind : kind; task : int; arg : int; ts : int }

(* Ring index i is the pool slot for i < slots; the external ring decodes
   as slot -1. *)
let slot_of_ring t i = if i = t.slots then -1 else i

let events_of_ring t i =
  let r = t.rings.(i) in
  let slot = slot_of_ring t i in
  let first = max 0 (r.wrote - t.capacity) in
  let out = ref [] in
  for j = r.wrote - 1 downto first do
    let k = (j land r.mask) * 4 in
    out :=
      {
        slot;
        kind = kind_of_int r.buf.(k);
        task = r.buf.(k + 1);
        arg = r.buf.(k + 2);
        ts = r.buf.(k + 3) - t.base_ns;
      }
      :: !out
  done;
  !out

let events_of_slot t slot =
  events_of_ring t (if slot = -1 then t.slots else slot)

let events t =
  let all = List.concat (List.init (t.slots + 1) (events_of_ring t)) in
  (* Stable sort: same-timestamp events keep ring order (slot-major). *)
  List.stable_sort (fun a b -> compare a.ts b.ts) all

(* ------------------------------------------------------------------ *)
(* Lineage reconstruction                                              *)

type origin = Pop | Injected | Stolen of int

type lineage = {
  id : int;
  parent : int;  (* -1 = external / root *)
  spawn_slot : int;  (* -1 = injected from outside the pool *)
  spawn_ts : int;
  run_slot : int;
  run_ts : int;
  origin : origin;
  steal_depth : int;  (* stolen links on the spawn-ancestry path *)
}

let reconstruct t =
  let evs = events t in
  let spawns = Hashtbl.create 256 in
  let runs = Hashtbl.create 256 in
  List.iter
    (fun e ->
      match e.kind with
      | Spawn -> Hashtbl.replace spawns e.task (e.slot, e.arg, e.ts)
      | Inject -> Hashtbl.replace spawns e.task (-1, -1, e.ts)
      | Run -> Hashtbl.replace runs e.task (e.slot, e.arg, e.ts)
      | _ -> ())
    evs;
  let depth_memo = Hashtbl.create 256 in
  let rec steal_depth id =
    if id < 0 then 0
    else
      match Hashtbl.find_opt depth_memo id with
      | Some d -> d
      | None ->
          (* Break potential cycles from dropped/reused records defensively. *)
          Hashtbl.replace depth_memo id 0;
          let d =
            match (Hashtbl.find_opt spawns id, Hashtbl.find_opt runs id) with
            | Some (_, parent, _), Some (_, arg, _) ->
                (if arg >= 0 then 1 else 0) + steal_depth parent
            | Some (_, parent, _), None -> steal_depth parent
            | None, _ -> 0
          in
          Hashtbl.replace depth_memo id d;
          d
  in
  let unresolved = ref 0 in
  let tasks = ref [] in
  Hashtbl.iter
    (fun id (run_slot, arg, run_ts) ->
      match Hashtbl.find_opt spawns id with
      | None -> incr unresolved
      | Some (spawn_slot, parent, spawn_ts) ->
          let origin =
            if arg >= 0 then Stolen arg
            else if arg = origin_inject then Injected
            else Pop
          in
          tasks :=
            {
              id;
              parent;
              spawn_slot;
              spawn_ts;
              run_slot;
              run_ts;
              origin;
              steal_depth = steal_depth id;
            }
            :: !tasks)
    runs;
  let tasks = List.sort (fun a b -> compare a.id b.id) !tasks in
  (tasks, !unresolved)

(* ------------------------------------------------------------------ *)
(* wsrepro-flight/v1 report                                            *)

let schema_id = "wsrepro-flight/v1"

let origin_json = function
  | Pop -> [ ("origin", Json.Str "pop") ]
  | Injected -> [ ("origin", Json.Str "inject") ]
  | Stolen v -> [ ("origin", Json.Str "steal"); ("victim", Json.Int v) ]

let lineage_json l =
  Json.Obj
    ([
       ("id", Json.Int l.id);
       ("parent", Json.Int l.parent);
       ("spawn_slot", Json.Int l.spawn_slot);
       ("spawn_ts_ns", Json.Int l.spawn_ts);
       ("run_slot", Json.Int l.run_slot);
       ("run_ts_ns", Json.Int l.run_ts);
     ]
    @ origin_json l.origin
    @ [
        ("residency_ns", Json.Int (max 0 (l.run_ts - l.spawn_ts)));
        ("steal_depth", Json.Int l.steal_depth);
      ])

let event_json e =
  Json.Obj
    [
      ("slot", Json.Int e.slot);
      ("kind", Json.Str (kind_name e.kind));
      ("task", Json.Int e.task);
      ("arg", Json.Int e.arg);
      ("ts_ns", Json.Int e.ts);
    ]

let report t =
  let tasks, unresolved = reconstruct t in
  let residency = Histogram.create () in
  let depth = Histogram.create () in
  let stolen = ref 0 and injected = ref 0 and popped = ref 0 in
  let max_depth = ref 0 in
  List.iter
    (fun l ->
      Histogram.observe residency (max 0 (l.run_ts - l.spawn_ts));
      Histogram.observe depth l.steal_depth;
      max_depth := max !max_depth l.steal_depth;
      match l.origin with
      | Stolen _ -> incr stolen
      | Injected -> incr injected
      | Pop -> incr popped)
    tasks;
  Json.Obj
    [
      ("schema", Json.Str schema_id);
      ("slots", Json.Int t.slots);
      ("capacity", Json.Int t.capacity);
      ("dropped", Json.List (Array.to_list (Array.map (fun d -> Json.Int d) (dropped t))));
      ("tasks", Json.List (List.map lineage_json tasks));
      ("unresolved_runs", Json.Int unresolved);
      ( "summary",
        Json.Obj
          [
            ("tasks", Json.Int (List.length tasks));
            ("stolen", Json.Int !stolen);
            ("injected", Json.Int !injected);
            ("popped", Json.Int !popped);
            ("max_steal_depth", Json.Int !max_depth);
            ("residency_ns", Histogram.to_json residency);
            ("steal_depth", Histogram.to_json depth);
          ] );
      ("events", Json.List (List.map event_json (events t)));
    ]

let report_string t = Json.to_string ~indent:true (report t) ^ "\n"

let write_report t path =
  let oc = open_out path in
  output_string oc (report_string t);
  close_out oc

(* ------------------------------------------------------------------ *)
(* Validation                                                          *)

let validate json =
  let ( let* ) = Result.bind in
  let err fmt = Printf.ksprintf (fun s -> Error s) fmt in
  let field obj name =
    match Json.member name obj with
    | Some v -> Ok v
    | None -> err "missing field %S" name
  in
  let int_field obj name =
    let* v = field obj name in
    match v with Json.Int i -> Ok i | _ -> err "field %S: expected int" name
  in
  let* schema = field json "schema" in
  let* () =
    match schema with
    | Json.Str s when s = schema_id -> Ok ()
    | Json.Str s -> err "schema %S (want %s)" s schema_id
    | _ -> err "field \"schema\": expected string"
  in
  let* slots = int_field json "slots" in
  let* () = if slots >= 1 then Ok () else err "slots %d < 1" slots in
  let* capacity = int_field json "capacity" in
  let* () = if capacity >= 1 then Ok () else err "capacity %d < 1" capacity in
  let* dropped = field json "dropped" in
  let* () =
    match dropped with
    | Json.List ds when List.length ds = slots + 1 ->
        if List.for_all (function Json.Int d -> d >= 0 | _ -> false) ds then
          Ok ()
        else err "field \"dropped\": expected non-negative ints"
    | Json.List ds ->
        err "field \"dropped\": %d rings (want slots+1 = %d)" (List.length ds)
          (slots + 1)
    | _ -> err "field \"dropped\": expected list"
  in
  let* _ = field json "summary" in
  let* tasks = field json "tasks" in
  let* tasks =
    match tasks with
    | Json.List ts -> Ok ts
    | _ -> err "field \"tasks\": expected list"
  in
  let check_task tj =
    let* id = int_field tj "id" in
    let* run_slot = int_field tj "run_slot" in
    let* _ = int_field tj "spawn_slot" in
    let* _ = int_field tj "parent" in
    let* _ = int_field tj "residency_ns" in
    let* depth = int_field tj "steal_depth" in
    let* () =
      if depth >= 0 then Ok () else err "task %d: steal_depth %d < 0" id depth
    in
    let* origin = field tj "origin" in
    match origin with
    | Json.Str "pop" | Json.Str "inject" -> Ok ()
    | Json.Str "steal" ->
        let* victim = int_field tj "victim" in
        if victim < 0 then err "task %d: steal victim %d < 0" id victim
        else if victim = run_slot then
          err "task %d: steal victim %d = thief slot" id victim
        else if depth < 1 then err "task %d: stolen but steal_depth 0" id
        else Ok ()
    | Json.Str s -> err "task %d: unknown origin %S" id s
    | _ -> err "task %d: field \"origin\": expected string" id
  in
  let rec check_all = function
    | [] -> Ok ()
    | tj :: rest ->
        let* () = check_task tj in
        check_all rest
  in
  check_all tasks

(* ------------------------------------------------------------------ *)
(* Chrome trace with steal flow arrows                                 *)

let to_chrome ?(pid = 0) t =
  let tr = Chrome_trace.create () in
  Chrome_trace.set_process_name tr ~pid "wsrepro native pool";
  for s = 0 to t.slots - 1 do
    let name = if s = 0 then "slot 0 (coordinator)" else Printf.sprintf "slot %d" s in
    Chrome_trace.set_thread_name tr ~pid ~tid:s name
  done;
  Chrome_trace.set_thread_name tr ~pid ~tid:t.slots "external";
  let tid_of_slot s = if s = -1 then t.slots else s in
  let us ns = ns / 1000 in
  List.iter
    (fun e ->
      let tid = tid_of_slot e.slot in
      let ts = us e.ts in
      match e.kind with
      | Park | Unpark | Steal_abort ->
          Chrome_trace.instant tr ~name:(kind_name e.kind) ~cat:"pool" ~pid ~tid
            ~ts ()
      | Spawn | Inject | Run | Steal -> ())
    (events t);
  let tasks, _ = reconstruct t in
  List.iter
    (fun l ->
      let spawn_tid = tid_of_slot l.spawn_slot in
      Chrome_trace.instant tr
        ~name:(Printf.sprintf "spawn %d" l.id)
        ~cat:"task" ~pid ~tid:spawn_tid ~ts:(us l.spawn_ts) ();
      Chrome_trace.instant tr
        ~name:(Printf.sprintf "run %d" l.id)
        ~cat:"task" ~pid ~tid:l.run_slot ~ts:(us l.run_ts) ();
      match l.origin with
      | Stolen _ ->
          (* Arrow from the victim-side push to the thief-side run. *)
          Chrome_trace.flow_start tr ~name:"steal" ~cat:"steal" ~pid
            ~tid:spawn_tid ~ts:(us l.spawn_ts) ~id:l.id ();
          Chrome_trace.flow_finish tr ~name:"steal" ~cat:"steal" ~pid
            ~tid:l.run_slot ~ts:(us l.run_ts) ~id:l.id ()
      | Pop | Injected -> ())
    tasks;
  tr
