type value =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of value list
  | Obj of (string * value) list

let escape buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

(* Fixed-format floats so emitted documents are byte-stable across runs:
   trailing-zero trimming would make 1.50 vs 1.5 depend on the value. *)
let add_float buf f =
  if Float.is_integer f && Float.abs f < 1e15 then
    Buffer.add_string buf (Printf.sprintf "%.1f" f)
  else Buffer.add_string buf (Printf.sprintf "%.3f" f)

let rec add buf ~indent ~level v =
  let pad n = if indent then Buffer.add_string buf (String.make (2 * n) ' ') in
  let sep_open, sep_item, sep_close =
    if indent then ("\n", ",\n", "\n") else ("", ", ", "")
  in
  match v with
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f -> add_float buf f
  | Str s -> escape buf s
  | List [] -> Buffer.add_string buf "[]"
  | List items ->
      Buffer.add_char buf '[';
      Buffer.add_string buf sep_open;
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_string buf sep_item;
          pad (level + 1);
          add buf ~indent ~level:(level + 1) item)
        items;
      Buffer.add_string buf sep_close;
      pad level;
      Buffer.add_char buf ']'
  | Obj [] -> Buffer.add_string buf "{}"
  | Obj fields ->
      Buffer.add_char buf '{';
      Buffer.add_string buf sep_open;
      List.iteri
        (fun i (k, item) ->
          if i > 0 then Buffer.add_string buf sep_item;
          pad (level + 1);
          escape buf k;
          Buffer.add_string buf ": ";
          add buf ~indent ~level:(level + 1) item)
        fields;
      Buffer.add_string buf sep_close;
      pad level;
      Buffer.add_char buf '}'

let to_string ?(indent = true) v =
  let buf = Buffer.create 1024 in
  add buf ~indent ~level:0 v;
  if indent then Buffer.add_char buf '\n';
  Buffer.contents buf

let write_file path v =
  let oc = open_out path in
  output_string oc (to_string v);
  close_out oc

(* --- validator ------------------------------------------------------- *)

(* A deliberately small recursive-descent parser: its only job is to let the
   test suite and CI check that emitted documents (including multi-megabyte
   Chrome traces) are well-formed JSON without adding a dependency. *)

exception Bad of int * string

let parse s =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let fail msg = raise (Bad (!pos, msg)) in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some d when d = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %C" c)
  in
  let literal word v =
    String.iter expect word;
    v
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' -> (
          advance ();
          match peek () with
          | Some (('"' | '\\' | '/') as c) ->
              Buffer.add_char buf c;
              advance ();
              go ()
          | Some ('b' | 'f' | 'n' | 'r' | 't') ->
              (match peek () with
              | Some 'b' -> Buffer.add_char buf '\b'
              | Some 'f' -> Buffer.add_char buf '\012'
              | Some 'n' -> Buffer.add_char buf '\n'
              | Some 'r' -> Buffer.add_char buf '\r'
              | _ -> Buffer.add_char buf '\t');
              advance ();
              go ()
          | Some 'u' ->
              advance ();
              let code = ref 0 in
              for _ = 1 to 4 do
                match peek () with
                | Some (('0' .. '9' | 'a' .. 'f' | 'A' .. 'F') as c) ->
                    let d =
                      match c with
                      | '0' .. '9' -> Char.code c - Char.code '0'
                      | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
                      | _ -> Char.code c - Char.code 'A' + 10
                    in
                    code := (!code * 16) + d;
                    advance ()
                | _ -> fail "bad \\u escape"
              done;
              (* decode to UTF-8; the emitter only produces \u for control
                 chars, but accept the whole BMP *)
              let cp = !code in
              if cp < 0x80 then Buffer.add_char buf (Char.chr cp)
              else if cp < 0x800 then begin
                Buffer.add_char buf (Char.chr (0xC0 lor (cp lsr 6)));
                Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
              end
              else begin
                Buffer.add_char buf (Char.chr (0xE0 lor (cp lsr 12)));
                Buffer.add_char buf
                  (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
                Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
              end;
              go ()
          | _ -> fail "bad escape")
      | Some c when Char.code c < 0x20 -> fail "raw control char in string"
      | Some c ->
          Buffer.add_char buf c;
          advance ();
          go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let digits () =
      let had = ref false in
      let rec go () =
        match peek () with
        | Some '0' .. '9' ->
            had := true;
            advance ();
            go ()
        | _ -> ()
      in
      go ();
      if not !had then fail "expected digit"
    in
    if peek () = Some '-' then advance ();
    digits ();
    let is_float = ref false in
    if peek () = Some '.' then begin
      is_float := true;
      advance ();
      digits ()
    end;
    (match peek () with
    | Some ('e' | 'E') ->
        is_float := true;
        advance ();
        (match peek () with Some ('+' | '-') -> advance () | _ -> ());
        digits ()
    | _ -> ());
    let text = String.sub s start (!pos - start) in
    if !is_float then Float (float_of_string text)
    else
      match int_of_string_opt text with
      | Some i -> Int i
      | None -> Float (float_of_string text)
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let fields = ref [] in
          let rec members () =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            fields := (k, v) :: !fields;
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                members ()
            | Some '}' -> advance ()
            | _ -> fail "expected ',' or '}'"
          in
          members ();
          Obj (List.rev !fields)
        end
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          List []
        end
        else begin
          let items = ref [] in
          let rec elements () =
            let v = parse_value () in
            items := v :: !items;
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                elements ()
            | Some ']' -> advance ()
            | _ -> fail "expected ',' or ']'"
          in
          elements ();
          List (List.rev !items)
        end
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some c -> fail (Printf.sprintf "unexpected %C" c)
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Bad (p, msg) -> Error (Printf.sprintf "offset %d: %s" p msg)

let parse_file path =
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  parse s

let member name = function
  | Obj fields -> List.assoc_opt name fields
  | _ -> None
