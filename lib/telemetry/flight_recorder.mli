(** Per-slot flight recorder for the native work-stealing pool.

    One fixed-capacity ring buffer per pool slot plus one shared ring for
    external (injecting) domains. Each event is a compact (kind, task, arg,
    monotonic-ns timestamp) quadruple stored at stride 4 in a flat int
    array.

    {b Single-writer discipline.} [record t ~slot] must only ever be called
    by the domain that owns [slot] — the pool already guarantees this for
    its deques, and the recorder piggybacks on the same ownership. Under
    that discipline recording is four plain int stores plus one clock read:
    no CAS, no fence, no allocation (the bench probe pins it ≲50 ns/event).
    External domains own no slot and must use {!record_external}, which
    serializes through a mutex — acceptable because injection is already a
    locked cold path.

    {b Drop-oldest.} A full ring overwrites its oldest event. The
    per-ring write count never resets, so {!dropped} is exact:
    [max 0 (wrote - capacity)].

    {b Event argument conventions} (what the lineage reconstructor keys on):
    - [Spawn]: [task] = child id, [arg] = parent task id ([-1] = root);
      recorded in the {e spawner}'s ring at push time.
    - [Inject]: [task] = id, [arg] = -1; recorded in the external ring.
    - [Run]: [task] = id, [arg] = provenance — {!origin_pop} for an own-deque
      pop, {!origin_inject} for an injector dequeue, a victim slot [>= 0]
      for a steal; recorded in the executing slot's ring at dequeue time.
    - [Steal]: [task] = id, [arg] = victim slot; thief's ring.
    - [Steal_abort]: [task] = -1, [arg] = victim slot; thief's ring.
    - [Park]/[Unpark]: [task] = [arg] = -1. *)

type kind = Spawn | Run | Steal | Steal_abort | Inject | Park | Unpark

val kind_name : kind -> string

val origin_pop : int
(** Run-event [arg] for a task popped from the executing slot's own deque. *)

val origin_inject : int
(** Run-event [arg] for a task dequeued from the shared injector. *)

val no_task : int
(** [task] value for events that concern no task (park, steal-abort). *)

val no_arg : int
(** [arg] value for events whose argument slot is unused. *)

type t

val create : ?capacity:int -> slots:int -> unit -> t
(** [slots] pool slots (coordinator included) plus one external ring.
    [capacity] is events per ring, rounded up to a power of two
    (default 16384, i.e. 512 KiB per ring at 4 words/event). *)

val slots : t -> int
val capacity : t -> int
(** Per-ring capacity after power-of-two rounding. *)

val record : t -> slot:int -> kind -> task:int -> arg:int -> unit
(** Record one event in [slot]'s ring. Single-writer: only [slot]'s owning
    domain may call this. Never blocks, never allocates. *)

val record_external : t -> kind -> task:int -> arg:int -> unit
(** Record one event in the shared external ring (mutex-serialized). *)

val wrote : t -> slot:int -> int
(** Events ever recorded in [slot]'s ring (monotone, not capped). *)

val dropped : t -> int array
(** Exact overwritten-event count per ring, index [slots] = external. *)

(** {1 Decoding} *)

type event = {
  slot : int;  (** -1 = external ring *)
  kind : kind;
  task : int;
  arg : int;
  ts : int;  (** nanoseconds relative to recorder creation *)
}

val events_of_slot : t -> int -> event list
(** Retained events of one ring, oldest first ([-1] = external ring). *)

val events : t -> event list
(** All retained events merged in timestamp order (stable across rings). *)

(** {1 Lineage reconstruction} *)

type origin = Pop | Injected | Stolen of int  (** victim slot *)

type lineage = {
  id : int;
  parent : int;  (** spawning task id, -1 = external/root *)
  spawn_slot : int;  (** -1 = injected from outside the pool *)
  spawn_ts : int;
  run_slot : int;
  run_ts : int;
  origin : origin;
  steal_depth : int;  (** stolen links on the spawn-ancestry path *)
}

val reconstruct : t -> lineage list * int
(** Pair every retained [Run] event with its [Spawn]/[Inject] record. The
    second component counts runs whose spawn record was overwritten
    (unresolvable lineage). Sorted by task id. *)

(** {1 wsrepro-flight/v1 report} *)

val schema_id : string

val report : t -> Json.value
(** Byte-stable report: schema id, per-ring drop counts, per-task lineage
    with queue residency, a summary with residency and steal-chain-depth
    histograms, and the merged raw event stream. *)

val report_string : t -> string
val write_report : t -> string -> unit

val validate : Json.value -> (unit, string) result
(** Structural validation of a wsrepro-flight/v1 document: schema id,
    ring/drop-count shape, and per-task lineage invariants (known origin,
    steal victim present, distinct from the thief, positive depth). *)

val to_chrome : ?pid:int -> t -> Chrome_trace.t
(** Render spawn/run instants per slot with flow arrows from the victim-side
    push to the thief-side run for every stolen task. Timestamps in µs. *)
