external now_ns : unit -> int = "ws_telemetry_now_ns" [@@noalloc]
