(* Rotating-window time series of histograms.

   A [Windowed.t] slices time into fixed-width windows (ticks in the
   simulator, nanoseconds native) and keeps the last [slots] of them in a
   ring of {!Histogram.t}s. Window [w = now / width] lands in slot
   [w mod slots]; arriving at a window the slot has not seen yet evicts
   whatever older window lived there. Writers observe with a monotone
   clock, so a slot only ever moves to larger window indices.

   Merging follows the same drain-at-quiescence discipline as {!Shards},
   and the claim rule — a slot is owned by the largest window index that
   hashes to it; equal indices add bucket-wise, smaller ones are stale and
   dropped — makes the merge associative and commutative. Merging N
   per-worker rings fed by a partitioned observation stream therefore
   yields byte-for-byte (in {!to_json} form) the ring a single writer
   would have built from the whole stream: each slot ends up holding the
   globally-largest window index for that residue class, with the full
   bucket sums of that window. *)

type t = {
  width : int;
  hists : Histogram.t array;
  starts : int array; (* slot -> absolute window index, -1 = empty *)
}

let create ?(slots = 16) ~width () =
  if width <= 0 then invalid_arg "Windowed.create: width must be positive";
  if slots <= 0 then invalid_arg "Windowed.create: slots must be positive";
  {
    width;
    hists = Array.init slots (fun _ -> Histogram.create ());
    starts = Array.make slots (-1);
  }

let width t = t.width
let slots t = Array.length t.hists

let observe t ~now v =
  let now = if now < 0 then 0 else now in
  let w = now / t.width in
  let s = w mod Array.length t.hists in
  if t.starts.(s) < w then begin
    Histogram.reset t.hists.(s);
    t.starts.(s) <- w
  end;
  (* [starts.(s) > w] means a newer window already claimed the slot; the
     sample is stale (a lagging merge source, never a monotone writer) and
     is dropped rather than polluting the newer window. *)
  if t.starts.(s) = w then Histogram.observe t.hists.(s) v

let reset t =
  Array.iter Histogram.reset t.hists;
  Array.fill t.starts 0 (Array.length t.starts) (-1)

let compatible a b = a.width = b.width && Array.length a.hists = Array.length b.hists

let merge_slot ~into s w src_hist =
  if into.starts.(s) < w then begin
    Histogram.reset into.hists.(s);
    into.starts.(s) <- w
  end;
  if into.starts.(s) = w then Histogram.merge ~into:into.hists.(s) src_hist

(* Drain-on-merge, like {!Shards.merge}: fold every occupied slot of [src]
   into [into], then reset [src], so a second merge adds nothing. *)
let merge ~into src =
  if not (compatible into src) then
    invalid_arg "Windowed.merge: width/slots mismatch";
  for s = 0 to Array.length src.hists - 1 do
    if src.starts.(s) >= 0 then merge_slot ~into s src.starts.(s) src.hists.(s)
  done;
  reset src

(* Non-draining deep copy, for live scrapers that must not disturb the
   owner's ring. Fields are single words written by one domain, so a
   concurrent snapshot is never torn per-field; cross-field consistency
   only holds at quiescence (same model as {!Shards}). *)
let snapshot src =
  let t = create ~slots:(Array.length src.hists) ~width:src.width () in
  for s = 0 to Array.length src.hists - 1 do
    let w = src.starts.(s) in
    if w >= 0 then begin
      t.starts.(s) <- w;
      Histogram.merge ~into:t.hists.(s) src.hists.(s)
    end
  done;
  t

(* Occupied windows as [(index, histogram)], oldest first. The histograms
   are the live ring entries — treat them as read-only views. *)
let windows t =
  let acc = ref [] in
  for s = 0 to Array.length t.hists - 1 do
    if t.starts.(s) >= 0 then acc := (t.starts.(s), t.hists.(s)) :: !acc
  done;
  List.sort (fun (a, _) (b, _) -> compare a b) !acc

let latest t = Array.fold_left max (-1) t.starts

let series t ~q =
  List.map (fun (w, h) -> (w, Histogram.percentile h q)) (windows t)

let to_json t =
  Json.Obj
    [
      ("width", Json.Int t.width);
      ("slots", Json.Int (Array.length t.hists));
      ( "windows",
        Json.List
          (List.map
             (fun (w, h) ->
               Json.Obj [ ("window", Json.Int w); ("hist", Histogram.to_json h) ])
             (windows t)) );
    ]
