(** Power-of-two bucketed histogram over non-negative ints (store-buffer
    occupancy, egress depth, span lengths). Bucket 0 holds the value 0;
    bucket [i >= 1] holds values in [[2^(i-1), 2^i)]. All operations are
    allocation-free. *)

type t

val create : unit -> t
val observe : t -> int -> unit
(** Record one sample. Negative values are clamped to 0. *)

val total : t -> int
val sum : t -> int
val max_value : t -> int
val mean : t -> float

val bucket_of : int -> int
(** Bucket index a value falls into (exposed for tests). *)

val count : t -> int -> int
(** Samples in bucket [i]. *)

val merge : into:t -> t -> unit
(** Add [src]'s samples into [into]; [src] is unchanged. *)

val reset : t -> unit

val buckets : t -> (int * int * int) list
(** Non-empty buckets as [(lo, hi, count)], lowest first. *)

val to_json : t -> Json.value
val pp : Format.formatter -> t -> unit
