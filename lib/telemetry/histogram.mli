(** Power-of-two bucketed histogram over non-negative ints (store-buffer
    occupancy, egress depth, span lengths, task latencies). Bucket 0 holds
    the value 0; bucket [i >= 1] holds values in [[2^(i-1), 2^i)]. All
    operations are allocation-free. *)

type t

val create : unit -> t

val observe : t -> int -> unit
(** Record one sample. Negative values are counted in {!negative} and
    excluded from every other statistic ([total], [sum], [max_value],
    buckets) — a nonzero negative count means the caller fed the histogram
    something that cannot be a length, a depth or a latency. The running
    [sum] saturates at [max_int] instead of wrapping. *)

val total : t -> int
(** Non-negative samples recorded. *)

val sum : t -> int
(** Sum of the non-negative samples, saturating at [max_int]. *)

val max_value : t -> int
val mean : t -> float

val negative : t -> int
(** Negative samples rejected by {!observe}. *)

val bucket_of : int -> int
(** Bucket index a value falls into (exposed for tests). *)

val count : t -> int -> int
(** Samples in bucket [i]. *)

val percentile : t -> float -> int
(** [percentile t q] (with [q] in [[0, 1]], e.g. [0.99]) returns the upper
    bound of the bucket containing the q-quantile sample, capped at
    {!max_value} — exact to within the 2x bucket width. An empty histogram
    answers 0 by definition (the same answer as a histogram that only ever
    observed 0); use {!percentile_opt} when "no data" must be
    distinguishable. A single observation answers that observation's
    bucket bound capped at the value itself, i.e. the value, at every
    [q]. *)

val percentile_opt : t -> float -> int option
(** [None] when the histogram is empty, [Some (percentile t q)]
    otherwise. *)

val merge : into:t -> t -> unit
(** Add [src]'s samples into [into]; [src] is unchanged. *)

val reset : t -> unit

val buckets : t -> (int * int * int) list
(** Non-empty buckets as [(lo, hi, count)], lowest first. *)

val to_json : t -> Json.value
val pp : Format.formatter -> t -> unit
