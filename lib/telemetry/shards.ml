(* Per-worker/per-domain sharding of the counter plane.

   A [Shards.t] is a fixed ring of independent {!Sink.t}s. Writers are
   assigned a shard by index (worker id, simulated thread id, domain slot)
   and bump plain mutable ints in their own shard only — the hot path has
   zero cross-shard (and hence zero cross-domain) writes and no
   synchronization at all. Reads happen at quiescence points: an explicit
   batched {!merge} folds every shard into a root sink and drains the
   shards, so repeated merges never double-count.

   Because {!Sink.merge} is pure field-wise addition (and
   {!Histogram.merge} is bucket-wise addition), the merged totals are
   independent of how operations were distributed across shards: merging N
   shards fed by a partitioned op stream is byte-for-byte identical, in
   {!Sink.to_json} form, to a single sink fed the whole stream. *)

type t = { sinks : Sink.t array }

let create ~n = { sinks = Array.init (max 1 n) (fun _ -> Sink.create ()) }
let length t = Array.length t.sinks
let shard t i = t.sinks.(i mod Array.length t.sinks)
let sinks t = t.sinks

let merge ~into t =
  Array.iter
    (fun s ->
      Sink.merge ~into s;
      Sink.reset s)
    t.sinks

let reset t = Array.iter Sink.reset t.sinks
