(** Minimal JSON support for the telemetry exporters: a byte-stable emitter
    (fixed float formatting, deterministic field order) and a small
    validating parser so tests and CI can check emitted documents —
    including Chrome traces — without external dependencies. *)

type value =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of value list
  | Obj of (string * value) list

val to_string : ?indent:bool -> value -> string
(** Render. [indent = true] (default) pretty-prints with two-space indents
    and a trailing newline; floats use a fixed ["%.3f"]/["%.1f"] format so
    equal values always render to equal bytes. *)

val write_file : string -> value -> unit

val parse : string -> (value, string) result
(** Strict JSON parser (objects, arrays, strings with escapes, numbers,
    literals). Returns [Error "offset N: ..."] on malformed input. *)

val parse_file : string -> (value, string) result

val member : string -> value -> value option
(** Field lookup on [Obj]; [None] on other constructors. *)
