(* OpenMetrics text exposition (the Prometheus scrape format, as pinned by
   the OpenMetrics 1.0 spec). The renderer is deliberately byte-stable:
   metrics render in caller order, samples in caller order, and values with
   a fixed deterministic format — the cram/CI contract greps and diffs the
   output, so "same data, same bytes" is part of the interface. *)

(* [suffix] is the per-sample metric-name suffix histogram expositions
   need ("_bucket"/"_count"/"_sum"); counters get "_total" from the
   renderer and plain samples leave it empty. *)
type sample = { labels : (string * string) list; value : float; suffix : string }
type metric_type = Counter | Gauge | Histogram

type metric = {
  name : string;
  help : string;
  mtype : metric_type;
  samples : sample list;
}

let counter ~name ~help samples = { name; help; mtype = Counter; samples }
let gauge ~name ~help samples = { name; help; mtype = Gauge; samples }
let sample ?(labels = []) value = { labels; value; suffix = "" }

(* Histogram exposition per the OpenMetrics spec: cumulative "_bucket"
   samples with an "le" upper-bound label (one per occupied power-of-two
   bucket — thresholds may be sparse as long as they increase), a closing
   le="+Inf" bucket, then "_count" and "_sum". Extra [labels] (e.g. a
   worker slot) prefix the "le" label on every bucket sample. *)
let histogram ~name ~help ?(labels = []) h =
  let cum = ref 0 in
  let bucket_samples =
    List.map
      (fun (_, hi, c) ->
        cum := !cum + c;
        {
          labels = labels @ [ ("le", string_of_int hi) ];
          value = float_of_int !cum;
          suffix = "_bucket";
        })
      (Histogram.buckets h)
  in
  let total = float_of_int (Histogram.total h) in
  {
    name;
    help;
    mtype = Histogram;
    samples =
      bucket_samples
      @ [
          { labels = labels @ [ ("le", "+Inf") ]; value = total; suffix = "_bucket" };
          { labels; value = total; suffix = "_count" };
          { labels; value = float_of_int (Histogram.sum h); suffix = "_sum" };
        ];
  }

(* Label values: escape backslash, double-quote and newline per spec. *)
let escape_label v =
  let buf = Buffer.create (String.length v) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string buf "\\\\"
      | '"' -> Buffer.add_string buf "\\\""
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    v;
  Buffer.contents buf

(* Deterministic value rendering: integral values (the common case — every
   pool counter) print with no fractional part, everything else with a
   fixed six digits. *)
let render_value v =
  if Float.is_integer v && Float.abs v < 1e15 then Printf.sprintf "%.0f" v
  else Printf.sprintf "%.6f" v

let render_labels = function
  | [] -> ""
  | labels ->
      "{"
      ^ String.concat ","
          (List.map (fun (k, v) -> Printf.sprintf "%s=\"%s\"" k (escape_label v)) labels)
      ^ "}"

let render metrics =
  let buf = Buffer.create 1024 in
  List.iter
    (fun m ->
      let tname =
        match m.mtype with
        | Counter -> "counter"
        | Gauge -> "gauge"
        | Histogram -> "histogram"
      in
      Buffer.add_string buf (Printf.sprintf "# TYPE %s %s\n" m.name tname);
      Buffer.add_string buf (Printf.sprintf "# HELP %s %s\n" m.name m.help);
      List.iter
        (fun s ->
          (* OpenMetrics requires counter sample names to carry the _total
             suffix — and histogram samples their _bucket/_count/_sum —
             while the metric family keeps the bare name. *)
          let sname =
            match m.mtype with
            | Counter -> m.name ^ "_total"
            | Gauge -> m.name
            | Histogram -> m.name ^ s.suffix
          in
          Buffer.add_string buf
            (Printf.sprintf "%s%s %s\n" sname (render_labels s.labels)
               (render_value s.value)))
        m.samples)
    metrics;
  Buffer.add_string buf "# EOF\n";
  Buffer.contents buf

let content_type = "application/openmetrics-text; version=1.0.0; charset=utf-8"
