(* Throttled live progress for long-running searches and figure grids.
   Reports go to stderr (never stdout: figure tables and cram output stay
   byte-identical with or without progress enabled) as a \r-rewritten
   status line. The caller samples as often as it likes; the reporter
   rate-limits to [interval] seconds and computes the overall rate since
   creation. *)

type t = {
  out : out_channel;
  label : string;
  interval : float;
  started : float;
  mutable last_emit : float;
  mutable emitted : bool;
  mutable last_width : int;
  mutable last_lines : int;  (* block mode: lines drawn by the last redraw *)
}

let create ?(interval = 0.5) ?(out = stderr) ~label () =
  let now = Unix.gettimeofday () in
  {
    out;
    label;
    interval;
    started = now;
    last_emit = now -. interval;  (* so the first sample reports immediately *)
    emitted = false;
    last_width = 0;
    last_lines = 0;
  }

let elapsed t = Unix.gettimeofday () -. t.started

let emit t line =
  let line = Printf.sprintf "%s: %s" t.label line in
  (* Pad with spaces to erase the previous (possibly longer) line. *)
  let pad = max 0 (t.last_width - String.length line) in
  Printf.fprintf t.out "\r%s%s%!" line (String.make pad ' ');
  t.last_width <- String.length line;
  t.emitted <- true

let sample t ~count detail =
  let now = Unix.gettimeofday () in
  if now -. t.last_emit >= t.interval then begin
    t.last_emit <- now;
    let dt = now -. t.started in
    let rate = if dt > 0.0 then float_of_int count /. dt else 0.0 in
    emit t (detail ~rate)
  end

(* Block mode: rewrite a whole multi-line dashboard in place. The previous
   block is re-entered with a cursor-up escape and each line is cleared
   before being redrawn, so shrinking blocks leave no stale tail lines
   behind (a shorter block still clears the rows it no longer uses). *)
let draw_block t lines =
  let buf = Buffer.create 256 in
  if t.last_lines > 0 then
    Buffer.add_string buf (Printf.sprintf "\027[%dA" t.last_lines);
  let drawn = List.length lines in
  List.iter
    (fun l ->
      Buffer.add_string buf "\r\027[2K";
      Buffer.add_string buf l;
      Buffer.add_char buf '\n')
    lines;
  for _ = drawn to t.last_lines - 1 do
    Buffer.add_string buf "\r\027[2K\n"
  done;
  let stale = max 0 (t.last_lines - drawn) in
  if stale > 0 then Buffer.add_string buf (Printf.sprintf "\027[%dA" stale);
  output_string t.out (Buffer.contents buf);
  flush t.out;
  t.last_lines <- drawn;
  t.emitted <- true

let redraw t lines =
  let now = Unix.gettimeofday () in
  if now -. t.last_emit >= t.interval then begin
    t.last_emit <- now;
    draw_block t lines
  end

let redraw_now t lines = draw_block t lines

let finish ?detail t =
  if t.last_lines > 0 then begin
    (* Block mode already ends on a fresh line; just append the summary. *)
    (match detail with
    | Some d -> Printf.fprintf t.out "%s: %s\n" t.label d
    | None -> ());
    t.last_lines <- 0;
    flush t.out
  end
  else begin
    (match detail with Some d -> emit t d | None -> ());
    if t.emitted then begin
      output_char t.out '\n';
      flush t.out
    end
  end
