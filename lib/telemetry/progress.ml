(* Throttled live progress for long-running searches and figure grids.
   Reports go to stderr (never stdout: figure tables and cram output stay
   byte-identical with or without progress enabled) as a \r-rewritten
   status line. The caller samples as often as it likes; the reporter
   rate-limits to [interval] seconds and computes the overall rate since
   creation. *)

type t = {
  out : out_channel;
  label : string;
  interval : float;
  started : float;
  mutable last_emit : float;
  mutable emitted : bool;
  mutable last_width : int;
}

let create ?(interval = 0.5) ?(out = stderr) ~label () =
  let now = Unix.gettimeofday () in
  {
    out;
    label;
    interval;
    started = now;
    last_emit = now -. interval;  (* so the first sample reports immediately *)
    emitted = false;
    last_width = 0;
  }

let elapsed t = Unix.gettimeofday () -. t.started

let emit t line =
  let line = Printf.sprintf "%s: %s" t.label line in
  (* Pad with spaces to erase the previous (possibly longer) line. *)
  let pad = max 0 (t.last_width - String.length line) in
  Printf.fprintf t.out "\r%s%s%!" line (String.make pad ' ');
  t.last_width <- String.length line;
  t.emitted <- true

let sample t ~count detail =
  let now = Unix.gettimeofday () in
  if now -. t.last_emit >= t.interval then begin
    t.last_emit <- now;
    let dt = now -. t.started in
    let rate = if dt > 0.0 then float_of_int count /. dt else 0.0 in
    emit t (detail ~rate)
  end

let finish ?detail t =
  (match detail with
  | Some d ->
      let dt = elapsed t in
      ignore dt;
      emit t d
  | None -> ());
  if t.emitted then begin
    output_char t.out '\n';
    flush t.out
  end
