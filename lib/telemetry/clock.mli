(** Monotonic clock, nanosecond resolution.

    Backed by [clock_gettime(CLOCK_MONOTONIC)] through a [@@noalloc] C
    stub, so a reading costs one vDSO call and allocates nothing — cheap
    enough for per-event timestamps on the flight-recorder hot path.
    The epoch is arbitrary (boot time on Linux); only differences between
    two readings are meaningful. *)

val now_ns : unit -> int
(** Nanoseconds since an arbitrary fixed origin, monotone non-decreasing. *)
