(** Rotating-window time series of {!Histogram}s: time is sliced into
    fixed-width windows (ticks in the simulator, nanoseconds native) and
    the last [slots] windows are kept in a ring, giving per-window
    percentile series (p50/p99 over time) instead of one end-of-run
    number.

    Sharding contract, mirroring {!Shards}: writers observe into their own
    ring with a monotone clock; a quiescence-point {!merge} folds worker
    rings into a root ring and drains them. The slot claim rule (largest
    window index wins, equal indices add bucket-wise, smaller are dropped
    as stale) makes the merge associative and commutative, so the merged
    ring — and its {!to_json} bytes — are independent of how the
    observation stream was partitioned across shards. *)

type t

val create : ?slots:int -> width:int -> unit -> t
(** [create ~width ()] with [width > 0] time units per window and
    [slots] (default 16, [> 0]) windows retained.
    @raise Invalid_argument on a non-positive [width] or [slots]. *)

val width : t -> int
val slots : t -> int

val observe : t -> now:int -> int -> unit
(** [observe t ~now v] records [v] into the window [now / width]
    (negative [now] is clamped to 0), evicting the older window resident
    in its ring slot if any. Callers must feed a monotone [now]; a sample
    for a window older than the slot's resident is dropped as stale. *)

val merge : into:t -> t -> unit
(** Quiescence-point merge: fold every occupied window of [src] into
    [into], then reset [src] (drain semantics — a second merge adds
    nothing). Slots resolve by the largest-window-index rule, so merge
    order across shards cannot change the result.
    @raise Invalid_argument if [width] or [slots] differ. *)

val snapshot : t -> t
(** Non-draining deep copy, for live scrapers. Safe to take while the
    owner writes, with the same torn-free-per-field / no-cross-field
    consistency model as {!Shards}. *)

val reset : t -> unit

val windows : t -> (int * Histogram.t) list
(** Occupied windows as [(window index, histogram)], oldest first. The
    histograms are live ring entries — read-only views. *)

val latest : t -> int
(** Largest window index seen, [-1] when empty. *)

val series : t -> q:float -> (int * int) list
(** [(window index, q-quantile)] per occupied window, oldest first. *)

val to_json : t -> Json.value
