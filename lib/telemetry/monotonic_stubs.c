/* Monotonic nanosecond clock for the flight recorder's hot path.
 *
 * CLOCK_MONOTONIC via the vDSO costs ~20 ns and never jumps backwards,
 * which is what a single-writer event ring needs: Unix.gettimeofday is
 * wall-clock (NTP can step it) and returns a boxed float. The result is
 * returned as an unboxed OCaml int: 63 bits of nanoseconds is ~146 years
 * of uptime, so truncation is not a concern.
 */
#include <caml/mlvalues.h>
#include <time.h>

CAMLprim value ws_telemetry_now_ns(value unit)
{
  struct timespec ts;
  (void)unit;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return Val_long((intnat)ts.tv_sec * 1000000000 + (intnat)ts.tv_nsec);
}
