(* Chrome trace-event JSON recorder (the "JSON Array Format" consumed by
   chrome://tracing and Perfetto). Timestamps are simulated cycles reported
   as microseconds — absolute units are meaningless for a simulator, the
   relative layout is what the viewer is for.

   Events are accumulated in memory (deterministic record order, ints only)
   and written in one go, so a trace of the same run is byte-stable. A
   configurable event limit keeps figure-scale runs from emitting
   multi-gigabyte files: past the limit events are counted but dropped, and
   the metadata records how many. *)

type event = {
  ph : char;  (* X = complete, i = instant, b/e = async begin/end, C = counter *)
  name : string;
  cat : string;
  pid : int;
  tid : int;
  ts : int;
  dur : int;  (* complete events only *)
  id : int;  (* async events only; -1 = absent *)
  args : (string * int) list;
}

type t = {
  limit : int;
  mutable events : event list;  (* newest first *)
  mutable recorded : int;
  mutable dropped : int;
  mutable names : (string * int * int) list;  (* metadata: name, pid, tid(-1 = process) *)
}

let create ?(limit = 200_000) () =
  { limit; events = []; recorded = 0; dropped = 0; names = [] }

let add t ev =
  if t.recorded >= t.limit then t.dropped <- t.dropped + 1
  else begin
    t.events <- ev :: t.events;
    t.recorded <- t.recorded + 1
  end

let complete t ~name ?(cat = "sim") ?(pid = 0) ~tid ~ts ~dur () =
  add t { ph = 'X'; name; cat; pid; tid; ts; dur; id = -1; args = [] }

let instant t ~name ?(cat = "sim") ?(pid = 0) ~tid ~ts () =
  add t { ph = 'i'; name; cat; pid; tid; ts; dur = 0; id = -1; args = [] }

let async_begin t ~name ?(cat = "sb") ?(pid = 0) ~tid ~ts ~id () =
  add t { ph = 'b'; name; cat; pid; tid; ts; dur = 0; id; args = [] }

let async_end t ~name ?(cat = "sb") ?(pid = 0) ~tid ~ts ~id () =
  add t { ph = 'e'; name; cat; pid; tid; ts; dur = 0; id; args = [] }

let counter t ~name ?(cat = "sim") ?(pid = 0) ~tid ~ts ~values () =
  add t { ph = 'C'; name; cat; pid; tid; ts; dur = 0; id = -1; args = values }

let flow_start t ~name ?(cat = "flow") ?(pid = 0) ~tid ~ts ~id () =
  add t { ph = 's'; name; cat; pid; tid; ts; dur = 0; id; args = [] }

let flow_finish t ~name ?(cat = "flow") ?(pid = 0) ~tid ~ts ~id () =
  add t { ph = 'f'; name; cat; pid; tid; ts; dur = 0; id; args = [] }

let set_thread_name t ~pid ~tid name = t.names <- (name, pid, tid) :: t.names
let set_process_name t ~pid name = t.names <- (name, pid, -1) :: t.names

let length t = t.recorded
let dropped t = t.dropped

let event_json ev =
  let base =
    [
      ("name", Json.Str ev.name);
      ("cat", Json.Str ev.cat);
      ("ph", Json.Str (String.make 1 ev.ph));
      ("pid", Json.Int ev.pid);
      ("tid", Json.Int ev.tid);
      ("ts", Json.Int ev.ts);
    ]
  in
  let base = if ev.ph = 'X' then base @ [ ("dur", Json.Int ev.dur) ] else base in
  let base = if ev.id >= 0 then base @ [ ("id", Json.Int ev.id) ] else base in
  (* Flow-finish events bind to the enclosing slice ("bp": "e"); without it
     viewers attach the arrow head to the next slice instead. *)
  let base = if ev.ph = 'f' then base @ [ ("bp", Json.Str "e") ] else base in
  let base =
    match ev.args with
    | [] -> base
    | args ->
        base
        @ [ ("args", Json.Obj (List.map (fun (k, v) -> (k, Json.Int v)) args)) ]
  in
  Json.Obj base

let metadata_json (name, pid, tid) =
  if tid < 0 then
    Json.Obj
      [
        ("name", Json.Str "process_name");
        ("ph", Json.Str "M");
        ("pid", Json.Int pid);
        ("args", Json.Obj [ ("name", Json.Str name) ]);
      ]
  else
    Json.Obj
      [
        ("name", Json.Str "thread_name");
        ("ph", Json.Str "M");
        ("pid", Json.Int pid);
        ("tid", Json.Int tid);
        ("args", Json.Obj [ ("name", Json.Str name) ]);
      ]

let to_json t =
  Json.Obj
    [
      ( "traceEvents",
        Json.List
          (List.map metadata_json (List.rev t.names)
          @ List.rev_map event_json t.events) );
      ("displayTimeUnit", Json.Str "ns");
      ( "otherData",
        Json.Obj
          [
            ("generator", Json.Str "wsrepro");
            ("recorded", Json.Int t.recorded);
            ("dropped", Json.Int t.dropped);
          ] );
    ]

let to_string t = Json.to_string ~indent:false (to_json t)

let write t path =
  let oc = open_out path in
  output_string oc (to_string t);
  output_char oc '\n';
  close_out oc
