open Tso

type verdict = Allowed | Forbidden

type t = {
  name : string;
  description : string;
  verdict : verdict;
  mk : unit -> Explore.instance;
}

(* Build a litmus instance: [threads] is a list of programs over the two
   (or more) shared cells; [observed] inspects host registers and final
   memory and returns true iff the outcome of interest happened. The
   instance's check returns Error on observation, so explorer "failures"
   are sightings. *)
let instance ~cells ~threads ~observed () =
  let m = Machine.create (Machine.abstract_config ~sb_capacity:4) in
  let mem = Machine.memory m in
  let addrs = List.map (fun name -> Memory.alloc mem ~name ~init:0) cells in
  let regs = Hashtbl.create 8 in
  let reg name = Option.value ~default:(-1) (Hashtbl.find_opt regs name) in
  let setr name v = Hashtbl.replace regs name v in
  List.iteri
    (fun i prog ->
      ignore
        (Machine.spawn m ~name:(Printf.sprintf "t%d" i) (fun () ->
             prog addrs setr)))
    threads;
  let check () =
    let final a = Memory.get mem a in
    if observed ~reg ~final ~addrs then Error "outcome observed" else Ok ()
  in
  { Explore.machine = m; check }

let nth = List.nth

let sb ~fences =
  let prog other mine r addrs setr =
    Program.store (nth addrs mine) 1;
    if fences then Program.fence ();
    setr r (Program.load (nth addrs other))
  in
  instance ~cells:[ "x"; "y" ]
    ~threads:[ prog 1 0 "r0"; prog 0 1 "r1" ]
    ~observed:(fun ~reg ~final:_ ~addrs:_ -> reg "r0" = 0 && reg "r1" = 0)

let sb_rmw =
  (* the locked RMW flushes the buffer, acting as the fence *)
  let prog other mine scratch r addrs setr =
    Program.store (nth addrs mine) 1;
    ignore (Program.cas (nth addrs scratch) ~expect:0 ~replace:1);
    setr r (Program.load (nth addrs other))
  in
  instance
    ~cells:[ "x"; "y"; "z"; "w" ]
    ~threads:[ prog 1 0 2 "r0"; prog 0 1 3 "r1" ]
    ~observed:(fun ~reg ~final:_ ~addrs:_ -> reg "r0" = 0 && reg "r1" = 0)

let mp =
  (* message passing: stores are not reordered with stores, loads not with
     loads, so seeing the flag implies seeing the data *)
  instance ~cells:[ "data"; "flag" ]
    ~threads:
      [
        (fun addrs _ ->
          Program.store (nth addrs 0) 1;
          Program.store (nth addrs 1) 1);
        (fun addrs setr ->
          setr "f" (Program.load (nth addrs 1));
          setr "d" (Program.load (nth addrs 0)));
      ]
    ~observed:(fun ~reg ~final:_ ~addrs:_ -> reg "f" = 1 && reg "d" = 0)

let lb =
  (* load buffering: requires load/store reordering, impossible under TSO *)
  instance ~cells:[ "x"; "y" ]
    ~threads:
      [
        (fun addrs setr ->
          setr "r0" (Program.load (nth addrs 0));
          Program.store (nth addrs 1) 1);
        (fun addrs setr ->
          setr "r1" (Program.load (nth addrs 1));
          Program.store (nth addrs 0) 1);
      ]
    ~observed:(fun ~reg ~final:_ ~addrs:_ -> reg "r0" = 1 && reg "r1" = 1)

let n6 =
  (* Sewell et al.'s n6: store forwarding lets t0 read its own buffered
     x=1 while y's store is still invisible, and t1's x=2 can be overwritten
     by t0's buffered x=1 draining later *)
  instance ~cells:[ "x"; "y" ]
    ~threads:
      [
        (fun addrs setr ->
          Program.store (nth addrs 0) 1;
          setr "r0" (Program.load (nth addrs 0));
          setr "r1" (Program.load (nth addrs 1)));
        (fun addrs _ ->
          Program.store (nth addrs 1) 2;
          Program.store (nth addrs 0) 2);
      ]
    ~observed:(fun ~reg ~final ~addrs ->
      reg "r0" = 1 && reg "r1" = 0 && final (nth addrs 0) = 1)

let n5 =
  (* two threads storing to the same location cannot each read the other's
     value: forwarding forces a thread to see at least its own store *)
  instance ~cells:[ "x" ]
    ~threads:
      [
        (fun addrs setr ->
          Program.store (nth addrs 0) 1;
          setr "r0" (Program.load (nth addrs 0)));
        (fun addrs setr ->
          Program.store (nth addrs 0) 2;
          setr "r1" (Program.load (nth addrs 0)));
      ]
    ~observed:(fun ~reg ~final:_ ~addrs:_ -> reg "r0" = 2 && reg "r1" = 1)

let iriw =
  (* independent reads of independent writes: forbidden under TSO because
     stores hit memory in a single total order *)
  instance ~cells:[ "x"; "y" ]
    ~threads:
      [
        (fun addrs _ -> Program.store (nth addrs 0) 1);
        (fun addrs _ -> Program.store (nth addrs 1) 1);
        (fun addrs setr ->
          setr "a" (Program.load (nth addrs 0));
          setr "b" (Program.load (nth addrs 1)));
        (fun addrs setr ->
          setr "c" (Program.load (nth addrs 1));
          setr "d" (Program.load (nth addrs 0)));
      ]
    ~observed:(fun ~reg ~final:_ ~addrs:_ ->
      reg "a" = 1 && reg "b" = 0 && reg "c" = 1 && reg "d" = 0)

let store_forwarding =
  (* a thread always sees its own latest buffered store *)
  instance ~cells:[ "x" ]
    ~threads:
      [
        (fun addrs setr ->
          Program.store (nth addrs 0) 1;
          Program.store (nth addrs 0) 2;
          setr "r0" (Program.load (nth addrs 0)));
      ]
    ~observed:(fun ~reg ~final:_ ~addrs:_ -> reg "r0" <> 2)

let rmw_atomic =
  (* two increments via CAS retry loops must not be lost *)
  instance ~cells:[ "x" ]
    ~threads:
      (List.init 2 (fun _ ->
           fun addrs _ ->
            let rec inc () =
              let v = Program.load (nth addrs 0) in
              if not (Program.cas (nth addrs 0) ~expect:v ~replace:(v + 1)) then begin
                Program.spin_pause ();
                inc ()
              end
            in
            inc ()))
    ~observed:(fun ~reg:_ ~final ~addrs -> final (nth addrs 0) <> 2)

let all =
  [
    {
      name = "SB";
      description = "store buffering: both loads read 0";
      verdict = Allowed;
      mk = sb ~fences:false;
    };
    {
      name = "SB+fences";
      description = "store buffering with MFENCEs: both loads read 0";
      verdict = Forbidden;
      mk = sb ~fences:true;
    };
    {
      name = "SB+rmw";
      description = "store buffering with locked RMWs: both loads read 0";
      verdict = Forbidden;
      mk = sb_rmw;
    };
    {
      name = "MP";
      description = "message passing: flag seen but data missed";
      verdict = Forbidden;
      mk = mp;
    };
    {
      name = "LB";
      description = "load buffering: both loads see the other's later store";
      verdict = Forbidden;
      mk = lb;
    };
    {
      name = "n6";
      description = "forwarding + late drain overwrite (Sewell et al. n6)";
      verdict = Allowed;
      mk = n6;
    };
    {
      name = "n5";
      description = "same-address cross reads (Sewell et al. n5)";
      verdict = Forbidden;
      mk = n5;
    };
    {
      name = "IRIW";
      description = "independent readers disagree on the store order";
      verdict = Forbidden;
      mk = iriw;
    };
    {
      name = "store-forwarding";
      description = "a thread misses its own newest buffered store";
      verdict = Forbidden;
      mk = store_forwarding;
    };
    {
      name = "rmw-atomic";
      description = "a CAS-loop increment is lost";
      verdict = Forbidden;
      mk = rmw_atomic;
    };
  ]

let find name = List.find (fun t -> String.equal t.name name) all

type result = {
  test : t;
  observed : bool;
  runs : int;
  exhausted : bool;
  ok : bool;
  memo_lookups : int;
  memo_hits : int;
}

let run ?(max_runs = 400_000) ?(jobs = 1) ?(memo = false) ?(por = false)
    ?(dpor = false) ?memo_dir ?(snapshots = true) test =
  let memo_store =
    match memo_dir with
    | None -> None
    | Some dir -> (
        (* One store per test, under [dir]: every test is its own machine
           configuration, so each pins its own header. *)
        let path = Filename.concat dir test.name in
        match
          Tso.Memo_store.open_ ~path ~config:("tso-litmus/" ^ test.name)
            ~max_depth:Explore.default_max_depth ~preemption_bound:None ~por
            ~dpor ()
        with
        | Ok store -> Some store
        | Error e -> failwith e)
  in
  let st =
    if jobs > 1 then
      Explore_par.search ~max_runs ~memo ~por ~dpor ?memo_store ~snapshots
        ~jobs ~mk:test.mk ()
    else
      Explore.search ~max_runs ~memo ~por ~dpor ?memo_store ~snapshots
        ~mk:test.mk ()
  in
  let observed = st.Explore.failures <> [] in
  let exhausted = st.Explore.runs < max_runs && st.Explore.truncated = 0 in
  let ok =
    match test.verdict with
    | Allowed -> observed
    | Forbidden -> (not observed) && exhausted
  in
  let memo_lookups, memo_hits =
    match memo_store with
    | None -> (0, 0)
    | Some store -> (Tso.Memo_store.lookups store, Tso.Memo_store.hits store)
  in
  { test; observed; runs = st.Explore.runs; exhausted; ok; memo_lookups; memo_hits }

let run_all ?max_runs ?jobs ?memo ?por ?dpor ?memo_dir ?snapshots () =
  List.map
    (fun t -> run ?max_runs ?jobs ?memo ?por ?dpor ?memo_dir ?snapshots t)
    all

let pp_result ppf r =
  Format.fprintf ppf "%-18s %-9s %-12s %7d runs%s  %s" r.test.name
    (match r.test.verdict with Allowed -> "allowed" | Forbidden -> "forbidden")
    (if r.observed then "observed" else "not observed")
    r.runs
    (if r.exhausted then " (exhaustive)" else "")
    (if r.ok then "OK" else "** MODEL VIOLATION **")
