(** The classic x86-TSO litmus tests (Sewell et al., CACM 2010 — the
    machine model the paper's §2 builds on), as executable checks of the
    abstract machine itself.

    Each test is a tiny multi-threaded program together with a predicate on
    its final registers/memory and the verdict TSO assigns to that outcome:
    [Allowed] outcomes must be reachable (the explorer must find a schedule
    exhibiting them) and [Forbidden] outcomes must be unreachable (the
    explorer must exhaust the schedule space without finding one). Running
    this suite is how we know the simulator implements x86-TSO rather than
    something weaker or stronger. *)

type verdict = Allowed | Forbidden

type t = {
  name : string;
  description : string;
  verdict : verdict;
  (* Builds a fresh instance whose check returns [Error _] iff the outcome
     of interest was observed — so [search] failures mean "observed". *)
  mk : unit -> Tso.Explore.instance;
}

val all : t list
(** SB, SB+fences, MP (two variants), LB, n6, n5/n4b-style same-address
    tests, IRIW, and RMW-ordering tests. *)

val find : string -> t

type result = {
  test : t;
  observed : bool;
  runs : int;
  exhausted : bool;  (** the schedule space was fully explored *)
  ok : bool;  (** observed matches the verdict (for Forbidden outcomes,
                  only meaningful when [exhausted]) *)
  memo_lookups : int;
      (** persistent-store lookups (0 unless [memo_dir] was given) *)
  memo_hits : int;
      (** persistent-store hits — nonzero on a warm rerun, since the
          store already holds the whole reduced tree *)
}

val run :
  ?max_runs:int ->
  ?jobs:int ->
  ?memo:bool ->
  ?por:bool ->
  ?dpor:bool ->
  ?memo_dir:string ->
  ?snapshots:bool ->
  t ->
  result
(** Decide one test's verdict by bounded exhaustive search. [jobs > 1] uses
    the multicore explorer (byte-identical results); [memo] prunes
    converged interleavings, shrinking [runs] without changing [observed];
    [por] applies sleep-set partial-order reduction (same verdicts, far
    fewer [runs]); [dpor] upgrades to source-DPOR (implies [por], fewer
    [runs] again); [memo_dir] persists the visited-state cache under
    [memo_dir/<test name>] across invocations ({!Tso.Memo_store}; raises
    [Failure] with the store's diagnostic on a header mismatch);
    [snapshots] selects snapshot-based sibling exploration (default) vs
    replay-from-root. Defaults: [jobs = 1], [memo = false], [por = false],
    [dpor = false], [snapshots = true]. *)

val run_all :
  ?max_runs:int ->
  ?jobs:int ->
  ?memo:bool ->
  ?por:bool ->
  ?dpor:bool ->
  ?memo_dir:string ->
  ?snapshots:bool ->
  unit ->
  result list
val pp_result : Format.formatter -> result -> unit
