(* Work-stealing runtime over the native deques.

   The shape follows the paper's discipline (and Rito & Paulino's
   low-synchronization scheduler): the owner path is as close to
   synchronization-free as OCaml's SC atomics allow — a worker pushes and
   pops its own deque with no lock and no CAS on the common path — and all
   coordination lives on the cold paths: the steal path (CAS / the THE
   conflict lock), the external-submission injector (mutex FIFO), and the
   parking lot (mutex + condition, entered only after a full failed hunt).

   Correctness invariants, each of which an earlier version violated:

   - Exceptions: a task that raises must still decrement [in_flight]
     (otherwise [parallel_run] waits forever for a count that can never
     reach zero) and must not kill its worker domain. The first failure is
     captured (with its backtrace) and re-raised at the join point.

   - Single-owner push: only the domain that owns a deque may push to it.
     Non-worker domains submit through [injector]; in debug mode every
     push asserts the caller is the recorded owner.

   - [pending] counts cells sitting in some queue (deques + injector). It
     is the parking predicate: a worker only sleeps while [pending = 0],
     and every enqueue increments [pending] before checking for sleepers,
     so the classic store-buffering argument (both sides are SC atomics)
     rules out lost wakeups.

   - Shutdown first drains all queued work (it used to drop it), then
     stops and joins the workers; it is idempotent. *)

type task = unit -> unit

type backend = Chase_lev_deques | The_deques
type victim_policy = Random_victim | Round_robin_victim

(* What [submit] does when the injector already holds [injector_capacity]
   cells: refuse the task (open-system loss) or spin until a worker makes
   room (open-system queueing delay). *)
type backpressure = Drop | Block

type worker_stats = {
  mutable spawns : int;
  mutable tasks_run : int;
  mutable tasks_stolen : int;
  mutable injector_runs : int;
  mutable steal_attempts : int;
  mutable steals : int;
  mutable take_empties : int;
  mutable steal_empties : int;
  mutable steal_aborts : int;
  mutable parks : int;
}

let stats_create () =
  {
    spawns = 0;
    tasks_run = 0;
    tasks_stolen = 0;
    injector_runs = 0;
    steal_attempts = 0;
    steals = 0;
    take_empties = 0;
    steal_empties = 0;
    steal_aborts = 0;
    parks = 0;
  }

let stats_copy st =
  {
    spawns = st.spawns;
    tasks_run = st.tasks_run;
    tasks_stolen = st.tasks_stolen;
    injector_runs = st.injector_runs;
    steal_attempts = st.steal_attempts;
    steals = st.steals;
    take_empties = st.take_empties;
    steal_empties = st.steal_empties;
    steal_aborts = st.steal_aborts;
    parks = st.parks;
  }

let stats_equal a b =
  a.spawns = b.spawns && a.tasks_run = b.tasks_run
  && a.tasks_stolen = b.tasks_stolen
  && a.injector_runs = b.injector_runs
  && a.steal_attempts = b.steal_attempts
  && a.steals = b.steals
  && a.take_empties = b.take_empties
  && a.steal_empties = b.steal_empties
  && a.steal_aborts = b.steal_aborts
  && a.parks = b.parks

(* [born] is a wallclock timestamp taken at spawn when telemetry is on
   (0. when off), so completion can observe the spawn-to-finish latency.
   [id]/[parent] are flight-recorder task identities (-1 when the recorder
   is off): [parent] is the id of the task whose body called [spawn], which
   is what lets the reconstructor walk steal ancestries.

   [arr_ns]/[inj_ns] are monotonic-ns stage stamps taken when attribution
   is on (0 when off): arrival is when the producer first wanted the task
   in (before any [submit] backpressure spin), inject is when the cell
   actually entered a queue. The executor adds the dequeue and completion
   stamps, yielding the three-stage split qwait (arrival to inject),
   dispatch (inject to dequeue) and service (dequeue to completion). *)
type cell = {
  f : task;
  id : int;
  parent : int;
  born : float;
  arr_ns : int;
  inj_ns : int;
}

type deque = Cl of cell Chase_lev.t | The of cell The_queue.t

type t = {
  deques : deque array;  (* slot 0: the coordinator; slots 1..n: workers *)
  owners : int array;  (* Domain id owning each deque; -1 when unclaimed *)
  injector : cell Injector.t;
  injector_capacity : int;  (* soft bound enforced by [submit] only *)
  injector_drops : int Atomic.t;  (* submissions refused under Drop *)
  in_flight : int Atomic.t;  (* spawned and not yet finished *)
  pending : int Atomic.t;  (* enqueued and not yet dequeued *)
  stop : bool Atomic.t;
  error : (exn * Printexc.raw_backtrace) option Atomic.t;
  mutable domains : unit Domain.t list;
  worker_id : int option Domain.DLS.key;
  policy : victim_policy;
  steal_half : bool;
  debug : bool;
  telemetry : bool;
  attribution : bool;
  window_ns : int;  (* windowed-ring geometry, attribution only *)
  window_slots : int;
  lock : Mutex.t;
  cond : Condition.t;
  sleepers : int Atomic.t;
  stats : worker_stats array;
  latencies : Telemetry.Histogram.t array;  (* per worker, telemetry only *)
  (* per-slot stage histograms (ns) and rotating sojourn windows, written
     only by the owning domain (attribution only) *)
  stage_qwait : Telemetry.Histogram.t array;
  stage_dispatch : Telemetry.Histogram.t array;
  stage_service : Telemetry.Histogram.t array;
  sojourn_windows : Telemetry.Windowed.t array;
  recorder : Telemetry.Flight_recorder.t option;
  current : int array;  (* per slot: id of the task being executed, -1 idle *)
  next_task_id : int Atomic.t;
  running : bool Atomic.t;  (* a parallel_run is in progress *)
  shut : bool Atomic.t;
}

let spin_rounds = 32

let now () = Unix.gettimeofday ()

module FR = Telemetry.Flight_recorder

(* [arrived] backdates the arrival stamp for submissions that waited out
   a backpressure spin; 0 (the default) means "arrived right now". *)
let make_cell pool ~parent ?(arrived = 0) f =
  let born = if pool.telemetry then now () else 0. in
  let inj_ns = if pool.attribution then Telemetry.Clock.now_ns () else 0 in
  let arr_ns = if arrived > 0 then arrived else inj_ns in
  match pool.recorder with
  | None -> { f; id = -1; parent = -1; born; arr_ns; inj_ns }
  | Some _ ->
      {
        f;
        id = Atomic.fetch_and_add pool.next_task_id 1;
        parent;
        born;
        arr_ns;
        inj_ns;
      }

(* ------------------------------------------------------------------ *)
(* Parking lot                                                         *)
(* ------------------------------------------------------------------ *)

let wake_all pool =
  if Atomic.get pool.sleepers > 0 then begin
    Mutex.lock pool.lock;
    Condition.broadcast pool.cond;
    Mutex.unlock pool.lock
  end

(* The no-lost-wakeup argument: the parker publishes [sleepers] (atomic
   increment) before testing the predicate; the waker publishes the state
   change ([pending], [stop], [in_flight]) before reading [sleepers].
   Under OCaml's SC atomics at least one side observes the other, so
   either the parker sees the new state and refuses to sleep, or the
   waker sees the sleeper and broadcasts (and the broadcast cannot be
   missed: the parker holds the mutex from its predicate test until
   [Condition.wait] releases it). *)
let park pool me ~should_sleep =
  Mutex.lock pool.lock;
  Atomic.incr pool.sleepers;
  if should_sleep () then begin
    pool.stats.(me).parks <- pool.stats.(me).parks + 1;
    (match pool.recorder with
    | Some r -> FR.record r ~slot:me FR.Park ~task:FR.no_task ~arg:FR.no_arg
    | None -> ());
    while should_sleep () do
      Condition.wait pool.cond pool.lock
    done;
    match pool.recorder with
    | Some r -> FR.record r ~slot:me FR.Unpark ~task:FR.no_task ~arg:FR.no_arg
    | None -> ()
  end;
  Atomic.decr pool.sleepers;
  Mutex.unlock pool.lock

(* ------------------------------------------------------------------ *)
(* Deque dispatch                                                      *)
(* ------------------------------------------------------------------ *)

let assert_owner pool me =
  if pool.debug then begin
    let self = (Domain.self () :> int) in
    let owner = pool.owners.(me) in
    if owner <> self then
      invalid_arg
        (Printf.sprintf
           "Pool: single-owner violation: deque %d is owned by domain %d \
            but domain %d pushed to it"
           me owner self)
  end

let push_own pool me cell =
  assert_owner pool me;
  match pool.deques.(me) with
  | Cl q -> Chase_lev.push q cell
  | The q -> (
      (* THE is fixed-capacity; overflow spills to the unbounded injector
         rather than raising into the middle of a task *)
      try The_queue.push q cell
      with Failure _ -> Injector.push pool.injector cell)

let pop_own pool me =
  match pool.deques.(me) with
  | Cl q -> Chase_lev.pop q
  | The q -> The_queue.pop q

(* [me < 0] means the caller owns no deque (shutdown's drain): batched
   steals are disabled because the surplus could not be re-pushed
   anywhere the caller owns. The detailed outcome feeds the contention
   counters: [`Empty] is a mistargeted hunt, [`Abort] a live conflict. *)
let steal_from pool me victim =
  match pool.deques.(victim) with
  | Cl q -> Chase_lev.steal_detail q
  | The q ->
      if pool.steal_half && me >= 0 then
        match The_queue.steal_half q with
        | [] -> `Empty
        | c :: rest ->
            (* the surplus stays queued (and counted in [pending]) — it
               just moves to our own deque *)
            List.iter (fun c -> push_own pool me c) rest;
            `Task c
      else The_queue.steal_detail q

(* ------------------------------------------------------------------ *)
(* Task execution                                                      *)
(* ------------------------------------------------------------------ *)

let record_error pool e bt =
  ignore (Atomic.compare_and_set pool.error None (Some (e, bt)))

(* The decrement of [in_flight] is unconditional: a raising task counts
   as finished (its failure is captured for the join point), so the run
   can terminate and report instead of spinning forever. [current] is set
   for the duration of the task body so that nested [spawn]s can name
   their parent; only this slot's domain touches [current.(me)]. *)
let exec_cell pool me cell =
  pool.current.(me) <- cell.id;
  let deq_ns = if cell.inj_ns > 0 then Telemetry.Clock.now_ns () else 0 in
  (try cell.f ()
   with e ->
     let bt = Printexc.get_raw_backtrace () in
     record_error pool e bt);
  pool.current.(me) <- -1;
  let st = pool.stats.(me) in
  st.tasks_run <- st.tasks_run + 1;
  if deq_ns > 0 then begin
    (* all four stamps read the same monotonic clock, and this slot's
       histograms/ring are single-writer, so no lock is needed *)
    let fin = Telemetry.Clock.now_ns () in
    Telemetry.Histogram.observe pool.stage_qwait.(me)
      (cell.inj_ns - cell.arr_ns);
    Telemetry.Histogram.observe pool.stage_dispatch.(me)
      (deq_ns - cell.inj_ns);
    Telemetry.Histogram.observe pool.stage_service.(me) (fin - deq_ns);
    Telemetry.Windowed.observe pool.sojourn_windows.(me) ~now:fin
      (fin - cell.arr_ns)
  end;
  if pool.telemetry && cell.born > 0. then
    Telemetry.Histogram.observe pool.latencies.(me)
      (int_of_float ((now () -. cell.born) *. 1e9));
  if Atomic.fetch_and_add pool.in_flight (-1) = 1 then
    (* the count reached zero: a parked coordinator is waiting for this *)
    wake_all pool

let pick_victim pool me rng rr =
  let n = Array.length pool.deques in
  match pool.policy with
  | Random_victim ->
      let v = Random.State.int rng (n - 1) in
      if v >= me then v + 1 else v
  | Round_robin_victim ->
      rr := (!rr + 1) mod n;
      if !rr = me then rr := (!rr + 1) mod n;
      !rr

(* A Run event is recorded at dequeue time (execution follows immediately
   in the worker loop), with the provenance in [arg] — that pairing with
   the task's Spawn/Inject record is the whole lineage story. *)
let record_run pool me cell ~arg =
  match pool.recorder with
  | Some r -> FR.record r ~slot:me FR.Run ~task:cell.id ~arg
  | None -> ()

(* One full hunt: own deque, then the injector, then one steal attempt
   per other deque. *)
let find_task pool me rng rr =
  let st = pool.stats.(me) in
  match pop_own pool me with
  | Some c ->
      Atomic.decr pool.pending;
      record_run pool me c ~arg:FR.origin_pop;
      Some c
  | None -> (
      st.take_empties <- st.take_empties + 1;
      match Injector.pop pool.injector with
      | Some c ->
          Atomic.decr pool.pending;
          st.injector_runs <- st.injector_runs + 1;
          record_run pool me c ~arg:FR.origin_inject;
          Some c
      | None ->
          let n = Array.length pool.deques in
          let found = ref None in
          let attempts = ref 0 in
          while Option.is_none !found && !attempts < n - 1 do
            incr attempts;
            st.steal_attempts <- st.steal_attempts + 1;
            let victim = pick_victim pool me rng rr in
            (match steal_from pool me victim with
            | `Task c ->
                Atomic.decr pool.pending;
                st.steals <- st.steals + 1;
                st.tasks_stolen <- st.tasks_stolen + 1;
                (match pool.recorder with
                | Some r ->
                    FR.record r ~slot:me FR.Steal ~task:c.id ~arg:victim
                | None -> ());
                record_run pool me c ~arg:victim;
                found := Some c
            | `Empty ->
                st.steal_empties <- st.steal_empties + 1;
                Domain.cpu_relax ()
            | `Abort ->
                st.steal_aborts <- st.steal_aborts + 1;
                (match pool.recorder with
                | Some r ->
                    FR.record r ~slot:me FR.Steal_abort ~task:FR.no_task
                      ~arg:victim
                | None -> ());
                Domain.cpu_relax ())
          done;
          !found)

(* ------------------------------------------------------------------ *)
(* Workers                                                             *)
(* ------------------------------------------------------------------ *)

let worker_loop pool me =
  Domain.DLS.set pool.worker_id (Some me);
  pool.owners.(me) <- (Domain.self () :> int);
  let rng = Random.State.make [| 0x9e3779b9; me |] in
  let rr = ref me in
  let spins = ref 0 in
  while not (Atomic.get pool.stop) do
    match find_task pool me rng rr with
    | Some cell ->
        spins := 0;
        exec_cell pool me cell
    | None ->
        incr spins;
        if !spins < spin_rounds then Domain.cpu_relax ()
        else begin
          spins := 0;
          park pool me ~should_sleep:(fun () ->
              (not (Atomic.get pool.stop)) && Atomic.get pool.pending = 0)
        end
  done

(* ------------------------------------------------------------------ *)
(* API                                                                 *)
(* ------------------------------------------------------------------ *)

let create ?domains ?(backend = Chase_lev_deques) ?(policy = Random_victim)
    ?(steal_half = false) ?(telemetry = false) ?(attribution = false)
    ?(window_ns = 100_000_000) ?(window_slots = 16) ?(debug = false)
    ?(queue_capacity = 1 lsl 13) ?(injector_capacity = max_int)
    ?(flight = false) ?(flight_capacity = 16384) () =
  if injector_capacity < 1 then
    invalid_arg "Pool.create: injector_capacity must be >= 1";
  if attribution && window_ns < 1 then
    invalid_arg "Pool.create: window_ns must be >= 1";
  if steal_half && backend <> The_deques then
    invalid_arg "Pool.create: steal_half requires the THE backend";
  let n =
    match domains with
    | Some d -> max 1 d
    | None -> max 1 (Domain.recommended_domain_count () - 1)
  in
  let mk_deque () =
    match backend with
    | Chase_lev_deques -> Cl (Chase_lev.create ~capacity:64 ())
    | The_deques -> The (The_queue.create ~capacity:queue_capacity ())
  in
  let worker_id = Domain.DLS.new_key (fun () -> None) in
  (* One record, created once and shared with every worker: [domains] is a
     mutable field filled in below, so the workers, the coordinator and
     [shutdown] all see the same state (the previous [{ pool with domains }]
     copy handed the workers a record whose domain list stayed []). *)
  let pool =
    {
      deques = Array.init (n + 1) (fun _ -> mk_deque ());
      owners = Array.make (n + 1) (-1);
      injector = Injector.create ();
      injector_capacity;
      injector_drops = Atomic.make 0;
      in_flight = Atomic.make 0;
      pending = Atomic.make 0;
      stop = Atomic.make false;
      error = Atomic.make None;
      domains = [];
      worker_id;
      policy;
      steal_half;
      debug;
      telemetry;
      attribution;
      window_ns;
      window_slots;
      lock = Mutex.create ();
      cond = Condition.create ();
      sleepers = Atomic.make 0;
      stats = Array.init (n + 1) (fun _ -> stats_create ());
      latencies = Array.init (n + 1) (fun _ -> Telemetry.Histogram.create ());
      stage_qwait = Array.init (n + 1) (fun _ -> Telemetry.Histogram.create ());
      stage_dispatch =
        Array.init (n + 1) (fun _ -> Telemetry.Histogram.create ());
      stage_service =
        Array.init (n + 1) (fun _ -> Telemetry.Histogram.create ());
      sojourn_windows =
        Array.init (n + 1) (fun _ ->
            Telemetry.Windowed.create ~slots:window_slots ~width:window_ns ());
      recorder =
        (if flight then
           Some (FR.create ~capacity:flight_capacity ~slots:(n + 1) ())
         else None);
      current = Array.make (n + 1) (-1);
      next_task_id = Atomic.make 0;
      running = Atomic.make false;
      shut = Atomic.make false;
    }
  in
  pool.domains <-
    List.init n (fun i -> Domain.spawn (fun () -> worker_loop pool (i + 1)));
  pool

let spawn pool f =
  if Atomic.get pool.shut then invalid_arg "Pool.spawn: pool is shut down";
  ignore (Atomic.fetch_and_add pool.in_flight 1);
  ignore (Atomic.fetch_and_add pool.pending 1);
  (match Domain.DLS.get pool.worker_id with
  | Some me ->
      let cell = make_cell pool ~parent:pool.current.(me) f in
      pool.stats.(me).spawns <- pool.stats.(me).spawns + 1;
      (* The Spawn event lands before the push: the cell must be on record
         before a thief can emit the matching Steal/Run. *)
      (match pool.recorder with
      | Some r -> FR.record r ~slot:me FR.Spawn ~task:cell.id ~arg:cell.parent
      | None -> ());
      push_own pool me cell
  | None ->
      (* not a pool domain: Chase-Lev push is single-owner, so external
         submissions go through the MPMC injector *)
      let cell = make_cell pool ~parent:(-1) f in
      (match pool.recorder with
      | Some r -> FR.record_external r FR.Inject ~task:cell.id ~arg:FR.no_arg
      | None -> ());
      Injector.push pool.injector cell);
  wake_all pool

(* External submission under the injector bound. [spawn] is the closed-
   system door and never refuses work (a worker body must be able to fork
   unconditionally); [submit] is the open-system front door, where load
   the pool cannot absorb has to be shed or delayed somewhere, and that
   somewhere is here. The bound is soft: concurrent submitters race the
   size check, so the depth can transiently exceed capacity by the number
   of racing callers — fine for backpressure, whose job is to stop an
   unbounded queue, not to enforce an exact high-water mark. *)
let inject ?arrived pool f =
  ignore (Atomic.fetch_and_add pool.in_flight 1);
  ignore (Atomic.fetch_and_add pool.pending 1);
  let cell = make_cell pool ~parent:(-1) ?arrived f in
  (match pool.recorder with
  | Some r -> FR.record_external r FR.Inject ~task:cell.id ~arg:FR.no_arg
  | None -> ());
  Injector.push pool.injector cell;
  wake_all pool

let submit ?(policy = Block) pool f =
  if Atomic.get pool.shut then invalid_arg "Pool.submit: pool is shut down";
  (* arrival is stamped before the capacity check: a Block spin is queueing
     delay the request experiences, so it belongs to the qwait stage *)
  let arrived = if pool.attribution then Telemetry.Clock.now_ns () else 0 in
  if Injector.size pool.injector < pool.injector_capacity then begin
    inject ~arrived pool f;
    true
  end
  else
    match policy with
    | Drop ->
        Atomic.incr pool.injector_drops;
        false
    | Block ->
        while Injector.size pool.injector >= pool.injector_capacity do
          Domain.cpu_relax ()
        done;
        inject ~arrived pool f;
        true

let raise_pending_error pool =
  match Atomic.exchange pool.error None with
  | Some (e, bt) -> Printexc.raise_with_backtrace e bt
  | None -> ()

let parallel_run pool tasks =
  if Atomic.get pool.shut then
    invalid_arg "Pool.parallel_run: pool is shut down";
  if not (Atomic.compare_and_set pool.running false true) then
    invalid_arg "Pool.parallel_run: not reentrant";
  (* claim the coordinator slot for the calling domain *)
  Domain.DLS.set pool.worker_id (Some 0);
  pool.owners.(0) <- (Domain.self () :> int);
  List.iter (fun f -> spawn pool f) tasks;
  let rng = Random.State.make [| 0xab1e |] in
  let rr = ref 0 in
  let spins = ref 0 in
  while Atomic.get pool.in_flight > 0 do
    match find_task pool 0 rng rr with
    | Some cell ->
        spins := 0;
        exec_cell pool 0 cell
    | None ->
        incr spins;
        if !spins < spin_rounds then Domain.cpu_relax ()
        else begin
          spins := 0;
          park pool 0 ~should_sleep:(fun () ->
              Atomic.get pool.pending = 0 && Atomic.get pool.in_flight > 0)
        end
  done;
  (* release the coordinator slot: spawns from this domain outside a
     parallel_run go through the injector like any other external caller *)
  Domain.DLS.set pool.worker_id None;
  pool.owners.(0) <- -1;
  Atomic.set pool.running false;
  raise_pending_error pool

(* Shutdown's drain: the caller owns no deque, so it may only consume the
   injector and steal — both safe from any domain. *)
let drain_find pool rr =
  match Injector.pop pool.injector with
  | Some c ->
      Atomic.decr pool.pending;
      (match pool.recorder with
      | Some r -> FR.record_external r FR.Run ~task:c.id ~arg:FR.origin_inject
      | None -> ());
      Some c
  | None ->
      let n = Array.length pool.deques in
      let found = ref None in
      let attempts = ref 0 in
      while Option.is_none !found && !attempts < n do
        incr attempts;
        rr := (!rr + 1) mod n;
        (match steal_from pool (-1) !rr with
        | `Task c ->
            Atomic.decr pool.pending;
            (match pool.recorder with
            | Some r -> FR.record_external r FR.Run ~task:c.id ~arg:!rr
            | None -> ());
            found := Some c
        | `Empty | `Abort -> ())
      done;
      !found

let shutdown pool =
  if Atomic.compare_and_set pool.shut false true then begin
    (* Drain before stopping: queued tasks are executed, not dropped. The
       caller helps from outside (injector + steals) while the workers
       keep running; [in_flight] reaching zero means every spawned task
       has finished. *)
    let rr = ref 0 in
    while Atomic.get pool.in_flight > 0 do
      match drain_find pool rr with
      | Some cell ->
          (try cell.f ()
           with e -> record_error pool e (Printexc.get_raw_backtrace ()));
          if Atomic.fetch_and_add pool.in_flight (-1) = 1 then wake_all pool
      | None -> Domain.cpu_relax ()
    done;
    Atomic.set pool.stop true;
    wake_all pool;
    List.iter Domain.join pool.domains;
    pool.domains <- [];
    raise_pending_error pool
  end

let worker_count pool = Array.length pool.deques - 1
let injector_depth pool = Injector.size pool.injector
let sleeper_count pool = Atomic.get pool.sleepers
let injector_drops pool = Atomic.get pool.injector_drops

(* Stable-read snapshot of one slot's counters: copy, re-copy, and accept
   only when two successive copies agree (the writer was quiet in between,
   so the copy is a consistent cut of that slot's history). The writer is
   never slowed down — all the cost is on the reader, bounded by [tries]:
   under sustained writes the last copy is returned, torn by at most the
   events in flight during the final copy. See pool.mli for the precise
   tolerance statement. *)
let scrape_slot pool i =
  let rec go prev tries =
    let cur = stats_copy pool.stats.(i) in
    if tries = 0 || stats_equal prev cur then cur else go cur (tries - 1)
  in
  go (stats_copy pool.stats.(i)) 3

type snapshot = {
  slot_stats : worker_stats array;
  slot_latencies : Telemetry.Histogram.t array;
  slot_qwait : Telemetry.Histogram.t array;
  slot_dispatch : Telemetry.Histogram.t array;
  slot_service : Telemetry.Histogram.t array;
  snap_windows : Telemetry.Windowed.t;
  snap_pending : int;
  snap_in_flight : int;
  snap_sleepers : int;
  snap_injector : int;
  snap_injector_drops : int;
}

let copy_hists a =
  Array.map
    (fun l ->
      let h = Telemetry.Histogram.create () in
      Telemetry.Histogram.merge ~into:h l;
      h)
    a

(* Merged non-draining view of the per-slot sojourn rings: snapshot each
   slot's ring (safe against its writer), then fold the copies — the
   claim rule makes the fold independent of slot order. *)
let merged_windows pool =
  let acc =
    Telemetry.Windowed.create ~slots:pool.window_slots ~width:pool.window_ns
      ()
  in
  Array.iter
    (fun w ->
      Telemetry.Windowed.merge ~into:acc (Telemetry.Windowed.snapshot w))
    pool.sojourn_windows;
  acc

let scrape pool =
  {
    slot_stats = Array.init (Array.length pool.stats) (scrape_slot pool);
    slot_latencies = copy_hists pool.latencies;
    slot_qwait = copy_hists pool.stage_qwait;
    slot_dispatch = copy_hists pool.stage_dispatch;
    slot_service = copy_hists pool.stage_service;
    snap_windows = merged_windows pool;
    snap_pending = Atomic.get pool.pending;
    snap_in_flight = Atomic.get pool.in_flight;
    snap_sleepers = Atomic.get pool.sleepers;
    snap_injector = Injector.size pool.injector;
    snap_injector_drops = Atomic.get pool.injector_drops;
  }

let worker_stats pool =
  Array.init (Array.length pool.stats) (scrape_slot pool)

let flight pool = pool.recorder

let tasks_run pool =
  Array.fold_left (fun acc st -> acc + st.tasks_run) 0 pool.stats

let latency pool =
  let h = Telemetry.Histogram.create () in
  Array.iter (fun l -> Telemetry.Histogram.merge ~into:h l) pool.latencies;
  h

let merge_all a =
  let h = Telemetry.Histogram.create () in
  Array.iter (fun l -> Telemetry.Histogram.merge ~into:h l) a;
  h

let stage_hists pool =
  ( merge_all pool.stage_qwait,
    merge_all pool.stage_dispatch,
    merge_all pool.stage_service )

let windowed_sojourn pool = merged_windows pool

let fold_into_sink pool sink =
  Array.iter
    (fun st ->
      sink.Telemetry.Sink.puts <- sink.Telemetry.Sink.puts + st.spawns;
      sink.Telemetry.Sink.tasks_run <-
        sink.Telemetry.Sink.tasks_run + st.tasks_run;
      sink.Telemetry.Sink.tasks_stolen <-
        sink.Telemetry.Sink.tasks_stolen + st.tasks_stolen;
      sink.Telemetry.Sink.steal_attempts <-
        sink.Telemetry.Sink.steal_attempts + st.steal_attempts;
      sink.Telemetry.Sink.steals <- sink.Telemetry.Sink.steals + st.steals;
      sink.Telemetry.Sink.take_empties <-
        sink.Telemetry.Sink.take_empties + st.take_empties;
      sink.Telemetry.Sink.steal_empties <-
        sink.Telemetry.Sink.steal_empties + st.steal_empties;
      sink.Telemetry.Sink.steal_aborts <-
        sink.Telemetry.Sink.steal_aborts + st.steal_aborts;
      sink.Telemetry.Sink.parks <- sink.Telemetry.Sink.parks + st.parks)
    pool.stats

let fib pool n =
  let acc = Atomic.make 0 in
  let rec task n () =
    if n < 2 then ignore (Atomic.fetch_and_add acc n)
    else begin
      spawn pool (task (n - 1));
      spawn pool (task (n - 2))
    end
  in
  parallel_run pool [ task n ];
  Atomic.get acc
