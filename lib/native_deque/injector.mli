(** Multi-producer multi-consumer FIFO for external task submission.

    The pool's deques are single-owner on the push side (Chase-Lev), so
    domains that are not pool workers must not touch them; they submit
    here instead, and workers drain the injector when their own deque runs
    dry. Mutex-protected: this is the pool's front door, not its hot
    loop. *)

type 'a t

val create : unit -> 'a t

val push : 'a t -> 'a -> unit
(** Enqueue from any domain. *)

val pop : 'a t -> 'a option
(** Dequeue from any domain; [None] when empty. The empty fast path is a
    single atomic load (no lock). *)

val size : 'a t -> int
val is_empty : 'a t -> bool
