(** A real (non-simulated) Chase–Lev work-stealing deque on OCaml 5 Atomics,
    usable with [Domain]-based parallelism.

    This is the library's directly-adoptable artifact. Note what it cannot
    be: a fence-free FF-CL. The OCaml memory model exposes no store buffers
    and no relaxed atomics, every [Atomic] access is fully fenced, so the
    paper's optimisation is inexpressible here — which is exactly why the
    reproduction runs on the simulated bounded-TSO machine (DESIGN.md §1).
    The simulator's Chase-Lev and this one share the same logic, connecting
    the simulated algorithms to runnable code.

    Single owner: [push]/[pop] must be called from the owning domain only;
    [steal] is safe from any domain. *)

type 'a t

val create : ?capacity:int -> unit -> 'a t
(** [capacity] is rounded up to a power of two; the deque grows by doubling
    when full. *)

val push : 'a t -> 'a -> unit
(** Owner: enqueue at the tail. *)

val pop : 'a t -> 'a option
(** Owner: dequeue from the tail; [None] when empty. *)

val steal : 'a t -> 'a option
(** Any domain: dequeue from the head; [None] when empty or lost a race. *)

val steal_detail : 'a t -> [ `Task of 'a | `Empty | `Abort ]
(** Like {!steal} but distinguishes the two [None] cases, in the simulated
    queues' outcome vocabulary: [`Empty] when [head >= tail] at the read,
    [`Abort] when the head CAS lost a race with the owner or another
    thief. *)

val steal_retry : 'a t -> 'a option
(** Like {!steal} but retries CAS races until it gets an element or sees an
    empty queue. *)

val size : 'a t -> int
(** Snapshot of [tail - head]; racy, for monitoring only. *)
