(* Chase & Lev, "Dynamic circular work-stealing deque" (SPAA 2005), with the
   growing circular buffer of the original. H and T are monotonically
   increasing virtual indices; the buffer doubles on overflow. *)

type 'a buffer = { log_size : int; elems : 'a option Atomic.t array }

let buffer_create log_size =
  { log_size; elems = Array.init (1 lsl log_size) (fun _ -> Atomic.make None) }

let buffer_get b i = Atomic.get b.elems.(i land ((1 lsl b.log_size) - 1))
let buffer_set b i v = Atomic.set b.elems.(i land ((1 lsl b.log_size) - 1)) v

let buffer_grow b ~head ~tail =
  let b' = buffer_create (b.log_size + 1) in
  for i = head to tail - 1 do
    buffer_set b' i (buffer_get b i)
  done;
  b'

type 'a t = {
  head : int Atomic.t;
  tail : int Atomic.t;
  buf : 'a buffer Atomic.t;
}

let create ?(capacity = 64) () =
  let rec log2_up n acc = if 1 lsl acc >= n then acc else log2_up n (acc + 1) in
  {
    head = Atomic.make 0;
    tail = Atomic.make 0;
    buf = Atomic.make (buffer_create (max 4 (log2_up capacity 0)));
  }

let size q = max 0 (Atomic.get q.tail - Atomic.get q.head)

let push q v =
  let t = Atomic.get q.tail in
  let h = Atomic.get q.head in
  let b = Atomic.get q.buf in
  let b =
    if t - h >= (1 lsl b.log_size) - 1 then begin
      let b' = buffer_grow b ~head:h ~tail:t in
      Atomic.set q.buf b';
      b'
    end
    else b
  in
  buffer_set b t (Some v);
  (* Atomic.set is a release store: the element is visible before the new
     tail. *)
  Atomic.set q.tail (t + 1)

let pop q =
  let t = Atomic.get q.tail - 1 in
  let b = Atomic.get q.buf in
  Atomic.set q.tail t;
  (* OCaml SC atomics make this store/load sequence the fenced take() of
     Fig. 2c — the fence the paper removes is implicit and unremovable
     here. *)
  let h = Atomic.get q.head in
  if t > h then buffer_get b t
  else if t < h then begin
    (* empty, or a thief got ahead: restore the tail *)
    Atomic.set q.tail h;
    None
  end
  else begin
    (* last element: race thieves via CAS on the head *)
    Atomic.set q.tail (h + 1);
    if Atomic.compare_and_set q.head h (h + 1) then buffer_get b t else None
  end

let steal q =
  let h = Atomic.get q.head in
  let t = Atomic.get q.tail in
  if h >= t then None
  else begin
    let b = Atomic.get q.buf in
    let v = buffer_get b h in
    if Atomic.compare_and_set q.head h (h + 1) then v else None
  end

(* [steal] collapses "nothing there" and "lost the CAS race" into [None];
   contention accounting needs them apart (an abort means a live conflict
   with the owner or another thief, an empty means a mistargeted hunt). *)
let steal_detail q =
  let h = Atomic.get q.head in
  let t = Atomic.get q.tail in
  if h >= t then `Empty
  else begin
    let b = Atomic.get q.buf in
    let v = buffer_get b h in
    if Atomic.compare_and_set q.head h (h + 1) then
      match v with Some x -> `Task x | None -> `Empty
    else `Abort
  end

let rec steal_retry q =
  let h = Atomic.get q.head in
  let t = Atomic.get q.tail in
  if h >= t then None
  else begin
    let b = Atomic.get q.buf in
    let v = buffer_get b h in
    if Atomic.compare_and_set q.head h (h + 1) then v
    else begin
      Domain.cpu_relax ();
      steal_retry q
    end
  end
