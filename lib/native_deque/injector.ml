(* Multi-producer multi-consumer submission queue for work entering the
   pool from outside its worker domains.

   Chase-Lev's push is single-owner: only the domain that owns a deque may
   ever call it. External submitters therefore cannot be handed a deque —
   they enqueue here, and workers drain this queue when their own deque is
   empty. Throughput of this path is deliberately not the point (it is the
   pool's front door, not its hot loop), so a mutex around a plain FIFO is
   the right trade: the steal path keeps all the cleverness, exactly as the
   paper keeps the owner path synchronization-free by pushing coordination
   onto the thieves.

   [size] is kept in an atomic outside the lock so the worker fast path
   ("is there anything to drain?") is a single load, and so a parked
   worker's wakeup predicate can read it without acquiring the lock. *)

type 'a t = {
  lock : Mutex.t;
  q : 'a Queue.t;
  size : int Atomic.t;
}

let create () = { lock = Mutex.create (); q = Queue.create (); size = Atomic.make 0 }

let push t v =
  Mutex.lock t.lock;
  Queue.push v t.q;
  Atomic.incr t.size;
  Mutex.unlock t.lock

let pop t =
  if Atomic.get t.size = 0 then None
  else begin
    Mutex.lock t.lock;
    let r =
      if Queue.is_empty t.q then None
      else begin
        Atomic.decr t.size;
        Some (Queue.pop t.q)
      end
    in
    Mutex.unlock t.lock;
    r
  end

let size t = Atomic.get t.size
let is_empty t = Atomic.get t.size = 0
