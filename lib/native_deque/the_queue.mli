(** A real (non-simulated) THE queue (Cilk-5 / Fig. 2b) on OCaml 5 Atomics,
    with a per-queue mutex for the conflict path. Single owner for
    [push]/[pop]; [steal] from any domain. As with {!Chase_lev}, the
    worker-side fence is implicit in OCaml's SC atomics and cannot be
    removed — see DESIGN.md §1. *)

type 'a t

val create : ?capacity:int -> unit -> 'a t
(** Fixed capacity (rounded up to a power of two); [push] raises [Failure]
    on overflow. *)

val push : 'a t -> 'a -> unit
val pop : 'a t -> 'a option
val steal : 'a t -> 'a option

val steal_detail : 'a t -> [ `Task of 'a | `Empty | `Abort ]
(** Like {!steal} but distinguishes the two [None] cases: [`Empty] when the
    queue held nothing on entry, [`Abort] when the post-advance tail read
    failed to certify the element (the owner's conflict path won it). *)

val steal_half : ?max_batch:int -> 'a t -> 'a list
(** Any domain: take up to half the queue (at least one element when
    non-empty, at most [max_batch]) in one lock acquisition, oldest first.
    The THE conflict lock makes a multi-element reservation safe here; the
    Chase-Lev deque deliberately has no such operation (its unfenced owner
    pop assumes thieves take exactly one element at the head). *)

val size : 'a t -> int
