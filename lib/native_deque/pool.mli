(** A work-stealing pool over the native deques: each domain owns a
    {!Chase_lev} (or {!The_queue}) deque of thunks, pops locally, steals
    when empty, and parks on a condition variable when the whole pool runs
    dry. External domains submit through an {!Injector} queue, preserving
    the deques' single-owner push discipline. Tasks that raise do not kill
    their worker: the first failure is re-raised at the join point. *)

type t

type backend =
  | Chase_lev_deques  (** CAS-based steals, growing deques (default) *)
  | The_deques  (** THE/Cilk-5 mutex conflict path; enables [steal_half] *)

type victim_policy = Random_victim | Round_robin_victim

type worker_stats = {
  mutable spawns : int;  (** tasks pushed by this worker *)
  mutable tasks_run : int;  (** tasks this worker executed *)
  mutable tasks_stolen : int;  (** of those, how many came from a steal *)
  mutable injector_runs : int;  (** of those, how many came from the injector *)
  mutable steal_attempts : int;
  mutable steals : int;  (** successful steal operations *)
  mutable parks : int;  (** times this worker went to sleep *)
}

val create :
  ?domains:int ->
  ?backend:backend ->
  ?policy:victim_policy ->
  ?steal_half:bool ->
  ?telemetry:bool ->
  ?debug:bool ->
  ?queue_capacity:int ->
  unit ->
  t
(** [domains] defaults to [Domain.recommended_domain_count () - 1] worker
    domains plus the caller. [steal_half] (THE backend only; [Invalid_argument]
    otherwise) makes thieves take up to half a victim's queue per steal.
    [telemetry] enables per-task latency timestamps (see {!latency}).
    [debug] asserts the single-owner push discipline on every push.
    [queue_capacity] bounds the fixed-size THE deques (overflow spills to
    the injector). *)

val parallel_run : t -> (unit -> unit) list -> unit
(** Execute the thunks to completion; each may {!spawn} more work. Returns
    when every spawned task has finished. If any task raised, the first
    exception (in completion order) is re-raised here with its backtrace —
    the run still drains fully and the pool remains usable. Not
    reentrant. *)

val spawn : t -> (unit -> unit) -> unit
(** Enqueue a task from any domain. Pool workers (and the domain inside
    {!parallel_run}) push onto their own deque; any other domain goes
    through the injector queue, so spawning from external domains is
    safe. *)

val shutdown : t -> unit
(** Drain all queued work (executing it, not dropping it), then stop and
    join the worker domains. Idempotent: later calls return immediately.
    The pool cannot be reused afterwards ({!spawn}/{!parallel_run} raise
    [Invalid_argument]). Re-raises the first captured task exception, if
    any run left one behind. *)

val worker_count : t -> int
(** Number of worker domains (excluding the coordinator slot). *)

val worker_stats : t -> worker_stats array
(** Snapshot of per-slot counters; index 0 is the coordinator, 1..n the
    workers. Values are copies. *)

val tasks_run : t -> int
(** Total tasks executed across all slots. *)

val latency : t -> Telemetry.Histogram.t
(** Merged spawn-to-completion latency histogram (nanoseconds). Empty
    unless the pool was created with [~telemetry:true]. *)

val fold_into_sink : t -> Telemetry.Sink.t -> unit
(** Accumulate pool counters into a telemetry sink: spawns into [puts],
    plus [tasks_run], [tasks_stolen], [steal_attempts] and [steals]. *)

val fib : t -> int -> int
(** The inevitable demo: parallel naive Fibonacci on the pool (used by
    examples and the native bench). *)
