(** A work-stealing pool over the native deques: each domain owns a
    {!Chase_lev} (or {!The_queue}) deque of thunks, pops locally, steals
    when empty, and parks on a condition variable when the whole pool runs
    dry. External domains submit through an {!Injector} queue, preserving
    the deques' single-owner push discipline. Tasks that raise do not kill
    their worker: the first failure is re-raised at the join point. *)

type t

type backend =
  | Chase_lev_deques  (** CAS-based steals, growing deques (default) *)
  | The_deques  (** THE/Cilk-5 mutex conflict path; enables [steal_half] *)

type victim_policy = Random_victim | Round_robin_victim

type backpressure =
  | Drop  (** refuse the task; counted in [snap_injector_drops] *)
  | Block  (** spin until a worker makes room in the injector *)
      (** What {!submit} does when the injector already holds
          [injector_capacity] cells. *)

type worker_stats = {
  mutable spawns : int;  (** tasks pushed by this worker *)
  mutable tasks_run : int;  (** tasks this worker executed *)
  mutable tasks_stolen : int;  (** of those, how many came from a steal *)
  mutable injector_runs : int;  (** of those, how many came from the injector *)
  mutable steal_attempts : int;
  mutable steals : int;  (** successful steal operations *)
  mutable take_empties : int;  (** own-deque pops that found nothing *)
  mutable steal_empties : int;  (** steal attempts on an empty victim *)
  mutable steal_aborts : int;  (** steal attempts that lost a live race *)
  mutable parks : int;  (** times this worker went to sleep *)
}

val create :
  ?domains:int ->
  ?backend:backend ->
  ?policy:victim_policy ->
  ?steal_half:bool ->
  ?telemetry:bool ->
  ?attribution:bool ->
  ?window_ns:int ->
  ?window_slots:int ->
  ?debug:bool ->
  ?queue_capacity:int ->
  ?injector_capacity:int ->
  ?flight:bool ->
  ?flight_capacity:int ->
  unit ->
  t
(** [domains] defaults to [Domain.recommended_domain_count () - 1] worker
    domains plus the caller. [steal_half] (THE backend only; [Invalid_argument]
    otherwise) makes thieves take up to half a victim's queue per steal.
    [telemetry] enables per-task latency timestamps (see {!latency}).
    [attribution] additionally stamps every cell with monotonic-ns stage
    timestamps — arrival (before any {!submit} backpressure spin), inject,
    dequeue, completion — feeding per-slot qwait / dispatch / service
    histograms ({!stage_hists}, [slot_qwait] etc. in {!scrape}) and a
    rotating per-slot sojourn window ring of [window_slots] windows of
    [window_ns] nanoseconds each ({!windowed_sojourn}, [snap_windows]).
    Stages are per {e cell}: a worker-spawned continuation arrives the
    instant it is pushed, so its qwait is ~0, while externally submitted
    cells charge backpressure delay to qwait.
    [debug] asserts the single-owner push discipline on every push.
    [queue_capacity] bounds the fixed-size THE deques (overflow spills to
    the injector). [injector_capacity] (default unbounded) is the soft
    bound {!submit} enforces with its backpressure policy; {!spawn} and
    THE overflow spills ignore it, so a worker can always make progress.
    [flight] attaches a {!Telemetry.Flight_recorder} — one
    ring of [flight_capacity] events per slot (default 16384) — recording
    spawn/run/steal/steal-abort/inject/park/unpark events with task
    lineage; retrieve it with {!flight}. With [steal_half], only the first
    task of a stolen batch records a [Steal] event; the surplus moves to
    the thief's own deque and its later runs record as own pops (their
    lineage still shows the original spawner slot). *)

val parallel_run : t -> (unit -> unit) list -> unit
(** Execute the thunks to completion; each may {!spawn} more work. Returns
    when every spawned task has finished. If any task raised, the first
    exception (in completion order) is re-raised here with its backtrace —
    the run still drains fully and the pool remains usable. Not
    reentrant. *)

val spawn : t -> (unit -> unit) -> unit
(** Enqueue a task from any domain. Pool workers (and the domain inside
    {!parallel_run}) push onto their own deque; any other domain goes
    through the injector queue, so spawning from external domains is
    safe. Never refuses work: the injector bound does not apply (a task
    body must be able to fork unconditionally). *)

val submit : ?policy:backpressure -> t -> (unit -> unit) -> bool
(** Open-system front door: enqueue an externally arriving task through
    the injector, honoring [injector_capacity]. Returns [true] when the
    task was accepted. With [Drop] (and the injector full) the task is
    refused, [false] is returned and [snap_injector_drops] is bumped;
    with [Block] (the default) the caller spins until a worker makes
    room, so it always returns [true]. The bound is soft — concurrent
    submitters race the size check, so the depth can transiently exceed
    capacity by the number of racing callers; backpressure needs a dam,
    not an exact high-water mark. *)

val shutdown : t -> unit
(** Drain all queued work (executing it, not dropping it), then stop and
    join the worker domains. Idempotent: later calls return immediately.
    The pool cannot be reused afterwards ({!spawn}/{!parallel_run} raise
    [Invalid_argument]). Re-raises the first captured task exception, if
    any run left one behind. *)

val worker_count : t -> int
(** Number of worker domains (excluding the coordinator slot). *)

val injector_depth : t -> int
(** Current depth of the external-submission FIFO (one atomic read). *)

val sleeper_count : t -> int
(** Workers parked right now (one atomic read). *)

val injector_drops : t -> int
(** Submissions refused so far under the [Drop] policy. *)

val worker_stats : t -> worker_stats array
(** Snapshot of per-slot counters; index 0 is the coordinator, 1..n the
    workers. Values are copies, taken with the stable-read protocol of
    {!scrape} — see the consistency model there. *)

type snapshot = {
  slot_stats : worker_stats array;  (** per-slot counter copies *)
  slot_latencies : Telemetry.Histogram.t array;
      (** per-slot latency histogram copies (empty unless [~telemetry]) *)
  slot_qwait : Telemetry.Histogram.t array;
      (** per-slot arrival-to-inject ns (empty unless [~attribution]) *)
  slot_dispatch : Telemetry.Histogram.t array;
      (** per-slot inject-to-dequeue ns (empty unless [~attribution]) *)
  slot_service : Telemetry.Histogram.t array;
      (** per-slot dequeue-to-completion ns (empty unless [~attribution]) *)
  snap_windows : Telemetry.Windowed.t;
      (** merged rotating sojourn windows (empty unless [~attribution]) *)
  snap_pending : int;  (** cells enqueued and not yet dequeued *)
  snap_in_flight : int;  (** tasks spawned and not yet finished *)
  snap_sleepers : int;  (** workers parked at the instant of the scrape *)
  snap_injector : int;  (** cells waiting in the external-submission FIFO *)
  snap_injector_drops : int;  (** {!submit} refusals under [Drop], ever *)
}

val scrape : t -> snapshot
(** Live scrape without stopping workers.

    {b Consistency model.} Writers are never slowed: each slot's counters
    are copied and re-copied until two successive copies agree (at most 4
    copies), which certifies the returned record as a consistent cut of
    that slot's history — a state the slot actually passed through.
    Under sustained writes the retries can exhaust; the last copy is then
    returned and may tear {e across fields only}, by at most the handful
    of events that slot processed during one copy. Each individual field
    is always exact at some instant during the call: every counter is a
    single word written by one domain, so a field read is never torn,
    and all counters are monotone. No consistency holds {e between}
    slots — slot A's copy and slot B's copy are taken at different
    instants. The scalar gauges ([snap_pending], [snap_in_flight],
    [snap_sleepers], [snap_injector]) are independent atomic reads, each
    exact at its own instant. *)

val flight : t -> Telemetry.Flight_recorder.t option
(** The flight recorder attached at creation ([?flight:true]), for
    post-run lineage reconstruction and reporting. *)

val tasks_run : t -> int
(** Total tasks executed across all slots. *)

val latency : t -> Telemetry.Histogram.t
(** Merged spawn-to-completion latency histogram (nanoseconds). Empty
    unless the pool was created with [~telemetry:true]. *)

val stage_hists : t -> Telemetry.Histogram.t * Telemetry.Histogram.t * Telemetry.Histogram.t
(** Merged (qwait, dispatch, service) stage histograms in nanoseconds,
    non-draining copies. All empty unless [~attribution:true]. *)

val windowed_sojourn : t -> Telemetry.Windowed.t
(** Merged non-draining snapshot of the per-slot rotating sojourn window
    rings (arrival-to-completion ns keyed by completion time). Empty
    unless [~attribution:true]. *)

val fold_into_sink : t -> Telemetry.Sink.t -> unit
(** Accumulate pool counters into a telemetry sink: spawns into [puts],
    plus [tasks_run], [tasks_stolen], [steal_attempts], [steals],
    [take_empties], [steal_empties], [steal_aborts] and [parks] — the
    full contention picture, not just the happy path. *)

val fib : t -> int -> int
(** The inevitable demo: parallel naive Fibonacci on the pool (used by
    examples and the native bench). *)
