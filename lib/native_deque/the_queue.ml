type 'a t = {
  head : int Atomic.t;
  tail : int Atomic.t;
  mask : int;
  elems : 'a option array;
  lock : Mutex.t;
}

let create ?(capacity = 8192) () =
  let rec up n = if n >= capacity then n else up (2 * n) in
  let cap = up 16 in
  {
    head = Atomic.make 0;
    tail = Atomic.make 0;
    mask = cap - 1;
    elems = Array.make cap None;
    lock = Mutex.create ();
  }

let size q = max 0 (Atomic.get q.tail - Atomic.get q.head)

let push q v =
  let t = Atomic.get q.tail in
  if t - Atomic.get q.head > q.mask then failwith "The_queue.push: full";
  q.elems.(t land q.mask) <- Some v;
  Atomic.set q.tail (t + 1)

let pop q =
  let t = Atomic.get q.tail - 1 in
  Atomic.set q.tail t;
  (* the SC-atomic read of head doubles as the THE fence *)
  let h = Atomic.get q.head in
  if t > h then q.elems.(t land q.mask)
  else if t < h then begin
    Mutex.lock q.lock;
    let h = Atomic.get q.head in
    let r =
      if h >= t + 1 then begin
        Atomic.set q.tail (t + 1);
        None
      end
      else q.elems.(t land q.mask)
    in
    Mutex.unlock q.lock;
    r
  end
  else q.elems.(t land q.mask)

let steal q =
  Mutex.lock q.lock;
  let h = Atomic.get q.head in
  Atomic.set q.head (h + 1);
  let t = Atomic.get q.tail in
  let r =
    if h + 1 <= t then q.elems.(h land q.mask)
    else begin
      Atomic.set q.head h;
      None
    end
  in
  Mutex.unlock q.lock;
  r

(* Same protocol as [steal], but the two failure modes stay apart: a queue
   already empty on entry is [`Empty]; a failed certification after the
   head advance — the owner popped the contested element between our two
   reads — is a genuine THE conflict, [`Abort]. *)
let steal_detail q =
  Mutex.lock q.lock;
  let h = Atomic.get q.head in
  let r =
    if Atomic.get q.tail - h <= 0 then `Empty
    else begin
      Atomic.set q.head (h + 1);
      let t = Atomic.get q.tail in
      if h + 1 <= t then
        match q.elems.(h land q.mask) with
        | Some x -> `Task x
        | None -> `Empty
      else begin
        Atomic.set q.head h;
        `Abort
      end
    end
  in
  Mutex.unlock q.lock;
  r

(* Batched steal: take up to half the queue (at least one) in one lock
   acquisition. Same protocol as [steal] — advance the head first, then
   re-read the tail and shrink if the owner popped concurrently. While we
   hold the lock the owner's conflict path is blocked, so once the range
   [h, h+k) is certified against the re-read tail it is exclusively ours:
   an unfenced owner pop takes only indices strictly above the head it
   reads, which is at least [h + want] from the moment we advanced it.
   This is the THE-side analogue of ebsl-style batched steals; Chase-Lev
   gets no such operation because its unfenced owner pop assumes thieves
   take exactly one element at the head. *)
let steal_half ?(max_batch = max_int) q =
  Mutex.lock q.lock;
  let h = Atomic.get q.head in
  let n = Atomic.get q.tail - h in
  let want = min max_batch (if n <= 0 then 0 else (n + 1) / 2) in
  let r =
    if want <= 0 then []
    else begin
      Atomic.set q.head (h + want);
      let t = Atomic.get q.tail in
      let k = if h + want <= t then want else max 0 (t - h) in
      if k <> want then Atomic.set q.head (h + k);
      List.init k (fun i -> Option.get q.elems.((h + i) land q.mask))
    end
  in
  Mutex.unlock q.lock;
  r
