(** Figure 10: run time of the CilkPlus suite under the fence-free variants,
    normalized to stock THE (%), at the machine's full (non-hyperthreaded)
    parallelism — 10 workers on Westmere-EX (10a), 4 on Haswell (10b).

    The qualitative targets from the paper: THEP and THEP δ=4 beat the
    baseline by ~10% on the fence-heavy benchmarks; FF-THE with the default
    δ = ⌈S/2⌉ degenerates to near-single-threaded speed on benchmarks whose
    queues stay shallow (bars far above 100%), which δ = 4 repairs on all
    but LUD. *)

type row = {
  bench : string;
  baseline : float;  (** median THE makespan, cycles *)
  cells : (string * float) list;  (** variant label -> normalized % *)
}

val compute :
  Machine_config.t ->
  ?repeats:int ->
  ?benches:string list ->
  ?jobs:int ->
  unit ->
  row list
(** [jobs] fans the (bench × variant × seed) grid of independent timed runs
    across OCaml 5 domains via {!Par_runner.map}; results are folded back in
    grid order, so the rows (and the rendered table) are byte-identical to a
    sequential run. Default 1 (sequential). *)

val geomean_row : row list -> (string * float) list

val render : Machine_config.t -> row list -> string

val metrics_schema : string
(** ["wsrepro-metrics/v1"], the schema tag of the [--metrics] sidecar. *)

val run :
  Machine_config.t ->
  ?repeats:int ->
  ?benches:string list ->
  ?jobs:int ->
  ?metrics_file:string ->
  ?trace_file:string ->
  ?progress:bool ->
  unit ->
  unit
(** Print the Figure 10 table (stdout bytes are unchanged by every option).
    [metrics_file] additionally collects a {!Telemetry.Sink.t} per grid
    point and writes a [wsrepro-metrics/v1] JSON sidecar: per
    (bench, variant), counters merged over the seeds plus derived rates
    (fence-stall cycles per take — ~0 for the fence-free variants — steal
    abort rate, δ-checks per steal attempt). [trace_file] records one timed
    run per variant of the first benchmark into a Chrome trace-event JSON
    file (one process per variant), loadable in Perfetto. [progress]
    maintains a live grid status line on stderr. *)
