type graph_case = {
  label : string;
  graph : Ws_workloads.Graph.t;
  workers : int option;
  node_work : int;
  edge_work : int;
}

type cell = { normalized : float; stolen_pct : float; makespan : float }

type row = { case : string; cells : (string * cell) list }

let default_cases () =
  [
    {
      label = "K-graph (10^4 nodes, k=3)";
      graph = Ws_workloads.Graph.k_graph ~nodes:10_000 ~k:3 ~seed:5;
      workers = None;
      node_work = 90;
      edge_work = 22;
    };
    {
      label = "Random (10^4 nodes, 3*10^4 edges)";
      graph = Ws_workloads.Graph.random_graph ~nodes:10_000 ~edges:30_000 ~seed:5;
      workers = None;
      node_work = 70;
      edge_work = 16;
    };
    {
      label = "Torus (2400 nodes, 2 threads)";
      graph = Ws_workloads.Graph.torus ~width:60 ~height:40;
      workers = Some 2;
      node_work = 10;
      edge_work = 4;
    };
  ]

let compute ?(machine = Machine_config.haswell) ?(repeats = 3) ?cases
    ?(workload = `Transitive_closure) ?(jobs = 1) ?on_progress () =
  let cases = match cases with Some c -> c | None -> default_cases () in
  let seeds = List.init repeats (fun i -> 21 + (10 * i)) in
  (* One grid point per (case, variant, seed); [mk] builds a fresh checked
     workload per run, so points are independent and safe to fan out. *)
  let points =
    List.concat_map
      (fun case ->
        List.concat_map
          (fun v -> List.map (fun seed -> (case, v, seed)) seeds)
          Variants.fig11)
      cases
  in
  let results =
    Array.of_list
      (Par_runner.map ~jobs ?on_progress
         (fun (case, v, seed) ->
           let mk () =
             match workload with
             | `Transitive_closure ->
                 Ws_workloads.Graph_workloads.transitive_closure case.graph
                   ~src:0 ~node_work:case.node_work ~edge_work:case.edge_work
                   ()
             | `Spanning_tree ->
                 Ws_workloads.Graph_workloads.spanning_tree case.graph ~src:0
                   ~node_work:case.node_work ~edge_work:case.edge_work ()
           in
           Runner.run_checked machine v ?workers:case.workers ~seed mk)
         points)
  in
  let n_seeds = List.length seeds in
  let n_variants = List.length Variants.fig11 in
  List.mapi
    (fun ci case ->
      let medians =
        List.mapi
          (fun vi v ->
            let runs =
              List.init n_seeds (fun si ->
                  results.(((ci * n_variants) + vi) * n_seeds + si))
            in
            let makespans = List.map fst runs in
            let stolen =
              Stats.mean
                (List.map
                   (fun (_, m) -> Ws_runtime.Metrics.stolen_task_pct m)
                   runs)
            in
            (v.Variants.label, Stats.median makespans, stolen))
          Variants.fig11
      in
      let baseline =
        match medians with (_, m, _) :: _ -> m | [] -> assert false
      in
      {
        case = case.label;
        cells =
          List.map
            (fun (label, m, stolen) ->
              ( label,
                {
                  normalized = 100.0 *. m /. baseline;
                  stolen_pct = stolen;
                  makespan = m;
                } ))
            medians;
      })
    cases

let render rows =
  let labels = List.map (fun v -> v.Variants.label) Variants.fig11 in
  let time_table =
    Tablefmt.render
      ~header:("Input" :: labels)
      (List.map
         (fun r ->
           r.case
           :: List.map
                (fun l -> Tablefmt.pct (List.assoc l r.cells).normalized)
                labels)
         rows)
  in
  let stolen_table =
    Tablefmt.render
      ~header:("Input" :: labels)
      (List.map
         (fun r ->
           r.case
           :: List.map
                (fun l ->
                  Printf.sprintf "%.2f%%" (List.assoc l r.cells).stolen_pct)
                labels)
         rows)
  in
  "(a) run time, normalized to Chase-Lev\n" ^ time_table
  ^ "(b) % of tasks executed by a thief\n" ^ stolen_table

let run ?machine ?repeats ?jobs ?(progress = false) () =
  print_endline
    "== Figure 11: transitive closure vs idempotent work stealing ==";
  let on_progress, finish =
    if progress then
      let cb, fin = Par_runner.grid_progress ~label:"fig11" in
      (Some cb, fin)
    else (None, fun () -> ())
  in
  let rows = compute ?machine ?repeats ?jobs ?on_progress () in
  finish ();
  print_string (render rows)
