(* Deterministic fan-out over OCaml 5 domains.

   Every figure-regeneration experiment is a grid of independent simulator
   runs (workload × variant × seed), each fully self-contained: a fresh
   machine, its own RNG state, its own timing clock. [map] claims grid
   points off a shared atomic cursor and writes results into a slot per
   point, so the caller folds them back in grid order and the rendered
   output is byte-identical to a sequential run — parallelism changes wall
   time only. *)

let map ?(jobs = 1) f xs =
  let n = List.length xs in
  let jobs = max 1 (min jobs n) in
  if jobs = 1 then List.map f xs
  else begin
    let inputs = Array.of_list xs in
    let results = Array.make n None in
    let next = Atomic.make 0 in
    let worker () =
      let rec loop () =
        let i = Atomic.fetch_and_add next 1 in
        if i < n then begin
          (* Capture failures per point and re-raise the first one in grid
             order below, matching the failure a sequential run would hit
             first. *)
          (results.(i) <-
             (match f inputs.(i) with
             | v -> Some (Ok v)
             | exception e -> Some (Error e)));
          loop ()
        end
      in
      loop ()
    in
    let domains = List.init (jobs - 1) (fun _ -> Domain.spawn worker) in
    worker ();
    List.iter Domain.join domains;
    Array.to_list
      (Array.map
         (function
           | Some (Ok v) -> v
           | Some (Error e) -> raise e
           | None -> assert false)
         results)
  end
