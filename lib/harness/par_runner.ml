(* Deterministic fan-out over OCaml 5 domains.

   Every figure-regeneration experiment is a grid of independent simulator
   runs (workload × variant × seed), each fully self-contained: a fresh
   machine, its own RNG state, its own timing clock. [map] claims grid
   points off a shared atomic cursor and writes results into a slot per
   point, so the caller folds them back in grid order and the rendered
   output is byte-identical to a sequential run — parallelism changes wall
   time only. *)

let map ?(jobs = 1) ?on_progress f xs =
  let n = List.length xs in
  let jobs = max 1 (min jobs n) in
  if jobs = 1 then
    let done_ = ref 0 in
    List.map
      (fun x ->
        let v = f x in
        incr done_;
        (match on_progress with
        | None -> ()
        | Some g -> g ~done_count:!done_ ~total:n);
        v)
      xs
  else begin
    let inputs = Array.of_list xs in
    let results = Array.make n None in
    let next = Atomic.make 0 in
    let completed = Atomic.make 0 in
    (* Progress is reported only from the calling domain (the callback need
       not be thread-safe); the completion counter it reads is global, so
       the report covers all domains' work. *)
    let report =
      match on_progress with
      | None -> fun () -> ()
      | Some g -> fun () -> g ~done_count:(Atomic.get completed) ~total:n
    in
    let worker ~main () =
      let rec loop () =
        let i = Atomic.fetch_and_add next 1 in
        if i < n then begin
          (* Capture failures per point and re-raise the first one in grid
             order below, matching the failure a sequential run would hit
             first. *)
          (results.(i) <-
             (match f inputs.(i) with
             | v -> Some (Ok v)
             | exception e -> Some (Error e)));
          Atomic.incr completed;
          if main then report ();
          loop ()
        end
      in
      loop ()
    in
    let domains =
      List.init (jobs - 1) (fun _ -> Domain.spawn (worker ~main:false))
    in
    worker ~main:true ();
    List.iter Domain.join domains;
    Array.to_list
      (Array.map
         (function
           | Some (Ok v) -> v
           | Some (Error e) -> raise e
           | None -> assert false)
         results)
  end

(* [map] with a sharded measurement plane: each domain gets its own
   private Sink shard to accumulate into (zero cross-domain counter
   writes while the grid runs), and the shards are batch-merged into
   [into] at the join — one of the quiescence points of the sharded
   plane. Sink merging is field-wise addition, so the merged totals are
   identical to what a sequential run accumulating straight into [into]
   would produce, whatever the grid-point partition. *)
let map_sharded ?(jobs = 1) ?on_progress ~into f xs =
  let jobs = max 1 (min jobs (List.length xs)) in
  let shards = Telemetry.Shards.create ~n:jobs in
  let sinks = Telemetry.Shards.sinks shards in
  if jobs = 1 then begin
    let r = map ?on_progress (f sinks.(0)) xs in
    Telemetry.Shards.merge ~into shards;
    r
  end
  else begin
    let n = List.length xs in
    let inputs = Array.of_list xs in
    let results = Array.make n None in
    let next = Atomic.make 0 in
    let completed = Atomic.make 0 in
    let report =
      match on_progress with
      | None -> fun () -> ()
      | Some g -> fun () -> g ~done_count:(Atomic.get completed) ~total:n
    in
    let worker ~main sink () =
      let rec loop () =
        let i = Atomic.fetch_and_add next 1 in
        if i < n then begin
          (results.(i) <-
             (match f sink inputs.(i) with
             | v -> Some (Ok v)
             | exception e -> Some (Error e)));
          Atomic.incr completed;
          if main then report ();
          loop ()
        end
      in
      loop ()
    in
    let domains =
      List.init (jobs - 1) (fun j ->
          Domain.spawn (worker ~main:false sinks.(j + 1)))
    in
    worker ~main:true sinks.(0) ();
    List.iter Domain.join domains;
    Telemetry.Shards.merge ~into shards;
    Array.to_list
      (Array.map
         (function
           | Some (Ok v) -> v
           | Some (Error e) -> raise e
           | None -> assert false)
         results)
  end

(* Shared status-line plumbing for the figure grids: a reporter suitable
   for [map]'s [on_progress], plus the finisher that terminates the stderr
   line. Stdout is never touched. *)
let grid_progress ~label =
  let rep = Telemetry.Progress.create ~label () in
  let on_progress ~done_count ~total =
    Telemetry.Progress.sample rep ~count:done_count (fun ~rate ->
        Printf.sprintf "%d/%d runs (%.1f/s)" done_count total rate)
  in
  (on_progress, fun () -> Telemetry.Progress.finish rep)
