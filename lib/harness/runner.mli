(** Shared experiment plumbing: one timed run of a workload on a simulated
    machine under a queue variant. *)

val config :
  Machine_config.t ->
  Variants.t ->
  ?workers:int ->
  seed:int ->
  unit ->
  Ws_runtime.Engine.config
(** Engine configuration for the machine/variant pair ([workers] overrides
    the machine's core count, e.g. Fig. 1's single-threaded runs and the
    torus's 2 threads). *)

val run_dag :
  Machine_config.t ->
  Variants.t ->
  ?workers:int ->
  seeds:int list ->
  ?sink:Telemetry.Sink.t ->
  ?tracer:Telemetry.Chrome_trace.t ->
  ?trace_pid:int ->
  Ws_runtime.Dag.t ->
  name:string ->
  float list
(** Makespans (cycles) over the seeds. Raises [Failure] if a run does not
    reach quiescence or loses/duplicates a task — the experiments must only
    report numbers from provably-complete runs. [sink] accumulates counters
    over every seed's run; [tracer]/[trace_pid] record Chrome-trace spans
    (see {!Ws_runtime.Engine.run_timed}). *)

val exhaustive_check :
  Scenarios.spec ->
  ?max_runs:int ->
  ?max_depth:int ->
  ?preemption_bound:int option ->
  ?jobs:int ->
  ?memo:bool ->
  ?por:bool ->
  ?dpor:bool ->
  ?memo_store:Tso.Memo_store.t ->
  ?sink:Telemetry.Sink.t ->
  ?snapshots:bool ->
  ?progress:bool ->
  unit ->
  Tso.Explore.stats * bool
(** Bounded exhaustive model checking of a queue scenario, optionally
    memoized ([memo], persistently via [memo_store]), reduced with sleep
    sets ([por]) or source-DPOR ([dpor], implies [por]), and fanned out
    across domains ([jobs]). [snapshots] selects snapshot-based sibling
    exploration (default) vs replay-from-root. [sink] receives the
    work-stealing frontier counters. With [progress], a live
    nodes-per-second status line is maintained on stderr. Returns the
    explorer statistics and a clean-verdict flag: no failure found and no
    run truncated by the depth bound. *)

val exhaustive_check_full :
  Scenarios.spec ->
  ?max_runs:int ->
  ?max_depth:int ->
  ?preemption_bound:int option ->
  ?jobs:int ->
  ?memo:bool ->
  ?por:bool ->
  ?dpor:bool ->
  ?memo_store:Tso.Memo_store.t ->
  ?sink:Telemetry.Sink.t ->
  ?snapshots:bool ->
  ?progress:bool ->
  unit ->
  Tso.Explore.stats * Tso.Explore_par.frontier_stats * bool
(** {!exhaustive_check} plus the work-stealing frontier distribution
    record (trivial single-domain record when [jobs = 1]). *)

val forensics_report :
  Scenarios.spec ->
  ?progress:bool ->
  ?sink:Telemetry.Sink.t ->
  choices:int list ->
  message:string ->
  unit ->
  (Forensics.Report.t, string) result
(** Full counterexample forensics for one recorded failure of a scenario:
    ddmin-minimize the choice sequence (oracle: replay on a fresh
    {!Scenarios.instance} must reproduce [message]), then replay the
    minimized schedule with reorder-witness extraction. The report's
    [config] is {!Scenarios.spec_json}. With [progress], a live shrink
    status line is maintained on stderr. *)

val run_checked :
  Machine_config.t ->
  Variants.t ->
  ?workers:int ->
  seed:int ->
  (unit -> Ws_workloads.Graph_workloads.checked) ->
  float * Ws_runtime.Metrics.t
(** One run of a self-verifying (graph) workload: makespan and metrics.
    Raises [Failure] if the run fails verification. *)
