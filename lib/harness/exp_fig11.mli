(** Figure 11: transitive closure (and spanning tree) on the three graph
    inputs, comparing FF-CL and the idempotent queues against Chase-Lev.

    (a) run time normalized to Chase-Lev — all fence-free queues comparable,
    the torus benefiting most; (b) percentage of work completed by stealing —
    tiny for every queue, which is the paper's argument for optimising the
    worker's path. The torus runs at 2 workers (the paper's programs do not
    scale past 2 there); the other graphs at full parallelism. *)

type graph_case = {
  label : string;
  graph : Ws_workloads.Graph.t;
  workers : int option;  (** override, e.g. torus at 2 *)
  node_work : int;  (** cycles per visited node *)
  edge_work : int;  (** cycles per scanned edge *)
}

type cell = { normalized : float; stolen_pct : float; makespan : float }

type row = { case : string; cells : (string * cell) list }

val default_cases : unit -> graph_case list
(** K-graph (10k nodes, k=3), random (10k nodes, 30k edges), torus (2400
    nodes as in the paper, 2 workers) — scaled from the paper's 2M-node
    inputs. *)

val compute :
  ?machine:Machine_config.t ->
  ?repeats:int ->
  ?cases:graph_case list ->
  ?workload:[ `Transitive_closure | `Spanning_tree ] ->
  ?jobs:int ->
  ?on_progress:(done_count:int -> total:int -> unit) ->
  unit ->
  row list
(** [jobs] fans the (case × variant × seed) grid across OCaml 5 domains via
    {!Par_runner.map}; rows are folded back in grid order, byte-identical
    to a sequential run. Default 1. [on_progress] as in {!Par_runner.map}. *)

val render : row list -> string

val run :
  ?machine:Machine_config.t ->
  ?repeats:int ->
  ?jobs:int ->
  ?progress:bool ->
  unit ->
  unit
(** [progress] maintains a live status line on stderr (stdout unchanged). *)
