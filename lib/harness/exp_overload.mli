(** Heavy-traffic overload sweep: a scenario run at 1x/2x/4x its offered
    load on the timing model and (optionally) the native pool, tail
    latencies side by side, written as a [wsrepro-overload/v1] report.
    Surfaced as [wsrepro scenario]. The sim sweep fans out with
    {!Par_runner.map_sharded}, so the report's queue counters come out of
    the sharded measurement plane merged at the join. *)

val schema : string
(** ["wsrepro-overload/v1"] *)

val default_factors : float list
(** [[1.0; 2.0; 4.0]] *)

type point = {
  ov_label : string;  (** "1x", "2x", ... *)
  ov_offered : float;  (** arrivals per 1000 ticks after scaling *)
  ov_sim : Ws_runtime.Open_system.report;
  ov_native : Exp_native.scenario_result option;
}

val scale_spec : Scenarios.open_spec -> float -> Scenarios.open_spec
(** Multiply the arrival rate(s) by the factor — same seed, same service
    mix, denser arrivals. Burst switching probabilities are untouched. *)

val sim_point :
  ?sink:Telemetry.Sink.t ->
  Scenarios.open_spec ->
  Ws_runtime.Open_system.report
(** One timing-model run of the scenario ({!Scenarios.open_config} +
    {!Ws_runtime.Open_system.run}). *)

val run :
  ?factors:float list ->
  ?native:bool ->
  ?jobs:int ->
  ?sink:Telemetry.Sink.t ->
  Scenarios.open_spec ->
  point list
(** The sweep. Sim points fan out over [jobs] domains; with [sink] each
    domain accumulates into a private shard, merged into [sink] at the
    join. Native points (when [native]) run strictly one at a time after
    the sim sweep — each owns its worker domains, and overlapping pools
    would corrupt the tail latencies being measured. *)

val report_json :
  ?sink:Telemetry.Sink.t ->
  ?slo_ok:bool ->
  Scenarios.open_spec ->
  point list ->
  Telemetry.Json.value
(** Byte-stable report: schema tag, the scenario (round-trippable through
    {!Scenarios.open_spec_of_json}), per-point sim/native blocks (the sim
    block carries stage p99s and the sojourn/qwait window series), the SLO
    outcome when one was judged, and — with [sink] — the merged queue
    counters. *)

val validate : Telemetry.Json.value -> (unit, string) result
(** Structural check for [wsrepro json-check]: schema tag, valid embedded
    scenario, non-empty points, per-point completed = injected, monotone
    p50 <= p99 <= p999 (sim and native), non-negative stage p99s, and
    window series with strictly increasing window indices. *)

val verdicts : Scenarios.slo -> point list -> Scenarios.verdict list
(** Judge every sweep point: the per-window sojourn p99 budget against
    each retained window of the point's sojourn ring, stage budgets
    against whole-run stage p99s, the drop budget against
    dropped/offered. Deterministic, hence cram-lockable. *)

val render : point list -> string
(** The sim-vs-native comparison table. Units stay per-engine (ticks vs
    microseconds): the comparison is of shapes — tail growth, drop onset —
    not absolute values. *)

val section :
  ?factors:float list ->
  ?native:bool ->
  ?jobs:int ->
  ?out:string ->
  Scenarios.open_spec ->
  unit ->
  bool
(** CLI body: run the sweep, print the table (plus the SLO verdict table
    when the scenario carries an [slo] block), and with [out] write the
    [wsrepro-overload/v1] report (queue counters included). Returns false
    iff an SLO budget was violated — the CLI exit status. *)
