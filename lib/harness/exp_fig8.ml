type t = {
  s_assumed : int;
  cells : Ws_litmus.Grid.cell list;
}

(* The machine under test: 32 architectural entries plus the coalescing
   egress entry B, so the true observable bound is 33 — except for
   consecutive same-address stores (L = 0), where it is unbounded. *)
let real_bound sb_capacity = sb_capacity + 1

let ceil_div a b = (a + b - 1) / b

let compute ?(sb_capacity = 32) ?(runs_per_l = 40) ?(tasks = 192) ?(max_l = 32)
    ?(seed = 7) ?(jobs = 1) ?on_progress ~s_assumed () =
  (* The same (α, δ) cell enumeration as {!Ws_litmus.Grid.campaign}, but
     with each cell as an independent grid point for {!Par_runner.map}:
     every litmus run builds its own machine and RNG from the cell's seed,
     so cell results (and their order) match the sequential campaign
     exactly. *)
  let specs =
    List.concat_map
      (fun (alpha, l_values) ->
        List.filter_map
          (fun off ->
            let delta = alpha + off in
            if delta < 1 then None else Some (alpha, l_values, delta))
          [ -1; 0; 1 ])
      (Ws_litmus.Grid.alpha_groups ~s_assumed ~max_l)
  in
  let cells =
    Par_runner.map ~jobs ?on_progress
      (fun (alpha, l_values, delta) ->
        Ws_litmus.Grid.run_cell ~tasks ~runs_per_l ~sb_capacity ~coalesce:true
          ~s_assumed ~alpha ~l_values ~delta ~seed ())
      specs
  in
  { s_assumed; cells }

let expected_incorrect t (c : Ws_litmus.Grid.cell) =
  (* we always test the 32-entry + B machine *)
  let bound = real_bound 32 in
  ignore t;
  List.exists
    (fun l -> l = 0 || c.Ws_litmus.Grid.delta < ceil_div bound (l + 1))
    c.Ws_litmus.Grid.l_values

let render t =
  let abbrev ls =
    match ls with
    | [ l ] -> string_of_int l
    | l :: _ ->
        Printf.sprintf "%d..%d (%d)" l
          (List.nth ls (List.length ls - 1))
          (List.length ls)
    | [] -> "-"
  in
  let rows =
    List.map
      (fun (c : Ws_litmus.Grid.cell) ->
        let unsafe = expected_incorrect t c in
        let got = c.incorrect > 0 in
        [
          string_of_int c.alpha;
          string_of_int c.delta;
          abbrev c.l_values;
          Printf.sprintf "%d/%d" c.incorrect c.runs;
          (if unsafe then "unsafe" else "safe");
          (match (unsafe, got) with
          | true, true -> "violation found"
          | true, false -> "(not triggered)"
          | false, false -> "ok"
          | false, true -> "** UNEXPECTED VIOLATION **");
        ])
      t.cells
  in
  Printf.sprintf "-- assuming S = %d --\n" t.s_assumed
  ^ Tablefmt.render
      ~header:[ "alpha"; "delta"; "L values"; "incorrect"; "model says"; "verdict" ]
      rows

(* A compact picture in the spirit of the paper's scatter plot: rows are
   delta (relative to alpha), columns are the alpha groups; '#' = violation
   found, '.' = all runs correct, cells above the delta = alpha diagonal
   should be '.' when the assumed S is the true bound. *)
let render_grid t =
  let alphas =
    List.sort_uniq (fun a b -> compare b a)
      (List.map (fun c -> c.Ws_litmus.Grid.alpha) t.cells)
  in
  let offsets = [ 1; 0; -1 ] in
  let buf = Buffer.create 512 in
  Buffer.add_string buf "        alpha: ";
  List.iter (fun a -> Buffer.add_string buf (Printf.sprintf "%3d" a)) alphas;
  Buffer.add_char buf '\n';
  List.iter
    (fun off ->
      Buffer.add_string buf
        (Printf.sprintf "delta = alpha%s " (match off with
          | 0 -> "  "
          | 1 -> "+1"
          | _ -> "-1"));
      List.iter
        (fun a ->
          let cell =
            List.find_opt
              (fun c ->
                c.Ws_litmus.Grid.alpha = a && c.Ws_litmus.Grid.delta = a + off)
              t.cells
          in
          Buffer.add_string buf
            (match cell with
            | None -> "  ?"
            | Some c -> if c.Ws_litmus.Grid.incorrect > 0 then "  #" else "  ."))
        alphas;
      Buffer.add_char buf '\n')
    offsets;
  Buffer.contents buf

let run ?runs_per_l ?tasks ?jobs ?(progress = false) () =
  print_endline "== Figure 8: litmus campaign against the bounded-TSO model ==";
  print_endline
    "(machine under test: 32-entry store buffer + coalescing egress entry B)";
  List.iter
    (fun s_assumed ->
      let on_progress, finish =
        if progress then
          let cb, fin =
            Par_runner.grid_progress
              ~label:(Printf.sprintf "fig8 S=%d" s_assumed)
          in
          (Some cb, fin)
        else (None, fun () -> ())
      in
      let t = compute ?runs_per_l ?tasks ?jobs ?on_progress ~s_assumed () in
      finish ();
      print_string (render t);
      print_endline "(# = incorrect execution found, . = none)";
      print_string (render_grid t))
    [ 32; 33 ]
