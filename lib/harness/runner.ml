let config (m : Machine_config.t) (v : Variants.t) ?workers ~seed () =
  {
    Ws_runtime.Engine.default_config with
    workers = Option.value ~default:m.Machine_config.workers workers;
    queue = Ws_core.Registry.find v.Variants.queue;
    delta = v.Variants.delta_of m;
    worker_fence = v.Variants.worker_fence;
    sb_capacity = m.Machine_config.reorder_bound;
    costs = m.Machine_config.costs;
    seed;
  }

let check_result label (r : Ws_runtime.Engine.result) =
  (match r.outcome with
  | Tso.Sched.Quiescent -> ()
  | Tso.Sched.Max_steps -> failwith (label ^ ": run exceeded the step budget")
  | Tso.Sched.Deadlock -> failwith (label ^ ": deadlock"));
  if r.lost > 0 then failwith (Printf.sprintf "%s: %d tasks lost" label r.lost)

let makespan (r : Ws_runtime.Engine.result) =
  match r.timing with
  | Some t -> float_of_int t.Tso.Timing.makespan
  | None -> invalid_arg "Runner.makespan: not a timed run"

let run_dag m v ?workers ~seeds ?sink ?tracer ?trace_pid dag ~name =
  List.map
    (fun seed ->
      let cfg = config m v ?workers ~seed () in
      let wl = Ws_runtime.Dag.instantiate dag ~name in
      let r = Ws_runtime.Engine.run_timed ?sink ?tracer ?trace_pid cfg wl in
      let label = Printf.sprintf "%s/%s/%s" m.name v.Variants.label name in
      check_result label r;
      if r.duplicates > 0 then
        failwith (Printf.sprintf "%s: %d tasks duplicated" label r.duplicates);
      makespan r)
    seeds

let exhaustive_check_full spec ?max_runs ?max_depth ?preemption_bound ?jobs
    ?memo ?por ?dpor ?memo_store ?sink ?snapshots ?progress () =
  let st, frontier =
    Scenarios.explore_check_full spec ?max_runs ?max_depth ?preemption_bound
      ?jobs ?memo ?por ?dpor ?memo_store ?sink ?snapshots ?progress ()
  in
  (st, frontier, st.Tso.Explore.failures = [] && st.Tso.Explore.truncated = 0)

let exhaustive_check spec ?max_runs ?max_depth ?preemption_bound ?jobs ?memo
    ?por ?dpor ?memo_store ?sink ?snapshots ?progress () =
  let st, _, clean =
    exhaustive_check_full spec ?max_runs ?max_depth ?preemption_bound ?jobs
      ?memo ?por ?dpor ?memo_store ?sink ?snapshots ?progress ()
  in
  (st, clean)

let forensics_report spec ?(progress = false) ?sink ~choices ~message () =
  let reporter =
    if progress then Some (Telemetry.Progress.create ~label:"shrink" ())
    else None
  in
  let r =
    Forensics.Report.build ?sink ?progress:reporter
      ~mk:(Scenarios.instance spec)
      ~config:(Scenarios.spec_json spec)
      ~choices ~message ()
  in
  Option.iter (fun rep -> Telemetry.Progress.finish rep) reporter;
  r

let run_checked m v ?workers ~seed mk =
  let cfg = config m v ?workers ~seed () in
  let checked = mk () in
  let r = Ws_runtime.Engine.run_timed cfg checked.Ws_workloads.Graph_workloads.workload in
  let label =
    Printf.sprintf "%s/%s/%s" m.name v.Variants.label
      checked.Ws_workloads.Graph_workloads.workload.Ws_runtime.Workload.name
  in
  check_result label r;
  (match checked.Ws_workloads.Graph_workloads.verify () with
  | Ok () -> ()
  | Error msg -> failwith (label ^ ": " ^ msg));
  (makespan r, r.metrics)
