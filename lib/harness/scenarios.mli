(** Small worker/thief scenarios over a single queue, packaged as
    {!Tso.Explore.instance}s so they can be driven three ways: exhaustively
    (bounded model checking), by random schedules (litmus-style), or replayed
    from a failing choice sequence. Used by the [check]/[explore] CLI
    commands and throughout the test suite. *)

type spec = {
  queue : string;  (** registry name *)
  sb_capacity : int;
  buffer_model : Tso.Store_buffer.model;
  delta : int;
  worker_fence : bool;
  preloaded : int;  (** items in the queue at the start *)
  puts : int;  (** items the worker puts before it starts taking *)
  steal_attempts : int;  (** thief tries, each counted even on Abort/Empty *)
  thieves : int;
  client_stores : int;  (** worker stores between takes *)
}

val default_spec : spec
(** ff-the on TSO[2], δ=1, 2 preloaded, 1 put, 1 thief with 2 attempts —
    small enough to explore exhaustively. *)

val spec_json : spec -> (string * Telemetry.Json.value) list
(** The spec as JSON fields, for embedding in a forensics report's
    [config] object. Deterministic field order. *)

val instance : spec -> unit -> Tso.Explore.instance
(** Fresh machine + threads + safety check. The check verifies, at
    quiescence: no task extracted twice (unless the queue is idempotent), no
    task lost (worker drains to Empty), and no Abort from queues that must
    not abort. *)

val random_check :
  spec -> seeds:int list -> ?drain_weight:float -> unit -> (unit, string) result
(** Run the scenario once per seed under adversarial random scheduling;
    first failure wins. *)

val explore_check :
  spec ->
  ?max_runs:int ->
  ?max_depth:int ->
  ?preemption_bound:int option ->
  ?jobs:int ->
  ?memo:bool ->
  ?por:bool ->
  ?dpor:bool ->
  ?memo_store:Tso.Memo_store.t ->
  ?sink:Telemetry.Sink.t ->
  ?snapshots:bool ->
  ?progress:bool ->
  unit ->
  Tso.Explore.stats
(** Bounded exhaustive exploration of the scenario. [jobs > 1] fans the
    search out across domains ({!Tso.Explore_par}); [memo] enables the
    visited-state cache; [por] enables sleep-set partial-order reduction
    (same verdicts and failure prefixes, far fewer runs); [dpor] adds
    source-DPOR race reversal on top ([dpor] implies [por]); [memo_store]
    backs the memo cache with a persistent on-disk store; [sink] receives
    the frontier counters; [snapshots] selects snapshot-based sibling
    exploration (default) vs replay-from-root. With [progress] a live
    status line (runs/s, depth frontier, memo hit rate; per-domain subtree
    balance when parallel) is maintained on stderr. Defaults: [jobs = 1],
    [memo = false], [por = false], [dpor = false], [snapshots = true],
    [progress = false]. *)

(** {1 Open-system scenarios}

    One JSON description ([wsrepro-scenario/v1]) drives both engines: the
    timing model replays the pre-drawn load plan in simulated ticks, the
    native pool replays the {e same} plan with ticks mapped to wall time
    through [sc_tick_ns]. Parsing is strict: unknown fields are rejected
    (top level and inside the nested arrival/service objects), so a
    typo'd knob fails loudly instead of silently running a default. *)

(** Service-level objective for a scenario, all budgets in simulated
    ticks (the native replay converts through [sc_tick_ns]).
    [slo_p99_sojourn] is judged against the p99 of {e each} retained
    window of the sojourn ring; the stage budgets against the whole-run
    stage p99s; [slo_max_drop_rate] against dropped/offered. JSON form:
    [slo: {p99_sojourn, max_drop_rate,
    stage_budgets: {qwait, dispatch, service}, window, windows}], every
    budget optional (absent = not judged). *)
type slo = {
  slo_p99_sojourn : int option;  (** per-window p99 budget, ticks *)
  slo_max_drop_rate : float option;  (** dropped / offered, in [0, 1] *)
  slo_qwait_p99 : int option;  (** whole-run stage p99 budgets, ticks *)
  slo_dispatch_p99 : int option;
  slo_service_p99 : int option;
  slo_window : int;  (** window width, ticks *)
  slo_window_slots : int;  (** windows retained (and judged) *)
}

val default_slo : slo
(** No budgets (nothing judged), 8192-tick windows, 16 retained. *)

type open_spec = {
  sc_name : string;
  sc_queue : string;  (** registry name *)
  sc_workers : int;
  sc_requests : int;
  sc_chain : int;  (** dependent stages per request *)
  sc_seed : int;
  sc_capacity : int;  (** injector backpressure bound *)
  sc_policy : Ws_runtime.Open_load.policy;
  sc_tick_ns : int;  (** native runner: wall nanoseconds per tick *)
  sc_arrival : Ws_runtime.Open_load.arrival;
  sc_service : Ws_runtime.Open_load.service;
  sc_slo : slo option;  (** absent: no verdicts, default windowing *)
}

val open_schema : string
(** ["wsrepro-scenario/v1"] *)

val default_open_spec : open_spec
(** 3 ff-the workers, Poisson 2.0/ktick, exponential 400-tick services in
    3 stages, capacity 64, block, 50 ns/tick. *)

val open_spec_json : open_spec -> Telemetry.Json.value
(** Byte-stable emission (deterministic field order, fixed float format):
    emit → parse → emit is the identity on bytes. *)

val open_spec_of_json :
  Telemetry.Json.value -> (open_spec, string) result
(** Strict parse + validation: schema tag must match {!open_schema},
    unknown fields are rejected everywhere, the queue must exist in the
    registry, counts must be >= 1, rates > 0 and probabilities in [0, 1].
    Every field except [schema] is optional and defaults from
    {!default_open_spec}. *)

val load_open_spec : string -> (open_spec, string) result
(** {!open_spec_of_json} over a file, with the path prefixed to errors. *)

(** One judged SLO budget: a per-window sojourn row, a whole-run stage
    row, or the drop-rate row. Shared by the sim sweep (budgets in ticks)
    and the native replay (converted to ns) so both print the same table
    shape. *)
type verdict = {
  vd_load : string;  (** sweep point label, ["-"] for a single run *)
  vd_window : string;  (** window index, ["-"] for whole-run budgets *)
  vd_metric : string;
  vd_actual : string;
  vd_budget : string;
  vd_ok : bool;
}

val verdicts_ok : verdict list -> bool

val render_verdicts : name:string -> units:string -> verdict list -> string
(** Verdict table plus a final [SLO: PASS] / [SLO: FAIL (n violations)]
    line. Deterministic given deterministic rows. *)

val open_config : open_spec -> Ws_runtime.Open_system.config
(** The spec as a timing-model open-system config (native-only fields
    like [sc_tick_ns] do not appear; engine knobs not in the DSL keep
    {!Ws_runtime.Open_system.default_config} values). *)

val explore_check_full :
  spec ->
  ?max_runs:int ->
  ?max_depth:int ->
  ?preemption_bound:int option ->
  ?jobs:int ->
  ?memo:bool ->
  ?por:bool ->
  ?dpor:bool ->
  ?memo_store:Tso.Memo_store.t ->
  ?sink:Telemetry.Sink.t ->
  ?snapshots:bool ->
  ?progress:bool ->
  unit ->
  Tso.Explore.stats * Tso.Explore_par.frontier_stats
(** {!explore_check} plus the work-stealing frontier distribution record
    (trivial single-domain record when [jobs = 1]). *)
