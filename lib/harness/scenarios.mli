(** Small worker/thief scenarios over a single queue, packaged as
    {!Tso.Explore.instance}s so they can be driven three ways: exhaustively
    (bounded model checking), by random schedules (litmus-style), or replayed
    from a failing choice sequence. Used by the [check]/[explore] CLI
    commands and throughout the test suite. *)

type spec = {
  queue : string;  (** registry name *)
  sb_capacity : int;
  buffer_model : Tso.Store_buffer.model;
  delta : int;
  worker_fence : bool;
  preloaded : int;  (** items in the queue at the start *)
  puts : int;  (** items the worker puts before it starts taking *)
  steal_attempts : int;  (** thief tries, each counted even on Abort/Empty *)
  thieves : int;
  client_stores : int;  (** worker stores between takes *)
}

val default_spec : spec
(** ff-the on TSO[2], δ=1, 2 preloaded, 1 put, 1 thief with 2 attempts —
    small enough to explore exhaustively. *)

val spec_json : spec -> (string * Telemetry.Json.value) list
(** The spec as JSON fields, for embedding in a forensics report's
    [config] object. Deterministic field order. *)

val instance : spec -> unit -> Tso.Explore.instance
(** Fresh machine + threads + safety check. The check verifies, at
    quiescence: no task extracted twice (unless the queue is idempotent), no
    task lost (worker drains to Empty), and no Abort from queues that must
    not abort. *)

val random_check :
  spec -> seeds:int list -> ?drain_weight:float -> unit -> (unit, string) result
(** Run the scenario once per seed under adversarial random scheduling;
    first failure wins. *)

val explore_check :
  spec ->
  ?max_runs:int ->
  ?max_depth:int ->
  ?preemption_bound:int option ->
  ?jobs:int ->
  ?memo:bool ->
  ?por:bool ->
  ?dpor:bool ->
  ?memo_store:Tso.Memo_store.t ->
  ?sink:Telemetry.Sink.t ->
  ?snapshots:bool ->
  ?progress:bool ->
  unit ->
  Tso.Explore.stats
(** Bounded exhaustive exploration of the scenario. [jobs > 1] fans the
    search out across domains ({!Tso.Explore_par}); [memo] enables the
    visited-state cache; [por] enables sleep-set partial-order reduction
    (same verdicts and failure prefixes, far fewer runs); [dpor] adds
    source-DPOR race reversal on top ([dpor] implies [por]); [memo_store]
    backs the memo cache with a persistent on-disk store; [sink] receives
    the frontier counters; [snapshots] selects snapshot-based sibling
    exploration (default) vs replay-from-root. With [progress] a live
    status line (runs/s, depth frontier, memo hit rate; per-domain subtree
    balance when parallel) is maintained on stderr. Defaults: [jobs = 1],
    [memo = false], [por = false], [dpor = false], [snapshots = true],
    [progress = false]. *)

val explore_check_full :
  spec ->
  ?max_runs:int ->
  ?max_depth:int ->
  ?preemption_bound:int option ->
  ?jobs:int ->
  ?memo:bool ->
  ?por:bool ->
  ?dpor:bool ->
  ?memo_store:Tso.Memo_store.t ->
  ?sink:Telemetry.Sink.t ->
  ?snapshots:bool ->
  ?progress:bool ->
  unit ->
  Tso.Explore.stats * Tso.Explore_par.frontier_stats
(** {!explore_check} plus the work-stealing frontier distribution record
    (trivial single-domain record when [jobs = 1]). *)
