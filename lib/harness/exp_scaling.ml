type row = {
  workers : int;
  the_makespan : float;
  the_speedup : float;
  thep_makespan : float;
  thep_speedup : float;
  thep_vs_the_pct : float;
}

let thep_variant =
  {
    Variants.label = "THEP d=4";
    queue = "thep";
    delta_of = (fun _ -> 4);
    worker_fence = false;
  }

let compute ?(machine = Machine_config.westmere_ex) ?(bench = "Fib")
    ?workers_list ?(seed = 23) ?(jobs = 1) () =
  let workers_list =
    match workers_list with
    | Some l -> l
    | None ->
        List.filter
          (fun w -> w <= machine.Machine_config.workers)
          [ 1; 2; 4; 6; 8; 10 ]
  in
  let b = Ws_workloads.Cilk_suite.find bench in
  let dag = Ws_workloads.Cilk_suite.dag b in
  (* Grid points: the two single-worker baselines, then (THE, THEP) per
     worker count — all independent timed runs. *)
  let points =
    (Variants.the_baseline, 1) :: (thep_variant, 1)
    :: List.concat_map
         (fun w -> [ (Variants.the_baseline, w); (thep_variant, w) ])
         workers_list
  in
  let results =
    Array.of_list
      (Par_runner.map ~jobs
         (fun (variant, workers) ->
           List.hd
             (Runner.run_dag machine variant ~workers ~seeds:[ seed ] dag
                ~name:bench))
         points)
  in
  let the1 = results.(0) in
  let thep1 = results.(1) in
  List.mapi
    (fun i workers ->
      let the = results.(2 + (2 * i)) in
      let thep = results.(3 + (2 * i)) in
      {
        workers;
        the_makespan = the;
        the_speedup = the1 /. the;
        thep_makespan = thep;
        thep_speedup = thep1 /. thep;
        thep_vs_the_pct = 100.0 *. thep /. the;
      })
    workers_list

let render rows =
  Tablefmt.render
    ~header:
      [ "workers"; "THE (cyc)"; "speedup"; "THEP d=4 (cyc)"; "speedup"; "THEP vs THE" ]
    (List.map
       (fun r ->
         [
           string_of_int r.workers;
           Printf.sprintf "%.0f" r.the_makespan;
           Printf.sprintf "%.2fx" r.the_speedup;
           Printf.sprintf "%.0f" r.thep_makespan;
           Printf.sprintf "%.2fx" r.thep_speedup;
           Tablefmt.pct r.thep_vs_the_pct;
         ])
       rows)

let run ?(machine = Machine_config.westmere_ex) ?(bench = "Fib") ?jobs () =
  Printf.printf "== Scaling: %s on %s, 1..%d workers ==\n" bench
    machine.Machine_config.name machine.Machine_config.workers;
  print_string (render (compute ~machine ~bench ?jobs ()))
