(** Figure 8: the TSO[S] litmus campaign (§7.3). Runs the Fig. 9 program over
    (L, δ) pairs on a machine with a 32-entry buffer plus the coalescing
    egress entry B, then interprets the outcomes under an assumed bound S.

    - [s_assumed = 32] (Fig. 8a): δ = α cells fail exactly where (L+1)
      divides 32 — refuting TSO[32];
    - [s_assumed = 33] (Fig. 8b): everything at δ ≥ α is correct except the
      L = 0 column, where same-address coalescing makes reordering
      unbounded. *)

type t = {
  s_assumed : int;
  cells : Ws_litmus.Grid.cell list;
}

val compute :
  ?sb_capacity:int ->
  ?runs_per_l:int ->
  ?tasks:int ->
  ?max_l:int ->
  ?seed:int ->
  ?jobs:int ->
  ?on_progress:(done_count:int -> total:int -> unit) ->
  s_assumed:int ->
  unit ->
  t
(** [jobs] fans the grid's (α, δ) cells across OCaml 5 domains via
    {!Par_runner.map}; cell order and contents match the sequential
    campaign exactly. Default 1. [on_progress] as in {!Par_runner.map}. *)

val render : t -> string

val render_grid : t -> string
(** Compact '#'/'.' picture in the spirit of the paper's scatter plot. *)

val expected_incorrect : t -> Ws_litmus.Grid.cell -> bool
(** The paper's prediction for a cell, used both in rendering (to flag
    mismatches) and by the test suite. *)

val run :
  ?runs_per_l:int -> ?tasks:int -> ?jobs:int -> ?progress:bool -> unit -> unit
(** Both campaigns (8a then 8b). [progress] maintains a live status line
    on stderr (stdout is unchanged). *)
