(** Worker-count scaling: speedup curves for the fenced baseline vs THEP
    from 1 to the machine's core count. Not a paper figure, but the sanity
    check behind Fig. 10's setup — the simulated runtime must actually scale
    before normalized comparisons mean anything, and the fence-free
    advantage should persist (not grow or shrink pathologically) across
    worker counts. *)

type row = {
  workers : int;
  the_makespan : float;
  the_speedup : float;  (** vs the 1-worker THE run *)
  thep_makespan : float;
  thep_speedup : float;
  thep_vs_the_pct : float;
}

val compute :
  ?machine:Machine_config.t ->
  ?bench:string ->
  ?workers_list:int list ->
  ?seed:int ->
  ?jobs:int ->
  unit ->
  row list
(** [jobs] fans the (variant × worker count) runs across OCaml 5 domains
    via {!Par_runner.map}; rows are byte-identical to a sequential run.
    Default 1. *)

val render : row list -> string
val run : ?machine:Machine_config.t -> ?bench:string -> ?jobs:int -> unit -> unit
