(** Silicon cross-check: the simulator's fib / graph workloads re-run on
    the native OCaml 5 work-stealing pool ({!Ws_native.Pool}), plus an
    open-system service benchmark (Poisson arrivals through the injector,
    request chains, sojourn-latency percentiles) that only the native pool
    can host. Surfaced as [wsrepro native]. *)

type native_point = {
  tasks : int;
  seconds : float;
  tasks_per_sec : float;
}

type parity_row = {
  workload : string;
  sim_tasks : int;
  sim_makespan : float;  (** simulated cycles *)
  sim_tasks_per_mcycle : float;
  native : native_point;
}

type service_result = {
  requests : int;
  completed : int;
  rate : float;  (** offered load, requests/s *)
  elapsed : float;
  throughput_rps : float;
  p50_ns : int;
  p99_ns : int;
  p999_ns : int;
  sojourn : Telemetry.Histogram.t;
  steals : int;
  injector_runs : int;
  parks : int;
}

val native_fib :
  ?domains:int ->
  ?backend:Ws_native.Pool.backend ->
  ?policy:Ws_native.Pool.victim_policy ->
  ?steal_half:bool ->
  n:int ->
  unit ->
  native_point

val native_graph :
  ?domains:int ->
  ?backend:Ws_native.Pool.backend ->
  ?policy:Ws_native.Pool.victim_policy ->
  ?steal_half:bool ->
  nodes:int ->
  edges:int ->
  seed:int ->
  unit ->
  native_point
(** Pool-side single-source reachability; the visited set is verified
    against a host BFS before the timing is returned. *)

val parity :
  ?machine:Machine_config.t ->
  ?domains:int ->
  ?backend:Ws_native.Pool.backend ->
  ?policy:Ws_native.Pool.victim_policy ->
  ?steal_half:bool ->
  ?fib_n:int ->
  ?graph_nodes:int ->
  ?graph_edges:int ->
  ?seed:int ->
  unit ->
  parity_row list

val render_parity : parity_row list -> string

val service :
  ?domains:int ->
  ?backend:Ws_native.Pool.backend ->
  ?policy:Ws_native.Pool.victim_policy ->
  ?steal_half:bool ->
  ?rate:float ->
  ?requests:int ->
  ?chain:int ->
  ?work:int ->
  ?seed:int ->
  unit ->
  service_result
(** Submits [requests] request chains from the calling (non-worker) domain
    on an absolute Poisson schedule at [rate] arrivals/s; each request is a
    chain of [chain] dependent stages of [work] spin iterations. Sojourn
    time (arrival to last stage) feeds the returned histogram. *)

val render_service : service_result -> string

val run :
  ?machine:Machine_config.t ->
  ?domains:int ->
  ?backend:Ws_native.Pool.backend ->
  ?policy:Ws_native.Pool.victim_policy ->
  ?steal_half:bool ->
  ?fib_n:int ->
  ?graph_nodes:int ->
  ?graph_edges:int ->
  ?rate:float ->
  ?requests:int ->
  ?chain:int ->
  ?work:int ->
  ?seed:int ->
  unit ->
  unit
(** Print both sections (parity table, then service benchmark). *)
