(** Silicon cross-check: the simulator's fib / graph workloads re-run on
    the native OCaml 5 work-stealing pool ({!Ws_native.Pool}), plus an
    open-system service benchmark (Poisson arrivals through the injector,
    request chains, sojourn-latency percentiles) that only the native pool
    can host. Surfaced as [wsrepro native]. *)

type native_point = {
  tasks : int;
  seconds : float;
  tasks_per_sec : float;
}

type parity_row = {
  workload : string;
  sim_tasks : int;
  sim_makespan : float;  (** simulated cycles *)
  sim_tasks_per_mcycle : float;
  native : native_point;
}

type service_result = {
  requests : int;
  completed : int;
  rate : float;  (** offered load, requests/s *)
  elapsed : float;
  throughput_rps : float;
  p50_ns : int;
  p99_ns : int;
  p999_ns : int;
  sojourn : Telemetry.Histogram.t;
  steals : int;
  injector_runs : int;
  parks : int;
  st_qwait : Telemetry.Histogram.t;
      (** arrival-to-inject ns, per cell (empty unless [~attribution]) *)
  st_dispatch : Telemetry.Histogram.t;
      (** inject-to-dequeue ns (empty unless [~attribution]) *)
  st_service : Telemetry.Histogram.t;
      (** dequeue-to-completion ns (empty unless [~attribution]) *)
  st_windows : Telemetry.Windowed.t;
      (** rotating per-cell sojourn windows (empty unless [~attribution]) *)
  st_steal_delay : Telemetry.Histogram.t;
      (** spawn-to-stolen-run ns from the flight-recorder lineage join
          (empty unless [~flight]) *)
}

val steal_delay_of_flight :
  Telemetry.Flight_recorder.t -> Telemetry.Histogram.t
(** Join the recorder's reconstructed lineages with their run records and
    histogram [run_ts - spawn_ts] over the [Stolen] ones: how long each
    migrated task waited between its victim-side spawn and its thief-side
    dequeue. *)

val native_fib :
  ?domains:int ->
  ?backend:Ws_native.Pool.backend ->
  ?policy:Ws_native.Pool.victim_policy ->
  ?steal_half:bool ->
  n:int ->
  unit ->
  native_point

val native_graph :
  ?domains:int ->
  ?backend:Ws_native.Pool.backend ->
  ?policy:Ws_native.Pool.victim_policy ->
  ?steal_half:bool ->
  nodes:int ->
  edges:int ->
  seed:int ->
  unit ->
  native_point
(** Pool-side single-source reachability; the visited set is verified
    against a host BFS before the timing is returned. *)

val parity :
  ?machine:Machine_config.t ->
  ?domains:int ->
  ?backend:Ws_native.Pool.backend ->
  ?policy:Ws_native.Pool.victim_policy ->
  ?steal_half:bool ->
  ?fib_n:int ->
  ?graph_nodes:int ->
  ?graph_edges:int ->
  ?seed:int ->
  unit ->
  parity_row list

val render_parity : parity_row list -> string

val service :
  ?domains:int ->
  ?backend:Ws_native.Pool.backend ->
  ?policy:Ws_native.Pool.victim_policy ->
  ?steal_half:bool ->
  ?telemetry:bool ->
  ?attribution:bool ->
  ?flight:bool ->
  ?monitor:(Ws_native.Pool.t -> unit -> unit) ->
  ?rate:float ->
  ?requests:int ->
  ?chain:int ->
  ?work:int ->
  ?seed:int ->
  unit ->
  service_result
(** Submits [requests] request chains from the calling (non-worker) domain
    on an absolute Poisson schedule at [rate] arrivals/s; each request is a
    chain of [chain] dependent stages of [work] spin iterations. Sojourn
    time (arrival to last stage) feeds the returned histogram.

    [telemetry]/[attribution]/[flight] forward to
    {!Ws_native.Pool.create}; with [attribution] the result additionally
    carries the qwait/dispatch/service stage histograms and the rotating
    sojourn window ring, and with [flight] the steal-delay histogram
    reconstructed from the lineage join. [monitor], if
    given, is called with the running pool before the first request and
    must return a teardown thunk, invoked after the last request completes
    but before the pool shuts down — the hook the metrics server and the
    [wsrepro top] dashboard attach through. *)

val render_service : service_result -> string

type scenario_result = {
  sn_injected : int;
  sn_dropped : int;  (** submissions refused at a full injector (Drop) *)
  sn_completed : int;
  sn_elapsed : float;  (** first submission to last completion, seconds *)
  sn_p50_ns : int;
  sn_p99_ns : int;
  sn_p999_ns : int;
  sn_sojourn : Telemetry.Histogram.t;
  sn_peak_injector : int;  (** max injector depth seen at submission *)
  sn_steals : int;
  sn_injector_runs : int;
  sn_parks : int;
  sn_qwait : Telemetry.Histogram.t;  (** per-cell stage histograms, ns *)
  sn_dispatch : Telemetry.Histogram.t;
  sn_service : Telemetry.Histogram.t;
  sn_windows : Telemetry.Windowed.t;
      (** request-level rotating sojourn windows; width = the SLO block's
          window (ticks, default geometry when absent) times [sc_tick_ns] *)
}

val backend_of_queue : string -> Ws_native.Pool.backend
(** Map a simulated-queue registry name to the native backend that models
    it: the Chase-Lev family (CAS steals) to [Chase_lev_deques], everything
    else to [The_deques]. *)

val scenario_native :
  ?monitor:(Ws_native.Pool.t -> unit -> unit) ->
  Scenarios.open_spec ->
  scenario_result
(** Replay a scenario's pre-drawn load plan ({!Ws_runtime.Open_load.plan})
    on the native pool: the same inter-arrival gaps and per-stage service
    demands the timing model replays, with ticks mapped to wall time
    through [sc_tick_ns]. Arrivals follow an absolute schedule and go
    through {!Ws_native.Pool.submit} under the scenario's injector bound
    and drop/block policy; sojourn (arrival to last chain stage) feeds the
    returned histogram. [monitor] is the same attachment hook as in
    {!service}. *)

val render_scenario_native : Scenarios.open_spec -> scenario_result -> string

val native_verdicts :
  Scenarios.open_spec ->
  Scenarios.slo ->
  scenario_result ->
  Scenarios.verdict list
(** Judge the native replay against the scenario's SLO, tick budgets
    converted to nanoseconds through [sc_tick_ns]: per-window sojourn p99
    over the request-level ring (window indices printed relative to the
    first retained window), whole-run stage p99s, dropped/offered. *)

val pool_metrics : Ws_native.Pool.t -> Telemetry.Openmetrics.metric list
(** One live {!Ws_native.Pool.scrape} rendered as OpenMetrics families:
    per-slot counters (labelled [slot="i"]), pool gauges, and — on
    [~telemetry] pools with observations — per-slot latency quantiles. *)

val metrics_body : Ws_native.Pool.t -> unit -> string
(** [pool_metrics] composed with {!Telemetry.Openmetrics.render}; the
    [body] callback for {!Telemetry.Metrics_server.start} (fresh scrape per
    HTTP request). *)

val serve_metrics_monitor :
  ?quiet:bool -> port:int -> Ws_native.Pool.t -> unit -> unit
(** Start a metrics server scraping the pool and return its stop thunk
    (a {!service}-compatible monitor). Prints the bound endpoint to stderr
    unless [quiet]. *)

val flight_probe :
  ?domains:int ->
  ?backend:Ws_native.Pool.backend ->
  ?rounds:int ->
  ?flight_capacity:int ->
  unit ->
  Telemetry.Flight_recorder.t
(** Run the deterministic steal-forcing workload on a flight-recording
    pool and return the recorder (pool already shut down). Each of the
    [rounds] (default 8) spawns a child the spinning owner cannot pop, so
    the child arrives at its executor by a genuine steal — the recording
    is guaranteed to contain stolen lineage. *)

val flight_section :
  file:string ->
  ?domains:int ->
  ?backend:Ws_native.Pool.backend ->
  ?rounds:int ->
  unit ->
  unit
(** {!flight_probe}, then write the wsrepro-flight/v1 report to [file] and
    a Chrome trace next to it ([file] with extension [.trace.json]), and
    print a one-line summary to stdout. *)

val top :
  ?domains:int ->
  ?backend:Ws_native.Pool.backend ->
  ?policy:Ws_native.Pool.victim_policy ->
  ?steal_half:bool ->
  ?rate:float ->
  ?requests:int ->
  ?chain:int ->
  ?work:int ->
  ?serve_metrics:int ->
  ?interval:float ->
  ?seed:int ->
  unit ->
  unit
(** The service benchmark under a refreshing per-slot dashboard
    (stderr, ANSI block redraw via {!Telemetry.Progress}); stdout gets
    only the final {!render_service} summary. [serve_metrics] additionally
    serves OpenMetrics on that port for the duration. *)

val run :
  ?machine:Machine_config.t ->
  ?domains:int ->
  ?backend:Ws_native.Pool.backend ->
  ?policy:Ws_native.Pool.victim_policy ->
  ?steal_half:bool ->
  ?fib_n:int ->
  ?graph_nodes:int ->
  ?graph_edges:int ->
  ?rate:float ->
  ?requests:int ->
  ?chain:int ->
  ?work:int ->
  ?serve_metrics:int ->
  ?flight_file:string ->
  ?scenario:Scenarios.open_spec ->
  ?seed:int ->
  unit ->
  bool
(** Print both sections (parity table, then service benchmark).
    [serve_metrics] serves live OpenMetrics scrapes of the service-bench
    pool on the given port (0 picks a free one; endpoint printed to
    stderr). [flight_file] appends a third section: the steal-forcing
    flight-recorder probe, its wsrepro-flight/v1 report written to the
    given path (Chrome trace alongside). With [scenario] the fixed
    sections are replaced by a native replay of that scenario
    ({!scenario_native}), judged against the scenario's SLO block when it
    has one (verdict table printed, budgets converted to ns). Returns
    [false] iff an SLO budget was violated — the CLI exit status. *)
