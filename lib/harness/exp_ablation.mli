(** Ablations of the design choices DESIGN.md calls out (not figures from
    the paper, but experiments it motivates):

    - {b δ sweep}: how the thief's uncertainty bound trades steal
      availability (aborts / echo waits) against safety margin, from the
      aggressive δ = 4 of §8.1 up to δ = S. Shows why FF-THE is
      "very sensitive to δ" while THEP "is not" (§8.1).
    - {b fence-cost sweep}: the whole premise — the fence-free algorithms'
      advantage must scale with the hardware's fence latency and vanish as
      it approaches zero.
    - {b THEP heartbeat placement}: packed into [H]'s top bits (paper
      default) vs a separate variable with an extra take-path load (the §5
      alternative), implemented as [thep-sep]. *)

type delta_row = {
  delta : int;
  ff_the_pct : float;  (** makespan normalized to THE, % *)
  ff_the_aborts : int;
  thep_pct : float;
  thep_sep_pct : float;
}

val delta_sweep :
  ?machine:Machine_config.t ->
  ?bench:string ->
  ?deltas:int list ->
  ?seed:int ->
  ?jobs:int ->
  unit ->
  delta_row list
(** [jobs] fans the (variant × δ) runs across OCaml 5 domains via
    {!Par_runner.map}; rows are byte-identical to a sequential run.
    Default 1. *)

type fence_row = {
  fence_cost : int;
  the_makespan : float;
  thep_makespan : float;
  thep_vs_the_pct : float;
}

val fence_sweep :
  ?machine:Machine_config.t ->
  ?bench:string ->
  ?costs:int list ->
  ?seed:int ->
  ?jobs:int ->
  unit ->
  fence_row list

type victim_row = {
  policy : string;
  makespan : float;
  steal_attempts : int;
}

val victim_sweep :
  ?machine:Machine_config.t ->
  ?bench:string ->
  ?seed:int ->
  ?jobs:int ->
  unit ->
  victim_row list
(** Random vs round-robin victim selection under THEP δ=4. *)

val run : ?machine:Machine_config.t -> ?jobs:int -> unit -> unit
(** Print all three ablations. *)
