open Tso

type spec = {
  queue : string;
  sb_capacity : int;
  buffer_model : Store_buffer.model;
  delta : int;
  worker_fence : bool;
  preloaded : int;
  puts : int;
  steal_attempts : int;
  thieves : int;
  client_stores : int;
}

let default_spec =
  {
    queue = "ff-the";
    sb_capacity = 2;
    buffer_model = Store_buffer.Abstract;
    delta = 1;
    worker_fence = true;
    preloaded = 2;
    puts = 1;
    steal_attempts = 2;
    thieves = 1;
    client_stores = 1;
  }

let spec_json spec =
  let model =
    match spec.buffer_model with
    | Store_buffer.Abstract -> "abstract"
    | Store_buffer.Realistic { coalesce = true } -> "realistic+coalesce"
    | Store_buffer.Realistic { coalesce = false } -> "realistic"
    | Store_buffer.Pso -> "pso"
  in
  [
    ("queue", Telemetry.Json.Str spec.queue);
    ("sb_capacity", Telemetry.Json.Int spec.sb_capacity);
    ("buffer_model", Telemetry.Json.Str model);
    ("delta", Telemetry.Json.Int spec.delta);
    ("worker_fence", Telemetry.Json.Bool spec.worker_fence);
    ("preloaded", Telemetry.Json.Int spec.preloaded);
    ("puts", Telemetry.Json.Int spec.puts);
    ("steal_attempts", Telemetry.Json.Int spec.steal_attempts);
    ("thieves", Telemetry.Json.Int spec.thieves);
    ("client_stores", Telemetry.Json.Int spec.client_stores);
  ]

let instance spec () =
  let (module Q : Ws_core.Queue_intf.S) = Ws_core.Registry.find spec.queue in
  let machine =
    Machine.create { Machine.sb_capacity = spec.sb_capacity; buffer_model = spec.buffer_model }
  in
  let params =
    {
      Ws_core.Queue_intf.capacity = 64;
      delta = spec.delta;
      worker_fence = spec.worker_fence;
      tag = "q";
    }
  in
  let q = Q.create machine params in
  let total = spec.preloaded + spec.puts in
  Q.preload q (List.init spec.preloaded Fun.id);
  let removed = Array.make (max total 1) 0 in
  let bad_abort = ref false in
  let scratch = Memory.alloc (Machine.memory machine) ~name:"scratch" ~init:0 in
  let _ =
    Machine.spawn machine ~name:"worker" (fun () ->
        for i = spec.preloaded to total - 1 do
          Q.put q i
        done;
        let rec drain () =
          match Q.take q with
          | `Empty -> ()
          | `Task i ->
              removed.(i) <- removed.(i) + 1;
              for s = 1 to spec.client_stores do
                Program.store scratch (i + s)
              done;
              drain ()
        in
        drain ())
  in
  for t = 1 to spec.thieves do
    ignore
      (Machine.spawn machine
         ~name:(Printf.sprintf "thief%d" t)
         (fun () ->
           for _ = 1 to spec.steal_attempts do
             match Q.steal q with
             | `Task i -> removed.(i) <- removed.(i) + 1
             | `Empty -> ()
             | `Abort -> if not Q.may_abort then bad_abort := true
           done))
  done;
  let check () =
    if !bad_abort then Error (Q.name ^ " returned ABORT but may_abort is false")
    else begin
      let problems = ref [] in
      Array.iteri
        (fun i c ->
          if i < total then begin
            if c = 0 then problems := Printf.sprintf "task %d lost" i :: !problems
            else if c > 1 && not Q.may_duplicate then
              problems :=
                Printf.sprintf "task %d extracted %d times" i c :: !problems
          end)
        removed;
      match !problems with
      | [] -> Ok ()
      | ps -> Error (String.concat "; " (List.rev ps))
    end
  in
  { Explore.machine; check }

let random_check spec ~seeds ?(drain_weight = 0.1) () =
  let rec go = function
    | [] -> Ok ()
    | seed :: rest -> (
        let inst = instance spec () in
        let rng = Random.State.make [| seed |] in
        match
          Sched.run ~max_steps:500_000 inst.Explore.machine
            (Sched.weighted rng ~drain_weight)
        with
        | Sched.Quiescent -> (
            match inst.Explore.check () with
            | Ok () -> go rest
            | Error e -> Error (Printf.sprintf "seed %d: %s" seed e))
        | Sched.Deadlock -> Error (Printf.sprintf "seed %d: deadlock" seed)
        | Sched.Max_steps -> Error (Printf.sprintf "seed %d: step budget" seed))
  in
  go seeds

(* Knuth covered-mass clause for the explorer progress lines: estimated
   fraction of the choice tree explored plus a remaining-time projection
   (ETA = elapsed * (1 - c) / c). Blank until any mass is credited, so
   early lines stay short rather than wrong. *)
let estimate_clause rep covered =
  if covered <= 0.0 then ""
  else if covered >= 1.0 then ", ~100% of tree"
  else begin
    let eta =
      Telemetry.Progress.elapsed rep *. (1.0 -. covered) /. covered
    in
    let eta_str =
      if eta >= 5940.0 then Printf.sprintf "%.1fh" (eta /. 3600.0)
      else if eta >= 99.0 then Printf.sprintf "%.1fm" (eta /. 60.0)
      else Printf.sprintf "%.0fs" eta
    in
    Printf.sprintf ", ~%.1f%% of tree, ETA %s" (100.0 *. covered) eta_str
  end

let explore_check_full spec ?max_runs ?max_depth ?preemption_bound ?(jobs = 1)
    ?(memo = false) ?(por = false) ?(dpor = false) ?memo_store ?sink
    ?(snapshots = true) ?(progress = false) () =
  let reporter =
    if progress then Some (Telemetry.Progress.create ~label:"explore" ())
    else None
  in
  let st, frontier =
    if jobs > 1 then
      let on_progress =
        Option.map
          (fun rep (p : Explore_par.progress) ->
            Telemetry.Progress.sample rep ~count:p.Explore_par.total_runs
              (fun ~rate ->
                Printf.sprintf "%d runs (%.0f/s), subtree %d/%d, %d domains%s"
                  p.Explore_par.total_runs rate p.Explore_par.tasks_done
                  p.Explore_par.tasks_total p.Explore_par.domains
                  (estimate_clause rep p.Explore_par.covered)))
          reporter
      in
      Explore_par.search_with_frontier ?max_runs ?max_depth ?preemption_bound
        ~memo ~por ~dpor ?memo_store ~snapshots ~jobs ?on_progress
        ~mk:(instance spec) ()
    else
      let on_progress =
        Option.map
          (fun rep (s : Explore.stats) ->
            Telemetry.Progress.sample rep ~count:s.Explore.runs (fun ~rate ->
                Printf.sprintf
                  "%d runs (%.0f/s), depth frontier %d, %d memo hits \
                   (%.1f%% hit rate)%s"
                  s.Explore.runs rate s.Explore.peak_depth s.Explore.memo_hits
                  (100.0 *. Explore.memo_hit_rate s)
                  (estimate_clause rep s.Explore.covered)))
          reporter
      in
      let st =
        Explore.search ?max_runs ?max_depth ?preemption_bound ~memo ~por ~dpor
          ?memo_store ~snapshots ?on_progress ~mk:(instance spec) ()
      in
      ( st,
        {
          Explore_par.fr_domains = 1;
          fr_tasks = 1;
          fr_splits = 0;
          fr_steals = 0;
          fr_steal_attempts = 0;
          fr_runs_per_domain = [| st.Explore.runs |];
          fr_tasks_per_domain = [| 1 |];
        } )
  in
  Option.iter (fun rep -> Telemetry.Progress.finish rep) reporter;
  (match sink with
  | None -> ()
  | Some s -> Explore_par.frontier_to_sink frontier s);
  (st, frontier)

let explore_check spec ?max_runs ?max_depth ?preemption_bound ?jobs ?memo ?por
    ?dpor ?memo_store ?sink ?snapshots ?progress () =
  fst
    (explore_check_full spec ?max_runs ?max_depth ?preemption_bound ?jobs ?memo
       ?por ?dpor ?memo_store ?sink ?snapshots ?progress ())

(* ------------------------------------------------------------------ *)
(* Open-system scenario DSL (wsrepro-scenario/v1)                      *)
(* ------------------------------------------------------------------ *)

(* One description drives both engines: the timing model replays the plan
   in simulated ticks, the native pool replays the same plan with ticks
   mapped to wall time through [sc_tick_ns]. The JSON form is strict —
   unknown fields are rejected, at the top level and inside the nested
   arrival/service objects — so a typo'd knob fails loudly instead of
   silently running the default. Emission goes through the byte-stable
   {!Telemetry.Json} emitter, so emit → parse → emit is the identity on
   bytes (floats are quantized to the emitter's %.3f grid on first
   emission). *)

module OL = Ws_runtime.Open_load

(* Service-level objective, all budgets in simulated ticks (the native
   replay converts through [sc_tick_ns]). [slo_p99_sojourn] is judged per
   retained window of the sojourn ring; the stage budgets are whole-run
   p99s; [slo_max_drop_rate] is dropped/offered. *)
type slo = {
  slo_p99_sojourn : int option;  (* per-window p99 budget, ticks *)
  slo_max_drop_rate : float option;  (* dropped / offered, in [0, 1] *)
  slo_qwait_p99 : int option;  (* whole-run stage p99 budgets, ticks *)
  slo_dispatch_p99 : int option;
  slo_service_p99 : int option;
  slo_window : int;  (* window width, ticks *)
  slo_window_slots : int;  (* windows retained (and judged) *)
}

let default_slo =
  {
    slo_p99_sojourn = None;
    slo_max_drop_rate = None;
    slo_qwait_p99 = None;
    slo_dispatch_p99 = None;
    slo_service_p99 = None;
    slo_window = 8192;
    slo_window_slots = 16;
  }

type open_spec = {
  sc_name : string;
  sc_queue : string;  (* registry name *)
  sc_workers : int;
  sc_requests : int;
  sc_chain : int;
  sc_seed : int;
  sc_capacity : int;
  sc_policy : OL.policy;
  sc_tick_ns : int;
  sc_arrival : OL.arrival;
  sc_service : OL.service;
  sc_slo : slo option;
}

let open_schema = "wsrepro-scenario/v1"

let default_open_spec =
  {
    sc_name = "default";
    sc_queue = "ff-the";
    sc_workers = 3;
    sc_requests = 500;
    sc_chain = 3;
    sc_seed = 1;
    sc_capacity = 64;
    sc_policy = OL.Block;
    sc_tick_ns = 50;
    sc_arrival = OL.Poisson { rate = 2.0 };
    sc_service = OL.Exponential { mean = 400 };
    sc_slo = None;
  }

module J = Telemetry.Json

let arrival_json = function
  | OL.Poisson { rate } ->
      J.Obj [ ("process", J.Str "poisson"); ("rate", J.Float rate) ]
  | OL.Bursty { rate_lo; rate_hi; switch_lo; switch_hi } ->
      J.Obj
        [
          ("process", J.Str "bursty");
          ("rate_lo", J.Float rate_lo);
          ("rate_hi", J.Float rate_hi);
          ("switch_lo", J.Float switch_lo);
          ("switch_hi", J.Float switch_hi);
        ]

let service_json = function
  | OL.Fixed { ticks } ->
      J.Obj [ ("dist", J.Str "fixed"); ("ticks", J.Int ticks) ]
  | OL.Uniform { lo; hi } ->
      J.Obj [ ("dist", J.Str "uniform"); ("lo", J.Int lo); ("hi", J.Int hi) ]
  | OL.Exponential { mean } ->
      J.Obj [ ("dist", J.Str "exponential"); ("mean", J.Int mean) ]
  | OL.Bimodal { short; long; p_long } ->
      J.Obj
        [
          ("dist", J.Str "bimodal");
          ("short", J.Int short);
          ("long", J.Int long);
          ("p_long", J.Float p_long);
        ]

(* Budget fields that were absent stay absent on re-emission, so
   emit -> parse -> emit is still the identity on bytes. *)
let slo_json s =
  let opt_int k = function Some v -> [ (k, J.Int v) ] | None -> [] in
  let budgets =
    opt_int "qwait" s.slo_qwait_p99
    @ opt_int "dispatch" s.slo_dispatch_p99
    @ opt_int "service" s.slo_service_p99
  in
  J.Obj
    (opt_int "p99_sojourn" s.slo_p99_sojourn
    @ (match s.slo_max_drop_rate with
      | Some r -> [ ("max_drop_rate", J.Float r) ]
      | None -> [])
    @ (if budgets = [] then [] else [ ("stage_budgets", J.Obj budgets) ])
    @ [ ("window", J.Int s.slo_window); ("windows", J.Int s.slo_window_slots) ]
    )

let open_spec_json s =
  J.Obj
    ([
       ("schema", J.Str open_schema);
       ("name", J.Str s.sc_name);
       ("queue", J.Str s.sc_queue);
       ("workers", J.Int s.sc_workers);
       ("requests", J.Int s.sc_requests);
       ("chain", J.Int s.sc_chain);
       ("seed", J.Int s.sc_seed);
       ("capacity", J.Int s.sc_capacity);
       ( "policy",
         J.Str (match s.sc_policy with OL.Drop -> "drop" | OL.Block -> "block")
       );
       ("tick_ns", J.Int s.sc_tick_ns);
       ("arrival", arrival_json s.sc_arrival);
       ("service", service_json s.sc_service);
     ]
    @ match s.sc_slo with None -> [] | Some slo -> [ ("slo", slo_json slo) ])

(* --- strict parsing -------------------------------------------------- *)

let ( let* ) = Result.bind

let fields ctx = function
  | J.Obj fs -> Ok fs
  | _ -> Error (Printf.sprintf "%s: expected an object" ctx)

let reject_unknown ctx allowed fs =
  match List.find_opt (fun (k, _) -> not (List.mem k allowed)) fs with
  | Some (k, _) -> Error (Printf.sprintf "%s: unknown field %S" ctx k)
  | None -> Ok ()

let get_str ctx fs k ~default =
  match List.assoc_opt k fs with
  | None -> Ok default
  | Some (J.Str s) -> Ok s
  | Some _ -> Error (Printf.sprintf "%s: %S must be a string" ctx k)

let get_int ctx fs k ~default =
  match List.assoc_opt k fs with
  | None -> Ok default
  | Some (J.Int i) -> Ok i
  | Some _ -> Error (Printf.sprintf "%s: %S must be an integer" ctx k)

let get_float ctx fs k ~default =
  match List.assoc_opt k fs with
  | None -> Ok default
  | Some (J.Float f) -> Ok f
  | Some (J.Int i) -> Ok (float_of_int i)
  | Some _ -> Error (Printf.sprintf "%s: %S must be a number" ctx k)

let require_pos ctx k v =
  if v >= 1 then Ok v
  else Error (Printf.sprintf "%s: %S must be >= 1 (got %d)" ctx k v)

let require_rate ctx k v =
  if v > 0. then Ok v
  else Error (Printf.sprintf "%s: %S must be > 0" ctx k)

let require_prob ctx k v =
  if v >= 0. && v <= 1. then Ok v
  else Error (Printf.sprintf "%s: %S must be in [0, 1]" ctx k)

(* Optional-budget variants: absent stays [None] (no default kicks in). *)
let get_int_opt ctx fs k =
  match List.assoc_opt k fs with
  | None -> Ok None
  | Some (J.Int i) ->
      if i >= 1 then Ok (Some i)
      else Error (Printf.sprintf "%s: %S must be >= 1 (got %d)" ctx k i)
  | Some _ -> Error (Printf.sprintf "%s: %S must be an integer" ctx k)

let get_prob_opt ctx fs k =
  match List.assoc_opt k fs with
  | None -> Ok None
  | Some (J.Float f) ->
      let* f = require_prob ctx k f in
      Ok (Some f)
  | Some (J.Int i) ->
      let* f = require_prob ctx k (float_of_int i) in
      Ok (Some f)
  | Some _ -> Error (Printf.sprintf "%s: %S must be a number" ctx k)

let slo_of_json v =
  let ctx = "slo" in
  let d = default_slo in
  let* fs = fields ctx v in
  let* () =
    reject_unknown ctx
      [ "p99_sojourn"; "max_drop_rate"; "stage_budgets"; "window"; "windows" ]
      fs
  in
  let* slo_p99_sojourn = get_int_opt ctx fs "p99_sojourn" in
  let* slo_max_drop_rate = get_prob_opt ctx fs "max_drop_rate" in
  let* slo_qwait_p99, slo_dispatch_p99, slo_service_p99 =
    match List.assoc_opt "stage_budgets" fs with
    | None -> Ok (None, None, None)
    | Some v ->
        let ctx = "slo.stage_budgets" in
        let* fs = fields ctx v in
        let* () = reject_unknown ctx [ "qwait"; "dispatch"; "service" ] fs in
        let* q = get_int_opt ctx fs "qwait" in
        let* di = get_int_opt ctx fs "dispatch" in
        let* s = get_int_opt ctx fs "service" in
        Ok (q, di, s)
  in
  let* slo_window = get_int ctx fs "window" ~default:d.slo_window in
  let* slo_window = require_pos ctx "window" slo_window in
  let* slo_window_slots = get_int ctx fs "windows" ~default:d.slo_window_slots in
  let* slo_window_slots = require_pos ctx "windows" slo_window_slots in
  Ok
    {
      slo_p99_sojourn; slo_max_drop_rate; slo_qwait_p99; slo_dispatch_p99;
      slo_service_p99; slo_window; slo_window_slots;
    }

let arrival_of_json v =
  let ctx = "arrival" in
  let* fs = fields ctx v in
  let* kind = get_str ctx fs "process" ~default:"" in
  match kind with
  | "poisson" ->
      let* () = reject_unknown ctx [ "process"; "rate" ] fs in
      let* rate = get_float ctx fs "rate" ~default:2.0 in
      let* rate = require_rate ctx "rate" rate in
      Ok (OL.Poisson { rate })
  | "bursty" ->
      let* () =
        reject_unknown ctx
          [ "process"; "rate_lo"; "rate_hi"; "switch_lo"; "switch_hi" ]
          fs
      in
      let* rate_lo = get_float ctx fs "rate_lo" ~default:1.0 in
      let* rate_lo = require_rate ctx "rate_lo" rate_lo in
      let* rate_hi = get_float ctx fs "rate_hi" ~default:4.0 in
      let* rate_hi = require_rate ctx "rate_hi" rate_hi in
      let* switch_lo = get_float ctx fs "switch_lo" ~default:0.1 in
      let* switch_lo = require_prob ctx "switch_lo" switch_lo in
      let* switch_hi = get_float ctx fs "switch_hi" ~default:0.1 in
      let* switch_hi = require_prob ctx "switch_hi" switch_hi in
      Ok (OL.Bursty { rate_lo; rate_hi; switch_lo; switch_hi })
  | "" -> Error "arrival: missing \"process\""
  | k ->
      Error
        (Printf.sprintf
           "arrival: unknown process %S (expected poisson or bursty)" k)

let service_of_json v =
  let ctx = "service" in
  let* fs = fields ctx v in
  let* kind = get_str ctx fs "dist" ~default:"" in
  match kind with
  | "fixed" ->
      let* () = reject_unknown ctx [ "dist"; "ticks" ] fs in
      let* ticks = get_int ctx fs "ticks" ~default:400 in
      let* ticks = require_pos ctx "ticks" ticks in
      Ok (OL.Fixed { ticks })
  | "uniform" ->
      let* () = reject_unknown ctx [ "dist"; "lo"; "hi" ] fs in
      let* lo = get_int ctx fs "lo" ~default:100 in
      let* lo = require_pos ctx "lo" lo in
      let* hi = get_int ctx fs "hi" ~default:700 in
      let* hi = require_pos ctx "hi" hi in
      if hi < lo then Error "service: \"hi\" must be >= \"lo\""
      else Ok (OL.Uniform { lo; hi })
  | "exponential" ->
      let* () = reject_unknown ctx [ "dist"; "mean" ] fs in
      let* mean = get_int ctx fs "mean" ~default:400 in
      let* mean = require_pos ctx "mean" mean in
      Ok (OL.Exponential { mean })
  | "bimodal" ->
      let* () = reject_unknown ctx [ "dist"; "short"; "long"; "p_long" ] fs in
      let* short = get_int ctx fs "short" ~default:100 in
      let* short = require_pos ctx "short" short in
      let* long = get_int ctx fs "long" ~default:2000 in
      let* long = require_pos ctx "long" long in
      let* p_long = get_float ctx fs "p_long" ~default:0.05 in
      let* p_long = require_prob ctx "p_long" p_long in
      Ok (OL.Bimodal { short; long; p_long })
  | "" -> Error "service: missing \"dist\""
  | k ->
      Error
        (Printf.sprintf
           "service: unknown dist %S (expected fixed, uniform, exponential \
            or bimodal)"
           k)

let open_spec_of_json v =
  let ctx = "scenario" in
  let d = default_open_spec in
  let* fs = fields ctx v in
  let* () =
    reject_unknown ctx
      [
        "schema"; "name"; "queue"; "workers"; "requests"; "chain"; "seed";
        "capacity"; "policy"; "tick_ns"; "arrival"; "service"; "slo";
      ]
      fs
  in
  let* schema = get_str ctx fs "schema" ~default:"" in
  let* () =
    if schema = open_schema then Ok ()
    else
      Error
        (Printf.sprintf "scenario: \"schema\" must be %S (got %S)" open_schema
           schema)
  in
  let* sc_name = get_str ctx fs "name" ~default:d.sc_name in
  let* sc_queue = get_str ctx fs "queue" ~default:d.sc_queue in
  let* () =
    if List.mem sc_queue Ws_core.Registry.names then Ok ()
    else
      Error
        (Printf.sprintf "scenario: unknown queue %S (expected one of %s)"
           sc_queue
           (String.concat ", " Ws_core.Registry.names))
  in
  let* sc_workers = get_int ctx fs "workers" ~default:d.sc_workers in
  let* sc_workers = require_pos ctx "workers" sc_workers in
  let* sc_requests = get_int ctx fs "requests" ~default:d.sc_requests in
  let* sc_requests = require_pos ctx "requests" sc_requests in
  let* sc_chain = get_int ctx fs "chain" ~default:d.sc_chain in
  let* sc_chain = require_pos ctx "chain" sc_chain in
  let* sc_seed = get_int ctx fs "seed" ~default:d.sc_seed in
  let* sc_capacity = get_int ctx fs "capacity" ~default:d.sc_capacity in
  let* sc_capacity = require_pos ctx "capacity" sc_capacity in
  let* policy_s =
    get_str ctx fs "policy"
      ~default:(match d.sc_policy with OL.Drop -> "drop" | OL.Block -> "block")
  in
  let* sc_policy =
    match policy_s with
    | "drop" -> Ok OL.Drop
    | "block" -> Ok OL.Block
    | p ->
        Error
          (Printf.sprintf "scenario: unknown policy %S (expected drop or block)"
             p)
  in
  let* sc_tick_ns = get_int ctx fs "tick_ns" ~default:d.sc_tick_ns in
  let* sc_tick_ns = require_pos ctx "tick_ns" sc_tick_ns in
  let* sc_arrival =
    match List.assoc_opt "arrival" fs with
    | None -> Ok d.sc_arrival
    | Some v -> arrival_of_json v
  in
  let* sc_service =
    match List.assoc_opt "service" fs with
    | None -> Ok d.sc_service
    | Some v -> service_of_json v
  in
  let* sc_slo =
    match List.assoc_opt "slo" fs with
    | None -> Ok None
    | Some v ->
        let* slo = slo_of_json v in
        Ok (Some slo)
  in
  Ok
    {
      sc_name; sc_queue; sc_workers; sc_requests; sc_chain; sc_seed;
      sc_capacity; sc_policy; sc_tick_ns; sc_arrival; sc_service; sc_slo;
    }

(* --- SLO verdicts ---------------------------------------------------- *)

(* One judged budget: a per-window sojourn row, a whole-run stage row, or
   the drop-rate row. The row form is shared by the sim sweep (budgets in
   ticks) and the native replay (converted to ns), so both print the same
   table shape. *)
type verdict = {
  vd_load : string;  (* sweep point label, "-" for a single run *)
  vd_window : string;  (* window index, "-" for whole-run budgets *)
  vd_metric : string;
  vd_actual : string;
  vd_budget : string;
  vd_ok : bool;
}

let verdicts_ok vs = List.for_all (fun v -> v.vd_ok) vs

let render_verdicts ~name ~units vs =
  let header = [ "load"; "window"; "metric"; "actual"; "budget"; "verdict" ] in
  let rows =
    List.map
      (fun v ->
        [
          v.vd_load; v.vd_window; v.vd_metric; v.vd_actual; v.vd_budget;
          (if v.vd_ok then "ok" else "FAIL");
        ])
      vs
  in
  let violations = List.length (List.filter (fun v -> not v.vd_ok) vs) in
  Printf.sprintf "== SLO verdicts: %s (budgets in %s) ==\n%s%s\n" name units
    (Tablefmt.render ~header rows)
    (if violations = 0 then "SLO: PASS"
     else Printf.sprintf "SLO: FAIL (%d violation%s)" violations
         (if violations = 1 then "" else "s"))

let load_open_spec path =
  match J.parse_file path with
  | Error e -> Error (Printf.sprintf "%s: %s" path e)
  | Ok v -> (
      match open_spec_of_json v with
      | Error e -> Error (Printf.sprintf "%s: %s" path e)
      | Ok s -> Ok s)

let open_config s =
  let slo = Option.value ~default:default_slo s.sc_slo in
  {
    Ws_runtime.Open_system.default_config with
    Ws_runtime.Open_system.workers = s.sc_workers;
    queue = Ws_core.Registry.find s.sc_queue;
    seed = s.sc_seed;
    requests = s.sc_requests;
    chain = s.sc_chain;
    arrival = s.sc_arrival;
    service = s.sc_service;
    capacity = s.sc_capacity;
    policy = s.sc_policy;
    window = slo.slo_window;
    window_slots = slo.slo_window_slots;
  }
