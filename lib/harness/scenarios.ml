open Tso

type spec = {
  queue : string;
  sb_capacity : int;
  buffer_model : Store_buffer.model;
  delta : int;
  worker_fence : bool;
  preloaded : int;
  puts : int;
  steal_attempts : int;
  thieves : int;
  client_stores : int;
}

let default_spec =
  {
    queue = "ff-the";
    sb_capacity = 2;
    buffer_model = Store_buffer.Abstract;
    delta = 1;
    worker_fence = true;
    preloaded = 2;
    puts = 1;
    steal_attempts = 2;
    thieves = 1;
    client_stores = 1;
  }

let spec_json spec =
  let model =
    match spec.buffer_model with
    | Store_buffer.Abstract -> "abstract"
    | Store_buffer.Realistic { coalesce = true } -> "realistic+coalesce"
    | Store_buffer.Realistic { coalesce = false } -> "realistic"
    | Store_buffer.Pso -> "pso"
  in
  [
    ("queue", Telemetry.Json.Str spec.queue);
    ("sb_capacity", Telemetry.Json.Int spec.sb_capacity);
    ("buffer_model", Telemetry.Json.Str model);
    ("delta", Telemetry.Json.Int spec.delta);
    ("worker_fence", Telemetry.Json.Bool spec.worker_fence);
    ("preloaded", Telemetry.Json.Int spec.preloaded);
    ("puts", Telemetry.Json.Int spec.puts);
    ("steal_attempts", Telemetry.Json.Int spec.steal_attempts);
    ("thieves", Telemetry.Json.Int spec.thieves);
    ("client_stores", Telemetry.Json.Int spec.client_stores);
  ]

let instance spec () =
  let (module Q : Ws_core.Queue_intf.S) = Ws_core.Registry.find spec.queue in
  let machine =
    Machine.create { Machine.sb_capacity = spec.sb_capacity; buffer_model = spec.buffer_model }
  in
  let params =
    {
      Ws_core.Queue_intf.capacity = 64;
      delta = spec.delta;
      worker_fence = spec.worker_fence;
      tag = "q";
    }
  in
  let q = Q.create machine params in
  let total = spec.preloaded + spec.puts in
  Q.preload q (List.init spec.preloaded Fun.id);
  let removed = Array.make (max total 1) 0 in
  let bad_abort = ref false in
  let scratch = Memory.alloc (Machine.memory machine) ~name:"scratch" ~init:0 in
  let _ =
    Machine.spawn machine ~name:"worker" (fun () ->
        for i = spec.preloaded to total - 1 do
          Q.put q i
        done;
        let rec drain () =
          match Q.take q with
          | `Empty -> ()
          | `Task i ->
              removed.(i) <- removed.(i) + 1;
              for s = 1 to spec.client_stores do
                Program.store scratch (i + s)
              done;
              drain ()
        in
        drain ())
  in
  for t = 1 to spec.thieves do
    ignore
      (Machine.spawn machine
         ~name:(Printf.sprintf "thief%d" t)
         (fun () ->
           for _ = 1 to spec.steal_attempts do
             match Q.steal q with
             | `Task i -> removed.(i) <- removed.(i) + 1
             | `Empty -> ()
             | `Abort -> if not Q.may_abort then bad_abort := true
           done))
  done;
  let check () =
    if !bad_abort then Error (Q.name ^ " returned ABORT but may_abort is false")
    else begin
      let problems = ref [] in
      Array.iteri
        (fun i c ->
          if i < total then begin
            if c = 0 then problems := Printf.sprintf "task %d lost" i :: !problems
            else if c > 1 && not Q.may_duplicate then
              problems :=
                Printf.sprintf "task %d extracted %d times" i c :: !problems
          end)
        removed;
      match !problems with
      | [] -> Ok ()
      | ps -> Error (String.concat "; " (List.rev ps))
    end
  in
  { Explore.machine; check }

let random_check spec ~seeds ?(drain_weight = 0.1) () =
  let rec go = function
    | [] -> Ok ()
    | seed :: rest -> (
        let inst = instance spec () in
        let rng = Random.State.make [| seed |] in
        match
          Sched.run ~max_steps:500_000 inst.Explore.machine
            (Sched.weighted rng ~drain_weight)
        with
        | Sched.Quiescent -> (
            match inst.Explore.check () with
            | Ok () -> go rest
            | Error e -> Error (Printf.sprintf "seed %d: %s" seed e))
        | Sched.Deadlock -> Error (Printf.sprintf "seed %d: deadlock" seed)
        | Sched.Max_steps -> Error (Printf.sprintf "seed %d: step budget" seed))
  in
  go seeds

(* Knuth covered-mass clause for the explorer progress lines: estimated
   fraction of the choice tree explored plus a remaining-time projection
   (ETA = elapsed * (1 - c) / c). Blank until any mass is credited, so
   early lines stay short rather than wrong. *)
let estimate_clause rep covered =
  if covered <= 0.0 then ""
  else if covered >= 1.0 then ", ~100% of tree"
  else begin
    let eta =
      Telemetry.Progress.elapsed rep *. (1.0 -. covered) /. covered
    in
    let eta_str =
      if eta >= 5940.0 then Printf.sprintf "%.1fh" (eta /. 3600.0)
      else if eta >= 99.0 then Printf.sprintf "%.1fm" (eta /. 60.0)
      else Printf.sprintf "%.0fs" eta
    in
    Printf.sprintf ", ~%.1f%% of tree, ETA %s" (100.0 *. covered) eta_str
  end

let explore_check_full spec ?max_runs ?max_depth ?preemption_bound ?(jobs = 1)
    ?(memo = false) ?(por = false) ?(dpor = false) ?memo_store ?sink
    ?(snapshots = true) ?(progress = false) () =
  let reporter =
    if progress then Some (Telemetry.Progress.create ~label:"explore" ())
    else None
  in
  let st, frontier =
    if jobs > 1 then
      let on_progress =
        Option.map
          (fun rep (p : Explore_par.progress) ->
            Telemetry.Progress.sample rep ~count:p.Explore_par.total_runs
              (fun ~rate ->
                Printf.sprintf "%d runs (%.0f/s), subtree %d/%d, %d domains%s"
                  p.Explore_par.total_runs rate p.Explore_par.tasks_done
                  p.Explore_par.tasks_total p.Explore_par.domains
                  (estimate_clause rep p.Explore_par.covered)))
          reporter
      in
      Explore_par.search_with_frontier ?max_runs ?max_depth ?preemption_bound
        ~memo ~por ~dpor ?memo_store ~snapshots ~jobs ?on_progress
        ~mk:(instance spec) ()
    else
      let on_progress =
        Option.map
          (fun rep (s : Explore.stats) ->
            Telemetry.Progress.sample rep ~count:s.Explore.runs (fun ~rate ->
                Printf.sprintf
                  "%d runs (%.0f/s), depth frontier %d, %d memo hits \
                   (%.1f%% hit rate)%s"
                  s.Explore.runs rate s.Explore.peak_depth s.Explore.memo_hits
                  (100.0 *. Explore.memo_hit_rate s)
                  (estimate_clause rep s.Explore.covered)))
          reporter
      in
      let st =
        Explore.search ?max_runs ?max_depth ?preemption_bound ~memo ~por ~dpor
          ?memo_store ~snapshots ?on_progress ~mk:(instance spec) ()
      in
      ( st,
        {
          Explore_par.fr_domains = 1;
          fr_tasks = 1;
          fr_splits = 0;
          fr_steals = 0;
          fr_steal_attempts = 0;
          fr_runs_per_domain = [| st.Explore.runs |];
          fr_tasks_per_domain = [| 1 |];
        } )
  in
  Option.iter (fun rep -> Telemetry.Progress.finish rep) reporter;
  (match sink with
  | None -> ()
  | Some s -> Explore_par.frontier_to_sink frontier s);
  (st, frontier)

let explore_check spec ?max_runs ?max_depth ?preemption_bound ?jobs ?memo ?por
    ?dpor ?memo_store ?sink ?snapshots ?progress () =
  fst
    (explore_check_full spec ?max_runs ?max_depth ?preemption_bound ?jobs ?memo
       ?por ?dpor ?memo_store ?sink ?snapshots ?progress ())
