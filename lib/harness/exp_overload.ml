(* Heavy-traffic overload sweep: one scenario run at 1x/2x/4x its offered
   load, on the timing model and (optionally) on the native pool, with the
   tail latencies side by side. The sim sweep fans out over domains with a
   per-domain sink shard (Par_runner.map_sharded), so the queue-operation
   counters in the report come out of the sharded measurement plane merged
   at the join — identical totals to a sequential sweep, no shared
   counter cache line while it runs.

   Sim and native replay the same pre-drawn plan per point (the factor is
   applied to the arrival process before the plan is drawn, so a 2x point
   is the same seed under doubled rates, not a resampling). Sojourn units
   differ by engine — ticks on the timing model, nanoseconds native — and
   the table prints both rather than pretending one converts into the
   other; the comparison is of shapes (tail growth, drop onset), not
   absolute values. *)

module OL = Ws_runtime.Open_load
module J = Telemetry.Json

let schema = "wsrepro-overload/v1"
let default_factors = [ 1.0; 2.0; 4.0 ]

type point = {
  ov_label : string;  (* "1x", "2x", ... *)
  ov_offered : float;  (* arrivals per 1000 ticks after scaling *)
  ov_sim : Ws_runtime.Open_system.report;
  ov_native : Exp_native.scenario_result option;
}

let scale_arrival factor = function
  | OL.Poisson { rate } -> OL.Poisson { rate = rate *. factor }
  | OL.Bursty b ->
      OL.Bursty
        {
          b with
          rate_lo = b.rate_lo *. factor;
          rate_hi = b.rate_hi *. factor;
        }

let scale_spec (spec : Scenarios.open_spec) factor =
  {
    spec with
    Scenarios.sc_arrival = scale_arrival factor spec.Scenarios.sc_arrival;
  }

let label_of_factor f =
  if Float.is_integer f then Printf.sprintf "%.0fx" f
  else Printf.sprintf "%.1fx" f

let sim_point ?sink spec =
  Ws_runtime.Open_system.run ?sink (Scenarios.open_config spec)

let run ?(factors = default_factors) ?(native = false) ?(jobs = 1) ?sink
    (spec : Scenarios.open_spec) =
  let specs = List.map (fun f -> (f, scale_spec spec f)) factors in
  let sims =
    match sink with
    | None -> Par_runner.map ~jobs (fun (_, s) -> sim_point s) specs
    | Some into ->
        Par_runner.map_sharded ~jobs ~into
          (fun shard (_, s) -> sim_point ~sink:shard s)
          specs
  in
  (* Native points run one at a time: each spawns its own worker domains,
     and overlapping pools would contend for cores and corrupt the very
     tail latencies being measured. *)
  List.map2
    (fun (f, s) sim ->
      {
        ov_label = label_of_factor f;
        ov_offered = OL.mean_rate s.Scenarios.sc_arrival;
        ov_sim = sim;
        ov_native =
          (if native then Some (Exp_native.scenario_native s) else None);
      })
    specs sims

(* --- report JSON (byte-stable via Telemetry.Json) -------------------- *)

let outcome_str = function
  | Tso.Sched.Quiescent -> "quiescent"
  | Tso.Sched.Deadlock -> "deadlock"
  | Tso.Sched.Max_steps -> "max-steps"

let sim_json (r : Ws_runtime.Open_system.report) =
  let module H = Telemetry.Histogram in
  J.Obj
    [
      ("outcome", J.Str (outcome_str r.Ws_runtime.Open_system.outcome));
      ("injected", J.Int r.Ws_runtime.Open_system.injected);
      ("dropped", J.Int r.Ws_runtime.Open_system.dropped);
      ("completed", J.Int r.Ws_runtime.Open_system.completed);
      ("makespan_ticks", J.Int r.Ws_runtime.Open_system.makespan);
      ("p50_ticks", J.Int r.Ws_runtime.Open_system.p50);
      ("p99_ticks", J.Int r.Ws_runtime.Open_system.p99);
      ("p999_ticks", J.Int r.Ws_runtime.Open_system.p999);
      (* stage attribution: qwait + dispatch + service = sojourn *)
      ("qwait_p99_ticks", J.Int (H.percentile r.Ws_runtime.Open_system.qwait 0.99));
      ( "dispatch_p99_ticks",
        J.Int (H.percentile r.Ws_runtime.Open_system.dispatch 0.99) );
      ( "service_p99_ticks",
        J.Int (H.percentile r.Ws_runtime.Open_system.service 0.99) );
      ( "sojourn_windows",
        Telemetry.Windowed.to_json r.Ws_runtime.Open_system.sojourn_windows );
      ( "qwait_windows",
        Telemetry.Windowed.to_json r.Ws_runtime.Open_system.qwait_windows );
      ("peak_queue", J.Int r.Ws_runtime.Open_system.peak_queue);
      ("block_spins", J.Int r.Ws_runtime.Open_system.block_spins);
      ("achieved_per_ktick", J.Float r.Ws_runtime.Open_system.achieved_rate);
    ]

let native_json (r : Exp_native.scenario_result) =
  let module H = Telemetry.Histogram in
  J.Obj
    [
      ("injected", J.Int r.Exp_native.sn_injected);
      ("dropped", J.Int r.Exp_native.sn_dropped);
      ("completed", J.Int r.Exp_native.sn_completed);
      ("elapsed_s", J.Float r.Exp_native.sn_elapsed);
      ("p50_ns", J.Int r.Exp_native.sn_p50_ns);
      ("p99_ns", J.Int r.Exp_native.sn_p99_ns);
      ("p999_ns", J.Int r.Exp_native.sn_p999_ns);
      (* per-cell stage attribution from the pool, in wall nanoseconds *)
      ("qwait_p99_ns", J.Int (H.percentile r.Exp_native.sn_qwait 0.99));
      ("dispatch_p99_ns", J.Int (H.percentile r.Exp_native.sn_dispatch 0.99));
      ("service_p99_ns", J.Int (H.percentile r.Exp_native.sn_service 0.99));
      ( "sojourn_windows",
        Telemetry.Windowed.to_json r.Exp_native.sn_windows );
      ("peak_injector", J.Int r.Exp_native.sn_peak_injector);
    ]

let point_json p =
  J.Obj
    (( [
         ("label", J.Str p.ov_label);
         ("offered_per_ktick", J.Float p.ov_offered);
         ("sim", sim_json p.ov_sim);
       ]
     @ match p.ov_native with
       | None -> []
       | Some n -> [ ("native", native_json n) ] ))

let report_json ?sink ?slo_ok (spec : Scenarios.open_spec) points =
  J.Obj
    ([
       ("schema", J.Str schema);
       ("scenario", Scenarios.open_spec_json spec);
       ("points", J.List (List.map point_json points));
     ]
    @ (match slo_ok with
      | None -> []
      | Some ok -> [ ("slo_ok", J.Bool ok) ])
    @
    match sink with
    | None -> []
    | Some s -> [ ("queue_counters", Telemetry.Sink.to_json s) ])

(* --- validation (for `wsrepro json-check`) --------------------------- *)

let ( let* ) = Result.bind

let need_int ctx obj k =
  match J.member k obj with
  | Some (J.Int i) -> Ok i
  | _ -> Error (Printf.sprintf "%s: missing integer %S" ctx k)

let check_tail ctx obj =
  let* p50 = need_int ctx obj "p50_ticks" in
  let* p99 = need_int ctx obj "p99_ticks" in
  let* p999 = need_int ctx obj "p999_ticks" in
  if p50 <= p99 && p99 <= p999 then Ok ()
  else Error (Printf.sprintf "%s: percentiles not monotone" ctx)

let check_counts ctx obj =
  let* injected = need_int ctx obj "injected" in
  let* dropped = need_int ctx obj "dropped" in
  let* completed = need_int ctx obj "completed" in
  if completed <> injected then
    Error
      (Printf.sprintf "%s: completed %d <> injected %d" ctx completed injected)
  else if dropped < 0 then Error (Printf.sprintf "%s: negative drops" ctx)
  else Ok ()

(* Each rotating-window series must be an object with a positive width
   and per-window entries whose indices strictly increase (the emitter
   sorts oldest-first; equal or descending indices mean a corrupted
   merge). *)
let check_windows ctx obj k =
  match J.member k obj with
  | Some (J.Obj _ as w) -> (
      let* width =
        match J.member "width" w with
        | Some (J.Int i) when i > 0 -> Ok i
        | _ -> Error (Printf.sprintf "%s.%s: missing positive \"width\"" ctx k)
      in
      ignore width;
      match J.member "windows" w with
      | Some (J.List ws) ->
          let rec go prev = function
            | [] -> Ok ()
            | wj :: rest -> (
                match J.member "window" wj with
                | Some (J.Int i) when i > prev -> go i rest
                | Some (J.Int _) ->
                    Error
                      (Printf.sprintf "%s.%s: window indices not increasing"
                         ctx k)
                | _ ->
                    Error
                      (Printf.sprintf "%s.%s: window entry missing index" ctx
                         k))
          in
          go (-1) ws
      | _ -> Error (Printf.sprintf "%s.%s: missing array \"windows\"" ctx k))
  | _ -> Error (Printf.sprintf "%s: missing object %S" ctx k)

let check_stages ctx obj =
  let* q = need_int ctx obj "qwait_p99_ticks" in
  let* d = need_int ctx obj "dispatch_p99_ticks" in
  let* s = need_int ctx obj "service_p99_ticks" in
  if q >= 0 && d >= 0 && s >= 0 then Ok ()
  else Error (Printf.sprintf "%s: negative stage percentile" ctx)

let validate_point i p =
  let ctx = Printf.sprintf "points[%d]" i in
  let* () =
    match J.member "label" p with
    | Some (J.Str _) -> Ok ()
    | _ -> Error (ctx ^ ": missing string \"label\"")
  in
  let* sim =
    match J.member "sim" p with
    | Some (J.Obj _ as o) -> Ok o
    | _ -> Error (ctx ^ ": missing object \"sim\"")
  in
  let* () = check_counts (ctx ^ ".sim") sim in
  let* () = check_tail (ctx ^ ".sim") sim in
  let* () = check_stages (ctx ^ ".sim") sim in
  let* () = check_windows (ctx ^ ".sim") sim "sojourn_windows" in
  let* () = check_windows (ctx ^ ".sim") sim "qwait_windows" in
  match J.member "native" p with
  | None -> Ok ()
  | Some (J.Obj _ as n) ->
      let nctx = ctx ^ ".native" in
      let* () = check_counts nctx n in
      let* p50 = need_int nctx n "p50_ns" in
      let* p99 = need_int nctx n "p99_ns" in
      let* p999 = need_int nctx n "p999_ns" in
      let* () =
        if p50 <= p99 && p99 <= p999 then Ok ()
        else Error (nctx ^ ": percentiles not monotone")
      in
      let* q = need_int nctx n "qwait_p99_ns" in
      let* d = need_int nctx n "dispatch_p99_ns" in
      let* s = need_int nctx n "service_p99_ns" in
      let* () =
        if q >= 0 && d >= 0 && s >= 0 then Ok ()
        else Error (nctx ^ ": negative stage percentile")
      in
      check_windows nctx n "sojourn_windows"
  | Some _ -> Error (ctx ^ ": \"native\" must be an object")

let validate j =
  let* () =
    match J.member "schema" j with
    | Some (J.Str s) when s = schema -> Ok ()
    | _ -> Error (Printf.sprintf "\"schema\" must be %S" schema)
  in
  let* () =
    match J.member "scenario" j with
    | Some sc -> Result.map (fun _ -> ()) (Scenarios.open_spec_of_json sc)
    | None -> Error "missing \"scenario\""
  in
  match J.member "points" j with
  | Some (J.List (_ :: _ as ps)) ->
      let rec go i = function
        | [] -> Ok ()
        | p :: rest ->
            let* () = validate_point i p in
            go (i + 1) rest
      in
      go 0 ps
  | Some (J.List []) -> Error "\"points\" must be non-empty"
  | _ -> Error "missing array \"points\""

(* --- rendering -------------------------------------------------------- *)

let render points =
  let header =
    [
      "load"; "offered/ktick"; "sim p50"; "sim p99"; "sim p999"; "sim drop";
      "peak q"; "nat p50us"; "nat p99us"; "nat p999us"; "nat drop";
    ]
  in
  let us ns = Printf.sprintf "%.1f" (float_of_int ns /. 1e3) in
  let rows =
    List.map
      (fun p ->
        let s = p.ov_sim in
        [
          p.ov_label;
          Tablefmt.f1 p.ov_offered;
          string_of_int s.Ws_runtime.Open_system.p50;
          string_of_int s.Ws_runtime.Open_system.p99;
          string_of_int s.Ws_runtime.Open_system.p999;
          string_of_int s.Ws_runtime.Open_system.dropped;
          string_of_int s.Ws_runtime.Open_system.peak_queue;
        ]
        @
        match p.ov_native with
        | None -> [ "-"; "-"; "-"; "-" ]
        | Some n ->
            [
              us n.Exp_native.sn_p50_ns;
              us n.Exp_native.sn_p99_ns;
              us n.Exp_native.sn_p999_ns;
              string_of_int n.Exp_native.sn_dropped;
            ])
      points
  in
  Tablefmt.render ~header rows

(* --- SLO verdicts ------------------------------------------------------ *)

(* Judge every sweep point against the scenario's SLO: the per-window
   sojourn p99 budget against each retained window of that point's
   sojourn ring, the stage budgets against the point's whole-run stage
   p99s, the drop-rate budget against dropped/offered. All inputs are
   deterministic sim output, so the verdict rows are cram-lockable. *)
let verdicts (slo : Scenarios.slo) points =
  let module H = Telemetry.Histogram in
  let module W = Telemetry.Windowed in
  let row load window metric actual budget ok =
    {
      Scenarios.vd_load = load;
      vd_window = window;
      vd_metric = metric;
      vd_actual = actual;
      vd_budget = budget;
      vd_ok = ok;
    }
  in
  List.concat_map
    (fun p ->
      let s = p.ov_sim in
      let load = p.ov_label in
      let window_rows =
        match slo.Scenarios.slo_p99_sojourn with
        | None -> []
        | Some budget ->
            List.map
              (fun (w, h) ->
                let actual = H.percentile h 0.99 in
                row load (string_of_int w) "sojourn_p99"
                  (string_of_int actual) (string_of_int budget)
                  (actual <= budget))
              (W.windows s.Ws_runtime.Open_system.sojourn_windows)
      in
      let stage_row metric budget h =
        match budget with
        | None -> []
        | Some b ->
            let actual = H.percentile h 0.99 in
            [
              row load "-" metric (string_of_int actual) (string_of_int b)
                (actual <= b);
            ]
      in
      let drop_row =
        match slo.Scenarios.slo_max_drop_rate with
        | None -> []
        | Some budget ->
            let offered =
              s.Ws_runtime.Open_system.injected
              + s.Ws_runtime.Open_system.dropped
            in
            let rate =
              if offered = 0 then 0.
              else
                float_of_int s.Ws_runtime.Open_system.dropped
                /. float_of_int offered
            in
            [
              row load "-" "drop_rate"
                (Printf.sprintf "%.4f" rate)
                (Printf.sprintf "%.4f" budget)
                (rate <= budget);
            ]
      in
      window_rows
      @ stage_row "qwait_p99" slo.Scenarios.slo_qwait_p99
          s.Ws_runtime.Open_system.qwait
      @ stage_row "dispatch_p99" slo.Scenarios.slo_dispatch_p99
          s.Ws_runtime.Open_system.dispatch
      @ stage_row "service_p99" slo.Scenarios.slo_service_p99
          s.Ws_runtime.Open_system.service
      @ drop_row)
    points

let section ?(factors = default_factors) ?(native = false) ?(jobs = 1) ?out
    (spec : Scenarios.open_spec) () =
  let sink = Telemetry.Sink.create () in
  let points = run ~factors ~native ~jobs ~sink spec in
  Printf.printf
    "== Heavy-traffic overload sweep: %s (sim ticks%s) ==\n%s"
    spec.Scenarios.sc_name
    (if native then " vs native wall time" else "")
    (render points);
  let slo_ok =
    match spec.Scenarios.sc_slo with
    | None -> None
    | Some slo ->
        let vs = verdicts slo points in
        print_string
          (Scenarios.render_verdicts ~name:spec.Scenarios.sc_name
             ~units:"sim ticks" vs);
        Some (Scenarios.verdicts_ok vs)
  in
  (match out with
  | None -> ()
  | Some file ->
      J.write_file file (report_json ~sink ?slo_ok spec points);
      Printf.printf "overload report written to %s\n" file);
  (* a scenario without an SLO block cannot fail its (absent) objectives *)
  Option.value ~default:true slo_ok
