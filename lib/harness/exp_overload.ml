(* Heavy-traffic overload sweep: one scenario run at 1x/2x/4x its offered
   load, on the timing model and (optionally) on the native pool, with the
   tail latencies side by side. The sim sweep fans out over domains with a
   per-domain sink shard (Par_runner.map_sharded), so the queue-operation
   counters in the report come out of the sharded measurement plane merged
   at the join — identical totals to a sequential sweep, no shared
   counter cache line while it runs.

   Sim and native replay the same pre-drawn plan per point (the factor is
   applied to the arrival process before the plan is drawn, so a 2x point
   is the same seed under doubled rates, not a resampling). Sojourn units
   differ by engine — ticks on the timing model, nanoseconds native — and
   the table prints both rather than pretending one converts into the
   other; the comparison is of shapes (tail growth, drop onset), not
   absolute values. *)

module OL = Ws_runtime.Open_load
module J = Telemetry.Json

let schema = "wsrepro-overload/v1"
let default_factors = [ 1.0; 2.0; 4.0 ]

type point = {
  ov_label : string;  (* "1x", "2x", ... *)
  ov_offered : float;  (* arrivals per 1000 ticks after scaling *)
  ov_sim : Ws_runtime.Open_system.report;
  ov_native : Exp_native.scenario_result option;
}

let scale_arrival factor = function
  | OL.Poisson { rate } -> OL.Poisson { rate = rate *. factor }
  | OL.Bursty b ->
      OL.Bursty
        {
          b with
          rate_lo = b.rate_lo *. factor;
          rate_hi = b.rate_hi *. factor;
        }

let scale_spec (spec : Scenarios.open_spec) factor =
  {
    spec with
    Scenarios.sc_arrival = scale_arrival factor spec.Scenarios.sc_arrival;
  }

let label_of_factor f =
  if Float.is_integer f then Printf.sprintf "%.0fx" f
  else Printf.sprintf "%.1fx" f

let sim_point ?sink spec =
  Ws_runtime.Open_system.run ?sink (Scenarios.open_config spec)

let run ?(factors = default_factors) ?(native = false) ?(jobs = 1) ?sink
    (spec : Scenarios.open_spec) =
  let specs = List.map (fun f -> (f, scale_spec spec f)) factors in
  let sims =
    match sink with
    | None -> Par_runner.map ~jobs (fun (_, s) -> sim_point s) specs
    | Some into ->
        Par_runner.map_sharded ~jobs ~into
          (fun shard (_, s) -> sim_point ~sink:shard s)
          specs
  in
  (* Native points run one at a time: each spawns its own worker domains,
     and overlapping pools would contend for cores and corrupt the very
     tail latencies being measured. *)
  List.map2
    (fun (f, s) sim ->
      {
        ov_label = label_of_factor f;
        ov_offered = OL.mean_rate s.Scenarios.sc_arrival;
        ov_sim = sim;
        ov_native =
          (if native then Some (Exp_native.scenario_native s) else None);
      })
    specs sims

(* --- report JSON (byte-stable via Telemetry.Json) -------------------- *)

let outcome_str = function
  | Tso.Sched.Quiescent -> "quiescent"
  | Tso.Sched.Deadlock -> "deadlock"
  | Tso.Sched.Max_steps -> "max-steps"

let sim_json (r : Ws_runtime.Open_system.report) =
  J.Obj
    [
      ("outcome", J.Str (outcome_str r.Ws_runtime.Open_system.outcome));
      ("injected", J.Int r.Ws_runtime.Open_system.injected);
      ("dropped", J.Int r.Ws_runtime.Open_system.dropped);
      ("completed", J.Int r.Ws_runtime.Open_system.completed);
      ("makespan_ticks", J.Int r.Ws_runtime.Open_system.makespan);
      ("p50_ticks", J.Int r.Ws_runtime.Open_system.p50);
      ("p99_ticks", J.Int r.Ws_runtime.Open_system.p99);
      ("p999_ticks", J.Int r.Ws_runtime.Open_system.p999);
      ("peak_queue", J.Int r.Ws_runtime.Open_system.peak_queue);
      ("block_spins", J.Int r.Ws_runtime.Open_system.block_spins);
      ("achieved_per_ktick", J.Float r.Ws_runtime.Open_system.achieved_rate);
    ]

let native_json (r : Exp_native.scenario_result) =
  J.Obj
    [
      ("injected", J.Int r.Exp_native.sn_injected);
      ("dropped", J.Int r.Exp_native.sn_dropped);
      ("completed", J.Int r.Exp_native.sn_completed);
      ("elapsed_s", J.Float r.Exp_native.sn_elapsed);
      ("p50_ns", J.Int r.Exp_native.sn_p50_ns);
      ("p99_ns", J.Int r.Exp_native.sn_p99_ns);
      ("p999_ns", J.Int r.Exp_native.sn_p999_ns);
      ("peak_injector", J.Int r.Exp_native.sn_peak_injector);
    ]

let point_json p =
  J.Obj
    (( [
         ("label", J.Str p.ov_label);
         ("offered_per_ktick", J.Float p.ov_offered);
         ("sim", sim_json p.ov_sim);
       ]
     @ match p.ov_native with
       | None -> []
       | Some n -> [ ("native", native_json n) ] ))

let report_json ?sink (spec : Scenarios.open_spec) points =
  J.Obj
    (( [
         ("schema", J.Str schema);
         ("scenario", Scenarios.open_spec_json spec);
         ("points", J.List (List.map point_json points));
       ]
     @ match sink with
       | None -> []
       | Some s -> [ ("queue_counters", Telemetry.Sink.to_json s) ] ))

(* --- validation (for `wsrepro json-check`) --------------------------- *)

let ( let* ) = Result.bind

let need_int ctx obj k =
  match J.member k obj with
  | Some (J.Int i) -> Ok i
  | _ -> Error (Printf.sprintf "%s: missing integer %S" ctx k)

let check_tail ctx obj =
  let* p50 = need_int ctx obj "p50_ticks" in
  let* p99 = need_int ctx obj "p99_ticks" in
  let* p999 = need_int ctx obj "p999_ticks" in
  if p50 <= p99 && p99 <= p999 then Ok ()
  else Error (Printf.sprintf "%s: percentiles not monotone" ctx)

let check_counts ctx obj =
  let* injected = need_int ctx obj "injected" in
  let* dropped = need_int ctx obj "dropped" in
  let* completed = need_int ctx obj "completed" in
  if completed <> injected then
    Error
      (Printf.sprintf "%s: completed %d <> injected %d" ctx completed injected)
  else if dropped < 0 then Error (Printf.sprintf "%s: negative drops" ctx)
  else Ok ()

let validate_point i p =
  let ctx = Printf.sprintf "points[%d]" i in
  let* () =
    match J.member "label" p with
    | Some (J.Str _) -> Ok ()
    | _ -> Error (ctx ^ ": missing string \"label\"")
  in
  let* sim =
    match J.member "sim" p with
    | Some (J.Obj _ as o) -> Ok o
    | _ -> Error (ctx ^ ": missing object \"sim\"")
  in
  let* () = check_counts (ctx ^ ".sim") sim in
  let* () = check_tail (ctx ^ ".sim") sim in
  match J.member "native" p with
  | None -> Ok ()
  | Some (J.Obj _ as n) ->
      let nctx = ctx ^ ".native" in
      let* () = check_counts nctx n in
      let* p50 = need_int nctx n "p50_ns" in
      let* p99 = need_int nctx n "p99_ns" in
      let* p999 = need_int nctx n "p999_ns" in
      if p50 <= p99 && p99 <= p999 then Ok ()
      else Error (nctx ^ ": percentiles not monotone")
  | Some _ -> Error (ctx ^ ": \"native\" must be an object")

let validate j =
  let* () =
    match J.member "schema" j with
    | Some (J.Str s) when s = schema -> Ok ()
    | _ -> Error (Printf.sprintf "\"schema\" must be %S" schema)
  in
  let* () =
    match J.member "scenario" j with
    | Some sc -> Result.map (fun _ -> ()) (Scenarios.open_spec_of_json sc)
    | None -> Error "missing \"scenario\""
  in
  match J.member "points" j with
  | Some (J.List (_ :: _ as ps)) ->
      let rec go i = function
        | [] -> Ok ()
        | p :: rest ->
            let* () = validate_point i p in
            go (i + 1) rest
      in
      go 0 ps
  | Some (J.List []) -> Error "\"points\" must be non-empty"
  | _ -> Error "missing array \"points\""

(* --- rendering -------------------------------------------------------- *)

let render points =
  let header =
    [
      "load"; "offered/ktick"; "sim p50"; "sim p99"; "sim p999"; "sim drop";
      "peak q"; "nat p50us"; "nat p99us"; "nat p999us"; "nat drop";
    ]
  in
  let us ns = Printf.sprintf "%.1f" (float_of_int ns /. 1e3) in
  let rows =
    List.map
      (fun p ->
        let s = p.ov_sim in
        [
          p.ov_label;
          Tablefmt.f1 p.ov_offered;
          string_of_int s.Ws_runtime.Open_system.p50;
          string_of_int s.Ws_runtime.Open_system.p99;
          string_of_int s.Ws_runtime.Open_system.p999;
          string_of_int s.Ws_runtime.Open_system.dropped;
          string_of_int s.Ws_runtime.Open_system.peak_queue;
        ]
        @
        match p.ov_native with
        | None -> [ "-"; "-"; "-"; "-" ]
        | Some n ->
            [
              us n.Exp_native.sn_p50_ns;
              us n.Exp_native.sn_p99_ns;
              us n.Exp_native.sn_p999_ns;
              string_of_int n.Exp_native.sn_dropped;
            ])
      points
  in
  Tablefmt.render ~header rows

let section ?(factors = default_factors) ?(native = false) ?(jobs = 1) ?out
    (spec : Scenarios.open_spec) () =
  let sink = Telemetry.Sink.create () in
  let points = run ~factors ~native ~jobs ~sink spec in
  Printf.printf
    "== Heavy-traffic overload sweep: %s (sim ticks%s) ==\n%s"
    spec.Scenarios.sc_name
    (if native then " vs native wall time" else "")
    (render points);
  match out with
  | None -> ()
  | Some file ->
      J.write_file file (report_json ~sink spec points);
      Printf.printf "overload report written to %s\n" file
