type row = {
  bench : string;
  baseline : float;
  cells : (string * float) list;
}

let compute machine ?(repeats = 3) ?benches ?(jobs = 1) () =
  let benches =
    match benches with
    | Some names -> List.map Ws_workloads.Cilk_suite.find names
    | None -> Ws_workloads.Cilk_suite.all
  in
  let seeds = List.init repeats (fun i -> 11 + (100 * i)) in
  let variants = Variants.the_baseline :: Variants.fig10 in
  (* One grid point per (bench, variant, seed), each an independent timed
     run on a fresh machine. DAGs are forced here, before the fan-out, so
     the parallel workers only read them. *)
  let points =
    List.concat_map
      (fun (b : Ws_workloads.Cilk_suite.bench) ->
        let dag = Ws_workloads.Cilk_suite.dag b in
        List.concat_map
          (fun v -> List.map (fun seed -> (b, dag, v, seed)) seeds)
          variants)
      benches
  in
  let results =
    Array.of_list
      (Par_runner.map ~jobs
         (fun ((b : Ws_workloads.Cilk_suite.bench), dag, v, seed) ->
           match Runner.run_dag machine v ~seeds:[ seed ] dag ~name:b.name with
           | [ m ] -> m
           | _ -> assert false)
         points)
  in
  (* Fold back in grid order: medians (and therefore the rendered table)
     are exactly the sequential ones. *)
  let n_seeds = List.length seeds in
  let n_variants = List.length variants in
  List.mapi
    (fun bi (b : Ws_workloads.Cilk_suite.bench) ->
      let median_of vi =
        Stats.median
          (List.init n_seeds (fun si ->
               results.(((bi * n_variants) + vi) * n_seeds + si)))
      in
      let baseline = median_of 0 in
      let cells =
        List.mapi
          (fun i v ->
            (v.Variants.label, 100.0 *. median_of (i + 1) /. baseline))
          Variants.fig10
      in
      { bench = b.name; baseline; cells })
    benches

let geomean_row rows =
  match rows with
  | [] -> []
  | first :: _ ->
      List.map
        (fun (label, _) ->
          ( label,
            Stats.geomean
              (List.map (fun r -> List.assoc label r.cells) rows) ))
        first.cells

let render machine rows =
  let labels = List.map (fun v -> v.Variants.label) Variants.fig10 in
  let header = "Benchmark" :: "THE (cyc)" :: labels in
  let body =
    List.map
      (fun r ->
        r.bench
        :: Printf.sprintf "%.0f" r.baseline
        :: List.map (fun l -> Tablefmt.pct (List.assoc l r.cells)) labels)
      rows
  in
  let geo =
    "Geo mean" :: ""
    :: List.map (fun (_, v) -> Tablefmt.pct v) (geomean_row rows)
  in
  Printf.sprintf "-- %s: %d workers, S = %d, default delta = %d --\n"
    machine.Machine_config.name machine.Machine_config.workers
    machine.Machine_config.reorder_bound
    (Machine_config.default_delta machine)
  ^ Tablefmt.render ~header (body @ [ geo ])

let run machine ?repeats ?benches ?jobs () =
  Printf.printf
    "== Figure 10 (%s): CilkPlus suite, normalized to the THE baseline ==\n"
    machine.Machine_config.name;
  print_string (render machine (compute machine ?repeats ?benches ?jobs ()))
