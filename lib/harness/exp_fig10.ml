type row = {
  bench : string;
  baseline : float;
  cells : (string * float) list;
}

type point_metrics = {
  pm_bench : string;
  pm_variant : string;
  pm_seed : int;
  pm_makespan : float;
  pm_sink : Telemetry.Sink.t;
}

let bench_list benches =
  match benches with
  | Some names -> List.map Ws_workloads.Cilk_suite.find names
  | None -> Ws_workloads.Cilk_suite.all

let seeds_of repeats = List.init repeats (fun i -> 11 + (100 * i))

let compute_ex machine ?(repeats = 3) ?benches ?(jobs = 1) ?(collect = false)
    ?on_progress () =
  let benches = bench_list benches in
  let seeds = seeds_of repeats in
  let variants = Variants.the_baseline :: Variants.fig10 in
  (* One grid point per (bench, variant, seed), each an independent timed
     run on a fresh machine. DAGs are forced here, before the fan-out, so
     the parallel workers only read them. *)
  let points =
    List.concat_map
      (fun (b : Ws_workloads.Cilk_suite.bench) ->
        let dag = Ws_workloads.Cilk_suite.dag b in
        List.concat_map
          (fun v -> List.map (fun seed -> (b, dag, v, seed)) seeds)
          variants)
      benches
  in
  let point_results =
    Array.of_list
      (Par_runner.map ~jobs ?on_progress
         (fun ((b : Ws_workloads.Cilk_suite.bench), dag, v, seed) ->
           let sink = if collect then Some (Telemetry.Sink.create ()) else None in
           match
             Runner.run_dag machine v ~seeds:[ seed ] ?sink dag ~name:b.name
           with
           | [ m ] ->
               ( m,
                 Option.map
                   (fun s ->
                     {
                       pm_bench = b.name;
                       pm_variant = v.Variants.label;
                       pm_seed = seed;
                       pm_makespan = m;
                       pm_sink = s;
                     })
                   sink )
           | _ -> assert false)
         points)
  in
  let results = Array.map fst point_results in
  (* Fold back in grid order: medians (and therefore the rendered table)
     are exactly the sequential ones. *)
  let n_seeds = List.length seeds in
  let n_variants = List.length variants in
  let rows =
    List.mapi
      (fun bi (b : Ws_workloads.Cilk_suite.bench) ->
        let median_of vi =
          Stats.median
            (List.init n_seeds (fun si ->
                 results.(((bi * n_variants) + vi) * n_seeds + si)))
        in
        let baseline = median_of 0 in
        let cells =
          List.mapi
            (fun i v ->
              (v.Variants.label, 100.0 *. median_of (i + 1) /. baseline))
            Variants.fig10
        in
        { bench = b.name; baseline; cells })
      benches
  in
  let metrics =
    if collect then
      List.filter_map snd (Array.to_list point_results)
    else []
  in
  (rows, metrics)

let compute machine ?repeats ?benches ?jobs () =
  fst (compute_ex machine ?repeats ?benches ?jobs ())

let geomean_row rows =
  match rows with
  | [] -> []
  | first :: _ ->
      List.map
        (fun (label, _) ->
          ( label,
            Stats.geomean
              (List.map (fun r -> List.assoc label r.cells) rows) ))
        first.cells

let render machine rows =
  let labels = List.map (fun v -> v.Variants.label) Variants.fig10 in
  let header = "Benchmark" :: "THE (cyc)" :: labels in
  let body =
    List.map
      (fun r ->
        r.bench
        :: Printf.sprintf "%.0f" r.baseline
        :: List.map (fun l -> Tablefmt.pct (List.assoc l r.cells)) labels)
      rows
  in
  let geo =
    "Geo mean" :: ""
    :: List.map (fun (_, v) -> Tablefmt.pct v) (geomean_row rows)
  in
  Printf.sprintf "-- %s: %d workers, S = %d, default delta = %d --\n"
    machine.Machine_config.name machine.Machine_config.workers
    machine.Machine_config.reorder_bound
    (Machine_config.default_delta machine)
  ^ Tablefmt.render ~header (body @ [ geo ])

(* The machine-readable sidecar (--metrics): per (bench, variant) group,
   counters merged over the seeds plus the derived rates the paper's
   argument runs on — most importantly fence-stall cycles per take, which
   is ~0 for the fence-free variants (their take path issues no fence; the
   residual stalls come from the thieves' locked steal path). *)
let metrics_schema = "wsrepro-metrics/v1"

let metrics_json machine ~repeats rows metrics =
  let module J = Telemetry.Json in
  let module S = Telemetry.Sink in
  let variants = Variants.the_baseline :: Variants.fig10 in
  let benches = List.map (fun r -> r.bench) rows in
  let groups =
    List.concat_map
      (fun bench ->
        List.map
          (fun (v : Variants.t) ->
            let pts =
              List.filter
                (fun p -> p.pm_bench = bench && p.pm_variant = v.Variants.label)
                metrics
            in
            let merged = S.create () in
            List.iter (fun p -> S.merge ~into:merged p.pm_sink) pts;
            let makespans = List.map (fun p -> p.pm_makespan) pts in
            let per count cycles =
              if count = 0 then 0.0
              else float_of_int cycles /. float_of_int count
            in
            let pct num den =
              if den = 0 then 0.0
              else 100.0 *. float_of_int num /. float_of_int den
            in
            J.Obj
              [
                ("bench", J.Str bench);
                ("variant", J.Str v.Variants.label);
                ("runs", J.Int (List.length pts));
                ("makespan_median", J.Float (Stats.median makespans));
                ("counters", S.to_json merged);
                ( "derived",
                  J.Obj
                    [
                      ( "fence_stall_cycles_per_take",
                        J.Float (per merged.S.takes merged.S.fence_stall_cycles)
                      );
                      ( "drain_stall_cycles_per_store",
                        J.Float
                          (per merged.S.stores merged.S.drain_stall_cycles) );
                      ( "steal_abort_rate_pct",
                        J.Float (pct merged.S.steal_aborts merged.S.steal_attempts)
                      );
                      ( "stolen_task_pct",
                        J.Float (pct merged.S.tasks_stolen merged.S.tasks_run)
                      );
                      ( "delta_checks_per_steal_attempt",
                        J.Float (per merged.S.steal_attempts merged.S.delta_checks)
                      );
                    ] );
              ])
          variants)
      benches
  in
  J.Obj
    [
      ("schema", J.Str metrics_schema);
      ("experiment", J.Str "fig10");
      ("machine", J.Str machine.Machine_config.name);
      ("workers", J.Int machine.Machine_config.workers);
      ("reorder_bound", J.Int machine.Machine_config.reorder_bound);
      ("repeats", J.Int repeats);
      ("groups", J.List groups);
    ]

(* The Chrome trace (--trace-json): one timed run per variant of the first
   selected benchmark, overlaid in a single trace with one process per
   variant (pid = variant index, named after its label), so Perfetto shows
   the fenced baseline's take-path stalls next to the fence-free variants'
   stall-free worker tracks. *)
let chrome_trace machine ?benches () =
  let b =
    match bench_list benches with b :: _ -> b | [] -> assert false
  in
  let dag = Ws_workloads.Cilk_suite.dag b in
  let tracer = Telemetry.Chrome_trace.create () in
  let seed = List.hd (seeds_of 1) in
  List.iteri
    (fun pid (v : Variants.t) ->
      Telemetry.Chrome_trace.set_process_name tracer ~pid
        (Printf.sprintf "%s %s" b.name v.Variants.label);
      ignore
        (Runner.run_dag machine v ~seeds:[ seed ] ~tracer ~trace_pid:pid dag
           ~name:b.name))
    (Variants.the_baseline :: Variants.fig10);
  tracer

let run machine ?(repeats = 3) ?benches ?jobs ?metrics_file ?trace_file
    ?(progress = false) () =
  Printf.printf
    "== Figure 10 (%s): CilkPlus suite, normalized to the THE baseline ==\n"
    machine.Machine_config.name;
  let on_progress, finish =
    if progress then
      let cb, fin = Par_runner.grid_progress ~label:"fig10" in
      (Some cb, fin)
    else (None, fun () -> ())
  in
  let collect = metrics_file <> None in
  let rows, metrics =
    compute_ex machine ~repeats ?benches ?jobs ~collect ?on_progress ()
  in
  finish ();
  print_string (render machine rows);
  (match metrics_file with
  | None -> ()
  | Some file ->
      Telemetry.Json.write_file file (metrics_json machine ~repeats rows metrics));
  match trace_file with
  | None -> ()
  | Some file ->
      Telemetry.Chrome_trace.write (chrome_trace machine ?benches ()) file
