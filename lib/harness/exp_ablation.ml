type delta_row = {
  delta : int;
  ff_the_pct : float;
  ff_the_aborts : int;
  thep_pct : float;
  thep_sep_pct : float;
}

let variant label queue delta =
  {
    Variants.label;
    queue;
    delta_of = (fun _ -> delta);
    worker_fence = false;
  }

let run_one machine v ~costs ~seed dag name =
  let cfg = { (Runner.config machine v ~seed ()) with Ws_runtime.Engine.costs } in
  let wl = Ws_runtime.Dag.instantiate dag ~name in
  let r = Ws_runtime.Engine.run_timed cfg wl in
  (match r.Ws_runtime.Engine.outcome with
  | Tso.Sched.Quiescent -> ()
  | _ -> failwith (name ^ ": ablation run did not quiesce"));
  if r.Ws_runtime.Engine.lost > 0 || r.Ws_runtime.Engine.duplicates > 0 then
    failwith (name ^ ": ablation run corrupted tasks");
  let makespan =
    match r.Ws_runtime.Engine.timing with
    | Some t -> float_of_int t.Tso.Timing.makespan
    | None -> assert false
  in
  (makespan, Ws_runtime.Metrics.total_aborts r.Ws_runtime.Engine.metrics)

let delta_sweep ?(machine = Machine_config.haswell) ?(bench = "knapsack")
    ?deltas ?(seed = 17) ?(jobs = 1) () =
  let deltas =
    match deltas with
    | Some d -> d
    | None ->
        let s = machine.Machine_config.reorder_bound in
        [ 2; 4; 8; Machine_config.default_delta machine; s ]
  in
  let b = Ws_workloads.Cilk_suite.find bench in
  let dag = Ws_workloads.Cilk_suite.dag b in
  let costs = machine.Machine_config.costs in
  let points =
    Variants.the_baseline
    :: List.concat_map
         (fun delta ->
           [
             variant "ff-the" "ff-the" delta;
             variant "thep" "thep" delta;
             variant "thep-sep" "thep-sep" delta;
           ])
         deltas
  in
  let results =
    Array.of_list
      (Par_runner.map ~jobs
         (fun v -> run_one machine v ~costs ~seed dag bench)
         points)
  in
  let baseline, _ = results.(0) in
  List.mapi
    (fun i delta ->
      let ff, aborts = results.(1 + (3 * i)) in
      let thep, _ = results.(2 + (3 * i)) in
      let thep_sep, _ = results.(3 + (3 * i)) in
      {
        delta;
        ff_the_pct = 100.0 *. ff /. baseline;
        ff_the_aborts = aborts;
        thep_pct = 100.0 *. thep /. baseline;
        thep_sep_pct = 100.0 *. thep_sep /. baseline;
      })
    deltas

type fence_row = {
  fence_cost : int;
  the_makespan : float;
  thep_makespan : float;
  thep_vs_the_pct : float;
}

let fence_sweep ?(machine = Machine_config.haswell) ?(bench = "Integrate")
    ?(costs = [ 0; 5; 10; 20; 40; 60 ]) ?(seed = 17) ?(jobs = 1) () =
  let b = Ws_workloads.Cilk_suite.find bench in
  let dag = Ws_workloads.Cilk_suite.dag b in
  let delta = 4 in
  let points =
    List.concat_map
      (fun fence_cost ->
        [
          (fence_cost, Variants.the_baseline);
          (fence_cost, variant "thep" "thep" delta);
        ])
      costs
  in
  let results =
    Array.of_list
      (Par_runner.map ~jobs
         (fun (fence_cost, v) ->
           let cm =
             { machine.Machine_config.costs with Tso.Timing.fence_cost }
           in
           run_one machine v ~costs:cm ~seed dag bench)
         points)
  in
  List.mapi
    (fun i fence_cost ->
      let the, _ = results.(2 * i) in
      let thep, _ = results.((2 * i) + 1) in
      {
        fence_cost;
        the_makespan = the;
        thep_makespan = thep;
        thep_vs_the_pct = 100.0 *. thep /. the;
      })
    costs

type victim_row = {
  policy : string;
  makespan : float;
  steal_attempts : int;
}

let victim_sweep ?(machine = Machine_config.haswell) ?(bench = "QuickSort")
    ?(seed = 17) ?(jobs = 1) () =
  let b = Ws_workloads.Cilk_suite.find bench in
  let dag = Ws_workloads.Cilk_suite.dag b in
  Par_runner.map ~jobs
    (fun (policy_name, victim) ->
      let v = variant "thep" "thep" 4 in
      let cfg =
        { (Runner.config machine v ~seed ()) with Ws_runtime.Engine.victim }
      in
      let wl = Ws_runtime.Dag.instantiate dag ~name:bench in
      let r = Ws_runtime.Engine.run_timed cfg wl in
      (match r.Ws_runtime.Engine.outcome with
      | Tso.Sched.Quiescent -> ()
      | _ -> failwith "victim ablation run did not quiesce");
      let makespan =
        match r.Ws_runtime.Engine.timing with
        | Some t -> float_of_int t.Tso.Timing.makespan
        | None -> assert false
      in
      {
        policy = policy_name;
        makespan;
        steal_attempts =
          Array.fold_left
            (fun acc w -> acc + w.Ws_runtime.Metrics.steal_attempts)
            0 r.Ws_runtime.Engine.metrics.Ws_runtime.Metrics.workers;
      })
    [
      ("random", Ws_runtime.Engine.Random_victim);
      ("round-robin", Ws_runtime.Engine.Round_robin_victim);
    ]

let run ?(machine = Machine_config.haswell) ?jobs () =
  Printf.printf "== Ablation: delta sweep (%s, knapsack; %% of THE) ==\n"
    machine.Machine_config.name;
  let rows = delta_sweep ~machine ?jobs () in
  Tablefmt.print
    ~header:[ "delta"; "FF-THE"; "FF-THE aborts"; "THEP"; "THEP-sep" ]
    (List.map
       (fun r ->
         [
           string_of_int r.delta;
           Tablefmt.pct r.ff_the_pct;
           string_of_int r.ff_the_aborts;
           Tablefmt.pct r.thep_pct;
           Tablefmt.pct r.thep_sep_pct;
         ])
       rows);
  Printf.printf
    "\n== Ablation: fence-cost sweep (%s, Integrate; THEP normalized to THE) ==\n"
    machine.Machine_config.name;
  let rows = fence_sweep ~machine ?jobs () in
  Tablefmt.print
    ~header:[ "fence cost (cyc)"; "THE (cyc)"; "THEP (cyc)"; "THEP vs THE" ]
    (List.map
       (fun r ->
         [
           string_of_int r.fence_cost;
           Printf.sprintf "%.0f" r.the_makespan;
           Printf.sprintf "%.0f" r.thep_makespan;
           Tablefmt.pct r.thep_vs_the_pct;
         ])
       rows);
  Printf.printf
    "\n== Ablation: victim selection (%s, QuickSort, THEP d=4) ==\n"
    machine.Machine_config.name;
  let rows = victim_sweep ~machine ?jobs () in
  Tablefmt.print
    ~header:[ "policy"; "makespan (cyc)"; "steal attempts" ]
    (List.map
       (fun r ->
         [ r.policy; Printf.sprintf "%.0f" r.makespan; string_of_int r.steal_attempts ])
       rows)
