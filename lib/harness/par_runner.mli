(** Deterministic parallel map over OCaml 5 domains, for fanning the
    independent grid points of an experiment (workload × variant × seed)
    across cores. *)

val map :
  ?jobs:int ->
  ?on_progress:(done_count:int -> total:int -> unit) ->
  ('a -> 'b) ->
  'a list ->
  'b list
(** [map ~jobs f xs] is [List.map f xs] computed by up to [jobs] domains
    (the caller's included). Results keep list order, so output assembled
    from them is byte-identical to the sequential run; each [f] must be
    self-contained (the experiment runners build a fresh machine per grid
    point). [jobs <= 1] runs sequentially with no domain spawned. If some
    [f] raises, the first failure in list order is re-raised after all
    domains join.

    [on_progress] is invoked only on the calling domain (after each grid
    point {e it} completes), with the globally completed count — the hook
    for a live status line; it need not be thread-safe. *)

val map_sharded :
  ?jobs:int ->
  ?on_progress:(done_count:int -> total:int -> unit) ->
  into:Telemetry.Sink.t ->
  (Telemetry.Sink.t -> 'a -> 'b) ->
  'a list ->
  'b list
(** {!map} with a sharded measurement plane: each domain receives its own
    private {!Telemetry.Sink} shard as [f]'s first argument (attach it to
    that grid point's machine, or accumulate into it directly), so no
    counter cache line is ever written from two domains, and the shards
    are batch-merged into [into] at the join. Sink merging is field-wise
    addition, so the merged totals equal a sequential run's regardless of
    how points were distributed. *)

val grid_progress :
  label:string ->
  (done_count:int -> total:int -> unit) * (unit -> unit)
(** A ready-made [on_progress] callback maintaining a "done/total (rate)"
    status line on stderr (throttled, via {!Telemetry.Progress}), and the
    finisher that terminates the line. One pair per grid. *)
