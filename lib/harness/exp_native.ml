(* Silicon cross-check for the simulator, in two parts.

   Parity: the same fib / graph-reachability workloads run (a) through the
   discrete-event simulator (cycles) and (b) on the native OCaml 5 pool
   (wallclock). The absolute units differ by construction; what must agree
   is the shape — which workload is throughput-heavier, and by roughly what
   factor — so the table reports normalized tasks-per-unit-time for both
   and their fib/graph ratios side by side.

   Service: an open-system benchmark the simulator cannot run — Poisson
   arrivals submitted from a non-worker domain (exercising the injector
   path), each request a chain of dependent stages, sojourn latency
   recorded into a telemetry histogram for p50/p99/p999. *)

type native_point = { tasks : int; seconds : float; tasks_per_sec : float }

type parity_row = {
  workload : string;
  sim_tasks : int;
  sim_makespan : float;  (* cycles *)
  sim_tasks_per_mcycle : float;
  native : native_point;
}

type service_result = {
  requests : int;
  completed : int;
  rate : float;  (* offered load, requests/s *)
  elapsed : float;
  throughput_rps : float;
  p50_ns : int;
  p99_ns : int;
  p999_ns : int;
  sojourn : Telemetry.Histogram.t;
  steals : int;
  injector_runs : int;
  parks : int;
  (* stage attribution (ns, per cell) — all empty unless ~attribution *)
  st_qwait : Telemetry.Histogram.t;
  st_dispatch : Telemetry.Histogram.t;
  st_service : Telemetry.Histogram.t;
  st_windows : Telemetry.Windowed.t;
  (* steal-delay (spawn to stolen run, ns) joined from the flight
     recorder's lineage — empty unless ~flight *)
  st_steal_delay : Telemetry.Histogram.t;
}

(* ------------------------------------------------------------------ *)
(* Native measurements                                                 *)
(* ------------------------------------------------------------------ *)

let mk_pool ?domains ?backend ?policy ?steal_half ?(telemetry = false) () =
  Ws_native.Pool.create ?domains ?backend ?policy ?steal_half ~telemetry ()

let timed_point pool f =
  let before = Ws_native.Pool.tasks_run pool in
  let t0 = Unix.gettimeofday () in
  f ();
  let seconds = Unix.gettimeofday () -. t0 in
  let tasks = Ws_native.Pool.tasks_run pool - before in
  let seconds = if seconds <= 0. then 1e-9 else seconds in
  { tasks; seconds; tasks_per_sec = float_of_int tasks /. seconds }

let native_fib ?domains ?backend ?policy ?steal_half ~n () =
  let pool = mk_pool ?domains ?backend ?policy ?steal_half () in
  let point =
    timed_point pool (fun () -> ignore (Ws_native.Pool.fib pool n))
  in
  Ws_native.Pool.shutdown pool;
  point

(* Native single-source reachability, the pool-side twin of the simulated
   transitive-closure workload: "visit u" CASes each neighbour's visited
   flag and spawns the winners, so each node is visited exactly once. *)
let native_graph ?domains ?backend ?policy ?steal_half ~nodes ~edges ~seed ()
    =
  let g = Ws_workloads.Graph.random_graph ~nodes ~edges ~seed in
  let pool = mk_pool ?domains ?backend ?policy ?steal_half () in
  let visited = Array.init nodes (fun _ -> Atomic.make false) in
  let rec visit u () =
    Array.iter
      (fun v ->
        if
          (not (Atomic.get visited.(v)))
          && Atomic.compare_and_set visited.(v) false true
        then Ws_native.Pool.spawn pool (visit v))
      g.Ws_workloads.Graph.adj.(u)
  in
  Atomic.set visited.(0) true;
  let point =
    timed_point pool (fun () -> Ws_native.Pool.parallel_run pool [ visit 0 ])
  in
  Ws_native.Pool.shutdown pool;
  (* cross-check against a host BFS before trusting the numbers *)
  let expect = Ws_workloads.Graph.reachable_from g 0 in
  Array.iteri
    (fun i e ->
      if e <> Atomic.get visited.(i) then
        failwith
          (Printf.sprintf "native_graph: node %d visited=%b, BFS says %b" i
             (Atomic.get visited.(i)) e))
    expect;
  point

(* ------------------------------------------------------------------ *)
(* Simulated measurements                                              *)
(* ------------------------------------------------------------------ *)

let sim_fib ~machine ~n ~seed =
  let dag = Ws_runtime.Dag.of_comp (Ws_workloads.Cilk_suite.fib n) in
  let makespan =
    List.hd
      (Runner.run_dag machine Variants.the_baseline ~seeds:[ seed ] dag
         ~name:"native-parity-fib")
  in
  (Ws_runtime.Dag.size dag, makespan)

let sim_graph ~machine ~nodes ~edges ~seed =
  let g = Ws_workloads.Graph.random_graph ~nodes ~edges ~seed in
  let makespan, metrics =
    Runner.run_checked machine Variants.the_baseline ~seed (fun () ->
        Ws_workloads.Graph_workloads.transitive_closure g ~src:0 ())
  in
  (Ws_runtime.Metrics.total_tasks metrics, makespan)

(* ------------------------------------------------------------------ *)
(* Parity                                                              *)
(* ------------------------------------------------------------------ *)

let parity_row ~workload ~sim:(sim_tasks, sim_makespan) ~native =
  {
    workload;
    sim_tasks;
    sim_makespan;
    sim_tasks_per_mcycle = float_of_int sim_tasks /. (sim_makespan /. 1e6);
    native;
  }

let parity ?(machine = Machine_config.westmere_ex) ?domains ?backend ?policy
    ?steal_half ?(fib_n = 20) ?(graph_nodes = 2000) ?graph_edges ?(seed = 23)
    () =
  let graph_edges = Option.value graph_edges ~default:(4 * graph_nodes) in
  [
    parity_row ~workload:(Printf.sprintf "fib(%d)" fib_n)
      ~sim:(sim_fib ~machine ~n:fib_n ~seed)
      ~native:(native_fib ?domains ?backend ?policy ?steal_half ~n:fib_n ());
    parity_row
      ~workload:(Printf.sprintf "graph(%d,%d)" graph_nodes graph_edges)
      ~sim:(sim_graph ~machine ~nodes:graph_nodes ~edges:graph_edges ~seed)
      ~native:
        (native_graph ?domains ?backend ?policy ?steal_half ~nodes:graph_nodes
           ~edges:graph_edges ~seed ());
  ]

let render_parity rows =
  let table =
    Tablefmt.render
      ~header:
        [
          "workload";
          "sim tasks";
          "sim cycles";
          "sim tasks/Mcyc";
          "native tasks";
          "native ms";
          "native ktasks/s";
        ]
      (List.map
         (fun r ->
           [
             r.workload;
             string_of_int r.sim_tasks;
             Printf.sprintf "%.0f" r.sim_makespan;
             Tablefmt.f1 r.sim_tasks_per_mcycle;
             string_of_int r.native.tasks;
             Printf.sprintf "%.2f" (r.native.seconds *. 1e3);
             Tablefmt.f1 (r.native.tasks_per_sec /. 1e3);
           ])
         rows)
  in
  match rows with
  | [ a; b ] when b.sim_tasks_per_mcycle > 0. && b.native.tasks_per_sec > 0.
    ->
      table
      ^ Printf.sprintf
          "ratio %s : %s — simulated %.2f, native %.2f (relative throughput \
           shape)\n"
          a.workload b.workload
          (a.sim_tasks_per_mcycle /. b.sim_tasks_per_mcycle)
          (a.native.tasks_per_sec /. b.native.tasks_per_sec)
  | _ -> table

(* ------------------------------------------------------------------ *)
(* Open-system service benchmark                                       *)
(* ------------------------------------------------------------------ *)

let spin_work iters =
  let x = ref 0 in
  for i = 1 to iters do
    x := !x + i
  done;
  ignore (Sys.opaque_identity !x)

(* The fourth stage the three timestamps cannot see: how long a stolen
   task sat between its victim-side spawn and its thief-side run. The
   flight recorder's lineage join recovers it — every [Stolen] lineage
   pairs the spawn and run events of one migrated task. *)
let steal_delay_of_flight recorder =
  let module FR = Telemetry.Flight_recorder in
  let h = Telemetry.Histogram.create () in
  let lineages, _unresolved = FR.reconstruct recorder in
  List.iter
    (fun l ->
      match l.FR.origin with
      | FR.Stolen _ -> Telemetry.Histogram.observe h (l.FR.run_ts - l.FR.spawn_ts)
      | FR.Pop | FR.Injected -> ())
    lineages;
  h

let service ?domains ?backend ?policy ?steal_half ?(telemetry = false)
    ?(attribution = false) ?(flight = false) ?monitor ?(rate = 5000.)
    ?(requests = 1000) ?(chain = 4) ?(work = 2000) ?(seed = 23) () =
  if rate <= 0. then invalid_arg "Exp_native.service: rate must be positive";
  let pool =
    Ws_native.Pool.create ?domains ?backend ?policy ?steal_half ~telemetry
      ~attribution ~flight ()
  in
  (* The monitor (metrics server, live dashboard) attaches to the running
     pool and returns its own teardown, invoked after the last request
     completes but before the pool shuts down. *)
  let stop_monitor =
    match monitor with Some m -> m pool | None -> fun () -> ()
  in
  let sojourn = Telemetry.Histogram.create () in
  let hist_lock = Mutex.create () in
  let completed = Atomic.make 0 in
  let rng = Random.State.make [| seed; 0x5e47 |] in
  let t0 = Unix.gettimeofday () in
  (* Absolute Poisson schedule: if the generator falls behind it submits
     immediately, keeping the offered load open-system (arrivals do not
     wait for service). *)
  let next = ref t0 in
  for _ = 1 to requests do
    next :=
      !next +. (-.log (1. -. Random.State.float rng 1.) /. rate);
    let delay = !next -. Unix.gettimeofday () in
    if delay > 0. then Unix.sleepf delay;
    let born = Unix.gettimeofday () in
    let rec stage k () =
      spin_work work;
      if k > 1 then Ws_native.Pool.spawn pool (stage (k - 1))
      else begin
        let ns = int_of_float ((Unix.gettimeofday () -. born) *. 1e9) in
        Mutex.lock hist_lock;
        Telemetry.Histogram.observe sojourn ns;
        Mutex.unlock hist_lock;
        Atomic.incr completed
      end
    in
    (* submitted from this non-worker domain: goes through the injector *)
    Ws_native.Pool.spawn pool (stage chain)
  done;
  while Atomic.get completed < requests do
    Domain.cpu_relax ()
  done;
  let elapsed = Unix.gettimeofday () -. t0 in
  stop_monitor ();
  let stats = Ws_native.Pool.worker_stats pool in
  let recorder = Ws_native.Pool.flight pool in
  Ws_native.Pool.shutdown pool;
  (* read the stage planes after the join: every worker has flushed *)
  let st_qwait, st_dispatch, st_service = Ws_native.Pool.stage_hists pool in
  let st_windows = Ws_native.Pool.windowed_sojourn pool in
  let st_steal_delay =
    match recorder with
    | Some r -> steal_delay_of_flight r
    | None -> Telemetry.Histogram.create ()
  in
  let sum f = Array.fold_left (fun acc st -> acc + f st) 0 stats in
  {
    requests;
    completed = Atomic.get completed;
    rate;
    elapsed;
    throughput_rps = float_of_int requests /. elapsed;
    p50_ns = Telemetry.Histogram.percentile sojourn 0.5;
    p99_ns = Telemetry.Histogram.percentile sojourn 0.99;
    p999_ns = Telemetry.Histogram.percentile sojourn 0.999;
    sojourn;
    steals = sum (fun st -> st.Ws_native.Pool.steals);
    injector_runs = sum (fun st -> st.Ws_native.Pool.injector_runs);
    parks = sum (fun st -> st.Ws_native.Pool.parks);
    st_qwait;
    st_dispatch;
    st_service;
    st_windows;
    st_steal_delay;
  }

let render_service r =
  let module H = Telemetry.Histogram in
  let base =
    Printf.sprintf
      "requests=%d completed=%d offered=%.0f/s achieved=%.0f/s elapsed=%.3fs\n\
       sojourn p50=%dns p99=%dns p999=%dns\n\
       pool: steals=%d injector_runs=%d parks=%d\n"
      r.requests r.completed r.rate r.throughput_rps r.elapsed r.p50_ns
      r.p99_ns r.p999_ns r.steals r.injector_runs r.parks
  in
  let stages =
    if H.total r.st_qwait = 0 then ""
    else
      Printf.sprintf
        "stages: qwait p99=%dns dispatch p99=%dns service p99=%dns\n"
        (H.percentile r.st_qwait 0.99)
        (H.percentile r.st_dispatch 0.99)
        (H.percentile r.st_service 0.99)
  in
  let steal_delay =
    if H.total r.st_steal_delay = 0 then ""
    else
      Printf.sprintf "steal-delay: p50=%dns p99=%dns (%d stolen)\n"
        (H.percentile r.st_steal_delay 0.5)
        (H.percentile r.st_steal_delay 0.99)
        (H.total r.st_steal_delay)
  in
  base ^ stages ^ steal_delay

(* ------------------------------------------------------------------ *)
(* Scenario-driven native runs (`wsrepro native --scenario`)           *)
(* ------------------------------------------------------------------ *)

(* The native half of a scenario: replay the same pre-drawn plan the
   timing model replays, with ticks mapped to wall time through the
   scenario's [tick_ns]. Arrivals follow an absolute schedule (a late
   generator submits immediately rather than shifting the remaining
   arrivals), service burns wall-clock time, and the injector bound is
   enforced by [Pool.submit] under the scenario's drop/block policy — so
   overload shows up exactly where it does in the simulator: drops under
   Drop, arrival-side delay under Block. *)

type scenario_result = {
  sn_injected : int;
  sn_dropped : int;
  sn_completed : int;
  sn_elapsed : float;  (* first submission to last completion, seconds *)
  sn_p50_ns : int;
  sn_p99_ns : int;
  sn_p999_ns : int;
  sn_sojourn : Telemetry.Histogram.t;
  sn_peak_injector : int;  (* max injector depth seen at submission *)
  sn_steals : int;
  sn_injector_runs : int;
  sn_parks : int;
  (* per-cell stage attribution from the pool (ns) *)
  sn_qwait : Telemetry.Histogram.t;
  sn_dispatch : Telemetry.Histogram.t;
  sn_service : Telemetry.Histogram.t;
  (* request-level rotating sojourn windows, width = slo window (or the
     default) converted to ns through sc_tick_ns *)
  sn_windows : Telemetry.Windowed.t;
}

(* The simulated queue picks the native backend: Chase-Lev-family queues
   (CAS steals) map to the Chase-Lev deques, everything else to THE. *)
let backend_of_queue q =
  match q with
  | "chase-lev" | "chase-lev-dyn" | "abp" | "ff-cl" ->
      Ws_native.Pool.Chase_lev_deques
  | _ -> Ws_native.Pool.The_deques

let native_policy = function
  | Ws_runtime.Open_load.Drop -> Ws_native.Pool.Drop
  | Ws_runtime.Open_load.Block -> Ws_native.Pool.Block

(* Busy-wait for [ns] wall nanoseconds: scenario service times are real
   compute from the scheduler's point of view, so the worker must stay on
   core (sleeping would park the domain and understate contention). *)
let spin_ns ns =
  if ns > 0 then begin
    let fin = Unix.gettimeofday () +. (float_of_int ns *. 1e-9) in
    while Unix.gettimeofday () < fin do
      Domain.cpu_relax ()
    done
  end

let scenario_native ?monitor (spec : Scenarios.open_spec) =
  let open Ws_runtime in
  let plan =
    Open_load.plan ~seed:spec.Scenarios.sc_seed
      ~requests:spec.Scenarios.sc_requests spec.Scenarios.sc_arrival
      spec.Scenarios.sc_service
  in
  let chain = spec.Scenarios.sc_chain in
  let tick_ns = spec.Scenarios.sc_tick_ns in
  let policy = native_policy spec.Scenarios.sc_policy in
  (* the window geometry the SLO block asks for, in wall nanoseconds *)
  let slo =
    Option.value spec.Scenarios.sc_slo ~default:Scenarios.default_slo
  in
  let window_ns = max 1 (slo.Scenarios.slo_window * tick_ns) in
  let window_slots = slo.Scenarios.slo_window_slots in
  let pool =
    Ws_native.Pool.create ~domains:spec.Scenarios.sc_workers
      ~backend:(backend_of_queue spec.Scenarios.sc_queue)
      ~injector_capacity:spec.Scenarios.sc_capacity ~attribution:true
      ~window_ns ~window_slots ()
  in
  let stop_monitor =
    match monitor with Some m -> m pool | None -> fun () -> ()
  in
  let sojourn = Telemetry.Histogram.create () in
  let windows =
    Telemetry.Windowed.create ~slots:window_slots ~width:window_ns ()
  in
  let hist_lock = Mutex.create () in
  let injected = ref 0 in
  let dropped = ref 0 in
  let peak_injector = ref 0 in
  let completed = Atomic.make 0 in
  let t0 = Unix.gettimeofday () in
  let next = ref t0 in
  for i = 0 to spec.Scenarios.sc_requests - 1 do
    (* Same stage split as the simulator: base + remainder spread over the
       first stages, so sim and native run identical per-stage demands. *)
    let s = plan.Open_load.services.(i) in
    let base = s / chain and rem = s mod chain in
    next :=
      !next
      +. (float_of_int (plan.Open_load.gaps.(i) * tick_ns) *. 1e-9);
    let delay = !next -. Unix.gettimeofday () in
    if delay > 0. then Unix.sleepf delay;
    let born = Unix.gettimeofday () in
    let rec stage k () =
      spin_ns ((base + if k < rem then 1 else 0) * tick_ns);
      if k < chain - 1 then Ws_native.Pool.spawn pool (stage (k + 1))
      else begin
        let ns = int_of_float ((Unix.gettimeofday () -. born) *. 1e9) in
        Mutex.lock hist_lock;
        Telemetry.Histogram.observe sojourn ns;
        (* keyed by completion instant: the monotonic clock is system-wide,
           so the hist_lock-serialized stream is monotone up to inter-core
           skew (orders of magnitude below the window width) *)
        Telemetry.Windowed.observe windows ~now:(Telemetry.Clock.now_ns ()) ns;
        Mutex.unlock hist_lock;
        Atomic.incr completed
      end
    in
    let depth = Ws_native.Pool.injector_depth pool in
    if depth > !peak_injector then peak_injector := depth;
    if Ws_native.Pool.submit ~policy pool (stage 0) then incr injected
    else incr dropped
  done;
  while Atomic.get completed < !injected do
    Domain.cpu_relax ()
  done;
  let elapsed = Unix.gettimeofday () -. t0 in
  stop_monitor ();
  let stats = Ws_native.Pool.worker_stats pool in
  Ws_native.Pool.shutdown pool;
  let sn_qwait, sn_dispatch, sn_service = Ws_native.Pool.stage_hists pool in
  let sum f = Array.fold_left (fun acc st -> acc + f st) 0 stats in
  {
    sn_injected = !injected;
    sn_dropped = !dropped;
    sn_completed = Atomic.get completed;
    sn_elapsed = elapsed;
    sn_p50_ns = Telemetry.Histogram.percentile sojourn 0.5;
    sn_p99_ns = Telemetry.Histogram.percentile sojourn 0.99;
    sn_p999_ns = Telemetry.Histogram.percentile sojourn 0.999;
    sn_sojourn = sojourn;
    sn_peak_injector = !peak_injector;
    sn_steals = sum (fun st -> st.Ws_native.Pool.steals);
    sn_injector_runs = sum (fun st -> st.Ws_native.Pool.injector_runs);
    sn_parks = sum (fun st -> st.Ws_native.Pool.parks);
    sn_qwait;
    sn_dispatch;
    sn_service;
    sn_windows = windows;
  }

let render_scenario_native (spec : Scenarios.open_spec) r =
  let module H = Telemetry.Histogram in
  Printf.sprintf
    "scenario=%s injected=%d dropped=%d completed=%d elapsed=%.3fs\n\
     sojourn p50=%dns p99=%dns p999=%dns\n\
     stages: qwait p99=%dns dispatch p99=%dns service p99=%dns\n\
     pool: peak_injector=%d steals=%d injector_runs=%d parks=%d\n"
    spec.Scenarios.sc_name r.sn_injected r.sn_dropped r.sn_completed
    r.sn_elapsed r.sn_p50_ns r.sn_p99_ns r.sn_p999_ns
    (H.percentile r.sn_qwait 0.99)
    (H.percentile r.sn_dispatch 0.99)
    (H.percentile r.sn_service 0.99)
    r.sn_peak_injector r.sn_steals r.sn_injector_runs r.sn_parks

(* Judge the native replay against the scenario's SLO. Budgets are stated
   in ticks; the native engine runs wall time, so each budget converts
   through sc_tick_ns. Window indices are absolute monotonic-ns values —
   meaningless across runs — so the table prints them relative to the
   first retained window. *)
let native_verdicts (spec : Scenarios.open_spec) (slo : Scenarios.slo) r =
  let module H = Telemetry.Histogram in
  let module W = Telemetry.Windowed in
  let tick_ns = spec.Scenarios.sc_tick_ns in
  let to_ns ticks = ticks * tick_ns in
  let row window metric actual budget ok =
    {
      Scenarios.vd_load = "native";
      vd_window = window;
      vd_metric = metric;
      vd_actual = actual;
      vd_budget = budget;
      vd_ok = ok;
    }
  in
  let window_rows =
    match slo.Scenarios.slo_p99_sojourn with
    | None -> []
    | Some budget_ticks ->
        let budget = to_ns budget_ticks in
        let ws = W.windows r.sn_windows in
        let base = match ws with [] -> 0 | (w, _) :: _ -> w in
        List.map
          (fun (w, h) ->
            let actual = H.percentile h 0.99 in
            row
              (string_of_int (w - base))
              "sojourn_p99" (string_of_int actual) (string_of_int budget)
              (actual <= budget))
          ws
  in
  let stage_row metric budget h =
    match budget with
    | None -> []
    | Some b ->
        let budget = to_ns b in
        let actual = H.percentile h 0.99 in
        [
          row "-" metric (string_of_int actual) (string_of_int budget)
            (actual <= budget);
        ]
  in
  let drop_row =
    match slo.Scenarios.slo_max_drop_rate with
    | None -> []
    | Some budget ->
        let offered = r.sn_injected + r.sn_dropped in
        let rate =
          if offered = 0 then 0.
          else float_of_int r.sn_dropped /. float_of_int offered
        in
        [
          row "-" "drop_rate"
            (Printf.sprintf "%.4f" rate)
            (Printf.sprintf "%.4f" budget)
            (rate <= budget);
        ]
  in
  window_rows
  @ stage_row "qwait_p99" slo.Scenarios.slo_qwait_p99 r.sn_qwait
  @ stage_row "dispatch_p99" slo.Scenarios.slo_dispatch_p99 r.sn_dispatch
  @ stage_row "service_p99" slo.Scenarios.slo_service_p99 r.sn_service
  @ drop_row

(* ------------------------------------------------------------------ *)
(* Live metrics plane: scrape -> OpenMetrics                           *)
(* ------------------------------------------------------------------ *)

let pool_metrics pool =
  let open Telemetry.Openmetrics in
  let snap = Ws_native.Pool.scrape pool in
  let stats = snap.Ws_native.Pool.slot_stats in
  let per_slot f =
    Array.to_list
      (Array.mapi
         (fun i st ->
           sample ~labels:[ ("slot", string_of_int i) ] (float_of_int (f st)))
         stats)
  in
  let g name help v =
    gauge ~name ~help [ sample (float_of_int v) ]
  in
  let counters =
    [
      counter ~name:"ws_pool_spawns" ~help:"Tasks pushed by each slot"
        (per_slot (fun st -> st.Ws_native.Pool.spawns));
      counter ~name:"ws_pool_tasks_run" ~help:"Tasks executed by each slot"
        (per_slot (fun st -> st.Ws_native.Pool.tasks_run));
      counter ~name:"ws_pool_tasks_stolen"
        ~help:"Executed tasks that arrived by steal"
        (per_slot (fun st -> st.Ws_native.Pool.tasks_stolen));
      counter ~name:"ws_pool_injector_runs"
        ~help:"Executed tasks that arrived through the injector"
        (per_slot (fun st -> st.Ws_native.Pool.injector_runs));
      counter ~name:"ws_pool_steal_attempts" ~help:"Steal probes"
        (per_slot (fun st -> st.Ws_native.Pool.steal_attempts));
      counter ~name:"ws_pool_steals" ~help:"Successful steal operations"
        (per_slot (fun st -> st.Ws_native.Pool.steals));
      counter ~name:"ws_pool_take_empties"
        ~help:"Own-deque pops that found nothing"
        (per_slot (fun st -> st.Ws_native.Pool.take_empties));
      counter ~name:"ws_pool_steal_empties"
        ~help:"Steal attempts on an empty victim"
        (per_slot (fun st -> st.Ws_native.Pool.steal_empties));
      counter ~name:"ws_pool_steal_aborts"
        ~help:"Steal attempts that lost a live race"
        (per_slot (fun st -> st.Ws_native.Pool.steal_aborts));
      counter ~name:"ws_pool_parks" ~help:"Worker park episodes"
        (per_slot (fun st -> st.Ws_native.Pool.parks));
      g "ws_pool_pending" "Cells enqueued and not yet dequeued"
        snap.Ws_native.Pool.snap_pending;
      g "ws_pool_in_flight" "Tasks spawned and not yet finished"
        snap.Ws_native.Pool.snap_in_flight;
      g "ws_pool_sleepers" "Workers parked at the instant of the scrape"
        snap.Ws_native.Pool.snap_sleepers;
      g "ws_pool_injector_queue"
        "Cells waiting in the external-submission FIFO"
        snap.Ws_native.Pool.snap_injector;
      counter ~name:"ws_pool_injector_drops"
        ~help:"Submissions refused at a full injector (Drop policy)"
        [ sample (float_of_int snap.Ws_native.Pool.snap_injector_drops) ];
    ]
  in
  let lats = snap.Ws_native.Pool.slot_latencies in
  let latency_families =
    if not (Array.exists (fun h -> Telemetry.Histogram.total h > 0) lats)
    then []
    else
      [
        gauge ~name:"ws_pool_task_latency_ns"
          ~help:
            "Per-slot spawn-to-completion latency quantiles (telemetry \
             pools)"
          (List.concat_map
             (fun (q, qlbl) ->
               Array.to_list
                 (Array.mapi
                    (fun i h ->
                      sample
                        ~labels:
                          [ ("slot", string_of_int i); ("quantile", qlbl) ]
                        (float_of_int (Telemetry.Histogram.percentile h q)))
                    lats))
             [ (0.5, "0.5"); (0.99, "0.99"); (0.999, "0.999") ]);
      ]
  in
  (* Stage-attribution families (attribution pools): proper OpenMetrics
     histograms with cumulative buckets, one family per stage. *)
  let merged a =
    let h = Telemetry.Histogram.create () in
    Array.iter (fun x -> Telemetry.Histogram.merge ~into:h x) a;
    h
  in
  let stage_families =
    let qw = merged snap.Ws_native.Pool.slot_qwait in
    if Telemetry.Histogram.total qw = 0 then []
    else
      [
        histogram ~name:"ws_pool_stage_qwait_ns"
          ~help:"Arrival-to-inject latency (submit backpressure included)"
          qw;
        histogram ~name:"ws_pool_stage_dispatch_ns"
          ~help:"Inject-to-dequeue queue residency"
          (merged snap.Ws_native.Pool.slot_dispatch);
        histogram ~name:"ws_pool_stage_service_ns"
          ~help:"Dequeue-to-completion execution time"
          (merged snap.Ws_native.Pool.slot_service);
      ]
  in
  counters @ latency_families @ stage_families

let metrics_body pool () = Telemetry.Openmetrics.render (pool_metrics pool)

let serve_metrics_monitor ?(quiet = false) ~port pool =
  let srv =
    Telemetry.Metrics_server.start ~port ~body:(metrics_body pool) ()
  in
  if not quiet then
    Printf.eprintf "serving OpenMetrics on http://127.0.0.1:%d/metrics\n%!"
      (Telemetry.Metrics_server.port srv);
  fun () -> Telemetry.Metrics_server.stop srv

(* ------------------------------------------------------------------ *)
(* Flight recorder probe                                               *)
(* ------------------------------------------------------------------ *)

(* A workload that forces genuine steals deterministically: each round the
   probe task spawns a child onto its own deque and then busy-waits on a
   flag only the child sets. The probe's slot never pops (it is spinning),
   so the child can only ever run by being stolen — every round yields at
   least one Steal event with a reconstructable victim/thief pair. *)
let flight_probe ?domains ?backend ?(rounds = 8) ?(flight_capacity = 16384)
    () =
  let domains =
    match domains with
    | Some d -> max 1 d
    | None -> max 1 (Domain.recommended_domain_count () - 1)
  in
  let pool =
    Ws_native.Pool.create ~domains ?backend ~flight:true ~flight_capacity ()
  in
  let probe () =
    for _ = 1 to rounds do
      let flag = Atomic.make false in
      Ws_native.Pool.spawn pool (fun () -> Atomic.set flag true);
      while not (Atomic.get flag) do
        Domain.cpu_relax ()
      done
    done
  in
  Ws_native.Pool.parallel_run pool [ probe ];
  let recorder = Option.get (Ws_native.Pool.flight pool) in
  Ws_native.Pool.shutdown pool;
  recorder

let flight_section ~file ?domains ?backend ?rounds () =
  let recorder = flight_probe ?domains ?backend ?rounds () in
  Telemetry.Flight_recorder.write_report recorder file;
  let trace_file = Filename.remove_extension file ^ ".trace.json" in
  Telemetry.Chrome_trace.write
    (Telemetry.Flight_recorder.to_chrome recorder)
    trace_file;
  let lineages, unresolved = Telemetry.Flight_recorder.reconstruct recorder in
  let stolen =
    List.length
      (List.filter
         (fun l ->
           match l.Telemetry.Flight_recorder.origin with
           | Telemetry.Flight_recorder.Stolen _ -> true
           | _ -> false)
         lineages)
  in
  Printf.printf
    "flight: %d tasks reconstructed (%d stolen, %d unresolved), report %s, \
     chrome trace %s\n"
    (List.length lineages) stolen unresolved file trace_file

(* ------------------------------------------------------------------ *)
(* Live dashboard (`wsrepro top`)                                      *)
(* ------------------------------------------------------------------ *)

(* One glyph per window, scaled against the series max — the classic
   eight-level block sparkline. *)
let spark values =
  let glyphs = [| "▁"; "▂"; "▃"; "▄"; "▅"; "▆"; "▇"; "█" |] in
  match values with
  | [] -> ""
  | vs ->
      let hi = List.fold_left max 1 vs in
      String.concat ""
        (List.map (fun v -> glyphs.(min 7 (max 0 (v * 7 / hi)))) vs)

let dashboard_lines pool =
  let snap = Ws_native.Pool.scrape pool in
  let header =
    Printf.sprintf "%4s %8s %8s %8s %8s %8s %8s %8s %6s" "slot" "run"
      "stolen" "inject" "steals" "attempt" "empty" "abort" "parks"
  in
  let rows =
    Array.to_list
      (Array.mapi
         (fun i st ->
           Printf.sprintf "%4d %8d %8d %8d %8d %8d %8d %8d %6d" i
             st.Ws_native.Pool.tasks_run st.Ws_native.Pool.tasks_stolen
             st.Ws_native.Pool.injector_runs st.Ws_native.Pool.steals
             st.Ws_native.Pool.steal_attempts
             (st.Ws_native.Pool.take_empties
             + st.Ws_native.Pool.steal_empties)
             st.Ws_native.Pool.steal_aborts st.Ws_native.Pool.parks)
         snap.Ws_native.Pool.slot_stats)
  in
  let gauges =
    Printf.sprintf
      "pending %d | in-flight %d | sleepers %d | injector %d | drops %d"
      snap.Ws_native.Pool.snap_pending snap.Ws_native.Pool.snap_in_flight
      snap.Ws_native.Pool.snap_sleepers snap.Ws_native.Pool.snap_injector
      snap.Ws_native.Pool.snap_injector_drops
  in
  (* Stage-attribution rows (attribution pools only): whole-run stage
     percentiles plus a per-window p99 sparkline from the rotating ring. *)
  let module H = Telemetry.Histogram in
  let module W = Telemetry.Windowed in
  let merged a =
    let h = H.create () in
    Array.iter (fun x -> H.merge ~into:h x) a;
    h
  in
  let stage_rows =
    let qw = merged snap.Ws_native.Pool.slot_qwait in
    if H.total qw = 0 then []
    else
      let line name h =
        Printf.sprintf "%-9s p50 %9dns  p99 %9dns  n %d" name
          (H.percentile h 0.5) (H.percentile h 0.99) (H.total h)
      in
      let series =
        List.map snd (W.series snap.Ws_native.Pool.snap_windows ~q:0.99)
      in
      [
        line "qwait" qw;
        line "dispatch" (merged snap.Ws_native.Pool.slot_dispatch);
        line "service" (merged snap.Ws_native.Pool.slot_service);
        Printf.sprintf "sojourn p99/window %s (%d windows of %dms)"
          (spark series) (List.length series)
          (W.width snap.Ws_native.Pool.snap_windows / 1_000_000);
      ]
  in
  (header :: rows) @ [ gauges ] @ stage_rows

let top ?domains ?backend ?policy ?steal_half ?rate ?requests ?chain ?work
    ?serve_metrics ?(interval = 0.25) ?seed () =
  let rep = Telemetry.Progress.create ~interval ~label:"top" () in
  let monitor pool =
    let stop_serving =
      match serve_metrics with
      | Some port -> serve_metrics_monitor ~port pool
      | None -> fun () -> ()
    in
    let stop = Atomic.make false in
    let t =
      Thread.create
        (fun () ->
          Telemetry.Progress.redraw_now rep (dashboard_lines pool);
          while not (Atomic.get stop) do
            Telemetry.Progress.redraw rep (dashboard_lines pool);
            Thread.delay (interval /. 2.)
          done)
        ()
    in
    fun () ->
      Atomic.set stop true;
      Thread.join t;
      Telemetry.Progress.redraw_now rep (dashboard_lines pool);
      stop_serving ()
  in
  let r =
    service ?domains ?backend ?policy ?steal_half ~telemetry:true
      ~attribution:true ~flight:true ~monitor ?rate ?requests ?chain ?work
      ?seed ()
  in
  Telemetry.Progress.finish rep;
  print_string (render_service r)

(* ------------------------------------------------------------------ *)
(* Entry point (the `wsrepro native` subcommand body)                  *)
(* ------------------------------------------------------------------ *)

let run ?(machine = Machine_config.westmere_ex) ?domains ?backend ?policy
    ?steal_half ?fib_n ?graph_nodes ?graph_edges ?rate ?requests ?chain ?work
    ?serve_metrics ?flight_file ?scenario ?(seed = 23) () =
  match scenario with
  | Some spec ->
      (* Scenario mode replaces the fixed sections: the file says what to
         run, and the run must mirror the simulator's replay of it. *)
      Printf.printf "== Native scenario replay: %s (%d worker domains) ==\n"
        spec.Scenarios.sc_name spec.Scenarios.sc_workers;
      let monitor =
        Option.map
          (fun port pool -> serve_metrics_monitor ~port pool)
          serve_metrics
      in
      let r = scenario_native ?monitor spec in
      print_string (render_scenario_native spec r);
      (match spec.Scenarios.sc_slo with
      | None -> true
      | Some slo ->
          let vs = native_verdicts spec slo r in
          print_string
            (Scenarios.render_verdicts ~name:spec.Scenarios.sc_name
               ~units:"ns" vs);
          Scenarios.verdicts_ok vs)
  | None ->
  let d =
    match domains with
    | Some d -> d
    | None -> max 1 (Domain.recommended_domain_count () - 1)
  in
  Printf.printf
    "== Native vs simulated: same workloads, silicon cross-check (%d worker \
     domains) ==\n"
    d;
  print_string
    (render_parity
       (parity ~machine ~domains:d ?backend ?policy ?steal_half ?fib_n
          ?graph_nodes ?graph_edges ~seed ()));
  Printf.printf
    "== Native service benchmark: open-system Poisson arrivals ==\n";
  let monitor =
    Option.map (fun port pool -> serve_metrics_monitor ~port pool)
      serve_metrics
  in
  print_string
    (render_service
       (service ~domains:d ?backend ?policy ?steal_half ?monitor ?rate
          ?requests ?chain ?work ~seed ()));
  (match flight_file with
  | None -> ()
  | Some file ->
      Printf.printf "== Flight recorder: steal-forcing probe ==\n";
      flight_section ~file ~domains:d ?backend ());
  true
