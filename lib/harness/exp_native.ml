(* Silicon cross-check for the simulator, in two parts.

   Parity: the same fib / graph-reachability workloads run (a) through the
   discrete-event simulator (cycles) and (b) on the native OCaml 5 pool
   (wallclock). The absolute units differ by construction; what must agree
   is the shape — which workload is throughput-heavier, and by roughly what
   factor — so the table reports normalized tasks-per-unit-time for both
   and their fib/graph ratios side by side.

   Service: an open-system benchmark the simulator cannot run — Poisson
   arrivals submitted from a non-worker domain (exercising the injector
   path), each request a chain of dependent stages, sojourn latency
   recorded into a telemetry histogram for p50/p99/p999. *)

type native_point = { tasks : int; seconds : float; tasks_per_sec : float }

type parity_row = {
  workload : string;
  sim_tasks : int;
  sim_makespan : float;  (* cycles *)
  sim_tasks_per_mcycle : float;
  native : native_point;
}

type service_result = {
  requests : int;
  completed : int;
  rate : float;  (* offered load, requests/s *)
  elapsed : float;
  throughput_rps : float;
  p50_ns : int;
  p99_ns : int;
  p999_ns : int;
  sojourn : Telemetry.Histogram.t;
  steals : int;
  injector_runs : int;
  parks : int;
}

(* ------------------------------------------------------------------ *)
(* Native measurements                                                 *)
(* ------------------------------------------------------------------ *)

let mk_pool ?domains ?backend ?policy ?steal_half ?(telemetry = false) () =
  Ws_native.Pool.create ?domains ?backend ?policy ?steal_half ~telemetry ()

let timed_point pool f =
  let before = Ws_native.Pool.tasks_run pool in
  let t0 = Unix.gettimeofday () in
  f ();
  let seconds = Unix.gettimeofday () -. t0 in
  let tasks = Ws_native.Pool.tasks_run pool - before in
  let seconds = if seconds <= 0. then 1e-9 else seconds in
  { tasks; seconds; tasks_per_sec = float_of_int tasks /. seconds }

let native_fib ?domains ?backend ?policy ?steal_half ~n () =
  let pool = mk_pool ?domains ?backend ?policy ?steal_half () in
  let point =
    timed_point pool (fun () -> ignore (Ws_native.Pool.fib pool n))
  in
  Ws_native.Pool.shutdown pool;
  point

(* Native single-source reachability, the pool-side twin of the simulated
   transitive-closure workload: "visit u" CASes each neighbour's visited
   flag and spawns the winners, so each node is visited exactly once. *)
let native_graph ?domains ?backend ?policy ?steal_half ~nodes ~edges ~seed ()
    =
  let g = Ws_workloads.Graph.random_graph ~nodes ~edges ~seed in
  let pool = mk_pool ?domains ?backend ?policy ?steal_half () in
  let visited = Array.init nodes (fun _ -> Atomic.make false) in
  let rec visit u () =
    Array.iter
      (fun v ->
        if
          (not (Atomic.get visited.(v)))
          && Atomic.compare_and_set visited.(v) false true
        then Ws_native.Pool.spawn pool (visit v))
      g.Ws_workloads.Graph.adj.(u)
  in
  Atomic.set visited.(0) true;
  let point =
    timed_point pool (fun () -> Ws_native.Pool.parallel_run pool [ visit 0 ])
  in
  Ws_native.Pool.shutdown pool;
  (* cross-check against a host BFS before trusting the numbers *)
  let expect = Ws_workloads.Graph.reachable_from g 0 in
  Array.iteri
    (fun i e ->
      if e <> Atomic.get visited.(i) then
        failwith
          (Printf.sprintf "native_graph: node %d visited=%b, BFS says %b" i
             (Atomic.get visited.(i)) e))
    expect;
  point

(* ------------------------------------------------------------------ *)
(* Simulated measurements                                              *)
(* ------------------------------------------------------------------ *)

let sim_fib ~machine ~n ~seed =
  let dag = Ws_runtime.Dag.of_comp (Ws_workloads.Cilk_suite.fib n) in
  let makespan =
    List.hd
      (Runner.run_dag machine Variants.the_baseline ~seeds:[ seed ] dag
         ~name:"native-parity-fib")
  in
  (Ws_runtime.Dag.size dag, makespan)

let sim_graph ~machine ~nodes ~edges ~seed =
  let g = Ws_workloads.Graph.random_graph ~nodes ~edges ~seed in
  let makespan, metrics =
    Runner.run_checked machine Variants.the_baseline ~seed (fun () ->
        Ws_workloads.Graph_workloads.transitive_closure g ~src:0 ())
  in
  (Ws_runtime.Metrics.total_tasks metrics, makespan)

(* ------------------------------------------------------------------ *)
(* Parity                                                              *)
(* ------------------------------------------------------------------ *)

let parity_row ~workload ~sim:(sim_tasks, sim_makespan) ~native =
  {
    workload;
    sim_tasks;
    sim_makespan;
    sim_tasks_per_mcycle = float_of_int sim_tasks /. (sim_makespan /. 1e6);
    native;
  }

let parity ?(machine = Machine_config.westmere_ex) ?domains ?backend ?policy
    ?steal_half ?(fib_n = 20) ?(graph_nodes = 2000) ?graph_edges ?(seed = 23)
    () =
  let graph_edges = Option.value graph_edges ~default:(4 * graph_nodes) in
  [
    parity_row ~workload:(Printf.sprintf "fib(%d)" fib_n)
      ~sim:(sim_fib ~machine ~n:fib_n ~seed)
      ~native:(native_fib ?domains ?backend ?policy ?steal_half ~n:fib_n ());
    parity_row
      ~workload:(Printf.sprintf "graph(%d,%d)" graph_nodes graph_edges)
      ~sim:(sim_graph ~machine ~nodes:graph_nodes ~edges:graph_edges ~seed)
      ~native:
        (native_graph ?domains ?backend ?policy ?steal_half ~nodes:graph_nodes
           ~edges:graph_edges ~seed ());
  ]

let render_parity rows =
  let table =
    Tablefmt.render
      ~header:
        [
          "workload";
          "sim tasks";
          "sim cycles";
          "sim tasks/Mcyc";
          "native tasks";
          "native ms";
          "native ktasks/s";
        ]
      (List.map
         (fun r ->
           [
             r.workload;
             string_of_int r.sim_tasks;
             Printf.sprintf "%.0f" r.sim_makespan;
             Tablefmt.f1 r.sim_tasks_per_mcycle;
             string_of_int r.native.tasks;
             Printf.sprintf "%.2f" (r.native.seconds *. 1e3);
             Tablefmt.f1 (r.native.tasks_per_sec /. 1e3);
           ])
         rows)
  in
  match rows with
  | [ a; b ] when b.sim_tasks_per_mcycle > 0. && b.native.tasks_per_sec > 0.
    ->
      table
      ^ Printf.sprintf
          "ratio %s : %s — simulated %.2f, native %.2f (relative throughput \
           shape)\n"
          a.workload b.workload
          (a.sim_tasks_per_mcycle /. b.sim_tasks_per_mcycle)
          (a.native.tasks_per_sec /. b.native.tasks_per_sec)
  | _ -> table

(* ------------------------------------------------------------------ *)
(* Open-system service benchmark                                       *)
(* ------------------------------------------------------------------ *)

let spin_work iters =
  let x = ref 0 in
  for i = 1 to iters do
    x := !x + i
  done;
  ignore (Sys.opaque_identity !x)

let service ?domains ?backend ?policy ?steal_half ?(rate = 5000.)
    ?(requests = 1000) ?(chain = 4) ?(work = 2000) ?(seed = 23) () =
  if rate <= 0. then invalid_arg "Exp_native.service: rate must be positive";
  let pool = mk_pool ?domains ?backend ?policy ?steal_half () in
  let sojourn = Telemetry.Histogram.create () in
  let hist_lock = Mutex.create () in
  let completed = Atomic.make 0 in
  let rng = Random.State.make [| seed; 0x5e47 |] in
  let t0 = Unix.gettimeofday () in
  (* Absolute Poisson schedule: if the generator falls behind it submits
     immediately, keeping the offered load open-system (arrivals do not
     wait for service). *)
  let next = ref t0 in
  for _ = 1 to requests do
    next :=
      !next +. (-.log (1. -. Random.State.float rng 1.) /. rate);
    let delay = !next -. Unix.gettimeofday () in
    if delay > 0. then Unix.sleepf delay;
    let born = Unix.gettimeofday () in
    let rec stage k () =
      spin_work work;
      if k > 1 then Ws_native.Pool.spawn pool (stage (k - 1))
      else begin
        let ns = int_of_float ((Unix.gettimeofday () -. born) *. 1e9) in
        Mutex.lock hist_lock;
        Telemetry.Histogram.observe sojourn ns;
        Mutex.unlock hist_lock;
        Atomic.incr completed
      end
    in
    (* submitted from this non-worker domain: goes through the injector *)
    Ws_native.Pool.spawn pool (stage chain)
  done;
  while Atomic.get completed < requests do
    Domain.cpu_relax ()
  done;
  let elapsed = Unix.gettimeofday () -. t0 in
  let stats = Ws_native.Pool.worker_stats pool in
  Ws_native.Pool.shutdown pool;
  let sum f = Array.fold_left (fun acc st -> acc + f st) 0 stats in
  {
    requests;
    completed = Atomic.get completed;
    rate;
    elapsed;
    throughput_rps = float_of_int requests /. elapsed;
    p50_ns = Telemetry.Histogram.percentile sojourn 0.5;
    p99_ns = Telemetry.Histogram.percentile sojourn 0.99;
    p999_ns = Telemetry.Histogram.percentile sojourn 0.999;
    sojourn;
    steals = sum (fun st -> st.Ws_native.Pool.steals);
    injector_runs = sum (fun st -> st.Ws_native.Pool.injector_runs);
    parks = sum (fun st -> st.Ws_native.Pool.parks);
  }

let render_service r =
  Printf.sprintf
    "requests=%d completed=%d offered=%.0f/s achieved=%.0f/s elapsed=%.3fs\n\
     sojourn p50=%dns p99=%dns p999=%dns\n\
     pool: steals=%d injector_runs=%d parks=%d\n"
    r.requests r.completed r.rate r.throughput_rps r.elapsed r.p50_ns
    r.p99_ns r.p999_ns r.steals r.injector_runs r.parks

(* ------------------------------------------------------------------ *)
(* Entry point (the `wsrepro native` subcommand body)                  *)
(* ------------------------------------------------------------------ *)

let run ?(machine = Machine_config.westmere_ex) ?domains ?backend ?policy
    ?steal_half ?fib_n ?graph_nodes ?graph_edges ?rate ?requests ?chain ?work
    ?(seed = 23) () =
  let d =
    match domains with
    | Some d -> d
    | None -> max 1 (Domain.recommended_domain_count () - 1)
  in
  Printf.printf
    "== Native vs simulated: same workloads, silicon cross-check (%d worker \
     domains) ==\n"
    d;
  print_string
    (render_parity
       (parity ~machine ~domains:d ?backend ?policy ?steal_half ?fib_n
          ?graph_nodes ?graph_edges ~seed ()));
  Printf.printf
    "== Native service benchmark: open-system Poisson arrivals ==\n";
  print_string
    (render_service
       (service ~domains:d ?backend ?policy ?steal_half ?rate ?requests
          ?chain ?work ~seed ()))
