(** Name-indexed table of every queue implementation, used by the runtime,
    the experiment harness and the CLI. *)

type impl = (module Queue_intf.S)

val all : impl list
(** the, chase-lev, chase-lev-dyn, abp, ff-the, ff-cl, thep, thep-sep,
    idempotent-lifo, idempotent-fifo *)

val names : string list

val find : string -> impl
(** @raise Not_found on unknown names. *)

val create : impl -> Tso.Machine.t -> Queue_intf.params -> Queue_intf.packed
(** Instantiate a queue and pack it with its module, wrapped in a telemetry
    shim: while a {!Telemetry.Sink.t} is attached to the machine, every
    [put]/[take]/[steal] through the packed value is accounted in the
    sink's queue-operation counters (puts, takes, take-empties, steal
    attempts/successes/empties/aborts). Costs one field read per operation
    when no sink is attached. *)

val strict : impl -> bool
(** Meets the strict deque specification: never aborts, never duplicates. *)
