(** Name-indexed table of every queue implementation, used by the runtime,
    the experiment harness and the CLI. *)

type impl = (module Queue_intf.S)

val all : impl list
(** the, chase-lev, chase-lev-dyn, abp, ff-the, ff-cl, thep, thep-sep,
    idempotent-lifo, idempotent-fifo *)

val names : string list

val find : string -> impl
(** @raise Not_found on unknown names. *)

val create :
  ?shard:int -> impl -> Tso.Machine.t -> Queue_intf.params -> Queue_intf.packed
(** Instantiate a queue and pack it with its module, wrapped in a telemetry
    shim: while a counter plane is attached to the machine, every
    [put]/[take]/[steal] through the packed value is accounted in the
    queue-operation counters (puts, takes, take-empties, steal
    attempts/successes/empties/aborts). [shard] (default 0) selects which
    shard of a sharded plane ({!Tso.Machine.set_sharded_sink}) this
    queue's operations are charged to — the runtime passes the owning
    worker's id, so per-worker accounting shares no cache line. With a
    plain sink every shard index resolves to it. Costs one length test per
    operation when no sink is attached. *)

val strict : impl -> bool
(** Meets the strict deque specification: never aborts, never duplicates. *)
