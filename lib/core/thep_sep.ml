open Tso

let bottom = -1 (* the ⊥ value of P *)

type t = {
  mem : Memory.t;
  h : Addr.t;
  s : Addr.t;  (* the heartbeat counter, separated from H *)
  t : Addr.t;
  p : Addr.t;
  tasks : Addr.t;
  capacity : int;
  lock : Sync.t;
  delta : int;
  machine : Machine.t;  (* for telemetry: δ-check accounting *)
}

let name = "thep-sep"
let may_abort = false
let may_duplicate = false
let worker_fence_free = true

let create m (p : Queue_intf.params) =
  if p.delta < 1 then invalid_arg "thep-sep: delta must be >= 1";
  let mem = Machine.memory m in
  {
    mem;
    h = Memory.alloc mem ~name:(p.tag ^ ".H") ~init:0;
    s = Memory.alloc mem ~name:(p.tag ^ ".S") ~init:0;
    t = Memory.alloc mem ~name:(p.tag ^ ".T") ~init:0;
    p = Memory.alloc mem ~name:(p.tag ^ ".P") ~init:bottom;
    tasks =
      Memory.alloc_array mem ~name:(p.tag ^ ".tasks") ~len:p.capacity
        ~init:(-1);
    capacity = p.capacity;
    lock = Sync.create m ~name:(p.tag ^ ".lock");
    delta = p.delta;
    machine = m;
  }

let task_addr q i =
  assert (i >= 0);
  Addr.offset q.tasks (i mod q.capacity)

let read_task q i = Program.load (task_addr q i)

let check_room q t =
  if t - Memory.get q.mem q.h >= q.capacity then
    failwith "work-stealing queue overflow: tasks array is too small"

let preload q items =
  if Memory.get q.mem q.t <> 0 then invalid_arg "preload: queue is not fresh";
  if List.length items > q.capacity then invalid_arg "preload: too many items";
  List.iteri (fun i v -> Memory.set q.mem (Addr.offset q.tasks i) v) items;
  Memory.set q.mem q.t (List.length items)

let put q task =
  let t = Program.load q.t in
  check_room q t;
  Program.store (task_addr q t) task;
  Program.store q.t (t + 1)

let take q : Queue_intf.take_result =
  let t = Program.load q.t - 1 in
  Program.store q.t t;
  (* The extra load: S must be read BEFORE H. The thief stores H before S,
     so (FIFO drains) seeing the new S implies the new H is already in
     memory and the later H load cannot miss it. *)
  let s = Program.load q.s in
  let h = Program.load q.h in
  if t < h then begin
    Sync.lock q.lock;
    Program.store q.p bottom;
    let h = Program.load q.h in
    if h >= t + 1 then begin
      Program.store q.t (t + 1);
      Sync.unlock q.lock;
      `Empty
    end
    else begin
      Sync.unlock q.lock;
      `Task (read_task q t)
    end
  end
  else begin
    Program.store q.p s;
    `Task (read_task q t)
  end

let steal q : Queue_intf.steal_result =
  Sync.lock q.lock;
  let h = Program.load q.h in
  let s = Program.load q.s in
  (* H before S: see the comment in [take] *)
  Program.store q.h (h + 1);
  Program.store q.s (s + 1);
  Program.fence ();
  let give_up () : Queue_intf.steal_result =
    Program.store q.h h;
    `Empty
  in
  let t0 = Program.load q.t in
  Machine.count_delta_check q.machine;
  let ret =
    if t0 - q.delta <= h then begin
      let rec wait () : Queue_intf.steal_result =
        let p = Program.load q.p in
        if p = s + 1 then begin
          let t = Program.load q.t in
          if h + 1 <= t then `Task (read_task q h) else give_up ()
        end
        else if h + 1 > Program.load q.t then give_up ()
        else begin
          Program.spin_pause ();
          wait ()
        end
      in
      wait ()
    end
    else `Task (read_task q h)
  in
  Sync.unlock q.lock;
  ret
