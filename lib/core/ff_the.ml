(** FF-THE (Fig. 3): the fence-free THE variant.

    The worker's [take] is THE's minus the memory fence. The thief
    compensates by reasoning about bounded reordering: when it observes tail
    [t], the worker's true position is at least [t - δ], where δ bounds the
    number of take-stores hidden in the worker's store buffer (δ =
    ⌈S/(x+1)⌉ for a client doing x stores between takes, §4). If the thief
    cannot establish [T - δ > h] it refuses to steal and returns [`Abort] —
    the relaxed specification of §4, which keeps safety (no duplication, no
    loss) while violating the "laws of order" tightness assumption (§6). *)

open Tso

type t = {
  c : Base.cells;
  lock : Sync.t;
  delta : int;
  machine : Machine.t;  (* for telemetry: δ-check accounting *)
}

let name = "ff-the"
let may_abort = true
let may_duplicate = false
let worker_fence_free = true

let create m (p : Queue_intf.params) =
  if p.delta < 1 then invalid_arg "ff-the: delta must be >= 1";
  {
    c = Base.alloc m p;
    lock = Sync.create m ~name:(p.tag ^ ".lock");
    delta = p.delta;
    machine = m;
  }

let preload q items = Base.preload q.c items

let put q task = Base.put q.c task

(* THE's take with the fence removed; the lock-protected conflict path is
   unchanged. *)
let take q : Queue_intf.take_result =
  let t = Program.load q.c.t - 1 in
  Program.store q.c.t t;
  let h = Program.load q.c.h in
  if t > h then `Task (Base.read_task q.c t)
  else if t < h then begin
    Sync.lock q.lock;
    let h = Program.load q.c.h in
    if h >= t + 1 then begin
      Program.store q.c.t (t + 1);
      Sync.unlock q.lock;
      `Empty
    end
    else begin
      Sync.unlock q.lock;
      `Task (Base.read_task q.c t)
    end
  end
  else `Task (Base.read_task q.c t)

let steal q : Queue_intf.steal_result =
  Sync.lock q.lock;
  let h = Program.load q.c.h in
  Program.store q.c.h (h + 1);
  Program.fence ();
  let t = Program.load q.c.t in
  let ret =
    (* t - δ > h certifies that even the most advanced take hidden in the
       worker's store buffer has not reached task h. Note δ >= 1 means the
       thief can never be certain the queue is non-empty, so ABORT subsumes
       EMPTY (§4). *)
    Machine.count_delta_check q.machine;
    if t - q.delta > h then `Task (Base.read_task q.c h)
    else begin
      Program.store q.c.h h;
      `Abort
    end
  in
  Sync.unlock q.lock;
  ret
