(** FF-CL (Fig. 4): the fence-free Chase-Lev variant.

    The worker's [take] is Chase-Lev's minus the memory fence. A thief about
    to steal task [h] must rule out that the worker's store [T := h] (its
    last-task path) is still in the store buffer, which [t - δ > h]
    establishes; otherwise the worker is guaranteed to synchronise through
    the CAS on [H] (§4.1). Uncertain thieves return [`Abort]. *)

open Tso

type t = {
  c : Base.cells;
  delta : int;
  machine : Machine.t;  (* for telemetry: δ-check accounting *)
}

let name = "ff-cl"
let may_abort = true
let may_duplicate = false
let worker_fence_free = true

let create m (p : Queue_intf.params) =
  if p.delta < 1 then invalid_arg "ff-cl: delta must be >= 1";
  { c = Base.alloc m p; delta = p.delta; machine = m }

let preload q items = Base.preload q.c items

let put q task = Base.put q.c task

(* Chase-Lev's take with the fence removed. *)
let take q : Queue_intf.take_result =
  let t = Program.load q.c.t - 1 in
  Program.store q.c.t t;
  let h = Program.load q.c.h in
  if t > h then `Task (Base.read_task q.c t)
  else if t < h then begin
    Program.store q.c.t h;
    `Empty
  end
  else begin
    Program.store q.c.t (h + 1);
    if Program.cas q.c.h ~expect:h ~replace:(h + 1) then
      `Task (Base.read_task q.c t)
    else `Empty
  end

let steal q : Queue_intf.steal_result =
  let rec loop () : Queue_intf.steal_result =
    let h = Program.load q.c.h in
    let t = Program.load q.c.t in
    if h >= t then `Empty
    else if
      Machine.count_delta_check q.machine;
      t - q.delta <= h
    then `Abort
    else begin
      let task = Base.read_task q.c h in
      if Program.cas q.c.h ~expect:h ~replace:(h + 1) then `Task task
      else begin
        Program.spin_pause ();
        loop ()
      end
    end
  in
  loop ()
