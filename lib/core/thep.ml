(** THEP (Fig. 5): fence-free work stealing meeting the {e strict}
    specification, via worker echoes.

    [H] carries the thief's heartbeat counter [s] in its top bits. A thief
    that cannot certify [T - δ > h] publishes [s+1] (by its [H] update) and
    spins until the worker echoes it back through [P] — at which point TSO
    guarantees any value subsequently read from [T] was written after the
    worker observed the thief — or until the queue looks empty ([h+1 > T]),
    in which case the worker may be blocked on the lock and the thief must
    give way (§5). The worker's common path pays one extra plain store
    ([P := s]) instead of a fence. *)

open Tso

(* s lives above 31 bits of h; task indices stay far below 2^31 here. *)
let lo_bits = 31
let bottom = -1 (* the ⊥ value of P *)

type t = {
  mem : Memory.t;
  hs : Addr.t;  (* packed <s, h> *)
  t : Addr.t;
  p : Addr.t;
  tasks : Addr.t;
  capacity : int;
  lock : Sync.t;
  delta : int;
  machine : Machine.t;  (* for telemetry: δ-check accounting *)
}

let name = "thep"
let may_abort = false
let may_duplicate = false
let worker_fence_free = true

let create m (p : Queue_intf.params) =
  if p.delta < 1 then invalid_arg "thep: delta must be >= 1";
  let mem = Machine.memory m in
  {
    mem;
    hs = Memory.alloc mem ~name:(p.tag ^ ".H") ~init:(Pack.pack2 ~lo_bits ~hi:0 ~lo:0);
    t = Memory.alloc mem ~name:(p.tag ^ ".T") ~init:0;
    p = Memory.alloc mem ~name:(p.tag ^ ".P") ~init:bottom;
    tasks =
      Memory.alloc_array mem ~name:(p.tag ^ ".tasks") ~len:p.capacity
        ~init:(-1);
    capacity = p.capacity;
    lock = Sync.create m ~name:(p.tag ^ ".lock");
    delta = p.delta;
    machine = m;
  }

let task_addr q i =
  assert (i >= 0);
  Addr.offset q.tasks (i mod q.capacity)

let read_task q i = Program.load (task_addr q i)

let check_room q t =
  let _, h_mem = Pack.unpack2 ~lo_bits (Memory.get q.mem q.hs) in
  if t - h_mem >= q.capacity then
    failwith "work-stealing queue overflow: tasks array is too small"

let preload q items =
  if Memory.get q.mem q.t <> 0 then invalid_arg "preload: queue is not fresh";
  if List.length items > q.capacity then invalid_arg "preload: too many items";
  List.iteri (fun i v -> Memory.set q.mem (Addr.offset q.tasks i) v) items;
  Memory.set q.mem q.t (List.length items)

let put q task =
  let t = Program.load q.t in
  check_room q t;
  Program.store (task_addr q t) task;
  Program.store q.t (t + 1)

let take q : Queue_intf.take_result =
  let t = Program.load q.t - 1 in
  Program.store q.t t;
  let s, h = Pack.unpack2 ~lo_bits (Program.load q.hs) in
  if t < h then begin
    Sync.lock q.lock;
    (* Invalidate any stale echo: a thief that sees ⊥ keeps waiting, and a
       thief blocked on T <= h will notice and release the lock. *)
    Program.store q.p bottom;
    let _, h = Pack.unpack2 ~lo_bits (Program.load q.hs) in
    if h >= t + 1 then begin
      Program.store q.t (t + 1);
      Sync.unlock q.lock;
      `Empty
    end
    else begin
      Sync.unlock q.lock;
      `Task (read_task q t)
    end
  end
  else begin
    (* Echo the heartbeat: a plain store replaces the fence. *)
    Program.store q.p s;
    `Task (read_task q t)
  end

let steal q : Queue_intf.steal_result =
  Sync.lock q.lock;
  let s, h = Pack.unpack2 ~lo_bits (Program.load q.hs) in
  Program.store q.hs (Pack.pack2 ~lo_bits ~hi:(s + 1) ~lo:(h + 1));
  Program.fence ();
  let give_up () : Queue_intf.steal_result =
    Program.store q.hs (Pack.pack2 ~lo_bits ~hi:(s + 1) ~lo:h);
    `Empty
  in
  let t0 = Program.load q.t in
  Machine.count_delta_check q.machine;
  let ret =
    if t0 - q.delta <= h then begin
      (* Uncertain: wait for the worker's echo, bailing out if the queue
         looks empty (the worker might never come back, §5). *)
      let rec wait () : Queue_intf.steal_result =
        let p = Program.load q.p in
        if p = s + 1 then begin
          let t = Program.load q.t in
          if h + 1 <= t then `Task (read_task q h) else give_up ()
        end
        else if h + 1 > Program.load q.t then give_up ()
        else begin
          Program.spin_pause ();
          wait ()
        end
      in
      wait ()
    end
    else `Task (read_task q h)
  in
  Sync.unlock q.lock;
  ret
