type impl = (module Queue_intf.S)

let all : impl list =
  [
    (module The_queue);
    (module Chase_lev);
    (module Chase_lev_dyn);
    (module Abp);
    (module Ff_the);
    (module Ff_cl);
    (module Thep);
    (module Thep_sep);
    (module Idempotent_lifo);
    (module Idempotent_fifo);
  ]

let names = List.map (fun (module Q : Queue_intf.S) -> Q.name) all

let find name =
  List.find (fun (module Q : Queue_intf.S) -> String.equal Q.name name) all

(* Telemetry shim: forward every operation and account its outcome in the
   machine's sink, when one is attached. Put around queues created through
   {!create} (the runtime and harness path); the litmus/exhaustive checks
   instantiate the raw modules and stay unobserved. With no sink attached
   each operation pays one field read. *)
module Counted (Q : Queue_intf.S) : Queue_intf.S with type t = Tso.Machine.t * Q.t =
struct
  type t = Tso.Machine.t * Q.t

  let name = Q.name
  let may_abort = Q.may_abort
  let may_duplicate = Q.may_duplicate
  let worker_fence_free = Q.worker_fence_free
  let create m params = (m, Q.create m params)
  let preload (_, q) items = Q.preload q items

  let put (m, q) task =
    Q.put q task;
    match Tso.Machine.sink m with
    | None -> ()
    | Some s -> s.Telemetry.Sink.puts <- s.Telemetry.Sink.puts + 1

  let take (m, q) =
    let r = Q.take q in
    (match Tso.Machine.sink m with
    | None -> ()
    | Some s -> (
        match r with
        | `Task _ -> s.Telemetry.Sink.takes <- s.Telemetry.Sink.takes + 1
        | `Empty ->
            s.Telemetry.Sink.take_empties <- s.Telemetry.Sink.take_empties + 1));
    r

  let steal (m, q) =
    let r = Q.steal q in
    (match Tso.Machine.sink m with
    | None -> ()
    | Some s ->
        s.Telemetry.Sink.steal_attempts <- s.Telemetry.Sink.steal_attempts + 1;
        (match r with
        | `Task _ -> s.Telemetry.Sink.steals <- s.Telemetry.Sink.steals + 1
        | `Empty ->
            s.Telemetry.Sink.steal_empties <- s.Telemetry.Sink.steal_empties + 1
        | `Abort ->
            s.Telemetry.Sink.steal_aborts <- s.Telemetry.Sink.steal_aborts + 1));
    r
end

let create (module Q : Queue_intf.S) m params =
  let module C = Counted (Q) in
  Queue_intf.Packed ((module C), C.create m params)

let strict (module Q : Queue_intf.S) = (not Q.may_abort) && not Q.may_duplicate
