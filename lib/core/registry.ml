type impl = (module Queue_intf.S)

let all : impl list =
  [
    (module The_queue);
    (module Chase_lev);
    (module Chase_lev_dyn);
    (module Abp);
    (module Ff_the);
    (module Ff_cl);
    (module Thep);
    (module Thep_sep);
    (module Idempotent_lifo);
    (module Idempotent_fifo);
  ]

let names = List.map (fun (module Q : Queue_intf.S) -> Q.name) all

let find name =
  List.find (fun (module Q : Queue_intf.S) -> String.equal Q.name name) all

(* Telemetry shim: forward every operation and account its outcome against
   the machine's counter plane, when one is attached. Put around queues
   created through {!create} (the runtime and harness path); the
   litmus/exhaustive checks instantiate the raw modules and stay
   unobserved. With no sink attached each operation pays one length test.

   Routing is per queue: each wrapped queue carries a shard index (its
   owner's worker id under the runtime engines), so with a sharded plane
   attached ({!Tso.Machine.set_sharded_sink}) the accounting for different
   workers' queues lands in different shards — zero cross-domain or
   cross-worker writes on the hot path. With a plain sink the routing
   table has one entry and every index resolves to it. *)
type counted_state = { machine : Tso.Machine.t; mutable shard : int }

module Counted (Q : Queue_intf.S) : sig
  include Queue_intf.S with type t = counted_state * Q.t

  val set_shard : t -> int -> unit
end = struct
  type t = counted_state * Q.t

  let name = Q.name
  let may_abort = Q.may_abort
  let may_duplicate = Q.may_duplicate
  let worker_fence_free = Q.worker_fence_free
  let create m params = ({ machine = m; shard = 0 }, Q.create m params)
  let set_shard (c, _) i = c.shard <- i
  let preload (_, q) items = Q.preload q items

  let put (c, q) task =
    Q.put q task;
    let r = Tso.Machine.counters c.machine in
    let n = Array.length r in
    if n > 0 then begin
      let s = Array.unsafe_get r (c.shard mod n) in
      s.Telemetry.Sink.puts <- s.Telemetry.Sink.puts + 1
    end

  let take (c, q) =
    let r = Q.take q in
    let tbl = Tso.Machine.counters c.machine in
    let n = Array.length tbl in
    if n > 0 then begin
      let s = Array.unsafe_get tbl (c.shard mod n) in
      match r with
      | `Task _ -> s.Telemetry.Sink.takes <- s.Telemetry.Sink.takes + 1
      | `Empty ->
          s.Telemetry.Sink.take_empties <- s.Telemetry.Sink.take_empties + 1
    end;
    r

  let steal (c, q) =
    let r = Q.steal q in
    let tbl = Tso.Machine.counters c.machine in
    let n = Array.length tbl in
    if n > 0 then begin
      let s = Array.unsafe_get tbl (c.shard mod n) in
      s.Telemetry.Sink.steal_attempts <- s.Telemetry.Sink.steal_attempts + 1;
      match r with
      | `Task _ -> s.Telemetry.Sink.steals <- s.Telemetry.Sink.steals + 1
      | `Empty ->
          s.Telemetry.Sink.steal_empties <- s.Telemetry.Sink.steal_empties + 1
      | `Abort ->
          s.Telemetry.Sink.steal_aborts <- s.Telemetry.Sink.steal_aborts + 1
    end;
    r
end

let create ?(shard = 0) (module Q : Queue_intf.S) m params =
  let module C = Counted (Q) in
  let c = C.create m params in
  C.set_shard c shard;
  Queue_intf.Packed ((module C), c)

let strict (module Q : Queue_intf.S) = (not Q.may_abort) && not Q.may_duplicate
