open Ws_runtime

(* All costs are simulated cycles. The constants below were calibrated so
   that the share of take()-fence time in a single-threaded run lands in the
   band Fig. 1 reports: large for the fine-grained recursive benchmarks
   (Fib, Integrate, knapsack), small for the coarse blocked ones (Matmul,
   cholesky, Jacobi). *)

let fib ?(spawn = 55) ?(join = 60) ?(leaf = 120) n =
  let rec go n =
    if n < 2 then Dag.Leaf leaf
    else Dag.Fork { before = spawn; children = [ go (n - 1); go (n - 2) ]; after = join }
  in
  go n

let integrate ~depth =
  (* Adaptive quadrature: recursion depth varies pseudo-randomly around
     [depth], like the adaptivity of the real benchmark. *)
  let rng = Random.State.make [| 0x1a7e6 |] in
  let rec go d =
    if d <= 0 then Dag.Leaf (160 + Random.State.int rng 80)
    else
      let d' = if Random.State.int rng 8 = 0 then d - 2 else d - 1 in
      Dag.Fork
        { before = 40; children = [ go d'; go d' ]; after = 55 }
  in
  go depth

let quicksort ~n ~cutoff =
  let rng = Random.State.make [| 0x9507 |] in
  let rec go n =
    if n <= cutoff then Dag.Leaf (5 * n)
    else begin
      (* partition is linear work done before spawning the two halves;
         the pivot splits unevenly, as real input does *)
      let ratio = 0.3 +. (0.4 *. Random.State.float rng 1.0) in
      let left = int_of_float (float_of_int n *. ratio) in
      let right = n - left - 1 in
      Dag.Fork
        { before = n / 2; children = [ go (max 1 left); go (max 1 right) ]; after = 25 }
    end
  in
  go n

let matmul ~n ~block =
  (* Divide and conquer into 8 half-size multiplications; the quadrant
     additions are the join work. *)
  let rec go n =
    if n <= block then Dag.Leaf (n * n * n / 16)
    else
      let half = n / 2 in
      Dag.Fork
        {
          before = 12;
          children = List.init 8 (fun _ -> go half);
          after = n * n / 32;
        }
  in
  go n

let strassen ~n ~block =
  (* Seven recursive products plus O(n^2) matrix additions around them. *)
  let rec go n =
    if n <= block then Dag.Leaf (n * n * n / 16)
    else
      let half = n / 2 in
      let adds = n * n / 16 in
      Dag.Fork
        { before = adds; children = List.init 7 (fun _ -> go half); after = adds }
  in
  go n

let knapsack ~items =
  (* Branch and bound: an irregular binary tree where subtrees are pruned
     pseudo-randomly, with deeper nodes pruned more aggressively. *)
  let rng = Random.State.make [| 0xb0b |] in
  let rec go depth =
    if depth = 0 then Dag.Leaf 170
    else if depth < items - 6 && Random.State.int rng 100 < 32 then
      Dag.Leaf 190 (* pruned by the bound *)
    else
      Dag.Fork
        { before = 65; children = [ go (depth - 1); go (depth - 1) ]; after = 55 }
  in
  go items

let sweep ~rows ~row_work =
  Dag.Fork
    { before = 6; children = List.init rows (fun _ -> Dag.Leaf row_work); after = 8 }

let jacobi ~rows ~iters ~row_work =
  Dag.Seq (List.init iters (fun _ -> sweep ~rows ~row_work))

let heat ~rows ~iters ~row_work =
  (* Same iterative structure as Jacobi with a different grain. *)
  Dag.Seq (List.init iters (fun _ -> sweep ~rows ~row_work))

let cholesky ~blocks =
  (* Blocked right-looking factorisation: for each k, factor the diagonal
     block, update the panel below it in parallel, then the trailing
     submatrix in parallel. Parallelism shrinks as k grows. *)
  let steps =
    List.init blocks (fun k ->
        let below = blocks - k - 1 in
        let diag = Dag.Leaf 1100 in
        if below = 0 then diag
        else
          Dag.Seq
            [
              diag;
              Dag.Fork
                {
                  before = 6;
                  children = List.init below (fun _ -> Dag.Leaf 650);
                  after = 6;
                };
              Dag.Fork
                {
                  before = 6;
                  children =
                    List.init (below * (below + 1) / 2) (fun _ -> Dag.Leaf 600);
                  after = 6;
                };
            ])
  in
  Dag.Seq steps

let lud ~blocks =
  (* Blocked LU without pivoting: same wavefront shape as cholesky but a
     full (square) trailing update and finer blocks, so the tail of the
     computation has very shallow queues — the shape that starves FF-THE's
     default δ (Fig. 10's LUD discussion). *)
  let steps =
    List.init blocks (fun k ->
        let rest = blocks - k - 1 in
        let diag = Dag.Leaf 450 in
        if rest = 0 then diag
        else
          Dag.Seq
            [
              diag;
              Dag.Fork
                {
                  before = 6;
                  children = List.init (2 * rest) (fun _ -> Dag.Leaf 260);
                  after = 6;
                };
              Dag.Fork
                {
                  before = 6;
                  children = List.init (rest * rest) (fun _ -> Dag.Leaf 300);
                  after = 6;
                };
            ])
  in
  Dag.Seq steps

let fft ~n ~cutoff =
  let rec go n =
    if n <= cutoff then Dag.Leaf (5 * n)
    else
      let half = n / 2 in
      (* two recursive halves, then an O(n) butterfly combine *)
      Dag.Fork { before = 8; children = [ go half; go half ]; after = 2 * n }
  in
  go n

type bench = {
  name : string;
  description : string;
  paper_input : string;
  our_input : string;
  comp : unit -> Dag.comp;
}

let all =
  [
    {
      name = "Fib";
      description = "Recursive Fibonacci";
      paper_input = "42";
      our_input = "n=18";
      comp = (fun () -> fib 18);
    };
    {
      name = "Jacobi";
      description = "Iterative mesh relaxation";
      paper_input = "1024x1024";
      our_input = "240 rows x 10 iters, 1000 cycles/row";
      comp = (fun () -> jacobi ~rows:240 ~iters:10 ~row_work:1000);
    };
    {
      name = "QuickSort";
      description = "Recursive QuickSort";
      paper_input = "10^8";
      our_input = "n=30000, cutoff=64";
      comp = (fun () -> quicksort ~n:30_000 ~cutoff:64);
    };
    {
      name = "Matmul";
      description = "Matrix multiply";
      paper_input = "1024x1024";
      our_input = "n=256, block=32";
      comp = (fun () -> matmul ~n:256 ~block:32);
    };
    {
      name = "Integrate";
      description = "Recursively calculate area under a curve";
      paper_input = "10000";
      our_input = "depth=11";
      comp = (fun () -> integrate ~depth:11);
    };
    {
      name = "knapsack";
      description = "Recursive branch-and-bound knapsack solver";
      paper_input = "32 items";
      our_input = "18 items";
      comp = (fun () -> knapsack ~items:18);
    };
    {
      name = "cholesky";
      description = "Cholesky factorization";
      paper_input = "4000x4000, 40000 nonzeros";
      our_input = "18 blocks";
      comp = (fun () -> cholesky ~blocks:18);
    };
    {
      name = "Heat";
      description = "Heat diffusion simulation";
      paper_input = "4096x1024";
      our_input = "200 rows x 10 iters, 300 cycles/row";
      comp = (fun () -> heat ~rows:200 ~iters:10 ~row_work:300);
    };
    {
      name = "LUD";
      description = "LU decomposition";
      paper_input = "1024x1024";
      our_input = "14 blocks";
      comp = (fun () -> lud ~blocks:14);
    };
    {
      name = "strassen";
      description = "Strassen matrix multiply";
      paper_input = "4096x4096";
      our_input = "n=512, block=64";
      comp = (fun () -> strassen ~n:512 ~block:64);
    };
    {
      name = "fft";
      description = "Fast Fourier transform";
      paper_input = "2^26";
      our_input = "n=2^14, cutoff=128";
      comp = (fun () -> fft ~n:(1 lsl 14) ~cutoff:128);
    };
  ]

let fig1_names =
  [ "Fib"; "Jacobi"; "QuickSort"; "Matmul"; "Integrate"; "knapsack"; "cholesky" ]

let find name = List.find (fun b -> String.equal b.name name) all

(* The memoized DAGs are shared across domains when the harness fans runs
   out with [Par_runner]; the lock keeps the table itself safe. Builds run
   under the lock — a duplicate elaboration would be wasteful but harmless,
   whereas a torn [Hashtbl.add] is not. *)
let cache : (string, Dag.t) Hashtbl.t = Hashtbl.create 16
let cache_lock = Mutex.create ()

let dag b =
  Mutex.protect cache_lock (fun () ->
      match Hashtbl.find_opt cache b.name with
      | Some d -> d
      | None ->
          let d = Dag.of_comp (b.comp ()) in
          Hashtbl.add cache b.name d;
          d)
