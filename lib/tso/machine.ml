type config = {
  sb_capacity : int;
  buffer_model : Store_buffer.model;
}

let abstract_config ~sb_capacity =
  { sb_capacity; buffer_model = Store_buffer.Abstract }

let realistic_config ~sb_capacity ~coalesce =
  { sb_capacity; buffer_model = Store_buffer.Realistic { coalesce } }

let pso_config ~sb_capacity = { sb_capacity; buffer_model = Store_buffer.Pso }

type tid = int

type transition =
  | Step of tid
  | Drain of tid * int
  | Flush of tid

type thread = {
  tid : tid;
  name : string;
  buf : Store_buffer.t;
  mutable status : Program.status;
  (* Rolling hash of the responses this thread has received (one update per
     executed instruction). A thread program is a deterministic function of
     its response history, so equal [hist] means equal control state — the
     "program position" component of {!fingerprint}, which effect-based
     continuations cannot expose directly. *)
  mutable hist : int;
  (* Preallocated transition values, so computing the enabled set allocates
     nothing in steady state. [drain_trs.(l)] is [Drain (tid, l)]; lanes
     beyond 0 only exist under PSO and are grown on demand. *)
  step_tr : transition;
  flush_tr : transition;
  mutable drain_trs : transition array;
  (* Decoded response log: one [encode_response] int per executed
     instruction, appended only while the machine is recording. A
     deterministic thread program is a function of its response history, so
     replaying this log through a fresh continuation reconstructs the
     thread's control state — the basis of {!snapshot}/{!restore_into},
     which effect-based one-shot continuations cannot support by copying. *)
  mutable resp_log : int array;
  mutable resp_len : int;
}

type event =
  | Ev_exec of { tid : tid; instr : string }
  | Ev_drain of { tid : tid; result : Store_buffer.drain_result }
  | Ev_flush of { tid : tid; addr : Addr.t; value : int }
  | Ev_done of tid

type t = {
  mem : Memory.t;
  cfg : config;
  (* Growable arrays (spare slots are filler): amortised O(1) registration
     for threads and listeners alike. *)
  mutable threads : thread array;
  mutable n_threads : int;
  mutable listeners : (event -> unit) array;
  mutable n_listeners : int;
  mutable steps : int;
  (* Telemetry counter sink. [None] (the default) keeps the hot path to a
     single physical-equality check per transition, mirroring the
     [n_listeners > 0] guard on event strings. *)
  mutable sink : Telemetry.Sink.t option;
  (* Counter routing table, always consistent with [sink]: empty when
     detached, [|root|] for a plain sink, one entry per shard when a
     sharded plane is attached (events on thread [tid] are charged to
     [counters.(tid mod length)]). Counting sites test only this array's
     length, so the detached cost stays a single check. *)
  mutable counters : Telemetry.Sink.t array;
  (* Response recording for {!snapshot}/{!restore_into}. Off by default so
     the simulator hot path pays one boolean test per executed
     instruction. *)
  mutable record : bool;
}

let create ?mem cfg =
  let mem = match mem with Some m -> m | None -> Memory.create () in
  {
    mem;
    cfg;
    threads = [||];
    n_threads = 0;
    listeners = [||];
    n_listeners = 0;
    steps = 0;
    sink = None;
    counters = [||];
    record = false;
  }

let memory t = t.mem
let config t = t.cfg

let set_sink t s =
  t.sink <- Some s;
  t.counters <- [| s |]

let set_sharded_sink t s shards =
  t.sink <- Some s;
  t.counters <- Telemetry.Shards.sinks shards

let clear_sink t =
  t.sink <- None;
  t.counters <- [||]

let sink t = t.sink
let counters t = t.counters

(* Queue-layer hook: the fence-free thieves count each delta certification
   they attempt ([t - delta > h]) against the machine's sink. Host-side and
   deterministic — it fires exactly when the simulated steal path executes
   the comparison. The caller does not know which simulated thread is
   stealing, so the check is charged to shard 0; merged totals are
   unaffected (shard merging is pure addition). *)
let count_delta_check t =
  let r = t.counters in
  if Array.length r > 0 then begin
    let s = Array.unsafe_get r 0 in
    s.Telemetry.Sink.delta_checks <- s.Telemetry.Sink.delta_checks + 1
  end

let spawn t ~name body =
  let tid = t.n_threads in
  let buf =
    Store_buffer.create ~capacity:t.cfg.sb_capacity ~model:t.cfg.buffer_model
  in
  let th =
    {
      tid;
      name;
      buf;
      status = Program.start body;
      hist = 0;
      step_tr = Step tid;
      flush_tr = Flush tid;
      drain_trs = [| Drain (tid, 0) |];
      resp_log = [||];
      resp_len = 0;
    }
  in
  if tid = Array.length t.threads then begin
    let grown = Array.make (max 4 (2 * tid)) th in
    Array.blit t.threads 0 grown 0 tid;
    t.threads <- grown
  end;
  t.threads.(tid) <- th;
  t.n_threads <- tid + 1;
  tid

let thread t tid =
  if tid < 0 || tid >= t.n_threads then invalid_arg "Machine: no such thread";
  t.threads.(tid)

let thread_count t = t.n_threads
let thread_name t tid = (thread t tid).name

let thread_done t tid =
  match (thread t tid).status with Program.Done -> true | Program.Paused _ -> false

let status_done = function Program.Done -> true | Program.Paused _ -> false

let all_done t =
  let rec go i =
    i >= t.n_threads || (status_done t.threads.(i).status && go (i + 1))
  in
  go 0

let buffered_stores t tid = Store_buffer.pending (thread t tid).buf
let buffered_entries t tid = Store_buffer.to_list (thread t tid).buf

let quiescent t =
  let rec go i =
    i >= t.n_threads
    || (status_done t.threads.(i).status
        && Store_buffer.is_empty t.threads.(i).buf
        && go (i + 1))
  in
  go 0

let steps t = t.steps

let request_enabled th (type a) (req : a Program.request) =
  match req with
  | Program.Req_load _ | Program.Req_work _ | Program.Req_label _
  | Program.Req_pause ->
      true
  | Program.Req_store _ -> not (Store_buffer.is_full th.buf)
  | Program.Req_cas _ | Program.Req_fetch_add _ | Program.Req_fence ->
      (* Atomic RMWs and fences require the issuing thread's buffer to have
         fully drained (x86 semantics); the drain itself happens through
         ordinary Drain/Flush transitions, preserving the intermediate
         memory states other threads can observe. *)
      Store_buffer.is_empty th.buf

let drain_tr th lane =
  let n = Array.length th.drain_trs in
  if lane >= n then begin
    let grown = Array.make (max (lane + 1) (2 * n)) th.step_tr in
    Array.blit th.drain_trs 0 grown 0 n;
    for l = n to Array.length grown - 1 do
      grown.(l) <- Drain (th.tid, l)
    done;
    th.drain_trs <- grown
  end;
  th.drain_trs.(lane)

(* The enabled set, in the deterministic order every driver depends on:
   threads by tid; per thread [Flush], then [Drain] lanes ascending, then
   [Step]. The FIFO models (the hot path) go through the preallocated
   per-thread transitions; only PSO's per-address lane enumeration
   allocates. *)
let enabled_iter t f =
  for i = 0 to t.n_threads - 1 do
    let th = t.threads.(i) in
    if Store_buffer.can_flush_egress th.buf then f th.flush_tr;
    (match t.cfg.buffer_model with
    | Store_buffer.Abstract | Store_buffer.Realistic _ ->
        if Store_buffer.can_drain th.buf then f th.drain_trs.(0)
    | Store_buffer.Pso ->
        List.iter
          (fun lane -> f (drain_tr th lane))
          (Store_buffer.drain_lanes th.buf));
    match th.status with
    | Program.Done -> ()
    | Program.Paused (Program.Paused_at (req, _)) ->
        if request_enabled th req then f th.step_tr
  done

type tbuf = {
  mutable trs : transition array;
  mutable len : int;
}

let tbuf_create () = { trs = Array.make 16 (Step (-1)); len = 0 }
let tbuf_length b = b.len

let tbuf_get b i =
  if i < 0 || i >= b.len then invalid_arg "Machine.tbuf_get: out of bounds";
  b.trs.(i)

let tbuf_set b i tr =
  if i < 0 || i >= b.len then invalid_arg "Machine.tbuf_set: out of bounds";
  b.trs.(i) <- tr

let tbuf_truncate b n =
  if n < 0 || n > b.len then invalid_arg "Machine.tbuf_truncate: bad length";
  b.len <- n

let tbuf_add b tr =
  let n = b.len in
  if n = Array.length b.trs then begin
    let grown = Array.make (2 * n) tr in
    Array.blit b.trs 0 grown 0 n;
    b.trs <- grown
  end;
  b.trs.(n) <- tr;
  b.len <- n + 1

(* Same loop as {!enabled_iter}, open-coded so refilling a reused buffer
   allocates nothing (passing [tbuf_add b] as a closure would). *)
let enabled_into t b =
  b.len <- 0;
  for i = 0 to t.n_threads - 1 do
    let th = t.threads.(i) in
    if Store_buffer.can_flush_egress th.buf then tbuf_add b th.flush_tr;
    (match t.cfg.buffer_model with
    | Store_buffer.Abstract | Store_buffer.Realistic _ ->
        if Store_buffer.can_drain th.buf then tbuf_add b th.drain_trs.(0)
    | Store_buffer.Pso ->
        List.iter
          (fun lane -> tbuf_add b (drain_tr th lane))
          (Store_buffer.drain_lanes th.buf));
    match th.status with
    | Program.Done -> ()
    | Program.Paused (Program.Paused_at (req, _)) ->
        if request_enabled th req then tbuf_add b th.step_tr
  done;
  b.len

let enabled t =
  let acc = ref [] in
  enabled_iter t (fun tr -> acc := tr :: !acc);
  List.rev !acc

let pending_request t tid =
  match (thread t tid).status with
  | Program.Done -> None
  | Program.Paused (Program.Paused_at (req, _)) ->
      Some (Program.describe_named (Memory.name t.mem) req)

type request_class =
  | C_load
  | C_store
  | C_rmw
  | C_fence
  | C_work of int
  | C_free

let pending_class t tid =
  match (thread t tid).status with
  | Program.Done -> None
  | Program.Paused (Program.Paused_at (req, _)) ->
      Some
        (match req with
        | Program.Req_load _ -> C_load
        | Program.Req_store _ -> C_store
        | Program.Req_cas _ | Program.Req_fetch_add _ -> C_rmw
        | Program.Req_fence -> C_fence
        | Program.Req_work n -> C_work n
        | Program.Req_label _ | Program.Req_pause -> C_free)

let pending_load t tid =
  let th = thread t tid in
  match th.status with
  | Program.Paused (Program.Paused_at (Program.Req_load a, _)) -> (
      match Store_buffer.lookup th.buf a with
      | Some v -> Some (a, v, true)
      | None -> Some (a, Memory.get t.mem a, false))
  | _ -> None

let store_blocked t tid =
  let th = thread t tid in
  match th.status with
  | Program.Paused (Program.Paused_at (Program.Req_store _, _)) ->
      Store_buffer.is_full th.buf
  | _ -> false

let emit t ev =
  for i = 0 to t.n_listeners - 1 do
    t.listeners.(i) ev
  done

let on_event t f =
  let n = t.n_listeners in
  if n = Array.length t.listeners then begin
    let grown = Array.make (max 4 (2 * n)) f in
    Array.blit t.listeners 0 grown 0 n;
    t.listeners <- grown
  end;
  t.listeners.(n) <- f;
  t.n_listeners <- n + 1

let exec_request t th (type a) (req : a Program.request) : a =
  match req with
  | Program.Req_load a -> (
      match Store_buffer.lookup th.buf a with
      | Some v -> v
      | None -> Memory.get t.mem a)
  | Program.Req_store (a, v) ->
      Store_buffer.push th.buf a v;
      ()
  | Program.Req_cas (a, expect, replace) ->
      assert (Store_buffer.is_empty th.buf);
      let cur = Memory.get t.mem a in
      if cur = expect then begin
        Memory.set t.mem a replace;
        true
      end
      else false
  | Program.Req_fetch_add (a, d) ->
      assert (Store_buffer.is_empty th.buf);
      let cur = Memory.get t.mem a in
      Memory.set t.mem a (cur + d);
      cur
  | Program.Req_fence ->
      assert (Store_buffer.is_empty th.buf);
      ()
  | Program.Req_work _ -> ()
  | Program.Req_label _ -> ()
  | Program.Req_pause -> ()

(* FNV-1a-style mixing over native ints. The multiplier is the 64-bit FNV
   prime; products wrap mod 2^63, which is fine for a non-cryptographic
   structural hash. *)
let fnv_prime = 0x100000001b3
let[@inline] mix h k = (h lxor k) * fnv_prime

(* Structural encoding of a pending request: constructor tag plus operands.
   Replaces the formatted [Program.describe] string everywhere hashing is
   concerned — same partition of requests, no allocation. *)
let encode_request : type a. a Program.request -> int = function
  | Program.Req_load a -> mix 1 (Addr.to_index a)
  | Program.Req_store (a, v) -> mix (mix 2 (Addr.to_index a)) v
  | Program.Req_cas (a, expect, replace) ->
      mix (mix (mix 3 (Addr.to_index a)) expect) replace
  | Program.Req_fetch_add (a, d) -> mix (mix 4 (Addr.to_index a)) d
  | Program.Req_fence -> 5
  | Program.Req_work n -> mix 6 n
  | Program.Req_label s -> mix 7 (Hashtbl.hash s)
  | Program.Req_pause -> 8

(* Encode a request's response as an int for the history hash. Only loads,
   CAS and fetch-add return data a program can branch on. *)
let encode_response : type a. a Program.request -> a -> int =
 fun req v ->
  match req with
  | Program.Req_load _ -> v
  | Program.Req_cas _ -> if v then 1 else 0
  | Program.Req_fetch_add _ -> v
  | Program.Req_store _ | Program.Req_fence | Program.Req_work _
  | Program.Req_label _ | Program.Req_pause ->
      0

(* Response recording (snapshot support). *)

let set_record_responses t b =
  if b && (not t.record) && t.steps > 0 then
    invalid_arg
      "Machine.set_record_responses: recording must start before the machine \
       is driven (earlier responses were not captured)";
  if not b then
    for i = 0 to t.n_threads - 1 do
      t.threads.(i).resp_len <- 0
    done;
  t.record <- b

let record_responses t = t.record

let log_response th r =
  let n = th.resp_len in
  if n = Array.length th.resp_log then begin
    let grown = Array.make (max 64 (2 * n)) 0 in
    Array.blit th.resp_log 0 grown 0 n;
    th.resp_log <- grown
  end;
  th.resp_log.(n) <- r;
  th.resp_len <- n + 1

(* Telemetry accounting for one executed instruction. Out of line from
   {!apply} so the sink-attached branch costs a call only when a sink is
   actually present. *)
let count_exec (s : Telemetry.Sink.t) th (type a) (req : a Program.request) =
  match req with
  | Program.Req_load _ -> s.loads <- s.loads + 1
  | Program.Req_store _ ->
      s.stores <- s.stores + 1;
      (* Occupancy after the push: the store just issued is included. *)
      Telemetry.Histogram.observe s.sb_occupancy (Store_buffer.entries th.buf)
  | Program.Req_cas _ -> s.cas <- s.cas + 1
  | Program.Req_fetch_add _ -> s.fetch_adds <- s.fetch_adds + 1
  | Program.Req_fence -> s.fences <- s.fences + 1
  | Program.Req_work _ | Program.Req_label _ | Program.Req_pause -> ()

let count_drain (s : Telemetry.Sink.t) th result =
  s.drains <- s.drains + 1;
  (match result with
  | Store_buffer.Coalesced _ -> s.coalesces <- s.coalesces + 1
  | Store_buffer.Wrote _ | Store_buffer.Staged _ -> ());
  Telemetry.Histogram.observe s.egress_depth
    (match Store_buffer.egress_entry th.buf with None -> 0 | Some _ -> 1)

(* The sink charged for thread [tid]'s events: its shard when a sharded
   plane is attached ([counters] has one entry per shard), the root sink
   otherwise ([counters] = [|root|]). Callers must have checked that the
   routing table is non-empty. *)
let[@inline] counter_for t tid =
  let r = t.counters in
  Array.unsafe_get r (tid mod Array.length r)

let apply t tr =
  t.steps <- t.steps + 1;
  let tr_tid =
    match tr with Step tid -> tid | Drain (tid, _) -> tid | Flush tid -> tid
  in
  let counting = Array.length t.counters > 0 in
  (if counting then
     let s = counter_for t tr_tid in
     s.Telemetry.Sink.steps <- s.Telemetry.Sink.steps + 1);
  match tr with
  | Step tid -> (
      let th = thread t tid in
      match th.status with
      | Program.Done -> invalid_arg "Machine.apply: thread is done"
      | Program.Paused (Program.Paused_at (req, resume)) ->
          if not (request_enabled th req) then
            invalid_arg "Machine.apply: instruction not enabled";
          let v = exec_request t th req in
          th.hist <- mix (mix th.hist (encode_request req)) (encode_response req v);
          if t.record then log_response th (encode_response req v);
          th.status <- resume v;
          if counting then count_exec (counter_for t tid) th req;
          (* The formatted instruction string exists only for listeners;
             without any registered, the step allocates nothing here. *)
          if t.n_listeners > 0 then begin
            let instr = Program.describe_named (Memory.name t.mem) req in
            emit t (Ev_exec { tid; instr });
            if status_done th.status then emit t (Ev_done tid)
          end)
  | Drain (tid, lane) ->
      let th = thread t tid in
      let result = Store_buffer.drain_lane th.buf lane t.mem in
      if counting then count_drain (counter_for t tid) th result;
      if t.n_listeners > 0 then emit t (Ev_drain { tid; result })
  | Flush tid ->
      let th = thread t tid in
      let addr, value = Store_buffer.flush_egress th.buf t.mem in
      (if counting then
         let s = counter_for t tid in
         s.Telemetry.Sink.flushes <- s.Telemetry.Sink.flushes + 1);
      if t.n_listeners > 0 then emit t (Ev_flush { tid; addr; value })

let fingerprint t =
  let h = ref 0x811c9dc5 in
  let mem = t.mem in
  let n_cells = Memory.size mem in
  h := mix !h n_cells;
  for i = 0 to n_cells - 1 do
    h := mix !h (Memory.cell mem i)
  done;
  (* One closure shared by the egress slot and the buffer-proper walk; the
     tuples it receives are the queue's own entries (no per-entry boxing). *)
  let add_entry (a, v) = h := mix (mix !h (Addr.to_index a + 2)) v in
  for i = 0 to t.n_threads - 1 do
    let th = t.threads.(i) in
    (* Control state: done/paused, the pending instruction, and the
       response-history hash (program position). *)
    (match th.status with
    | Program.Done -> h := mix !h 0xD0
    | Program.Paused (Program.Paused_at (req, _)) ->
        h := mix (mix !h 0xBA) (encode_request req));
    h := mix !h th.hist;
    (* The egress slot B is hashed separately from the buffer proper: a
       store staged in B and the same store still queued are different
       states (they enable different transitions). *)
    (match Store_buffer.egress_entry th.buf with
    | None -> h := mix !h 0x0E
    | Some e ->
        h := mix !h 0x1E;
        add_entry e);
    h := mix !h (Store_buffer.entries th.buf);
    Store_buffer.iter_entries th.buf add_entry
  done;
  !h

(* {1 Transition footprints} *)

type footprint = {
  f_tid : tid;
  f_read : int;  (* address index read from memory, or [no_addr] *)
  f_write : int;  (* address index written to memory, or [no_addr] *)
}

let no_addr = -1
let footprint_tid f = f.f_tid
let footprint_read f = f.f_read
let footprint_write f = f.f_write

(* Every machine transition touches at most one shared address, so a
   footprint is two optional address indices. The TSO-specific leverage: a
   [Step] of a store touches no shared address at all — the store only
   enters the issuing thread's private buffer; memory changes later, at the
   [Drain]/[Flush] that propagates it, and that transition carries the
   write. [Drain]/[Flush] conservatively claim a memory write even when the
   realistic model merely stages into B (staging changes what a subsequent
   same-address [Flush] writes, so treating it as a write keeps dependent
   pairs dependent). *)
let footprint t tr =
  match tr with
  | Step tid -> (
      let th = thread t tid in
      match th.status with
      | Program.Done -> { f_tid = tid; f_read = no_addr; f_write = no_addr }
      | Program.Paused (Program.Paused_at (req, _)) -> (
          match req with
          | Program.Req_load a ->
              { f_tid = tid; f_read = Addr.to_index a; f_write = no_addr }
          | Program.Req_cas (a, _, _) ->
              let i = Addr.to_index a in
              { f_tid = tid; f_read = i; f_write = i }
          | Program.Req_fetch_add (a, _) ->
              let i = Addr.to_index a in
              { f_tid = tid; f_read = i; f_write = i }
          | Program.Req_store _ | Program.Req_fence | Program.Req_work _
          | Program.Req_label _ | Program.Req_pause ->
              { f_tid = tid; f_read = no_addr; f_write = no_addr }))
  | Drain (tid, lane) ->
      let th = thread t tid in
      let w =
        match t.cfg.buffer_model with
        | Store_buffer.Pso -> lane (* PSO lanes are address indices *)
        | Store_buffer.Abstract | Store_buffer.Realistic _ -> (
            match Store_buffer.oldest th.buf with
            | Some (a, _) -> Addr.to_index a
            | None -> no_addr)
      in
      { f_tid = tid; f_read = no_addr; f_write = w }
  | Flush tid -> (
      let th = thread t tid in
      match Store_buffer.egress_entry th.buf with
      | Some (a, _) ->
          { f_tid = tid; f_read = no_addr; f_write = Addr.to_index a }
      | None -> { f_tid = tid; f_read = no_addr; f_write = no_addr })

let[@inline] conflict x y = x >= 0 && x = y

let independent f1 f2 =
  f1.f_tid <> f2.f_tid
  && (not (conflict f1.f_write f2.f_read))
  && (not (conflict f1.f_write f2.f_write))
  && not (conflict f1.f_read f2.f_write)

(* {1 Snapshot / restore}

   One-shot effect continuations cannot be cloned, so a snapshot does not
   copy thread control state directly. Instead it copies everything else
   (memory, store buffers, hashes) plus each thread's decoded response log;
   [restore_into] then rebuilds control state by resuming a *fresh*
   instance's continuations with the recorded responses. Host-side effects
   a thread body performs (check closures writing result cells) re-execute
   identically because the program is a deterministic function of its
   response history. *)

type thread_snap = {
  mutable s_hist : int;
  mutable s_done : bool;
  mutable s_resp : int array;
  mutable s_resp_len : int;
  (* buffer-proper entries, interleaved [addr_index; value] pairs *)
  mutable s_entries : int array;
  mutable s_n_entries : int;
  mutable s_egress_a : int;  (* no_addr = B empty *)
  mutable s_egress_v : int;
}

type snapshot = {
  mutable s_mem : int array;
  mutable s_mem_len : int;
  mutable s_steps : int;
  mutable s_threads : thread_snap array;
  mutable s_n_threads : int;
}

let snapshot_create () =
  { s_mem = [||]; s_mem_len = 0; s_steps = 0; s_threads = [||]; s_n_threads = 0 }

let thread_snap_create () =
  {
    s_hist = 0;
    s_done = false;
    s_resp = [||];
    s_resp_len = 0;
    s_entries = [||];
    s_n_entries = 0;
    s_egress_a = no_addr;
    s_egress_v = 0;
  }

let ensure_int_array a n = if Array.length a >= n then a else Array.make (max n (2 * Array.length a)) 0

let snapshot t snap =
  if not t.record then
    invalid_arg "Machine.snapshot: machine is not recording responses";
  let n_cells = Memory.size t.mem in
  snap.s_mem <- ensure_int_array snap.s_mem n_cells;
  Memory.blit_to t.mem snap.s_mem;
  snap.s_mem_len <- n_cells;
  snap.s_steps <- t.steps;
  if Array.length snap.s_threads < t.n_threads then begin
    let grown =
      Array.init (max t.n_threads (2 * Array.length snap.s_threads)) (fun i ->
          if i < Array.length snap.s_threads then snap.s_threads.(i)
          else thread_snap_create ())
    in
    snap.s_threads <- grown
  end;
  snap.s_n_threads <- t.n_threads;
  for i = 0 to t.n_threads - 1 do
    let th = t.threads.(i) in
    let ts = snap.s_threads.(i) in
    ts.s_hist <- th.hist;
    ts.s_done <- status_done th.status;
    ts.s_resp <- ensure_int_array ts.s_resp th.resp_len;
    Array.blit th.resp_log 0 ts.s_resp 0 th.resp_len;
    ts.s_resp_len <- th.resp_len;
    let n_entries = Store_buffer.entries th.buf in
    ts.s_entries <- ensure_int_array ts.s_entries (2 * n_entries);
    let k = ref 0 in
    Store_buffer.iter_entries th.buf (fun (a, v) ->
        ts.s_entries.(2 * !k) <- Addr.to_index a;
        ts.s_entries.((2 * !k) + 1) <- v;
        incr k);
    ts.s_n_entries <- n_entries;
    (match Store_buffer.egress_entry th.buf with
    | None ->
        ts.s_egress_a <- no_addr;
        ts.s_egress_v <- 0
    | Some (a, v) ->
        ts.s_egress_a <- Addr.to_index a;
        ts.s_egress_v <- v)
  done

(* Decode a recorded response back to the value the request's continuation
   expects — the exact inverse of [encode_response]. *)
let decode_response : type a. a Program.request -> int -> a =
 fun req r ->
  match req with
  | Program.Req_load _ -> r
  | Program.Req_cas _ -> r <> 0
  | Program.Req_fetch_add _ -> r
  | Program.Req_store _ -> ()
  | Program.Req_fence -> ()
  | Program.Req_work _ -> ()
  | Program.Req_label _ -> ()
  | Program.Req_pause -> ()

let restore_into snap t =
  if t.steps <> 0 then
    invalid_arg "Machine.restore_into: target must be a fresh instance";
  if t.n_threads <> snap.s_n_threads then
    invalid_arg "Machine.restore_into: thread count differs from snapshot";
  if Memory.size t.mem <> snap.s_mem_len then
    invalid_arg "Machine.restore_into: memory layout differs from snapshot";
  Memory.restore_from t.mem snap.s_mem ~len:snap.s_mem_len;
  for i = 0 to t.n_threads - 1 do
    let th = t.threads.(i) in
    let ts = snap.s_threads.(i) in
    (* Fast-forward the fresh continuation through the recorded responses;
       memory/buffer side effects of [exec_request] are NOT re-run — the
       snapshot already holds the resulting data state. *)
    for k = 0 to ts.s_resp_len - 1 do
      match th.status with
      | Program.Done ->
          invalid_arg "Machine.restore_into: thread diverged from snapshot"
      | Program.Paused (Program.Paused_at (req, resume)) ->
          th.status <- resume (decode_response req ts.s_resp.(k))
    done;
    if status_done th.status <> ts.s_done then
      invalid_arg "Machine.restore_into: thread diverged from snapshot";
    th.hist <- ts.s_hist;
    th.resp_log <- ensure_int_array th.resp_log ts.s_resp_len;
    Array.blit ts.s_resp 0 th.resp_log 0 ts.s_resp_len;
    th.resp_len <- ts.s_resp_len;
    Store_buffer.clear th.buf;
    for k = 0 to ts.s_n_entries - 1 do
      Store_buffer.push th.buf
        (Addr.of_index ts.s_entries.(2 * k))
        ts.s_entries.((2 * k) + 1)
    done;
    Store_buffer.set_egress th.buf
      (if ts.s_egress_a >= 0 then
         Some (Addr.of_index ts.s_egress_a, ts.s_egress_v)
       else None)
  done;
  t.steps <- snap.s_steps;
  t.record <- true;
  let r = t.counters in
  if Array.length r > 0 then begin
    let s = Array.unsafe_get r 0 in
    s.Telemetry.Sink.snapshot_restores <- s.Telemetry.Sink.snapshot_restores + 1
  end

(* The pre-optimisation digest, kept as a debug cross-check: the alcotest
   suite differential-tests {!fingerprint}'s equality classes against it
   over the classic litmus programs. *)
let fingerprint_digest t =
  let b = Buffer.create 256 in
  let add_entry (a, v) =
    Buffer.add_string b (string_of_int (Addr.to_index a));
    Buffer.add_char b ':';
    Buffer.add_string b (string_of_int v);
    Buffer.add_char b ';'
  in
  Array.iter (fun v -> Buffer.add_string b (string_of_int v); Buffer.add_char b ',')
    (Memory.snapshot t.mem);
  for i = 0 to t.n_threads - 1 do
    let th = t.threads.(i) in
    Buffer.add_char b '|';
    (match th.status with
    | Program.Done -> Buffer.add_char b 'D'
    | Program.Paused (Program.Paused_at (req, _)) ->
        Buffer.add_char b 'P';
        Buffer.add_string b (Program.describe req));
    Buffer.add_char b '#';
    Buffer.add_string b (string_of_int th.hist);
    Buffer.add_char b '@';
    (match Store_buffer.egress_entry th.buf with
    | None -> Buffer.add_char b '-'
    | Some e -> add_entry e);
    Buffer.add_char b '!';
    List.iter add_entry (Store_buffer.buffered th.buf)
  done;
  Digest.to_hex (Digest.string (Buffer.contents b))
