type config = {
  sb_capacity : int;
  buffer_model : Store_buffer.model;
}

let abstract_config ~sb_capacity =
  { sb_capacity; buffer_model = Store_buffer.Abstract }

let realistic_config ~sb_capacity ~coalesce =
  { sb_capacity; buffer_model = Store_buffer.Realistic { coalesce } }

let pso_config ~sb_capacity = { sb_capacity; buffer_model = Store_buffer.Pso }

type tid = int

type thread = {
  tid : tid;
  name : string;
  buf : Store_buffer.t;
  mutable status : Program.status;
  (* Rolling hash of the responses this thread has received (one update per
     executed instruction). A thread program is a deterministic function of
     its response history, so equal [hist] means equal control state — the
     "program position" component of {!fingerprint}, which effect-based
     continuations cannot expose directly. *)
  mutable hist : int;
}

type event =
  | Ev_exec of { tid : tid; instr : string }
  | Ev_drain of { tid : tid; result : Store_buffer.drain_result }
  | Ev_flush of { tid : tid; addr : Addr.t; value : int }
  | Ev_done of tid

type t = {
  mem : Memory.t;
  cfg : config;
  mutable threads : thread array;
  (* Growable array: amortised O(1) registration, allocation-free emission
     in registration order ([apply] fires listeners on every transition). *)
  mutable listeners : (event -> unit) array;
  mutable n_listeners : int;
  mutable steps : int;
}

let create ?mem cfg =
  let mem = match mem with Some m -> m | None -> Memory.create () in
  { mem; cfg; threads = [||]; listeners = [||]; n_listeners = 0; steps = 0 }

let memory t = t.mem
let config t = t.cfg

let spawn t ~name body =
  let tid = Array.length t.threads in
  let buf =
    Store_buffer.create ~capacity:t.cfg.sb_capacity ~model:t.cfg.buffer_model
  in
  let th = { tid; name; buf; status = Program.start body; hist = 0 } in
  t.threads <- Array.append t.threads [| th |];
  tid

let thread t tid =
  if tid < 0 || tid >= Array.length t.threads then
    invalid_arg "Machine: no such thread";
  t.threads.(tid)

let thread_count t = Array.length t.threads
let thread_name t tid = (thread t tid).name

let thread_done t tid =
  match (thread t tid).status with Program.Done -> true | Program.Paused _ -> false

let status_done = function Program.Done -> true | Program.Paused _ -> false
let all_done t = Array.for_all (fun th -> status_done th.status) t.threads
let buffered_stores t tid = Store_buffer.pending (thread t tid).buf

let quiescent t =
  all_done t && Array.for_all (fun th -> Store_buffer.is_empty th.buf) t.threads

let steps t = t.steps

type transition =
  | Step of tid
  | Drain of tid * int
  | Flush of tid

let request_enabled th (type a) (req : a Program.request) =
  match req with
  | Program.Req_load _ | Program.Req_work _ | Program.Req_label _
  | Program.Req_pause ->
      true
  | Program.Req_store _ -> not (Store_buffer.is_full th.buf)
  | Program.Req_cas _ | Program.Req_fetch_add _ | Program.Req_fence ->
      (* Atomic RMWs and fences require the issuing thread's buffer to have
         fully drained (x86 semantics); the drain itself happens through
         ordinary Drain/Flush transitions, preserving the intermediate
         memory states other threads can observe. *)
      Store_buffer.is_empty th.buf

let enabled t =
  let acc = ref [] in
  Array.iter
    (fun th ->
      if Store_buffer.can_flush_egress th.buf then acc := Flush th.tid :: !acc;
      List.iter
        (fun lane -> acc := Drain (th.tid, lane) :: !acc)
        (List.rev (Store_buffer.drain_lanes th.buf));
      match th.status with
      | Program.Done -> ()
      | Program.Paused (Program.Paused_at (req, _)) ->
          if request_enabled th req then acc := Step th.tid :: !acc)
    t.threads;
  List.rev !acc

let pending_request t tid =
  match (thread t tid).status with
  | Program.Done -> None
  | Program.Paused (Program.Paused_at (req, _)) ->
      Some (Program.describe_named (Memory.name t.mem) req)

type request_class =
  | C_load
  | C_store
  | C_rmw
  | C_fence
  | C_work of int
  | C_free

let pending_class t tid =
  match (thread t tid).status with
  | Program.Done -> None
  | Program.Paused (Program.Paused_at (req, _)) ->
      Some
        (match req with
        | Program.Req_load _ -> C_load
        | Program.Req_store _ -> C_store
        | Program.Req_cas _ | Program.Req_fetch_add _ -> C_rmw
        | Program.Req_fence -> C_fence
        | Program.Req_work n -> C_work n
        | Program.Req_label _ | Program.Req_pause -> C_free)

let store_blocked t tid =
  let th = thread t tid in
  match th.status with
  | Program.Paused (Program.Paused_at (Program.Req_store _, _)) ->
      Store_buffer.is_full th.buf
  | _ -> false

let emit t ev =
  for i = 0 to t.n_listeners - 1 do
    t.listeners.(i) ev
  done

let on_event t f =
  let n = t.n_listeners in
  if n = Array.length t.listeners then begin
    let grown = Array.make (max 4 (2 * n)) f in
    Array.blit t.listeners 0 grown 0 n;
    t.listeners <- grown
  end;
  t.listeners.(n) <- f;
  t.n_listeners <- n + 1

let exec_request t th (type a) (req : a Program.request) : a =
  match req with
  | Program.Req_load a -> (
      match Store_buffer.lookup th.buf a with
      | Some v -> v
      | None -> Memory.get t.mem a)
  | Program.Req_store (a, v) ->
      Store_buffer.push th.buf a v;
      ()
  | Program.Req_cas (a, expect, replace) ->
      assert (Store_buffer.is_empty th.buf);
      let cur = Memory.get t.mem a in
      if cur = expect then begin
        Memory.set t.mem a replace;
        true
      end
      else false
  | Program.Req_fetch_add (a, d) ->
      assert (Store_buffer.is_empty th.buf);
      let cur = Memory.get t.mem a in
      Memory.set t.mem a (cur + d);
      cur
  | Program.Req_fence ->
      assert (Store_buffer.is_empty th.buf);
      ()
  | Program.Req_work _ -> ()
  | Program.Req_label _ -> ()
  | Program.Req_pause -> ()

(* Encode a request's response as an int for the history hash. Only loads,
   CAS and fetch-add return data a program can branch on. *)
let encode_response : type a. a Program.request -> a -> int =
 fun req v ->
  match req with
  | Program.Req_load _ -> v
  | Program.Req_cas _ -> if v then 1 else 0
  | Program.Req_fetch_add _ -> v
  | Program.Req_store _ | Program.Req_fence | Program.Req_work _
  | Program.Req_label _ | Program.Req_pause ->
      0

let apply t tr =
  t.steps <- t.steps + 1;
  match tr with
  | Step tid -> (
      let th = thread t tid in
      match th.status with
      | Program.Done -> invalid_arg "Machine.apply: thread is done"
      | Program.Paused (Program.Paused_at (req, resume)) ->
          if not (request_enabled th req) then
            invalid_arg "Machine.apply: instruction not enabled";
          let instr = Program.describe_named (Memory.name t.mem) req in
          let v = exec_request t th req in
          th.hist <- Hashtbl.hash (th.hist, instr, encode_response req v);
          th.status <- resume v;
          let ev = Ev_exec { tid; instr } in
          emit t ev;
          if status_done th.status then emit t (Ev_done tid);
          ev)
  | Drain (tid, lane) ->
      let th = thread t tid in
      let result = Store_buffer.drain_lane th.buf lane t.mem in
      let ev = Ev_drain { tid; result } in
      emit t ev;
      ev
  | Flush tid ->
      let th = thread t tid in
      let addr, value = Store_buffer.flush_egress th.buf t.mem in
      let ev = Ev_flush { tid; addr; value } in
      emit t ev;
      ev

let fingerprint t =
  let b = Buffer.create 256 in
  let add_entry (a, v) =
    Buffer.add_string b (string_of_int (Addr.to_index a));
    Buffer.add_char b ':';
    Buffer.add_string b (string_of_int v);
    Buffer.add_char b ';'
  in
  Array.iter (fun v -> Buffer.add_string b (string_of_int v); Buffer.add_char b ',')
    (Memory.snapshot t.mem);
  Array.iter
    (fun th ->
      Buffer.add_char b '|';
      (* Control state: done/paused, the pending instruction, and the
         response-history hash (program position). *)
      (match th.status with
      | Program.Done -> Buffer.add_char b 'D'
      | Program.Paused (Program.Paused_at (req, _)) ->
          Buffer.add_char b 'P';
          Buffer.add_string b (Program.describe req));
      Buffer.add_char b '#';
      Buffer.add_string b (string_of_int th.hist);
      (* The egress slot B is hashed separately from the buffer proper: a
         store staged in B and the same store still queued are different
         states (they enable different transitions). *)
      Buffer.add_char b '@';
      (match Store_buffer.egress_entry th.buf with
      | None -> Buffer.add_char b '-'
      | Some e -> add_entry e);
      Buffer.add_char b '!';
      List.iter add_entry (Store_buffer.buffered th.buf))
    t.threads;
  Digest.to_hex (Digest.string (Buffer.contents b))
