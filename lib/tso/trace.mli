(** Human-readable interleaving traces, in the columns-per-thread style of
    litmus tools. Attach to a machine before driving it; render afterwards.

    {v
    step  worker                       thief
    ---------------------------------------------------------
       1  store q.T := 2
       2                               cas q.lock (0 -> 1)
       3  ~ drain q.T=2
    v}

    Memory-subsystem actions (drains, egress flushes) are shown in the
    owning thread's column prefixed with [~]. *)

type t

val attach : Machine.t -> t
(** Registers an event listener; events from every subsequent
    [Machine.apply] are recorded. *)

val clear : t -> unit
val length : t -> int

val entries : t -> (int * int * string) list
(** The recorded events as [(step, tid, text)] triples in execution order,
    with the same per-event numbering and rendering the columns of
    {!render} use. Step numbers count {e events}, not machine transitions
    (a thread's final instruction emits its exec event and a [(done)]
    marker as two consecutive entries). The forensics layer builds its
    Chrome-trace export of a failing schedule from these. *)

val render : ?last:int -> t -> string
(** The recorded trace; [last] keeps only the final n events. *)

val pp : Format.formatter -> t -> unit
