(** The shared memory of the abstract TSO machine.

    Memory is a flat array of integer cells. Cells are allocated with a
    symbolic name so traces and error messages can refer to variables the way
    the paper does ([H], [T], [tasks\[3\]], ...). All reads and writes to
    memory are performed by {!Machine} when it applies transitions; algorithm
    code never touches memory directly (it goes through the {!Program}
    effects). *)

type t

val create : unit -> t

val alloc : t -> name:string -> init:int -> Addr.t
(** Allocate one named cell. *)

val alloc_array : t -> name:string -> len:int -> init:int -> Addr.t
(** Allocate [len] contiguous cells named [name[0]] ... [name[len-1]];
    returns the address of element 0. *)

val get : t -> Addr.t -> int
val set : t -> Addr.t -> int -> unit

val size : t -> int
(** Number of allocated cells. *)

val name : t -> Addr.t -> string
(** Symbolic name of a cell, for tracing. *)

val snapshot : t -> int array
(** Copy of the current contents (used by the explorer to compare states and
    by tests to assert final memory). *)

val blit_to : t -> int array -> unit
(** Copy the contents into the first {!size} slots of an existing array
    (the allocation-free capture {!Machine.snapshot} uses).
    @raise Invalid_argument if the destination is shorter than {!size}. *)

val restore_from : t -> int array -> len:int -> unit
(** Overwrite the contents with the first [len] values of [src]; the cell
    layout (names, allocation order) is untouched. Used by
    {!Machine.restore_into}. @raise Invalid_argument if [len <> size t]. *)

val cell : t -> int -> int
(** Contents of cell [i] (0 ≤ i < {!size}) without copying — the
    allocation-free read {!Machine.fingerprint} folds over. *)

val pp : Format.formatter -> t -> unit
