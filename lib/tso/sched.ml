type outcome =
  | Quiescent
  | Max_steps
  | Deadlock

type policy = Machine.t -> Machine.tbuf -> Machine.transition

let run ?(max_steps = 2_000_000) m policy =
  let buf = Machine.tbuf_create () in
  let rec loop budget =
    if budget <= 0 then Max_steps
    else if Machine.enabled_into m buf = 0 then
      if Machine.quiescent m then Quiescent else Deadlock
    else begin
      Machine.apply m (policy m buf);
      loop (budget - 1)
    end
  in
  loop max_steps

let round_robin () =
  let counter = ref 0 in
  fun _m ts ->
    let n = Machine.tbuf_length ts in
    let i = !counter mod n in
    incr counter;
    Machine.tbuf_get ts i

let uniform rng _m ts =
  Machine.tbuf_get ts (Random.State.int rng (Machine.tbuf_length ts))

let weighted rng ~drain_weight _m ts =
  let n = Machine.tbuf_length ts in
  let weight = function
    | Machine.Step _ -> 1.0
    | Machine.Drain _ | Machine.Flush _ -> drain_weight
  in
  let total = ref 0.0 in
  for i = 0 to n - 1 do
    total := !total +. weight (Machine.tbuf_get ts i)
  done;
  if !total <= 0.0 then Machine.tbuf_get ts (Random.State.int rng n)
  else begin
    let x = Random.State.float rng !total in
    let acc = ref 0.0 in
    let chosen = ref (Machine.tbuf_get ts (n - 1)) in
    (try
       for i = 0 to n - 1 do
         acc := !acc +. weight (Machine.tbuf_get ts i);
         if x < !acc then begin
           chosen := Machine.tbuf_get ts i;
           raise Exit
         end
       done
     with Exit -> ());
    !chosen
  end

let replay choices ~fallback =
  let remaining = ref choices in
  fun m ts ->
    match !remaining with
    | [] -> fallback m ts
    | i :: rest ->
        remaining := rest;
        if i >= Machine.tbuf_length ts then
          invalid_arg "Sched.replay: choice index out of range";
        Machine.tbuf_get ts i

let record report policy m ts =
  let tr = policy m ts in
  let n = Machine.tbuf_length ts in
  let rec index i =
    if i >= n then
      invalid_arg "Sched.record: policy returned a non-enabled transition"
    else if Machine.tbuf_get ts i = tr then i
    else index (i + 1)
  in
  report (index 0);
  tr
